(* Namespaces of the substrate libraries. *)
open Tacos_topology

(** Process groups over a fabric: a partition of the NPUs into equal-sized
    sets, each carrying the induced sub-topology, ready for per-group
    synthesis and lifting back to global ids.

    A group's [members] array is its local-rank order: local rank [i] is
    global NPU [members.(i)]. Hierarchical decomposition pairs the groups
    with their orthogonal {!slices} — slice [r] collects the rank-[r] member
    of every group — so a collective can run intra-group phases on the
    groups and inter-group phases on the slices (the BlueConnect/PCCL
    decomposition).

    Sub-topologies are extracted with their induced links sorted into a
    canonical order (endpoints, then α-β cost, then global id), so two
    groups with isomorphic induced fabrics *under their rank order* get
    byte-identical {!Tacos.Registry.fingerprint}s and link numbering —
    that is what lets one synthesis be lifted into every isomorphic group. *)

type t = {
  gid : int;  (** index of this group within its partition *)
  members : int array;  (** global NPU ids; index = local rank *)
  topo : Topology.t;  (** induced sub-topology over local ranks *)
  link_map : int array;  (** sub-topology link id → global link id *)
}

val extract : ?name:string -> Topology.t -> gid:int -> int array -> t
(** [extract topo ~gid members] builds the induced sub-topology: every
    global link with both endpoints in [members], remapped to local ranks,
    added in canonical order. Raises [Invalid_argument] on an empty set,
    out-of-range ids or duplicate members. [name] defaults to
    ["<topo>/g<gid>"]. *)

val of_dim : Topology.t -> dim:int -> t list
(** Partition by coordinate [dim] of the recorded hierarchy: group [g]
    holds the NPUs whose [dim]-coordinate is [g] (ascending id order), so
    each group is a slab varying every *other* dimension and each slice is
    a dimension-[dim] line. Raises [Invalid_argument] when the topology has
    no hierarchy, [dim] is out of range, or the split is degenerate (fewer
    than 2 groups or fewer than 2 members per group). *)

val of_partition : Topology.t -> int array list -> t list
(** Explicit partition: one group per member array, in the given order,
    local ranks following each array's order. Structural errors (empty
    arrays, out-of-range or duplicate ids) raise [Invalid_argument];
    semantic partition errors are reported by {!validate}. *)

val auto_dim : Topology.t -> int option
(** Pick the inter-group dimension heuristically: the dimension with the
    least per-NPU bandwidth (the cut that bounds the collective), breaking
    ties toward more groups (smaller intra fabrics synthesize faster), then
    toward the lowest index. [None] when the topology records no hierarchy
    or no dimension yields a non-degenerate split. *)

val slices : Topology.t -> t list -> t list
(** [slices topo groups]: slice [r] is the group formed by the rank-[r]
    member of every group, in group order (named ["<topo>/s<r>"]). Assumes
    equal-sized groups ({!validate}). *)

val validate : Topology.t -> t list -> (unit, string) result
(** Check the partition is usable for hierarchical synthesis: at least two
    groups, equal sizes of at least two, members disjoint and covering every
    NPU, and every group *and every slice* strongly connected (each hosts a
    sub-collective, which needs a connected fabric). *)

val fingerprint : t -> string
(** {!Tacos.Registry.fingerprint} of the induced sub-topology — equal for
    groups whose fabrics are isomorphic under rank order. *)
