(* Namespaces of the substrate libraries. *)
open Tacos_collective

(** Lifting per-group schedules back onto the full fabric.

    A send synthesized inside a group speaks local ranks, local link ids and
    local chunk ids; lifting rewrites all three through the group's rank
    array, link map, and a caller-supplied chunk map, and translates it in
    time to the phase's start offset. Because the lifted sends keep their
    relative timing and each global link belongs to exactly one group (or
    one slice) per phase, the merged send list stays congestion-free and
    {!Schedule.validate} accepts it chronologically. *)

val lift :
  Group.t -> chunk_map:(int -> int) -> offset:float -> Schedule.t -> Schedule.send list
(** Rewrite every send of a local schedule to global NPU ids
    ([members.(rank)]), global link ids ([link_map.(edge)]) and global chunk
    ids ([chunk_map chunk]), shifted by [offset] seconds. *)

val assemble : Schedule.send list list -> Schedule.t
(** Merge lifted phases into one full-fabric schedule ({!Schedule.make}
    re-sorts by start time). *)
