(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective

(** Hierarchical synthesis: decompose a collective over process groups,
    synthesize each phase on its sub-topologies with the flat TACOS
    synthesizer, dedupe isomorphic sub-fabrics through
    {!Tacos.Registry.fingerprint}, and compose one full-fabric schedule.

    Phase decompositions (the BlueConnect/PCCL shapes, with [G] groups of
    [m] NPUs and their [m] orthogonal slices):
    - All-Gather:      inter-AG on every slice, then intra-AG in every group
    - Reduce-Scatter:  intra-RS in every group, then inter-RS on every slice
    - All-Reduce:      intra-RS, inter-AR on every slice, intra-AG
    - Broadcast r:     inter-Broadcast on the root's slice, then intra
    - Reduce r:        intra-Reduce in every group, then inter on the slice

    Each phase's sub-schedules start together at the previous phase's
    completion time (for All-Reduce the slice All-Gathers additionally wait
    for the *slowest* slice Reduce-Scatter, so the composed phases satisfy
    {!Schedule.validate_all_reduce}). The static barrier only constrains the
    *schedule*; replaying it under [Engine.run] melts the barrier into
    per-chunk dependencies, so cross-phase congestion and pipelining are
    measured, not assumed.

    Obs metrics (when enabled): [groups.groups], [groups.phases],
    [groups.syntheses], [groups.dedup_hits] counters, the
    [groups.phase_synth_seconds] timer, and one [groups.phase] trace event
    per phase. *)

(** How to derive the partition. *)
type grouping =
  | Dim of int  (** partition by this hierarchy coordinate *)
  | Auto  (** {!Group.auto_dim} *)
  | Partition of int array list  (** explicit member sets *)

val grouping_of_string : string -> (grouping, string) result
(** Parse a CLI argument: ["auto"] or a dimension index. *)

val decompose : Topology.t -> grouping -> (Group.t list, string) result
(** Derive and {!Group.validate} the partition. All failures — no usable
    hierarchy, degenerate split, invalid explicit partition — come back as
    [Error]. *)

type phase_info = {
  phase : string;  (** e.g. ["intra-reduce-scatter"] *)
  parts : int;  (** sub-collectives composing the phase *)
  syntheses : int;  (** flat syntheses actually run *)
  dedup_hits : int;  (** parts served by an isomorphic part's synthesis *)
  wall_seconds : float;  (** synthesis wall-clock spent in this phase *)
  makespan : float;  (** phase duration in the composed schedule *)
}

type t = {
  groups : int;
  group_size : int;
  result : Tacos.Synthesizer.result;
      (** the composed full-fabric schedule, with [phases] set for
          All-Reduce and [stats.wall_seconds] summing phase synthesis time *)
  phase_infos : phase_info list;
  syntheses : int;
  dedup_hits : int;
}

val synthesize :
  ?seed:int ->
  ?trials:int ->
  ?domains:int ->
  ?prefer_cheap_links:bool ->
  Topology.t ->
  Spec.t ->
  groups:Group.t list ->
  t
(** Hierarchically synthesize [spec] over the partition. Exactly one flat
    synthesis runs per distinct (sub-fingerprint, sub-spec) pair; the rest
    are dedup hits. Raises [Invalid_argument] when the partition fails
    {!Group.validate} or the spec's NPU count mismatches the topology,
    [Tacos.Synthesizer.Unsupported] for patterns without a group decomposition
    (All-to-All, Gather, Scatter), and propagates [Tacos.Synthesizer.Stuck].

    [domains] (default 1) fans each phase's distinct sub-syntheses out on
    the shared {!Tacos_util.Pool} (grown to at least [domains] workers) and
    passes [domains] down to each flat synthesis, so group- and
    trial-parallelism draw from one worker budget. Concurrent identical
    sub-problems are single-flight: the first element to need a key runs
    the synthesis, later elements join its in-flight future (counted under
    the [groups.inflight_joins] obs counter and reported as dedup hits).
    Sub-results are composed in element order and phases stay sequential,
    so the composed schedule, phase splits, and every phase_info row
    (wall-clock aside) are bit-identical to [~domains:1]. *)
