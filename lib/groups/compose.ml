(* Namespaces of the substrate libraries. *)
open Tacos_collective

let lift (group : Group.t) ~chunk_map ~offset (schedule : Schedule.t) =
  List.map
    (fun (s : Schedule.send) ->
      {
        Schedule.chunk = chunk_map s.chunk;
        edge = group.link_map.(s.edge);
        src = group.members.(s.src);
        dst = group.members.(s.dst);
        start = s.start +. offset;
        finish = s.finish +. offset;
      })
    schedule.Schedule.sends

let assemble phases = Schedule.make (List.concat phases)
