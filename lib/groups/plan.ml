(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective
module Obs = Tacos_obs.Obs
module Synthesizer = Tacos.Synthesizer
module Registry = Tacos.Registry
module Pool = Tacos_util.Pool

type grouping = Dim of int | Auto | Partition of int array list

let grouping_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "auto" -> Ok Auto
  | t -> (
    match int_of_string_opt t with
    | Some d when d >= 0 -> Ok (Dim d)
    | _ -> Error (Printf.sprintf "bad grouping %S: expected \"auto\" or a dimension index" s))

let decompose topo grouping =
  let derive () =
    match grouping with
    | Dim d -> Group.of_dim topo ~dim:d
    | Auto -> (
      match Group.auto_dim topo with
      | Some d -> Group.of_dim topo ~dim:d
      | None ->
        invalid_arg
          "no usable hierarchy dimension (topology records none, or every split is degenerate)")
    | Partition parts -> Group.of_partition topo parts
  in
  match derive () with
  | groups -> (
    match Group.validate topo groups with
    | Ok () -> Ok groups
    | Error e -> Error e)
  | exception Invalid_argument e -> Error e

type phase_info = {
  phase : string;
  parts : int;
  syntheses : int;
  dedup_hits : int;
  wall_seconds : float;
  makespan : float;
}

type t = {
  groups : int;
  group_size : int;
  result : Synthesizer.result;
  phase_infos : phase_info list;
  syntheses : int;
  dedup_hits : int;
}

(* --- obs --------------------------------------------------------------- *)

let c_groups = Obs.counter "groups.groups"
let c_phases = Obs.counter "groups.phases"
let c_syntheses = Obs.counter "groups.syntheses"
let c_dedup = Obs.counter "groups.dedup_hits"
let c_inflight_joins = Obs.counter "groups.inflight_joins"
let t_phase_synth = Obs.timer "groups.phase_synth_seconds"
let t_validate = Obs.timer "groups.validate_seconds"
let t_lift = Obs.timer "groups.lift_seconds"
let t_assemble = Obs.timer "groups.assemble_seconds"

(* --- deduped sub-synthesis --------------------------------------------- *)

(* Sub-synthesis cache key: full-width topology fingerprint plus the
   registry's spec key — one shared builder ([Registry.spec_key]), so the
   two cannot drift apart again. *)
let sub_key (group : Group.t) (spec : Spec.t) =
  Registry.fingerprint group.Group.topo ^ "|" ^ Registry.spec_key spec

type ctx = {
  cache : (string, Synthesizer.result) Hashtbl.t;
  inflight : (string, Synthesizer.result Pool.future) Hashtbl.t;
  lock : Mutex.t;
  pool : Pool.t option;  (** [Some] iff [domains > 1] *)
  domains : int;
  seed : int;
  trials : int;
  prefer_cheap_links : bool;
}

(* A phase element's sub-synthesis, split into a start half (dispatch) and
   a join half (collect) so a phase can start every distinct sub-synthesis
   on the pool before collecting any. Starts are issued sequentially by
   the coordinating domain, so which element owns a key (and which ones
   dedup against it) is a function of element order alone — the `Hit/`Miss
   attribution, and with it every phase_info row, is bit-identical to the
   sequential path. *)
type sub_handle =
  | Ready of Synthesizer.result * [ `Hit | `Miss ]
      (** served from cache, or computed inline (sequential path) *)
  | Join of Synthesizer.result Pool.future
      (** single-flight dedup against another element's in-flight synthesis *)
  | Own of string * Synthesizer.result Pool.future
      (** this element runs the synthesis; publish under the key on join *)

let run_synth ctx (group : Group.t) spec =
  Obs.time t_phase_synth (fun () ->
      Synthesizer.synthesize ~seed:ctx.seed ~trials:ctx.trials
        ~domains:ctx.domains ~prefer_cheap_links:ctx.prefer_cheap_links
        group.Group.topo spec)

let start_sub ctx (group : Group.t) spec =
  let k = sub_key group spec in
  match ctx.pool with
  | None -> (
    match Hashtbl.find_opt ctx.cache k with
    | Some r -> Ready (r, `Hit)
    | None ->
      let r = run_synth ctx group spec in
      Hashtbl.add ctx.cache k r;
      Ready (r, `Miss))
  | Some pool -> (
    Mutex.lock ctx.lock;
    match Hashtbl.find_opt ctx.cache k with
    | Some r ->
      Mutex.unlock ctx.lock;
      Ready (r, `Hit)
    | None -> (
      match Hashtbl.find_opt ctx.inflight k with
      | Some fut ->
        Mutex.unlock ctx.lock;
        Obs.incr c_inflight_joins;
        Join fut
      | None ->
        let fut = Pool.submit pool (fun () -> run_synth ctx group spec) in
        Hashtbl.add ctx.inflight k fut;
        Mutex.unlock ctx.lock;
        Own (k, fut)))

let join_sub ctx handle =
  match handle with
  | Ready (r, `Hit) ->
    Obs.incr c_dedup;
    (r, `Hit)
  | Ready (r, `Miss) ->
    Obs.incr c_syntheses;
    (r, `Miss)
  | Join fut ->
    let r = Pool.await (Option.get ctx.pool) fut in
    Obs.incr c_dedup;
    (r, `Hit)
  | Own (k, fut) ->
    let r = Pool.await (Option.get ctx.pool) fut in
    Mutex.lock ctx.lock;
    Hashtbl.replace ctx.cache k r;
    Hashtbl.remove ctx.inflight k;
    Mutex.unlock ctx.lock;
    Obs.incr c_syntheses;
    (r, `Miss)

(* Start every element of a phase, then collect in element order. *)
let synth_parts ctx elements =
  let handles =
    List.map (fun (group, spec, _) -> start_sub ctx group spec) elements
  in
  List.map2
    (fun (group, _, chunk_map) handle ->
      let r, outcome = join_sub ctx handle in
      (group, chunk_map, r, outcome))
    elements handles

(* One phase: synthesize (deduped) each part, lift every part's schedule to
   start at [offset], and account. Returns the lifted sends, the phase's
   completion time, and its info row. *)
let run_phase ctx ~phase ~offset elements =
  let parts = synth_parts ctx elements in
  let finish =
    List.fold_left
      (fun acc (_, _, (r : Synthesizer.result), _) ->
        Float.max acc (offset +. r.schedule.Schedule.makespan))
      offset parts
  in
  let sends =
    Obs.time t_lift (fun () ->
        List.concat_map
          (fun (group, chunk_map, (r : Synthesizer.result), _) ->
            Compose.lift group ~chunk_map ~offset r.schedule)
          parts)
  in
  let syntheses, dedup_hits, wall =
    List.fold_left
      (fun (s, d, w) (_, _, (r : Synthesizer.result), outcome) ->
        match outcome with
        | `Miss -> (s + 1, d, w +. r.stats.Synthesizer.wall_seconds)
        | `Hit -> (s, d + 1, w))
      (0, 0, 0.) parts
  in
  let info =
    {
      phase;
      parts = List.length parts;
      syntheses;
      dedup_hits;
      wall_seconds = wall;
      makespan = finish -. offset;
    }
  in
  Obs.incr c_phases;
  Obs.trace "groups.phase"
    [
      ("phase", Tacos_util.Json.String phase);
      ("parts", Tacos_util.Json.Number (float_of_int info.parts));
      ("syntheses", Tacos_util.Json.Number (float_of_int syntheses));
      ("dedup_hits", Tacos_util.Json.Number (float_of_int dedup_hits));
      ("wall_seconds", Tacos_util.Json.Number wall);
      ("makespan", Tacos_util.Json.Number info.makespan);
    ];
  (sends, finish, info)

(* --- decomposition ----------------------------------------------------- *)

let synthesize ?(seed = 42) ?(trials = 1) ?(domains = 1)
    ?(prefer_cheap_links = true) topo (spec : Spec.t) ~groups =
  if domains <= 0 then invalid_arg "Plan.synthesize: domains must be positive";
  (match Obs.time t_validate (fun () -> Group.validate topo groups) with
  | Ok () -> ()
  | Error e -> invalid_arg ("Plan.synthesize: invalid partition: " ^ e));
  let n = Topology.num_npus topo in
  if spec.Spec.npus <> n then
    invalid_arg
      (Printf.sprintf "Plan.synthesize: spec is for %d NPUs, topology has %d"
         spec.Spec.npus n);
  let gs = Array.of_list groups in
  let g = Array.length gs in
  let m = Array.length gs.(0).Group.members in
  let slices = Group.slices topo groups in
  let k = spec.Spec.chunks_per_npu in
  let b = spec.Spec.buffer_size in
  Obs.add c_groups g;
  (* Phases stay sequential — only the sub-syntheses *within* a phase fan
     out — so cross-phase cache hits land exactly where the sequential path
     puts them. *)
  let pool = if domains = 1 then None else Some (Pool.global ~size:domains ()) in
  let ctx =
    {
      cache = Hashtbl.create 16;
      inflight = Hashtbl.create 8;
      lock = Mutex.create ();
      pool;
      domains;
      seed;
      trials;
      prefer_cheap_links;
    }
  in

  (* Chunk maps, local id → global id. Owner-based global chunk ids are
     [owner * k + slot]. A group's local rank [lo] holds — after the inter
     phase, equivalently holds initially mapped through its slice — the
     chunks owned by the rank-[lo] member of every group, which is what the
     intra map enumerates; note it depends only on the rank, not on which
     group is being lifted, so one closure (and one synthesis) serves all
     isomorphic groups. *)
  let intra_map lc =
    let lo = lc / (g * k) and j = lc mod (g * k) in
    let g' = j / k and s = j mod k in
    (gs.(g').Group.members.(lo) * k) + s
  in
  let slice_map (slice : Group.t) lc =
    let lo = lc / k and s = lc mod k in
    (slice.Group.members.(lo) * k) + s
  in
  let identity c = c in

  (* Sub-specs. Intra phases see every group's share of the vector (buffer
     [b], [g * k] chunks per rank); inter phases see one group's share
     ([b / m], [k] chunks per rank); both give the global chunk size
     [b / (n * k)]. Rooted patterns keep the whole buffer and [k] chunks. *)
  let intra_spec pattern =
    Spec.make ~chunks_per_npu:(g * k) ~buffer_size:b ~pattern ~npus:m ()
  in
  let inter_spec pattern =
    Spec.make ~chunks_per_npu:k
      ~buffer_size:(b /. float_of_int m)
      ~pattern ~npus:g ()
  in
  let rooted_spec pattern npus =
    Spec.make ~chunks_per_npu:k ~buffer_size:b ~pattern ~npus ()
  in
  let intra_elems pattern =
    List.map (fun gr -> (gr, intra_spec pattern, intra_map)) groups
  in
  let inter_elems pattern =
    List.map (fun sl -> (sl, inter_spec pattern, slice_map sl)) slices
  in
  (* Local coordinates of a root NPU: its group index and local rank. *)
  let locate root =
    let found = ref None in
    Array.iteri
      (fun gi (grp : Group.t) ->
        Array.iteri (fun ri v -> if v = root then found := Some (gi, ri)) grp.members)
      gs;
    match !found with
    | Some loc -> loc
    | None -> invalid_arg (Printf.sprintf "Plan.synthesize: root %d not in any group" root)
  in

  let finish schedule phases infos =
    let wall = List.fold_left (fun acc (i : phase_info) -> acc +. i.wall_seconds) 0. infos in
    let syntheses = List.fold_left (fun acc (i : phase_info) -> acc + i.syntheses) 0 infos in
    let dedup_hits = List.fold_left (fun acc (i : phase_info) -> acc + i.dedup_hits) 0 infos in
    {
      groups = g;
      group_size = m;
      result =
        {
          Synthesizer.spec;
          schedule;
          collective_time = schedule.Schedule.makespan;
          phases;
          stats =
            {
              Synthesizer.wall_seconds = wall;
              rounds = 0;
              matches = Schedule.num_sends schedule;
              trials;
            };
        };
      phase_infos = infos;
      syntheses;
      dedup_hits;
    }
  in

  match spec.Spec.pattern with
  | Pattern.All_gather ->
    let s1, t1, i1 = run_phase ctx ~phase:"inter-all-gather" ~offset:0. (inter_elems Pattern.All_gather) in
    let s2, _, i2 = run_phase ctx ~phase:"intra-all-gather" ~offset:t1 (intra_elems Pattern.All_gather) in
    finish (Obs.time t_assemble (fun () -> Compose.assemble [ s1; s2 ])) None [ i1; i2 ]
  | Pattern.Reduce_scatter ->
    let s1, t1, i1 = run_phase ctx ~phase:"intra-reduce-scatter" ~offset:0. (intra_elems Pattern.Reduce_scatter) in
    let s2, _, i2 = run_phase ctx ~phase:"inter-reduce-scatter" ~offset:t1 (inter_elems Pattern.Reduce_scatter) in
    finish (Obs.time t_assemble (fun () -> Compose.assemble [ s1; s2 ])) None [ i1; i2 ]
  | Pattern.Broadcast root ->
    let g0, r0 = locate root in
    let slice = List.nth slices r0 in
    let s1, t1, i1 =
      run_phase ctx ~phase:"inter-broadcast" ~offset:0.
        [ (slice, rooted_spec (Pattern.Broadcast g0) g, identity) ]
    in
    let s2, _, i2 =
      run_phase ctx ~phase:"intra-broadcast" ~offset:t1
        (List.map (fun gr -> (gr, rooted_spec (Pattern.Broadcast r0) m, identity)) groups)
    in
    finish (Obs.time t_assemble (fun () -> Compose.assemble [ s1; s2 ])) None [ i1; i2 ]
  | Pattern.Reduce root ->
    let g0, r0 = locate root in
    let slice = List.nth slices r0 in
    let s1, t1, i1 =
      run_phase ctx ~phase:"intra-reduce" ~offset:0.
        (List.map (fun gr -> (gr, rooted_spec (Pattern.Reduce r0) m, identity)) groups)
    in
    let s2, _, i2 =
      run_phase ctx ~phase:"inter-reduce" ~offset:t1
        [ (slice, rooted_spec (Pattern.Reduce g0) g, identity) ]
    in
    finish (Obs.time t_assemble (fun () -> Compose.assemble [ s1; s2 ])) None [ i1; i2 ]
  | Pattern.All_reduce ->
    let s1, t1, i1 =
      run_phase ctx ~phase:"intra-reduce-scatter" ~offset:0.
        (intra_elems Pattern.Reduce_scatter)
    in
    (* Inter All-Reduce per slice, each carrying its own (RS, AG) split.
       The slice All-Gathers are barrier-aligned at the slowest slice
       Reduce-Scatter so the composed schedule has one global RS|AG
       boundary for validate_all_reduce; delaying an AG phase is always
       causally safe. *)
    let parts =
      List.map
        (fun (sl, _, r, outcome) ->
          let rs, ag =
            match (r : Synthesizer.result).Synthesizer.phases with
            | Some (rs, ag) -> (rs, ag)
            | None -> assert false (* the synthesizer always splits All-Reduce *)
          in
          (sl, r, rs, ag, outcome))
        (synth_parts ctx
           (List.map
              (fun sl -> (sl, inter_spec Pattern.All_reduce, slice_map sl))
              slices))
    in
    let max_rs =
      List.fold_left
        (fun acc (_, _, (rs : Schedule.t), _, _) -> Float.max acc rs.Schedule.makespan)
        0. parts
    in
    let rs_sends =
      Obs.time t_lift (fun () ->
          List.concat_map
            (fun (sl, _, rs, _, _) ->
              Compose.lift sl ~chunk_map:(slice_map sl) ~offset:t1 rs)
            parts)
    in
    let t2 = ref (t1 +. max_rs) in
    let ag_sends =
      List.concat_map
        (fun (sl, _, (rs : Schedule.t), (ag : Schedule.t), _) ->
          let offset = t1 +. max_rs -. rs.Schedule.makespan in
          t2 := Float.max !t2 (offset +. ag.Schedule.makespan);
          Compose.lift sl ~chunk_map:(slice_map sl) ~offset ag)
        parts
    in
    let syntheses, dedup_hits, wall =
      List.fold_left
        (fun (s, d, w) (_, (r : Synthesizer.result), _, _, outcome) ->
          match outcome with
          | `Miss -> (s + 1, d, w +. r.stats.Synthesizer.wall_seconds)
          | `Hit -> (s, d + 1, w))
        (0, 0, 0.) parts
    in
    let i2 =
      {
        phase = "inter-all-reduce";
        parts = List.length parts;
        syntheses;
        dedup_hits;
        wall_seconds = wall;
        makespan = !t2 -. t1;
      }
    in
    Obs.incr c_phases;
    Obs.trace "groups.phase"
      [
        ("phase", Tacos_util.Json.String i2.phase);
        ("parts", Tacos_util.Json.Number (float_of_int i2.parts));
        ("syntheses", Tacos_util.Json.Number (float_of_int syntheses));
        ("dedup_hits", Tacos_util.Json.Number (float_of_int dedup_hits));
        ("wall_seconds", Tacos_util.Json.Number wall);
        ("makespan", Tacos_util.Json.Number i2.makespan);
      ];
    let s3, _, i3 =
      run_phase ctx ~phase:"intra-all-gather" ~offset:!t2 (intra_elems Pattern.All_gather)
    in
    (* Every all-gather send starts at or after [t1 + max_rs], i.e. no
       earlier than any reduce-scatter send, so the composed schedule is
       the O(n) ordered union of the two halves — no third full sort. *)
    let rs_part, ag_part, composed =
      Obs.time t_assemble (fun () ->
          let rs_part = Schedule.make (s1 @ rs_sends) in
          let ag_part = Schedule.make (ag_sends @ s3) in
          (rs_part, ag_part, Schedule.union rs_part ag_part))
    in
    finish composed (Some (rs_part, ag_part)) [ i1; i2; i3 ]
  | (Pattern.All_to_all | Pattern.Gather _ | Pattern.Scatter _) as p ->
    raise
      (Synthesizer.Unsupported
         (Printf.sprintf "Plan.synthesize: no group decomposition for %s" (Pattern.name p)))
