(* Namespaces of the substrate libraries. *)
open Tacos_topology

type t = {
  gid : int;
  members : int array;
  topo : Topology.t;
  link_map : int array;
}

let extract ?name topo ~gid members =
  let n = Array.length members in
  if n = 0 then invalid_arg "Group.extract: empty member set";
  let num = Topology.num_npus topo in
  let local = Hashtbl.create n in
  Array.iteri
    (fun i v ->
      if v < 0 || v >= num then
        invalid_arg (Printf.sprintf "Group.extract: NPU %d out of range" v);
      if Hashtbl.mem local v then
        invalid_arg (Printf.sprintf "Group.extract: duplicate member %d" v);
      Hashtbl.add local v i)
    members;
  (* Canonical induced-link order: (src, dst, α, β, global id). Fingerprints
     ignore link ids, so isomorphic groups must also *number* their links
     identically for one group's schedule to lift into another. *)
  let induced =
    Topology.edges topo
    |> List.filter_map (fun (e : Topology.edge) ->
           match (Hashtbl.find_opt local e.src, Hashtbl.find_opt local e.dst) with
           | Some s, Some d ->
             let alpha = Link.cost e.link 0. in
             let beta = Link.cost e.link 1. -. alpha in
             Some (s, d, alpha, beta, e)
           | _ -> None)
    |> List.sort (fun (s1, d1, a1, b1, (e1 : Topology.edge)) (s2, d2, a2, b2, e2) ->
           compare (s1, d1, a1, b1, e1.id) (s2, d2, a2, b2, e2.id))
  in
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "%s/g%d" (Topology.name topo) gid
  in
  let sub = Topology.create ~name n in
  let link_map = Array.make (List.length induced) (-1) in
  List.iter
    (fun (s, d, _, _, (e : Topology.edge)) ->
      let id = Topology.add_link sub ~src:s ~dst:d e.link in
      link_map.(id) <- e.id)
    induced;
  { gid; members; topo = sub; link_map }

let of_dim topo ~dim =
  match Topology.hierarchy topo with
  | None -> invalid_arg "Group.of_dim: topology records no hierarchy"
  | Some dims ->
    if dim < 0 || dim >= Array.length dims then
      invalid_arg (Printf.sprintf "Group.of_dim: dimension %d out of range" dim);
    let g = dims.(dim).Topology.size in
    let n = Topology.num_npus topo in
    if g < 2 || n / g < 2 then
      invalid_arg
        (Printf.sprintf "Group.of_dim: dimension %d gives a degenerate %dx%d split"
           dim g (n / g));
    let buckets = Array.make g [] in
    for v = n - 1 downto 0 do
      let c = (Topology.coords topo v).(dim) in
      buckets.(c) <- v :: buckets.(c)
    done;
    List.init g (fun gi -> extract topo ~gid:gi (Array.of_list buckets.(gi)))

let of_partition topo parts =
  if parts = [] then invalid_arg "Group.of_partition: empty partition";
  List.mapi (fun gi members -> extract topo ~gid:gi members) parts

let slices topo groups =
  match groups with
  | [] -> []
  | g0 :: _ ->
    List.init (Array.length g0.members) (fun r ->
        let members = Array.of_list (List.map (fun g -> g.members.(r)) groups) in
        extract topo ~gid:r
          ~name:(Printf.sprintf "%s/s%d" (Topology.name topo) r)
          members)

let validate topo groups =
  let ( let* ) = Result.bind in
  let* () =
    if List.length groups >= 2 then Ok ()
    else Error "need at least two groups"
  in
  let sizes = List.map (fun g -> Array.length g.members) groups in
  let m = List.hd sizes in
  let* () =
    if List.for_all (( = ) m) sizes then Ok ()
    else Error "groups have unequal sizes"
  in
  let* () =
    if m >= 2 then Ok ()
    else Error "groups need at least two members each"
  in
  let n = Topology.num_npus topo in
  let seen = Array.make n false in
  let* () =
    List.fold_left
      (fun acc g ->
        let* () = acc in
        Array.fold_left
          (fun acc v ->
            let* () = acc in
            if seen.(v) then Error (Printf.sprintf "NPU %d appears twice" v)
            else begin
              seen.(v) <- true;
              Ok ()
            end)
          (Ok ()) g.members)
      (Ok ()) groups
  in
  let* () =
    match Array.to_list (Array.mapi (fun v s -> (v, s)) seen)
          |> List.find_opt (fun (_, s) -> not s)
    with
    | Some (v, _) -> Error (Printf.sprintf "NPU %d belongs to no group" v)
    | None -> Ok ()
  in
  (* Every group and every slice hosts a sub-collective, so each induced
     fabric must be strongly connected on its own. *)
  let connected what (g : t) =
    if Topology.is_strongly_connected g.topo then Ok ()
    else
      Error
        (Printf.sprintf "%s %d (NPUs %s) is not strongly connected" what g.gid
           (String.concat ","
              (List.map string_of_int (Array.to_list g.members))))
  in
  let* () =
    List.fold_left
      (fun acc g -> let* () = acc in connected "group" g)
      (Ok ()) groups
  in
  List.fold_left
    (fun acc s -> let* () = acc in connected "slice" s)
    (Ok ()) (slices topo groups)

let auto_dim topo =
  match Topology.hierarchy topo with
  | None -> None
  | Some dims ->
    let n = Topology.num_npus topo in
    (* Per-NPU per-byte time of each dimension's aggregated links: the
       slowest dimension is the cut that bounds the collective, so it gets
       the (cheap, low-volume) inter phase and the fast dimensions stay
       inside the groups. *)
    let score (d : Topology.dim) =
      let beta = Link.cost d.link 1. -. Link.cost d.link 0. in
      let lanes =
        match d.kind with
        | Topology.Ring_dim -> min 2 (d.size - 1)
        | Topology.Mesh_dim -> 1
        | Topology.Fully_connected_dim -> d.size - 1
        | Topology.Switch_dim _ -> 1
      in
      beta /. float_of_int (max 1 lanes)
    in
    Array.to_list (Array.mapi (fun i d -> (i, d)) dims)
    |> List.filter (fun (_, (d : Topology.dim)) -> d.size >= 2 && n / d.size >= 2)
    |> List.fold_left
         (fun best (i, d) ->
           match best with
           | None -> Some (i, d)
           | Some (_, b) when score d > score b -> Some (i, d)
           | Some (_, b)
             when score d = score b && d.Topology.size > b.Topology.size ->
             Some (i, d)
           | Some _ -> best)
         None
    |> Option.map fst

let fingerprint g = Tacos.Registry.fingerprint g.topo
