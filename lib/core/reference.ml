(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective
open Tacos_ten
module Rng = Tacos_util.Rng

let uniform_cost topo chunk_size =
  match Topology.edges topo with
  | [] -> invalid_arg "Reference.synthesize: topology has no links"
  | first :: rest ->
    let c = Link.cost first.Topology.link chunk_size in
    List.iter
      (fun (e : Topology.edge) ->
        if Float.abs (Link.cost e.link chunk_size -. c) > 1e-12 *. c then
          invalid_arg "Reference.synthesize: heterogeneous topology")
      rest;
    c

let synthesize ?(seed = 42) topo (spec : Spec.t) =
  (match spec.pattern with
  | Pattern.All_gather | Pattern.Broadcast _ -> ()
  | _ ->
    invalid_arg "Reference.synthesize: only All-Gather and Broadcast are supported");
  let rng = Rng.create seed in
  let span_cost = uniform_cost topo (Spec.chunk_size spec) in
  let ten = Ten.create topo ~span_cost in
  let n = Topology.num_npus topo in
  let num_chunks = Spec.num_chunks spec in
  (* arrival.(d).(c): first span at whose start d holds c (max_int = never). *)
  let arrival = Array.make_matrix n num_chunks max_int in
  List.iter (fun (d, c) -> arrival.(d).(c) <- 0) (Spec.precondition spec);
  let unsatisfied =
    ref
      (List.filter (fun (d, c) -> arrival.(d).(c) > 0) (Spec.postcondition spec))
  in
  while !unsatisfied <> [] do
    let span = Ten.spans ten in
    Ten.expand ten;
    (* Alg. 1 at this span: shuffled postconditions, random candidate source. *)
    let remaining = ref [] in
    List.iter
      (fun (d, c) ->
        let candidates =
          List.filter
            (fun (e : Topology.edge) ->
              arrival.(e.src).(c) <= span && Ten.occupant ten ~span ~edge:e.id = None)
            (Topology.in_edges topo d)
        in
        match candidates with
        | [] -> remaining := (d, c) :: !remaining
        | _ ->
          let e = Rng.pick rng candidates in
          Ten.match_chunk ten ~span ~edge:e.Topology.id ~chunk:c;
          arrival.(d).(c) <- span + 1)
      (Rng.shuffle_list rng !unsatisfied);
    if List.length !remaining = List.length !unsatisfied then
      raise
        (Synthesizer.Stuck
           "reference synthesis made no progress — is the topology strongly \
            connected?");
    unsatisfied := !remaining
  done;
  ten

let schedule = Ten.to_schedule
