(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective
module Rng = Tacos_util.Rng
module Obs = Tacos_obs.Obs

let obs_relaxations = Obs.counter "router.relaxations"
let obs_jobs = Obs.counter "router.jobs"
let obs_calendar_scan = Obs.histogram "router.calendar_scan_depth"
let obs_route_timer = Obs.timer "router.route_seconds"

type job = { chunk : int; src : int; dst : int }

(* Per-link reservation calendar: sorted disjoint busy intervals. All time
   comparisons use the magnitude-scaled [Schedule.eps_for] tolerance — an
   absolute slack (the old 1e-15) is below one ulp once makespans reach
   ~100s, which made exactly-fitting gaps invisible on long calendars. *)
module Calendar = struct
  type t = (float * float) list ref

  let create () : t = ref []

  (* Earliest start >= ready such that [start, start + dur) is free. *)
  let earliest_free (t : t) ~ready ~dur =
    let depth = ref 0 in
    let rec scan start = function
      | [] -> start
      | (b, e) :: rest ->
        incr depth;
        if start +. dur <= b +. Schedule.eps_for b then start
        else scan (Float.max start e) rest
    in
    let start = scan ready !t in
    Obs.observe obs_calendar_scan (float_of_int !depth);
    start

  (* Insert keeping the list sorted and disjoint; a reservation that
     overlaps an existing interval by more than the scaled tolerance is a
     routing bug and raises instead of silently corrupting the calendar. *)
  let reserve (t : t) ~start ~dur =
    let finish = start +. dur in
    let eps = Schedule.eps_for finish in
    let rec insert = function
      | [] -> [ (start, finish) ]
      | ((b, _) :: _) as rest when finish <= b +. eps -> (start, finish) :: rest
      | ((_, e) as iv) :: rest when e <= start +. eps -> iv :: insert rest
      | (b, e) :: _ ->
        invalid_arg
          (Printf.sprintf
             "Calendar.reserve: [%g, %g) overlaps reserved [%g, %g)" start finish b
             e)
    in
    t := insert !t
end

let route_jobs ?(seed = 42) topo ~chunk_size jobs =
  if not (Topology.is_strongly_connected topo) then
    raise (Synthesizer.Stuck "routing needs a strongly connected topology");
  let rng = Rng.create seed in
  let n = Topology.num_npus topo in
  let m = Topology.num_links topo in
  let calendars = Array.init m (fun _ -> Calendar.create ()) in
  let cost = Array.make m 0. in
  List.iter
    (fun (e : Topology.edge) -> cost.(e.id) <- Link.cost e.link chunk_size)
    (Topology.edges topo);
  (* Route one chunk src->dst through the partially reserved TEN: Dijkstra
     on earliest arrival, where taking link e from a node reached at time t
     departs at the link's earliest free slot. *)
  let route { chunk; src; dst } =
    let arrival = Array.make n infinity in
    let via = Array.make n None (* (edge id, start time) taken into the node *) in
    arrival.(src) <- 0.;
    let module P = Set.Make (struct
      type t = float * int

      let compare = compare
    end) in
    let pq = ref (P.singleton (0., src)) in
    let settled = Array.make n false in
    let rec loop () =
      match P.min_elt_opt !pq with
      | None -> ()
      | Some ((t, u) as elt) ->
        pq := P.remove elt !pq;
        if not settled.(u) then begin
          settled.(u) <- true;
          if u <> dst then
            List.iter
              (fun (e : Topology.edge) ->
                Obs.incr obs_relaxations;
                let start =
                  Calendar.earliest_free calendars.(e.id) ~ready:t ~dur:cost.(e.id)
                in
                let finish = start +. cost.(e.id) in
                if finish < arrival.(e.dst) then begin
                  arrival.(e.dst) <- finish;
                  via.(e.dst) <- Some (e.id, start);
                  pq := P.add (finish, e.dst) !pq
                end)
              (Topology.out_edges topo u)
        end;
        if not (settled.(dst)) then loop ()
    in
    loop ();
    if arrival.(dst) = infinity then
      raise (Synthesizer.Stuck "routing found no path");
    (* Walk back from dst, reserving and emitting. *)
    let rec backtrack v acc =
      if v = src then acc
      else
        match via.(v) with
        | None -> assert false
        | Some (edge_id, start) ->
          let e = Topology.edge topo edge_id in
          Calendar.reserve calendars.(edge_id) ~start ~dur:cost.(edge_id);
          backtrack e.Topology.src
            ({
               Schedule.chunk;
               edge = edge_id;
               src = e.Topology.src;
               dst = e.Topology.dst;
               start;
               finish = start +. cost.(edge_id);
             }
            :: acc)
    in
    backtrack dst []
  in
  let jobs = Array.of_list jobs in
  Rng.shuffle_in_place rng jobs;
  let sends = ref [] in
  Obs.time obs_route_timer (fun () ->
      Array.iter
        (fun job ->
          if job.src <> job.dst then begin
            Obs.incr obs_jobs;
            sends := route job @ !sends
          end)
        jobs);
  Schedule.make !sends

let jobs_of_spec (spec : Spec.t) =
  let n = spec.npus in
  match spec.pattern with
  | Pattern.All_to_all ->
    List.concat_map
      (fun src ->
        List.concat_map
          (fun dst ->
            if src = dst then []
            else
              List.init spec.chunks_per_npu (fun slot ->
                  { chunk = Spec.a2a_chunk spec ~src ~dst slot; src; dst }))
          (List.init n Fun.id))
      (List.init n Fun.id)
  | Pattern.Gather root ->
    (* Every NPU's chunks converge on the root. *)
    List.filter_map
      (fun c ->
        let src = Spec.owner spec c in
        if src = root then None else Some { chunk = c; src; dst = root })
      (List.init (Spec.num_chunks spec) Fun.id)
  | Pattern.Scatter root ->
    List.filter_map
      (fun c ->
        let dst = Spec.owner spec c in
        if dst = root then None else Some { chunk = c; src = root; dst })
      (List.init (Spec.num_chunks spec) Fun.id)
  | Pattern.All_gather | Pattern.Reduce_scatter | Pattern.All_reduce
  | Pattern.Broadcast _ | Pattern.Reduce _ ->
    invalid_arg
      "Router.synthesize: this pattern belongs to the matching loop \
       (Synthesizer.synthesize)"

let synthesize ?(seed = 42) topo (spec : Spec.t) =
  if Topology.num_npus topo <> spec.npus then
    invalid_arg "Router.synthesize: spec NPU count does not match topology";
  let t0 = Unix.gettimeofday () in
  let jobs = jobs_of_spec spec in
  let schedule = route_jobs ~seed topo ~chunk_size:(Spec.chunk_size spec) jobs in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  {
    Synthesizer.spec;
    schedule;
    collective_time = schedule.Schedule.makespan;
    phases = None;
    stats =
      {
        Synthesizer.wall_seconds;
        rounds = List.length jobs;
        matches = Schedule.num_sends schedule;
        trials = 1;
      };
  }
