(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective
module Rng = Tacos_util.Rng
module Fheap = Tacos_util.Fheap
module Ivec = Tacos_util.Ivec
module Pool = Tacos_util.Pool
module Obs = Tacos_obs.Obs
module Trace = Tacos_obs.Trace

let obs_rounds = Obs.counter "synth.rounds"
let obs_matches = Obs.counter "synth.matches"
let obs_pick_scans = Obs.counter "synth.pick_scans"
let obs_memo_hits = Obs.counter "synth.memo_hits"
let obs_idle_links = Obs.histogram "synth.idle_links"
let obs_scan_len = Obs.histogram "synth.pick_scan_len"
let obs_trial_makespan = Obs.histogram "synth.trial_makespan"
let obs_trial_timer = Obs.timer "synth.trial_seconds"

type stats = { wall_seconds : float; rounds : int; matches : int; trials : int }

type result = {
  spec : Spec.t;
  schedule : Schedule.t;
  collective_time : float;
  phases : (Schedule.t * Schedule.t) option;
  stats : stats;
}

exception Unsupported of string
exception Stuck of string

(* A synthesis goal in positional form: where the chunks are and where they
   must end up, untied from any collective pattern. Specs lower to goals
   ([goal_of_spec]); mid-flight repair builds goals directly from the chunk
   positions observed at the fault time. *)
type goal = {
  num_chunks : int;
  chunk_size : float;
  precondition : (int * int) list;
  postcondition : (int * int) list;
}

let goal_of_spec spec =
  {
    num_chunks = Spec.num_chunks spec;
    chunk_size = Spec.chunk_size spec;
    precondition = Spec.precondition spec;
    postcondition = Spec.postcondition spec;
  }

let validate_goal topo goal =
  let n = Topology.num_npus topo in
  if goal.num_chunks <= 0 then
    invalid_arg "Synthesizer: goal.num_chunks must be positive";
  if not (goal.chunk_size > 0.) then
    invalid_arg "Synthesizer: goal.chunk_size must be positive";
  let check_pairs what pairs =
    List.iter
      (fun (d, c) ->
        if d < 0 || d >= n then
          invalid_arg (Printf.sprintf "Synthesizer: goal %s names NPU %d" what d);
        if c < 0 || c >= goal.num_chunks then
          invalid_arg (Printf.sprintf "Synthesizer: goal %s names chunk %d" what c))
      pairs
  in
  check_pairs "precondition" goal.precondition;
  check_pairs "postcondition" goal.postcondition

(* Fail fast on broken fabrics: a postcondition (d, c) is satisfiable iff
   some initial holder of c can reach d. Strong connectivity implies every
   postcondition is reachable, so the O(n·(n+m)) analysis only runs after
   the cheap connectivity test fails — the healthy-fabric path pays one
   DFS pair per trial. *)
let unreachable_postconditions topo goal =
  let n = Topology.num_npus topo in
  let reach_cache = Hashtbl.create 8 in
  let reachable_from s =
    match Hashtbl.find_opt reach_cache s with
    | Some seen -> seen
    | None ->
      let seen = Array.make n false in
      let rec visit v =
        if not seen.(v) then begin
          seen.(v) <- true;
          List.iter (fun (e : Topology.edge) -> visit e.dst) (Topology.out_edges topo v)
        end
      in
      visit s;
      Hashtbl.add reach_cache s seen;
      seen
  in
  let holders = Hashtbl.create 16 in
  List.iter
    (fun (v, c) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt holders c) in
      Hashtbl.replace holders c (v :: prev))
    goal.precondition;
  List.filter
    (fun (d, c) ->
      match Hashtbl.find_opt holders c with
      | None -> true
      | Some hs -> not (List.exists (fun h -> (reachable_from h).(d)) hs))
    goal.postcondition

let check_feasible topo goal =
  if not (Topology.is_strongly_connected topo) then begin
    match unreachable_postconditions topo goal with
    | [] -> () (* e.g. Broadcast whose root reaches everyone *)
    | unreachable ->
      let total = List.length unreachable in
      let shown = List.filteri (fun i _ -> i < 6) unreachable in
      let pairs =
        String.concat ", "
          (List.map (fun (d, c) -> Printf.sprintf "chunk %d -> NPU %d" c d) shown)
      in
      let suffix = if total > List.length shown then ", ..." else "" in
      raise
        (Stuck
           (Printf.sprintf
              "topology is not strongly connected: %d unreachable \
               postcondition%s (%s%s)"
              total
              (if total = 1 then "" else "s")
              pairs suffix))
  end

(* One synthesis trial of a pull-based (non-combining) pattern: All-Gather or
   Broadcast. This is Alg. 2 with Alg. 1 run at every event time.

   The matching loop decomposes exactly per destination: every link has a
   single destination NPU, so matches competing for a link always serve the
   same destination, and a chunk may legally leave one source over several
   links at once. We therefore iterate over idle links (cheapest first, random
   tie-break) and pick a random chunk from [holds(src) ∩ wants(dst)] — the
   same greedy maximal matching as iterating shuffled postconditions, found
   by scanning whichever of the two sets is smaller. *)
let synthesize_pull ~prefer_cheap_links rng topo goal =
  let n = Topology.num_npus topo in
  let num_chunks = goal.num_chunks in
  let chunk_size = goal.chunk_size in
  let m = Topology.num_links topo in
  if m = 0 && n > 1 then raise (Stuck "topology has no links");
  check_feasible topo goal;
  (* Per-link constants. *)
  let src = Array.make m 0 and dst = Array.make m 0 and cost = Array.make m 0. in
  List.iter
    (fun (e : Topology.edge) ->
      src.(e.id) <- e.src;
      dst.(e.id) <- e.dst;
      cost.(e.id) <- Link.cost e.link chunk_size)
    (Topology.edges topo);
  (* Chunk placement state. *)
  let arrival = Array.make_matrix n num_chunks infinity in
  let holds = Array.init n (fun _ -> Ivec.create ()) in
  (* wants.(d) lists the chunks of d's still-unsatisfied postconditions;
     wants_pos.(d).(c) is c's index inside it (-1 when absent). *)
  let wants = Array.init n (fun _ -> Ivec.create ()) in
  let wants_pos = Array.make_matrix n num_chunks (-1) in
  List.iter
    (fun (d, c) ->
      if arrival.(d).(c) = infinity then begin
        arrival.(d).(c) <- 0.;
        Ivec.push holds.(d) c
      end)
    goal.precondition;
  let unsatisfied = ref 0 in
  List.iter
    (fun (d, c) ->
      if arrival.(d).(c) = infinity && wants_pos.(d).(c) < 0 then begin
        wants_pos.(d).(c) <- Ivec.length wants.(d);
        Ivec.push wants.(d) c;
        incr unsatisfied
      end)
    goal.postcondition;
  let link_free = Array.make m 0. in
  let events = Fheap.create () in
  let sends = ref [] in
  let rounds = ref 0 and matches = ref 0 in
  let idle = Array.make m 0 in
  let now = ref 0. in
  (* Failed-scan memoization: a link that found no matchable chunk needs no
     rescan until its source gains a chunk or its destination's wants
     change. This keeps the per-round work proportional to state changes,
     preserving the O(n^2)-in-search-space scaling of §VI-C. *)
  let has_version = Array.make n 0 in
  let wants_version = Array.make n 0 in
  let scanned_has = Array.make m (-1) in
  let scanned_wants = Array.make m (-1) in
  (* Pick a chunk that [s] holds (arrived by [now]) and [d] still wants, by
     scanning the smaller of the two sets from a random offset. [saw_pending]
     is set when a candidate was rejected only because it is still in flight
     towards [s] — such a failure must not be memoized, since it resolves
     without any version bump. *)
  let saw_pending = ref false in
  let obs_on = Obs.enabled () in
  let probes = ref 0 in
  let pick_chunk s d =
    let t = !now in
    saw_pending := false;
    probes := 0;
    let found =
      if Ivec.length holds.(s) <= Ivec.length wants.(d) then begin
        let len = Ivec.length holds.(s) in
        if len = 0 then -1
        else begin
          let i =
            Ivec.exists_from holds.(s) ~start:(Rng.int rng len) (fun c ->
                if obs_on then incr probes;
                wants_pos.(d).(c) >= 0
                &&
                if arrival.(s).(c) <= t then true
                else begin
                  saw_pending := true;
                  false
                end)
          in
          if i < 0 then -1 else Ivec.get holds.(s) i
        end
      end
      else begin
        let len = Ivec.length wants.(d) in
        if len = 0 then -1
        else begin
          let i =
            Ivec.exists_from wants.(d) ~start:(Rng.int rng len) (fun c ->
                if obs_on then incr probes;
                if arrival.(s).(c) <= t then true
                else begin
                  if arrival.(s).(c) < infinity then saw_pending := true;
                  false
                end)
          in
          if i < 0 then -1 else Ivec.get wants.(d) i
        end
      end
    in
    if obs_on then begin
      Obs.incr obs_pick_scans;
      Obs.observe obs_scan_len (float_of_int !probes)
    end;
    found
  in
  let remove_want d c =
    let i = wants_pos.(d).(c) in
    let moved = Ivec.swap_remove wants.(d) i in
    wants_pos.(d).(c) <- -1;
    if moved >= 0 then wants_pos.(d).(moved) <- i
  in
  (* One expansion round (§IV-F), bound once so the traced loop below
     allocates nothing per iteration when tracing is off. *)
  let round_body () =
    incr rounds;
    Obs.incr obs_rounds;
    let t = !now in
    (* Gather the idle links, shuffle, then order cheapest-first (§IV-F). *)
    let idle_count = ref 0 in
    for e = 0 to m - 1 do
      if link_free.(e) <= t && Ivec.length wants.(dst.(e)) > 0 then begin
        idle.(!idle_count) <- e;
        incr idle_count
      end
    done;
    let idle_links = Array.sub idle 0 !idle_count in
    if obs_on then Obs.observe obs_idle_links (float_of_int !idle_count);
    Rng.shuffle_in_place rng idle_links;
    if prefer_cheap_links then
      Array.stable_sort (fun a b -> compare cost.(a) cost.(b)) idle_links;
    Array.iter
      (fun e ->
        let d = dst.(e) and s = src.(e) in
        if Ivec.length wants.(d) > 0 then begin
          if
            scanned_has.(e) = has_version.(s)
            && scanned_wants.(e) = wants_version.(d)
          then Obs.incr obs_memo_hits
          else begin
          let c = pick_chunk s d in
          if c >= 0 then begin
            let finish = t +. cost.(e) in
            sends :=
              { Schedule.chunk = c; edge = e; src = s; dst = d; start = t; finish }
              :: !sends;
            arrival.(d).(c) <- finish;
            Ivec.push holds.(d) c;
            has_version.(d) <- has_version.(d) + 1;
            remove_want d c;
            wants_version.(d) <- wants_version.(d) + 1;
            link_free.(e) <- finish;
            Fheap.push events finish;
            decr unsatisfied;
            incr matches;
            Obs.incr obs_matches
          end
          else if not !saw_pending then begin
            scanned_has.(e) <- has_version.(s);
            scanned_wants.(e) <- wants_version.(d)
          end
          end
        end)
      idle_links;
    if !unsatisfied > 0 then
      match Fheap.pop_above events t with
      | Some t' -> now := t'
      | None ->
        raise
          (Stuck
             (Printf.sprintf
                "no progress possible with %d postconditions unsatisfied — is \
                 the topology strongly connected?"
                !unsatisfied))
  in
  while !unsatisfied > 0 do
    Trace.with_span "round" round_body
  done;
  (Schedule.make !sends, !rounds, !matches)

let synthesize_simple ~prefer_cheap_links rng topo (spec : Spec.t) =
  match spec.pattern with
  | Pattern.All_gather | Pattern.Broadcast _ ->
    synthesize_pull ~prefer_cheap_links rng topo (goal_of_spec spec)
  | Pattern.Reduce_scatter | Pattern.Reduce _ ->
    (* §IV-E: synthesize the non-combining counterpart on the reversed
       topology, then mirror the schedule in time and direction. *)
    let sched, rounds, matches =
      synthesize_pull ~prefer_cheap_links rng (Topology.reverse topo)
        (goal_of_spec (Spec.reverse spec))
    in
    (Schedule.reverse sched, rounds, matches)
  | Pattern.All_reduce -> assert false (* handled by the caller *)
  | Pattern.Gather _ | Pattern.Scatter _ ->
    raise
      (Unsupported
         (Pattern.name spec.pattern
         ^ ": rooted gather/scatter have no pulling intermediate \
            postconditions; use the time-space router (Tacos.Router)"))
  | Pattern.All_to_all ->
    raise
      (Unsupported
         "All-to-All has pairwise demands the matching loop cannot pull; \
          use Tacos.Router (or Tacos.Alltoall)")

(* One full trial, returning (schedule, phases, rounds, matches). *)
let trial_untimed ~prefer_cheap_links rng topo (spec : Spec.t) =
  match spec.pattern with
  | Pattern.All_reduce ->
    let rs, r1, m1 =
      synthesize_simple ~prefer_cheap_links rng topo
        (Spec.with_pattern spec Pattern.Reduce_scatter)
    in
    let ag, r2, m2 =
      synthesize_simple ~prefer_cheap_links rng topo
        (Spec.with_pattern spec Pattern.All_gather)
    in
    let ag_shifted = Schedule.shift ag rs.Schedule.makespan in
    (Schedule.concat rs ag, Some (rs, ag_shifted), r1 + r2, m1 + m2)
  | _ ->
    let sched, rounds, matches = synthesize_simple ~prefer_cheap_links rng topo spec in
    (sched, None, rounds, matches)

let trial ~prefer_cheap_links rng topo spec =
  let ((sched, _, _, _) as result) =
    Obs.time obs_trial_timer (fun () -> trial_untimed ~prefer_cheap_links rng topo spec)
  in
  Obs.observe obs_trial_makespan sched.Schedule.makespan;
  result

let synthesize ?(seed = 42) ?(trials = 1) ?(domains = 1) ?(prefer_cheap_links = true)
    topo spec =
  if trials <= 0 then invalid_arg "Synthesizer.synthesize: trials must be positive";
  if domains <= 0 then invalid_arg "Synthesizer.synthesize: domains must be positive";
  if Topology.num_npus topo <> spec.Spec.npus then
    invalid_arg "Synthesizer.synthesize: spec NPU count does not match topology";
  let t0 = Unix.gettimeofday () in
  (* Per-trial seeds drawn up front so the outcome is independent of how the
     trials are spread over domains. *)
  let master = Rng.create seed in
  let seeds = Array.init trials (fun _ -> Int64.to_int (Rng.bits64 master)) in
  (* Force the topology's lazy caches before sharing it across domains. *)
  ignore (Topology.edges topo);
  let run_trial i =
    (* Stamp every Obs/Trace record of this trial — including the rounds of
       a worker domain — with the trial index, so interleaved multi-domain
       buffers stay attributable. *)
    Obs.with_trial i (fun () ->
        Trace.with_span "trial" (fun () ->
            trial ~prefer_cheap_links (Rng.create seeds.(i)) topo spec))
  in
  let results =
    (* Trials run on the shared pool so trial- and group-parallelism draw
       from one worker budget; results are consumed in index order, so the
       merge below never depends on execution interleaving. *)
    if domains = 1 || trials = 1 then Array.init trials run_trial
    else Pool.map (Pool.global ~size:domains ()) run_trial trials
  in
  let rounds = ref 0 and matches = ref 0 in
  Array.iter
    (fun (_, _, r, m) ->
      rounds := !rounds + r;
      matches := !matches + m)
    results;
  let best = ref 0 in
  Array.iteri
    (fun i (sched, _, _, _) ->
      let (best_sched, _, _, _) = results.(!best) in
      if sched.Schedule.makespan < best_sched.Schedule.makespan then best := i)
    results;
  let schedule, phases, _, _ = results.(!best) in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  {
    spec;
    schedule;
    collective_time = schedule.Schedule.makespan;
    phases;
    stats = { wall_seconds; rounds = !rounds; matches = !matches; trials };
  }

let synthesize_goal ?(seed = 42) ?(trials = 1) ?(domains = 1)
    ?(prefer_cheap_links = true) topo goal =
  if trials <= 0 then
    invalid_arg "Synthesizer.synthesize_goal: trials must be positive";
  if domains <= 0 then
    invalid_arg "Synthesizer.synthesize_goal: domains must be positive";
  validate_goal topo goal;
  let t0 = Unix.gettimeofday () in
  let master = Rng.create seed in
  let seeds = Array.init trials (fun _ -> Int64.to_int (Rng.bits64 master)) in
  ignore (Topology.edges topo);
  let run_trial i =
    Obs.with_trial i (fun () ->
        Trace.with_span "trial" (fun () ->
            let ((sched, _, _) as r) =
              Obs.time obs_trial_timer (fun () ->
                  synthesize_pull ~prefer_cheap_links (Rng.create seeds.(i)) topo
                    goal)
            in
            Obs.observe obs_trial_makespan sched.Schedule.makespan;
            r))
  in
  let results =
    if domains = 1 || trials = 1 then Array.init trials run_trial
    else Pool.map (Pool.global ~size:domains ()) run_trial trials
  in
  let rounds = ref 0 and matches = ref 0 in
  Array.iter
    (fun (_, r, m) ->
      rounds := !rounds + r;
      matches := !matches + m)
    results;
  (* Lowest makespan wins; ties break to the earliest trial index, exactly
     as the sequential loop did. *)
  let best = ref 0 in
  Array.iteri
    (fun i (sched, _, _) ->
      let best_sched, _, _ = results.(!best) in
      if sched.Schedule.makespan < best_sched.Schedule.makespan then best := i)
    results;
  let schedule, _, _ = results.(!best) in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  (schedule, { wall_seconds; rounds = !rounds; matches = !matches; trials })

let verify topo result =
  match result.spec.Spec.pattern with
  | Pattern.All_reduce -> (
    match result.phases with
    | Some (rs, ag) ->
      Schedule.validate_all_reduce topo result.spec ~reduce_scatter:rs ~all_gather:ag
    | None -> Error "All-Reduce result carries no phase split")
  | _ -> Schedule.validate topo result.spec result.schedule
