(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective
module Rng = Tacos_util.Rng
module Fheap = Tacos_util.Fheap
module Ivec = Tacos_util.Ivec
module Pool = Tacos_util.Pool
module Deadline = Tacos_util.Deadline
module Obs = Tacos_obs.Obs
module Trace = Tacos_obs.Trace
module Ten = Tacos_ten.Ten
module Iset = Set.Make (Int)

let obs_rounds = Obs.counter "synth.rounds"
let obs_matches = Obs.counter "synth.matches"
let obs_pick_scans = Obs.counter "synth.pick_scans"
let obs_memo_hits = Obs.counter "synth.memo_hits"
let obs_idle_links = Obs.histogram "synth.idle_links"
let obs_scan_len = Obs.histogram "synth.pick_scan_len"
let obs_trial_makespan = Obs.histogram "synth.trial_makespan"
let obs_trial_timer = Obs.timer "synth.trial_seconds"

(* Bumped once per trial that runs over a caller-cached {!Ten.Expansion}
   instead of re-materializing the per-link arrays — the counter mid-flight
   repair uses to prove it reuses the healthy synthesis's TEN state. *)
let obs_ten_reuse = Obs.counter "synth.repair_ten_reuse"

type stats = { wall_seconds : float; rounds : int; matches : int; trials : int }

type result = {
  spec : Spec.t;
  schedule : Schedule.t;
  collective_time : float;
  phases : (Schedule.t * Schedule.t) option;
  stats : stats;
}

exception Unsupported of string
exception Stuck of string
exception Deadline_exceeded

(* The matcher-facing compilation target of a communication sketch
   ([Tacos_sketch.Sketch.compile]): plain link/chunk id lists, already
   validated structurally by the sketch layer. The synthesizer re-checks
   only cheap range invariants — callers handing a malformed record get
   [Invalid_argument], not a typed infeasibility. *)
type constraints = {
  forbid : int list;  (** link ids that must carry nothing *)
  prefer : (int * float) list;
      (** (link id, weight > 0): divide the link's §IV-F ordering cost by
          the weight, so weighted links sort (and match) first *)
  pin : (int * int list) list;
      (** (chunk id, route): the chunk may only travel the route's links *)
}

let no_constraints = { forbid = []; prefer = []; pin = [] }

(* A synthesis goal in positional form: where the chunks are and where they
   must end up, untied from any collective pattern. Specs lower to goals
   ([goal_of_spec]); mid-flight repair builds goals directly from the chunk
   positions observed at the fault time.

   Reduction state rides along as two extra fields. [contributors] lists the
   ranks whose input each chunk reduces over (empty for a pure-movement
   goal); [partials] lists in-flight partial sums — a copy at [npu] of
   [chunk] that has absorbed exactly the contributions of [absorbed]. The
   [precondition] then lists only *fully reduced* copies. Per chunk, the
   active partials' absorbed sets must partition the contributor set not yet
   covered by a full copy — the invariant reduction replay maintains. *)
type goal = {
  num_chunks : int;
  chunk_size : float;
  precondition : (int * int) list;
  postcondition : (int * int) list;
  contributors : (int * int) list;
  partials : (int * int * int list) list;
}

let goal_of_spec spec =
  {
    num_chunks = Spec.num_chunks spec;
    chunk_size = Spec.chunk_size spec;
    precondition = Spec.precondition spec;
    postcondition = Spec.postcondition spec;
    contributors = [];
    partials = [];
  }

let validate_goal ~num_npus:n goal =
  if goal.num_chunks <= 0 then
    invalid_arg "Synthesizer: goal.num_chunks must be positive";
  if not (goal.chunk_size > 0.) then
    invalid_arg "Synthesizer: goal.chunk_size must be positive";
  let check_pair what (d, c) =
    if d < 0 || d >= n then
      invalid_arg (Printf.sprintf "Synthesizer: goal %s names NPU %d" what d);
    if c < 0 || c >= goal.num_chunks then
      invalid_arg (Printf.sprintf "Synthesizer: goal %s names chunk %d" what c)
  in
  List.iter (check_pair "precondition") goal.precondition;
  List.iter (check_pair "postcondition") goal.postcondition;
  List.iter (check_pair "contributors") goal.contributors;
  List.iter
    (fun (v, c, absorbed) ->
      check_pair "partials" (v, c);
      List.iter (fun r -> check_pair "partials" (r, c)) absorbed)
    goal.partials

(* Fail fast on broken fabrics: a postcondition (d, c) is satisfiable iff
   some initial holder of c can reach d. Strong connectivity implies every
   postcondition is reachable, so the O(n·(n+m)) analysis only runs after
   the cheap connectivity test fails — the healthy-fabric path pays one
   DFS pair per trial. *)
let unreachable_postconditions topo goal =
  let n = Topology.num_npus topo in
  let reach_cache = Hashtbl.create 8 in
  let reachable_from s =
    match Hashtbl.find_opt reach_cache s with
    | Some seen -> seen
    | None ->
      let seen = Array.make n false in
      let rec visit v =
        if not seen.(v) then begin
          seen.(v) <- true;
          List.iter (fun (e : Topology.edge) -> visit e.dst) (Topology.out_edges topo v)
        end
      in
      visit s;
      Hashtbl.add reach_cache s seen;
      seen
  in
  let holders = Hashtbl.create 16 in
  List.iter
    (fun (v, c) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt holders c) in
      Hashtbl.replace holders c (v :: prev))
    goal.precondition;
  List.filter
    (fun (d, c) ->
      match Hashtbl.find_opt holders c with
      | None -> true
      | Some hs -> not (List.exists (fun h -> (reachable_from h).(d)) hs))
    goal.postcondition

let stuck_on_unreachable unreachable =
  let total = List.length unreachable in
  let shown = List.filteri (fun i _ -> i < 6) unreachable in
  let pairs =
    String.concat ", "
      (List.map (fun (d, c) -> Printf.sprintf "chunk %d -> NPU %d" c d) shown)
  in
  let suffix = if total > List.length shown then ", ..." else "" in
  raise
    (Stuck
       (Printf.sprintf
          "topology is not strongly connected: %d unreachable \
           postcondition%s (%s%s)"
          total
          (if total = 1 then "" else "s")
          pairs suffix))

let check_feasible topo goal =
  if not (Topology.is_strongly_connected topo) then begin
    match unreachable_postconditions topo goal with
    | [] -> () (* e.g. Broadcast whose root reaches everyone *)
    | unreachable -> stuck_on_unreachable unreachable
  end

(* Feasibility on a masked fabric: the expansion's healthy link ids with the
   [dead] subset removed. Reachability runs over the adjacency arrays, so a
   renumbered degraded topology copy never needs to exist. *)
let check_feasible_masked exp ~dead_mask goal =
  let n = Ten.Expansion.num_npus exp in
  let out_links = Ten.Expansion.out_links exp in
  let dst = Ten.Expansion.dst exp in
  let reach_cache = Hashtbl.create 8 in
  let reachable_from s =
    match Hashtbl.find_opt reach_cache s with
    | Some seen -> seen
    | None ->
      let seen = Array.make n false in
      let rec visit v =
        if not seen.(v) then begin
          seen.(v) <- true;
          Array.iter
            (fun e -> if not dead_mask.(e) then visit dst.(e))
            out_links.(v)
        end
      in
      visit s;
      Hashtbl.add reach_cache s seen;
      seen
  in
  let holders = Hashtbl.create 16 in
  List.iter
    (fun (v, c) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt holders c) in
      Hashtbl.replace holders c (v :: prev))
    goal.precondition;
  match
    List.filter
      (fun (d, c) ->
        match Hashtbl.find_opt holders c with
        | None -> true
        | Some hs -> not (List.exists (fun h -> (reachable_from h).(d)) hs))
      goal.postcondition
  with
  | [] -> ()
  | unreachable -> stuck_on_unreachable unreachable

(* One synthesis trial of a pull-based (non-combining) pattern: All-Gather or
   Broadcast. This is Alg. 2 with Alg. 1 run at every event time.

   The matching loop decomposes exactly per destination: every link has a
   single destination NPU, so matches competing for a link always serve the
   same destination, and a chunk may legally leave one source over several
   links at once. We therefore iterate over idle links (cheapest first, random
   tie-break) and pick a random chunk from [holds(src) ∩ wants(dst)] — the
   same greedy maximal matching as iterating shuffled postconditions, found
   by scanning whichever of the two sets is smaller. *)
let synthesize_pull ~prefer_cheap_links ?deadline ?reuse ?(dead = [])
    ?(slowed = []) ?(constraints = no_constraints) rng topo goal =
  let exp =
    match reuse with Some e -> e | None -> Ten.Expansion.prepare topo
  in
  let n = Ten.Expansion.num_npus exp in
  let num_chunks = goal.num_chunks in
  let chunk_size = goal.chunk_size in
  let m = Ten.Expansion.num_links exp in
  if m = 0 && n > 1 then raise (Stuck "topology has no links");
  (* Per-link constants. [src]/[dst] alias the expansion's arrays (read-only
     here); the cost array is per-trial since [slowed] scales links. *)
  let src = Ten.Expansion.src exp and dst = Ten.Expansion.dst exp in
  let alpha = Ten.Expansion.alpha exp and beta = Ten.Expansion.beta exp in
  let cost = Array.init m (fun e -> alpha.(e) +. (beta.(e) *. chunk_size)) in
  List.iter
    (fun (e, factor) ->
      if e < 0 || e >= m then invalid_arg "Synthesizer: slowed link out of range";
      if not (factor >= 1.) then
        invalid_arg "Synthesizer: slowdown factor must be >= 1";
      cost.(e) <- cost.(e) *. factor)
    slowed;
  (* Forbidden links ride the dead-link machinery: never free, masked out of
     the feasibility check, absent from the candidate scan — and an empty
     sketch leaves the RNG draw sequence bit-identical. *)
  let dead =
    match constraints.forbid with
    | [] -> dead
    | forbid ->
      List.iter
        (fun e ->
          if e < 0 || e >= m then
            invalid_arg "Synthesizer: sketch forbids a link out of range")
        forbid;
      dead @ forbid
  in
  (* Preference weights bias only the §IV-F match *ordering*, never the
     transfer duration: sorting reads [order_cost], the schedule [cost]. *)
  let order_cost =
    match constraints.prefer with
    | [] -> cost
    | prefs ->
      let oc = Array.copy cost in
      List.iter
        (fun (e, w) ->
          if e < 0 || e >= m then
            invalid_arg "Synthesizer: sketch prefers a link out of range";
          if not (w > 0.) then
            invalid_arg "Synthesizer: sketch preference weight must be positive";
          oc.(e) <- oc.(e) /. w)
        prefs;
      oc
  in
  (* Per-chunk allowed-route sets; duplicate pins of one chunk intersect. *)
  let has_pins = constraints.pin <> [] in
  let pins =
    if not has_pins then [||]
    else begin
      let a = Array.make num_chunks None in
      List.iter
        (fun (c, route) ->
          if c < 0 || c >= num_chunks then
            invalid_arg "Synthesizer: sketch pins a chunk out of range";
          List.iter
            (fun e ->
              if e < 0 || e >= m then
                invalid_arg "Synthesizer: sketch pin names a link out of range")
            route;
          let set = Iset.of_list route in
          a.(c) <-
            Some (match a.(c) with None -> set | Some prev -> Iset.inter prev set))
        constraints.pin;
      a
    end
  in
  let pin_ok e c =
    (not has_pins)
    || match pins.(c) with None -> true | Some route -> Iset.mem e route
  in
  (match dead with
  | [] -> check_feasible topo goal
  | _ ->
    let dead_mask = Array.make m false in
    List.iter
      (fun e ->
        if e < 0 || e >= m then invalid_arg "Synthesizer: dead link out of range";
        dead_mask.(e) <- true)
      dead;
    check_feasible_masked exp ~dead_mask goal);
  (* Chunk placement state. *)
  let arrival = Array.make_matrix n num_chunks infinity in
  let holds = Array.init n (fun _ -> Ivec.create ()) in
  (* wants.(d) lists the chunks of d's still-unsatisfied postconditions;
     wants_pos.(d).(c) is c's index inside it (-1 when absent). *)
  let wants = Array.init n (fun _ -> Ivec.create ()) in
  let wants_pos = Array.make_matrix n num_chunks (-1) in
  List.iter
    (fun (d, c) ->
      if arrival.(d).(c) = infinity then begin
        arrival.(d).(c) <- 0.;
        Ivec.push holds.(d) c
      end)
    goal.precondition;
  let unsatisfied = ref 0 in
  List.iter
    (fun (d, c) ->
      if arrival.(d).(c) = infinity && wants_pos.(d).(c) < 0 then begin
        wants_pos.(d).(c) <- Ivec.length wants.(d);
        Ivec.push wants.(d) c;
        incr unsatisfied
      end)
    goal.postcondition;
  let link_free = Array.make m 0. in
  (* A dead link is simply never free again — the idle-link gather skips it,
     the event heap never schedules it, and (crucially) the RNG draw sequence
     of the healthy path is untouched when the mask is empty. *)
  List.iter (fun e -> link_free.(e) <- infinity) dead;
  let events = Fheap.create () in
  let sends = ref [] in
  let rounds = ref 0 and matches = ref 0 in
  let idle = Array.make m 0 in
  let now = ref 0. in
  (* Failed-scan memoization: a link that found no matchable chunk needs no
     rescan until its source gains a chunk or its destination's wants
     change. This keeps the per-round work proportional to state changes,
     preserving the O(n^2)-in-search-space scaling of §VI-C. *)
  let has_version = Array.make n 0 in
  let wants_version = Array.make n 0 in
  let scanned_has = Array.make m (-1) in
  let scanned_wants = Array.make m (-1) in
  (* Pick a chunk that [s] holds (arrived by [now]) and [d] still wants, by
     scanning the smaller of the two sets from a random offset. [saw_pending]
     is set when a candidate was rejected only because it is still in flight
     towards [s] — such a failure must not be memoized, since it resolves
     without any version bump. *)
  let saw_pending = ref false in
  let obs_on = Obs.enabled () in
  let probes = ref 0 in
  let pick_chunk e s d =
    let t = !now in
    saw_pending := false;
    probes := 0;
    (* Pin filtering precedes the arrival check: a pinned-away chunk is a
       *static* rejection, so it must not set [saw_pending] (which would
       defeat the failed-scan memoization below). *)
    let found =
      if Ivec.length holds.(s) <= Ivec.length wants.(d) then begin
        let len = Ivec.length holds.(s) in
        if len = 0 then -1
        else begin
          let i =
            Ivec.exists_from holds.(s) ~start:(Rng.int rng len) (fun c ->
                if obs_on then incr probes;
                wants_pos.(d).(c) >= 0
                && pin_ok e c
                &&
                if arrival.(s).(c) <= t then true
                else begin
                  saw_pending := true;
                  false
                end)
          in
          if i < 0 then -1 else Ivec.get holds.(s) i
        end
      end
      else begin
        let len = Ivec.length wants.(d) in
        if len = 0 then -1
        else begin
          let i =
            Ivec.exists_from wants.(d) ~start:(Rng.int rng len) (fun c ->
                if obs_on then incr probes;
                pin_ok e c
                &&
                if arrival.(s).(c) <= t then true
                else begin
                  if arrival.(s).(c) < infinity then saw_pending := true;
                  false
                end)
          in
          if i < 0 then -1 else Ivec.get wants.(d) i
        end
      end
    in
    if obs_on then begin
      Obs.incr obs_pick_scans;
      Obs.observe obs_scan_len (float_of_int !probes)
    end;
    found
  in
  let remove_want d c =
    let i = wants_pos.(d).(c) in
    let moved = Ivec.swap_remove wants.(d) i in
    wants_pos.(d).(c) <- -1;
    if moved >= 0 then wants_pos.(d).(moved) <- i
  in
  (* One expansion round (§IV-F), bound once so the traced loop below
     allocates nothing per iteration when tracing is off. *)
  let round_body () =
    incr rounds;
    Obs.incr obs_rounds;
    let t = !now in
    (* Gather the idle links, shuffle, then order cheapest-first (§IV-F). *)
    let idle_count = ref 0 in
    for e = 0 to m - 1 do
      if link_free.(e) <= t && Ivec.length wants.(dst.(e)) > 0 then begin
        idle.(!idle_count) <- e;
        incr idle_count
      end
    done;
    let idle_links = Array.sub idle 0 !idle_count in
    if obs_on then Obs.observe obs_idle_links (float_of_int !idle_count);
    Rng.shuffle_in_place rng idle_links;
    if prefer_cheap_links then
      Array.stable_sort (fun a b -> compare order_cost.(a) order_cost.(b)) idle_links;
    Array.iter
      (fun e ->
        let d = dst.(e) and s = src.(e) in
        if Ivec.length wants.(d) > 0 then begin
          if
            scanned_has.(e) = has_version.(s)
            && scanned_wants.(e) = wants_version.(d)
          then Obs.incr obs_memo_hits
          else begin
          let c = pick_chunk e s d in
          if c >= 0 then begin
            let finish = t +. cost.(e) in
            sends :=
              { Schedule.chunk = c; edge = e; src = s; dst = d; start = t; finish }
              :: !sends;
            arrival.(d).(c) <- finish;
            Ivec.push holds.(d) c;
            has_version.(d) <- has_version.(d) + 1;
            remove_want d c;
            wants_version.(d) <- wants_version.(d) + 1;
            link_free.(e) <- finish;
            Fheap.push events finish;
            decr unsatisfied;
            incr matches;
            Obs.incr obs_matches
          end
          else if not !saw_pending then begin
            scanned_has.(e) <- has_version.(s);
            scanned_wants.(e) <- wants_version.(d)
          end
          end
        end)
      idle_links;
    if !unsatisfied > 0 then
      match Fheap.pop_above events t with
      | Some t' -> now := t'
      | None ->
        raise
          (Stuck
             (Printf.sprintf
                "no progress possible with %d postconditions unsatisfied — is \
                 the topology strongly connected?"
                !unsatisfied))
  in
  (* The cooperative cancellation point: one wall-clock poll per expansion
     round, between rounds — a round's matching work is never left half
     applied, and a raise here publishes no partial schedule. *)
  while !unsatisfied > 0 do
    (match deadline with
    | Some d when Deadline.expired d -> raise Deadline_exceeded
    | _ -> ());
    Trace.with_span "round" round_body
  done;
  (Schedule.make !sends, !rounds, !matches)

let synthesize_simple ~prefer_cheap_links ?deadline ~constraints rng topo
    (spec : Spec.t) =
  match spec.pattern with
  | Pattern.All_gather | Pattern.Broadcast _ ->
    synthesize_pull ~prefer_cheap_links ?deadline ~constraints rng topo
      (goal_of_spec spec)
  | Pattern.Reduce_scatter | Pattern.Reduce _ ->
    (* §IV-E: synthesize the non-combining counterpart on the reversed
       topology, then mirror the schedule in time and direction. Link ids
       are preserved by the reversal, so the same sketch constraints apply
       verbatim to the mirrored phase. *)
    let sched, rounds, matches =
      synthesize_pull ~prefer_cheap_links ?deadline ~constraints rng
        (Topology.reverse topo)
        (goal_of_spec (Spec.reverse spec))
    in
    (Schedule.reverse sched, rounds, matches)
  | Pattern.All_reduce -> assert false (* handled by the caller *)
  | Pattern.Gather _ | Pattern.Scatter _ ->
    raise
      (Unsupported
         (Pattern.name spec.pattern
         ^ ": rooted gather/scatter have no pulling intermediate \
            postconditions; use the time-space router (Tacos.Router)"))
  | Pattern.All_to_all ->
    raise
      (Unsupported
         "All-to-All has pairwise demands the matching loop cannot pull; \
          use Tacos.Router (or Tacos.Alltoall)")

(* One full trial, returning (schedule, phases, rounds, matches). *)
let trial_untimed ~prefer_cheap_links ?deadline ~constraints rng topo
    (spec : Spec.t) =
  match spec.pattern with
  | Pattern.All_reduce ->
    let rs, r1, m1 =
      synthesize_simple ~prefer_cheap_links ?deadline ~constraints rng topo
        (Spec.with_pattern spec Pattern.Reduce_scatter)
    in
    let ag, r2, m2 =
      synthesize_simple ~prefer_cheap_links ?deadline ~constraints rng topo
        (Spec.with_pattern spec Pattern.All_gather)
    in
    let ag_shifted = Schedule.shift ag rs.Schedule.makespan in
    (Schedule.concat rs ag, Some (rs, ag_shifted), r1 + r2, m1 + m2)
  | _ ->
    let sched, rounds, matches =
      synthesize_simple ~prefer_cheap_links ?deadline ~constraints rng topo spec
    in
    (sched, None, rounds, matches)

let trial ~prefer_cheap_links ?deadline ~constraints rng topo spec =
  let ((sched, _, _, _) as result) =
    Obs.time obs_trial_timer (fun () ->
        trial_untimed ~prefer_cheap_links ?deadline ~constraints rng topo spec)
  in
  Obs.observe obs_trial_makespan sched.Schedule.makespan;
  result

let synthesize ?(seed = 42) ?(trials = 1) ?(domains = 1) ?(prefer_cheap_links = true)
    ?deadline ?(sketch = no_constraints) topo spec =
  if trials <= 0 then invalid_arg "Synthesizer.synthesize: trials must be positive";
  if domains <= 0 then invalid_arg "Synthesizer.synthesize: domains must be positive";
  if Topology.num_npus topo <> spec.Spec.npus then
    invalid_arg "Synthesizer.synthesize: spec NPU count does not match topology";
  let t0 = Unix.gettimeofday () in
  (* Per-trial seeds drawn up front so the outcome is independent of how the
     trials are spread over domains. *)
  let master = Rng.create seed in
  let seeds = Array.init trials (fun _ -> Int64.to_int (Rng.bits64 master)) in
  (* Force the topology's lazy caches before sharing it across domains. *)
  ignore (Topology.edges topo);
  let run_trial i =
    (* Stamp every Obs/Trace record of this trial — including the rounds of
       a worker domain — with the trial index, so interleaved multi-domain
       buffers stay attributable. *)
    Obs.with_trial i (fun () ->
        Trace.with_span "trial" (fun () ->
            trial ~prefer_cheap_links ?deadline ~constraints:sketch
              (Rng.create seeds.(i)) topo spec))
  in
  let results =
    (* Trials run on the shared pool so trial- and group-parallelism draw
       from one worker budget; results are consumed in index order, so the
       merge below never depends on execution interleaving. *)
    if domains = 1 || trials = 1 then Array.init trials run_trial
    else Pool.map (Pool.global ~size:domains ()) run_trial trials
  in
  let rounds = ref 0 and matches = ref 0 in
  Array.iter
    (fun (_, _, r, m) ->
      rounds := !rounds + r;
      matches := !matches + m)
    results;
  let best = ref 0 in
  Array.iteri
    (fun i (sched, _, _, _) ->
      let (best_sched, _, _, _) = results.(!best) in
      if sched.Schedule.makespan < best_sched.Schedule.makespan then best := i)
    results;
  let schedule, phases, _, _ = results.(!best) in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  {
    spec;
    schedule;
    collective_time = schedule.Schedule.makespan;
    phases;
    stats = { wall_seconds; rounds = !rounds; matches = !matches; trials };
  }

let synthesize_goal ?(seed = 42) ?(trials = 1) ?(domains = 1)
    ?(prefer_cheap_links = true) ?deadline ?reuse ?(dead = []) ?(slowed = [])
    topo goal =
  if trials <= 0 then
    invalid_arg "Synthesizer.synthesize_goal: trials must be positive";
  if domains <= 0 then
    invalid_arg "Synthesizer.synthesize_goal: domains must be positive";
  if goal.partials <> [] then
    invalid_arg
      "Synthesizer.synthesize_goal: goal carries partial sums; use \
       synthesize_goal_plan";
  validate_goal ~num_npus:(Topology.num_npus topo) goal;
  let t0 = Unix.gettimeofday () in
  let master = Rng.create seed in
  let seeds = Array.init trials (fun _ -> Int64.to_int (Rng.bits64 master)) in
  ignore (Topology.edges topo);
  let run_trial i =
    Obs.with_trial i (fun () ->
        Trace.with_span "trial" (fun () ->
            let ((sched, _, _) as r) =
              Obs.time obs_trial_timer (fun () ->
                  if Option.is_some reuse then Obs.incr obs_ten_reuse;
                  synthesize_pull ~prefer_cheap_links ?deadline ?reuse ~dead
                    ~slowed (Rng.create seeds.(i)) topo goal)
            in
            Obs.observe obs_trial_makespan sched.Schedule.makespan;
            r))
  in
  let results =
    if domains = 1 || trials = 1 then Array.init trials run_trial
    else Pool.map (Pool.global ~size:domains ()) run_trial trials
  in
  let rounds = ref 0 and matches = ref 0 in
  Array.iter
    (fun (_, r, m) ->
      rounds := !rounds + r;
      matches := !matches + m)
    results;
  (* Lowest makespan wins; ties break to the earliest trial index, exactly
     as the sequential loop did. *)
  let best = ref 0 in
  Array.iteri
    (fun i (sched, _, _) ->
      let best_sched, _, _ = results.(!best) in
      if sched.Schedule.makespan < best_sched.Schedule.makespan then best := i)
    results;
  let schedule, _, _ = results.(!best) in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  (schedule, { wall_seconds; rounds = !rounds; matches = !matches; trials })

(* --- reduction-aware plan synthesis ------------------------------------ *)

type plan = { combining : Schedule.t; pull : Schedule.t }

(* Per-chunk reduction bookkeeping derived from a goal, after normalizing
   partials that absorbed every contribution into precondition entries. *)
type reduction_state = {
  contrib : Iset.t array;  (* per chunk: contributing ranks *)
  actives : (int * Iset.t) list array;  (* per chunk: live partial copies *)
  full : (int * int) list;  (* fully-reduced copies, precondition form *)
}

let reduction_state_of_goal goal =
  let contrib = Array.make goal.num_chunks Iset.empty in
  List.iter
    (fun (v, c) -> contrib.(c) <- Iset.add v contrib.(c))
    goal.contributors;
  let actives = Array.make goal.num_chunks [] in
  let full = ref goal.precondition in
  List.iter
    (fun (v, c, absorbed) ->
      let set = Iset.of_list absorbed in
      if Iset.is_empty set then () (* spent copy: nothing left to move *)
      else if Iset.equal set contrib.(c) then full := (v, c) :: !full
      else if not (Iset.subset set contrib.(c)) then
        invalid_arg
          (Printf.sprintf
             "Synthesizer: partial at NPU %d absorbed a non-contributor of \
              chunk %d"
             v c)
      else
        (* Co-located partials are one accumulator; the double-absorption
           check below still sees the raw cardinalities. *)
        match List.assoc_opt v actives.(c) with
        | Some prev ->
          if not (Iset.disjoint prev set) then
            invalid_arg
              (Printf.sprintf
                 "Synthesizer: partial sums of chunk %d absorb a contribution \
                  twice"
                 c);
          actives.(c) <-
            (v, Iset.union prev set) :: List.remove_assoc v actives.(c)
        | None -> actives.(c) <- (v, set) :: actives.(c))
    goal.partials;
  (* Merging co-located partials can complete an accumulator; promote it. *)
  Array.iteri
    (fun c live ->
      let done_, still =
        List.partition (fun (_, s) -> Iset.equal s contrib.(c)) live
      in
      List.iter (fun (v, _) -> full := (v, c) :: !full) done_;
      actives.(c) <- still)
    actives;
  Array.iteri
    (fun c live ->
      (* The live partials must partition what full copies do not cover:
         pairwise disjoint, and — when no full copy of c exists but c has
         contributors and unmet postconditions — jointly exhaustive. *)
      let union =
        List.fold_left (fun acc (_, s) -> Iset.union acc s) Iset.empty live
      in
      let count = List.fold_left (fun acc (_, s) -> acc + Iset.cardinal s) 0 live in
      if count <> Iset.cardinal union then
        invalid_arg
          (Printf.sprintf
             "Synthesizer: partial sums of chunk %d absorb a contribution twice"
             c);
      let has_full = List.exists (fun (_, c') -> c' = c) !full in
      if live <> [] && has_full then
        invalid_arg
          (Printf.sprintf
             "Synthesizer: chunk %d has both a fully-reduced copy and live \
              partial sums"
             c);
      if
        live <> [] && (not has_full) && not (Iset.equal union contrib.(c))
      then
        invalid_arg
          (Printf.sprintf
             "Synthesizer: partial sums of chunk %d do not cover its \
              contributors"
             c))
    actives;
  (* Deterministic order regardless of input list order. *)
  Array.iteri
    (fun c live ->
      actives.(c) <- List.sort (fun (a, _) (b, _) -> compare a b) live)
    actives;
  { contrib; actives; full = !full }

(* Choose where chunk [c]'s partials combine: the postcondition holder when
   it is unique (Reduce-Scatter/Reduce repair — no spread follows), else the
   live partial holding the most contributions (ties to the lowest NPU id),
   which minimizes the data that must still move. *)
let combine_dest goal state c =
  match
    List.filter_map (fun (v, c') -> if c' = c then Some v else None)
      goal.postcondition
  with
  | [ v ] -> v
  | _ -> (
    match
      List.fold_left
        (fun best (v, set) ->
          let k = Iset.cardinal set in
          match best with
          | Some (_, bk) when bk >= k -> best
          | _ -> Some (v, k))
        None state.actives.(c)
    with
    | Some (v, _) -> v
    | None -> assert false (* only called with >= 2 live partials *))

(* The relay closure of chunk [c]: the union of shortest in-edge paths from
   every live partial holder to [dest], computed by BFS from [dest] over the
   masked fabric's reversed adjacency. Every relay on a path is included, so
   the mirrored pull goal below always has an adjacent holder/wanter pair to
   match — the matching loop never relays on its own. *)
let relay_closure exp ~dead_mask ~dest holders =
  let n = Ten.Expansion.num_npus exp in
  let in_links = Ten.Expansion.in_links exp in
  let src = Ten.Expansion.src exp in
  let next = Array.make n (-1) in
  (* next.(u) = the node after u on u's path towards dest *)
  let visited = Array.make n false in
  visited.(dest) <- true;
  let q = Queue.create () in
  Queue.add dest q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Array.iter
      (fun e ->
        if (not dead_mask.(e)) && not visited.(src.(e)) then begin
          visited.(src.(e)) <- true;
          next.(src.(e)) <- v;
          Queue.add src.(e) q
        end)
      in_links.(v)
  done;
  List.fold_left
    (fun closure h ->
      if not visited.(h) then
        raise
          (Stuck
             (Printf.sprintf
                "partial sum at NPU %d cannot reach combine destination %d" h
                dest))
      else begin
        let rec walk v acc = if v = dest then acc else walk next.(v) (Iset.add v acc) in
        walk h closure
      end)
    (Iset.singleton dest) holders

let synthesize_goal_plan ?(seed = 42) ?(trials = 1) ?(domains = 1)
    ?(prefer_cheap_links = true) ?deadline ?reuse ?(dead = []) ?(slowed = [])
    topo goal =
  if trials <= 0 then
    invalid_arg "Synthesizer.synthesize_goal_plan: trials must be positive";
  if domains <= 0 then
    invalid_arg "Synthesizer.synthesize_goal_plan: domains must be positive";
  validate_goal ~num_npus:(Topology.num_npus topo) goal;
  let t0 = Unix.gettimeofday () in
  let exp =
    match reuse with Some e -> e | None -> Ten.Expansion.prepare topo
  in
  let m = Ten.Expansion.num_links exp in
  let dead_mask = Array.make m false in
  List.iter
    (fun e ->
      if e < 0 || e >= m then invalid_arg "Synthesizer: dead link out of range";
      dead_mask.(e) <- true)
    dead;
  let state = reduction_state_of_goal goal in
  (* Deterministic (RNG-free) combine structure, computed once: per chunk
     with >= 2 live partials, a destination and the relay closure of nodes
     whose (possibly empty) partials flow into it. *)
  let dests = ref [] in
  let combine_pre = ref [] and combine_post = ref [] in
  Array.iteri
    (fun c live ->
      match live with
      | [] | [ _ ] ->
        (* 0 live: nothing to combine (pure movement or full copy exists).
           1 live: by the partition invariant it holds every contribution —
           normalization already promoted it to a full copy. *)
        ()
      | _ :: _ :: _ ->
        let d = combine_dest goal state c in
        let holders = List.map fst live in
        let closure = relay_closure exp ~dead_mask ~dest:d holders in
        dests := (d, c) :: !dests;
        combine_pre := (d, c) :: !combine_pre;
        Iset.iter
          (fun v -> if v <> d then combine_post := (v, c) :: !combine_post)
          closure)
    state.actives;
  (* The combine phase is a pull goal on the *reversed* fabric: broadcast
     each chunk from its destination to the relay closure, then time-mirror
     (§IV-E). In the mirror every closure node sends its accumulated partial
     exactly once, and all its receives finish before that send starts — the
     exact semantics [Schedule.validate_reduction] replays. *)
  let combine_goal =
    {
      num_chunks = goal.num_chunks;
      chunk_size = goal.chunk_size;
      precondition = !combine_pre;
      postcondition = !combine_post;
      contributors = [];
      partials = [];
    }
  in
  (* The spread phase pulls fully-reduced copies — pre-existing ones plus
     the combine destinations — to the still-unmet postconditions. *)
  let spread_goal =
    {
      num_chunks = goal.num_chunks;
      chunk_size = goal.chunk_size;
      precondition = !dests @ state.full;
      postcondition = goal.postcondition;
      contributors = [];
      partials = [];
    }
  in
  (* Build the reversed view (and force lazy topology caches) before fanning
     out over domains — [Expansion.reversed] memoizes into shared state. *)
  let rexp = Ten.Expansion.reversed exp in
  let rtopo = Ten.Expansion.topology rexp in
  ignore (Topology.edges topo);
  ignore (Topology.edges rtopo);
  let master = Rng.create seed in
  let seeds = Array.init trials (fun _ -> Int64.to_int (Rng.bits64 master)) in
  let need_combine = !combine_post <> [] in
  let run_trial i =
    Obs.with_trial i (fun () ->
        Trace.with_span "trial" (fun () ->
            Obs.time obs_trial_timer (fun () ->
                if Option.is_some reuse then Obs.incr obs_ten_reuse;
                let rng = Rng.create seeds.(i) in
                let combining, r1, m1 =
                  if not need_combine then (Schedule.empty, 0, 0)
                  else
                    let s, r, m =
                      synthesize_pull ~prefer_cheap_links ?deadline ~reuse:rexp
                        ~dead ~slowed rng rtopo combine_goal
                    in
                    (Schedule.reverse s, r, m)
                in
                let spread, r2, m2 =
                  synthesize_pull ~prefer_cheap_links ?deadline ~reuse:exp ~dead
                    ~slowed rng topo spread_goal
                in
                let pull = Schedule.shift spread combining.Schedule.makespan in
                let plan = { combining; pull } in
                let makespan =
                  Float.max combining.Schedule.makespan pull.Schedule.makespan
                in
                Obs.observe obs_trial_makespan makespan;
                (plan, makespan, r1 + r2, m1 + m2))))
  in
  let results =
    if domains = 1 || trials = 1 then Array.init trials run_trial
    else Pool.map (Pool.global ~size:domains ()) run_trial trials
  in
  let rounds = ref 0 and matches = ref 0 in
  Array.iter
    (fun (_, _, r, m) ->
      rounds := !rounds + r;
      matches := !matches + m)
    results;
  let best = ref 0 in
  Array.iteri
    (fun i (_, makespan, _, _) ->
      let _, best_ms, _, _ = results.(!best) in
      if makespan < best_ms then best := i)
    results;
  let plan, _, _, _ = results.(!best) in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  (plan, { wall_seconds; rounds = !rounds; matches = !matches; trials })

let verify topo result =
  match result.spec.Spec.pattern with
  | Pattern.All_reduce -> (
    match result.phases with
    | Some (rs, ag) ->
      Schedule.validate_all_reduce topo result.spec ~reduce_scatter:rs ~all_gather:ag
    | None -> Error "All-Reduce result carries no phase split")
  | _ -> Schedule.validate topo result.spec result.schedule
