(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective

(** The TACOS synthesizer (§IV, Algorithms 1 and 2).

    Given a network topology and a collective spec, TACOS synthesizes a
    topology-aware collective algorithm by repeatedly maximizing the number
    of link-chunk matches over an implicitly expanded time-expanded network:

    - the clock advances through event times (a link becoming free, a chunk
      arriving);
    - at each event time the idle links are matched against the unsatisfied
      postconditions — a link [(s → d)] can carry chunk [c] if [s] already
      holds [c] and [d] still wants it;
    - lower-cost links are matched first (§IV-F) and remaining choices are
      randomized;
    - each physical link carries at most one chunk at a time, so the
      resulting algorithm is congestion-free, and since only neighbor
      transfers are scheduled it is deadlock-free (§IV-E).

    Reduction collectives are synthesized on the reversed topology and
    time-mirrored (§IV-E, Fig. 11); All-Reduce is a Reduce-Scatter phase
    followed by an All-Gather phase.

    The matching loop is the event-driven generalization of the span-discrete
    formulation in the paper (which {!Reference} implements literally): on a
    homogeneous topology every link costs the same, event times collapse onto
    the span grid, and the two coincide. *)

type stats = {
  wall_seconds : float;  (** synthesis wall-clock time *)
  rounds : int;  (** distinct event times processed (TEN spans when homogeneous) *)
  matches : int;  (** link-chunk matches made *)
  trials : int;  (** randomized restarts evaluated *)
}

type result = {
  spec : Spec.t;
  schedule : Schedule.t;
  collective_time : float;  (** the schedule's makespan *)
  phases : (Schedule.t * Schedule.t) option;
      (** for All-Reduce: the (Reduce-Scatter, All-Gather) phases, with the
          All-Gather already shifted to start at the Reduce-Scatter's end *)
  stats : stats;
}

exception Unsupported of string
(** Raised for patterns the matching formulation does not cover
    (Gather/Scatter — the paper targets the patterns of Table III). *)

exception Stuck of string
(** Raised when the collective cannot complete on this fabric. Detected
    promptly, before any matching work: when the topology is not strongly
    connected, the unsatisfiable postconditions (those no initial holder of
    the chunk can reach) are computed and a bounded sample of them is named
    in the message. A not-strongly-connected fabric whose postconditions are
    all still reachable (e.g. Broadcast from a root that reaches everyone)
    synthesizes normally. Also raised, as a safety net, if the matching loop
    ever runs out of events with postconditions left.

    Callers that must never see this exception — degraded-fabric pipelines —
    should go through [Tacos_resilience.Resilience.synthesize], which turns
    it into a structured fallback ladder. *)

exception Deadline_exceeded
(** Raised when a [?deadline] passes mid-synthesis. The check is
    cooperative — polled once per expansion round, between rounds — so the
    raise is prompt (a round is bounded work) and never surfaces a partial
    schedule: a synthesis either returns a complete, verifiable result or
    raises. Serving layers catch this to degrade gracefully
    ([Tacos_resilience.Resilience.synthesize] turns it into a baseline
    fallback rung). *)

type constraints = {
  forbid : int list;  (** link ids that must carry nothing *)
  prefer : (int * float) list;
      (** [(link, weight > 0)]: the link's §IV-F ordering cost is divided by
          [weight], so weighted links sort — and therefore match — first.
          Weights bias the match order only; transfer durations are
          untouched. *)
  pin : (int * int list) list;
      (** [(chunk, route)]: the chunk may only travel the route's link ids.
          Pinning the same chunk twice intersects the routes. *)
}
(** The matcher-facing compilation target of a communication sketch. Build
    one by hand for programmatic use, or let [Tacos_sketch.Sketch.compile]
    produce a structurally validated record (unknown ids, contradictions and
    sketch-induced disconnections surface there as a typed [Infeasible]; the
    synthesizer itself only range-checks and raises [Invalid_argument]). *)

val no_constraints : constraints
(** The empty record: [synthesize ~sketch:no_constraints] is bit-identical
    to not passing a sketch at all (same RNG draw sequence). *)

val synthesize :
  ?seed:int ->
  ?trials:int ->
  ?domains:int ->
  ?prefer_cheap_links:bool ->
  ?deadline:Tacos_util.Deadline.t ->
  ?sketch:constraints ->
  Topology.t ->
  Spec.t ->
  result
(** [synthesize topo spec] runs [trials] (default 1) randomized syntheses
    from [seed] (default 42) and keeps the schedule with the smallest
    makespan. Supported patterns: All-Gather, Broadcast, Reduce-Scatter,
    Reduce, All-Reduce.

    [domains] (default 1) spreads the trials over the shared
    {!Tacos_util.Pool} (grown to at least [domains] workers) — the
    multicore counterpart of the paper's 64-thread synthesis runs. Trial
    seeds are pre-drawn and results are merged in trial order, so the
    outcome is bit-identical for a given [seed] regardless of [domains].
    The pool is shared with [Tacos_groups.Plan]'s sub-synthesis fan-out,
    so trial- and group-parallelism draw from one worker budget.

    [prefer_cheap_links] (default [true]) is the §IV-F heterogeneous-network
    heuristic: idle links are matched cheapest-first. Turning it off matches
    links in random order, the ablation of the bench harness.

    [deadline] (default none) bounds the synthesis wall clock: every trial
    polls it between expansion rounds and the whole call raises
    {!Deadline_exceeded} once it passes — with parallel trials the raise
    propagates through the pool's futures, so no partial best-of-trials
    merge ever escapes. A deadline far in the future leaves the result
    bit-identical to not passing one.

    [sketch] (default {!no_constraints}) constrains the matching loop:
    forbidden links never become free, so they are absent from the idle-link
    candidate scan (and from the resulting schedule — All-Reduce applies the
    same link ids to both mirrored phases); preferred links sort earlier in
    the §IV-F cheapest-first order by their weight; pinned chunks are
    filtered to their route inside the chunk scan. A sketch that forbids
    every path to some postcondition raises {!Stuck} here — use
    [Tacos_sketch.Sketch.compile] to get the typed [Infeasible] instead,
    before synthesis starts. *)

type goal = {
  num_chunks : int;
  chunk_size : float;  (** bytes per chunk *)
  precondition : (int * int) list;
      (** [(npu, chunk)] fully-formed copies held at t = 0 *)
  postcondition : (int * int) list;  (** [(npu, chunk)] required at the end *)
  contributors : (int * int) list;
      (** [(npu, chunk)]: the ranks whose input each chunk reduces over.
          Empty for a pure-movement (non-combining) goal. *)
  partials : (int * int * int list) list;
      (** [(npu, chunk, absorbed)]: an in-flight partial sum — a copy of
          [chunk] at [npu] that has absorbed exactly the contributions of the
          ranks in [absorbed]. Per chunk, the live partials' absorbed sets
          must be pairwise disjoint and (when no fully-reduced copy exists)
          jointly cover the contributor set — the invariant reduction replay
          maintains. Empty for non-combining goals. *)
}
(** A synthesis goal in positional form, untied from any collective pattern:
    where the chunks are, what reduction state they carry, and where they
    must end up. This is the entry point mid-flight schedule repair uses —
    the precondition lists the positions chunks had actually reached when a
    fault landed, [partials] the reduction state replayed from the kept
    sends, and the postcondition the still-unmet part of the collective. *)

val goal_of_spec : Spec.t -> goal
(** The goal a spec's pattern lowers to: {!Spec.precondition} /
    {!Spec.postcondition} verbatim, with no reduction state. For [All_reduce]
    this is the Reduce-Scatter precondition against the All-Gather
    postcondition — not directly synthesizable as one pull goal; split into
    phases instead. *)

val synthesize_goal :
  ?seed:int ->
  ?trials:int ->
  ?domains:int ->
  ?prefer_cheap_links:bool ->
  ?deadline:Tacos_util.Deadline.t ->
  ?reuse:Tacos_ten.Ten.Expansion.t ->
  ?dead:int list ->
  ?slowed:(int * float) list ->
  Topology.t ->
  goal ->
  Schedule.t * stats
(** [synthesize_goal topo goal] runs the pull-based matching loop directly on
    a positional goal: [trials] (default 1) randomized syntheses from [seed]
    (default 42), keeping the smallest makespan. [domains] parallelizes the
    trials on the shared pool with the same determinism guarantee as
    {!synthesize}. Duplicate precondition
    entries are tolerated (repair goals merge phase preconditions with kept
    deliveries).

    [reuse] synthesizes over a cached {!Tacos_ten.Ten.Expansion} of [topo]
    instead of re-materializing the per-link arrays (each reusing trial bumps
    the [synth.repair_ten_reuse] counter). [dead] masks links out of the
    search by their ids in [topo]'s (healthy) id space — the resulting
    schedule never touches them, and an empty mask leaves the RNG draw
    sequence bit-identical to the unmasked path. [slowed] scales the α-β
    cost of links by a factor [>= 1] (degraded links). Together these let
    repair plan on the degraded fabric while staying in healthy link ids.

    Raises [Stuck] when some postcondition is unreachable from
    every holder of its chunk, [Invalid_argument] on out-of-range NPU/chunk
    ids, nonpositive sizing, or a goal carrying [partials] (those need
    {!synthesize_goal_plan}). *)

type plan = { combining : Schedule.t; pull : Schedule.t }
(** A reduction-aware repair plan on one clock: [combining] sends move
    partial sums (each source's accumulated contributions are spent into the
    destination), [pull] sends replicate fully-reduced values, shifted to
    start after [combining] completes. Validate with
    {!Schedule.validate_reduction}; for non-combining goals [combining] is
    empty and the plan degenerates to a pull schedule. *)

val synthesize_goal_plan :
  ?seed:int ->
  ?trials:int ->
  ?domains:int ->
  ?prefer_cheap_links:bool ->
  ?deadline:Tacos_util.Deadline.t ->
  ?reuse:Tacos_ten.Ten.Expansion.t ->
  ?dead:int list ->
  ?slowed:(int * float) list ->
  Topology.t ->
  goal ->
  plan * stats
(** Reduction-aware synthesis: complete a goal whose chunks may carry
    in-flight partial sums. Per chunk with two or more live partials, a
    combine destination is chosen (the unique postcondition holder when there
    is one — Reduce-Scatter/Reduce repair — else the partial holding the most
    contributions), and the partials flow to it along a relay closure of
    shortest paths, synthesized as a pull on the reversed fabric and
    time-mirrored (§IV-E) — so every relay's receives finish before its one
    send starts, the exact combining semantics. The pull phase then spreads
    fully-reduced copies to the remaining postconditions. [seed], [trials],
    [domains], [reuse], [dead] and [slowed] behave as in {!synthesize_goal};
    the best trial is the smallest combined makespan. Raises [Stuck] when a
    partial or postcondition is unreachable on the masked fabric,
    [Invalid_argument] on malformed reduction state (a contribution absorbed
    twice, live partials that do not cover the contributor set, or a chunk
    with both a full copy and live partials). *)

val verify : Topology.t -> result -> (unit, string) Stdlib.result
(** Re-validate a synthesis result against its spec (physical legality +
    pre/postconditions), dispatching to the right validator per pattern. *)
