(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective

(** Greedy time-space routing over the TEN — the synthesis engine for
    patterns whose demands the matching loop cannot pull (see
    {!Alltoall}): chunks with explicit (source, destination) pairs are
    routed one at a time on earliest-arrival paths through the partially
    reserved network, each physical link carrying at most one chunk at a
    time. *)

type job = { chunk : int; src : int; dst : int }

(** Per-link reservation calendar: sorted disjoint busy intervals, with all
    comparisons under the magnitude-scaled {!Schedule.eps_for} tolerance.
    Exposed for testing. *)
module Calendar : sig
  type t

  val create : unit -> t

  val earliest_free : t -> ready:float -> dur:float -> float
  (** Earliest [start >= ready] such that [\[start, start + dur)] is free. *)

  val reserve : t -> start:float -> dur:float -> unit
  (** Mark [\[start, start + dur)] busy. Raises [Invalid_argument] if the
      interval overlaps an existing reservation by more than the scaled
      tolerance. *)
end

val route_jobs :
  ?seed:int -> Topology.t -> chunk_size:float -> job list -> Schedule.t
(** Route every job (shuffled by [seed]); returns the combined schedule.
    Raises {!Synthesizer.Stuck} when some destination is unreachable. *)

val synthesize : ?seed:int -> Topology.t -> Spec.t -> Synthesizer.result
(** Synthesis by routing, for the point-to-point demand patterns:
    [All_to_all], [Gather] (every NPU's chunks to the root) and [Scatter]
    (the root's chunks out to their owners). Raises [Invalid_argument] for
    other patterns — the matching loop ({!Synthesizer.synthesize}) covers
    those. *)
