(* Namespaces of the substrate libraries. *)
open Tacos_collective

let synthesize ?seed topo (spec : Spec.t) =
  if spec.pattern <> Pattern.All_to_all then
    invalid_arg "Alltoall.synthesize: spec pattern must be All_to_all";
  Router.synthesize ?seed topo spec
