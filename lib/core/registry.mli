(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective

(** Synthesized-algorithm cache.

    Synthesis runs once per (topology, collective) pair; a CCL deployment
    then reuses the schedule for every matching collective call. This
    registry keys schedules by a structural topology fingerprint plus the
    collective spec, holds them in memory, and optionally persists them as
    the JSON algorithm files of {!Tacos_collective.Schedule.to_json}.

    The registry is domain-safe: all table access is mutex-protected, and
    lookups are {e single-flight} — N concurrent requests for the same key
    run exactly one synthesis while the other N−1 block until it
    publishes (each join is counted under the [registry.inflight_joins]
    obs counter and reported as [`Hit]). Distinct keys synthesize
    concurrently without serializing behind each other. *)

type t

val create : ?dir:string -> ?max_disk_bytes:int -> unit -> t
(** An empty registry. With [dir], cache entries are also written to (and
    on miss, looked up from) [dir] as one JSON file per entry; the
    directory is created if needed, [mkdir -p]-style (missing parents are
    created too).

    [max_disk_bytes] caps the disk store (live entries plus quarantined
    files, the same accounting as {!disk_usage}): after every write, the
    oldest-mtime files are deleted — mtime ties break on the filename —
    until the total fits, never evicting the entry just written. Evictions
    are counted under {!evicted} and the [registry.evicted] obs counter.
    The cap needs [dir] to mean anything and must be positive
    ([Invalid_argument] otherwise). *)

val fingerprint : Topology.t -> string
(** Structural digest of a topology: NPU count plus every link's endpoints
    and α-β parameters (link ids and names excluded), hashed full-width
    (128-bit MD5, hex-encoded). Two topologies with equal fingerprints
    accept each other's schedules. *)

val spec_key : Spec.t -> string
(** The spec half of a cache key: sanitized pattern name, NPU count,
    chunk count, and the buffer size printed with [%.17g] (round-trips
    any float, so near-equal buffer sizes never alias). Shared with
    [Tacos_groups.Plan]'s sub-synthesis keys so the builders cannot
    drift. *)

val find_or_synthesize :
  ?seed:int ->
  ?domains:int ->
  ?synthesize:(seed:int -> domains:int -> Topology.t -> Spec.t -> Synthesizer.result) ->
  ?variant:string ->
  t ->
  Topology.t ->
  Spec.t ->
  Synthesizer.result * [ `Hit | `Miss ]
(** Return the cached schedule for this (topology, spec) or synthesize,
    cache, and return it. By default routed patterns (All-to-All, Gather,
    Scatter) go through {!Router}, everything else through {!Synthesizer}
    (with [domains] forwarded, spreading synthesis trials over the shared
    {!Tacos_util.Pool}); [synthesize] replaces that miss backend — the
    serving layer injects one that carries the request deadline. Disk
    entries persist their provenance — the synthesis stats and, for
    All-Reduce, the reduce-scatter makespan — as extra JSON fields next to
    the send list (which {!Tacos_collective.Schedule.of_json} ignores, so
    the files remain plain algorithm files); a disk hit restores the
    original stats and the All-Reduce phase split, and entries carrying a
    split are re-validated with
    {!Tacos_collective.Schedule.validate_all_reduce} on load. Foreign
    All-Reduce files without provenance load with zeroed stats, no split,
    and no validation, as before.

    Persistence is crash-safe: entries are encoded with an embedded MD5
    [checksum] field and written via a same-directory temp file +
    [Sys.rename], so a reader never observes a torn write. On load, any
    broken file — unreadable, not JSON, checksum mismatch, malformed
    schedule, failed re-validation — is {e quarantined}: renamed to
    [<entry>.corrupt] (preserved for forensics), counted under
    {!quarantined} and the [registry.quarantined] obs counter, and treated
    as a miss. A lookup never raises because of disk state.

    [variant] (default empty) is appended to the cache key: requests
    synthesized under extra constraints — e.g. a communication sketch,
    digested by [Tacos_sketch.Sketch.digest] — get their own cache line
    and disk file instead of colliding with the unconstrained schedule
    for the same (topology, spec). The empty default reproduces every
    pre-existing key and filename.

    Safe to call concurrently from many domains; identical concurrent
    requests trigger exactly one synthesis (single-flight). If the
    synthesis (injected or default) raises, every joined waiter re-raises
    the same exception and the key is released for retry. *)

val find_cached :
  ?variant:string -> t -> Topology.t -> Spec.t -> Synthesizer.result option
(** Non-blocking cache peek: the in-memory table, then the disk store
    (publishing a disk hit to the table, quarantining broken files as
    above). Never synthesizes and never joins an in-flight synthesis —
    the probe a server can afford on every request, even one whose
    deadline already passed. *)

val entries : t -> int
(** Number of in-memory entries. *)

val quarantined : t -> int
(** Number of broken disk entries this registry has set aside as
    [*.corrupt] since creation. *)

val evicted : t -> int
(** Number of disk files this registry has deleted to stay under
    [max_disk_bytes] since creation (zero without a cap). *)

type disk_usage = { disk_entries : int; disk_corrupt : int; disk_bytes : int }

val disk_usage : t -> disk_usage
(** Size accounting for the disk store, scanned fresh on every call:
    live [*.json] entries, quarantined [*.corrupt] files, and their
    combined size in bytes (quarantined included — forensic files occupy
    real disk until an operator clears them). All zero for a registry
    without a backing directory; never raises on unreadable disk state. *)
