(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective

(** Synthesized-algorithm cache.

    Synthesis runs once per (topology, collective) pair; a CCL deployment
    then reuses the schedule for every matching collective call. This
    registry keys schedules by a structural topology fingerprint plus the
    collective spec, holds them in memory, and optionally persists them as
    the JSON algorithm files of {!Tacos_collective.Schedule.to_json}. *)

type t

val create : ?dir:string -> unit -> t
(** An empty registry. With [dir], cache entries are also written to (and
    on miss, looked up from) [dir] as one JSON file per entry; the directory
    is created if needed. *)

val fingerprint : Topology.t -> string
(** Structural hash of a topology: NPU count plus every link's endpoints and
    α-β parameters (link ids and names excluded). Two topologies with equal
    fingerprints accept each other's schedules. *)

val find_or_synthesize :
  ?seed:int -> t -> Topology.t -> Spec.t -> Synthesizer.result * [ `Hit | `Miss ]
(** Return the cached schedule for this (topology, spec) or synthesize,
    cache, and return it. Routed patterns (All-to-All, Gather, Scatter) go
    through {!Router}, everything else through {!Synthesizer}. Disk entries
    persist their provenance — the synthesis stats and, for All-Reduce, the
    reduce-scatter makespan — as extra JSON fields next to the send list
    (which {!Tacos_collective.Schedule.of_json} ignores, so the files remain
    plain algorithm files); a disk hit restores the original stats and the
    All-Reduce phase split, and entries carrying a split are re-validated
    with {!Tacos_collective.Schedule.validate_all_reduce} on load. Foreign
    All-Reduce files without provenance load with zeroed stats, no split,
    and no validation, as before. *)

val entries : t -> int
(** Number of in-memory entries. *)
