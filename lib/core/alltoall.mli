(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective

(** All-to-All synthesis — an extension beyond the paper.

    TACOS' matching loop (Alg. 1) is pull-based: a chunk moves because the
    receiving NPU's own postcondition demands it, which is what makes
    intermediate NPUs relay chunks in All-Gather-style patterns. All-to-All
    demands are pairwise — an intermediate NPU never wants the chunk it must
    relay — so the matching cannot route it. This module synthesizes
    All-to-All schedules with the same TEN discipline (each physical link
    carries one chunk at a time) using greedy time-space routing instead:
    chunks are routed one by one, each on its earliest-arrival path through
    the partially reserved time-expanded network, reserving the link
    intervals it uses.

    The output is an ordinary {!Tacos_collective.Schedule.t}: validated by
    the same checker, replayable by the same simulator, exportable to the
    same JSON. *)

val synthesize : ?seed:int -> Topology.t -> Spec.t -> Synthesizer.result
(** Raises [Invalid_argument] if the spec's pattern is not [All_to_all], and
    {!Synthesizer.Stuck} if the topology is not strongly connected. *)
