(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective
module Obs = Tacos_obs.Obs

(* A synthesis in flight: waiters block on [t.cond] until [outcome] is
   published. Errors are published too, so every joined waiter re-raises
   the owner's exception instead of hanging. *)
type flight = { mutable outcome : (Synthesizer.result, exn) result option }

type t = {
  dir : string option;
  max_disk_bytes : int option;  (** disk cap; oldest-mtime entries evicted past it *)
  lock : Mutex.t;
  cond : Condition.t;
  table : (string, Synthesizer.result) Hashtbl.t;
  inflight : (string, flight) Hashtbl.t;
  mutable quarantined : int;  (** disk entries set aside as [*.corrupt] *)
  mutable evicted : int;  (** disk entries deleted by the size cap *)
}

let c_inflight_joins = Obs.counter "registry.inflight_joins"
let c_quarantined = Obs.counter "registry.quarantined"
let c_evicted = Obs.counter "registry.evicted"

(* mkdir -p. Tolerates concurrent creation: another process winning the
   race leaves the directory in place, which is all we need. *)
let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir && parent <> "" then mkdir_p parent;
    try Sys.mkdir dir 0o755 with
    | Sys_error _ when Sys.file_exists dir -> ()
  end

let create ?dir ?max_disk_bytes () =
  Option.iter mkdir_p dir;
  Option.iter
    (fun cap ->
      if cap <= 0 then
        invalid_arg "Registry.create: max_disk_bytes must be positive")
    max_disk_bytes;
  {
    dir;
    max_disk_bytes;
    lock = Mutex.create ();
    cond = Condition.create ();
    table = Hashtbl.create 16;
    inflight = Hashtbl.create 8;
    quarantined = 0;
    evicted = 0;
  }

(* Full-width (128-bit) digest of the canonical edge buffer. The
   predecessor truncated this to [Hashtbl.hash] — 30 bits — which
   collides with near-certainty after ~2^15 topologies and then serves a
   schedule for the wrong fabric off the in-memory hit path. *)
let fingerprint topo =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (string_of_int (Topology.num_npus topo));
  List.iter
    (fun (e : Topology.edge) ->
      Buffer.add_string buf
        (Printf.sprintf ";%d>%d:%.17g:%.17g" e.src e.dst
           (Link.cost e.link 0.)
           (Link.cost e.link 1. -. Link.cost e.link 0.)))
    (List.sort
       (fun (a : Topology.edge) (b : Topology.edge) ->
         compare (a.src, a.dst, a.link) (b.src, b.dst, b.link))
       (Topology.edges topo));
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* The spec half of a cache key. [%.17g] round-trips any float, so
   near-equal buffer sizes (0.4 vs 0.5 bytes both printed "0" by the old
   [%.0f]) can no longer alias. [Plan.sub_key] builds on this same
   function so the two key builders cannot drift apart again. *)
let spec_key (spec : Spec.t) =
  Printf.sprintf "%s-n%d-c%d-b%.17g"
    (String.map
       (fun c -> match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c | _ -> '_')
       (Pattern.name spec.pattern))
    spec.npus spec.chunks_per_npu spec.buffer_size

(* [variant] distinguishes otherwise-identical requests synthesized under
   different extra constraints — a sketched request must never collide with
   (or poison) the unsketched cache line for the same (fabric, spec). The
   empty default keeps every pre-existing key, and disk filename, intact. *)
let key ?(variant = "") topo spec =
  let base = fingerprint topo ^ "-" ^ spec_key spec in
  if variant = "" then base else base ^ "-" ^ variant

let disk_path t k = Option.map (fun d -> Filename.concat d (k ^ ".json")) t.dir

module Json = Tacos_util.Json

(* Cache entries embed the synthesis provenance next to the send list —
   [Schedule.of_json] ignores unknown fields, so the files stay valid
   MSCCL-style algorithm files — and a disk hit restores it instead of
   reporting zero-time stats. The reduce-scatter makespan additionally
   recovers an All-Reduce's phase split (every send strictly before it is
   reduce-scatter, cf. [Schedule.phase_of_send]). *)
let provenance_fields (result : Synthesizer.result) =
  let stats = result.stats in
  ( "synthesis_stats",
    Json.Object
      [
        ("wall_seconds", Json.Number stats.Synthesizer.wall_seconds);
        ("rounds", Json.Number (float_of_int stats.Synthesizer.rounds));
        ("matches", Json.Number (float_of_int stats.Synthesizer.matches));
        ("trials", Json.Number (float_of_int stats.Synthesizer.trials));
      ] )
  ::
  (match result.phases with
  | Some (rs, _) -> [ ("reduce_scatter_makespan", Json.Number rs.Schedule.makespan) ]
  | None -> [])

let restore_stats doc =
  match Json.member "synthesis_stats" doc with
  | None -> { Synthesizer.wall_seconds = 0.; rounds = 0; matches = 0; trials = 0 }
  | Some s ->
    let num name = Option.bind (Json.member name s) Json.to_float in
    let int name = Option.value ~default:0 (Option.map int_of_float (num name)) in
    {
      Synthesizer.wall_seconds = Option.value ~default:0. (num "wall_seconds");
      rounds = int "rounds";
      matches = int "matches";
      trials = int "trials";
    }

let restore_phases (spec : Spec.t) (schedule : Schedule.t) doc =
  match spec.pattern with
  | Pattern.All_reduce -> (
    match Option.bind (Json.member "reduce_scatter_makespan" doc) Json.to_float with
    | Some rs_makespan ->
      let eps = Schedule.eps_for rs_makespan in
      let rs, ag =
        List.partition
          (fun (s : Schedule.send) -> s.start +. eps < rs_makespan)
          schedule.Schedule.sends
      in
      Some (Schedule.make rs, Schedule.make ag)
    | None -> None)
  | _ -> None

(* With a restored phase split, All-Reduce entries validate like everything
   else; a foreign file without one is trusted as before (the split cannot
   be reconstructed from the send list alone). *)
let validate_any topo (spec : Spec.t) schedule phases =
  match (spec.pattern, phases) with
  | Pattern.All_reduce, Some (rs, ag) ->
    Schedule.validate_all_reduce topo spec ~reduce_scatter:rs ~all_gather:ag
  | Pattern.All_reduce, None -> Ok ()
  | _ -> Schedule.validate topo spec schedule

(* Set a broken disk entry aside as [<path>.corrupt] instead of letting it
   poison (or worse, abort) every later load. Quarantine is forensic — the
   bytes survive for inspection — and never fatal: a rename failure (e.g. a
   concurrent quarantine won the race) just leaves re-synthesis to overwrite
   the entry in place. *)
let quarantine t path =
  (try Sys.rename path (path ^ ".corrupt") with Sys_error _ -> ());
  Obs.incr c_quarantined;
  Mutex.lock t.lock;
  t.quarantined <- t.quarantined + 1;
  Mutex.unlock t.lock

let quarantined t =
  Mutex.lock t.lock;
  let n = t.quarantined in
  Mutex.unlock t.lock;
  n

(* Entries written by [save_to_disk] carry a "checksum" field: the MD5 of
   the entry encoded *without* it. [Json.parse] preserves field order and
   [Json.encode] is deterministic ([%.17g] round-trips every float), so
   strip-reencode-digest reproduces the signed bytes exactly. Foreign
   algorithm files without a checksum are trusted as before. *)
let checksum_ok fields =
  match List.assoc_opt "checksum" fields with
  | None -> true
  | Some (Json.String declared) ->
    let payload =
      Json.encode (Json.Object (List.filter (fun (k, _) -> k <> "checksum") fields))
    in
    String.equal declared (Digest.to_hex (Digest.string payload))
  | Some _ -> false

(* Any failure mode of a present file — unreadable, not JSON, checksum
   mismatch (torn write), malformed schedule, failed re-validation —
   quarantines it and reports a miss; it never raises out of a lookup. *)
let load_from_disk t topo spec k =
  match disk_path t k with
  | Some path when Sys.file_exists path -> (
    let entry =
      match In_channel.with_open_text path In_channel.input_all with
      | exception Sys_error _ -> None
      | text -> (
        match Json.parse text with
        | Ok (Json.Object fields) when checksum_ok fields -> (
          match Schedule.of_json text with
          | Ok schedule -> Some (Json.Object fields, schedule)
          | Error _ | (exception _) -> None)
        | Ok _ | Error _ -> None)
    in
    match entry with
    | None ->
      quarantine t path;
      None
    | Some (doc, schedule) -> (
      let phases = restore_phases spec schedule doc in
      match validate_any topo spec schedule phases with
      | Ok () ->
        Some
          {
            Synthesizer.spec;
            schedule;
            collective_time = schedule.Schedule.makespan;
            phases;
            stats = restore_stats doc;
          }
      | Error _ ->
        quarantine t path;
        None))
  | _ -> None

(* Crash-safe persistence: encode with the embedded checksum, write the
   bytes to a same-directory temp file, then [Sys.rename] into place — on
   POSIX the rename is atomic, so a reader (or a crash) sees either the old
   complete entry or the new complete entry, never a torn prefix. *)
let save_to_disk t spec (result : Synthesizer.result) k =
  match disk_path t k with
  | Some path ->
    let text = Schedule.to_json ~spec result.Synthesizer.schedule in
    let text =
      match Json.parse text with
      | Ok (Json.Object fields) ->
        let fields = fields @ provenance_fields result in
        let digest = Digest.to_hex (Digest.string (Json.encode (Json.Object fields))) in
        Json.encode (Json.Object (fields @ [ ("checksum", Json.String digest) ]))
      | _ -> text
    in
    let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
    Out_channel.with_open_text tmp (fun oc -> output_string oc text);
    Sys.rename tmp path
  | None -> ()

(* Disk-cap enforcement, run after every write: while the store (live
   entries plus quarantined files, the same accounting as [disk_usage])
   exceeds [max_disk_bytes], delete the oldest-mtime file — except the entry
   just written, so a cap smaller than one schedule degrades to "keep only
   the latest" instead of thrashing the write we are completing. Failures
   are swallowed: another instance may have evicted the same file first, and
   eviction must never take the serving path down. *)
let enforce_disk_cap t ~keep =
  match (t.dir, t.max_disk_bytes) with
  | Some dir, Some cap ->
    let files = try Sys.readdir dir with Sys_error _ -> [||] in
    let entries =
      Array.to_list files
      |> List.filter (fun f ->
             Filename.check_suffix f ".json" || Filename.check_suffix f ".corrupt")
      |> List.filter_map (fun f ->
             let path = Filename.concat dir f in
             match Unix.stat path with
             | { Unix.st_size; st_mtime; _ } -> Some (path, st_size, st_mtime)
             | exception (Unix.Unix_error _ | Sys_error _) -> None)
    in
    let total = List.fold_left (fun acc (_, size, _) -> acc + size) 0 entries in
    if total > cap then begin
      (* Oldest first; mtime ties break on the filename for determinism. *)
      let oldest_first =
        List.sort
          (fun (pa, _, ma) (pb, _, mb) -> compare (ma, pa) (mb, pb))
          entries
      in
      ignore
        (List.fold_left
           (fun remaining (path, size, _) ->
             if remaining <= cap || path = keep then remaining
             else begin
               match Sys.remove path with
               | () ->
                 Obs.incr c_evicted;
                 Mutex.lock t.lock;
                 t.evicted <- t.evicted + 1;
                 Mutex.unlock t.lock;
                 remaining - size
               | exception Sys_error _ -> remaining
             end)
           total oldest_first)
    end
  | _ -> ()

let evicted t =
  Mutex.lock t.lock;
  let n = t.evicted in
  Mutex.unlock t.lock;
  n

(* Single-flight lookup. Under [t.lock], a request either hits the
   completed table, joins an in-flight synthesis for the same key (and
   blocks until the owner publishes), or claims ownership by installing
   a [flight]. The owner runs disk load / synthesis *outside* the lock —
   syntheses take seconds; lookups must not serialize behind them — then
   publishes under the lock and broadcasts. N concurrent identical
   requests therefore run exactly one synthesis; the N-1 joiners are
   counted under [registry.inflight_joins] and report [`Hit]. *)
(* The default miss backend: routed patterns go through [Router], the rest
   through [Synthesizer]. Servers inject their own (deadline-carrying)
   backend via [?synthesize]. *)
let default_backend ~seed ~domains topo (spec : Spec.t) =
  match spec.pattern with
  | Pattern.All_to_all | Pattern.Gather _ | Pattern.Scatter _ ->
    Router.synthesize ~seed topo spec
  | _ -> Synthesizer.synthesize ~seed ~domains topo spec

let find_or_synthesize ?(seed = 42) ?(domains = 1) ?(synthesize = default_backend)
    ?variant t topo (spec : Spec.t) =
  let k = key ?variant topo spec in
  let claim () =
    Mutex.lock t.lock;
    match Hashtbl.find_opt t.table k with
    | Some result ->
      Mutex.unlock t.lock;
      `Cached result
    | None -> (
      match Hashtbl.find_opt t.inflight k with
      | Some flight ->
        Obs.incr c_inflight_joins;
        let rec wait () =
          match flight.outcome with
          | None ->
            Condition.wait t.cond t.lock;
            wait ()
          | Some outcome -> outcome
        in
        let outcome = wait () in
        Mutex.unlock t.lock;
        (match outcome with
        | Ok result -> `Cached result
        | Error e -> raise e)
      | None ->
        let flight = { outcome = None } in
        Hashtbl.add t.inflight k flight;
        Mutex.unlock t.lock;
        `Owner flight)
  in
  match claim () with
  | `Cached result -> (result, `Hit)
  | `Owner flight -> (
    let publish outcome =
      Mutex.lock t.lock;
      flight.outcome <- Some outcome;
      (match outcome with
      | Ok result -> Hashtbl.replace t.table k result
      | Error _ -> ());
      Hashtbl.remove t.inflight k;
      Condition.broadcast t.cond;
      Mutex.unlock t.lock
    in
    match
      match load_from_disk t topo spec k with
      | Some result -> (result, `Hit)
      | None ->
        let result = synthesize ~seed ~domains topo spec in
        save_to_disk t spec result k;
        (match disk_path t k with
        | Some path -> enforce_disk_cap t ~keep:path
        | None -> ());
        (result, `Miss)
    with
    | (result, outcome) ->
      publish (Ok result);
      (result, outcome)
    | exception e ->
      publish (Error e);
      raise e)

(* Non-blocking peek: the in-memory table, then disk. Unlike
   [find_or_synthesize] this never joins an in-flight synthesis — a server
   answering cache probes must not block behind a miss in progress. A disk
   hit is published to the table (losing a publish race is benign: both
   sides hold validated results for the same key). *)
let find_cached ?variant t topo (spec : Spec.t) =
  let k = key ?variant topo spec in
  Mutex.lock t.lock;
  let hit = Hashtbl.find_opt t.table k in
  Mutex.unlock t.lock;
  match hit with
  | Some _ -> hit
  | None -> (
    match load_from_disk t topo spec k with
    | Some result ->
      Mutex.lock t.lock;
      if not (Hashtbl.mem t.table k) then Hashtbl.replace t.table k result;
      Mutex.unlock t.lock;
      Some result
    | None -> None)

let entries t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.lock;
  n

type disk_usage = { disk_entries : int; disk_corrupt : int; disk_bytes : int }

(* Scan the backing directory fresh on every call: the store is shared
   (other server instances, rsync) so cached totals would go stale. A
   missing or unreadable directory reads as empty — size accounting must
   never take the serving path down. *)
let disk_usage t =
  match t.dir with
  | None -> { disk_entries = 0; disk_corrupt = 0; disk_bytes = 0 }
  | Some dir ->
    let files = try Sys.readdir dir with Sys_error _ -> [||] in
    Array.fold_left
      (fun acc f ->
        let entry = Filename.check_suffix f ".json" in
        let corrupt = Filename.check_suffix f ".corrupt" in
        if not (entry || corrupt) then acc
        else begin
          let bytes =
            try (Unix.stat (Filename.concat dir f)).Unix.st_size with
            | Unix.Unix_error _ | Sys_error _ -> 0
          in
          {
            disk_entries = (acc.disk_entries + if entry then 1 else 0);
            disk_corrupt = (acc.disk_corrupt + if corrupt then 1 else 0);
            disk_bytes = acc.disk_bytes + bytes;
          }
        end)
      { disk_entries = 0; disk_corrupt = 0; disk_bytes = 0 }
      files
