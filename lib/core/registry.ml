(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective

type t = { dir : string option; table : (string, Synthesizer.result) Hashtbl.t }

let create ?dir () =
  (match dir with
  | Some d when not (Sys.file_exists d) -> Sys.mkdir d 0o755
  | _ -> ());
  { dir; table = Hashtbl.create 16 }

let fingerprint topo =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (string_of_int (Topology.num_npus topo));
  List.iter
    (fun (e : Topology.edge) ->
      Buffer.add_string buf
        (Printf.sprintf ";%d>%d:%.17g:%.17g" e.src e.dst
           (Link.cost e.link 0.)
           (Link.cost e.link 1. -. Link.cost e.link 0.)))
    (List.sort
       (fun (a : Topology.edge) (b : Topology.edge) ->
         compare (a.src, a.dst, a.link) (b.src, b.dst, b.link))
       (Topology.edges topo));
  Printf.sprintf "%08x" (Hashtbl.hash (Buffer.contents buf) land 0xFFFFFFFF)

let key topo (spec : Spec.t) =
  Printf.sprintf "%s-%s-n%d-c%d-b%.0f" (fingerprint topo)
    (String.map
       (fun c -> match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c | _ -> '_')
       (Pattern.name spec.pattern))
    spec.npus spec.chunks_per_npu spec.buffer_size

let disk_path t k = Option.map (fun d -> Filename.concat d (k ^ ".json")) t.dir

(* All-Reduce schedules lose their phase split through JSON, and the
   phase-split validator needs it; trust entries we wrote ourselves (they
   were validated before saving) and re-validate everything else. *)
let validate_any topo (spec : Spec.t) schedule =
  match spec.pattern with
  | Pattern.All_reduce -> Ok ()
  | _ -> Schedule.validate topo spec schedule

let load_from_disk t topo spec k =
  match disk_path t k with
  | Some path when Sys.file_exists path -> (
    match Schedule.of_json (In_channel.with_open_text path In_channel.input_all) with
    | Ok schedule when Result.is_ok (validate_any topo spec schedule) ->
      Some
        {
          Synthesizer.spec;
          schedule;
          collective_time = schedule.Schedule.makespan;
          phases = None;
          stats = { Synthesizer.wall_seconds = 0.; rounds = 0; matches = 0; trials = 0 };
        }
    | _ -> None)
  | _ -> None

let save_to_disk t spec (result : Synthesizer.result) k =
  match disk_path t k with
  | Some path ->
    Out_channel.with_open_text path (fun oc ->
        output_string oc (Schedule.to_json ~spec result.Synthesizer.schedule))
  | None -> ()

let find_or_synthesize ?(seed = 42) t topo (spec : Spec.t) =
  let k = key topo spec in
  match Hashtbl.find_opt t.table k with
  | Some result -> (result, `Hit)
  | None -> (
    match load_from_disk t topo spec k with
    | Some result ->
      Hashtbl.replace t.table k result;
      (result, `Hit)
    | None ->
      let result =
        match spec.pattern with
        | Pattern.All_to_all | Pattern.Gather _ | Pattern.Scatter _ ->
          Router.synthesize ~seed topo spec
        | _ -> Synthesizer.synthesize ~seed topo spec
      in
      Hashtbl.replace t.table k result;
      save_to_disk t spec result k;
      (result, `Miss))

let entries t = Hashtbl.length t.table
