(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective

type t = { dir : string option; table : (string, Synthesizer.result) Hashtbl.t }

let create ?dir () =
  (match dir with
  | Some d when not (Sys.file_exists d) -> Sys.mkdir d 0o755
  | _ -> ());
  { dir; table = Hashtbl.create 16 }

let fingerprint topo =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (string_of_int (Topology.num_npus topo));
  List.iter
    (fun (e : Topology.edge) ->
      Buffer.add_string buf
        (Printf.sprintf ";%d>%d:%.17g:%.17g" e.src e.dst
           (Link.cost e.link 0.)
           (Link.cost e.link 1. -. Link.cost e.link 0.)))
    (List.sort
       (fun (a : Topology.edge) (b : Topology.edge) ->
         compare (a.src, a.dst, a.link) (b.src, b.dst, b.link))
       (Topology.edges topo));
  Printf.sprintf "%08x" (Hashtbl.hash (Buffer.contents buf) land 0xFFFFFFFF)

let key topo (spec : Spec.t) =
  Printf.sprintf "%s-%s-n%d-c%d-b%.0f" (fingerprint topo)
    (String.map
       (fun c -> match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c | _ -> '_')
       (Pattern.name spec.pattern))
    spec.npus spec.chunks_per_npu spec.buffer_size

let disk_path t k = Option.map (fun d -> Filename.concat d (k ^ ".json")) t.dir

module Json = Tacos_util.Json

(* Cache entries embed the synthesis provenance next to the send list —
   [Schedule.of_json] ignores unknown fields, so the files stay valid
   MSCCL-style algorithm files — and a disk hit restores it instead of
   reporting zero-time stats. The reduce-scatter makespan additionally
   recovers an All-Reduce's phase split (every send strictly before it is
   reduce-scatter, cf. [Schedule.phase_of_send]). *)
let provenance_fields (result : Synthesizer.result) =
  let stats = result.stats in
  ( "synthesis_stats",
    Json.Object
      [
        ("wall_seconds", Json.Number stats.Synthesizer.wall_seconds);
        ("rounds", Json.Number (float_of_int stats.Synthesizer.rounds));
        ("matches", Json.Number (float_of_int stats.Synthesizer.matches));
        ("trials", Json.Number (float_of_int stats.Synthesizer.trials));
      ] )
  ::
  (match result.phases with
  | Some (rs, _) -> [ ("reduce_scatter_makespan", Json.Number rs.Schedule.makespan) ]
  | None -> [])

let restore_stats doc =
  match Json.member "synthesis_stats" doc with
  | None -> { Synthesizer.wall_seconds = 0.; rounds = 0; matches = 0; trials = 0 }
  | Some s ->
    let num name = Option.bind (Json.member name s) Json.to_float in
    let int name = Option.value ~default:0 (Option.map int_of_float (num name)) in
    {
      Synthesizer.wall_seconds = Option.value ~default:0. (num "wall_seconds");
      rounds = int "rounds";
      matches = int "matches";
      trials = int "trials";
    }

let restore_phases (spec : Spec.t) (schedule : Schedule.t) doc =
  match spec.pattern with
  | Pattern.All_reduce -> (
    match Option.bind (Json.member "reduce_scatter_makespan" doc) Json.to_float with
    | Some rs_makespan ->
      let eps = Schedule.eps_for rs_makespan in
      let rs, ag =
        List.partition
          (fun (s : Schedule.send) -> s.start +. eps < rs_makespan)
          schedule.Schedule.sends
      in
      Some (Schedule.make rs, Schedule.make ag)
    | None -> None)
  | _ -> None

(* With a restored phase split, All-Reduce entries validate like everything
   else; a foreign file without one is trusted as before (the split cannot
   be reconstructed from the send list alone). *)
let validate_any topo (spec : Spec.t) schedule phases =
  match (spec.pattern, phases) with
  | Pattern.All_reduce, Some (rs, ag) ->
    Schedule.validate_all_reduce topo spec ~reduce_scatter:rs ~all_gather:ag
  | Pattern.All_reduce, None -> Ok ()
  | _ -> Schedule.validate topo spec schedule

let load_from_disk t topo spec k =
  match disk_path t k with
  | Some path when Sys.file_exists path -> (
    let text = In_channel.with_open_text path In_channel.input_all in
    match Schedule.of_json text with
    | Ok schedule -> (
      let doc = Result.value ~default:Json.Null (Json.parse text) in
      let phases = restore_phases spec schedule doc in
      match validate_any topo spec schedule phases with
      | Ok () ->
        Some
          {
            Synthesizer.spec;
            schedule;
            collective_time = schedule.Schedule.makespan;
            phases;
            stats = restore_stats doc;
          }
      | Error _ -> None)
    | Error _ -> None)
  | _ -> None

let save_to_disk t spec (result : Synthesizer.result) k =
  match disk_path t k with
  | Some path ->
    let text = Schedule.to_json ~spec result.Synthesizer.schedule in
    let text =
      match Json.parse text with
      | Ok (Json.Object fields) ->
        Json.encode (Json.Object (fields @ provenance_fields result))
      | _ -> text
    in
    Out_channel.with_open_text path (fun oc -> output_string oc text)
  | None -> ()

let find_or_synthesize ?(seed = 42) t topo (spec : Spec.t) =
  let k = key topo spec in
  match Hashtbl.find_opt t.table k with
  | Some result -> (result, `Hit)
  | None -> (
    match load_from_disk t topo spec k with
    | Some result ->
      Hashtbl.replace t.table k result;
      (result, `Hit)
    | None ->
      let result =
        match spec.pattern with
        | Pattern.All_to_all | Pattern.Gather _ | Pattern.Scatter _ ->
          Router.synthesize ~seed topo spec
        | _ -> Synthesizer.synthesize ~seed topo spec
      in
      Hashtbl.replace t.table k result;
      save_to_disk t spec result k;
      (result, `Miss))

let entries t = Hashtbl.length t.table
