(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective
open Tacos_ten

(** Literal transcription of the paper's Algorithms 1 and 2 for homogeneous
    topologies: the TEN is materialized span by span, and at each span the
    shuffled unsatisfied postconditions are matched one at a time, choosing a
    random candidate source among the destination's idle incoming links whose
    source already holds the chunk.

    This exists to cross-check {!Synthesizer} (its event-driven matcher must
    coincide with the span-discrete formulation when all links cost the same)
    and to render figures 7/9/10-style TEN grids. Only non-combining pull
    patterns (All-Gather, Broadcast) are supported directly, mirroring the
    paper's presentation; reductions reverse as usual. *)

val synthesize : ?seed:int -> Topology.t -> Spec.t -> Ten.t
(** Raises [Invalid_argument] if the topology's links do not all share one
    cost at the spec's chunk size, or the pattern is not All-Gather /
    Broadcast. Raises {!Synthesizer.Stuck} on a non-strongly-connected
    topology. *)

val schedule : Ten.t -> Schedule.t
(** The synthesized TEN as a timed schedule ({!Ten.to_schedule}). *)
