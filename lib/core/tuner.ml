(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective

type choice = {
  chunks_per_npu : int;
  result : Synthesizer.result;
  simulated_time : float;
}

let simulated_time topo (result : Synthesizer.result) =
  let chunk_size = Spec.chunk_size result.Synthesizer.spec in
  let program =
    Tacos_sim.Program.of_schedule ~chunk_size result.Synthesizer.schedule
  in
  (Tacos_sim.Engine.run topo program).Tacos_sim.Engine.finish_time

let sweep ?(seed = 42) ?(domains = 1) ?(candidates = [ 1; 2; 4; 8; 16 ])
    ?synthesize topo ~pattern ~size =
  if candidates = [] then invalid_arg "Tuner.tune: no candidates";
  if domains <= 0 then invalid_arg "Tuner.sweep: domains must be positive";
  let npus = Topology.num_npus topo in
  let synthesize =
    match synthesize with
    | Some f -> f
    | None ->
      fun ~seed topo spec ->
        (match (spec : Spec.t).pattern with
        | Pattern.All_to_all | Pattern.Gather _ | Pattern.Scatter _ ->
          Router.synthesize ~seed topo spec
        | _ -> Synthesizer.synthesize ~seed ~domains topo spec)
  in
  List.map
    (fun chunks_per_npu ->
      let spec = Spec.make ~chunks_per_npu ~buffer_size:size ~pattern ~npus () in
      let result = synthesize ~seed topo spec in
      { chunks_per_npu; result; simulated_time = simulated_time topo result })
    candidates

let tune ?seed ?domains ?candidates ?synthesize topo ~pattern ~size =
  match sweep ?seed ?domains ?candidates ?synthesize topo ~pattern ~size with
  | [] -> invalid_arg "Tuner.tune: no candidates"
  | first :: rest ->
    (* Strict [<] keeps ties on the earliest candidate, as before. *)
    List.fold_left
      (fun best c -> if c.simulated_time < best.simulated_time then c else best)
      first rest
