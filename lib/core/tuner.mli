(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective

(** Chunk-granularity auto-tuning.

    The chunks-per-NPU decomposition (§II-A) is TACOS' main quality knob:
    coarse chunks waste scarce links on heterogeneous fabrics, overly fine
    ones pay per-chunk latency (see the `ablation` bench). This tuner
    synthesizes at several candidate granularities, replays each schedule
    under the congestion-aware simulator, and keeps the fastest — what a
    deployment would run once per (topology, collective) pair and cache. *)

type choice = {
  chunks_per_npu : int;
  result : Synthesizer.result;
  simulated_time : float;
}

val sweep :
  ?seed:int ->
  ?domains:int ->
  ?candidates:int list ->
  ?synthesize:(seed:int -> Topology.t -> Spec.t -> Synthesizer.result) ->
  Topology.t ->
  pattern:Pattern.t ->
  size:float ->
  choice list
(** [sweep topo ~pattern ~size] evaluates every candidate granularity and
    returns all choices in candidate order — the raw material of a
    latency/bandwidth Pareto sweep ([Tacos_sketch.Strategy] builds its
    frontier on this). Same parameters and backend dispatch as {!tune}. *)

val tune :
  ?seed:int ->
  ?domains:int ->
  ?candidates:int list ->
  ?synthesize:(seed:int -> Topology.t -> Spec.t -> Synthesizer.result) ->
  Topology.t ->
  pattern:Pattern.t ->
  size:float ->
  choice
(** [tune topo ~pattern ~size] tries [candidates] (default
    [[1; 2; 4; 8; 16]]) and returns the best choice by simulated collective
    time. Patterns routed by {!Router} (All-to-All, Gather, Scatter) are
    tuned through it transparently. [domains] (default 1) is forwarded to
    the default {!Synthesizer} backend (parallel trials on the shared
    pool); a custom [synthesize] backend receives only [seed] and should
    capture its own parallelism settings. [synthesize] swaps the backend
    the candidates are synthesized with — the hierarchical group planner
    ([Tacos_groups.Plan]) plugs in here; the default dispatches to
    {!Router}/{!Synthesizer} as above. *)

val simulated_time : Topology.t -> Synthesizer.result -> float
(** Replay a synthesis result under the simulator backend (the paper's
    measurement model). *)
