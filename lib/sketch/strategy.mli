(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective

(** SCCL-style latency/bandwidth strategy sweeps.

    One synthesized schedule per chunk granularity is a single point in a
    latency/bandwidth tradeoff: coarse chunks mean few matching steps (low
    latency, cheap synthesis) but poor link utilization; fine chunks fill
    heterogeneous fabrics at the price of more steps and synthesis work.
    This module runs the tuner's candidate sweep — optionally under a
    communication {!Sketch} — replays every point under the congestion-aware
    simulator, and reports the non-dominated Pareto frontier, in the spirit
    of SCCL's [solve_all_latency_bandwidth_tradeoffs].

    Dominance is computed over the {e deterministic} triple (chunks per
    NPU, steps, simulated time), where [steps] — the schedule's count of
    distinct send-start waves — is the machine-stable stand-in for
    synthesis effort and per-chunk latency. Wall-clock synthesis seconds
    are reported on every point but excluded from dominance, so the
    frontier is reproducible and can be pinned by [bench regress]. *)

type point = {
  chunks_per_npu : int;
  steps : int;  (** distinct send-start waves of the schedule *)
  sends : int;
  collective_time : float;  (** α-β makespan of the schedule *)
  simulated_time : float;  (** congestion-aware replay *)
  synthesis_seconds : float;
      (** synthesis wall clock — informative only, never in dominance *)
}

type outcome = {
  points : point list;  (** every evaluated candidate, in candidate order *)
  frontier : point list;
      (** the non-dominated points, ascending chunks per NPU *)
  dominated : (point * point) list;
      (** each dominated point, paired with a point that dominates it *)
}

val dominates : point -> point -> bool
(** [dominates a b]: [a] is no worse than [b] on all of (chunks per NPU,
    steps, simulated time) and strictly better on at least one. *)

val sweep :
  ?seed:int ->
  ?trials:int ->
  ?domains:int ->
  ?candidates:int list ->
  ?sketch:Sketch.t ->
  Topology.t ->
  pattern:Pattern.t ->
  size:float ->
  outcome
(** Evaluate every candidate granularity (default [[1; 2; 4; 8; 16]],
    [Tacos.Tuner]'s set) and split the points into frontier and dominated.
    With [sketch], every candidate is synthesized under the compiled
    sketch (so {!Sketch.Infeasible} propagates before any matching work)
    and routed patterns are rejected; without one, routed patterns go
    through the router as in the tuner. [trials] and [domains] are
    forwarded to each synthesis. *)

val point_fields : point -> (string * Tacos_util.Json.t) list
(** The point as JSON fields — shared by the CLI's [--json] output and the
    bench harness rows, so the two never drift. *)

val to_json_value : outcome -> Tacos_util.Json.t
val to_json : outcome -> string
