(* Namespaces of the substrate libraries. *)
open Tacos_collective
module Json = Tacos_util.Json

type point = {
  chunks_per_npu : int;
  steps : int;
  sends : int;
  collective_time : float;
  simulated_time : float;
  synthesis_seconds : float;
}

type outcome = {
  points : point list;
  frontier : point list;
  dominated : (point * point) list;
}

(* Distinct send-start waves, merging starts within the schedule's own
   floating-point tolerance — on a homogeneous fabric this is exactly the
   TEN span count. *)
let steps_of (s : Schedule.t) =
  match s.Schedule.sends with
  | [] -> 0
  | sends ->
    let eps = Schedule.eps_for s.Schedule.makespan in
    let starts =
      List.sort_uniq compare
        (List.map (fun (x : Schedule.send) -> x.Schedule.start) sends)
    in
    let count, _ =
      List.fold_left
        (fun (n, last) t ->
          if t -. last > eps then (n + 1, t) else (n, last))
        (1, List.hd starts)
        (List.tl starts)
    in
    count

let point_of_choice (c : Tacos.Tuner.choice) =
  let r = c.Tacos.Tuner.result in
  {
    chunks_per_npu = c.Tacos.Tuner.chunks_per_npu;
    steps = steps_of r.Tacos.Synthesizer.schedule;
    sends = Schedule.num_sends r.Tacos.Synthesizer.schedule;
    collective_time = r.Tacos.Synthesizer.collective_time;
    simulated_time = c.Tacos.Tuner.simulated_time;
    synthesis_seconds = r.Tacos.Synthesizer.stats.Tacos.Synthesizer.wall_seconds;
  }

let dominates a b =
  a.chunks_per_npu <= b.chunks_per_npu
  && a.steps <= b.steps
  && a.simulated_time <= b.simulated_time
  && (a.chunks_per_npu < b.chunks_per_npu
     || a.steps < b.steps
     || a.simulated_time < b.simulated_time)

let classify points =
  let dominated =
    List.filter_map
      (fun p ->
        match List.find_opt (fun q -> dominates q p) points with
        | Some q -> Some (p, q)
        | None -> None)
      points
  in
  let frontier =
    List.sort
      (fun a b -> compare a.chunks_per_npu b.chunks_per_npu)
      (List.filter
         (fun p -> not (List.exists (fun q -> dominates q p) points))
         points)
  in
  { points; frontier; dominated }

let sweep ?seed ?(trials = 1) ?(domains = 1) ?candidates ?sketch topo ~pattern
    ~size =
  let synthesize ~seed topo spec =
    match sketch with
    | Some sk ->
      (* Compile per candidate spec: pin chunk ids depend on the chunk
         count, and infeasibility must surface before matching starts. *)
      let c = Sketch.compile topo spec sk in
      Tacos.Synthesizer.synthesize ~seed ~trials ~domains ~sketch:c topo spec
    | None -> (
      match (spec : Spec.t).pattern with
      | Pattern.All_to_all | Pattern.Gather _ | Pattern.Scatter _ ->
        Tacos.Router.synthesize ~seed topo spec
      | _ -> Tacos.Synthesizer.synthesize ~seed ~trials ~domains topo spec)
  in
  let choices =
    Tacos.Tuner.sweep ?seed ?candidates ~synthesize topo ~pattern ~size
  in
  classify (List.map point_of_choice choices)

let point_fields p =
  [
    ("chunks_per_npu", Json.Number (float_of_int p.chunks_per_npu));
    ("steps", Json.Number (float_of_int p.steps));
    ("sends", Json.Number (float_of_int p.sends));
    ("collective_time", Json.Number p.collective_time);
    ("simulated_time", Json.Number p.simulated_time);
    ("synthesis_seconds", Json.Number p.synthesis_seconds);
  ]

let to_json_value o =
  let point p = Json.Object (point_fields p) in
  let on_frontier p = List.memq p o.frontier in
  Json.Object
    [
      ( "points",
        Json.Array
          (List.map
             (fun p ->
               match point p with
               | Json.Object fields ->
                 Json.Object
                   (fields @ [ ("on_frontier", Json.Bool (on_frontier p)) ])
               | j -> j)
             o.points) );
      ("frontier", Json.Array (List.map point o.frontier));
      ( "dominated",
        Json.Array
          (List.map
             (fun (p, by) ->
               Json.Object
                 [
                   ("point", point p);
                   ( "dominated_by",
                     Json.Number (float_of_int by.chunks_per_npu) );
                 ])
             o.dominated) );
    ]

let to_json o = Json.encode (to_json_value o)
