(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective
module Json = Tacos_util.Json
module Iset = Set.Make (Int)
module Imap = Map.Make (Int)

type rule =
  | Forbid_link of int
  | Prefer_link of { link : int; weight : float }
  | Pin_path of { chunk : int; route : int list }
  | Buddy of { dim : int }

type t = { name : string option; rules : rule list }

let make ?name rules = { name; rules }
let empty = { name = None; rules = [] }

type offender =
  | Unknown_link of { rule : string; link : int }
  | Unknown_chunk of { chunk : int; num_chunks : int }
  | Bad_weight of { link : int; weight : float }
  | Empty_route of { chunk : int }
  | Forbid_pin_conflict of { chunk : int; link : int }
  | No_hierarchy of { dim : int }
  | Unsupported_pattern of string
  | Disconnected of { chunk : int; npu : int }

let offender_to_string = function
  | Unknown_link { rule; link } ->
    Printf.sprintf "%s rule names unknown link %d" rule link
  | Unknown_chunk { chunk; num_chunks } ->
    Printf.sprintf "pin rule names chunk %d, but the spec has %d chunks"
      chunk num_chunks
  | Bad_weight { link; weight } ->
    Printf.sprintf "prefer rule on link %d has non-positive weight %g" link
      weight
  | Empty_route { chunk } ->
    Printf.sprintf "pinned route for chunk %d is empty" chunk
  | Forbid_pin_conflict { chunk; link } ->
    Printf.sprintf
      "link %d is forbidden but also part of chunk %d's pinned route" link
      chunk
  | No_hierarchy { dim } ->
    Printf.sprintf
      "buddy rule on dimension %d, but the topology has no such hierarchy \
       dimension"
      dim
  | Unsupported_pattern p ->
    Printf.sprintf
      "sketches apply to matched patterns only; %s is synthesized by the \
       router"
      p
  | Disconnected { chunk; npu } ->
    Printf.sprintf
      "sketch disconnects the collective: no holder of chunk %d can reach \
       NPU %d"
      chunk npu

exception Infeasible of offender

let () =
  Printexc.register_printer (function
    | Infeasible off -> Some ("Sketch.Infeasible: " ^ offender_to_string off)
    | _ -> None)

(* ---------- JSON codec ---------- *)

let rule_to_json = function
  | Forbid_link link -> Json.Object [ ("forbid", Json.Number (float_of_int link)) ]
  | Prefer_link { link; weight } ->
    Json.Object
      [
        ("prefer", Json.Number (float_of_int link));
        ("weight", Json.Number weight);
      ]
  | Pin_path { chunk; route } ->
    Json.Object
      [
        ( "pin",
          Json.Object
            [
              ("chunk", Json.Number (float_of_int chunk));
              ( "route",
                Json.Array
                  (List.map (fun l -> Json.Number (float_of_int l)) route) );
            ] );
      ]
  | Buddy { dim } ->
    Json.Object
      [ ("buddy", Json.Object [ ("dim", Json.Number (float_of_int dim)) ]) ]

let to_json_value t =
  let fields =
    (match t.name with
    | Some n -> [ ("name", Json.String n) ]
    | None -> [])
    @ [ ("rules", Json.Array (List.map rule_to_json t.rules)) ]
  in
  Json.Object fields

let to_json t = Json.encode (to_json_value t)

let rule_of_json j =
  let int_field v = Json.to_int v in
  match j with
  | Json.Object _ -> (
    match
      ( Json.member "forbid" j,
        Json.member "prefer" j,
        Json.member "pin" j,
        Json.member "buddy" j )
    with
    | Some v, None, None, None -> (
      match int_field v with
      | Some link -> Ok (Forbid_link link)
      | None -> Error "forbid rule: link id must be an integer")
    | None, Some v, None, None -> (
      match (int_field v, Json.member "weight" j) with
      | Some link, Some w -> (
        match Json.to_float w with
        | Some weight -> Ok (Prefer_link { link; weight })
        | None -> Error "prefer rule: weight must be a number")
      | Some _, None -> Error "prefer rule: missing \"weight\" field"
      | None, _ -> Error "prefer rule: link id must be an integer")
    | None, None, Some v, None -> (
      match (Json.member "chunk" v, Json.member "route" v) with
      | Some c, Some r -> (
        match (int_field c, Json.to_list r) with
        | Some chunk, Some links -> (
          let route = List.filter_map int_field links in
          if List.length route <> List.length links then
            Error "pin rule: route must be a list of integer link ids"
          else Ok (Pin_path { chunk; route }))
        | None, _ -> Error "pin rule: chunk id must be an integer"
        | _, None -> Error "pin rule: route must be a list")
      | _ -> Error "pin rule: needs \"chunk\" and \"route\" fields")
    | None, None, None, Some v -> (
      match Option.bind (Json.member "dim" v) int_field with
      | Some dim -> Ok (Buddy { dim })
      | None -> Error "buddy rule: needs an integer \"dim\" field")
    | None, None, None, None ->
      Error "rule object needs exactly one of forbid/prefer/pin/buddy"
    | _ -> Error "rule object mixes several of forbid/prefer/pin/buddy")
  | _ -> Error "each rule must be a JSON object"

let of_json_value j =
  match j with
  | Json.Object _ -> (
    let name = Option.bind (Json.member "name" j) Json.to_string in
    match Json.member "rules" j with
    | None -> Error "sketch: missing \"rules\" field"
    | Some r -> (
      match Json.to_list r with
      | None -> Error "sketch: \"rules\" must be a list"
      | Some items ->
        let rec go acc = function
          | [] -> Ok { name; rules = List.rev acc }
          | item :: rest -> (
            match rule_of_json item with
            | Ok rule -> go (rule :: acc) rest
            | Error e ->
              Error
                (Printf.sprintf "sketch rule %d: %s" (List.length acc) e))
        in
        go [] items))
  | _ -> Error "sketch: expected a JSON object"

let of_json s =
  match Json.parse s with
  | Error e -> Error ("sketch: " ^ e)
  | Ok j -> of_json_value j

let of_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> of_json s
  | exception Sys_error e -> Error e

let digest t = Digest.to_hex (Digest.string (to_json t))

(* ---------- Compilation ---------- *)

(* The synthesis phases a spec lowers to, each tagged with the traversal
   direction feasibility must be checked under. Matched reduction patterns
   are synthesized on the reversed topology (§IV-E), so their reachability
   runs dst-to-src over the same link ids. *)
let phases (spec : Spec.t) =
  match spec.pattern with
  | Pattern.All_gather | Pattern.Broadcast _ -> [ (`Fwd, spec) ]
  | Pattern.Reduce_scatter | Pattern.Reduce _ -> [ (`Rev, Spec.reverse spec) ]
  | Pattern.All_reduce ->
    [
      (`Rev, Spec.reverse (Spec.with_pattern spec Pattern.Reduce_scatter));
      (`Fwd, Spec.with_pattern spec Pattern.All_gather);
    ]
  | (Pattern.All_to_all | Pattern.Gather _ | Pattern.Scatter _) as p ->
    raise (Infeasible (Unsupported_pattern (Pattern.name p)))

(* First postcondition [(chunk, npu)] no holder of the chunk can reach
   under the masked per-chunk link sets, or [None] if all are satisfiable.
   [rev] flips traversal (reduction phases route on the reversed fabric). *)
let reachability_failure topo ~forbid ~pins ~rev pspec =
  let n = Topology.num_npus topo in
  let adj_for allowed =
    let adj = Array.make n [] in
    List.iter
      (fun (e : Topology.edge) ->
        if allowed e.id then
          if rev then adj.(e.dst) <- e.src :: adj.(e.dst)
          else adj.(e.src) <- e.dst :: adj.(e.src))
      (Topology.edges topo);
    adj
  in
  let reach adj s =
    let seen = Array.make n false in
    let rec visit v =
      if not seen.(v) then begin
        seen.(v) <- true;
        List.iter visit adj.(v)
      end
    in
    visit s;
    seen
  in
  let base_adj = lazy (adj_for (fun id -> not (Iset.mem id forbid))) in
  let base_cache = Hashtbl.create 8 in
  let pinned_cache = Hashtbl.create 8 in
  let holders = Hashtbl.create 16 in
  List.iter
    (fun (v, c) ->
      Hashtbl.replace holders c
        (v :: Option.value ~default:[] (Hashtbl.find_opt holders c)))
    (Spec.precondition pspec);
  let reaches c h d =
    match Imap.find_opt c pins with
    | None ->
      let seen =
        match Hashtbl.find_opt base_cache h with
        | Some s -> s
        | None ->
          let s = reach (Lazy.force base_adj) h in
          Hashtbl.add base_cache h s;
          s
      in
      seen.(d)
    | Some route ->
      let seen =
        match Hashtbl.find_opt pinned_cache (c, h) with
        | Some s -> s
        | None ->
          let s =
            reach
              (adj_for (fun id ->
                   Iset.mem id route && not (Iset.mem id forbid)))
              h
          in
          Hashtbl.add pinned_cache (c, h) s;
          s
      in
      seen.(d)
  in
  List.find_map
    (fun (d, c) ->
      let ok =
        match Hashtbl.find_opt holders c with
        | None -> false
        | Some hs -> List.exists (fun h -> reaches c h d) hs
      in
      if ok then None else Some (c, d))
    (Spec.postcondition pspec)

let compile topo (spec : Spec.t) t =
  let num_links = Topology.num_links topo in
  let num_chunks = Spec.num_chunks spec in
  let check_link rule link =
    if link < 0 || link >= num_links then
      raise (Infeasible (Unknown_link { rule; link }))
  in
  let phases = phases spec in
  let forbid = ref Iset.empty in
  let prefer = ref Imap.empty in
  let pins = ref Imap.empty in
  List.iter
    (fun rule ->
      match rule with
      | Forbid_link link ->
        check_link "forbid" link;
        forbid := Iset.add link !forbid
      | Prefer_link { link; weight } ->
        check_link "prefer" link;
        if not (Float.is_finite weight && weight > 0.) then
          raise (Infeasible (Bad_weight { link; weight }));
        prefer :=
          Imap.update link
            (function None -> Some weight | Some w -> Some (w *. weight))
            !prefer
      | Pin_path { chunk; route } ->
        if chunk < 0 || chunk >= num_chunks then
          raise (Infeasible (Unknown_chunk { chunk; num_chunks }));
        List.iter (check_link "pin") route;
        if route = [] then raise (Infeasible (Empty_route { chunk }));
        let r = Iset.of_list route in
        pins :=
          Imap.update chunk
            (function None -> Some r | Some r0 -> Some (Iset.inter r0 r))
            !pins
      | Buddy { dim } -> (
        match Topology.hierarchy topo with
        | None -> raise (Infeasible (No_hierarchy { dim }))
        | Some dims ->
          if dim < 0 || dim >= Array.length dims then
            raise (Infeasible (No_hierarchy { dim }));
          (* Inter-group hops along [dim] are only allowed between
             same-rank buddies: forbid every edge whose endpoints differ
             in coordinate [dim] and in any other coordinate too. *)
          List.iter
            (fun (e : Topology.edge) ->
              let cs = Topology.coords topo e.src in
              let cd = Topology.coords topo e.dst in
              if cs.(dim) <> cd.(dim) then begin
                let crossed = ref false in
                Array.iteri
                  (fun j _ -> if j <> dim && cs.(j) <> cd.(j) then crossed := true)
                  cs;
                if !crossed then forbid := Iset.add e.id !forbid
              end)
            (Topology.edges topo)))
    t.rules;
  (* Contradictions: a pinned route crossing the forbid set, or emptied by
     intersecting pins. *)
  Imap.iter
    (fun chunk route ->
      if Iset.is_empty route then raise (Infeasible (Empty_route { chunk }));
      match Iset.choose_opt (Iset.inter route !forbid) with
      | Some link -> raise (Infeasible (Forbid_pin_conflict { chunk; link }))
      | None -> ())
    !pins;
  (* Satisfiability: every phase's postconditions must stay reachable from
     some holder under the per-chunk allowed-link sets. *)
  List.iter
    (fun (dir, pspec) ->
      let rev = dir = `Rev in
      match reachability_failure topo ~forbid:!forbid ~pins:!pins ~rev pspec with
      | Some (chunk, npu) -> raise (Infeasible (Disconnected { chunk; npu }))
      | None -> ())
    phases;
  {
    Tacos.Synthesizer.forbid = Iset.elements !forbid;
    prefer = Imap.bindings !prefer;
    pin = Imap.bindings (Imap.map Iset.elements !pins);
  }

let check topo spec t =
  match compile topo spec t with
  | c -> Ok c
  | exception Infeasible off -> Error off

let compliant topo spec t (schedule : Schedule.t) =
  match check topo spec t with
  | Error off -> Error (offender_to_string off)
  | Ok c ->
    let forbid = Iset.of_list c.Tacos.Synthesizer.forbid in
    let pins =
      List.fold_left
        (fun m (chunk, route) -> Imap.add chunk (Iset.of_list route) m)
        Imap.empty c.Tacos.Synthesizer.pin
    in
    let bad =
      List.find_opt
        (fun (s : Schedule.send) ->
          Iset.mem s.edge forbid
          ||
          match Imap.find_opt s.chunk pins with
          | Some route -> not (Iset.mem s.edge route)
          | None -> false)
        schedule.Schedule.sends
    in
    (match bad with
    | None -> Ok ()
    | Some s when Iset.mem s.edge forbid ->
      Error
        (Printf.sprintf "send of chunk %d uses forbidden link %d" s.chunk
           s.edge)
    | Some s ->
      Error
        (Printf.sprintf "send of chunk %d uses link %d, off its pinned route"
           s.chunk s.edge))
