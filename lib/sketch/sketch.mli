(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective

(** Communication sketches: declarative constraints over a topology that
    guide the TACOS matcher (in the spirit of TACCL's communication
    sketches).

    A sketch is a small list of rules — forbid a link, prefer a link, pin
    a chunk to a route, restrict inter-group traffic to buddies — validated
    structurally against a concrete (topology, spec) pair and compiled into
    the {!Tacos.Synthesizer.constraints} record the matching loop consumes.
    Validation is total and typed: every way a sketch can be malformed or
    unsatisfiable surfaces as {!Infeasible} carrying the offending rule,
    before any synthesis work starts — a forbidden link that disconnects a
    postcondition is reported as [Disconnected], not as the synthesizer's
    late [Stuck]. *)

type rule =
  | Forbid_link of int  (** the link id must carry nothing *)
  | Prefer_link of { link : int; weight : float }
      (** bias the §IV-F cheapest-first order: the link's ordering cost is
          divided by [weight] (> 0), so weighted links match earlier.
          Durations are untouched. *)
  | Pin_path of { chunk : int; route : int list }
      (** the chunk may only travel the route's link ids; pinning the same
          chunk twice intersects the routes *)
  | Buddy of { dim : int }
      (** fix inter-group partners along hierarchy dimension [dim]: an edge
          whose endpoints differ in coordinate [dim] {e and} in any other
          coordinate is forbidden, so cross-group traffic only flows between
          same-rank buddies (the buddy heuristic of hierarchical
          All-Reduce). Requires the topology to carry a hierarchy. *)

type t = { name : string option; rules : rule list }

val make : ?name:string -> rule list -> t
val empty : t

(** {1 Typed infeasibility} *)

type offender =
  | Unknown_link of { rule : string; link : int }
      (** a rule names a link id outside [0, num_links) *)
  | Unknown_chunk of { chunk : int; num_chunks : int }
      (** a pin names a chunk id outside the spec's chunk space *)
  | Bad_weight of { link : int; weight : float }
      (** a preference weight that is not a finite positive number *)
  | Empty_route of { chunk : int }
      (** a pin with no links, or two pins on one chunk whose routes do not
          intersect *)
  | Forbid_pin_conflict of { chunk : int; link : int }
      (** a link both forbidden and part of a chunk's pinned route *)
  | No_hierarchy of { dim : int }
      (** a buddy rule on a topology without hierarchy metadata, or naming
          a dimension the hierarchy does not have *)
  | Unsupported_pattern of string
      (** sketches apply to the matched patterns (All-Gather, Broadcast,
          Reduce-Scatter, Reduce, All-Reduce); routed patterns are named
          here *)
  | Disconnected of { chunk : int; npu : int }
      (** under the sketch, no initial holder of [chunk] can still reach
          the postcondition at [npu] — the sketch disconnects the
          collective *)

val offender_to_string : offender -> string

exception Infeasible of offender
(** Raised by {!compile} (and {!of_json} for in-band structural errors is
    {e not} — parsing returns [result]; [Infeasible] is about a concrete
    topology/spec pair). *)

(** {1 JSON codec}

    Wire format (also the [--sketch FILE] format of the CLI and the
    [sketch] request field of the serve protocol):

    {v
    { "name": "no-slow-link",
      "rules": [ { "forbid": 3 },
                 { "prefer": 5, "weight": 4 },
                 { "pin": { "chunk": 0, "route": [1, 2] } },
                 { "buddy": { "dim": 1 } } ] }
    v} *)

val to_json_value : t -> Tacos_util.Json.t
val to_json : t -> string

val of_json_value : Tacos_util.Json.t -> (t, string) result
val of_json : string -> (t, string) result

val of_file : string -> (t, string) result
(** Read and parse a sketch file; I/O errors are reported in the [Error]. *)

val digest : t -> string
(** Hex MD5 of the canonical JSON encoding — the registry cache-key variant
    for sketched requests ([Tacos.Registry]'s [?variant]). Structurally
    equal sketches digest equally; [empty] digests like any other value
    (callers should omit the variant entirely when no sketch applies). *)

(** {1 Compilation} *)

val compile : Topology.t -> Spec.t -> t -> Tacos.Synthesizer.constraints
(** Validate the sketch against this topology and spec and lower it to the
    matcher's constraint record: buddy rules expand to forbidden links,
    duplicate preferences multiply, duplicate pins intersect. Raises
    {!Infeasible} on any structural error, contradiction, or
    sketch-induced disconnection (checked per phase for All-Reduce and on
    the reversed adjacency for the reduction patterns, mirroring how the
    synthesizer actually routes chunks). The empty sketch compiles to
    {!Tacos.Synthesizer.no_constraints}. *)

val check : Topology.t -> Spec.t -> t -> (Tacos.Synthesizer.constraints, offender) result
(** {!compile} with the exception reified. *)

val compliant : Topology.t -> Spec.t -> t -> Schedule.t -> (unit, string) result
(** Check a schedule against the sketch's hard rules: no send on a
    forbidden (or buddy-forbidden) link, every pinned chunk only on its
    route. Preferences are soft and not checked. This is the post-hoc
    assertion the tests and the serving layer run on synthesized
    schedules. *)
