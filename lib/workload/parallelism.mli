(* Namespaces of the substrate libraries. *)
open Tacos_collective

(** Parallelization strategies and the collective patterns they expose
    (Table III).

    | strategy          | Reduce-Scatter | All-Gather | All-Reduce |
    |-------------------|----------------|------------|------------|
    | Data parallelism  |                |            | ✓          |
    | Tensor parallelism|                |            | ✓          |
    | FSDP              | ✓              | ✓          |            |
    | ZeRO              | ✓              | ✓          |            |
    | Hybrid            | ✓              | ✓          | ✓          |

    Each strategy maps a model to a *communication plan*: the list of
    collectives one training iteration exposes, with their sizes. Plans are
    costed against a {!Training.backend}, so the same comparison Figs. 20-21
    make for data parallelism extends to the sharded strategies — which is
    precisely where many-to-many collectives (and thus TACOS' advantage over
    one-to-many tree synthesizers, §VII-C) matter. *)

type t =
  | Data_parallel
  | Tensor_parallel
      (** activation All-Reduces exposed in forward and backward *)
  | Fsdp
      (** parameters sharded: re-gather weights in forward and backward,
          reduce-scatter gradients *)
  | Zero
      (** optimizer/gradient sharding (ZeRO-2-style): reduce-scatter
          gradients, all-gather updated parameters *)
  | Hybrid
      (** FSDP-style weight sharding plus tensor-parallel activation
          All-Reduces *)

val name : t -> string

val all : t list

type op = { label : string; pattern : Pattern.t; bytes : float }

val plan : t -> Models.t -> op list
(** The collectives one iteration exposes, in execution order. Sizes come
    from the model's weight-gradient and activation-gradient volumes. *)

val patterns : t -> Pattern.t list
(** The distinct patterns the strategy needs — Table III's row. *)

type cost = {
  strategy : t;
  fwd_compute : float;
  bwd_compute : float;
  comm : (string * float) list;  (** per-op exposed communication time *)
}

val total : cost -> float
val comm_total : cost -> float

val iteration :
  ?npu:Training.npu -> Models.t -> t -> Training.backend -> cost
(** Cost one training iteration under the strategy with collectives served
    by the backend. *)
