(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective

(** Data-parallel training-iteration model (§VI-D).

    For data-parallel training, communication is exposed at the end of each
    iteration [18]: one All-Reduce over the weight gradients (plus, for the
    hybrid-parallel LLMs, the exposed input-gradient traffic). An iteration
    therefore decomposes as

    {v iteration = fwd_compute + bwd_compute
                 + AR(input_grad_bytes) + AR(weight_grad_bytes) v}

    where the collective times come from a pluggable backend — Ring, Themis,
    a freshly synthesized TACOS algorithm, or the ideal bound. Compute terms
    are identical across backends, so the relative end-to-end shape
    (Figs. 20-21) is carried entirely by the communication model.

    Other parallelization strategies (Table III) are modeled in
    {!Parallelism}, on top of the same backends. *)

type npu = { peak_flops : float; compute_efficiency : float }

val default_npu : npu
(** 120 TFLOPS peak at 50% sustained efficiency — an A100-class NPU. *)

(** Collective time as a function of pattern and size on a fixed topology. *)
type backend = { backend_name : string; collective : Pattern.t -> float -> float }

val all_reduce : backend -> float -> float

val ring_backend : Topology.t -> backend
val themis_backend : ?chunks:int -> Topology.t -> backend

val tacos_backend : ?seed:int -> ?chunks_per_npu:int -> Topology.t -> backend
(** Synthesizes a fresh TACOS algorithm for each requested collective and
    evaluates it under the congestion-aware simulator. *)

val ideal_backend : Topology.t -> backend

type breakdown = {
  fwd_compute : float;
  bwd_compute : float;
  input_grad_comm : float;
  weight_grad_comm : float;
}

val total : breakdown -> float
val comm : breakdown -> float

val iteration : ?npu:npu -> Models.t -> backend -> breakdown
(** One data-parallel training iteration of the model with gradient
    All-Reduces served by the backend. *)

val compute_time : ?npu:npu -> Models.t -> float * float
(** (forward, backward) compute seconds on one NPU. *)

val pattern_for : Models.t -> Pattern.t
(** The collective pattern plain data parallelism needs (Table III). *)
