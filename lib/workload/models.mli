(** Layer-granularity descriptions of the DNN workloads of §VI-D.

    Each layer carries forward/backward FLOP counts for one training
    iteration at the stated per-NPU batch, plus the gradient traffic it
    contributes: [weight_grad_bytes] is all-reduced across the data-parallel
    group at the end of the backward pass, [input_grad_bytes] is the
    activation-gradient traffic exposed by the hybrid (tensor/pipeline)
    parallelization of the larger models. Parameter counts follow the cited
    model papers; FLOPs are standard per-iteration estimates. Absolute
    numbers only set the compute:communication ratio — the experiments
    report times normalized to TACOS, exactly like Figs. 20-21. *)

type layer = {
  name : string;
  fwd_flops : float;
  bwd_flops : float;
  weight_grad_bytes : float;
  input_grad_bytes : float;
}

type t = { name : string; layers : layer list }

val gnmt : t
(** GNMT [60]: 8-layer seq2seq LSTM stack, ~210 M parameters, per-NPU batch
    of 64 sentences. *)

val resnet50 : t
(** ResNet-50 [61]: 25.6 M parameters, per-NPU batch of 32 images. *)

val turing_nlg : t
(** Turing-NLG [62]: 17 B parameters, 78 transformer layers; gradients
    sharded over a model-parallel group of 16, per-NPU batch of 1 sequence. *)

val msft_1t : t
(** MSFT-1T [6]: 1 T parameters, 128 transformer layers; gradients sharded
    over a model-parallel group of 512. *)

val total_fwd_flops : t -> float
val total_bwd_flops : t -> float
val total_weight_grad_bytes : t -> float
val total_input_grad_bytes : t -> float
