(* Namespaces of the substrate libraries. *)
open Tacos_collective

type t = Data_parallel | Tensor_parallel | Fsdp | Zero | Hybrid

let name = function
  | Data_parallel -> "Data parallelism"
  | Tensor_parallel -> "Tensor parallelism"
  | Fsdp -> "FSDP"
  | Zero -> "ZeRO"
  | Hybrid -> "Hybrid"

let all = [ Data_parallel; Tensor_parallel; Fsdp; Zero; Hybrid ]

type op = { label : string; pattern : Pattern.t; bytes : float }

let plan_tensor_part activations =
  [
    { label = "fwd activation AR"; pattern = Pattern.All_reduce; bytes = activations };
    { label = "bwd activation AR"; pattern = Pattern.All_reduce; bytes = activations };
  ]

let plan_sharded_part weights =
  [
    { label = "grad RS"; pattern = Pattern.Reduce_scatter; bytes = weights };
    { label = "param AG"; pattern = Pattern.All_gather; bytes = weights };
  ]

let plan strategy model =
  let weights = Models.total_weight_grad_bytes model in
  let activations = Models.total_input_grad_bytes model in
  let op label pattern bytes = { label; pattern; bytes } in
  let if_nonzero ops = List.filter (fun o -> o.bytes > 0.) ops in
  match strategy with
  | Data_parallel ->
    if_nonzero
      [
        op "input-grad AR" Pattern.All_reduce activations;
        op "weight-grad AR" Pattern.All_reduce weights;
      ]
  | Tensor_parallel ->
    (* Partial activations are combined in the forward pass and their
       gradients in the backward pass. *)
    if_nonzero
      [
        op "fwd activation AR" Pattern.All_reduce activations;
        op "bwd activation AR" Pattern.All_reduce activations;
      ]
  | Fsdp ->
    (* Sharded parameters are re-gathered before each pass; gradients are
       reduce-scattered back to their shard owners. *)
    if_nonzero
      [
        op "fwd weight AG" Pattern.All_gather weights;
        op "bwd weight AG" Pattern.All_gather weights;
        op "grad RS" Pattern.Reduce_scatter weights;
      ]
  | Zero ->
    (* ZeRO-2-style: gradients reduce-scattered to the shard that updates
       them, updated parameters gathered once. *)
    if_nonzero
      [
        op "grad RS" Pattern.Reduce_scatter weights;
        op "param AG" Pattern.All_gather weights;
      ]
  | Hybrid -> if_nonzero (plan_tensor_part activations @ plan_sharded_part weights)

let patterns strategy =
  let dedup l =
    List.fold_left (fun acc p -> if List.mem p acc then acc else acc @ [ p ]) [] l
  in
  dedup
    (List.map
       (fun o -> o.pattern)
       (plan strategy
          (* A probe model with both traffic kinds nonzero. *)
          Models.msft_1t))

type cost = {
  strategy : t;
  fwd_compute : float;
  bwd_compute : float;
  comm : (string * float) list;
}

let total c =
  c.fwd_compute +. c.bwd_compute +. List.fold_left (fun a (_, t) -> a +. t) 0. c.comm

let comm_total c = List.fold_left (fun a (_, t) -> a +. t) 0. c.comm

let iteration ?npu model strategy (backend : Training.backend) =
  let fwd_compute, bwd_compute = Training.compute_time ?npu model in
  let comm =
    List.map (fun o -> (o.label, backend.Training.collective o.pattern o.bytes)) (plan strategy model)
  in
  { strategy; fwd_compute; bwd_compute; comm }
