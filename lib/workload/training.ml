(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective

type npu = { peak_flops : float; compute_efficiency : float }

let default_npu = { peak_flops = 120e12; compute_efficiency = 0.5 }

type backend = { backend_name : string; collective : Pattern.t -> float -> float }

let all_reduce b size = b.collective Pattern.All_reduce size

let spec_for ?(chunks_per_npu = 1) topo pattern size =
  Spec.make ~chunks_per_npu ~buffer_size:size ~pattern
    ~npus:(Topology.num_npus topo) ()

let ring_backend topo =
  {
    backend_name = "Ring";
    collective =
      (fun pattern size ->
        Tacos_baselines.Algo.(collective_time ring) topo (spec_for topo pattern size));
  }

let themis_backend ?(chunks = 64) topo =
  {
    backend_name = Printf.sprintf "Themis(%d)" chunks;
    collective =
      (fun pattern size ->
        Tacos_baselines.Algo.(collective_time (Themis { chunks }))
          topo (spec_for topo pattern size));
  }

let tacos_backend ?(seed = 42) ?(chunks_per_npu = 4) topo =
  {
    backend_name = "TACOS";
    collective =
      (fun pattern size ->
        let spec = spec_for ~chunks_per_npu topo pattern size in
        let result = Tacos.Synthesizer.synthesize ~seed topo spec in
        (* Evaluated under the same simulator backend as the baselines. *)
        let program =
          Tacos_sim.Program.of_schedule ~chunk_size:(Spec.chunk_size spec)
            result.Tacos.Synthesizer.schedule
        in
        (Tacos_sim.Engine.run topo program).Tacos_sim.Engine.finish_time);
  }

let ideal_backend topo =
  {
    backend_name = "Ideal";
    collective =
      (fun pattern size ->
        match pattern with
        | Pattern.All_reduce -> Ideal.all_reduce_time topo ~size
        | Pattern.All_gather -> Ideal.all_gather_time topo ~size
        | Pattern.Reduce_scatter -> Ideal.reduce_scatter_time topo ~size
        | Pattern.Broadcast _ | Pattern.Reduce _ | Pattern.Gather _ | Pattern.Scatter _
        | Pattern.All_to_all ->
          invalid_arg "Training.ideal_backend: unsupported pattern");
  }

type breakdown = {
  fwd_compute : float;
  bwd_compute : float;
  input_grad_comm : float;
  weight_grad_comm : float;
}

let total b = b.fwd_compute +. b.bwd_compute +. b.input_grad_comm +. b.weight_grad_comm
let comm b = b.input_grad_comm +. b.weight_grad_comm

let compute_time ?(npu = default_npu) model =
  let sustained = npu.peak_flops *. npu.compute_efficiency in
  (Models.total_fwd_flops model /. sustained, Models.total_bwd_flops model /. sustained)

let iteration ?(npu = default_npu) model backend =
  let fwd_compute, bwd_compute = compute_time ~npu model in
  let comm_time bytes = if bytes <= 0. then 0. else all_reduce backend bytes in
  {
    fwd_compute;
    bwd_compute;
    input_grad_comm = comm_time (Models.total_input_grad_bytes model);
    weight_grad_comm = comm_time (Models.total_weight_grad_bytes model);
  }

let pattern_for (_ : Models.t) = Pattern.All_reduce
