type layer = {
  name : string;
  fwd_flops : float;
  bwd_flops : float;
  weight_grad_bytes : float;
  input_grad_bytes : float;
}

type t = { name : string; layers : layer list }

(* Gradients travel in fp16 (2 bytes/parameter), the common mixed-precision
   setup of the cited systems. *)
let grad_bytes params = 2. *. params

(* The backward pass costs roughly twice the forward pass (weight and input
   gradient GEMMs). *)
let layer ?(input_grad_bytes = 0.) name ~fwd_flops ~params =
  {
    name;
    fwd_flops;
    bwd_flops = 2. *. fwd_flops;
    weight_grad_bytes = grad_bytes params;
    input_grad_bytes;
  }

let repeat prefix count make = List.init count (fun i -> make (Printf.sprintf "%s%d" prefix i))

let gnmt =
  (* 8 encoder + 8 decoder LSTM layers of ~1024 hidden, ~24 M parameters
     each at the embedding-heavy ends; per-NPU batch 64, sequence 50:
     2 * params * tokens FLOPs per layer forward. *)
  let tokens = 64. *. 50. in
  let lstm name params =
    layer name ~fwd_flops:(2. *. params *. tokens) ~params
  in
  {
    name = "GNMT";
    layers =
      (lstm "embed-src" 33e6 :: repeat "enc" 8 (fun n -> lstm n 17e6))
      @ repeat "dec" 8 (fun n -> lstm n 17e6)
      @ [ lstm "embed-dst+softmax" 41e6 ];
  }

let resnet50 =
  (* 25.6 M parameters, 4.1 GFLOP forward per image, batch 32. The four
     stages carry most of the weight; activations shrink as channels grow. *)
  let batch = 32. in
  let conv name ~params ~flops_per_image ~acts =
    layer name
      ~fwd_flops:(flops_per_image *. batch)
      ~params ~input_grad_bytes:(acts *. batch)
  in
  {
    name = "ResNet-50";
    layers =
      [
        conv "stem" ~params:0.1e6 ~flops_per_image:0.24e9 ~acts:3.2e6;
        conv "stage1" ~params:0.9e6 ~flops_per_image:0.86e9 ~acts:2.4e6;
        conv "stage2" ~params:3.5e6 ~flops_per_image:1.0e9 ~acts:1.2e6;
        conv "stage3" ~params:10.6e6 ~flops_per_image:1.3e9 ~acts:0.6e6;
        conv "stage4" ~params:10.5e6 ~flops_per_image:0.7e9 ~acts:0.3e6;
      ];
  }

(* Transformer stacks: per-layer parameters 12 h^2; forward FLOPs per token
   ~ 2 * params. Gradients are sharded across the model-parallel group
   ([shards]), which is what the data-parallel All-Reduce then moves; the
   tensor-parallel activation traffic surfaces as input-gradient bytes. *)
let transformer ~name ~hidden ~num_layers ~tokens ~shards ~seq_bytes =
  let params_per_layer = 12. *. hidden *. hidden in
  let block n =
    {
      name = n;
      fwd_flops = 2. *. params_per_layer *. tokens /. shards;
      bwd_flops = 4. *. params_per_layer *. tokens /. shards;
      weight_grad_bytes = grad_bytes (params_per_layer /. shards);
      input_grad_bytes = seq_bytes;
    }
  in
  { name; layers = repeat "block" num_layers block }

let turing_nlg =
  transformer ~name:"Turing-NLG" ~hidden:4256. ~num_layers:78 ~tokens:1024.
    ~shards:16. ~seq_bytes:(2. *. 1024. *. 4256.)

let msft_1t =
  transformer ~name:"MSFT-1T" ~hidden:25600. ~num_layers:128 ~tokens:1024.
    ~shards:512. ~seq_bytes:(2. *. 1024. *. 25600.)

let sum f t = List.fold_left (fun acc l -> acc +. f l) 0. t.layers
let total_fwd_flops = sum (fun l -> l.fwd_flops)
let total_bwd_flops = sum (fun l -> l.bwd_flops)
let total_weight_grad_bytes = sum (fun l -> l.weight_grad_bytes)
let total_input_grad_bytes = sum (fun l -> l.input_grad_bytes)
