(** Gradient-bucketed communication/computation overlap.

    Figs. 20-21 charge the full gradient All-Reduce as *exposed* time, the
    data-parallel worst case ("communication becomes exposed at the end of
    each training iteration", §VI-D). Real frameworks overlap it: as the
    backward pass produces gradients layer by layer, they accumulate into
    buckets, and each full bucket's All-Reduce is issued while the remaining
    backward compute proceeds. This module models that timeline:

    - backward runs through the model's layers in reverse, each taking its
      share of backward compute time;
    - a finished layer adds its weight gradients to the current bucket; when
      the bucket reaches [bucket_bytes] (or the pass ends) an All-Reduce of
      the bucket is issued;
    - the network serves All-Reduces one at a time, FIFO (collectives over
      the same fabric serialize);
    - the iteration ends when both the backward pass and the last
      All-Reduce finish.

    Smaller buckets expose less communication — until per-collective latency
    overhead dominates, the classic bucket-size tradeoff. *)

type t = {
  fwd_compute : float;
  bwd_compute : float;
  comm_busy : float;  (** total network time across bucket All-Reduces *)
  exposed_comm : float;  (** iteration time beyond pure compute *)
  iteration_time : float;
  buckets : int;
}

val iteration :
  ?npu:Training.npu -> ?bucket_bytes:float -> Models.t -> Training.backend -> t
(** [bucket_bytes] defaults to [infinity] — a single unbucketed All-Reduce,
    which reduces to {!Training.iteration}'s fully exposed model (plus any
    input-gradient traffic, which stays unoverlapped). *)
