type t = {
  fwd_compute : float;
  bwd_compute : float;
  comm_busy : float;
  exposed_comm : float;
  iteration_time : float;
  buckets : int;
}

let iteration ?npu ?(bucket_bytes = infinity) model (backend : Training.backend) =
  if bucket_bytes <= 0. then invalid_arg "Overlap.iteration: bucket_bytes must be positive";
  let fwd_compute, bwd_compute = Training.compute_time ?npu model in
  let total_bwd_flops = Models.total_bwd_flops model in
  (* Walk the layers in reverse; clock advances with backward compute. *)
  let clock = ref fwd_compute in
  let network_free = ref !clock in
  let comm_busy = ref 0. in
  let buckets = ref 0 in
  let pending = ref 0. in
  let flush () =
    if !pending > 0. then begin
      let service = Training.all_reduce backend !pending in
      let start = Float.max !clock !network_free in
      network_free := start +. service;
      comm_busy := !comm_busy +. service;
      incr buckets;
      pending := 0.
    end
  in
  List.iter
    (fun (layer : Models.layer) ->
      (* This layer's slice of the backward pass completes... *)
      clock := !clock +. (bwd_compute *. layer.Models.bwd_flops /. total_bwd_flops);
      (* ...making its gradients available for bucketing. *)
      pending := !pending +. layer.Models.weight_grad_bytes;
      if !pending >= bucket_bytes then flush ())
    (List.rev model.Models.layers);
  flush ();
  (* Input-gradient traffic (hybrid parallelism) is not overlappable here. *)
  let input_grads = Models.total_input_grad_bytes model in
  let input_comm = if input_grads > 0. then Training.all_reduce backend input_grads else 0. in
  let iteration_time = Float.max !clock !network_free +. input_comm in
  {
    fwd_compute;
    bwd_compute;
    comm_busy = !comm_busy +. input_comm;
    exposed_comm = iteration_time -. fwd_compute -. bwd_compute;
    iteration_time;
    buckets = !buckets;
  }
