(** Chrome trace-event (Perfetto / chrome://tracing) export of a recorded
    {!Trace} run, plus the structural validator CI runs on emitted files.

    Process 1 is the simulation on simulated time: one lane per physical
    link with duration slices per service, async begin/end pairs per FCFS
    queue wait, instant events for faults / reroutes / strandings, and
    counter tracks for fleet-wide queued messages and busy links (and the
    busy fraction when [num_links] is given). Process 2 is synthesis on
    wall-clock time: one lane per domain carrying the per-trial and
    per-round spans. Timestamps are microseconds. *)

val export :
  ?link_label:(int -> string) ->
  ?transfer_label:(int -> string) ->
  ?num_links:int ->
  Trace.dump ->
  Tacos_util.Json.t
(** Render a dump as a JSON object with [traceEvents] (metadata first, then
    events sorted by timestamp) — the document `tacos trace` writes.
    [link_label] and [transfer_label] name lanes and slices (defaults:
    ["link %d"], ["t%d"]). *)

val validate : Tacos_util.Json.t -> (unit, string) result
(** Structural well-formedness of a trace-event document: a [traceEvents]
    array whose events carry name/pid/tid/ts, non-negative and monotone
    timestamps, non-negative durations on duration slices, every referenced
    lane named by [thread_name]/[process_name] metadata, and balanced async
    begin/end pairs. *)
