(* DDSketch-style streaming quantile sketch.

   A value v > 0 lands in bucket [ceil (log_gamma v)] with
   gamma = (1 + alpha) / (1 - alpha); the bucket's representative value
   2 * gamma^i / (gamma + 1) is within alpha * v of every value the bucket
   covers, so any rank-based quantile estimate carries a relative error
   bound of alpha. Buckets are sparse (hash table keyed by index), and two
   sketches with equal gamma merge by adding counts bucket-wise — exact,
   hence associative and commutative.

   Memory bound: when the table exceeds max_buckets, the two lowest buckets
   are merged (the lower one's count moves up into its neighbour). This
   sacrifices accuracy at the low quantiles first and never perturbs the
   upper tail, which is what the service reports (p90/p95/p99). *)

type t = {
  alpha : float;
  gamma : float;
  log_gamma : float;
  max_buckets : int;
  buckets : (int, int) Hashtbl.t;
  mutable zero_count : int; (* observations <= min_trackable *)
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

(* Values below this are indistinguishable from zero: keeps bucket indexes
   bounded (|index| <= log_gamma 1e-12 ~ a few thousand at alpha = 1%). *)
let min_trackable = 1e-12

let create ?(accuracy = 0.01) ?(max_buckets = 2048) () =
  if not (accuracy > 0. && accuracy < 1.) then
    invalid_arg "Quantile.create: accuracy must be in (0, 1)";
  if max_buckets < 2 then invalid_arg "Quantile.create: max_buckets must be >= 2";
  let gamma = (1. +. accuracy) /. (1. -. accuracy) in
  {
    alpha = accuracy;
    gamma;
    log_gamma = log gamma;
    max_buckets;
    buckets = Hashtbl.create 64;
    zero_count = 0;
    count = 0;
    sum = 0.;
    min_v = infinity;
    max_v = neg_infinity;
  }

let accuracy t = t.alpha
let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then nan else t.min_v
let max_value t = if t.count = 0 then nan else t.max_v

let index_of t v = int_of_float (Float.ceil (log v /. t.log_gamma))

(* Representative value of bucket i: the mid-point (in relative terms) of
   the interval (gamma^(i-1), gamma^i] it covers. *)
let value_of t i = 2. *. exp (float_of_int i *. t.log_gamma) /. (t.gamma +. 1.)

let bucket_add t i n =
  Hashtbl.replace t.buckets i (n + Option.value ~default:0 (Hashtbl.find_opt t.buckets i))

let sorted_indexes t =
  List.sort compare (Hashtbl.fold (fun i _ acc -> i :: acc) t.buckets [])

(* Collapse the lowest bucket into its neighbour until within budget. *)
let enforce_cap t =
  while Hashtbl.length t.buckets > t.max_buckets do
    match sorted_indexes t with
    | i0 :: i1 :: _ ->
      let n0 = Hashtbl.find t.buckets i0 in
      Hashtbl.remove t.buckets i0;
      bucket_add t i1 n0
    | _ -> assert false
  done

let add t v =
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v;
  if v <= min_trackable then t.zero_count <- t.zero_count + 1
  else begin
    bucket_add t (index_of t v) 1;
    enforce_cap t
  end

let quantile t q =
  if not (q >= 0. && q <= 1.) then invalid_arg "Quantile.quantile: q outside [0, 1]";
  if t.count = 0 then nan
  else begin
    (* Nearest rank: the ceil(q * n)-th smallest observation, 1-based. *)
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int t.count))) in
    let raw =
      if rank <= t.zero_count then 0.
      else begin
        let remaining = ref (rank - t.zero_count) in
        let result = ref t.max_v in
        (try
           List.iter
             (fun i ->
               remaining := !remaining - Hashtbl.find t.buckets i;
               if !remaining <= 0 then begin
                 result := value_of t i;
                 raise Exit
               end)
             (sorted_indexes t)
         with Exit -> ());
        !result
      end
    in
    Float.min t.max_v (Float.max t.min_v raw)
  end

let merge a b =
  if a.alpha <> b.alpha then invalid_arg "Quantile.merge: accuracy mismatch";
  let t = create ~accuracy:a.alpha ~max_buckets:(max a.max_buckets b.max_buckets) () in
  let absorb src =
    Hashtbl.iter (fun i n -> bucket_add t i n) src.buckets;
    t.zero_count <- t.zero_count + src.zero_count;
    t.count <- t.count + src.count;
    t.sum <- t.sum +. src.sum;
    if src.count > 0 then begin
      if src.min_v < t.min_v then t.min_v <- src.min_v;
      if src.max_v > t.max_v then t.max_v <- src.max_v
    end
  in
  absorb a;
  absorb b;
  enforce_cap t;
  t

let summary t =
  if t.count = 0 then []
  else List.map (fun q -> (q, quantile t q)) [ 0.5; 0.9; 0.95; 0.99 ]
