(* Lightweight observability substrate: counters, running-max gauges,
   log-scale histograms, span timers and a structured trace sink behind
   one global registry that is OFF by default.

   Design constraints, in order:
   - near-zero cost when disabled: every record operation is one atomic
     flag load and a branch, so the synthesizer/simulator hot paths can
     stay permanently instrumented;
   - domain-safe: synthesis trials run on multiple domains sharing the
     registry, so all metric state is Atomic (CAS loops for the float
     aggregates) and the registry/trace sink are mutex-protected;
   - machine-readable: [snapshot] and [trace_events] serialize to
     Tacos_util.Json, which is what the CLI `profile` subcommand and the
     BENCH_*.json benchmark rows embed.

   Metrics are interned by name: [counter "x"] returns the same counter
   everywhere, so modules can intern at load time and tests/CLI can look
   the value up by name. [reset] zeroes values but keeps identities. *)

module Json = Tacos_util.Json
module Clock = Tacos_util.Clock

let enabled_flag = Atomic.make false
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false
let enabled () = Atomic.get enabled_flag

(* --- recording context ---------------------------------------------------- *)

(* Synthesis trial index, carried in domain-local storage so trials running
   concurrently on several domains tag their own records: [trace] (and
   [Trace.emit]) stamp events with the emitting domain id plus this index,
   keeping the interleaved shared buffers attributable. *)

let trial_key : int option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current_trial () = Domain.DLS.get trial_key

let with_trial i f =
  let saved = Domain.DLS.get trial_key in
  Domain.DLS.set trial_key (Some i);
  Fun.protect ~finally:(fun () -> Domain.DLS.set trial_key saved) f

(* --- atomic float helpers ------------------------------------------------ *)

let rec atomic_add_float a x =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. x)) then atomic_add_float a x

let rec atomic_max_float a x =
  let old = Atomic.get a in
  if x > old && not (Atomic.compare_and_set a old x) then atomic_max_float a x

let rec atomic_min_float a x =
  let old = Atomic.get a in
  if x < old && not (Atomic.compare_and_set a old x) then atomic_min_float a x

(* --- metric types -------------------------------------------------------- *)

type counter = { c_name : string; c_value : int Atomic.t }
type gauge = { g_name : string; g_max : float Atomic.t }

(* Exact count/sum/min/max plus power-of-two magnitude buckets: bucket 0
   collects non-positive observations, bucket [i >= 1] the values whose
   binary exponent is [i + min_exp - 1]. 64 buckets span ~1e-9 .. ~8e9. *)
let num_buckets = 64
let min_exp = -30 (* 2^-30 ~ 1e-9: finest magnitude distinguished *)

type histogram = {
  h_name : string;
  h_count : int Atomic.t;
  h_sum : float Atomic.t;
  h_min : float Atomic.t;
  h_max : float Atomic.t;
  h_buckets : int Atomic.t array;
}

type timer = { t_hist : histogram }

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Timer of timer

(* --- registry ------------------------------------------------------------ *)

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let intern name make project kind =
  with_lock registry_mutex (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
        match project m with
        | Some v -> v
        | None ->
          invalid_arg
            (Printf.sprintf "Obs.%s: %S is already registered as another kind" kind
               name))
      | None ->
        let v = make () in
        v)

let fresh_histogram name =
  {
    h_name = name;
    h_count = Atomic.make 0;
    h_sum = Atomic.make 0.;
    h_min = Atomic.make infinity;
    h_max = Atomic.make neg_infinity;
    h_buckets = Array.init num_buckets (fun _ -> Atomic.make 0);
  }

let counter name =
  intern name
    (fun () ->
      let c = { c_name = name; c_value = Atomic.make 0 } in
      Hashtbl.replace registry name (Counter c);
      c)
    (function Counter c -> Some c | _ -> None)
    "counter"

let gauge name =
  intern name
    (fun () ->
      let g = { g_name = name; g_max = Atomic.make neg_infinity } in
      Hashtbl.replace registry name (Gauge g);
      g)
    (function Gauge g -> Some g | _ -> None)
    "gauge"

let histogram name =
  intern name
    (fun () ->
      let h = fresh_histogram name in
      Hashtbl.replace registry name (Histogram h);
      h)
    (function Histogram h -> Some h | _ -> None)
    "histogram"

let timer name =
  intern name
    (fun () ->
      let t = { t_hist = fresh_histogram name } in
      Hashtbl.replace registry name (Timer t);
      t)
    (function Timer t -> Some t | _ -> None)
    "timer"

(* --- recording ----------------------------------------------------------- *)

let add c n = if enabled () then ignore (Atomic.fetch_and_add c.c_value n)
let incr c = add c 1
let value c = Atomic.get c.c_value

let observe_max g v = if enabled () then atomic_max_float g.g_max v

let gauge_value g =
  let v = Atomic.get g.g_max in
  if v = neg_infinity then 0. else v

let bucket_of v =
  if v <= 0. then 0
  else begin
    let _, e = Float.frexp v in
    max 1 (min (num_buckets - 1) (e - min_exp))
  end

let observe_unchecked h v =
  ignore (Atomic.fetch_and_add h.h_count 1);
  atomic_add_float h.h_sum v;
  atomic_min_float h.h_min v;
  atomic_max_float h.h_max v;
  ignore (Atomic.fetch_and_add h.h_buckets.(bucket_of v) 1)

let observe h v = if enabled () then observe_unchecked h v

let time tm f =
  if not (enabled ()) then f ()
  else begin
    let s = Clock.start () in
    Fun.protect ~finally:(fun () -> observe_unchecked tm.t_hist (Clock.elapsed s)) f
  end

(* --- trace sink ---------------------------------------------------------- *)

(* Bounded so a long simulation cannot exhaust memory: past [trace_cap]
   events are counted as dropped instead of stored. Timestamps are seconds
   since the last [reset] (or [enable]), not absolute wall time. *)
let trace_cap = 100_000
let trace_mutex = Mutex.create ()
let traces_rev : Json.t list ref = ref []
let trace_len = ref 0
let trace_dropped = ref 0
let trace_epoch = ref 0.

let trace name fields =
  if enabled () then begin
    (* Stamp outside the lock: domain id and trial context belong to the
       emitting domain, not to whoever flushes the buffer. *)
    let stamp =
      ("domain", Json.Number (float_of_int (Domain.self () :> int)))
      ::
      (match current_trial () with
      | Some i -> [ ("trial", Json.Number (float_of_int i)) ]
      | None -> [])
    in
    with_lock trace_mutex (fun () ->
        if !trace_len >= trace_cap then trace_dropped := !trace_dropped + 1
        else begin
          let t = Clock.now () -. !trace_epoch in
          traces_rev :=
            Json.Object
              (("event", Json.String name) :: ("t", Json.Number t)
              :: (stamp @ fields))
            :: !traces_rev;
          trace_len := !trace_len + 1
        end)
  end

let trace_events () =
  with_lock trace_mutex (fun () ->
      Json.Object
        [
          ("dropped", Json.Number (float_of_int !trace_dropped));
          ("events", Json.Array (List.rev !traces_rev));
        ])

(* --- reset / snapshot ---------------------------------------------------- *)

let reset_metric = function
  | Counter c -> Atomic.set c.c_value 0
  | Gauge g -> Atomic.set g.g_max neg_infinity
  | Histogram h | Timer { t_hist = h } ->
    Atomic.set h.h_count 0;
    Atomic.set h.h_sum 0.;
    Atomic.set h.h_min infinity;
    Atomic.set h.h_max neg_infinity;
    Array.iter (fun b -> Atomic.set b 0) h.h_buckets

let reset () =
  with_lock registry_mutex (fun () -> Hashtbl.iter (fun _ m -> reset_metric m) registry);
  with_lock trace_mutex (fun () ->
      traces_rev := [];
      trace_len := 0;
      trace_dropped := 0;
      trace_epoch := Clock.now ())

let histogram_json h =
  let count = Atomic.get h.h_count in
  let sum = Atomic.get h.h_sum in
  let buckets =
    Array.to_list h.h_buckets
    |> List.mapi (fun i b -> (i, Atomic.get b))
    |> List.filter (fun (_, c) -> c > 0)
    |> List.map (fun (i, c) ->
           let le =
             if i = 0 then 0. else Float.ldexp 1. (i + min_exp)
           in
           Json.Object
             [ ("le", Json.Number le); ("count", Json.Number (float_of_int c)) ])
  in
  Json.Object
    [
      ("count", Json.Number (float_of_int count));
      ("sum", Json.Number sum);
      ("mean", Json.Number (if count = 0 then 0. else sum /. float_of_int count));
      ("min", Json.Number (if count = 0 then 0. else Atomic.get h.h_min));
      ("max", Json.Number (if count = 0 then 0. else Atomic.get h.h_max));
      ("buckets", Json.Array buckets);
    ]

let snapshot () =
  let counters = ref [] and gauges = ref [] and hists = ref [] and timers = ref [] in
  with_lock registry_mutex (fun () ->
      Hashtbl.iter
        (fun name m ->
          match m with
          | Counter c ->
            counters := (name, Json.Number (float_of_int (value c))) :: !counters
          | Gauge g -> gauges := (name, Json.Number (gauge_value g)) :: !gauges
          | Histogram h -> hists := (name, histogram_json h) :: !hists
          | Timer t -> timers := (name, histogram_json t.t_hist) :: !timers)
        registry);
  let sorted l = List.sort (fun (a, _) (b, _) -> compare a b) l in
  Json.Object
    [
      ("counters", Json.Object (sorted !counters));
      ("gauges", Json.Object (sorted !gauges));
      ("histograms", Json.Object (sorted !hists));
      ("timers", Json.Object (sorted !timers));
    ]

let snapshot_string () = Json.encode (snapshot ())
