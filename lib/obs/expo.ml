(* Prometheus text-exposition (0.0.4) rendering, parsing and validation.

   The renderer owns the format's lexical rules — name sanitization, label
   escaping, special float spellings — so instrumentation code can use the
   dotted Obs names and arbitrary label values freely. The parser and the
   [validate] structural checker mirror [Trace.Chrome.validate]: everything
   the renderer can emit must round-trip, and CI pipes live scrapes through
   [validate] so a rendering bug fails the build rather than the scrape. *)

module Json = Tacos_util.Json

type kind = Counter | Gauge | Histogram | Summary | Untyped

type sample = {
  suffix : string;
  labels : (string * string) list;
  value : float;
}

type family = { name : string; help : string; kind : kind; samples : sample list }

let sample ?(suffix = "") ?(labels = []) value = { suffix; labels; value }
let family ~name ~help ~kind samples = { name; help; kind; samples }

(* --- lexical rules -------------------------------------------------------- *)

let is_name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let sanitize_with ~ok_start ~ok s =
  if s = "" then "_"
  else begin
    let b = Bytes.of_string s in
    String.iteri (fun i c -> if not (ok c) then Bytes.set b i '_') s;
    let s = Bytes.to_string b in
    if ok_start s.[0] then s else "_" ^ s
  end

let sanitize_name s = sanitize_with ~ok_start:is_name_start ~ok:is_name_char s

(* Label names are stricter than metric names: no ':'. *)
let is_label_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_label_char c = is_label_start c || (c >= '0' && c <= '9')
let sanitize_label s = sanitize_with ~ok_start:is_label_start ~ok:is_label_char s

let valid_metric_name s = s <> "" && is_name_start s.[0] && String.for_all is_name_char s

let valid_label_name s =
  s <> ""
  && not (String.length s >= 2 && s.[0] = '_' && s.[1] = '_')
  && is_label_start s.[0]
  && String.for_all is_label_char s

let escape ~quotes s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '"' when quotes -> Buffer.add_string b "\\\""
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let fmt_value v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let kind_string = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"
  | Summary -> "summary"
  | Untyped -> "untyped"

let kind_of_string = function
  | "counter" -> Some Counter
  | "gauge" -> Some Gauge
  | "histogram" -> Some Histogram
  | "summary" -> Some Summary
  | "untyped" -> Some Untyped
  | _ -> None

(* --- rendering ------------------------------------------------------------ *)

let render families =
  let b = Buffer.create 4096 in
  List.iter
    (fun f ->
      let name = sanitize_name f.name in
      Printf.bprintf b "# HELP %s %s\n" name (escape ~quotes:false f.help);
      Printf.bprintf b "# TYPE %s %s\n" name (kind_string f.kind);
      List.iter
        (fun s ->
          Buffer.add_string b (name ^ s.suffix);
          (match s.labels with
          | [] -> ()
          | labels ->
            Buffer.add_char b '{';
            List.iteri
              (fun i (k, v) ->
                if i > 0 then Buffer.add_char b ',';
                Printf.bprintf b "%s=\"%s\"" (sanitize_label k) (escape ~quotes:true v))
              labels;
            Buffer.add_char b '}');
          Printf.bprintf b " %s\n" (fmt_value s.value))
        f.samples)
    families;
  Buffer.contents b

(* --- families from sketches and the Obs registry -------------------------- *)

let of_quantile ~name ~help ?(labels = []) q =
  let tail =
    [
      sample ~suffix:"_sum" ~labels (Quantile.sum q);
      sample ~suffix:"_count" ~labels (float_of_int (Quantile.count q));
    ]
  in
  let quants =
    List.map
      (fun (p, v) -> sample ~labels:(labels @ [ ("quantile", fmt_value p) ]) v)
      (Quantile.summary q)
  in
  family ~name ~help ~kind:Summary (quants @ tail)

let of_obs () =
  let sections =
    match Obs.snapshot () with Json.Object l -> l | _ -> []
  in
  let sec name =
    match List.assoc_opt name sections with Some (Json.Object l) -> l | _ -> []
  in
  let num j k = match Json.member k j with Some (Json.Number v) -> v | _ -> 0. in
  (* Obs histograms store per-bucket counts with an upper edge [le]; the
     exposition convention wants cumulative counts closed by an le="+Inf"
     bucket equal to the total count. *)
  let hist_samples j =
    let total = num j "count" in
    let buckets = match Json.member "buckets" j with Some (Json.Array l) -> l | _ -> [] in
    let cumulative = ref 0. in
    let bucket_samples =
      List.map
        (fun bj ->
          cumulative := !cumulative +. num bj "count";
          sample ~suffix:"_bucket" ~labels:[ ("le", fmt_value (num bj "le")) ] !cumulative)
        buckets
    in
    bucket_samples
    @ [
        sample ~suffix:"_bucket" ~labels:[ ("le", "+Inf") ] total;
        sample ~suffix:"_sum" (num j "sum");
        sample ~suffix:"_count" total;
      ]
  in
  let counters =
    List.map
      (fun (n, v) ->
        family
          ~name:(sanitize_name n ^ "_total")
          ~help:(Printf.sprintf "Obs counter %s." n)
          ~kind:Counter
          [ sample (match v with Json.Number x -> x | _ -> 0.) ])
      (sec "counters")
  in
  let gauges =
    List.map
      (fun (n, v) ->
        family ~name:(sanitize_name n)
          ~help:(Printf.sprintf "Obs gauge %s (running maximum)." n)
          ~kind:Gauge
          [ sample (match v with Json.Number x -> x | _ -> 0.) ])
      (sec "gauges")
  in
  let hists =
    List.map
      (fun (n, j) ->
        family ~name:(sanitize_name n)
          ~help:(Printf.sprintf "Obs histogram %s." n)
          ~kind:Histogram (hist_samples j))
      (sec "histograms")
  in
  let timers =
    List.map
      (fun (n, j) ->
        family
          ~name:(sanitize_name n ^ "_seconds")
          ~help:(Printf.sprintf "Obs timer %s (seconds)." n)
          ~kind:Histogram (hist_samples j))
      (sec "timers")
  in
  List.sort
    (fun a b -> compare a.name b.name)
    (counters @ gauges @ hists @ timers)

(* --- parsing -------------------------------------------------------------- *)

type exposed = { metric : string; label_set : (string * string) list; v : float }

type entry =
  | E_help of string
  | E_type of string * kind
  | E_sample of exposed

exception Bad of string

let unescape_label s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' then begin
       if !i + 1 >= n then raise (Bad "dangling backslash in label value");
       (match s.[!i + 1] with
       | '\\' -> Buffer.add_char b '\\'
       | '"' -> Buffer.add_char b '"'
       | 'n' -> Buffer.add_char b '\n'
       | c -> raise (Bad (Printf.sprintf "invalid escape \\%c in label value" c)));
       i := !i + 2
     end
     else begin
       Buffer.add_char b s.[!i];
       incr i
     end)
  done;
  Buffer.contents b

let parse_float_token s =
  match String.lowercase_ascii s with
  | "+inf" | "inf" | "infinity" | "+infinity" -> Some infinity
  | "-inf" | "-infinity" -> Some neg_infinity
  | "nan" | "+nan" | "-nan" -> Some nan
  | _ -> float_of_string_opt s

(* One sample line: name[{labels}] value [timestamp]. *)
let parse_sample line =
  let n = String.length line in
  let i = ref 0 in
  let start = !i in
  while !i < n && is_name_char line.[!i] do incr i done;
  let metric = String.sub line start (!i - start) in
  if not (valid_metric_name metric) then raise (Bad "invalid metric name");
  let labels = ref [] in
  if !i < n && line.[!i] = '{' then begin
    incr i;
    let finished = ref false in
    while not !finished do
      if !i >= n then raise (Bad "unterminated label set")
      else if line.[!i] = '}' then begin
        incr i;
        finished := true
      end
      else begin
        let s0 = !i in
        while !i < n && is_label_char line.[!i] do incr i done;
        let lname = String.sub line s0 (!i - s0) in
        if not (valid_label_name lname) then
          raise (Bad (Printf.sprintf "invalid label name %S" lname));
        if !i >= n || line.[!i] <> '=' then raise (Bad "expected '=' after label name");
        incr i;
        if !i >= n || line.[!i] <> '"' then raise (Bad "expected '\"' opening label value");
        incr i;
        let vbuf = Buffer.create 16 in
        let closed = ref false in
        while not !closed do
          if !i >= n then raise (Bad "unterminated label value")
          else if line.[!i] = '\\' then begin
            if !i + 1 >= n then raise (Bad "dangling backslash in label value");
            Buffer.add_char vbuf line.[!i];
            Buffer.add_char vbuf line.[!i + 1];
            i := !i + 2
          end
          else if line.[!i] = '"' then begin
            incr i;
            closed := true
          end
          else begin
            Buffer.add_char vbuf line.[!i];
            incr i
          end
        done;
        labels := (lname, unescape_label (Buffer.contents vbuf)) :: !labels;
        if !i < n && line.[!i] = ',' then incr i
        else if !i >= n || line.[!i] <> '}' then
          raise (Bad "expected ',' or '}' after label value")
      end
    done
  end;
  if !i >= n || line.[!i] <> ' ' then raise (Bad "expected space before value");
  while !i < n && line.[!i] = ' ' do incr i done;
  let s0 = !i in
  while !i < n && line.[!i] <> ' ' do incr i done;
  let vtok = String.sub line s0 (!i - s0) in
  let v =
    match parse_float_token vtok with
    | Some v -> v
    | None -> raise (Bad (Printf.sprintf "unparseable value %S" vtok))
  in
  while !i < n && line.[!i] = ' ' do incr i done;
  if !i < n then begin
    let s0 = !i in
    while !i < n && line.[!i] <> ' ' do incr i done;
    let ts = String.sub line s0 (!i - s0) in
    if Option.is_none (int_of_string_opt ts) then
      raise (Bad (Printf.sprintf "unparseable timestamp %S" ts));
    while !i < n && line.[!i] = ' ' do incr i done;
    if !i < n then raise (Bad "trailing garbage after timestamp")
  end;
  { metric; label_set = List.rev !labels; v }

let parse_comment line =
  (* "# HELP name text" / "# TYPE name type"; anything else after '#' is a
     plain comment. split_on_char + concat is lossless, so HELP text with
     runs of spaces survives. *)
  match String.split_on_char ' ' line with
  | "#" :: (("HELP" | "TYPE") as kw) :: name :: rest ->
    if not (valid_metric_name name) then
      raise (Bad (Printf.sprintf "invalid metric name %S in # %s" name kw));
    if kw = "HELP" then Some (E_help name)
    else begin
      match kind_of_string (String.concat " " rest) with
      | Some k -> Some (E_type (name, k))
      | None -> raise (Bad (Printf.sprintf "unknown metric type %S" (String.concat " " rest)))
    end
  | [ "#"; ("HELP" | "TYPE") ] -> raise (Bad "missing metric name after # HELP/TYPE")
  | _ -> None

let parse_entries text =
  let lines = String.split_on_char '\n' text in
  let entries = ref [] in
  let lineno = ref 0 in
  try
    List.iter
      (fun line ->
        incr lineno;
        if line = "" then ()
        else if line.[0] = '#' then begin
          match parse_comment line with
          | Some e -> entries := (!lineno, e) :: !entries
          | None -> ()
        end
        else entries := (!lineno, E_sample (parse_sample line)) :: !entries)
      lines;
    Ok (List.rev !entries)
  with Bad msg -> Error (Printf.sprintf "line %d: %s" !lineno msg)

let parse text =
  match parse_entries text with
  | Error _ as e -> e
  | Ok entries ->
    Ok (List.filter_map (function _, E_sample s -> Some s | _ -> None) entries)

(* --- validation ----------------------------------------------------------- *)

let strip_suffix ~suffix s =
  if String.length s > String.length suffix && String.ends_with ~suffix s then
    Some (String.sub s 0 (String.length s - String.length suffix))
  else None

let validate text =
  match parse_entries text with
  | Error e -> Error e
  | Ok entries ->
    (try
       let types : (string, kind) Hashtbl.t = Hashtbl.create 32 in
       let seen_sample_of_family : (string, unit) Hashtbl.t = Hashtbl.create 32 in
       let seen_series : (string * (string * string) list, int) Hashtbl.t =
         Hashtbl.create 64
       in
       (* family a sample belongs to, given the TYPE declarations *)
       let family_of metric =
         let typed_as base kinds =
           match Hashtbl.find_opt types base with
           | Some k when List.mem k kinds -> true
           | _ -> false
         in
         match strip_suffix ~suffix:"_bucket" metric with
         | Some base when typed_as base [ Histogram ] -> base
         | _ -> (
           match strip_suffix ~suffix:"_sum" metric with
           | Some base when typed_as base [ Histogram; Summary ] -> base
           | _ -> (
             match strip_suffix ~suffix:"_count" metric with
             | Some base when typed_as base [ Histogram; Summary ] -> base
             | _ -> metric))
       in
       let err line msg = raise (Bad (Printf.sprintf "line %d: %s" line msg)) in
       let samples = ref [] in
       List.iter
         (fun (line, e) ->
           match e with
           | E_help _ -> ()
           | E_type (name, k) ->
             if Hashtbl.mem types name then
               err line (Printf.sprintf "duplicate # TYPE for %s" name);
             if Hashtbl.mem seen_sample_of_family name then
               err line (Printf.sprintf "# TYPE %s after its samples" name);
             Hashtbl.replace types name k
           | E_sample s ->
             let fam = family_of s.metric in
             Hashtbl.replace seen_sample_of_family fam ();
             (* catches a TYPE that arrives after suffix-less samples *)
             Hashtbl.replace seen_sample_of_family s.metric ();
             let key = (s.metric, List.sort compare s.label_set) in
             (match Hashtbl.find_opt seen_series key with
             | Some first ->
               err line
                 (Printf.sprintf "duplicate sample %s (first at line %d)" s.metric first)
             | None -> Hashtbl.replace seen_series key line);
             List.iter
               (fun (k, _) ->
                 if not (valid_label_name k) then
                   err line (Printf.sprintf "invalid label name %S" k))
               s.label_set;
             samples := (line, fam, s) :: !samples)
         entries;
       let samples = List.rev !samples in
       (* per-kind checks *)
       List.iter
         (fun (line, fam, s) ->
           match Hashtbl.find_opt types fam with
           | Some Counter ->
             if Float.is_nan s.v || s.v < 0. then
               err line (Printf.sprintf "counter %s with negative/NaN value" s.metric)
           | Some Summary ->
             if s.metric = fam then begin
               match List.assoc_opt "quantile" s.label_set with
               | None -> err line (Printf.sprintf "summary sample %s lacks quantile label" fam)
               | Some q -> (
                 match parse_float_token q with
                 | Some v when v >= 0. && v <= 1. -> ()
                 | _ -> err line (Printf.sprintf "summary %s: quantile=%S not in [0,1]" fam q))
             end
           | Some Histogram ->
             if s.metric = fam then
               err line
                 (Printf.sprintf "histogram %s: expected %s_bucket/_sum/_count samples" fam fam)
             else if strip_suffix ~suffix:"_bucket" s.metric = Some fam then begin
               match List.assoc_opt "le" s.label_set with
               | None -> err line (Printf.sprintf "histogram bucket of %s lacks le label" fam)
               | Some le ->
                 if Option.is_none (parse_float_token le) then
                   err line (Printf.sprintf "histogram %s: le=%S not a float" fam le)
             end
           | _ -> ())
         samples;
       (* histogram family structure: group buckets by their non-le labels,
          require a +Inf bucket, cumulative counts, _count consistency *)
       Hashtbl.iter
         (fun fam k ->
           if k = Histogram then begin
             let buckets = Hashtbl.create 8 and counts = Hashtbl.create 8 in
             List.iter
               (fun (line, f, s) ->
                 if f = fam then
                   if strip_suffix ~suffix:"_bucket" s.metric = Some fam then begin
                     let rest =
                       List.sort compare (List.remove_assoc "le" s.label_set)
                     in
                     let le =
                       Option.get
                         (parse_float_token
                            (Option.value ~default:"" (List.assoc_opt "le" s.label_set)))
                     in
                     let prev = Option.value ~default:[] (Hashtbl.find_opt buckets rest) in
                     Hashtbl.replace buckets rest ((line, le, s.v) :: prev)
                   end
                   else if strip_suffix ~suffix:"_count" s.metric = Some fam then
                     Hashtbl.replace counts (List.sort compare s.label_set) (line, s.v))
               samples;
             Hashtbl.iter
               (fun rest series ->
                 let series = List.sort (fun (_, a, _) (_, b, _) -> compare a b) series in
                 (match List.rev series with
                 | (_, le, last_count) :: _ when le = infinity ->
                   (match Hashtbl.find_opt counts rest with
                   | Some (cline, c) when c <> last_count ->
                     err cline
                       (Printf.sprintf "histogram %s: _count %g <> le=\"+Inf\" bucket %g" fam
                          c last_count)
                   | _ -> ())
                 | (line, _, _) :: _ -> err line (Printf.sprintf "histogram %s lacks an le=\"+Inf\" bucket" fam)
                 | [] -> ());
                 ignore
                   (List.fold_left
                      (fun prev (line, _, c) ->
                        if c < prev then
                          err line (Printf.sprintf "histogram %s: bucket counts not cumulative" fam);
                        c)
                      neg_infinity series))
               buckets
           end)
         types;
       Ok ()
     with Bad msg -> Error msg)
