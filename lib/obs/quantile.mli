(** Streaming quantile sketch (DDSketch-style) with bounded memory and a
    relative-error guarantee.

    Observations are binned into logarithmically spaced buckets of ratio
    [gamma = (1 + accuracy) / (1 - accuracy)]; the estimate returned for any
    quantile is the representative value of the bucket holding the
    nearest-rank item, which is within [accuracy * v] of the true item [v]
    (for positive values, while no bucket collapse has occurred).

    Sketches over the same [accuracy] merge losslessly by bucket-wise count
    addition, which makes merging associative and commutative. Memory is
    bounded: past [max_buckets] distinct buckets the lowest buckets are
    collapsed together, degrading low quantiles first while keeping the
    upper tail (p90/p95/p99 — the ones the service reports) accurate.

    Not thread-safe: callers serialize access (the service records under its
    own lock). *)

type t

val create : ?accuracy:float -> ?max_buckets:int -> unit -> t
(** [accuracy] is the relative-error bound [alpha], default [0.01] (1%);
    must be in (0, 1). [max_buckets] caps distinct buckets, default 2048.
    Raises [Invalid_argument] outside those ranges. *)

val accuracy : t -> float
val count : t -> int
val sum : t -> float

val min_value : t -> float
(** Smallest observation; [nan] when empty. *)

val max_value : t -> float
(** Largest observation; [nan] when empty. *)

val add : t -> float -> unit
(** Record one observation. Non-positive (and sub-[1e-12]) values share a
    single exact zero bucket and are estimated as [0.]. *)

val quantile : t -> float -> float
(** [quantile t q] estimates the q-quantile for [q] in [[0, 1]] using the
    nearest-rank convention (rank [ceil (q * count)], 1-based; [q = 0] is
    the minimum). Returns [nan] when the sketch is empty; raises
    [Invalid_argument] when [q] is outside [[0, 1]]. The estimate is clamped
    into [[min_value, max_value]]. *)

val merge : t -> t -> t
(** A new sketch holding both inputs' observations; the inputs are not
    modified. Raises [Invalid_argument] when the accuracies differ. *)

val summary : t -> (float * float) list
(** The service's standard reporting grid:
    [[(0.5, p50); (0.9, p90); (0.95, p95); (0.99, p99)]]. Empty list when
    the sketch is empty. *)
