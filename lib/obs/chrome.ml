(* Chrome trace-event export of a recorded run, loadable in Perfetto or
   chrome://tracing.

   Layout: process 1 is the simulation on *simulated* time — one lane
   (thread) per physical link carrying duration slices for each service,
   async begin/end pairs for FCFS queue waits (async, because several
   messages wait on one lane concurrently), instant events for faults,
   reroutes and strandings, and counter tracks for fleet-wide queued
   messages and busy links. Process 2 is synthesis on *wall-clock* time —
   one lane per domain with the per-trial / per-round spans. Both use
   microsecond [ts], so one Perfetto window shows where the synthesizer
   spent its wall time next to where the schedule spends its simulated time.

   [validate] is the structural checker CI runs on emitted files: monotone
   timestamps, non-negative durations, every lane named by metadata, and
   balanced async pairs. *)

module Json = Tacos_util.Json

let us t = t *. 1e6

(* --- building ------------------------------------------------------------- *)

type pending = { mutable items : (string * Json.t) list list }

let default_link_label l = Printf.sprintf "link %d" l
let default_transfer_label t = Printf.sprintf "t%d" t

let export ?(link_label = default_link_label)
    ?(transfer_label = default_transfer_label) ?num_links (d : Trace.dump) =
  let num f = Json.Number f in
  let str s = Json.String s in
  let sim_pid = 1. and synth_pid = 2. in
  let lane_of_link l = float_of_int (l + 1) in
  let events_lane = 0. in
  let out = { items = [] } in
  let push fields = out.items <- fields :: out.items in
  let lanes : (float * float, string) Hashtbl.t = Hashtbl.create 16 in
  let name_lane pid tid name =
    if not (Hashtbl.mem lanes (pid, tid)) then Hashtbl.add lanes (pid, tid) name
  in
  name_lane sim_pid events_lane "events";
  let base ph name pid tid t =
    [
      ("ph", str ph); ("name", str name); ("pid", num pid); ("tid", num tid);
      ("ts", num (us t));
    ]
  in
  (* Fleet-wide counters, re-emitted after every change. *)
  let waiting : (int, int * float) Hashtbl.t = Hashtbl.create 32 in
  let in_service : (int, int * float) Hashtbl.t = Hashtbl.create 32 in
  let counters t =
    let queued = Hashtbl.length waiting and busy = Hashtbl.length in_service in
    push
      (base "C" "queued messages" sim_pid events_lane t
      @ [ ("args", Json.Object [ ("queued", num (float_of_int queued)) ]) ]);
    let util =
      match num_links with
      | Some m when m > 0 -> [ ("utilization", num (float_of_int busy /. float_of_int m)) ]
      | _ -> []
    in
    push
      (base "C" "busy links" sim_pid events_lane t
      @ [ ("args", Json.Object (("busy", num (float_of_int busy)) :: util)) ])
  in
  let queue_cat = "queue-wait" in
  let open_wait tid link t =
    name_lane sim_pid (lane_of_link link) (link_label link);
    push
      (base "b" ("queued " ^ transfer_label tid) sim_pid (lane_of_link link) t
      @ [ ("cat", str queue_cat); ("id", num (float_of_int tid)) ]);
    Hashtbl.replace waiting tid (link, t)
  in
  let close_wait tid t =
    match Hashtbl.find_opt waiting tid with
    | None -> ()
    | Some (link, _) ->
      push
        (base "e" ("queued " ^ transfer_label tid) sim_pid (lane_of_link link) t
        @ [ ("cat", str queue_cat); ("id", num (float_of_int tid)) ]);
      Hashtbl.remove waiting tid
  in
  let close_service ~aborted link t =
    match Hashtbl.find_opt in_service link with
    | None -> ()
    | Some (tid, t0) ->
      push
        (base "X" (transfer_label tid) sim_pid (lane_of_link link) t0
        @ [
            ("dur", num (us t -. us t0));
            ("cat", str (if aborted then "service-aborted" else "service"));
            ("args", Json.Object [ ("transfer", num (float_of_int tid)) ]);
          ]);
      Hashtbl.remove in_service link
  in
  let instant ?(lane = events_lane) name t args =
    push
      (base "i" name sim_pid lane t
      @ [ ("s", str "t") ]
      @ if args = [] then [] else [ ("args", Json.Object args) ])
  in
  let last_t = ref 0. in
  List.iter
    (fun (e : Trace.event) ->
      last_t := Float.max !last_t e.t;
      match e.ev with
      | Trace.Deps_ready _ | Trace.Completed _ -> ()
      | Trace.Enqueued { tid; link; _ } ->
        close_wait tid e.t (* displaced from a dead link's queue *);
        open_wait tid link e.t;
        counters e.t
      | Trace.Service_start { tid; link } ->
        close_wait tid e.t;
        name_lane sim_pid (lane_of_link link) (link_label link);
        Hashtbl.replace in_service link (tid, e.t);
        counters e.t
      | Trace.Service_end { link; _ } ->
        close_service ~aborted:false link e.t;
        counters e.t
      | Trace.Service_aborted { link; _ } ->
        close_service ~aborted:true link e.t;
        counters e.t
      | Trace.Arrived _ -> ()
      | Trace.Rerouted { tid; node } ->
        instant "rerouted" e.t
          [ ("transfer", num (float_of_int tid)); ("node", num (float_of_int node)) ]
      | Trace.Stranded { tid; node; dst } ->
        instant "stranded" e.t
          [
            ("transfer", num (float_of_int tid)); ("node", num (float_of_int node));
            ("dst", num (float_of_int dst));
          ]
      | Trace.Fault { link; kind } ->
        name_lane sim_pid (lane_of_link link) (link_label link);
        instant ~lane:(lane_of_link link) ("link " ^ kind) e.t
          [ ("link", num (float_of_int link)) ])
    d.events;
  (* Close anything still open (a stranded message can sit in a queue when
     the run ends) so async pairs always balance. *)
  Hashtbl.iter (fun tid (_, _) -> close_wait tid !last_t)
    (Hashtbl.copy waiting);
  Hashtbl.iter (fun link (_, _) -> close_service ~aborted:false link !last_t)
    (Hashtbl.copy in_service);
  (* Synthesis spans: process 2 on wall-clock time, one lane per domain. *)
  List.iter
    (fun (s : Trace.span) ->
      let lane = float_of_int s.domain in
      name_lane synth_pid lane (Printf.sprintf "domain %d" s.domain);
      let name =
        match s.trial with
        | Some i -> Printf.sprintf "%s %d" s.name i
        | None -> s.name
      in
      push
        (base "X" name synth_pid lane s.t0
        @ [ ("dur", num (us s.t1 -. us s.t0)); ("cat", str "synthesis") ]))
    d.spans;
  (* Metadata first, then everything else sorted by timestamp (stable, so
     same-instant begin/end pairs keep their emission order). *)
  let metadata =
    Json.Object
      [
        ("ph", str "M"); ("name", str "process_name"); ("pid", num sim_pid);
        ("tid", num 0.); ("ts", num 0.);
        ("args", Json.Object [ ("name", str "simulation (simulated time)") ]);
      ]
    :: Json.Object
         [
           ("ph", str "M"); ("name", str "process_name"); ("pid", num synth_pid);
           ("tid", num 0.); ("ts", num 0.);
           ("args", Json.Object [ ("name", str "synthesis (wall clock)") ]);
         ]
    :: (Hashtbl.fold (fun (pid, tid) name acc -> ((pid, tid), name) :: acc) lanes []
       |> List.sort compare
       |> List.map (fun ((pid, tid), name) ->
              Json.Object
                [
                  ("ph", str "M"); ("name", str "thread_name"); ("pid", num pid);
                  ("tid", num tid); ("ts", num 0.);
                  ("args", Json.Object [ ("name", str name) ]);
                ]))
  in
  let ts_of fields =
    match List.assoc_opt "ts" fields with Some (Json.Number t) -> t | _ -> 0.
  in
  let body =
    List.rev out.items
    |> List.stable_sort (fun a b -> Float.compare (ts_of a) (ts_of b))
    |> List.map (fun fields -> Json.Object fields)
  in
  Json.Object
    [
      ("traceEvents", Json.Array (metadata @ body));
      ("displayTimeUnit", Json.String "ns");
      ( "otherData",
        Json.Object [ ("dropped_records", Json.Number (float_of_int d.dropped)) ] );
    ]

(* --- validation ------------------------------------------------------------ *)

let validate doc =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let* events =
    match Json.member "traceEvents" doc with
    | Some (Json.Array l) -> Ok l
    | _ -> fail "missing traceEvents array"
  in
  let field name ev = Json.member name ev in
  let number name ev =
    match field name ev with Some (Json.Number v) -> Some v | _ -> None
  in
  let string_f name ev =
    match field name ev with Some (Json.String v) -> Some v | _ -> None
  in
  let named_lanes = Hashtbl.create 16 in
  let named_pids = Hashtbl.create 4 in
  List.iter
    (fun ev ->
      if string_f "ph" ev = Some "M" then
        match (string_f "name" ev, number "pid" ev, number "tid" ev) with
        | Some "thread_name", Some pid, Some tid ->
          Hashtbl.replace named_lanes (pid, tid) ()
        | Some "process_name", Some pid, _ -> Hashtbl.replace named_pids pid ()
        | _ -> ())
    events;
  let open_async : (float * string * float, int) Hashtbl.t = Hashtbl.create 32 in
  let rec check i last_ts = function
    | [] ->
      if Hashtbl.fold (fun _ n acc -> acc + n) open_async 0 > 0 then
        fail "unbalanced async begin/end pairs at end of trace"
      else Ok ()
    | ev :: rest -> (
      let* () =
        match string_f "ph" ev with
        | None -> fail "event %d: missing ph" i
        | Some "M" -> Ok ()
        | Some ph when not (List.mem ph [ "X"; "i"; "C"; "b"; "e" ]) ->
          fail "event %d: unknown phase %S" i ph
        | Some _ -> Ok ()
      in
      if string_f "ph" ev = Some "M" then check (i + 1) last_ts rest
      else
        let ph = Option.get (string_f "ph" ev) in
        match (string_f "name" ev, number "pid" ev, number "tid" ev, number "ts" ev)
        with
        | None, _, _, _ -> fail "event %d: missing name" i
        | _, None, _, _ | _, _, None, _ -> fail "event %d: missing pid/tid" i
        | _, _, _, None -> fail "event %d: missing ts" i
        | Some name, Some pid, Some tid, Some ts ->
          if ts < 0. then fail "event %d (%s): negative ts" i name
          else if ts < last_ts then
            fail "event %d (%s): ts %.3f not monotone (previous %.3f)" i name ts
              last_ts
          else if not (Hashtbl.mem named_pids pid) then
            fail "event %d (%s): pid %g has no process_name metadata" i name pid
          else if not (Hashtbl.mem named_lanes (pid, tid)) then
            fail "event %d (%s): lane (%g, %g) has no thread_name metadata" i name
              pid tid
          else
            let* () =
              match ph with
              | "X" -> (
                match number "dur" ev with
                | Some d when d >= 0. -> Ok ()
                | Some _ -> fail "event %d (%s): negative dur" i name
                | None -> fail "event %d (%s): X event without dur" i name)
              | "b" | "e" -> (
                match (string_f "cat" ev, number "id" ev) with
                | Some cat, Some id ->
                  let key = (pid, cat, id) in
                  let n = Option.value ~default:0 (Hashtbl.find_opt open_async key) in
                  if ph = "b" then begin
                    Hashtbl.replace open_async key (n + 1);
                    Ok ()
                  end
                  else if n <= 0 then
                    fail "event %d (%s): async end without matching begin" i name
                  else begin
                    Hashtbl.replace open_async key (n - 1);
                    Ok ()
                  end
                | _ -> fail "event %d (%s): async event without cat/id" i name)
              | _ -> Ok ()
            in
            check (i + 1) ts rest)
  in
  check 0 0. events
