(** Prometheus text-exposition (version 0.0.4) rendering for the {!Obs}
    registry and ad-hoc metric families, plus a parser-backed validator in
    the spirit of [Trace.Chrome.validate].

    Rendering takes care of the format's lexical rules so callers never
    have to: metric and label names are sanitized ([.] and any other
    character outside [[a-zA-Z0-9_:]] becomes [_], label names additionally
    lose [:]), label values and help text are escaped (backslash, double
    quote, newline),
    and non-finite values print as [+Inf] / [-Inf] / [NaN]. {!Obs}
    histograms/timers are converted from their internal per-bucket counts
    to the cumulative [_bucket{le=...}] / [_sum] / [_count] convention, and
    {!Quantile} sketches render as summaries with [{quantile="..."}]
    sample lines. *)

type kind = Counter | Gauge | Histogram | Summary | Untyped

type sample = {
  suffix : string;  (** appended to the family name: "", "_bucket", ... *)
  labels : (string * string) list;
  value : float;
}

type family = {
  name : string;  (** sanitized on render; callers may pass raw names *)
  help : string;
  kind : kind;
  samples : sample list;
}

val sample : ?suffix:string -> ?labels:(string * string) list -> float -> sample

val family : name:string -> help:string -> kind:kind -> sample list -> family

val of_quantile :
  name:string -> help:string -> ?labels:(string * string) list -> Quantile.t -> family
(** A summary family: one sample per grid point of {!Quantile.summary}
    (labelled [quantile="0.5" .. "0.99"]) plus [_sum] and [_count]. An
    empty sketch yields just [_sum]/[_count] at zero. *)

val of_obs : unit -> family list
(** Every metric currently registered in {!Obs} — counters as [_total]
    counters, gauges as gauges, histograms and timers as cumulative
    histogram families with a closing [le="+Inf"] bucket — sorted by name.
    Reflects live values whether or not {!Obs.enabled}. *)

val sanitize_name : string -> string
(** The exact name mangling [render] applies, exposed so callers can
    predict rendered names (e.g. ["serve.hits"] -> ["serve_hits"]). *)

val render : family list -> string
(** The exposition document: per family a [# HELP] line, a [# TYPE] line
    and one line per sample. Always ends with a newline when non-empty. *)

(** {1 Parsing and validation} *)

type exposed = {
  metric : string;  (** full sample name, including any suffix *)
  label_set : (string * string) list;
  v : float;
}

val parse : string -> (exposed list, string) result
(** Parse an exposition document into its flat sample list (unescaping
    label values). Errors carry a line number and reason. *)

val validate : string -> (unit, string) result
(** Strict structural validation on top of {!parse}: metric/label name
    lexicon, [# TYPE] declared at most once and before any of its samples,
    histogram families closed by an [le="+Inf"] bucket with cumulative
    (non-decreasing) bucket counts and [_count] consistency, summary
    [quantile] labels parsing as floats in [[0, 1]], counter samples
    non-negative, and no duplicate (name, label-set) sample. *)
