(** Full-fidelity execution tracing: typed per-transfer lifecycle events
    (simulated time) and wall-clock spans (synthesis trials and rounds)
    behind one off-by-default atomic flag — the same zero-cost-when-disabled
    discipline as {!Obs}, on a separate switch so metrics can be collected
    without paying for the event stream.

    The simulator ({!Tacos_sim.Engine}) emits one {!lifecycle} event per
    state change of a message in flight; the synthesizer wraps each trial
    and matching round in a {!with_span}. Consumers are the Chrome
    trace-event exporter ({!Chrome}) and the critical-path analyzer
    ({!Critpath}).

    {2 Event schema}

    This is the single authoritative description of the lifecycle event
    schema; {!to_json} serializes exactly these fields (plus ["event"], the
    constructor name in snake_case; ["t"], the timestamp; ["domain"], the
    emitting domain id; and ["trial"], the synthesis trial index when one
    was set via {!Obs.with_trial}).

    - [Deps_ready {tid; cause}] — transfer [tid]'s last dependency
      completed (simulated time [t]); [cause] is that dependency's transfer
      id, [None] for root transfers ready at [t = 0].
    - [Enqueued {tid; link; node; depth}] — the message joined physical
      link [link]'s FCFS queue at [node]; [depth] messages were already
      waiting.
    - [Service_start {tid; link}] / [Service_end {tid; link}] — the link
      began / finished serializing the message.
    - [Service_aborted {tid; link}] — a link death cut the service short;
      the message is re-planned (a fresh [Enqueued] follows).
    - [Arrived {tid; node; link}] — propagation landed the message at
      [node], having ridden [link].
    - [Completed {tid}] — the transfer reached its destination (or was a
      local [src = dst] step whose dependencies completed).
    - [Rerouted {tid; node}] — the planned next hop rode only dead links;
      the remaining route was re-planned from [node].
    - [Stranded {tid; node; dst}] — no surviving route from [node] to
      [dst]; the transfer is abandoned.
    - [Fault {link; kind}] — a timed fabric change landed; [kind] is
      ["dies"], ["degrades"] or ["recovers"]. *)

type lifecycle =
  | Deps_ready of { tid : int; cause : int option }
  | Enqueued of { tid : int; link : int; node : int; depth : int }
  | Service_start of { tid : int; link : int }
  | Service_end of { tid : int; link : int }
  | Service_aborted of { tid : int; link : int }
  | Arrived of { tid : int; node : int; link : int }
  | Completed of { tid : int }
  | Rerouted of { tid : int; node : int }
  | Stranded of { tid : int; node : int; dst : int }
  | Fault of { link : int; kind : string }

type event = {
  t : float;  (** simulated seconds *)
  domain : int;  (** emitting domain id *)
  trial : int option;  (** synthesis trial index, when inside one *)
  ev : lifecycle;
}

type span = {
  name : string;  (** e.g. ["trial"], ["round"] *)
  domain : int;
  trial : int option;
  t0 : float;  (** wall-clock seconds since the last {!reset} *)
  t1 : float;
}

type dump = { events : event list; spans : span list; dropped : int }

(** {1 Global switch} *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Drop all buffered records and restart the wall-clock span epoch. *)

(** {1 Recording} *)

val emit : t:float -> lifecycle -> unit
(** Append one lifecycle event at simulated time [t], stamped with the
    current domain id and trial context. A no-op when disabled; bounded —
    records past the cap count as dropped. *)

val with_span : string -> (unit -> 'a) -> 'a
(** Run the thunk, recording a wall-clock span (relative to the last
    {!reset}) when enabled; a plain call when disabled. The span is recorded
    even if the thunk raises. *)

(** {1 Reading} *)

val dump : unit -> dump
(** Everything buffered so far, in emission order. *)

val to_json : dump -> Tacos_util.Json.t
(** [{dropped; events; spans}] under the schema documented above — what
    [tacos profile --trace] embeds as ["lifecycle"]. *)
