(* Full-fidelity execution tracing: typed per-transfer lifecycle events and
   wall-clock spans behind an off-by-default atomic flag, mirroring the
   zero-cost-when-disabled discipline of [Obs].

   The simulator emits one event per state change of a message in flight
   (deps-ready, hop enqueue, service start/end, propagation arrival,
   abort/reroute on fault, stranding) with *simulated* timestamps; the
   synthesizer emits per-trial / per-round spans with *wall-clock*
   timestamps relative to the last [reset]. The Chrome exporter renders both
   on one timeline as separate process groups; the critical-path analyzer
   consumes the lifecycle events alone.

   Events are typed (not JSON) so the analyzer can pattern-match without
   parsing; [to_json] serializes the documented schema for `tacos profile
   --trace`. Every record is stamped with the emitting domain id and, when
   set via [Obs.with_trial], the synthesis trial index — multi-domain trials
   interleave in the shared buffer and stay attributable. *)

module Json = Tacos_util.Json
module Clock = Tacos_util.Clock

type lifecycle =
  | Deps_ready of { tid : int; cause : int option }
  | Enqueued of { tid : int; link : int; node : int; depth : int }
  | Service_start of { tid : int; link : int }
  | Service_end of { tid : int; link : int }
  | Service_aborted of { tid : int; link : int }
  | Arrived of { tid : int; node : int; link : int }
  | Completed of { tid : int }
  | Rerouted of { tid : int; node : int }
  | Stranded of { tid : int; node : int; dst : int }
  | Fault of { link : int; kind : string }

type event = { t : float; domain : int; trial : int option; ev : lifecycle }
type span = { name : string; domain : int; trial : int option; t0 : float; t1 : float }
type dump = { events : event list; spans : span list; dropped : int }

let enabled_flag = Atomic.make false
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false
let enabled () = Atomic.get enabled_flag

(* Bounded buffers so a long run cannot exhaust memory: past the cap,
   records are counted as dropped instead of stored. *)
let event_cap = 200_000
let span_cap = 50_000
let mutex = Mutex.create ()
let events_rev : event list ref = ref []
let event_len = ref 0
let spans_rev : span list ref = ref []
let span_len = ref 0
let dropped = ref 0
let epoch = ref 0.

let with_lock f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let reset () =
  with_lock (fun () ->
      events_rev := [];
      event_len := 0;
      spans_rev := [];
      span_len := 0;
      dropped := 0;
      epoch := Clock.now ())

let emit ~t ev =
  if enabled () then begin
    let e =
      { t; domain = (Domain.self () :> int); trial = Obs.current_trial (); ev }
    in
    with_lock (fun () ->
        if !event_len >= event_cap then incr dropped
        else begin
          events_rev := e :: !events_rev;
          incr event_len
        end)
  end

let record_span name t0 t1 =
  let s =
    { name; domain = (Domain.self () :> int); trial = Obs.current_trial (); t0; t1 }
  in
  with_lock (fun () ->
      if !span_len >= span_cap then incr dropped
      else begin
        spans_rev := s :: !spans_rev;
        incr span_len
      end)

let with_span name f =
  if not (enabled ()) then f ()
  else begin
    let t0 = Clock.now () -. !epoch in
    Fun.protect
      ~finally:(fun () -> record_span name t0 (Clock.now () -. !epoch))
      f
  end

let dump () =
  with_lock (fun () ->
      { events = List.rev !events_rev; spans = List.rev !spans_rev; dropped = !dropped })

(* --- JSON schema ---------------------------------------------------------- *)

let event_name = function
  | Deps_ready _ -> "deps_ready"
  | Enqueued _ -> "enqueued"
  | Service_start _ -> "service_start"
  | Service_end _ -> "service_end"
  | Service_aborted _ -> "service_aborted"
  | Arrived _ -> "arrived"
  | Completed _ -> "completed"
  | Rerouted _ -> "rerouted"
  | Stranded _ -> "stranded"
  | Fault _ -> "fault"

let lifecycle_fields =
  let num i = Json.Number (float_of_int i) in
  function
  | Deps_ready { tid; cause } ->
    [ ("tid", num tid) ]
    @ (match cause with Some c -> [ ("cause", num c) ] | None -> [])
  | Enqueued { tid; link; node; depth } ->
    [ ("tid", num tid); ("link", num link); ("node", num node); ("depth", num depth) ]
  | Service_start { tid; link } | Service_end { tid; link }
  | Service_aborted { tid; link } ->
    [ ("tid", num tid); ("link", num link) ]
  | Arrived { tid; node; link } ->
    [ ("tid", num tid); ("node", num node); ("link", num link) ]
  | Completed { tid } -> [ ("tid", num tid) ]
  | Rerouted { tid; node } -> [ ("tid", num tid); ("node", num node) ]
  | Stranded { tid; node; dst } ->
    [ ("tid", num tid); ("node", num node); ("dst", num dst) ]
  | Fault { link; kind } -> [ ("link", num link); ("kind", Json.String kind) ]

let event_to_json e =
  Json.Object
    ([
       ("event", Json.String (event_name e.ev));
       ("t", Json.Number e.t);
       ("domain", Json.Number (float_of_int e.domain));
     ]
    @ (match e.trial with
      | Some i -> [ ("trial", Json.Number (float_of_int i)) ]
      | None -> [])
    @ lifecycle_fields e.ev)

let span_to_json (s : span) =
  Json.Object
    ([
       ("span", Json.String s.name);
       ("t0", Json.Number s.t0);
       ("t1", Json.Number s.t1);
       ("domain", Json.Number (float_of_int s.domain));
     ]
    @
    match s.trial with
    | Some i -> [ ("trial", Json.Number (float_of_int i)) ]
    | None -> [])

let to_json d =
  Json.Object
    [
      ("dropped", Json.Number (float_of_int d.dropped));
      ("events", Json.Array (List.map event_to_json d.events));
      ("spans", Json.Array (List.map span_to_json d.spans));
    ]
