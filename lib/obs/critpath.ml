(* Critical-path extraction and makespan attribution over a recorded
   lifecycle trace.

   The walk starts at the last-finishing transfer's [Completed] event and
   follows each step's binding constraint backwards in time: an arrival is
   bound by the service that launched it (propagation), a service end by its
   start (serialization), a service start by the enqueue it waited behind
   (FCFS queue wait), and a launch by the dependency whose completion made
   the transfer ready — at which point the walk jumps into that transfer's
   own lifecycle. Because the engine launches transfers eagerly the jump is
   zero-width; any residual gap (there are none in the current engine, but
   the partition must be total) is attributed to [Dependency].

   The segments partition [0, makespan] exactly — each walk step moves the
   anchor strictly backwards through contiguous events — so the per-category
   sums reconstruct the makespan up to float addition error. That invariant
   is what `tacos trace` prints and the test suite checks against
   [Schedule.eps_for]. *)

type category = Dependency | Queue | Serialization | Propagation

let category_name = function
  | Dependency -> "dependency"
  | Queue -> "queue"
  | Serialization -> "serialization"
  | Propagation -> "propagation"

let all_categories = [ Dependency; Queue; Serialization; Propagation ]

type segment = {
  tid : int;
  link : int option;  (** the link involved; [None] for dependency gaps *)
  category : category;
  t0 : float;
  t1 : float;
}

type t = {
  makespan : float;
  critical_transfer : int;
  segments : segment list;
  totals : (category * float) list;
  per_link : (int * (category * float) list) list;
  per_phase : (string * (category * float) list) list;
}

(* Events grouped per transfer id, each group in emission order (the engine
   is single-threaded, so emission order is chronological). *)
let group_by_tid events =
  let tbl : (int, Trace.event list ref) Hashtbl.t = Hashtbl.create 64 in
  let tid_of (e : Trace.event) =
    match e.ev with
    | Trace.Deps_ready { tid; _ }
    | Trace.Enqueued { tid; _ }
    | Trace.Service_start { tid; _ }
    | Trace.Service_end { tid; _ }
    | Trace.Service_aborted { tid; _ }
    | Trace.Arrived { tid; _ }
    | Trace.Completed { tid }
    | Trace.Rerouted { tid; _ }
    | Trace.Stranded { tid; _ } ->
      Some tid
    | Trace.Fault _ -> None
  in
  List.iter
    (fun e ->
      match tid_of e with
      | None -> ()
      | Some tid -> (
        match Hashtbl.find_opt tbl tid with
        | Some r -> r := e :: !r
        | None -> Hashtbl.add tbl tid (ref [ e ])))
    events;
  let out = Hashtbl.create (Hashtbl.length tbl) in
  Hashtbl.iter (fun tid r -> Hashtbl.add out tid (Array.of_list (List.rev !r))) tbl;
  out

(* Category of the interval ending at [cur], given the event [prev] that
   immediately precedes it in the transfer's own lifecycle. Zero-width
   intervals get a category too (it is never accumulated). *)
let pair_category (prev : Trace.lifecycle) (cur : Trace.lifecycle) =
  match (prev, cur) with
  | _, Trace.Arrived { link; _ } -> (Propagation, Some link)
  | _, Trace.Service_end { link; _ } | _, Trace.Service_aborted { link; _ } ->
    (Serialization, Some link)
  | _, Trace.Service_start { link; _ } -> (Queue, Some link)
  (* A message displaced from a dead link's queue re-enqueues at the fault
     time: the gap since its original enqueue was spent queued there. *)
  | Trace.Enqueued { link; _ }, Trace.Enqueued _ -> (Queue, Some link)
  | _, _ -> (Dependency, None)

let analyze ?phase_of (events : Trace.event list) =
  let by_tid = group_by_tid events in
  (* The last-finishing transfer: max Completed timestamp, latest emission
     winning ties (matches the engine's deterministic event order). *)
  let last = ref None in
  List.iter
    (fun (e : Trace.event) ->
      match e.ev with
      | Trace.Completed { tid } -> (
        match !last with
        | Some (_, t) when t > e.t -> ()
        | _ -> last := Some (tid, e.t))
      | _ -> ())
    events;
  match !last with
  | None -> None
  | Some (last_tid, makespan) ->
    let segments = ref [] in
    let push tid link category t0 t1 =
      if t1 -. t0 > 0. then segments := { tid; link; category; t0; t1 } :: !segments
    in
    (* Walk one transfer's lifecycle backwards, then jump to the dependency
       that made it ready. Budgeted by the total number of events, which the
       acyclic dependency graph cannot exceed. *)
    let budget = ref (List.length events + 1) in
    let rec walk tid =
      decr budget;
      if !budget < 0 then ()
      else
        match Hashtbl.find_opt by_tid tid with
        | None -> ()
        | Some evs ->
          let n = Array.length evs in
          for j = n - 1 downto 1 do
            let cur = evs.(j) and prev = evs.(j - 1) in
            let category, link = pair_category prev.ev cur.ev in
            push tid link category prev.t cur.t
          done;
          if n > 0 then begin
            match evs.(0).ev with
            | Trace.Deps_ready { cause = Some d; _ } -> walk d
            | Trace.Deps_ready { cause = None; _ } ->
              (* A root transfer: ready at t = 0 by construction; cover any
                 residue defensively so the partition stays total. *)
              push tid None Dependency 0. evs.(0).t
            | _ -> push tid None Dependency 0. evs.(0).t
          end
    in
    walk last_tid;
    let segments = !segments (* built back-to-front: already ascending *) in
    let add tbl key v =
      let prev = Option.value ~default:0. (Hashtbl.find_opt tbl key) in
      Hashtbl.replace tbl key (prev +. v)
    in
    let totals_tbl = Hashtbl.create 4 in
    let link_tbl = Hashtbl.create 16 in
    let phase_tbl = Hashtbl.create 4 in
    List.iter
      (fun s ->
        let w = s.t1 -. s.t0 in
        add totals_tbl s.category w;
        (match s.link with
        | Some l -> add link_tbl (l, s.category) w
        | None -> ());
        match phase_of with
        | Some f -> add phase_tbl (f s.tid, s.category) w
        | None -> ())
      segments;
    let totals =
      List.map
        (fun c -> (c, Option.value ~default:0. (Hashtbl.find_opt totals_tbl c)))
        all_categories
    in
    let collect_grouped tbl =
      (* ('k * category) totals -> per-'k category breakdowns, biggest
         total first. *)
      let keys = Hashtbl.create 8 in
      Hashtbl.iter (fun (k, _) _ -> Hashtbl.replace keys k ()) tbl;
      Hashtbl.fold
        (fun k () acc ->
          let cats =
            List.filter_map
              (fun c ->
                match Hashtbl.find_opt tbl (k, c) with
                | Some v when v > 0. -> Some (c, v)
                | _ -> None)
              all_categories
          in
          (k, cats) :: acc)
        keys []
      |> List.sort (fun (_, a) (_, b) ->
             let sum l = List.fold_left (fun acc (_, v) -> acc +. v) 0. l in
             compare (sum b) (sum a))
    in
    Some
      {
        makespan;
        critical_transfer = last_tid;
        segments;
        totals;
        per_link = collect_grouped link_tbl;
        per_phase = collect_grouped phase_tbl;
      }

let attributed_total t =
  List.fold_left (fun acc (_, v) -> acc +. v) 0. t.totals
