(** Critical-path extraction and makespan attribution over a recorded
    {!Trace} lifecycle stream.

    Walks back from the last-finishing transfer's [Completed] event through
    each step's binding constraint — the dependency whose completion made
    the transfer ready, the enqueue a service start waited behind (FCFS),
    the service behind an arrival — and partitions [0, makespan] into
    contiguous segments labelled by *where the time went*:

    - [Queue]: waiting in a link's FCFS queue behind other traffic (the
      congestion the paper's §III argument is about);
    - [Serialization]: the link serializing the message (β·size, the useful
      work);
    - [Propagation]: the α flight time after serialization;
    - [Dependency]: residual gaps while waiting on dependencies — zero in
      the current eager engine, kept so the partition is provably total.

    The per-category sums reconstruct the makespan up to float addition
    error; `tacos trace` prints the attribution and the test suite checks
    the sum against [Schedule.eps_for]. *)

type category = Dependency | Queue | Serialization | Propagation

val category_name : category -> string
val all_categories : category list

type segment = {
  tid : int;  (** transfer whose lifecycle this interval belongs to *)
  link : int option;  (** the link involved; [None] for dependency gaps *)
  category : category;
  t0 : float;
  t1 : float;
}

type t = {
  makespan : float;  (** the last [Completed] timestamp *)
  critical_transfer : int;  (** the transfer that finishes last *)
  segments : segment list;  (** the critical path, ascending in time *)
  totals : (category * float) list;  (** seconds per category, all four *)
  per_link : (int * (category * float) list) list;
      (** links on the critical path, largest time share first *)
  per_phase : (string * (category * float) list) list;
      (** per collective phase, when [phase_of] was given *)
}

val analyze : ?phase_of:(int -> string) -> Trace.event list -> t option
(** Attribute the makespan of the run recorded in [events]. [phase_of] maps
    a transfer id to its collective phase name (e.g. derived from the
    program's transfer tags). [None] when the trace contains no completed
    transfer. *)

val attributed_total : t -> float
(** Sum of all category totals — equal to [makespan] within
    [Schedule.eps_for makespan]. *)
