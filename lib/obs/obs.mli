(** Lightweight observability substrate: counters, running-max gauges,
    log-scale histograms, span timers and a structured trace sink behind one
    global registry that is OFF by default.

    When disabled (the default) every record operation is a single atomic
    flag load and a branch, so the synthesizer and simulator hot paths stay
    permanently instrumented at effectively zero cost. All metric state is
    domain-safe (synthesis trials run on multiple domains). Snapshots
    serialize to {!Tacos_util.Json} for the CLI [profile] subcommand and the
    [BENCH_*.json] benchmark rows. *)

(** {1 Global switch} *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Zero every registered metric and drop buffered trace events. Metric
    identities survive: handles interned before [reset] remain valid. *)

(** {1 Recording context}

    Trace events (here and in {!Trace}) are stamped with the emitting domain
    id; synthesis additionally tags each record with the trial index it is
    working on, so concurrent multi-domain trials stay attributable in the
    shared buffers. *)

val with_trial : int -> (unit -> 'a) -> 'a
(** Run the thunk with the current domain's trial context set to [i];
    restored (to the previous value) afterwards, even on raise. *)

val current_trial : unit -> int option
(** The trial context of the calling domain, if inside {!with_trial}. *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Intern by name: the same name always yields the same counter. Raises
    [Invalid_argument] if the name is registered as another metric kind. *)

val incr : counter -> unit
val add : counter -> int -> unit

val value : counter -> int
(** Current value (readable even while disabled). *)

(** {1 Gauges (running maximum)} *)

type gauge

val gauge : string -> gauge
val observe_max : gauge -> float -> unit

val gauge_value : gauge -> float
(** Largest observation since the last {!reset}; 0 when none. *)

(** {1 Histograms} *)

type histogram

val histogram : string -> histogram

val observe : histogram -> float -> unit
(** Record one observation: exact count/sum/min/max plus a power-of-two
    magnitude bucket. *)

(** {1 Span timers} *)

type timer

val timer : string -> timer

val time : timer -> (unit -> 'a) -> 'a
(** Run the thunk, recording its wall-clock duration as a histogram
    observation (in seconds) when enabled; a plain call when disabled. *)

(** {1 Trace sink} *)

val trace : string -> (string * Tacos_util.Json.t) list -> unit
(** Append a structured trace event (name, seconds since the last [reset],
    caller-supplied fields). Buffered in memory, bounded: events past the
    cap are counted as dropped. *)

val trace_events : unit -> Tacos_util.Json.t
(** [{dropped; events}] — the buffered trace as JSON. *)

(** {1 Snapshot} *)

val snapshot : unit -> Tacos_util.Json.t
(** All registered metrics as one JSON object with [counters], [gauges],
    [histograms] and [timers] sections, each sorted by metric name. *)

val snapshot_string : unit -> string
