(* Namespaces of the substrate libraries. *)
open Tacos_collective

(** Per-chunk reduction state, replayed from the kept prefix of a combining
    collective's schedule.

    Mid-flight repair of a Reduce-Scatter / Reduce / All-Reduce fault needs
    to know more than chunk positions: each surviving copy of a chunk is a
    {e partial sum} that has absorbed some subset of the ranks'
    contributions. This tracker replays the sends that finished before the
    fault and answers exactly that — which contributions each copy holds —
    in the form {!Tacos.Synthesizer.synthesize_goal_plan} accepts as goal
    [partials].

    Replay semantics mirror {!Schedule.validate_reduction}: a combining send
    spends the source's accumulated set at its start and merges it into the
    destination at its finish; a pull send replicates a fully-reduced value.
    Sends still in flight at the fault are ignored — repair cancels them, so
    their contributions remain at the source. *)

type t

val create :
  num_npus:int -> num_chunks:int -> contributors:(int * int) list -> t
(** A fresh tracker: each [(npu, chunk)] contributor starts holding exactly
    its own contribution. For non-combining chunks list the single initial
    holder as the chunk's one contributor — a held copy is then "fully
    reduced" and the tracker degenerates to position tracking, which lets
    one replay cover every supported pattern. *)

val replay : t -> combining:Schedule.t -> pull:Schedule.t -> at:float -> unit
(** Apply every send of the two phase schedules that finished by [at]
    (within {!Schedule.eps_for}), in chronological order with finishes
    applied before starts at equal times. Both schedules are absolute-time,
    healthy-link-id phases of one collective (for All-Reduce: the
    Reduce-Scatter phase as [combining], the shifted All-Gather as [pull]). *)

val is_full : t -> npu:int -> chunk:int -> bool
(** Has the copy at [npu] absorbed every contribution of [chunk]? *)

val absorbed : t -> npu:int -> chunk:int -> int list
(** The contributing ranks absorbed by the copy at [npu], sorted. Empty when
    [npu] holds nothing of [chunk] (or spent it into a kept send). *)

val positions : t -> (int * int) list
(** All fully-reduced copies as [(npu, chunk)], in index order — the
    [precondition] of a repair goal. *)

val partials : t -> (int * int * int list) list
(** All strictly-partial non-empty accumulators as
    [(npu, chunk, absorbed)], in index order — the [partials] of a repair
    goal. *)
