(* Namespaces of the substrate libraries. *)
open Tacos_topology

(** Fault models for degraded fabrics (§III / §VII resilience story).

    A fault names a failure against the *healthy* topology: link ids and NPU
    ids refer to it. Applying a fault set produces a degraded copy of the
    topology ({!Topology.map_links} underneath, so hierarchy and cut hints
    survive while ring embeddings are invalidated). Injection is
    deterministic — every random sampler threads a {!Tacos_util.Rng.t}, so a
    fault sweep reproduces exactly from a single seed. *)

type t =
  | Kill_link of int  (** the link id stops carrying traffic *)
  | Degrade_link of { link : int; factor : float }
      (** the link survives at reduced capability: bandwidth divided by
          [factor], latency multiplied by [factor] ([factor >= 1]) *)
  | Kill_npu of int
      (** the NPU's ports all fail: every incident link (either direction)
          is removed; the NPU itself stays in the numbering, isolated *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val to_json : t -> Tacos_util.Json.t

(** {1 Applying faults} *)

val validate : Topology.t -> t list -> (unit, string) result
(** Check every fault references a real link/NPU and degradation factors are
    [>= 1]. *)

val killed_links : Topology.t -> t list -> int list
(** The healthy-topology link ids removed by the fault set ([Kill_link]s
    plus every link incident to a [Kill_npu]), sorted, deduplicated. *)

val degraded_links : Topology.t -> t list -> (int * float) list
(** The surviving links whose parameters change, as [(healthy id, combined
    factor)]; multiple degradations of one link compound multiplicatively.
    Links that are also killed are excluded. *)

val apply : Topology.t -> t list -> Topology.t
(** The degraded topology. Raises [Invalid_argument] when {!validate}
    fails. Link ids are renumbered densely (see {!Topology.map_links});
    use {!killed_links}/{!degraded_links} with healthy ids for analyses. *)

val timeline : at:float -> Topology.t -> t list -> Tacos_sim.Engine.fault_event list
(** Lower a fault set to the engine's timed fault events, all landing at
    [at]: [Kill_link] → [Link_dies], [Kill_npu] → one [Link_dies] per
    incident link, [Degrade_link] → [Link_degrades] with the compound factor.
    A link both killed and degraded just dies. Link ids are healthy-topology
    ids, matching what [Engine.run ~faults] on the *healthy* topology
    expects. Raises [Invalid_argument] when {!validate} fails or [at < 0]. *)

val validate_events : Topology.t -> (float * t list) list -> (unit, string) result
(** Check a multi-epoch fault timeline: every time is non-negative, times are
    strictly increasing, each epoch's faults pass {!validate}, and no epoch
    kills or degrades a link an earlier epoch already removed ([Kill_npu]s
    count through their incident links). *)

val timeline_events :
  Topology.t -> (float * t list) list -> Tacos_sim.Engine.fault_event list
(** Lower a multi-epoch timeline [(at, faults); ...] to engine fault events —
    {!timeline} per epoch, concatenated in epoch order. Raises
    [Invalid_argument] when {!validate_events} fails. *)

val link_id_map : Topology.t -> t list -> int array
(** The degraded-to-healthy link-id map of {!apply}: element [k] is the
    healthy id of the degraded topology's link [k] (surviving links are
    renumbered densely in healthy-id order). Lets schedules synthesized on
    the degraded copy be lifted back into the healthy id space. *)

(** {1 Connectivity pre-check} *)

type connectivity =
  | Connected  (** still strongly connected: synthesis will terminate *)
  | Disconnected of { survivors : int list; isolated : int list }
      (** [survivors] is the largest surviving strongly-connected component
          (the fabric a shrunk collective could still run over); [isolated]
          is everyone else, sorted *)

val connectivity : Topology.t -> connectivity
(** Classify an (already degraded) topology. *)

val pp_connectivity : Format.formatter -> connectivity -> unit

val disconnecting_fault : Topology.t -> t list -> t option
(** Apply the faults one at a time, in order, and name the first one that
    breaks strong connectivity — [None] if the full set leaves the fabric
    connected (or the healthy topology was already disconnected). *)

(** {1 Deterministic samplers} *)

val random_link_kills : Tacos_util.Rng.t -> Topology.t -> int -> t list
(** [k] distinct links sampled uniformly. Raises [Invalid_argument] if the
    topology has fewer than [k] links. *)

val random_npu_kills : Tacos_util.Rng.t -> Topology.t -> int -> t list
(** [k] distinct NPUs sampled uniformly. Raises [Invalid_argument] if there
    are fewer than [k] NPUs. *)

val random_degradations :
  Tacos_util.Rng.t -> factor:float -> Topology.t -> int -> t list
(** [k] distinct links degraded by [factor]. *)

val random_connected_link_kills :
  ?attempts:int -> Tacos_util.Rng.t -> Topology.t -> int -> t list option
(** Sample up to [attempts] (default 64) candidate [k]-link kill sets and
    return the first that leaves the fabric strongly connected — the
    survivable-fault sweeps of the resilience experiment. [None] when every
    attempt disconnects (e.g. [k] at least the min degree on a sparse
    fabric). *)
