(* Namespaces of the substrate libraries. *)
open Tacos_collective
module Topology = Tacos_topology.Topology
module Ten = Tacos_ten.Ten
module Synth = Tacos.Synthesizer
module Algo = Tacos_baselines.Algo
module Engine = Tacos_sim.Engine
module Program = Tacos_sim.Program
module Rng = Tacos_util.Rng
module Json = Tacos_util.Json
module Deadline = Tacos_util.Deadline
module Obs = Tacos_obs.Obs

(* Fallback-ladder telemetry: a fleet running degraded syntheses watches
   these to see how often it is living on fallbacks ("tacos profile" /
   BENCH rows surface them). *)
let obs_ok = Obs.counter "resilience.synth_ok"
let obs_retries = Obs.counter "resilience.synth_retries"
let obs_baseline = Obs.counter "resilience.fallback_baseline"
let obs_deadline = Obs.counter "resilience.deadline_exceeded"
let obs_failures = Obs.counter "resilience.failures"
let obs_disconnected = Obs.counter "resilience.disconnected_inputs"

type plan =
  | Synthesized of Synth.result
  | Baseline of { algo : Algo.t; report : Engine.report }

type outcome = {
  plan : plan;
  simulated_time : float;
  retries : int;
  rungs : string list;
  wall_seconds : float;
}

type failure = {
  stage : string;
  message : string;
  connectivity : Fault.connectivity;
  disconnecting : Fault.t option;
  deadline_slack_ms : float option;
}

let pp_failure ppf f =
  Format.fprintf ppf "%s: %s (fabric %a%t%t)" f.stage f.message Fault.pp_connectivity
    f.connectivity
    (fun ppf ->
      match f.disconnecting with
      | Some fault -> Format.fprintf ppf "; disconnected by %a" Fault.pp fault
      | None -> ())
    (fun ppf ->
      match f.deadline_slack_ms with
      | Some slack -> Format.fprintf ppf "; deadline slack %.1fms" slack
      | None -> ())

let failure_to_json f =
  Json.Object
    ([
       ("stage", Json.String f.stage);
       ("message", Json.String f.message);
       ( "connectivity",
         Json.String (Format.asprintf "%a" Fault.pp_connectivity f.connectivity) );
     ]
    @ (match f.disconnecting with
      | Some fault -> [ ("disconnecting_fault", Fault.to_json fault) ]
      | None -> [])
    @
    match f.deadline_slack_ms with
    | Some slack -> [ ("deadline_slack_ms", Json.Number slack) ]
    | None -> [])

let simulated_time topo (result : Synth.result) =
  let chunk_size = Spec.chunk_size result.Synth.spec in
  let program = Program.of_schedule ~chunk_size result.Synth.schedule in
  (Engine.run topo program).Engine.finish_time

let synthesize ?(seed = 42) ?(trials = 1) ?(domains = 1) ?(budget_ms = infinity)
    ?deadline ?(max_retries = 3) ?(baselines = Algo.all) ?(faults = []) topo spec =
  if domains <= 0 then invalid_arg "Resilience.synthesize: domains must be positive";
  let t0 = Unix.gettimeofday () in
  (* The effective deadline layers the caller's absolute deadline over the
     configured budget: whichever comes first wins. It is threaded into
     every synthesis attempt (where the round loop polls it), so one
     oversized trial can no longer overshoot the budget unboundedly — the
     old code only looked at the clock *between* rungs. *)
  let eff_deadline =
    Deadline.min_opt deadline
      (if budget_ms = infinity then None else Some (Deadline.after_ms budget_ms))
  in
  let out_of_time () =
    match eff_deadline with Some d -> Deadline.expired d | None -> false
  in
  let fail stage message ~connectivity ~disconnecting =
    Obs.incr obs_failures;
    Error
      {
        stage;
        message;
        connectivity;
        disconnecting;
        deadline_slack_ms = Option.map Deadline.slack_ms eff_deadline;
      }
  in
  match Fault.validate topo faults with
  | Error msg ->
    fail "faults" msg ~connectivity:(Fault.connectivity topo) ~disconnecting:None
  | Ok () ->
    let degraded = if faults = [] then topo else Fault.apply topo faults in
    let connectivity = Fault.connectivity degraded in
    let disconnecting () =
      if faults = [] then None else Fault.disconnecting_fault topo faults
    in
    (match connectivity with
    | Fault.Disconnected _ -> Obs.incr obs_disconnected
    | Fault.Connected -> ());
    (* One synthesis attempt; [Stuck] is the only exception the ladder
       absorbs at this rung ([Unsupported] is about the pattern, not the
       fabric — reseeding cannot help, so it drops straight to baselines). *)
    let attempt s =
      if spec.Spec.pattern = Pattern.All_to_all then
        Tacos.Alltoall.synthesize ~seed:s degraded spec
      else Synth.synthesize ~seed:s ~trials ~domains ?deadline:eff_deadline degraded spec
    in
    let finish ~retries ~rungs plan =
      let simulated_time =
        match plan with
        | Synthesized result -> simulated_time degraded result
        | Baseline { report; _ } -> report.Engine.finish_time
      in
      Ok
        {
          plan;
          simulated_time;
          retries;
          rungs = List.rev rungs;
          wall_seconds = Unix.gettimeofday () -. t0;
        }
    in
    let baseline_rung ~retries ~rungs reason =
      Obs.incr obs_baseline;
      match Algo.best_feasible ~candidates:baselines degraded spec with
      | Some (algo, report) ->
        finish ~retries
          ~rungs:(Printf.sprintf "baseline %s" (Algo.name algo) :: rungs)
          (Baseline { algo; report })
      | None ->
        fail "baseline"
          (reason ^ "; no baseline algorithm is feasible on this fabric either")
          ~connectivity ~disconnecting:(disconnecting ())
    in
    (* Reseed stream: deterministic per (seed, attempt index). *)
    let reseeder = Rng.create seed in
    let rec ladder ~retries ~rungs s =
      (* Pre-attempt deadline gate: a request whose deadline has already
         passed (a server near exhaustion) skips straight to the cheap
         baseline rung instead of starting a synthesis it would abandon. *)
      if out_of_time () then begin
        Obs.incr obs_deadline;
        let late =
          match eff_deadline with
          | Some d -> -.Deadline.slack_ms d
          | None -> 0.
        in
        baseline_rung ~retries
          ~rungs:("deadline exhausted" :: rungs)
          (Printf.sprintf "deadline already %.1f ms past before synthesis started"
             late)
      end
      else
        match attempt s with
        | result ->
          Obs.incr obs_ok;
          finish ~retries ~rungs:("synthesized" :: rungs) (Synthesized result)
        | exception Synth.Unsupported msg ->
          baseline_rung ~retries
            ~rungs:(Printf.sprintf "unsupported: %s" msg :: rungs)
            ("pattern unsupported by the synthesizer: " ^ msg)
        | exception Synth.Deadline_exceeded ->
          (* The round loop bailed out mid-synthesis: degrade to the best
             feasible baseline rather than blow the deadline further. *)
          Obs.incr obs_deadline;
          baseline_rung ~retries
            ~rungs:("deadline exceeded" :: rungs)
            "deadline exceeded mid-synthesis"
        | exception Synth.Stuck msg ->
          (* On a disconnected fabric Stuck is deterministic — reseeding is
             futile, so go straight to the structured report. *)
          if connectivity <> Fault.Connected then
            fail "connectivity" msg ~connectivity ~disconnecting:(disconnecting ())
          else if retries >= max_retries then
            baseline_rung ~retries
              ~rungs:(Printf.sprintf "stuck after %d reseeds" retries :: rungs)
              (Printf.sprintf "synthesis stuck after %d reseeded retries: %s" retries
                 msg)
          else if out_of_time () then
            baseline_rung ~retries
              ~rungs:(Printf.sprintf "budget %.0fms exhausted" budget_ms :: rungs)
              (Printf.sprintf "synthesis budget (%.0f ms) exhausted while stuck: %s"
                 budget_ms msg)
          else begin
            Obs.incr obs_retries;
            ladder ~retries:(retries + 1)
              ~rungs:(Printf.sprintf "reseed(%d)" (retries + 1) :: rungs)
              (Int64.to_int (Rng.bits64 reseeder))
          end
    in
    ladder ~retries:0 ~rungs:[] seed

(* --- degradation analysis ------------------------------------------------ *)

type health =
  | Intact
  | Degraded_timing of { links : int list }
  | Broken of { links : int list; lost_sends : int }

type analysis = {
  health : health;
  replay_time : float option;
  resynth : (outcome, failure) result;
  resynth_time : float option;
  advantage : float option;
}

let health_to_string = function
  | Intact -> "intact"
  | Degraded_timing { links } ->
    Printf.sprintf "degraded-timing (%d slowed links in use)" (List.length links)
  | Broken { links; lost_sends } ->
    let n = List.length links in
    Printf.sprintf "broken (%d send%s ride %d dead link%s)" lost_sends
      (if lost_sends = 1 then "" else "s")
      n
      (if n = 1 then "" else "s")

let classify topo faults (result : Synth.result) =
  let dead = Fault.killed_links topo faults in
  let slowed = List.map fst (Fault.degraded_links topo faults) in
  let used_dead = Hashtbl.create 8 and used_slow = Hashtbl.create 8 in
  let lost = ref 0 in
  List.iter
    (fun (s : Schedule.send) ->
      if List.mem s.Schedule.edge dead then begin
        incr lost;
        Hashtbl.replace used_dead s.Schedule.edge ()
      end
      else if List.mem s.Schedule.edge slowed then
        Hashtbl.replace used_slow s.Schedule.edge ())
    result.Synth.schedule.Schedule.sends;
  let ids tbl = List.sort compare (Hashtbl.fold (fun id () acc -> id :: acc) tbl []) in
  if !lost > 0 then Broken { links = ids used_dead; lost_sends = !lost }
  else if Hashtbl.length used_slow > 0 then Degraded_timing { links = ids used_slow }
  else Intact

let analyze ?(seed = 42) ?(trials = 1) ?(domains = 1) ?budget_ms topo faults
    (result : Synth.result) =
  let health = classify topo faults result in
  let degraded = Fault.apply topo faults in
  (* Replay the healthy schedule's transfers on the degraded fabric: the
     engine reroutes sends whose direct link died (store-and-forward), so
     this is the cost of *not* re-synthesizing. *)
  let replay_time =
    let chunk_size = Spec.chunk_size result.Synth.spec in
    let program = Program.of_schedule ~chunk_size result.Synth.schedule in
    match Engine.run degraded program with
    | report -> if report.Engine.stranded = [] then Some report.Engine.finish_time else None
    | exception Engine.Simulation_error _ -> None
    | exception Failure _ -> None
  in
  let resynth =
    synthesize ~seed ~trials ~domains ?budget_ms ~faults topo result.Synth.spec
  in
  let resynth_time =
    match resynth with Ok o -> Some o.simulated_time | Error _ -> None
  in
  let advantage =
    match (replay_time, resynth_time) with
    | Some r, Some s when s > 0. -> Some (r /. s)
    | _ -> None
  in
  { health; replay_time; resynth; resynth_time; advantage }


(* --- mid-flight repair --------------------------------------------------- *)

let obs_repair_suffix = Obs.counter "resilience.repair_suffix"
let obs_repair_full = Obs.counter "resilience.repair_full"
let obs_repair_complete = Obs.counter "resilience.repair_complete"
let obs_epoch_total = Obs.counter "resilience.epoch.total"
let obs_epoch_suffix = Obs.counter "resilience.epoch.suffix"
let obs_epoch_full = Obs.counter "resilience.epoch.full"
let obs_epoch_complete = Obs.counter "resilience.epoch.complete"
let obs_epoch_failed = Obs.counter "resilience.epoch.failed"

type strategy =
  | Suffix of {
      kept_sends : int;
      replanned : int;
      schedule : Schedule.t;
      plan : Synth.plan;
    }
  | Complete_already
  | Full of { reason : string; outcome : outcome }

type repaired = {
  strategy : strategy;
  completion_time : float;
  synth_wall_seconds : float;
  verified : (unit, string) result;
}

let strategy_name = function
  | Suffix _ -> "suffix"
  | Complete_already -> "complete"
  | Full _ -> "full"

(* Simulate the repair patch (fault-relative times) on the degraded fabric to
   get the absolute completion time of the patched collective. The engine
   routes by endpoints, not link ids, so the patch's healthy-id-space
   schedule simulates directly on the renumbered degraded topology. *)
let suffix_completion ~at degraded ~chunk_size schedule =
  if Schedule.num_sends schedule = 0 then at
  else
    let program = Program.of_schedule ~chunk_size schedule in
    at +. (Engine.run degraded program).Engine.finish_time

(* The two phases of a repairable collective, on one absolute clock in
   healthy link ids: [combining] moves partial sums, [pull] replicates
   full copies. Kept prefixes and repair patches accumulate into the same
   shape across epochs, so one reduction-aware validation covers the
   composite end to end. *)
type phase_split = { combining : Schedule.t; pull : Schedule.t }

let phase_split_of (result : Synth.result) =
  match result.Synth.spec.Spec.pattern with
  | Pattern.All_gather | Pattern.Broadcast _ ->
    Some { combining = Schedule.empty; pull = result.Synth.schedule }
  | Pattern.Reduce_scatter | Pattern.Reduce _ ->
    Some { combining = result.Synth.schedule; pull = Schedule.empty }
  | Pattern.All_reduce -> (
    match result.Synth.phases with
    | Some (rs, ag) -> Some { combining = rs; pull = ag }
    | None -> None)
  | Pattern.All_to_all | Pattern.Gather _ | Pattern.Scatter _ -> None

(* Everything one repair epoch needs to know about the collective. The
   [contributors] of every supported pattern are exactly its spec
   precondition: each initial holder of a chunk contributes its copy (for
   pure-movement patterns that single contribution *is* the full value, so
   the reduction tracker degenerates to position tracking). [exp] is the
   healthy fabric's cached TEN expansion, shared by every repair trial and
   epoch. *)
type ctx = {
  topo : Topology.t;
  exp : Ten.Expansion.t;
  spec : Spec.t;
  num_chunks : int;
  chunk_size : float;
  contributors : (int * int) list;
  postcondition : (int * int) list;
}

let make_ctx ?reuse topo spec =
  {
    topo;
    exp = (match reuse with Some e -> e | None -> Ten.Expansion.prepare topo);
    spec;
    num_chunks = Spec.num_chunks spec;
    chunk_size = Spec.chunk_size spec;
    contributors = Spec.precondition spec;
    postcondition = Spec.postcondition spec;
  }

(* One reduction-aware repair epoch at time [at]:

   1. keep every send of the current composite that finished by [at];
   2. replay the kept prefix through the reduction tracker to recover
      positions (full copies) and in-flight partial sums;
   3. re-synthesize only the unmet remainder as a positional goal with
      reduction state, over the healthy fabric's cached expansion with the
      accumulated dead/slowed links masked;
   4. validate the new composite (kept prefix + patch) end to end on the
      healthy topology, with dead links forbidden from their kill times.

   [dead]/[slowed]/[forbidden] are the *accumulated* fault state; [degraded]
   the correspondingly degraded topology (for completion simulation only). *)
let repair_step ~seed ~trials ~domains ~at ~dead ~slowed ~forbidden ~degraded
    ctx split =
  let eps = Schedule.eps_for at in
  let keep (s : Schedule.send) = s.Schedule.finish <= at +. eps in
  let kept_c = List.filter keep split.combining.Schedule.sends in
  let kept_p = List.filter keep split.pull.Schedule.sends in
  let kept_combining = Schedule.make kept_c in
  let kept_pull = Schedule.make kept_p in
  let tracker =
    Reduction.create
      ~num_npus:(Topology.num_npus ctx.topo)
      ~num_chunks:ctx.num_chunks ~contributors:ctx.contributors
  in
  Reduction.replay tracker ~combining:kept_combining ~pull:kept_pull ~at;
  let unmet =
    List.filter
      (fun (d, c) -> not (Reduction.is_full tracker ~npu:d ~chunk:c))
      ctx.postcondition
  in
  if unmet = [] then begin
    Obs.incr obs_repair_complete;
    let done_at =
      List.fold_left
        (fun acc (s : Schedule.send) -> Float.max acc s.Schedule.finish)
        0. (kept_c @ kept_p)
    in
    `Repaired
      ( {
          strategy = Complete_already;
          completion_time = done_at;
          synth_wall_seconds = 0.;
          verified = Ok ();
        },
        { combining = kept_combining; pull = kept_pull } )
  end
  else begin
    let goal =
      {
        Synth.num_chunks = ctx.num_chunks;
        chunk_size = ctx.chunk_size;
        precondition = Reduction.positions tracker;
        postcondition = ctx.postcondition;
        contributors = ctx.contributors;
        partials = Reduction.partials tracker;
      }
    in
    (* Repair optimizes the metric it reports: each trial's patch is scored
       by its simulated completion on the degraded fabric (the scheduled
       makespan ignores congestion, which can reorder near-parity patches).
       Trials are independent single-trial syntheses over the shared cached
       expansion, so the fan-out stays cheap. *)
    let candidate i =
      match
        Synth.synthesize_goal_plan ~seed:(seed + (1009 * i)) ~trials:1
          ~domains:1 ~reuse:ctx.exp ~dead ~slowed ctx.topo goal
      with
      | plan, (stats : Synth.stats) ->
        let patch = Schedule.union plan.Synth.combining plan.Synth.pull in
        let completion =
          suffix_completion ~at degraded ~chunk_size:ctx.chunk_size patch
        in
        Ok (plan, stats, patch, completion)
      | exception Synth.Stuck msg -> Error msg
    in
    let candidates =
      if trials <= 1 then [| candidate 0 |]
      else if domains > 1 then
        Tacos_util.Pool.map (Tacos_util.Pool.global ~size:domains ()) candidate trials
      else Array.init trials candidate
    in
    let best =
      Array.fold_left
        (fun acc c ->
          match (acc, c) with
          | None, _ | Some (Error _), Ok _ -> Some c
          | Some (Ok (_, _, _, b)), Ok (_, _, _, cand) when cand < b -> Some c
          | _ -> acc)
        None candidates
    in
    match best with
    | None | Some (Error _) ->
      `Stuck
        (match best with Some (Error msg) -> msg | _ -> "no repair trial ran")
    | Some (Ok (plan, stats, patch, completion)) ->
      Obs.incr obs_repair_suffix;
      let composite =
        {
          combining =
            Schedule.union kept_combining (Schedule.shift plan.Synth.combining at);
          pull = Schedule.union kept_pull (Schedule.shift plan.Synth.pull at);
        }
      in
      let verified =
        Schedule.validate_reduction ctx.topo ~forbidden
          ~contributions:ctx.contributors ~postcondition:ctx.postcondition
          ~num_chunks:ctx.num_chunks ~chunk_size:ctx.chunk_size
          ~combining:composite.combining ~pull:composite.pull ()
      in
      `Repaired
        ( {
            strategy =
              Suffix
                {
                  kept_sends = List.length kept_c + List.length kept_p;
                  replanned = Schedule.num_sends patch;
                  schedule = patch;
                  plan;
                };
            completion_time = completion;
            synth_wall_seconds = stats.Synth.wall_seconds;
            verified;
          },
          composite )
  end

(* Fall through to the full fallback ladder when suffix repair cannot apply
   (no phase split, pairwise semantics, or a stuck patch synthesis). *)
let repair_full ~seed ~trials ~domains ~budget_ms ~at topo faults spec reason =
  match synthesize ~seed ~trials ~domains ?budget_ms ~faults topo spec with
  | Ok outcome ->
    Obs.incr obs_repair_full;
    let verified =
      match outcome.plan with
      | Synthesized r -> Synth.verify (Fault.apply topo faults) r
      | Baseline _ -> Ok ()
    in
    Ok
      {
        strategy = Full { reason; outcome };
        completion_time = at +. outcome.simulated_time;
        synth_wall_seconds = outcome.wall_seconds;
        verified;
      }
  | Error f -> Error f

(* Lift a full re-synthesis (degraded link ids, fault-relative times) back
   into the composite's healthy-id absolute-time phase split, so later fault
   epochs can keep repairing it. Baseline fallbacks carry no schedule and
   cannot be lifted. *)
let lift_full ~at topo faults spec (o : outcome) =
  match o.plan with
  | Baseline _ -> None
  | Synthesized r -> (
    let map = Fault.link_id_map topo faults in
    let lift s =
      Schedule.shift
        (Schedule.make
           (List.map
              (fun (snd : Schedule.send) ->
                { snd with Schedule.edge = map.(snd.Schedule.edge) })
              s.Schedule.sends))
        at
    in
    match spec.Spec.pattern with
    | Pattern.All_reduce -> (
      match r.Synth.phases with
      | Some (rs, ag) -> Some { combining = lift rs; pull = lift ag }
      | None -> None)
    | Pattern.Reduce_scatter | Pattern.Reduce _ ->
      Some { combining = lift r.Synth.schedule; pull = Schedule.empty }
    | _ -> Some { combining = Schedule.empty; pull = lift r.Synth.schedule })

let repair ?(seed = 42) ?(trials = 1) ?(domains = 1) ?budget_ms ?reuse ~at topo
    faults (result : Synth.result) =
  if not (at >= 0.) then invalid_arg "Resilience.repair: fault time must be >= 0";
  match Fault.validate topo faults with
  | Error msg ->
    Obs.incr obs_failures;
    Error
      {
        stage = "faults";
        message = msg;
        connectivity = Fault.connectivity topo;
        disconnecting = None;
        deadline_slack_ms = None;
      }
  | Ok () -> (
    let spec = result.Synth.spec in
    let full reason =
      repair_full ~seed ~trials ~domains ~budget_ms ~at topo faults spec reason
    in
    match phase_split_of result with
    | None -> (
      match spec.Spec.pattern with
      | Pattern.All_reduce -> full "All-Reduce result carries no phase split"
      | _ ->
        full
          (Pattern.name spec.Spec.pattern
          ^ ": pairwise/rooted semantics — partial progress is not \
             re-seedable as a positional goal"))
    | Some split -> (
      let ctx = make_ctx ?reuse topo spec in
      let dead = Fault.killed_links topo faults in
      let slowed = Fault.degraded_links topo faults in
      let forbidden = List.map (fun e -> (e, at)) dead in
      let degraded = Fault.apply topo faults in
      match
        repair_step ~seed ~trials ~domains ~at ~dead ~slowed ~forbidden
          ~degraded ctx split
      with
      | `Repaired (repaired, _) -> Ok repaired
      | `Stuck msg -> full ("suffix synthesis stuck: " ^ msg)))

(* --- multi-epoch repair --------------------------------------------------- *)

type epoch = { at : float; faults : Fault.t list; repaired : repaired }

type timeline_repair = {
  epochs : epoch list;
  combining : Schedule.t;
  pull : Schedule.t;
  schedule : Schedule.t;
  completion_time : float;
  verified : (unit, string) result;
}

let repair_timeline ?(seed = 42) ?(trials = 1) ?(domains = 1) ?budget_ms ?reuse
    ~events topo (result : Synth.result) =
  if events = [] then
    invalid_arg "Resilience.repair_timeline: events must be non-empty";
  let fail stage message ~connectivity ~disconnecting =
    Obs.incr obs_failures;
    Error { stage; message; connectivity; disconnecting; deadline_slack_ms = None }
  in
  match Fault.validate_events topo events with
  | Error msg ->
    fail "timeline" msg ~connectivity:(Fault.connectivity topo)
      ~disconnecting:None
  | Ok () -> (
    let spec = result.Synth.spec in
    match phase_split_of result with
    | None ->
      fail "timeline"
        (Pattern.name spec.Spec.pattern
        ^ ": no positional phase split — multi-epoch repair needs one")
        ~connectivity:(Fault.connectivity topo) ~disconnecting:None
    | Some split ->
      let ctx = make_ctx ?reuse topo spec in
      (* Per-epoch seeds derived from the epoch index, so each epoch's
         synthesis stream is deterministic regardless of earlier epochs'
         strategies — and a single-epoch timeline draws exactly like
         [repair ~seed]. *)
      let epoch_seed i = seed + (7919 * i) in
      let rec go i epochs_rev (split : phase_split) faults_all forbidden last_completion =
        function
        | [] ->
          let verified =
            Schedule.validate_reduction topo ~forbidden
              ~contributions:ctx.contributors ~postcondition:ctx.postcondition
              ~num_chunks:ctx.num_chunks ~chunk_size:ctx.chunk_size
              ~combining:split.combining ~pull:split.pull ()
          in
          Ok
            {
              epochs = List.rev epochs_rev;
              combining = split.combining;
              pull = split.pull;
              schedule = Schedule.union split.combining split.pull;
              completion_time = last_completion;
              verified;
            }
        | (at, faults) :: rest -> (
          Obs.incr obs_epoch_total;
          let epoch_seed = epoch_seed i in
          let faults_all = faults_all @ faults in
          let forbidden =
            forbidden @ List.map (fun e -> (e, at)) (Fault.killed_links topo faults)
          in
          let dead = Fault.killed_links topo faults_all in
          let slowed = Fault.degraded_links topo faults_all in
          let degraded = Fault.apply topo faults_all in
          let continue repaired split' =
            go (i + 1)
              ({ at; faults; repaired } :: epochs_rev)
              split' faults_all forbidden repaired.completion_time rest
          in
          let fall_back reason =
            match
              repair_full ~seed:epoch_seed ~trials ~domains ~budget_ms ~at topo
                faults_all spec reason
            with
            | Error f ->
              Obs.incr obs_epoch_failed;
              Error f
            | Ok repaired -> (
              let outcome =
                match repaired.strategy with
                | Full { outcome; _ } -> Some outcome
                | _ -> None
              in
              match
                Option.bind outcome (lift_full ~at topo faults_all spec)
              with
              | Some split' ->
                Obs.incr obs_epoch_full;
                continue repaired split'
              | None ->
                Obs.incr obs_epoch_failed;
                fail
                  (Printf.sprintf "epoch@%g" at)
                  "full re-synthesis fell back to a baseline algorithm, \
                   which carries no schedule to repair in later epochs"
                  ~connectivity:(Fault.connectivity degraded)
                  ~disconnecting:(Fault.disconnecting_fault topo faults_all))
          in
          match
            repair_step ~seed:epoch_seed ~trials ~domains ~at ~dead ~slowed
              ~forbidden ~degraded ctx split
          with
          | `Repaired (repaired, split') ->
            (match repaired.strategy with
            | Suffix _ -> Obs.incr obs_epoch_suffix
            | Complete_already -> Obs.incr obs_epoch_complete
            | Full _ -> ());
            continue repaired split'
          | `Stuck msg -> fall_back ("suffix synthesis stuck: " ^ msg))
      in
      go 0 [] split [] [] 0. events)
