(* Namespaces of the substrate libraries. *)
open Tacos_collective
module Synth = Tacos.Synthesizer
module Algo = Tacos_baselines.Algo
module Engine = Tacos_sim.Engine
module Program = Tacos_sim.Program
module Rng = Tacos_util.Rng
module Json = Tacos_util.Json
module Obs = Tacos_obs.Obs

(* Fallback-ladder telemetry: a fleet running degraded syntheses watches
   these to see how often it is living on fallbacks ("tacos profile" /
   BENCH rows surface them). *)
let obs_ok = Obs.counter "resilience.synth_ok"
let obs_retries = Obs.counter "resilience.synth_retries"
let obs_baseline = Obs.counter "resilience.fallback_baseline"
let obs_failures = Obs.counter "resilience.failures"
let obs_disconnected = Obs.counter "resilience.disconnected_inputs"

type plan =
  | Synthesized of Synth.result
  | Baseline of { algo : Algo.t; report : Engine.report }

type outcome = {
  plan : plan;
  simulated_time : float;
  retries : int;
  rungs : string list;
  wall_seconds : float;
}

type failure = {
  stage : string;
  message : string;
  connectivity : Fault.connectivity;
  disconnecting : Fault.t option;
}

let pp_failure ppf f =
  Format.fprintf ppf "%s: %s (fabric %a%t)" f.stage f.message Fault.pp_connectivity
    f.connectivity (fun ppf ->
      match f.disconnecting with
      | Some fault -> Format.fprintf ppf "; disconnected by %a" Fault.pp fault
      | None -> ())

let failure_to_json f =
  Json.Object
    ([
       ("stage", Json.String f.stage);
       ("message", Json.String f.message);
       ( "connectivity",
         Json.String (Format.asprintf "%a" Fault.pp_connectivity f.connectivity) );
     ]
    @
    match f.disconnecting with
    | Some fault -> [ ("disconnecting_fault", Fault.to_json fault) ]
    | None -> [])

let simulated_time topo (result : Synth.result) =
  let chunk_size = Spec.chunk_size result.Synth.spec in
  let program = Program.of_schedule ~chunk_size result.Synth.schedule in
  (Engine.run topo program).Engine.finish_time

let synthesize ?(seed = 42) ?(trials = 1) ?(domains = 1) ?(budget_ms = infinity)
    ?(max_retries = 3) ?(baselines = Algo.all) ?(faults = []) topo spec =
  if domains <= 0 then invalid_arg "Resilience.synthesize: domains must be positive";
  let t0 = Unix.gettimeofday () in
  let elapsed_ms () = (Unix.gettimeofday () -. t0) *. 1e3 in
  let fail stage message ~connectivity ~disconnecting =
    Obs.incr obs_failures;
    Error { stage; message; connectivity; disconnecting }
  in
  match Fault.validate topo faults with
  | Error msg ->
    fail "faults" msg ~connectivity:(Fault.connectivity topo) ~disconnecting:None
  | Ok () ->
    let degraded = if faults = [] then topo else Fault.apply topo faults in
    let connectivity = Fault.connectivity degraded in
    let disconnecting () =
      if faults = [] then None else Fault.disconnecting_fault topo faults
    in
    (match connectivity with
    | Fault.Disconnected _ -> Obs.incr obs_disconnected
    | Fault.Connected -> ());
    (* One synthesis attempt; [Stuck] is the only exception the ladder
       absorbs at this rung ([Unsupported] is about the pattern, not the
       fabric — reseeding cannot help, so it drops straight to baselines). *)
    let attempt s =
      if spec.Spec.pattern = Pattern.All_to_all then Tacos.Alltoall.synthesize ~seed:s degraded spec
      else Synth.synthesize ~seed:s ~trials ~domains degraded spec
    in
    let finish ~retries ~rungs plan =
      let simulated_time =
        match plan with
        | Synthesized result -> simulated_time degraded result
        | Baseline { report; _ } -> report.Engine.finish_time
      in
      Ok
        {
          plan;
          simulated_time;
          retries;
          rungs = List.rev rungs;
          wall_seconds = Unix.gettimeofday () -. t0;
        }
    in
    let baseline_rung ~retries ~rungs reason =
      Obs.incr obs_baseline;
      match Algo.best_feasible ~candidates:baselines degraded spec with
      | Some (algo, report) ->
        finish ~retries
          ~rungs:(Printf.sprintf "baseline %s" (Algo.name algo) :: rungs)
          (Baseline { algo; report })
      | None ->
        fail "baseline"
          (reason ^ "; no baseline algorithm is feasible on this fabric either")
          ~connectivity ~disconnecting:(disconnecting ())
    in
    (* Reseed stream: deterministic per (seed, attempt index). *)
    let reseeder = Rng.create seed in
    let rec ladder ~retries ~rungs s =
      match attempt s with
      | result ->
        Obs.incr obs_ok;
        finish ~retries ~rungs:("synthesized" :: rungs) (Synthesized result)
      | exception Synth.Unsupported msg ->
        baseline_rung ~retries
          ~rungs:(Printf.sprintf "unsupported: %s" msg :: rungs)
          ("pattern unsupported by the synthesizer: " ^ msg)
      | exception Synth.Stuck msg ->
        (* On a disconnected fabric Stuck is deterministic — reseeding is
           futile, so go straight to the structured report. *)
        if connectivity <> Fault.Connected then
          fail "connectivity" msg ~connectivity ~disconnecting:(disconnecting ())
        else if retries >= max_retries then
          baseline_rung ~retries
            ~rungs:(Printf.sprintf "stuck after %d reseeds" retries :: rungs)
            (Printf.sprintf "synthesis stuck after %d reseeded retries: %s" retries msg)
        else if elapsed_ms () > budget_ms then
          baseline_rung ~retries
            ~rungs:(Printf.sprintf "budget %.0fms exhausted" budget_ms :: rungs)
            (Printf.sprintf "synthesis budget (%.0f ms) exhausted while stuck: %s"
               budget_ms msg)
        else begin
          Obs.incr obs_retries;
          ladder ~retries:(retries + 1)
            ~rungs:(Printf.sprintf "reseed(%d)" (retries + 1) :: rungs)
            (Int64.to_int (Rng.bits64 reseeder))
        end
    in
    ladder ~retries:0 ~rungs:[] seed

(* --- degradation analysis ------------------------------------------------ *)

type health =
  | Intact
  | Degraded_timing of { links : int list }
  | Broken of { links : int list; lost_sends : int }

type analysis = {
  health : health;
  replay_time : float option;
  resynth : (outcome, failure) result;
  resynth_time : float option;
  advantage : float option;
}

let health_to_string = function
  | Intact -> "intact"
  | Degraded_timing { links } ->
    Printf.sprintf "degraded-timing (%d slowed links in use)" (List.length links)
  | Broken { links; lost_sends } ->
    let n = List.length links in
    Printf.sprintf "broken (%d send%s ride %d dead link%s)" lost_sends
      (if lost_sends = 1 then "" else "s")
      n
      (if n = 1 then "" else "s")

let classify topo faults (result : Synth.result) =
  let dead = Fault.killed_links topo faults in
  let slowed = List.map fst (Fault.degraded_links topo faults) in
  let used_dead = Hashtbl.create 8 and used_slow = Hashtbl.create 8 in
  let lost = ref 0 in
  List.iter
    (fun (s : Schedule.send) ->
      if List.mem s.Schedule.edge dead then begin
        incr lost;
        Hashtbl.replace used_dead s.Schedule.edge ()
      end
      else if List.mem s.Schedule.edge slowed then
        Hashtbl.replace used_slow s.Schedule.edge ())
    result.Synth.schedule.Schedule.sends;
  let ids tbl = List.sort compare (Hashtbl.fold (fun id () acc -> id :: acc) tbl []) in
  if !lost > 0 then Broken { links = ids used_dead; lost_sends = !lost }
  else if Hashtbl.length used_slow > 0 then Degraded_timing { links = ids used_slow }
  else Intact

let analyze ?(seed = 42) ?(trials = 1) ?(domains = 1) ?budget_ms topo faults
    (result : Synth.result) =
  let health = classify topo faults result in
  let degraded = Fault.apply topo faults in
  (* Replay the healthy schedule's transfers on the degraded fabric: the
     engine reroutes sends whose direct link died (store-and-forward), so
     this is the cost of *not* re-synthesizing. *)
  let replay_time =
    let chunk_size = Spec.chunk_size result.Synth.spec in
    let program = Program.of_schedule ~chunk_size result.Synth.schedule in
    match Engine.run degraded program with
    | report -> if report.Engine.stranded = [] then Some report.Engine.finish_time else None
    | exception Engine.Simulation_error _ -> None
    | exception Failure _ -> None
  in
  let resynth =
    synthesize ~seed ~trials ~domains ?budget_ms ~faults topo result.Synth.spec
  in
  let resynth_time =
    match resynth with Ok o -> Some o.simulated_time | Error _ -> None
  in
  let advantage =
    match (replay_time, resynth_time) with
    | Some r, Some s when s > 0. -> Some (r /. s)
    | _ -> None
  in
  { health; replay_time; resynth; resynth_time; advantage }

(* --- mid-flight repair --------------------------------------------------- *)

let obs_repair_suffix = Obs.counter "resilience.repair_suffix"
let obs_repair_full = Obs.counter "resilience.repair_full"
let obs_repair_complete = Obs.counter "resilience.repair_complete"

type strategy =
  | Suffix of { kept_sends : int; replanned : int; schedule : Schedule.t }
  | Complete_already
  | Full of { reason : string; outcome : outcome }

type repaired = {
  strategy : strategy;
  completion_time : float;
  synth_wall_seconds : float;
  verified : (unit, string) result;
}

let strategy_name = function
  | Suffix _ -> "suffix"
  | Complete_already -> "complete"
  | Full _ -> "full"

(* Simulate the repaired suffix (degraded-topology link ids, fault-relative
   times) to get the absolute completion time of the patched collective. *)
let suffix_completion ~at degraded ~chunk_size schedule =
  if Schedule.num_sends schedule = 0 then at
  else
    let program = Program.of_schedule ~chunk_size schedule in
    at +. (Engine.run degraded program).Engine.finish_time

(* Repair the pull phase whose sends are [phase_sched] (absolute times),
   with [precondition] the chunk positions at the phase's start. Keeps every
   send that finished by [at] and re-synthesizes only the unmet
   postconditions, seeding the goal with the actual chunk positions. *)
let repair_pull ~seed ~trials ~domains ~at ~connectivity ~disconnecting topo faults
    ~num_chunks ~chunk_size ~precondition ~postcondition phase_sched =
  let eps = Schedule.eps_for at in
  let kept, dropped =
    List.partition
      (fun (s : Schedule.send) -> s.Schedule.finish <= at +. eps)
      phase_sched.Schedule.sends
  in
  let seen = Hashtbl.create 64 in
  List.iter (fun (d, c) -> Hashtbl.replace seen (d, c) ()) precondition;
  List.iter
    (fun (s : Schedule.send) -> Hashtbl.replace seen (s.Schedule.dst, s.Schedule.chunk) ())
    kept;
  let positions = Hashtbl.fold (fun pos () acc -> pos :: acc) seen [] in
  let unmet =
    List.filter (fun (d, c) -> not (Hashtbl.mem seen (d, c))) postcondition
  in
  if unmet = [] then begin
    Obs.incr obs_repair_complete;
    let done_at =
      List.fold_left (fun acc (s : Schedule.send) -> Float.max acc s.Schedule.finish)
        0. kept
    in
    Ok
      {
        strategy = Complete_already;
        completion_time = done_at;
        synth_wall_seconds = 0.;
        verified = Ok ();
      }
  end
  else begin
    let degraded = Fault.apply topo faults in
    match
      Synth.synthesize_goal ~seed ~trials ~domains degraded
        { Synth.num_chunks; chunk_size; precondition = positions; postcondition = unmet }
    with
    | schedule, (stats : Synth.stats) ->
      Obs.incr obs_repair_suffix;
      let verified =
        Schedule.validate_positioned degraded ~precondition:positions
          ~postcondition:unmet ~num_chunks ~chunk_size schedule
      in
      Ok
        {
          strategy =
            Suffix
              {
                kept_sends = List.length kept;
                replanned = List.length dropped + List.length unmet;
                schedule;
              };
          completion_time = suffix_completion ~at degraded ~chunk_size schedule;
          synth_wall_seconds = stats.Synth.wall_seconds;
          verified;
        }
    | exception Synth.Stuck msg ->
      Obs.incr obs_failures;
      Error
        {
          stage = "repair";
          message = msg;
          connectivity = connectivity ();
          disconnecting = disconnecting ();
        }
  end

(* Fall through to the full fallback ladder when the suffix cannot be
   patched in isolation (combining phase in flight: kept partial sums are
   not expressible as chunk positions). *)
let repair_full ~seed ~trials ~domains ~budget_ms ~at topo faults spec reason =
  match synthesize ~seed ~trials ~domains ?budget_ms ~faults topo spec with
  | Ok outcome ->
    Obs.incr obs_repair_full;
    let verified =
      match outcome.plan with
      | Synthesized r -> Synth.verify (Fault.apply topo faults) r
      | Baseline _ -> Ok ()
    in
    Ok
      {
        strategy = Full { reason; outcome };
        completion_time = at +. outcome.simulated_time;
        synth_wall_seconds = outcome.wall_seconds;
        verified;
      }
  | Error f -> Error f

let repair ?(seed = 42) ?(trials = 1) ?(domains = 1) ?budget_ms ~at topo faults
    (result : Synth.result) =
  if not (at >= 0.) then invalid_arg "Resilience.repair: fault time must be >= 0";
  match Fault.validate topo faults with
  | Error msg ->
    Obs.incr obs_failures;
    Error
      {
        stage = "faults";
        message = msg;
        connectivity = Fault.connectivity topo;
        disconnecting = None;
      }
  | Ok () ->
    let connectivity () = Fault.connectivity (Fault.apply topo faults) in
    let disconnecting () = Fault.disconnecting_fault topo faults in
    let spec = result.Synth.spec in
    let num_chunks = Spec.num_chunks spec in
    let chunk_size = Spec.chunk_size spec in
    let pull ~precondition ~postcondition phase_sched =
      repair_pull ~seed ~trials ~domains ~at ~connectivity ~disconnecting topo faults
        ~num_chunks ~chunk_size ~precondition ~postcondition phase_sched
    in
    let full reason =
      repair_full ~seed ~trials ~domains ~budget_ms ~at topo faults spec reason
    in
    (match spec.Spec.pattern with
    | Pattern.All_gather | Pattern.Broadcast _ ->
      pull ~precondition:(Spec.precondition spec)
        ~postcondition:(Spec.postcondition spec) result.Synth.schedule
    | Pattern.All_reduce -> (
      match result.Synth.phases with
      | None -> full "All-Reduce result carries no phase split"
      | Some (rs, ag) ->
        let eps = Schedule.eps_for rs.Schedule.makespan in
        if at >= rs.Schedule.makespan -. eps then begin
          (* The combining phase is complete: repair the All-Gather suffix.
             [ag] is already shifted to absolute times by the synthesizer. *)
          let ag_spec = Spec.with_pattern spec Pattern.All_gather in
          pull ~precondition:(Spec.precondition ag_spec)
            ~postcondition:(Spec.postcondition ag_spec) ag
        end
        else
          full
            (Printf.sprintf
               "fault at %g lands inside the reduce-scatter phase (ends %g): \
                partial sums in flight cannot be re-seeded as chunk positions"
               at rs.Schedule.makespan))
    | Pattern.Reduce_scatter | Pattern.Reduce _ | Pattern.All_to_all
    | Pattern.Gather _ | Pattern.Scatter _ ->
      full
        (Pattern.name spec.Spec.pattern
        ^ ": combining/pairwise semantics — partial progress is not \
           re-seedable as chunk positions"))
