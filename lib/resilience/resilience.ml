(* Namespaces of the substrate libraries. *)
open Tacos_collective
module Synth = Tacos.Synthesizer
module Algo = Tacos_baselines.Algo
module Engine = Tacos_sim.Engine
module Program = Tacos_sim.Program
module Rng = Tacos_util.Rng
module Json = Tacos_util.Json
module Obs = Tacos_obs.Obs

(* Fallback-ladder telemetry: a fleet running degraded syntheses watches
   these to see how often it is living on fallbacks ("tacos profile" /
   BENCH rows surface them). *)
let obs_ok = Obs.counter "resilience.synth_ok"
let obs_retries = Obs.counter "resilience.synth_retries"
let obs_baseline = Obs.counter "resilience.fallback_baseline"
let obs_failures = Obs.counter "resilience.failures"
let obs_disconnected = Obs.counter "resilience.disconnected_inputs"

type plan =
  | Synthesized of Synth.result
  | Baseline of { algo : Algo.t; report : Engine.report }

type outcome = {
  plan : plan;
  simulated_time : float;
  retries : int;
  rungs : string list;
  wall_seconds : float;
}

type failure = {
  stage : string;
  message : string;
  connectivity : Fault.connectivity;
  disconnecting : Fault.t option;
}

let pp_failure ppf f =
  Format.fprintf ppf "%s: %s (fabric %a%t)" f.stage f.message Fault.pp_connectivity
    f.connectivity (fun ppf ->
      match f.disconnecting with
      | Some fault -> Format.fprintf ppf "; disconnected by %a" Fault.pp fault
      | None -> ())

let failure_to_json f =
  Json.Object
    ([
       ("stage", Json.String f.stage);
       ("message", Json.String f.message);
       ( "connectivity",
         Json.String (Format.asprintf "%a" Fault.pp_connectivity f.connectivity) );
     ]
    @
    match f.disconnecting with
    | Some fault -> [ ("disconnecting_fault", Fault.to_json fault) ]
    | None -> [])

let simulated_time topo (result : Synth.result) =
  let chunk_size = Spec.chunk_size result.Synth.spec in
  let program = Program.of_schedule ~chunk_size result.Synth.schedule in
  (Engine.run topo program).Engine.finish_time

let synthesize ?(seed = 42) ?(trials = 1) ?(budget_ms = infinity) ?(max_retries = 3)
    ?(baselines = Algo.all) ?(faults = []) topo spec =
  let t0 = Unix.gettimeofday () in
  let elapsed_ms () = (Unix.gettimeofday () -. t0) *. 1e3 in
  let fail stage message ~connectivity ~disconnecting =
    Obs.incr obs_failures;
    Error { stage; message; connectivity; disconnecting }
  in
  match Fault.validate topo faults with
  | Error msg ->
    fail "faults" msg ~connectivity:(Fault.connectivity topo) ~disconnecting:None
  | Ok () ->
    let degraded = if faults = [] then topo else Fault.apply topo faults in
    let connectivity = Fault.connectivity degraded in
    let disconnecting () =
      if faults = [] then None else Fault.disconnecting_fault topo faults
    in
    (match connectivity with
    | Fault.Disconnected _ -> Obs.incr obs_disconnected
    | Fault.Connected -> ());
    (* One synthesis attempt; [Stuck] is the only exception the ladder
       absorbs at this rung ([Unsupported] is about the pattern, not the
       fabric — reseeding cannot help, so it drops straight to baselines). *)
    let attempt s =
      if spec.Spec.pattern = Pattern.All_to_all then Tacos.Alltoall.synthesize ~seed:s degraded spec
      else Synth.synthesize ~seed:s ~trials degraded spec
    in
    let finish ~retries ~rungs plan =
      let simulated_time =
        match plan with
        | Synthesized result -> simulated_time degraded result
        | Baseline { report; _ } -> report.Engine.finish_time
      in
      Ok
        {
          plan;
          simulated_time;
          retries;
          rungs = List.rev rungs;
          wall_seconds = Unix.gettimeofday () -. t0;
        }
    in
    let baseline_rung ~retries ~rungs reason =
      Obs.incr obs_baseline;
      match Algo.best_feasible ~candidates:baselines degraded spec with
      | Some (algo, report) ->
        finish ~retries
          ~rungs:(Printf.sprintf "baseline %s" (Algo.name algo) :: rungs)
          (Baseline { algo; report })
      | None ->
        fail "baseline"
          (reason ^ "; no baseline algorithm is feasible on this fabric either")
          ~connectivity ~disconnecting:(disconnecting ())
    in
    (* Reseed stream: deterministic per (seed, attempt index). *)
    let reseeder = Rng.create seed in
    let rec ladder ~retries ~rungs s =
      match attempt s with
      | result ->
        Obs.incr obs_ok;
        finish ~retries ~rungs:("synthesized" :: rungs) (Synthesized result)
      | exception Synth.Unsupported msg ->
        baseline_rung ~retries
          ~rungs:(Printf.sprintf "unsupported: %s" msg :: rungs)
          ("pattern unsupported by the synthesizer: " ^ msg)
      | exception Synth.Stuck msg ->
        (* On a disconnected fabric Stuck is deterministic — reseeding is
           futile, so go straight to the structured report. *)
        if connectivity <> Fault.Connected then
          fail "connectivity" msg ~connectivity ~disconnecting:(disconnecting ())
        else if retries >= max_retries then
          baseline_rung ~retries
            ~rungs:(Printf.sprintf "stuck after %d reseeds" retries :: rungs)
            (Printf.sprintf "synthesis stuck after %d reseeded retries: %s" retries msg)
        else if elapsed_ms () > budget_ms then
          baseline_rung ~retries
            ~rungs:(Printf.sprintf "budget %.0fms exhausted" budget_ms :: rungs)
            (Printf.sprintf "synthesis budget (%.0f ms) exhausted while stuck: %s"
               budget_ms msg)
        else begin
          Obs.incr obs_retries;
          ladder ~retries:(retries + 1)
            ~rungs:(Printf.sprintf "reseed(%d)" (retries + 1) :: rungs)
            (Int64.to_int (Rng.bits64 reseeder))
        end
    in
    ladder ~retries:0 ~rungs:[] seed

(* --- degradation analysis ------------------------------------------------ *)

type health =
  | Intact
  | Degraded_timing of { links : int list }
  | Broken of { links : int list; lost_sends : int }

type analysis = {
  health : health;
  replay_time : float option;
  resynth : (outcome, failure) result;
  resynth_time : float option;
  advantage : float option;
}

let health_to_string = function
  | Intact -> "intact"
  | Degraded_timing { links } ->
    Printf.sprintf "degraded-timing (%d slowed links in use)" (List.length links)
  | Broken { links; lost_sends } ->
    let n = List.length links in
    Printf.sprintf "broken (%d send%s ride %d dead link%s)" lost_sends
      (if lost_sends = 1 then "" else "s")
      n
      (if n = 1 then "" else "s")

let classify topo faults (result : Synth.result) =
  let dead = Fault.killed_links topo faults in
  let slowed = List.map fst (Fault.degraded_links topo faults) in
  let used_dead = Hashtbl.create 8 and used_slow = Hashtbl.create 8 in
  let lost = ref 0 in
  List.iter
    (fun (s : Schedule.send) ->
      if List.mem s.Schedule.edge dead then begin
        incr lost;
        Hashtbl.replace used_dead s.Schedule.edge ()
      end
      else if List.mem s.Schedule.edge slowed then
        Hashtbl.replace used_slow s.Schedule.edge ())
    result.Synth.schedule.Schedule.sends;
  let ids tbl = List.sort compare (Hashtbl.fold (fun id () acc -> id :: acc) tbl []) in
  if !lost > 0 then Broken { links = ids used_dead; lost_sends = !lost }
  else if Hashtbl.length used_slow > 0 then Degraded_timing { links = ids used_slow }
  else Intact

let analyze ?(seed = 42) ?(trials = 1) ?budget_ms topo faults (result : Synth.result) =
  let health = classify topo faults result in
  let degraded = Fault.apply topo faults in
  (* Replay the healthy schedule's transfers on the degraded fabric: the
     engine reroutes sends whose direct link died (store-and-forward), so
     this is the cost of *not* re-synthesizing. *)
  let replay_time =
    let chunk_size = Spec.chunk_size result.Synth.spec in
    let program = Program.of_schedule ~chunk_size result.Synth.schedule in
    match Engine.run degraded program with
    | report -> Some report.Engine.finish_time
    | exception Failure _ -> None
  in
  let resynth = synthesize ~seed ~trials ?budget_ms ~faults topo result.Synth.spec in
  let resynth_time =
    match resynth with Ok o -> Some o.simulated_time | Error _ -> None
  in
  let advantage =
    match (replay_time, resynth_time) with
    | Some r, Some s when s > 0. -> Some (r /. s)
    | _ -> None
  in
  { health; replay_time; resynth; resynth_time; advantage }
