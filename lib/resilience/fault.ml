(* Namespaces of the substrate libraries. *)
open Tacos_topology
module Rng = Tacos_util.Rng
module Json = Tacos_util.Json

type t =
  | Kill_link of int
  | Degrade_link of { link : int; factor : float }
  | Kill_npu of int

let pp ppf = function
  | Kill_link id -> Format.fprintf ppf "kill-link %d" id
  | Degrade_link { link; factor } ->
    Format.fprintf ppf "degrade-link %d by %gx" link factor
  | Kill_npu v -> Format.fprintf ppf "kill-npu %d" v

let to_string f = Format.asprintf "%a" pp f

let to_json = function
  | Kill_link id ->
    Json.Object [ ("kind", Json.String "kill_link"); ("link", Json.Number (float_of_int id)) ]
  | Degrade_link { link; factor } ->
    Json.Object
      [
        ("kind", Json.String "degrade_link");
        ("link", Json.Number (float_of_int link));
        ("factor", Json.Number factor);
      ]
  | Kill_npu v ->
    Json.Object [ ("kind", Json.String "kill_npu"); ("npu", Json.Number (float_of_int v)) ]

let validate topo faults =
  let n = Topology.num_npus topo and m = Topology.num_links topo in
  let check = function
    | Kill_link id | Degrade_link { link = id; _ } when id < 0 || id >= m ->
      Error (Printf.sprintf "unknown link id %d (topology has %d links)" id m)
    | Degrade_link { factor; _ } when not (factor >= 1.) ->
      Error (Printf.sprintf "degradation factor %g < 1" factor)
    | Kill_npu v when v < 0 || v >= n ->
      Error (Printf.sprintf "unknown NPU %d (topology has %d NPUs)" v n)
    | _ -> Ok ()
  in
  List.fold_left
    (fun acc f -> match acc with Error _ -> acc | Ok () -> check f)
    (Ok ()) faults

let killed_links topo faults =
  let dead = Hashtbl.create 16 in
  List.iter
    (function
      | Kill_link id -> Hashtbl.replace dead id ()
      | Kill_npu v ->
        List.iter
          (fun (e : Topology.edge) -> Hashtbl.replace dead e.id ())
          (Topology.out_edges topo v @ Topology.in_edges topo v)
      | Degrade_link _ -> ())
    faults;
  List.sort compare (Hashtbl.fold (fun id () acc -> id :: acc) dead [])

let degraded_links topo faults =
  let dead = killed_links topo faults in
  let is_dead id = List.mem id dead in
  let factors = Hashtbl.create 16 in
  List.iter
    (function
      | Degrade_link { link; factor } when not (is_dead link) ->
        let prev = Option.value ~default:1. (Hashtbl.find_opt factors link) in
        Hashtbl.replace factors link (prev *. factor)
      | _ -> ())
    faults;
  List.sort compare (Hashtbl.fold (fun id f acc -> (id, f) :: acc) factors [])

let apply topo faults =
  (match validate topo faults with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Fault.apply: " ^ msg));
  let dead = killed_links topo faults in
  let removed = Array.make (Topology.num_links topo) false in
  List.iter (fun id -> removed.(id) <- true) dead;
  let factor = Array.make (Topology.num_links topo) 1. in
  List.iter (fun (id, f) -> factor.(id) <- f) (degraded_links topo faults);
  Topology.map_links topo (fun e ->
      if removed.(e.id) then None
      else if factor.(e.id) = 1. then Some e.link
      else
        let l = e.link in
        Some (Link.make ~alpha:(l.Link.alpha *. factor.(e.id))
                ~beta:(l.Link.beta *. factor.(e.id))))

type connectivity =
  | Connected
  | Disconnected of { survivors : int list; isolated : int list }

let connectivity topo =
  match Topology.strongly_connected_components topo with
  | [ _ ] -> Connected
  | survivors :: rest ->
    Disconnected { survivors; isolated = List.sort compare (List.concat rest) }
  | [] -> Connected (* unreachable: every topology has at least one NPU *)

let pp_connectivity ppf = function
  | Connected -> Format.fprintf ppf "strongly connected"
  | Disconnected { survivors; isolated } ->
    Format.fprintf ppf "disconnected: %d NPUs survive (%s), %d isolated (%s)"
      (List.length survivors)
      (String.concat "," (List.map string_of_int survivors))
      (List.length isolated)
      (String.concat "," (List.map string_of_int isolated))

let disconnecting_fault topo faults =
  if not (Topology.is_strongly_connected topo) then None
  else
    let rec scan applied = function
      | [] -> None
      | f :: rest ->
        let applied = applied @ [ f ] in
        if Topology.is_strongly_connected (apply topo applied) then scan applied rest
        else Some f
    in
    scan [] faults

let timeline ~at topo faults =
  (match validate topo faults with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Fault.timeline: " ^ msg));
  if not (at >= 0.) then invalid_arg "Fault.timeline: fault time must be >= 0";
  (* One timed event per affected healthy link, deduplicated the way [apply]
     deduplicates: a link that is both killed and degraded just dies, and
     repeated kills collapse. Degradations of surviving links keep their
     compound factor as a single event. *)
  let dead = killed_links topo faults in
  let degraded = degraded_links topo faults in
  List.map (fun link -> Tacos_sim.Engine.Link_dies { link; at }) dead
  @ List.map
      (fun (link, factor) -> Tacos_sim.Engine.Link_degrades { link; factor; at })
      degraded

let validate_events topo events =
  let rec check prev_at dead = function
    | [] -> Ok ()
    | (at, faults) :: rest -> (
      if not (at >= 0.) then
        Error (Printf.sprintf "fault time %g is negative" at)
      else if
        (match prev_at with Some p -> not (at > p) | None -> false)
      then
        Error
          (Printf.sprintf "fault times must be strictly increasing (%g after %g)"
             at (Option.get prev_at))
      else
        match validate topo faults with
        | Error msg -> Error (Printf.sprintf "at %g: %s" at msg)
        | Ok () -> (
          let newly = killed_links topo faults in
          match List.find_opt (fun id -> List.mem id dead) newly with
          | Some id ->
            Error
              (Printf.sprintf
                 "at %g: link %d is already dead from an earlier fault" at id)
          | None -> (
            match
              List.find_opt
                (fun (id, _) -> List.mem id dead)
                (degraded_links topo faults)
            with
            | Some (id, _) ->
              Error
                (Printf.sprintf
                   "at %g: link %d cannot degrade, it is already dead" at id)
            | None -> check (Some at) (newly @ dead) rest)))
  in
  check None [] events

let timeline_events topo events =
  (match validate_events topo events with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Fault.timeline_events: " ^ msg));
  List.concat_map (fun (at, faults) -> timeline ~at topo faults) events

let link_id_map topo faults =
  (match validate topo faults with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Fault.link_id_map: " ^ msg));
  let dead = killed_links topo faults in
  let m = Topology.num_links topo in
  let removed = Array.make m false in
  List.iter (fun id -> removed.(id) <- true) dead;
  (* [Topology.map_links] renumbers surviving links densely in healthy-id
     order, so degraded id k is the k-th surviving healthy id. *)
  let survivors = ref [] in
  for id = m - 1 downto 0 do
    if not removed.(id) then survivors := id :: !survivors
  done;
  Array.of_list !survivors

(* --- deterministic samplers ---------------------------------------------- *)

let sample_distinct rng ~universe ~what k =
  if k < 0 then invalid_arg (Printf.sprintf "Fault: negative %s count" what);
  if k > universe then
    invalid_arg
      (Printf.sprintf "Fault: cannot sample %d distinct %ss from %d" k what universe);
  let ids = Array.init universe Fun.id in
  Rng.shuffle_in_place rng ids;
  Array.to_list (Array.sub ids 0 k)

let random_link_kills rng topo k =
  List.map
    (fun id -> Kill_link id)
    (sample_distinct rng ~universe:(Topology.num_links topo) ~what:"link" k)

let random_npu_kills rng topo k =
  List.map
    (fun v -> Kill_npu v)
    (sample_distinct rng ~universe:(Topology.num_npus topo) ~what:"NPU" k)

let random_degradations rng ~factor topo k =
  if not (factor >= 1.) then invalid_arg "Fault.random_degradations: factor < 1";
  List.map
    (fun id -> Degrade_link { link = id; factor })
    (sample_distinct rng ~universe:(Topology.num_links topo) ~what:"link" k)

let random_connected_link_kills ?(attempts = 64) rng topo k =
  let rec try_once i =
    if i >= attempts then None
    else
      let faults = random_link_kills rng topo k in
      if Topology.is_strongly_connected (apply topo faults) then Some faults
      else try_once (i + 1)
  in
  try_once 0
