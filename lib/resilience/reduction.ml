(* Namespaces of the substrate libraries. *)
open Tacos_collective
module Iset = Set.Make (Int)

(* Per-chunk reduction state, replayed from the prefix of a schedule that
   survived a fault. absorbed.(v).(c) is the set of contributing ranks whose
   input the copy of chunk c at NPU v has accumulated:

   - every contributor starts holding exactly its own contribution;
   - a *combining* send spends the source's set when it starts (the source
     promises not to re-send those contributions) and merges it into the
     destination when it finishes;
   - a *pull* send replicates a fully-reduced value: the destination holds
     every contribution once it finishes.

   Sends still in flight at the replay horizon are ignored entirely — repair
   cancels them, so their contributions stay at the source. The invariant
   maintained (for well-formed schedules, which the TACOS mirror construction
   produces) is that per chunk the non-empty absorbed sets partition the
   contributor set: repair can always either combine them or spread the full
   copy. *)

type t = {
  num_chunks : int;
  contributors : Iset.t array;  (* per chunk *)
  absorbed : Iset.t array array;  (* npu x chunk *)
}

let create ~num_npus ~num_chunks ~contributors =
  if num_npus <= 0 then invalid_arg "Reduction.create: num_npus must be positive";
  if num_chunks <= 0 then invalid_arg "Reduction.create: num_chunks must be positive";
  let contrib = Array.make num_chunks Iset.empty in
  let absorbed = Array.make_matrix num_npus num_chunks Iset.empty in
  List.iter
    (fun (v, c) ->
      if v < 0 || v >= num_npus then
        invalid_arg (Printf.sprintf "Reduction.create: contributor NPU %d" v);
      if c < 0 || c >= num_chunks then
        invalid_arg (Printf.sprintf "Reduction.create: contributor chunk %d" c);
      contrib.(c) <- Iset.add v contrib.(c);
      absorbed.(v).(c) <- Iset.add v absorbed.(v).(c))
    contributors;
  { num_chunks; contributors = contrib; absorbed }

type event_kind = Combine_start | Combine_finish | Pull_finish

(* Replay every send that finished by [at] (within the shared tolerance), in
   chronological order with finishes applied before starts at equal times —
   the same ordering [Schedule.validate_reduction] checks, so a valid prefix
   replays without ever splitting a contribution in two places. *)
let replay t ~combining ~pull ~at =
  let eps = Schedule.eps_for at in
  let kept sends = List.filter (fun (s : Schedule.send) -> s.Schedule.finish <= at +. eps) sends in
  let events =
    List.concat_map
      (fun (s : Schedule.send) ->
        [ (s.Schedule.start, 1, Combine_start, s); (s.Schedule.finish, 0, Combine_finish, s) ])
      (kept combining.Schedule.sends)
    @ List.map
        (fun (s : Schedule.send) -> (s.Schedule.finish, 0, Pull_finish, s))
        (kept pull.Schedule.sends)
  in
  let events =
    List.sort
      (fun (t1, p1, _, _) (t2, p2, _, _) ->
        let c = Float.compare t1 t2 in
        if c <> 0 then c else compare p1 p2)
      events
  in
  (* In-flight partials keyed by the unique (edge, start) of the carrying
     send — each link carries one chunk at a time. *)
  let in_flight = Hashtbl.create 16 in
  List.iter
    (fun (_, _, kind, (s : Schedule.send)) ->
      match kind with
      | Combine_start ->
        Hashtbl.replace in_flight (s.Schedule.edge, s.Schedule.start)
          t.absorbed.(s.Schedule.src).(s.Schedule.chunk);
        t.absorbed.(s.Schedule.src).(s.Schedule.chunk) <- Iset.empty
      | Combine_finish ->
        let key = (s.Schedule.edge, s.Schedule.start) in
        let carried =
          match Hashtbl.find_opt in_flight key with
          | Some set -> Hashtbl.remove in_flight key; set
          | None -> Iset.empty (* defensive: start not replayed *)
        in
        t.absorbed.(s.Schedule.dst).(s.Schedule.chunk) <-
          Iset.union carried t.absorbed.(s.Schedule.dst).(s.Schedule.chunk)
      | Pull_finish ->
        t.absorbed.(s.Schedule.dst).(s.Schedule.chunk) <-
          t.contributors.(s.Schedule.chunk))
    events

let is_full t ~npu ~chunk =
  (not (Iset.is_empty t.contributors.(chunk)))
  && Iset.equal t.absorbed.(npu).(chunk) t.contributors.(chunk)

let absorbed t ~npu ~chunk = Iset.elements t.absorbed.(npu).(chunk)

(* Fully-reduced copies, in (npu, chunk) index order. *)
let positions t =
  let acc = ref [] in
  for v = Array.length t.absorbed - 1 downto 0 do
    for c = t.num_chunks - 1 downto 0 do
      if is_full t ~npu:v ~chunk:c then acc := (v, c) :: !acc
    done
  done;
  !acc

(* Strictly-partial non-empty accumulators, in (npu, chunk) index order. *)
let partials t =
  let acc = ref [] in
  for v = Array.length t.absorbed - 1 downto 0 do
    for c = t.num_chunks - 1 downto 0 do
      let set = t.absorbed.(v).(c) in
      if (not (Iset.is_empty set)) && not (Iset.equal set t.contributors.(c)) then
        acc := (v, c, Iset.elements set) :: !acc
    done
  done;
  !acc
