(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective

module Synth := Tacos.Synthesizer
module Algo := Tacos_baselines.Algo
module Engine := Tacos_sim.Engine

(** Graceful degradation around the synthesizer (the paper's §III/§VII
    resilience argument, made operational).

    {!synthesize} never lets {!Tacos.Synthesizer.Stuck} or
    [Unsupported] escape. It walks a documented fallback ladder:

    + synthesize on the (possibly fault-injected) fabric;
    + on [Stuck], retry with a reseeded search, bounded by a retry count
      and a wall-clock budget;
    + when synthesis is out of options, fall back to the best *feasible*
      baseline algorithm ({!Tacos_baselines.Algo.best_feasible});
    + otherwise return a structured {!failure} naming the stage that gave
      up, the surviving component, and — when faults were injected — the
      specific fault that disconnected the fabric.

    Every rung activation is counted in the {!Tacos_obs.Obs} registry
    ([resilience.*] counters), so a fleet running thousands of degraded
    syntheses can see how often it is living on fallbacks. *)

(** {1 Degraded synthesis} *)

type plan =
  | Synthesized of Synth.result
      (** a TACOS schedule for the degraded fabric (verified by the caller
          via {!Tacos.Synthesizer.verify} like any other result) *)
  | Baseline of { algo : Algo.t; report : Engine.report }
      (** no schedule could be synthesized; the named baseline is the best
          feasible stand-in, with its simulated execution *)

type outcome = {
  plan : plan;
  simulated_time : float;
      (** congestion-aware simulated completion time on the degraded fabric
          (the apples-to-apples number: schedules are replayed under the
          same engine the baselines run on) *)
  retries : int;  (** reseeded synthesis attempts beyond the first *)
  rungs : string list;
      (** human-readable ladder rungs activated, in order — ["synthesized"],
          ["reseed(2)"], ["baseline Ring"], ... *)
  wall_seconds : float;
}

type failure = {
  stage : string;  (** ladder stage that gave up: "faults", "connectivity", "synthesis", "baseline" *)
  message : string;
  connectivity : Fault.connectivity;  (** of the degraded fabric *)
  disconnecting : Fault.t option;
      (** first injected fault that broke strong connectivity, when faults
          were given and one did *)
  deadline_slack_ms : float option;
      (** milliseconds left on the effective deadline (budget and/or
          caller deadline) when the ladder gave up — negative when the
          failure was reported past it; [None] when the call was
          unbounded *)
}

val pp_failure : Format.formatter -> failure -> unit

val failure_to_json : failure -> Tacos_util.Json.t

val synthesize :
  ?seed:int ->
  ?trials:int ->
  ?domains:int ->
  ?budget_ms:float ->
  ?deadline:Tacos_util.Deadline.t ->
  ?max_retries:int ->
  ?baselines:Algo.t list ->
  ?faults:Fault.t list ->
  Topology.t ->
  Spec.t ->
  (outcome, failure) result
(** [synthesize topo spec] runs the fallback ladder above. [faults]
    (default none) are applied to [topo] first — pass the healthy topology
    and the fault set rather than pre-degrading, so failures can name the
    disconnecting fault. [max_retries] defaults to 3; [baselines]
    defaults to {!Tacos_baselines.Algo.all}. All-to-All specs dispatch to
    {!Tacos.Alltoall}. [domains] (default 1) parallelizes each attempt's
    trials on the shared {!Tacos_util.Pool}; the ladder's outcome stays
    deterministic for a given [seed]. Never raises [Stuck]/[Unsupported].

    Time bounds are {e cooperative all the way down}: [budget_ms] (default
    unlimited, relative to the call) and [deadline] (default none,
    absolute) combine into an effective deadline — whichever is earlier —
    that is checked before every rung {e and} threaded into each
    synthesis attempt's round loop, so a single oversized trial aborts
    promptly ({!Tacos.Synthesizer.Deadline_exceeded}) instead of
    overshooting the budget unboundedly. An exceeded deadline degrades to
    the best-feasible-baseline rung (counted under
    [resilience.deadline_exceeded]); a structured {!failure} reports the
    remaining slack as [deadline_slack_ms]. *)

val simulated_time : Topology.t -> Synth.result -> float
(** Replay a synthesized schedule under the congestion-aware engine on the
    given fabric (the metric [outcome.simulated_time] reports). *)

(** {1 Degradation analysis (§VII, quantitative)}

    Given a schedule synthesized on the {e healthy} fabric and a fault set,
    classify whether that schedule still makes sense and measure what
    re-synthesis buys — the paper's resilience claim as a number. *)

type health =
  | Intact  (** every link the schedule uses survives at full capability *)
  | Degraded_timing of { links : int list }
      (** all links survive, but the listed (healthy-id) links got slower:
          the schedule's timestamps are stale, though its routes remain
          executable *)
  | Broken of { links : int list; lost_sends : int }
      (** [lost_sends] sends ride the listed dead links: the schedule is
          infeasible as routed and must be rerouted or re-synthesized *)

type analysis = {
  health : health;
  replay_time : float option;
      (** the healthy schedule's sends replayed on the degraded fabric (the
          engine reroutes dead hops store-and-forward); [None] when some
          send's endpoints can no longer reach each other *)
  resynth : (outcome, failure) result;
      (** the fallback ladder run on the degraded fabric *)
  resynth_time : float option;  (** [resynth]'s simulated time, when Ok *)
  advantage : float option;
      (** [replay_time /. resynth_time] — above 1.0, re-synthesis wins *)
}

val analyze :
  ?seed:int ->
  ?trials:int ->
  ?domains:int ->
  ?budget_ms:float ->
  Topology.t ->
  Fault.t list ->
  Synth.result ->
  analysis
(** [analyze healthy_topo faults healthy_result]. *)

val health_to_string : health -> string

(** {1 Mid-flight schedule repair}

    The timed counterpart of {!analyze}: the fault lands at [at] seconds into
    an executing healthy schedule. Instead of discarding the collective,
    {!repair} keeps every send that finished before the fault, replays the
    kept prefix through the {!Reduction} tracker to recover both chunk
    positions {e and} in-flight partial sums, and re-synthesizes only the
    still-unmet remainder as a reduction-aware positional goal
    ({!Tacos.Synthesizer.synthesize_goal_plan}) — over the healthy fabric's
    cached TEN expansion with the dead links masked, so repair stays in the
    healthy link-id space and its search scales with the unmet suffix, not
    the fabric ([synth.repair_ten_reuse] counts the reuse).

    {!repair_timeline} folds the same step over a multi-epoch fault
    timeline, re-repairing the previously repaired composite at each epoch
    ([resilience.epoch.*] counters tally per-epoch strategies). *)

type strategy =
  | Suffix of {
      kept_sends : int;  (** sends of the pre-fault composite that survived *)
      replanned : int;  (** sends in the newly synthesized patch *)
      schedule : Schedule.t;
          (** the patch ([plan]'s phases overlaid): {e healthy}-topology link
              ids, fault-relative times (t = 0 is the fault) *)
      plan : Synth.plan;
          (** the patch split into combining / pull phases — combining sends
              merge surviving partial sums, pull sends spread full copies *)
    }
  | Complete_already
      (** every postcondition was met before the fault — nothing to do *)
  | Full of { reason : string; outcome : outcome }
      (** suffix repair does not apply (no phase split, pairwise semantics,
          or a stuck patch synthesis); the full fallback ladder ran instead *)

type repaired = {
  strategy : strategy;
  completion_time : float;
      (** absolute completion of the patched collective: fault time + the
          repair's simulated time on the degraded fabric (for
          [Complete_already], when the last kept send finished) *)
  synth_wall_seconds : float;  (** wall clock spent re-synthesizing *)
  verified : (unit, string) result;
      (** the composite (kept prefix + patch) re-validated end to end on the
          {e healthy} topology via
          {!Tacos_collective.Schedule.validate_reduction}, with dead links
          forbidden from the fault time onward *)
}

val strategy_name : strategy -> string
(** ["suffix"], ["complete"] or ["full"]. *)

val repair :
  ?seed:int ->
  ?trials:int ->
  ?domains:int ->
  ?budget_ms:float ->
  ?reuse:Tacos_ten.Ten.Expansion.t ->
  at:float ->
  Topology.t ->
  Fault.t list ->
  Synth.result ->
  (repaired, failure) result
(** [repair ~at healthy_topo faults healthy_result]. Suffix repair applies to
    All-Gather, Broadcast, Reduce-Scatter, Reduce, and All-Reduce — including
    faults inside the reduce-scatter phase, whose in-flight partial sums are
    re-seeded as reduction state rather than punted to full re-synthesis.
    All-to-All and rooted Gather/Scatter go through the {!synthesize}
    fallback ladder ([Full]), as does a stuck patch synthesis. [reuse]
    passes a cached {!Tacos_ten.Ten.Expansion} of the healthy topology
    (prepared internally otherwise — share one across repeated repairs). A
    fault set that strands some unmet postcondition yields a structured
    [Error] — never an exception. Raises [Invalid_argument] only on
    [at < 0]. *)

(** {1 Multi-epoch repair} *)

type epoch = { at : float; faults : Fault.t list; repaired : repaired }
(** One fault epoch's structured outcome: what landed at [at] and how the
    then-current composite was repaired. *)

type timeline_repair = {
  epochs : epoch list;  (** per-epoch outcomes, in time order *)
  combining : Schedule.t;
      (** final composite's combining phase: healthy link ids, absolute
          times, spanning kept healthy sends and every epoch's patches *)
  pull : Schedule.t;  (** final composite's pull phase, same clock *)
  schedule : Schedule.t;  (** the two phases overlaid *)
  completion_time : float;  (** the last epoch's completion time *)
  verified : (unit, string) result;
      (** the final composite validated end to end
          ({!Tacos_collective.Schedule.validate_reduction}) with every dead
          link forbidden from its kill time *)
}

val repair_timeline :
  ?seed:int ->
  ?trials:int ->
  ?domains:int ->
  ?budget_ms:float ->
  ?reuse:Tacos_ten.Ten.Expansion.t ->
  events:(float * Fault.t list) list ->
  Topology.t ->
  Synth.result ->
  (timeline_repair, failure) result
(** [repair_timeline ~events healthy_topo healthy_result] folds {!repair}'s
    epoch step over a fault timeline [(at1, faults1); (at2, faults2); ...]
    (validated by {!Fault.validate_events}: non-negative, strictly
    increasing, no epoch re-killing an already-dead link). Each epoch
    recomputes positions and partial sums from the {e repaired} composite of
    the previous epochs and repairs the repaired suffix; fault state (dead,
    slowed, forbidden intervals) accumulates across epochs. A full
    re-synthesis epoch restarts the collective on the degraded fabric and is
    lifted back into healthy link ids so later epochs keep folding; a
    baseline fallback carries no schedule and stops the fold with a
    structured failure. One TEN expansion ([reuse], prepared internally
    otherwise) serves every epoch. Raises [Invalid_argument] on an empty
    [events] list. *)
