(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective

module Synth := Tacos.Synthesizer
module Algo := Tacos_baselines.Algo
module Engine := Tacos_sim.Engine

(** Graceful degradation around the synthesizer (the paper's §III/§VII
    resilience argument, made operational).

    {!synthesize} never lets {!Tacos.Synthesizer.Stuck} or
    [Unsupported] escape. It walks a documented fallback ladder:

    + synthesize on the (possibly fault-injected) fabric;
    + on [Stuck], retry with a reseeded search, bounded by a retry count
      and a wall-clock budget;
    + when synthesis is out of options, fall back to the best *feasible*
      baseline algorithm ({!Tacos_baselines.Algo.best_feasible});
    + otherwise return a structured {!failure} naming the stage that gave
      up, the surviving component, and — when faults were injected — the
      specific fault that disconnected the fabric.

    Every rung activation is counted in the {!Tacos_obs.Obs} registry
    ([resilience.*] counters), so a fleet running thousands of degraded
    syntheses can see how often it is living on fallbacks. *)

(** {1 Degraded synthesis} *)

type plan =
  | Synthesized of Synth.result
      (** a TACOS schedule for the degraded fabric (verified by the caller
          via {!Tacos.Synthesizer.verify} like any other result) *)
  | Baseline of { algo : Algo.t; report : Engine.report }
      (** no schedule could be synthesized; the named baseline is the best
          feasible stand-in, with its simulated execution *)

type outcome = {
  plan : plan;
  simulated_time : float;
      (** congestion-aware simulated completion time on the degraded fabric
          (the apples-to-apples number: schedules are replayed under the
          same engine the baselines run on) *)
  retries : int;  (** reseeded synthesis attempts beyond the first *)
  rungs : string list;
      (** human-readable ladder rungs activated, in order — ["synthesized"],
          ["reseed(2)"], ["baseline Ring"], ... *)
  wall_seconds : float;
}

type failure = {
  stage : string;  (** ladder stage that gave up: "faults", "connectivity", "synthesis", "baseline" *)
  message : string;
  connectivity : Fault.connectivity;  (** of the degraded fabric *)
  disconnecting : Fault.t option;
      (** first injected fault that broke strong connectivity, when faults
          were given and one did *)
}

val pp_failure : Format.formatter -> failure -> unit

val failure_to_json : failure -> Tacos_util.Json.t

val synthesize :
  ?seed:int ->
  ?trials:int ->
  ?domains:int ->
  ?budget_ms:float ->
  ?max_retries:int ->
  ?baselines:Algo.t list ->
  ?faults:Fault.t list ->
  Topology.t ->
  Spec.t ->
  (outcome, failure) result
(** [synthesize topo spec] runs the fallback ladder above. [faults]
    (default none) are applied to [topo] first — pass the healthy topology
    and the fault set rather than pre-degrading, so failures can name the
    disconnecting fault. [budget_ms] (default unlimited) bounds the
    *retry* phase wall clock; [max_retries] defaults to 3; [baselines]
    defaults to {!Tacos_baselines.Algo.all}. All-to-All specs dispatch to
    {!Tacos.Alltoall}. [domains] (default 1) parallelizes each attempt's
    trials on the shared {!Tacos_util.Pool}; the ladder's outcome stays
    deterministic for a given [seed]. Never raises [Stuck]/[Unsupported]. *)

val simulated_time : Topology.t -> Synth.result -> float
(** Replay a synthesized schedule under the congestion-aware engine on the
    given fabric (the metric [outcome.simulated_time] reports). *)

(** {1 Degradation analysis (§VII, quantitative)}

    Given a schedule synthesized on the {e healthy} fabric and a fault set,
    classify whether that schedule still makes sense and measure what
    re-synthesis buys — the paper's resilience claim as a number. *)

type health =
  | Intact  (** every link the schedule uses survives at full capability *)
  | Degraded_timing of { links : int list }
      (** all links survive, but the listed (healthy-id) links got slower:
          the schedule's timestamps are stale, though its routes remain
          executable *)
  | Broken of { links : int list; lost_sends : int }
      (** [lost_sends] sends ride the listed dead links: the schedule is
          infeasible as routed and must be rerouted or re-synthesized *)

type analysis = {
  health : health;
  replay_time : float option;
      (** the healthy schedule's sends replayed on the degraded fabric (the
          engine reroutes dead hops store-and-forward); [None] when some
          send's endpoints can no longer reach each other *)
  resynth : (outcome, failure) result;
      (** the fallback ladder run on the degraded fabric *)
  resynth_time : float option;  (** [resynth]'s simulated time, when Ok *)
  advantage : float option;
      (** [replay_time /. resynth_time] — above 1.0, re-synthesis wins *)
}

val analyze :
  ?seed:int ->
  ?trials:int ->
  ?domains:int ->
  ?budget_ms:float ->
  Topology.t ->
  Fault.t list ->
  Synth.result ->
  analysis
(** [analyze healthy_topo faults healthy_result]. *)

val health_to_string : health -> string

(** {1 Mid-flight schedule repair}

    The timed counterpart of {!analyze}: the fault lands at [at] seconds into
    an executing healthy schedule. Instead of discarding the collective,
    {!repair} keeps every send that finished before the fault, computes the
    actual chunk positions at that instant, and re-synthesizes only the
    still-unmet postconditions as a positional goal
    ({!Tacos.Synthesizer.synthesize_goal}) on the degraded fabric — the cheap
    alternative to full re-synthesis that the ROADMAP's incremental-repair
    item calls for. *)

type strategy =
  | Suffix of { kept_sends : int; replanned : int; schedule : Schedule.t }
      (** the suffix patch: [kept_sends] healthy sends survived, [replanned]
          deliveries were re-synthesized. [schedule] uses {e degraded}-
          topology link ids and fault-relative times (t = 0 is the fault). *)
  | Complete_already
      (** every postcondition was met before the fault — nothing to do *)
  | Full of { reason : string; outcome : outcome }
      (** suffix repair does not apply (combining phase in flight, no phase
          split, pairwise semantics); the full fallback ladder ran instead *)

type repaired = {
  strategy : strategy;
  completion_time : float;
      (** absolute completion of the patched collective: fault time + the
          repair's simulated time on the degraded fabric (for
          [Complete_already], when the last kept send finished) *)
  synth_wall_seconds : float;  (** wall clock spent re-synthesizing *)
  verified : (unit, string) result;
      (** the repaired schedule re-validated against the positions at the
          fault time ({!Tacos_collective.Schedule.validate_positioned}) *)
}

val strategy_name : strategy -> string
(** ["suffix"], ["complete"] or ["full"]. *)

val repair :
  ?seed:int ->
  ?trials:int ->
  ?domains:int ->
  ?budget_ms:float ->
  at:float ->
  Topology.t ->
  Fault.t list ->
  Synth.result ->
  (repaired, failure) result
(** [repair ~at healthy_topo faults healthy_result]. Suffix repair applies to
    the pull patterns (All-Gather, Broadcast) and to an All-Reduce whose
    fault lands after the reduce-scatter phase (the All-Gather suffix is
    patched); everything else goes through the {!synthesize} fallback ladder
    ([Full]). A fault set that strands some unmet postcondition yields a
    structured [Error] with [stage = "repair"] — never an exception. Raises
    [Invalid_argument] only on [at < 0]. *)
