(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective

(** Explicit Time-expanded Network (§IV-A, Figs. 6-7).

    A TEN replicates the topology's NPUs across discrete time spans; each
    physical link becomes one edge per span, and a collective algorithm is a
    set of link-chunk matches — each TEN edge carrying at most one chunk
    (§IV-B). This module materializes that structure for homogeneous
    topologies, where all links share one cost and the spans are uniform.

    The event-driven synthesizer in [lib/core] generalizes this to
    heterogeneous links without materializing the graph; this explicit form
    is used for representation, rendering (the figures' grids), and for
    cross-checking the synthesizer on homogeneous inputs. *)

type t

val create : ?spans:int -> Topology.t -> span_cost:float -> t
(** An empty TEN over [topo] with uniform span duration [span_cost],
    initially expanded to [spans] (default 0) spans. *)

val topology : t -> Topology.t
val spans : t -> int
val span_cost : t -> float

val expand : t -> unit
(** Append one more time span (Alg. 2's expansion step). *)

val occupant : t -> span:int -> edge:int -> int option
(** The chunk matched on a TEN edge, if any. *)

val match_chunk : t -> span:int -> edge:int -> chunk:int -> unit
(** Record a link-chunk match. Raises [Invalid_argument] if the edge is
    already occupied in that span or the span is not yet expanded. *)

val utilization : t -> span:int -> float
(** Fraction of links matched in one span. *)

val of_schedule : Topology.t -> span_cost:float -> Schedule.t -> t
(** Discretize a schedule produced on a homogeneous topology whose uniform
    link cost is [span_cost]: a send over \[t, t+cost\] becomes a match in
    span [t / span_cost]. Raises [Invalid_argument] if a send does not align
    with the span grid (within floating-point tolerance) or double-books a
    TEN edge. *)

val to_schedule : t -> Schedule.t
(** The inverse of [of_schedule]. *)

val render : ?max_links:int -> t -> string
(** ASCII grid: one row per physical link, one column per time span, each
    cell the matched chunk (or [.]). Rows beyond [max_links] (default 64)
    are elided. *)
