(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective

(** Explicit Time-expanded Network (§IV-A, Figs. 6-7).

    A TEN replicates the topology's NPUs across discrete time spans; each
    physical link becomes one edge per span, and a collective algorithm is a
    set of link-chunk matches — each TEN edge carrying at most one chunk
    (§IV-B). This module materializes that structure for homogeneous
    topologies, where all links share one cost and the spans are uniform.

    The event-driven synthesizer in [lib/core] generalizes this to
    heterogeneous links without materializing the graph; this explicit form
    is used for representation, rendering (the figures' grids), and for
    cross-checking the synthesizer on homogeneous inputs. *)

type t

val create : ?spans:int -> Topology.t -> span_cost:float -> t
(** An empty TEN over [topo] with uniform span duration [span_cost],
    initially expanded to [spans] (default 0) spans. *)

val topology : t -> Topology.t
val spans : t -> int
val span_cost : t -> float

val expand : t -> unit
(** Append one more time span (Alg. 2's expansion step). *)

val occupant : t -> span:int -> edge:int -> int option
(** The chunk matched on a TEN edge, if any. *)

val match_chunk : t -> span:int -> edge:int -> chunk:int -> unit
(** Record a link-chunk match. Raises [Invalid_argument] if the edge is
    already occupied in that span or the span is not yet expanded. *)

val utilization : t -> span:int -> float
(** Fraction of links matched in one span. *)

val of_schedule : Topology.t -> span_cost:float -> Schedule.t -> t
(** Discretize a schedule produced on a homogeneous topology whose uniform
    link cost is [span_cost]: a send over \[t, t+cost\] becomes a match in
    span [t / span_cost]. Raises [Invalid_argument] if a send does not align
    with the span grid (within floating-point tolerance) or double-books a
    TEN edge. *)

val to_schedule : t -> Schedule.t
(** The inverse of [of_schedule]. *)

val render : ?max_links:int -> t -> string
(** ASCII grid: one row per physical link, one column per time span, each
    cell the matched chunk (or [.]). Rows beyond [max_links] (default 64)
    are elided. *)

(** Cached expansion state for repeated synthesis over one fabric.

    The event-driven synthesizer expands the TEN implicitly but still
    materializes O(links) arrays per trial: per-link endpoints, α/β
    parameters, and the adjacency index its feasibility check walks.
    [Expansion.prepare] hoists that state out of the trial loop so a caller
    that synthesizes many times over the same topology — mid-flight repair
    re-planning the suffix after every fault epoch — reuses one expansion
    instead of rebuilding it per call, and can express dead links as a mask
    over the {e healthy} link-id space rather than a renumbered degraded
    topology copy. *)
module Expansion : sig
  type t

  val prepare : Topology.t -> t
  (** Snapshot [topo]'s per-link and per-NPU structure. The topology must not
      gain links afterwards (existing topologies are frozen in practice). *)

  val topology : t -> Topology.t
  val num_links : t -> int
  val num_npus : t -> int

  val src : t -> int array
  (** Per link id: source NPU. The returned arrays are the expansion's own
      state — callers must not mutate them (copy before scaling costs). *)

  val dst : t -> int array
  val alpha : t -> float array
  val beta : t -> float array

  val out_links : t -> int array array
  (** Per NPU: outgoing link ids, in topology insertion order. *)

  val in_links : t -> int array array

  val cost : t -> chunk_size:float -> int -> float
  (** α-β cost of moving one chunk over a link. *)

  val reversed : t -> t
  (** The reversed-topology view (link ids preserved, endpoints swapped),
      built lazily once and cached — [reversed (reversed t) == t]. Used by
      combining-phase synthesis, which runs the pull loop on the mirror. *)
end
