(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective

type t = {
  topo : Topology.t;
  span_cost : float;
  mutable grid : int option array list; (* one array (per edge) per span, reversed *)
  mutable num_spans : int;
}

let create ?(spans = 0) topo ~span_cost =
  if span_cost <= 0. then invalid_arg "Ten.create: span_cost must be positive";
  let t = { topo; span_cost; grid = []; num_spans = 0 } in
  for _ = 1 to spans do
    t.grid <- Array.make (Topology.num_links topo) None :: t.grid;
    t.num_spans <- t.num_spans + 1
  done;
  t

let topology t = t.topo
let spans t = t.num_spans
let span_cost t = t.span_cost

let expand t =
  t.grid <- Array.make (Topology.num_links t.topo) None :: t.grid;
  t.num_spans <- t.num_spans + 1

let span_array t span =
  if span < 0 || span >= t.num_spans then invalid_arg "Ten: span out of range";
  List.nth t.grid (t.num_spans - 1 - span)

let occupant t ~span ~edge =
  let a = span_array t span in
  if edge < 0 || edge >= Array.length a then invalid_arg "Ten: edge out of range";
  a.(edge)

let match_chunk t ~span ~edge ~chunk =
  let a = span_array t span in
  if edge < 0 || edge >= Array.length a then invalid_arg "Ten: edge out of range";
  match a.(edge) with
  | Some _ -> invalid_arg "Ten.match_chunk: edge already occupied in this span"
  | None -> a.(edge) <- Some chunk

let utilization t ~span =
  let a = span_array t span in
  let occupied = Array.fold_left (fun n -> function Some _ -> n + 1 | None -> n) 0 a in
  float_of_int occupied /. float_of_int (Array.length a)

let of_schedule topo ~span_cost sched =
  let tol = 1e-6 *. span_cost in
  let span_of time =
    let s = time /. span_cost in
    let rounded = Float.round s in
    if Float.abs (s -. rounded) > 1e-6 then
      invalid_arg "Ten.of_schedule: send not aligned with the span grid";
    int_of_float rounded
  in
  let t = create topo ~span_cost in
  List.iter
    (fun (s : Schedule.send) ->
      if Float.abs (s.finish -. s.start -. span_cost) > tol then
        invalid_arg "Ten.of_schedule: send duration differs from the span cost";
      let span = span_of s.start in
      while spans t <= span do
        expand t
      done;
      match_chunk t ~span ~edge:s.edge ~chunk:s.chunk)
    sched.Schedule.sends;
  t

let to_schedule t =
  let sends = ref [] in
  List.iteri
    (fun rev_idx a ->
      let span = t.num_spans - 1 - rev_idx in
      Array.iteri
        (fun edge_id occ ->
          match occ with
          | None -> ()
          | Some chunk ->
            let e = Topology.edge t.topo edge_id in
            let start = float_of_int span *. t.span_cost in
            sends :=
              {
                Schedule.chunk;
                edge = edge_id;
                src = e.Topology.src;
                dst = e.Topology.dst;
                start;
                finish = start +. t.span_cost;
              }
              :: !sends)
        a)
    t.grid;
  Schedule.make !sends

(* --- cached expansion state ------------------------------------------------

   The event-driven synthesizer expands the TEN implicitly, but it still pays
   an O(links) materialization per trial: per-link endpoint and α/β arrays
   plus the adjacency index the feasibility check walks. [Expansion] hoists
   that state out so a caller that synthesizes repeatedly over one fabric —
   mid-flight repair re-planning the suffix after every fault epoch — reuses
   the healthy topology's expansion instead of rebuilding it, and expresses
   dead links as a mask over the *healthy* link-id space (no degraded copy,
   no id renumbering). *)

module Expansion = struct
  type t = {
    topo : Topology.t;
    src : int array;  (* per healthy link id *)
    dst : int array;
    alpha : float array;
    beta : float array;
    out_links : int array array;  (* per NPU: outgoing link ids, insertion order *)
    in_links : int array array;  (* per NPU: incoming link ids, insertion order *)
    mutable rev : t option;  (* lazily-built reversed view (ids preserved) *)
  }

  let prepare topo =
    let n = Topology.num_npus topo and m = Topology.num_links topo in
    let src = Array.make m 0
    and dst = Array.make m 0
    and alpha = Array.make m 0.
    and beta = Array.make m 0. in
    let out_links = Array.make n [||] and in_links = Array.make n [||] in
    List.iter
      (fun (e : Topology.edge) ->
        src.(e.id) <- e.src;
        dst.(e.id) <- e.dst;
        alpha.(e.id) <- e.link.Link.alpha;
        beta.(e.id) <- e.link.Link.beta)
      (Topology.edges topo);
    for v = 0 to n - 1 do
      out_links.(v) <-
        Array.of_list
          (List.map (fun (e : Topology.edge) -> e.id) (Topology.out_edges topo v));
      in_links.(v) <-
        Array.of_list
          (List.map (fun (e : Topology.edge) -> e.id) (Topology.in_edges topo v))
    done;
    { topo; src; dst; alpha; beta; out_links; in_links; rev = None }

  let topology t = t.topo
  let num_links t = Array.length t.src
  let num_npus t = Array.length t.out_links
  let src t = t.src
  let dst t = t.dst
  let alpha t = t.alpha
  let beta t = t.beta
  let out_links t = t.out_links
  let in_links t = t.in_links

  let cost t ~chunk_size e = t.alpha.(e) +. (t.beta.(e) *. chunk_size)

  let reversed t =
    match t.rev with
    | Some r -> r
    | None ->
      let r =
        {
          topo = Topology.reverse t.topo;
          src = t.dst;
          dst = t.src;
          alpha = t.alpha;
          beta = t.beta;
          out_links = t.in_links;
          in_links = t.out_links;
          rev = Some t;
        }
      in
      t.rev <- Some r;
      r
end

let render ?(max_links = 64) t =
  let buf = Buffer.create 1024 in
  let nlinks = Topology.num_links t.topo in
  let shown = min nlinks max_links in
  let cell_width =
    (* wide enough for the largest chunk id seen *)
    let max_chunk =
      List.fold_left
        (fun acc a ->
          Array.fold_left (fun acc -> function Some c -> max acc c | None -> acc) acc a)
        0 t.grid
    in
    max 2 (String.length (string_of_int max_chunk))
  in
  let label e =
    let e = Topology.edge t.topo e in
    Printf.sprintf "%3d->%-3d" e.Topology.src e.Topology.dst
  in
  Buffer.add_string buf (String.make 9 ' ');
  for span = 0 to t.num_spans - 1 do
    Buffer.add_string buf (Printf.sprintf "|t=%-*d" cell_width span)
  done;
  Buffer.add_string buf "|\n";
  for e = 0 to shown - 1 do
    Buffer.add_string buf (Printf.sprintf "%8s " (label e));
    for span = 0 to t.num_spans - 1 do
      let cell =
        match occupant t ~span ~edge:e with
        | Some c -> string_of_int c
        | None -> "."
      in
      Buffer.add_string buf (Printf.sprintf "|%*s " cell_width cell)
    done;
    Buffer.add_string buf "|\n"
  done;
  if shown < nlinks then
    Buffer.add_string buf (Printf.sprintf "... (%d more links)\n" (nlinks - shown));
  Buffer.contents buf
