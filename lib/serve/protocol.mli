module Json := Tacos_util.Json
module Sketch := Tacos_sketch.Sketch

(** The wire format of the synthesis service: line-framed JSON.

    One request per line in, one response line out, in order. Requests are
    JSON objects; the [id] member (any JSON value) is echoed verbatim on
    the response so pipelined clients can correlate. Responses always
    carry a [status] member: ["ok"], ["error"], or ["overloaded"].

    A synthesize request looks like

    {v
    {"id":1,"op":"synthesize","topology":"mesh:3x3","pattern":"all-reduce",
     "size":"16MB","chunks":2,"deadline_ms":500,"fail_links":[3]}
    v}

    and its response like

    {v
    {"id":1,"status":"ok","cached":false,"degraded":false,
     "algorithm":"tacos","collective_time":...,"sends":96,"elapsed_ms":...}
    v} *)

type op =
  | Synthesize  (** synthesize (or fetch) a schedule for a (topology, spec) *)
  | Tune  (** sweep chunk granularities and answer with the fastest *)
  | Export
      (** synthesize, then embed the schedule itself — as the JSON
          algorithm document or the SNIPPETS §1 CSV interchange schema *)
  | Ping  (** liveness probe; bypasses admission control *)
  | Stats  (** serving counters; bypasses admission control *)
  | Metrics
      (** Prometheus text exposition of the telemetry registry; bypasses
          admission control (a saturated server must still be scrapable) *)

type request = {
  id : Json.t;  (** echoed on the response; [Null] when absent *)
  op : op;
  topology : string option;  (** {!Tacos_collective.Parse.parse_topology} syntax *)
  pattern : string;  (** pattern name (default ["all-gather"]) *)
  size : float;  (** collective buffer bytes (default 1 MB) *)
  chunks : int;  (** chunks per NPU (default 1) *)
  seed : int option;  (** overrides the service seed *)
  deadline_ms : float option;
      (** request deadline relative to admission; absent = the service's
          configured default (absent there too = unbounded) *)
  fail_links : int list;  (** healthy link ids to kill before synthesis *)
  candidates : int list option;  (** tune: granularities to sweep *)
  sketch : Sketch.t option;
      (** communication sketch constraining the synthesis, in the
          {!Tacos_sketch.Sketch} JSON rule format (embedded as a JSON
          value, not a string). Parse errors are reported at the protocol
          edge; infeasibility against the concrete topology surfaces as a
          structured [error] response from the service. *)
  format : [ `Json | `Csv ];  (** export flavor (default [`Json]) *)
  prefix : string option;
      (** metrics: only expose families whose rendered name starts with
          this prefix (e.g. ["tacos_serve_"]) *)
}

val parse_request : string -> (request, Json.t * string) result
(** Parse one request line. [Error (id, message)] carries whatever [id]
    could be recovered (for the error response) and a human-readable
    reason. Accepts [size] as a byte count (JSON number) or a size string
    (["16MB"]). *)

val response : id:Json.t -> status:string -> (string * Json.t) list -> string
(** Encode one single-line response: [{"id":…,"status":…,…fields}]. *)
