module Deadline := Tacos_util.Deadline
module Topology := Tacos_topology.Topology
module Spec := Tacos_collective.Spec
module Synth := Tacos.Synthesizer
module Registry := Tacos.Registry

(** The synthesis service: a persistent, deadline-aware front end over the
    schedule {!Tacos.Registry}.

    One {!t} holds the shared cache and the serving counters; transports
    ([tacos serve --stdio] / [--socket]) feed it request lines from any
    number of threads and write back the response line {!handle_line}
    returns. The request lifecycle is robust end to end:

    - {e admission}: at most [queue_limit] requests are in flight; beyond
      that, requests are shed immediately with a structured
      [overloaded] response carrying a retry-after hint (an EMA of recent
      request latencies), never queued unboundedly.
    - {e coalescing}: identical concurrent misses collapse into one
      synthesis through the registry's single-flight path; a synthesis
      that raises releases the key, so a later retry is clean.
    - {e deadlines}: each request's [deadline_ms] (or the configured
      default) is propagated as a cooperative check into the synthesizer's
      round loop. When it expires mid-synthesis the service {e degrades
      gracefully}: it answers with the best feasible baseline via the
      {!Tacos_resilience.Resilience} ladder, tagged [degraded:true],
      instead of timing out. Cache hits are served even past the deadline
      — they are effectively free.
    - {e crash safety}: registry disk entries are checksummed and written
      atomically; corrupt files found on load are quarantined to
      [*.corrupt] and re-synthesized, never fatal.

    Every lifecycle event is counted twice: in always-on plain counters
    ({!stats}, for assertions and the [stats] op) and in the off-by-default
    [serve.*] {!Tacos_obs.Obs} registry (for profiles and bench rows).

    On top of the counters sits the telemetry layer: every request's
    end-to-end latency lands in a per-verb {!Tacos_obs.Quantile} sketch
    (with queue-wait, synthesis, and export stage sketches alongside),
    {!metrics} renders the whole registry as Prometheus text (also served
    by the [metrics] protocol verb), and a configurable access-log sink
    receives one logfmt record per request — stamped with the monotonic
    span since server start, so bursts of sheds and deadline expiries are
    reconstructible on a timeline. *)

type config = {
  queue_limit : int;  (** max in-flight requests before shedding (default 16) *)
  domains : int;  (** worker domains for miss synthesis (default 1) *)
  trials : int;  (** randomized trials per synthesis (default 1) *)
  default_deadline_ms : float option;
      (** deadline for requests that carry none (default: unbounded) *)
  registry_dir : string option;  (** persistent cache directory *)
  max_disk_bytes : int option;
      (** disk cap for the persistent cache: past it, the oldest-mtime
          entries are evicted after every write (counted in {!stats} and
          as [tacos_registry_evicted_total]). Default: unbounded. *)
  seed : int;  (** seed for requests that carry none (default 42) *)
  access_log : (string -> unit) option;
      (** per-request logfmt record sink (default none). Records look like
          [t=12.081310 id=7 verb=synthesize outcome=hit elapsed_ms=0.113
          deadline_ms=500 slack_ms=499.887 bytes_out=133]: the monotonic
          span since server start, the echoed request id ([-] when
          absent), the verb ([invalid] for unparseable lines), the
          lifecycle outcome ([hit], [miss], [degraded], [shed], [error],
          or [ok] for control verbs), latency, the applied deadline and
          the slack left at completion (present only when a deadline
          applied), and the response size. Calls are serialized by the
          service; the sink itself need not be thread-safe. *)
}

val default_config : config

type backend =
  deadline:Deadline.t option ->
  sketch:Synth.constraints option ->
  seed:int ->
  domains:int ->
  Topology.t ->
  Spec.t ->
  Synth.result
(** The synthesis function run on a cache miss. The default dispatches
    routed patterns to {!Tacos.Router} and the rest to
    {!Tacos.Synthesizer.synthesize} with the deadline and the compiled
    communication sketch threaded through (and refuses routed syntheses
    whose deadline already passed, raising
    {!Tacos.Synthesizer.Deadline_exceeded}; sketched routed requests are
    rejected upstream at sketch compilation). Tests and benches inject
    stubs — a backend that blocks, fails once, or sleeps. *)

type t

val create : ?config:config -> ?synthesize:backend -> unit -> t
(** A fresh service. Safe to drive from multiple threads/domains. *)

val registry : t -> Registry.t
(** The underlying schedule cache (shared, single-flight). *)

type stats = {
  accepted : int;  (** requests admitted past the queue gate *)
  shed : int;  (** requests refused with [overloaded] *)
  hits : int;  (** answered from the cache (memory, disk, or coalesced) *)
  misses : int;  (** answered by running a synthesis *)
  degraded : int;  (** answered [degraded:true] via a baseline fallback *)
  deadline_missed : int;  (** requests whose deadline expired before an answer *)
  errors : int;  (** error responses (malformed, infeasible, internal) *)
  quarantined : int;  (** corrupt cache files set aside by this service's registry *)
  evicted : int;  (** cache files deleted to stay under the disk cap *)
  inflight : int;  (** requests currently past admission *)
  uptime_seconds : float;  (** monotonic span since [create] *)
  entries : int;  (** schedules cached in memory *)
  disk : Registry.disk_usage;  (** disk store size accounting *)
}

val stats : t -> stats

val uptime_seconds : t -> float
(** Monotonic seconds since [create] — the epoch of access-log [t=]
    stamps and metrics flushes. *)

val metrics : ?prefix:string -> t -> string
(** The telemetry registry as a Prometheus text-exposition document (it
    passes {!Tacos_obs.Expo.validate}): always-on serving families —
    [tacos_serve_requests_total{outcome=...}], per-verb
    [tacos_serve_latency_ms{verb=...}] quantile summaries, queue-wait /
    synthesis / export stage summaries, uptime, inflight, and the
    [tacos_registry_*] size gauges — followed by every metric registered
    in {!Tacos_obs.Obs}. [prefix] keeps only families whose rendered name
    starts with it. Also served by the [metrics] protocol verb (which
    bypasses admission: a saturated server must still be scrapable). *)

val handle_line : t -> string -> string
(** Process one request line, returning the one response line (no trailing
    newline). Never raises: malformed input, infeasible fabrics, expired
    deadlines, and internal errors all map to structured responses.

    Every call additionally records the request's end-to-end latency into
    the per-verb quantile sketches and, when [config.access_log] is set,
    emits one logfmt access record. *)
