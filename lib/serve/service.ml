(* Namespaces of the substrate libraries. *)
module Json = Tacos_util.Json
module Deadline = Tacos_util.Deadline
module Clock = Tacos_util.Clock
module Logfmt = Tacos_util.Logfmt
module Obs = Tacos_obs.Obs
module Quantile = Tacos_obs.Quantile
module Expo = Tacos_obs.Expo
module Topology = Tacos_topology.Topology
module Link = Tacos_topology.Link
module Spec = Tacos_collective.Spec
module Pattern = Tacos_collective.Pattern
module Schedule = Tacos_collective.Schedule
module Parse = Tacos_collective.Parse
module Synth = Tacos.Synthesizer
module Router = Tacos.Router
module Registry = Tacos.Registry
module Tuner = Tacos.Tuner
module Engine = Tacos_sim.Engine
module Algo = Tacos_baselines.Algo
module Resilience = Tacos_resilience.Resilience
module Fault = Tacos_resilience.Fault
module Sketch = Tacos_sketch.Sketch

(* Obs mirrors of the lifecycle counters — off by default like the rest of
   the obs registry; the plain mutable counters below are always on so the
   bench can assert on them without enabling observability. *)
let c_accepted = Obs.counter "serve.accepted"
let c_shed = Obs.counter "serve.shed"
let c_hits = Obs.counter "serve.hits"
let c_misses = Obs.counter "serve.misses"
let c_degraded = Obs.counter "serve.degraded"
let c_deadline_missed = Obs.counter "serve.deadline_missed"
let c_errors = Obs.counter "serve.errors"

(* Registry size accounting (the input signal of the disk-cap eviction in
   [Registry]): running-max gauges refreshed on every stats/metrics
   render. *)
let g_reg_entries = Obs.gauge "registry.entries"
let g_reg_disk_bytes = Obs.gauge "registry.disk_bytes"

type config = {
  queue_limit : int;
  domains : int;
  trials : int;
  default_deadline_ms : float option;
  registry_dir : string option;
  max_disk_bytes : int option;
  seed : int;
  access_log : (string -> unit) option;
}

let default_config =
  {
    queue_limit = 16;
    domains = 1;
    trials = 1;
    default_deadline_ms = None;
    registry_dir = None;
    max_disk_bytes = None;
    seed = 42;
    access_log = None;
  }

type backend =
  deadline:Deadline.t option ->
  sketch:Synth.constraints option ->
  seed:int ->
  domains:int ->
  Topology.t ->
  Spec.t ->
  Synth.result

(* The verbs latency sketches and access-log records are keyed by. *)
let verbs = [ "synthesize"; "tune"; "export"; "ping"; "stats"; "metrics" ]

let verb_name = function
  | Protocol.Synthesize -> "synthesize"
  | Protocol.Tune -> "tune"
  | Protocol.Export -> "export"
  | Protocol.Ping -> "ping"
  | Protocol.Stats -> "stats"
  | Protocol.Metrics -> "metrics"

type t = {
  config : config;
  registry : Registry.t;
  backend : backend;
  started : Clock.span;  (** server birth — the access log's monotonic epoch *)
  lock : Mutex.t;
  log_lock : Mutex.t;  (** serializes the access-log sink, never nested in [lock] *)
  mutable inflight : int;
  mutable ema_ms : float;  (** latency EMA — the [overloaded] retry hint *)
  mutable accepted : int;
  mutable shed : int;
  mutable hits : int;
  mutable misses : int;
  mutable degraded : int;
  mutable deadline_missed : int;
  mutable errors : int;
  (* Latency sketches, all in milliseconds, guarded by [lock]. *)
  lat_by_verb : (string * Quantile.t) list;  (** end-to-end, per verb *)
  q_queue_wait : Quantile.t;  (** request start -> admission decision *)
  q_synthesis : Quantile.t;  (** time inside the miss backend *)
  q_export : Quantile.t;  (** schedule serialization (export requests) *)
}

type stats = {
  accepted : int;
  shed : int;
  hits : int;
  misses : int;
  degraded : int;
  deadline_missed : int;
  errors : int;
  quarantined : int;
  evicted : int;
  inflight : int;
  uptime_seconds : float;
  entries : int;
  disk : Registry.disk_usage;
}

(* The default miss backend: routed patterns have no round loop to poll,
   so an already-expired deadline refuses them up front — the caller
   degrades exactly as it would for a pull synthesis that ran out of
   time. *)
let default_backend ~trials ~deadline ~sketch ~seed ~domains topo
    (spec : Spec.t) =
  match spec.Spec.pattern with
  | Pattern.All_to_all | Pattern.Gather _ | Pattern.Scatter _ ->
    (* Sketched routed requests never reach here: sketch compilation
       rejects routed patterns up front with Unsupported_pattern. *)
    (match deadline with
    | Some d when Deadline.expired d -> raise Synth.Deadline_exceeded
    | _ -> ());
    Router.synthesize ~seed topo spec
  | _ -> Synth.synthesize ~seed ~trials ~domains ?deadline ?sketch topo spec

let create ?(config = default_config) ?synthesize () =
  if config.queue_limit <= 0 then
    invalid_arg "Service.create: queue_limit must be positive";
  let backend =
    match synthesize with
    | Some f -> f
    | None -> default_backend ~trials:config.trials
  in
  {
    config;
    registry =
      Registry.create ?dir:config.registry_dir
        ?max_disk_bytes:config.max_disk_bytes ();
    backend;
    started = Clock.start ();
    lock = Mutex.create ();
    log_lock = Mutex.create ();
    inflight = 0;
    ema_ms = 0.;
    accepted = 0;
    shed = 0;
    hits = 0;
    misses = 0;
    degraded = 0;
    deadline_missed = 0;
    errors = 0;
    lat_by_verb = List.map (fun v -> (v, Quantile.create ())) verbs;
    q_queue_wait = Quantile.create ();
    q_synthesis = Quantile.create ();
    q_export = Quantile.create ();
  }

let registry t = t.registry
let uptime_seconds t = Clock.elapsed t.started

let stats t =
  let disk = Registry.disk_usage t.registry in
  let entries = Registry.entries t.registry in
  Obs.observe_max g_reg_entries (float_of_int entries);
  Obs.observe_max g_reg_disk_bytes (float_of_int disk.Registry.disk_bytes);
  Mutex.lock t.lock;
  let s =
    {
      accepted = t.accepted;
      shed = t.shed;
      hits = t.hits;
      misses = t.misses;
      degraded = t.degraded;
      deadline_missed = t.deadline_missed;
      errors = t.errors;
      quarantined = Registry.quarantined t.registry;
      evicted = Registry.evicted t.registry;
      inflight = t.inflight;
      uptime_seconds = uptime_seconds t;
      entries;
      disk;
    }
  in
  Mutex.unlock t.lock;
  s

let bump t obs set =
  Mutex.lock t.lock;
  set t;
  Mutex.unlock t.lock;
  Obs.incr obs

let elapsed_ms t0 = Clock.elapsed t0 *. 1e3

let record_ms t q ms =
  Mutex.lock t.lock;
  Quantile.add q ms;
  Mutex.unlock t.lock

let respond = Protocol.response

let error_response t ~id ?failure msg =
  bump t c_errors (fun t -> t.errors <- t.errors + 1);
  respond ~id ~status:"error"
    (("message", Json.String msg)
    ::
    (match failure with Some f -> [ ("failure", f) ] | None -> []))

(* --- export flavors ------------------------------------------------------ *)

(* The CSV interchange schema of SNIPPETS.md §1 (the original artifact's
   output): sizing/timing header rows, then one row per link with its
   chunk occupancy as "id:send_ns:recv_ns" cells. *)
let csv_of_result topo (result : Synth.result) =
  let spec = result.Synth.spec in
  let buf = Buffer.create 1024 in
  let row cells =
    Buffer.add_string buf (String.concat "," cells);
    Buffer.add_char buf '\n'
  in
  let ns s = s *. 1e9 in
  row [ "NPUs Count"; string_of_int (Topology.num_npus topo) ];
  row [ "Links Count"; string_of_int (Topology.num_links topo) ];
  row [ "Chunks Count"; string_of_int (Spec.num_chunks spec) ];
  row [ "Chunk Size"; Printf.sprintf "%.17g" (Spec.chunk_size spec) ];
  row [ "Collective Time"; Printf.sprintf "%.0f" (ns result.Synth.collective_time); "ns" ];
  row [ "Synthesis Time"; Printf.sprintf "%.6f" result.Synth.stats.Synth.wall_seconds; "s" ];
  row [ "SrcID"; "DestID"; "Latency (ns)"; "Bandwidth (GB/s)"; "Chunks (ID:ns:ns)" ];
  let per_edge = Array.make (Topology.num_links topo) [] in
  List.iter
    (fun (s : Schedule.send) ->
      per_edge.(s.Schedule.edge) <- s :: per_edge.(s.Schedule.edge))
    result.Synth.schedule.Schedule.sends;
  List.iter
    (fun (e : Topology.edge) ->
      let chunks =
        List.sort
          (fun (a : Schedule.send) (b : Schedule.send) ->
            compare (a.Schedule.start, a.Schedule.chunk)
              (b.Schedule.start, b.Schedule.chunk))
          per_edge.(e.id)
        |> List.map (fun (s : Schedule.send) ->
               Printf.sprintf "%d:%.0f:%.0f" s.Schedule.chunk (ns s.Schedule.start)
                 (ns s.Schedule.finish))
      in
      row
        ([
           string_of_int e.src;
           string_of_int e.dst;
           Printf.sprintf "%.0f" (ns (Link.cost e.link 0.));
           Printf.sprintf "%g" (Link.bandwidth e.link /. 1e9);
         ]
        @ chunks))
    (Topology.edges topo);
  Buffer.contents buf

let schedule_fields t (req : Protocol.request) topo (result : Synth.result) =
  match req.Protocol.op with
  | Protocol.Export ->
    let s = Clock.start () in
    let fields =
      match req.Protocol.format with
      | `Json ->
        let text = Schedule.to_json ~spec:result.Synth.spec result.Synth.schedule in
        let doc = Result.value ~default:(Json.String text) (Json.parse text) in
        [ ("schedule", doc) ]
      | `Csv -> [ ("csv", Json.String (csv_of_result topo result)) ]
    in
    record_ms t t.q_export (elapsed_ms s);
    fields
  | _ -> []

(* --- the collective ops -------------------------------------------------- *)

let ok_fields ~t0 ~cached ~degraded ~algorithm ~collective_time ~sends extra =
  [
    ("cached", Json.Bool cached);
    ("degraded", Json.Bool degraded);
    ("algorithm", Json.String algorithm);
    ("collective_time", Json.Number collective_time);
    ("sends", Json.Number (float_of_int sends));
  ]
  @ extra
  @ [ ("elapsed_ms", Json.Number (elapsed_ms t0)) ]

(* Graceful degradation: the answer of last resort when a synthesis ran
   out of time (or got stuck). The Resilience ladder is called with the
   *healthy* topology plus the fault set — its pre-attempt deadline gate
   skips straight to the best *feasible* baseline when the deadline has
   passed, so this path is bounded work — and the response is tagged
   [degraded:true]. Degraded results are deliberately not cached: a later
   request with headroom should synthesize the real schedule. *)
let degrade t ~id ~t0 ~healthy ~faults ~deadline ~seed ~spec ~deadline_missed =
  if deadline_missed then
    bump t c_deadline_missed (fun t -> t.deadline_missed <- t.deadline_missed + 1);
  match
    Resilience.synthesize ~seed ~trials:t.config.trials ~domains:t.config.domains
      ?deadline ~faults healthy spec
  with
  | Ok { Resilience.plan = Resilience.Baseline { algo; report }; _ } ->
    bump t c_degraded (fun t -> t.degraded <- t.degraded + 1);
    let slack =
      match deadline with
      | Some d -> [ ("deadline_slack_ms", Json.Number (Deadline.slack_ms d)) ]
      | None -> []
    in
    respond ~id ~status:"ok"
      (ok_fields ~t0 ~cached:false ~degraded:true ~algorithm:(Algo.name algo)
         ~collective_time:report.Engine.finish_time ~sends:0 slack)
  | Ok { Resilience.plan = Resilience.Synthesized result; _ } ->
    (* The ladder got a schedule out after all (e.g. a reseed landed). *)
    respond ~id ~status:"ok"
      (ok_fields ~t0 ~cached:false ~degraded:false ~algorithm:"tacos"
         ~collective_time:result.Synth.collective_time
         ~sends:(Schedule.num_sends result.Synth.schedule)
         [])
  | Error failure ->
    error_response t ~id
      ~failure:(Resilience.failure_to_json failure)
      (Format.asprintf "%a" Resilience.pp_failure failure)

let handle_synthesize t (req : Protocol.request) ~t0 ~healthy ~work_topo ~faults
    ~deadline ~seed ~spec ~sketch =
  let id = req.Protocol.id in
  let answer ~cached (result : Synth.result) =
    if cached then bump t c_hits (fun t -> t.hits <- t.hits + 1)
    else bump t c_misses (fun t -> t.misses <- t.misses + 1);
    respond ~id ~status:"ok"
      (ok_fields ~t0 ~cached ~degraded:false ~algorithm:"tacos"
         ~collective_time:result.Synth.collective_time
         ~sends:(Schedule.num_sends result.Synth.schedule)
         (schedule_fields t req work_topo result))
  in
  (* Sketched requests get their own cache line: the sketch digest becomes
     the registry key variant, so constrained and unconstrained schedules
     for the same (topology, spec) never alias. *)
  let variant = Option.map (fun (sk, _) -> Sketch.digest sk) sketch in
  let constraints = Option.map snd sketch in
  (* Cache peek first: hits are served even past the deadline — answering
     from memory is cheaper than degrading. *)
  match Registry.find_cached ?variant t.registry work_topo spec with
  | Some result -> answer ~cached:true result
  | None -> (
    let synthesize ~seed ~domains topo spec =
      let s = Clock.start () in
      Fun.protect
        ~finally:(fun () -> record_ms t t.q_synthesis (elapsed_ms s))
        (fun () -> t.backend ~deadline ~sketch:constraints ~seed ~domains topo spec)
    in
    match
      Registry.find_or_synthesize ~seed ~domains:t.config.domains ~synthesize
        ?variant t.registry work_topo spec
    with
    | result, `Hit -> answer ~cached:true result
    | result, `Miss -> answer ~cached:false result
    | exception Synth.Deadline_exceeded ->
      degrade t ~id ~t0 ~healthy ~faults ~deadline ~seed ~spec
        ~deadline_missed:true
    | exception (Synth.Stuck _ | Synth.Unsupported _) ->
      (* The single-flight key was released on the raise, so a retry on a
         healthier fabric is clean; meanwhile fall back structurally. *)
      degrade t ~id ~t0 ~healthy ~faults ~deadline ~seed ~spec
        ~deadline_missed:false)

let handle_tune t (req : Protocol.request) ~t0 ~healthy ~work_topo ~faults
    ~deadline ~seed ~spec ~pattern =
  let id = req.Protocol.id in
  let synthesize ~seed topo spec =
    (* Compiled per candidate: pin chunk ids are validated against each
       candidate's own chunk space. *)
    let sketch =
      Option.map (fun sk -> Sketch.compile topo spec sk) req.Protocol.sketch
    in
    let s = Clock.start () in
    Fun.protect
      ~finally:(fun () -> record_ms t t.q_synthesis (elapsed_ms s))
      (fun () ->
        t.backend ~deadline ~sketch ~seed ~domains:t.config.domains topo spec)
  in
  match
    Tuner.tune ~seed ?candidates:req.Protocol.candidates ~synthesize work_topo
      ~pattern ~size:req.Protocol.size
  with
  | choice ->
    bump t c_misses (fun t -> t.misses <- t.misses + 1);
    respond ~id ~status:"ok"
      (ok_fields ~t0 ~cached:false ~degraded:false ~algorithm:"tacos"
         ~collective_time:choice.Tuner.simulated_time
         ~sends:(Schedule.num_sends choice.Tuner.result.Synth.schedule)
         [
           ( "chunks_per_npu",
             Json.Number (float_of_int choice.Tuner.chunks_per_npu) );
         ])
  | exception Synth.Deadline_exceeded ->
    degrade t ~id ~t0 ~healthy ~faults ~deadline ~seed ~spec
      ~deadline_missed:true
  | exception (Synth.Stuck _ | Synth.Unsupported _) ->
    degrade t ~id ~t0 ~healthy ~faults ~deadline ~seed ~spec
      ~deadline_missed:false
  | exception Sketch.Infeasible off ->
    error_response t ~id ("sketch: " ^ Sketch.offender_to_string off)
  | exception Invalid_argument msg -> error_response t ~id ("tune: " ^ msg)

let handle_collective t (req : Protocol.request) ~t0 =
  let id = req.Protocol.id in
  match req.Protocol.topology with
  | None -> error_response t ~id "missing topology"
  | Some desc -> (
    match Parse.parse_topology desc with
    | Error e -> error_response t ~id ("topology: " ^ e)
    | Ok healthy -> (
      let npus = Topology.num_npus healthy in
      match Parse.parse_pattern req.Protocol.pattern npus with
      | Error e -> error_response t ~id ("pattern: " ^ e)
      | Ok pattern -> (
        match
          Spec.make ~chunks_per_npu:req.Protocol.chunks
            ~buffer_size:req.Protocol.size ~pattern ~npus ()
        with
        | exception Invalid_argument msg -> error_response t ~id msg
        | spec -> (
          let faults =
            List.map (fun l -> Fault.Kill_link l) req.Protocol.fail_links
          in
          match Fault.validate healthy faults with
          | Error e -> error_response t ~id ("fail_links: " ^ e)
          | Ok () -> (
            (* The registry keys on the fabric actually served — the
               degraded copy when links were killed — while the Resilience
               fallback gets the healthy topology + fault set so failures
               can name the disconnecting fault. *)
            let work_topo =
              if faults = [] then healthy else Fault.apply healthy faults
            in
            let deadline_ms =
              match req.Protocol.deadline_ms with
              | Some _ as d -> d
              | None -> t.config.default_deadline_ms
            in
            let deadline = Option.map Deadline.after_ms deadline_ms in
            let seed = Option.value ~default:t.config.seed req.Protocol.seed in
            match req.Protocol.op with
            | Protocol.Tune ->
              handle_tune t req ~t0 ~healthy ~work_topo ~faults ~deadline ~seed
                ~spec ~pattern
            | _ -> (
              (* Validate the sketch against the fabric actually served,
                 before any cache or synthesis work: infeasibility is a
                 typed, structured answer, not a late Stuck. *)
              let sketched =
                match req.Protocol.sketch with
                | None -> Ok None
                | Some sk -> (
                  match Sketch.check work_topo spec sk with
                  | Ok c -> Ok (Some (sk, c))
                  | Error off -> Error off)
              in
              match sketched with
              | Error off ->
                error_response t ~id
                  ("sketch: " ^ Sketch.offender_to_string off)
              | Ok sketch ->
                handle_synthesize t req ~t0 ~healthy ~work_topo ~faults
                  ~deadline ~seed ~spec ~sketch))))))

(* --- telemetry rendering -------------------------------------------------- *)

let quantile_fields q =
  ("count", Json.Number (float_of_int (Quantile.count q)))
  :: List.map
       (fun (p, v) -> (Printf.sprintf "p%g" (p *. 100.), Json.Number v))
       (Quantile.summary q)

(* Per-verb quantile summaries for the stats response: only verbs that
   have seen traffic appear. *)
let latency_json t =
  Mutex.lock t.lock;
  let fields =
    List.filter_map
      (fun (verb, q) ->
        if Quantile.count q = 0 then None
        else Some (verb, Json.Object (quantile_fields q)))
      t.lat_by_verb
  in
  Mutex.unlock t.lock;
  Json.Object fields

let stats_fields t st =
  [
    ("accepted", Json.Number (float_of_int st.accepted));
    ("shed", Json.Number (float_of_int st.shed));
    ("hits", Json.Number (float_of_int st.hits));
    ("misses", Json.Number (float_of_int st.misses));
    ("degraded", Json.Number (float_of_int st.degraded));
    ("deadline_missed", Json.Number (float_of_int st.deadline_missed));
    ("errors", Json.Number (float_of_int st.errors));
    ("quarantined", Json.Number (float_of_int st.quarantined));
    ("evicted", Json.Number (float_of_int st.evicted));
    ("inflight", Json.Number (float_of_int st.inflight));
    ("uptime_seconds", Json.Number st.uptime_seconds);
    ( "registry",
      Json.Object
        [
          ("entries", Json.Number (float_of_int st.entries));
          ("disk_entries", Json.Number (float_of_int st.disk.Registry.disk_entries));
          ("disk_corrupt", Json.Number (float_of_int st.disk.Registry.disk_corrupt));
          ("disk_bytes", Json.Number (float_of_int st.disk.Registry.disk_bytes));
        ] );
    ("latency_ms", latency_json t);
  ]

(* The exposition families owned by the service itself. These read the
   always-on plain counters, so a scrape is meaningful (and the bench can
   assert on it) even when the Obs registry is disabled. *)
let service_families t =
  let st = stats t in
  let gauge name help v = Expo.family ~name ~help ~kind:Expo.Gauge [ Expo.sample v ] in
  let outcome name v = Expo.sample ~labels:[ ("outcome", name) ] (float_of_int v) in
  let requests =
    Expo.family ~name:"tacos_serve_requests_total"
      ~help:"Requests by lifecycle outcome since server start." ~kind:Expo.Counter
      [
        outcome "accepted" st.accepted;
        outcome "shed" st.shed;
        outcome "hit" st.hits;
        outcome "miss" st.misses;
        outcome "degraded" st.degraded;
        outcome "deadline_missed" st.deadline_missed;
        outcome "error" st.errors;
      ]
  in
  let quarantined =
    Expo.family ~name:"tacos_registry_quarantined_total"
      ~help:"Corrupt cache files quarantined since server start." ~kind:Expo.Counter
      [ Expo.sample (float_of_int st.quarantined) ]
  in
  let evicted =
    Expo.family ~name:"tacos_registry_evicted_total"
      ~help:"Cache files deleted to stay under the disk cap since server start."
      ~kind:Expo.Counter
      [ Expo.sample (float_of_int st.evicted) ]
  in
  Mutex.lock t.lock;
  let verb_samples =
    List.concat_map
      (fun (verb, q) ->
        if Quantile.count q = 0 then []
        else
          (Expo.of_quantile ~name:"tacos_serve_latency_ms" ~help:""
             ~labels:[ ("verb", verb) ] q)
            .Expo.samples)
      t.lat_by_verb
  in
  let stage name help q = Expo.of_quantile ~name ~help q in
  let stages =
    [
      stage "tacos_serve_queue_wait_ms"
        "Request start to admission decision (milliseconds)." t.q_queue_wait;
      stage "tacos_serve_synthesis_ms"
        "Time inside the miss-path synthesis backend (milliseconds)." t.q_synthesis;
      stage "tacos_serve_export_ms"
        "Schedule serialization time for export requests (milliseconds)." t.q_export;
    ]
  in
  Mutex.unlock t.lock;
  [
    gauge "tacos_serve_uptime_seconds" "Seconds since server start." st.uptime_seconds;
    gauge "tacos_serve_inflight" "Requests currently past admission."
      (float_of_int st.inflight);
    requests;
    Expo.family ~name:"tacos_serve_latency_ms"
      ~help:"End-to-end request latency by verb (milliseconds)." ~kind:Expo.Summary
      verb_samples;
  ]
  @ stages
  @ [
      gauge "tacos_registry_entries" "Schedules cached in memory."
        (float_of_int st.entries);
      gauge "tacos_registry_disk_entries" "Live cache entry files on disk."
        (float_of_int st.disk.Registry.disk_entries);
      gauge "tacos_registry_disk_corrupt" "Quarantined *.corrupt files on disk."
        (float_of_int st.disk.Registry.disk_corrupt);
      gauge "tacos_registry_disk_bytes"
        "Disk bytes held by the cache, quarantined files included."
        (float_of_int st.disk.Registry.disk_bytes);
      quarantined;
      evicted;
    ]

let metrics ?prefix t =
  let families = service_families t @ Expo.of_obs () in
  let families =
    match prefix with
    | None -> families
    | Some p ->
      List.filter
        (fun f -> String.starts_with ~prefix:p (Expo.sanitize_name f.Expo.name))
        families
  in
  Expo.render families

(* --- access log ----------------------------------------------------------- *)

let id_string = function
  | Json.Null -> "-"
  | Json.String s -> s
  | j -> Json.encode j

(* The outcome an operator greps for, recovered from the response itself so
   the log can never disagree with what the client saw. *)
let classify op response =
  match Json.parse response with
  | Error _ -> "error"
  | Ok doc -> (
    let flag k = match Json.member k doc with Some (Json.Bool b) -> b | _ -> false in
    match Option.bind (Json.member "status" doc) Json.to_string with
    | Some "overloaded" -> "shed"
    | Some "ok" -> (
      match op with
      | Some (Protocol.Synthesize | Protocol.Tune | Protocol.Export) ->
        if flag "degraded" then "degraded"
        else if flag "cached" then "hit"
        else "miss"
      | _ -> "ok")
    | Some _ | None -> "error")

let access_log_line t ~t0 ~id ~verb ~deadline_ms ~outcome ~response =
  match t.config.access_log with
  | None -> ()
  | Some sink ->
    let ms = elapsed_ms t0 in
    let pairs =
      [
        (* Monotonic span since server start: bursts of sheds and deadline
           expiries stay reconstructible on a timeline. *)
        ("t", Printf.sprintf "%.6f" (uptime_seconds t));
        ("id", id_string id);
        ("verb", verb);
        ("outcome", outcome);
        ("elapsed_ms", Printf.sprintf "%.3f" ms);
      ]
      @ (match deadline_ms with
        | Some d ->
          [
            ("deadline_ms", Printf.sprintf "%g" d);
            ("slack_ms", Printf.sprintf "%.3f" (d -. ms));
          ]
        | None -> [])
      @ [ ("bytes_out", string_of_int (String.length response)) ]
    in
    let line = Logfmt.encode pairs in
    Mutex.lock t.log_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.log_lock) (fun () -> sink line)

(* --- request lifecycle --------------------------------------------------- *)

let handle_request t (req : Protocol.request) ~t0 =
  match req.Protocol.op with
  | Protocol.Ping ->
    respond ~id:req.Protocol.id ~status:"ok" [ ("pong", Json.Bool true) ]
  | Protocol.Stats ->
    respond ~id:req.Protocol.id ~status:"ok" (stats_fields t (stats t))
  | Protocol.Metrics ->
    respond ~id:req.Protocol.id ~status:"ok"
      [
        ("uptime_seconds", Json.Number (uptime_seconds t));
        ("metrics", Json.String (metrics ?prefix:req.Protocol.prefix t));
      ]
  | Protocol.Synthesize | Protocol.Tune | Protocol.Export -> (
      (* Bounded admission: beyond [queue_limit] in-flight requests, shed
         with a structured reply and a retry hint instead of queueing
         unboundedly behind syntheses that take seconds. *)
      let admitted =
        Mutex.lock t.lock;
        if t.inflight >= t.config.queue_limit then begin
          t.shed <- t.shed + 1;
          let hint = Float.max 1. t.ema_ms in
          Mutex.unlock t.lock;
          Obs.incr c_shed;
          Error hint
        end
        else begin
          t.inflight <- t.inflight + 1;
          t.accepted <- t.accepted + 1;
          Mutex.unlock t.lock;
          Obs.incr c_accepted;
          Ok ()
        end
      in
      record_ms t t.q_queue_wait (elapsed_ms t0);
      match admitted with
      | Error retry_after_ms ->
        respond ~id:req.Protocol.id ~status:"overloaded"
          [ ("retry_after_ms", Json.Number retry_after_ms) ]
      | Ok () ->
        Fun.protect
          ~finally:(fun () ->
            Mutex.lock t.lock;
            t.inflight <- t.inflight - 1;
            let ms = elapsed_ms t0 in
            t.ema_ms <-
              (if t.ema_ms = 0. then ms else (0.8 *. t.ema_ms) +. (0.2 *. ms));
            Mutex.unlock t.lock)
          (fun () ->
            (* The last line of defense: a request must never take the
               server down. Anything unexpected maps to a structured
               error response. *)
            try handle_collective t req ~t0 with
            | e ->
              error_response t ~id:req.Protocol.id
                ("internal error: " ^ Printexc.to_string e)))

let handle_line t line =
  let t0 = Clock.start () in
  let parsed = Protocol.parse_request line in
  let response =
    match parsed with
    | Error (id, msg) -> error_response t ~id msg
    | Ok req -> handle_request t req ~t0
  in
  let verb, id, op, deadline_ms =
    match parsed with
    | Error (id, _) -> ("invalid", id, None, None)
    | Ok req ->
      let deadline_ms =
        match req.Protocol.op with
        | Protocol.Synthesize | Protocol.Tune | Protocol.Export -> (
          match req.Protocol.deadline_ms with
          | Some _ as d -> d
          | None -> t.config.default_deadline_ms)
        | _ -> None
      in
      (verb_name req.Protocol.op, req.Protocol.id, Some req.Protocol.op, deadline_ms)
  in
  (match List.assoc_opt verb t.lat_by_verb with
  | Some q -> record_ms t q (elapsed_ms t0)
  | None -> ());
  access_log_line t ~t0 ~id ~verb ~deadline_ms ~outcome:(classify op response)
    ~response;
  response
