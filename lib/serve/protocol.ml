module Json = Tacos_util.Json
module Parse = Tacos_collective.Parse
module Sketch = Tacos_sketch.Sketch

type op = Synthesize | Tune | Export | Ping | Stats | Metrics

type request = {
  id : Json.t;
  op : op;
  topology : string option;
  pattern : string;
  size : float;
  chunks : int;
  seed : int option;
  deadline_ms : float option;
  fail_links : int list;
  candidates : int list option;
  sketch : Sketch.t option;
  format : [ `Json | `Csv ];
  prefix : string option;
}

(* Binding-operator sugar for the field-by-field validation below: each
   step either extracts a value or short-circuits with the message that
   goes straight into the error response. *)
let ( let* ) = Result.bind

let int_list doc name =
  match Json.member name doc with
  | None -> Ok None
  | Some (Json.Array xs) ->
    let rec ints acc = function
      | [] -> Ok (Some (List.rev acc))
      | x :: rest -> (
        match Json.to_int x with
        | Some i -> ints (i :: acc) rest
        | None -> Error (name ^ " must be an array of integers"))
    in
    ints [] xs
  | Some _ -> Error (name ^ " must be an array of integers")

let parse_request line =
  match Json.parse line with
  | Error e -> Error (Json.Null, "not JSON: " ^ e)
  | Ok (Json.Object _ as doc) -> (
    let id = Option.value ~default:Json.Null (Json.member "id" doc) in
    let str name = Option.bind (Json.member name doc) Json.to_string in
    let parsed =
      let* op =
        match str "op" with
        | None -> (
          match Json.member "op" doc with
          | None -> Error "missing op"
          | Some _ -> Error "op must be a string")
        | Some "synthesize" -> Ok Synthesize
        | Some "tune" -> Ok Tune
        | Some "export" -> Ok Export
        | Some "ping" -> Ok Ping
        | Some "stats" -> Ok Stats
        | Some "metrics" -> Ok Metrics
        | Some other -> Error ("unknown op: " ^ other)
      in
      let* size =
        match Json.member "size" doc with
        | None -> Ok 1e6
        | Some (Json.Number b) when b > 0. -> Ok b
        | Some (Json.String s) -> Parse.parse_size s
        | Some _ -> Error "size must be positive bytes or a size string"
      in
      let* chunks =
        match Json.member "chunks" doc with
        | None -> Ok 1
        | Some j -> (
          match Json.to_int j with
          | Some c when c > 0 -> Ok c
          | _ -> Error "chunks must be a positive integer")
      in
      let* seed =
        match Json.member "seed" doc with
        | None -> Ok None
        | Some j -> (
          match Json.to_int j with
          | Some s -> Ok (Some s)
          | None -> Error "seed must be an integer")
      in
      let* deadline_ms =
        match Json.member "deadline_ms" doc with
        | None -> Ok None
        | Some j -> (
          match Json.to_float j with
          | Some d -> Ok (Some d)
          | None -> Error "deadline_ms must be a number")
      in
      let* fail_links = int_list doc "fail_links" in
      let* candidates = int_list doc "candidates" in
      let* sketch =
        match Json.member "sketch" doc with
        | None -> Ok None
        | Some j -> (
          match Sketch.of_json_value j with
          | Ok s -> Ok (Some s)
          | Error e -> Error ("sketch: " ^ e))
      in
      let* format =
        match str "format" with
        | None | Some "json" -> Ok `Json
        | Some "csv" -> Ok `Csv
        | Some other -> Error ("unknown format: " ^ other)
      in
      let* prefix =
        match Json.member "prefix" doc with
        | None -> Ok None
        | Some (Json.String s) -> Ok (Some s)
        | Some _ -> Error "prefix must be a string"
      in
      Ok
        {
          id;
          op;
          topology = str "topology";
          pattern = Option.value ~default:"all-gather" (str "pattern");
          size;
          chunks;
          seed;
          deadline_ms;
          fail_links = Option.value ~default:[] fail_links;
          candidates;
          sketch;
          format;
          prefix;
        }
    in
    match parsed with Ok r -> Ok r | Error msg -> Error (id, msg))
  | Ok _ -> Error (Json.Null, "request must be a JSON object")

let response ~id ~status fields =
  Json.encode
    (Json.Object (("id", id) :: ("status", Json.String status) :: fields))
