(** Static shortest-path routing over a topology.

    Topology-unaware baselines (Direct, RHD, DBT, a logical ring mapped onto
    an arbitrary physical network, ...) schedule transfers between NPU pairs
    that may not share a physical link; the simulator routes each such
    transfer over the static min-cost path, hop by hop (store-and-forward),
    which is what exposes the over/undersubscription the paper measures
    (Fig. 1, Fig. 2a).

    Path costs use the α-β link model at a given message size, so latency- vs
    bandwidth-dominated routing regimes are both represented. *)

type table

val build : Topology.t -> size:float -> table
(** All-pairs next-hop table via one Dijkstra per destination. Raises
    [Failure] if the topology is not strongly connected. *)

val build_partial : Topology.t -> size:float -> table
(** Like {!build} but tolerates unreachable pairs — the table over a fabric
    degraded by mid-flight link failures, where some NPUs may have become
    unreachable. Query unreachable pairs with {!reachable}/{!path_opt};
    {!path}/{!next_hop} on them raise. *)

val reachable : table -> src:int -> dst:int -> bool
(** Whether the table holds a finite-cost route. Always true on a table from
    {!build}. *)

val next_hop : table -> src:int -> dst:int -> int
(** The neighbor [src] forwards to on the way to [dst]. Meaningless (raises
    [Invalid_argument]) when [src = dst]. *)

val path : table -> src:int -> dst:int -> int list
(** Node sequence from [src] to [dst], inclusive; [[src]] when equal.
    Raises [Failure] when [dst] is unreachable (partial tables only). *)

val path_opt : table -> src:int -> dst:int -> int list option
(** [path] as an option: [None] when the table holds no route. *)

val path_cost : table -> src:int -> dst:int -> float
(** Total min-path cost at the table's message size. *)

val hop_count : table -> src:int -> dst:int -> int
