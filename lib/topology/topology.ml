type edge = { id : int; src : int; dst : int; link : Link.t }

type dim_kind =
  | Ring_dim
  | Mesh_dim
  | Fully_connected_dim
  | Switch_dim of int

type dim = { kind : dim_kind; size : int; link : Link.t }

type t = {
  name : string;
  n : int;
  mutable edges_rev : edge list;
  mutable num_edges : int;
  mutable out_adj : edge list array; (* in insertion order after freeze *)
  mutable in_adj : edge list array;
  mutable edge_arr : edge array option; (* built lazily, invalidated on add *)
  mutable hier : dim array option;
  mutable ring_embeddings : int array list option;
  mutable cuts : int list list;
}

let create ?(name = "topology") n =
  if n <= 0 then invalid_arg "Topology.create: need at least one NPU";
  {
    name;
    n;
    edges_rev = [];
    num_edges = 0;
    out_adj = Array.make n [];
    in_adj = Array.make n [];
    edge_arr = None;
    hier = None;
    ring_embeddings = None;
    cuts = [];
  }

let name t = t.name
let num_npus t = t.n
let num_links t = t.num_edges

let add_link t ~src ~dst link =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Topology.add_link: endpoint out of range";
  if src = dst then invalid_arg "Topology.add_link: self-loop";
  let e = { id = t.num_edges; src; dst; link } in
  t.edges_rev <- e :: t.edges_rev;
  t.num_edges <- t.num_edges + 1;
  t.out_adj.(src) <- e :: t.out_adj.(src);
  t.in_adj.(dst) <- e :: t.in_adj.(dst);
  t.edge_arr <- None;
  e.id

let add_bidir t a b link =
  ignore (add_link t ~src:a ~dst:b link);
  ignore (add_link t ~src:b ~dst:a link)

let edge_array t =
  match t.edge_arr with
  | Some a -> a
  | None ->
    let a = Array.make t.num_edges { id = 0; src = 0; dst = 0; link = Link.default } in
    List.iter (fun e -> a.(e.id) <- e) t.edges_rev;
    t.edge_arr <- Some a;
    a

let edge t id =
  if id < 0 || id >= t.num_edges then invalid_arg "Topology.edge: id out of range";
  (edge_array t).(id)

let edges t = Array.to_list (edge_array t)
let out_edges t v = List.rev t.out_adj.(v)
let in_edges t v = List.rev t.in_adj.(v)

let find_links t ~src ~dst =
  List.filter (fun e -> e.dst = dst) (out_edges t src)

let is_strongly_connected t =
  if t.n = 1 then true
  else begin
    let fwd =
      let seen = Array.make t.n false in
      let rec visit v =
        if not seen.(v) then begin
          seen.(v) <- true;
          List.iter (fun e -> visit e.dst) t.out_adj.(v)
        end
      in
      visit 0;
      seen
    in
    let bwd =
      let seen = Array.make t.n false in
      let rec visit v =
        if not seen.(v) then begin
          seen.(v) <- true;
          List.iter (fun e -> visit e.src) t.in_adj.(v)
        end
      in
      visit 0;
      seen
    in
    Array.for_all Fun.id fwd && Array.for_all Fun.id bwd
  end

(* Kosaraju: forward DFS finish order, then reverse-graph DFS in reverse
   finish order peels off one component per root. *)
let strongly_connected_components t =
  let finish = ref [] in
  let seen = Array.make t.n false in
  let rec visit v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter (fun e -> visit e.dst) t.out_adj.(v);
      finish := v :: !finish
    end
  in
  for v = 0 to t.n - 1 do
    visit v
  done;
  let comp = Array.make t.n (-1) in
  let components = ref [] in
  let rec collect c v acc =
    comp.(v) <- c;
    List.fold_left
      (fun acc e -> if comp.(e.src) < 0 then collect c e.src acc else acc)
      (v :: acc) t.in_adj.(v)
  in
  let c = ref 0 in
  List.iter
    (fun v ->
      if comp.(v) < 0 then begin
        components := List.sort compare (collect !c v []) :: !components;
        incr c
      end)
    !finish;
  (* Largest first; ties by smallest member, so the result is canonical. *)
  List.sort
    (fun a b ->
      match compare (List.length b) (List.length a) with
      | 0 -> compare a b
      | n -> n)
    !components

let reverse t =
  let r = create ~name:(t.name ^ "-reversed") t.n in
  (* Preserve edge ids: re-add in id order with flipped endpoints. *)
  Array.iter
    (fun e -> ignore (add_link r ~src:e.dst ~dst:e.src e.link))
    (edge_array t);
  r.hier <- t.hier;
  r

let map_links ?name t f =
  let name = match name with Some n -> n | None -> t.name ^ "-degraded" in
  let t' = create ~name t.n in
  Array.iter
    (fun e ->
      match f e with
      | Some link -> ignore (add_link t' ~src:e.src ~dst:e.dst link)
      | None -> ())
    (edge_array t);
  (* Structural metadata survives (the NPU numbering is unchanged); ring
     embeddings name physical paths that may no longer exist, so they are
     invalidated by design. *)
  t'.hier <- t.hier;
  t'.cuts <- t.cuts;
  t'

let without_links t ids =
  List.iter
    (fun id ->
      if id < 0 || id >= t.num_edges then
        invalid_arg "Topology.without_links: unknown link id")
    ids;
  let removed = Array.make t.num_edges false in
  List.iter (fun id -> removed.(id) <- true) ids;
  map_links t (fun e -> if removed.(e.id) then None else Some e.link)

let set_hierarchy t dims =
  let product = Array.fold_left (fun acc d -> acc * d.size) 1 dims in
  if product <> t.n then invalid_arg "Topology.set_hierarchy: dims do not multiply to NPU count";
  t.hier <- Some dims

let hierarchy t = t.hier

let require_hierarchy t =
  match t.hier with
  | Some h -> h
  | None -> invalid_arg "Topology: no hierarchy recorded"

let coords t v =
  let dims = require_hierarchy t in
  let c = Array.make (Array.length dims) 0 in
  let rest = ref v in
  Array.iteri
    (fun i d ->
      c.(i) <- !rest mod d.size;
      rest := !rest / d.size)
    dims;
  c

let of_coords t c =
  let dims = require_hierarchy t in
  if Array.length c <> Array.length dims then
    invalid_arg "Topology.of_coords: rank mismatch";
  let v = ref 0 in
  for i = Array.length dims - 1 downto 0 do
    if c.(i) < 0 || c.(i) >= dims.(i).size then
      invalid_arg "Topology.of_coords: coordinate out of range";
    v := (!v * dims.(i).size) + c.(i)
  done;
  !v

let dim_group t ~dim v =
  let dims = require_hierarchy t in
  if dim < 0 || dim >= Array.length dims then invalid_arg "Topology.dim_group";
  let c = coords t v in
  List.init dims.(dim).size (fun k ->
      let c' = Array.copy c in
      c'.(dim) <- k;
      of_coords t c')

let set_rings t rings = t.ring_embeddings <- Some rings
let rings t = t.ring_embeddings
let set_cut_hints t cuts = t.cuts <- cuts
let cut_hints t = t.cuts

let ingress_bandwidth_of t subset =
  let inside = Array.make t.n false in
  List.iter
    (fun v ->
      if v < 0 || v >= t.n then invalid_arg "Topology.ingress_bandwidth_of";
      inside.(v) <- true)
    subset;
  List.fold_left
    (fun acc (e : edge) ->
      if inside.(e.dst) && not inside.(e.src) then acc +. Link.bandwidth e.link
      else acc)
    0. (edges t)

let fold_nodes t f init =
  let acc = ref init in
  for v = 0 to t.n - 1 do
    acc := f !acc v
  done;
  !acc

let min_dir_bandwidth (adj : edge list array) t =
  fold_nodes t
    (fun acc v ->
      let bw =
        List.fold_left (fun s (e : edge) -> s +. Link.bandwidth e.link) 0. adj.(v)
      in
      Float.min acc bw)
    infinity

let min_ingress_bandwidth t = min_dir_bandwidth t.in_adj t
let min_egress_bandwidth t = min_dir_bandwidth t.out_adj t

let total_bandwidth t =
  List.fold_left (fun s (e : edge) -> s +. Link.bandwidth e.link) 0. (edges t)

(* Dijkstra over α costs from one source; returns the distance array. *)
let alpha_distances t src =
  let dist = Array.make t.n infinity in
  dist.(src) <- 0.;
  let module Pq = Set.Make (struct
    type t = float * int

    let compare = compare
  end) in
  let pq = ref (Pq.singleton (0., src)) in
  while not (Pq.is_empty !pq) do
    let ((d, v) as elt) = Pq.min_elt !pq in
    pq := Pq.remove elt !pq;
    if d <= dist.(v) then
      List.iter
        (fun (e : edge) ->
          let nd = d +. e.link.Link.alpha in
          if nd < dist.(e.dst) then begin
            dist.(e.dst) <- nd;
            pq := Pq.add (nd, e.dst) !pq
          end)
        t.out_adj.(v)
  done;
  dist

let diameter_latency t =
  fold_nodes t
    (fun acc src ->
      let dist = alpha_distances t src in
      Array.fold_left
        (fun acc d ->
          if d = infinity then failwith "Topology.diameter_latency: not strongly connected"
          else Float.max acc d)
        acc dist)
    0.

let pp ppf t =
  Format.fprintf ppf "%s: %d NPUs, %d links" t.name t.n t.num_edges

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n" t.name);
  Buffer.add_string buf "  node [shape=circle];\n";
  (* Collapse a bidirectional pair into one edge drawn both ways. *)
  let consumed = Array.make t.num_edges false in
  Array.iter
    (fun (e : edge) ->
      if not consumed.(e.id) then begin
        let reverse_twin =
          List.find_opt
            (fun (r : edge) -> (not consumed.(r.id)) && r.id <> e.id && r.link = e.link)
            (find_links t ~src:e.dst ~dst:e.src)
        in
        let label =
          Printf.sprintf "%.3g GB/s" (Link.bandwidth e.link /. 1e9)
        in
        (match reverse_twin with
        | Some r ->
          consumed.(r.id) <- true;
          Buffer.add_string buf
            (Printf.sprintf "  %d -> %d [dir=both, label=\"%s\"];\n" e.src e.dst label)
        | None ->
          Buffer.add_string buf
            (Printf.sprintf "  %d -> %d [label=\"%s\"];\n" e.src e.dst label));
        consumed.(e.id) <- true
      end)
    (edge_array t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
