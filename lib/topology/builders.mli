(** Constructors for every topology evaluated in the paper (Table IV, §V-B)
    plus DGX-1 (§VI-B.5) and the unwound Switch fabrics (§IV-G).

    All links default to the paper's α = 0.5 µs, 1/β = 50 GB/s (footnote 8);
    benches override per experiment. *)

val ring : ?link:Link.t -> ?bidirectional:bool -> int -> Topology.t
(** Physical ring of [n] NPUs. [bidirectional] defaults to [true] — the paper
    uses bidirectional rings throughout (footnote 3). Records the natural
    logical-ring embedding(s). *)

val fully_connected : ?link:Link.t -> int -> Topology.t

val hierarchical :
  ?name:string -> Topology.dim array -> Topology.t
(** General multi-dimensional builder: within each dimension, every group of
    NPUs that differ only in that coordinate is connected according to the
    dimension's kind and link. Dimension 0 varies fastest in node numbering.
    The hierarchy is recorded on the result. *)

val mesh : ?link:Link.t -> int array -> Topology.t
(** k-dimensional mesh (bidirectional chains, no wraparound — asymmetric).
    The paper's "2D Mesh" and "3D Hypercube (5×5×5)" are [mesh [|a; b|]] and
    [mesh [|5; 5; 5|]] respectively. *)

val torus : ?link:Link.t -> int array -> Topology.t
(** k-dimensional torus (bidirectional rings with wraparound — symmetric). *)

val hypercube : ?link:Link.t -> int -> Topology.t
(** Binary [k]-cube with [2^k] NPUs. *)

val switch : ?link:Link.t -> degree:int -> int -> Topology.t
(** [n]-NPU switch unwound into a degree-[degree] point-to-point fabric:
    NPU [i] gets outgoing links to [i+1 .. i+degree (mod n)], with β scaled
    by [degree] to model the shared switch bandwidth (§IV-G, Fig. 13). *)

val two_level_switch :
  ?alpha:float -> bw:float * float -> int * int -> Topology.t
(** The paper's "2D Switch (8×4)": a hierarchy of two unwound degree-1
    switches with per-dimension bandwidths [bw = (bw0, bw1)] in bytes/s. *)

val rfs3d : ?alpha:float -> bw:float * float * float -> int * int * int -> Topology.t
(** 3D Ring–FullyConnected–Switch hierarchy, the paper's 3D-RFS. Dimension
    sizes [(r, f, s)], e.g. [(2, 4, 8)] for the 64-NPU system; [bw] gives the
    per-dimension bandwidths, e.g. 200/100/50 GB/s. *)

val dragonfly :
  ?alpha:float -> ?groups:int -> ?group_size:int -> bw:float * float -> unit -> Topology.t
(** DragonFly with fully-connected groups and one global link per group pair
    (hosted on distinct members, so edge NPUs have higher degree than the
    rest — asymmetric and heterogeneous). Defaults to the paper's 4×5. *)

(** {1 Topologies without hand-designed collectives (§III-C)}

    Flattened Butterfly, SlimFly and Tofu are the paper's examples of
    fabrics that "do not yet have specialized collective algorithms and
    default to baseline collective algorithms" — exactly the gap an
    autonomous synthesizer fills. (MegaFly is omitted: its spine routers
    carry no endpoints, and this model has no switch-only nodes.) *)

val flattened_butterfly : ?link:Link.t -> int array -> Topology.t
(** k-ary n-flat [50]: within every dimension, each group is fully
    connected. [flattened_butterfly [|8; 8|]] is the 64-NPU 2D instance. *)

val slimfly : ?link:Link.t -> unit -> Topology.t
(** The 50-NPU, degree-7 McKay–Miller–Širáň SlimFly [52] for q = 5:
    diameter 2, near the Moore bound. *)

val tofu : ?link:Link.t -> int * int * int -> Topology.t
(** Fujitsu Tofu [53]: a 6D torus XYZ x abc with the fixed 2x3x2 inner
    dimensions; [(x, y, z)] sets the outer ones. *)

val dgx1 : ?link:Link.t -> unit -> Topology.t
(** NVIDIA DGX-1V hybrid cube-mesh: 8 GPUs, 6 NVLinks each (doubled links
    included as parallel edges). Records the three edge-disjoint bidirectional
    ring embeddings that NCCL-style Ring All-Reduce uses, so the Ring baseline
    reaches near-ideal bandwidth on this topology (§VI-B.5). *)
