(** Point-to-point link characterized by the α-β cost model (§IV-F).

    [alpha] is the fixed per-message latency in seconds and [beta] the
    serialization delay in seconds per byte (the reciprocal of bandwidth).
    Transferring a message of [n] bytes over the link takes
    [alpha +. beta *. n] seconds. *)

type t = private { alpha : float; beta : float }

val make : alpha:float -> beta:float -> t
(** Raises [Invalid_argument] if [alpha < 0] or [beta < 0]. *)

val of_bandwidth : ?alpha:float -> float -> t
(** [of_bandwidth ~alpha bw] builds a link with bandwidth [bw] bytes/s
    (β = 1/bw). [alpha] defaults to [0.5e-6] s, the paper's default (§V-B,
    footnote 8). *)

val default : t
(** The paper's default link: α = 0.5 µs, 1/β = 50 GB/s. *)

val cost : t -> float -> float
(** [cost link size] is the transmission time of [size] bytes. *)

val bandwidth : t -> float
(** Bytes per second ([infinity] if β = 0). *)

val scale_beta : t -> float -> t
(** [scale_beta link k] multiplies β by [k] — used by switch unwinding
    (§IV-G), where a degree-[d] unwinding shares the switch bandwidth and
    multiplies the β cost by [d]. *)

val pp : Format.formatter -> t -> unit
