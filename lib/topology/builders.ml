open Topology

let ring ?(link = Link.default) ?(bidirectional = true) n =
  let t = create ~name:(Printf.sprintf "Ring-%d%s" n (if bidirectional then "" else "-uni")) n in
  if n = 2 && bidirectional then add_bidir t 0 1 link
  else
    for i = 0 to n - 1 do
      let j = (i + 1) mod n in
      if n > 1 then begin
        ignore (add_link t ~src:i ~dst:j link);
        if bidirectional then ignore (add_link t ~src:j ~dst:i link)
      end
    done;
  set_hierarchy t [| { kind = Ring_dim; size = n; link } |];
  (* Record the forward embedding only; the Ring baseline derives the
     reverse orientation itself when running bidirectionally. *)
  set_rings t [ Array.init n Fun.id ];
  t

let fully_connected ?(link = Link.default) n =
  let t = create ~name:(Printf.sprintf "FullyConnected-%d" n) n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then ignore (add_link t ~src:i ~dst:j link)
    done
  done;
  set_hierarchy t [| { kind = Fully_connected_dim; size = n; link } |];
  t

let connect_group t kind link members =
  let m = Array.of_list members in
  let s = Array.length m in
  if s > 1 then
    match kind with
    | Ring_dim ->
      if s = 2 then add_bidir t m.(0) m.(1) link
      else
        for k = 0 to s - 1 do
          add_bidir t m.(k) m.((k + 1) mod s) link
        done
    | Mesh_dim ->
      for k = 0 to s - 2 do
        add_bidir t m.(k) m.(k + 1) link
      done
    | Fully_connected_dim ->
      for a = 0 to s - 1 do
        for b = 0 to s - 1 do
          if a <> b then ignore (add_link t ~src:m.(a) ~dst:m.(b) link)
        done
      done
    | Switch_dim d ->
      if d < 1 || d > s - 1 then invalid_arg "Builders: switch degree out of range";
      let unwound = Link.scale_beta link (float_of_int d) in
      for a = 0 to s - 1 do
        for k = 1 to d do
          ignore (add_link t ~src:m.(a) ~dst:m.((a + k) mod s) unwound)
        done
      done

let hierarchical ?name dims =
  let n = Array.fold_left (fun acc d -> acc * d.size) 1 dims in
  let name =
    match name with
    | Some s -> s
    | None ->
      let dim_name d =
        let kind =
          match d.kind with
          | Ring_dim -> "R"
          | Mesh_dim -> "M"
          | Fully_connected_dim -> "F"
          | Switch_dim deg -> Printf.sprintf "S%d" deg
        in
        Printf.sprintf "%s%d" kind d.size
      in
      "Hier-" ^ String.concat "x" (Array.to_list (Array.map dim_name dims))
  in
  let t = create ~name n in
  set_hierarchy t dims;
  (* For each dimension, enumerate the groups of nodes that differ only in
     that coordinate and wire them up. *)
  Array.iteri
    (fun dim_idx dim ->
      let seen = Array.make n false in
      for v = 0 to n - 1 do
        if not seen.(v) then begin
          let group = dim_group t ~dim:dim_idx v in
          List.iter (fun u -> seen.(u) <- true) group;
          connect_group t dim.kind dim.link group
        end
      done)
    dims;
  (* Cut hints for the ideal bound: one coordinate-slab per dimension value
     — the subsets whose ingress can bottleneck a collective when the
     dimensions have unequal bandwidths. *)
  let slabs =
    List.concat
      (List.init (Array.length dims) (fun dim_idx ->
           if dims.(dim_idx).size < 2 || dims.(dim_idx).size = n then []
           else
             List.init dims.(dim_idx).size (fun k ->
                 List.filter (fun v -> (coords t v).(dim_idx) = k) (List.init n Fun.id))))
  in
  set_cut_hints t slabs;
  t

let mesh ?(link = Link.default) sizes =
  let dims = Array.map (fun size -> { kind = Mesh_dim; size; link }) sizes in
  let name =
    Printf.sprintf "%dD-Mesh-%s" (Array.length sizes)
      (String.concat "x" (Array.to_list (Array.map string_of_int sizes)))
  in
  hierarchical ~name dims

let torus ?(link = Link.default) sizes =
  let dims = Array.map (fun size -> { kind = Ring_dim; size; link }) sizes in
  let name =
    Printf.sprintf "%dD-Torus-%s" (Array.length sizes)
      (String.concat "x" (Array.to_list (Array.map string_of_int sizes)))
  in
  hierarchical ~name dims

let hypercube ?(link = Link.default) k =
  if k < 1 then invalid_arg "Builders.hypercube: need k >= 1";
  let dims = Array.init k (fun _ -> { kind = Ring_dim; size = 2; link }) in
  hierarchical ~name:(Printf.sprintf "Hypercube-%d" k) dims

let switch ?(link = Link.default) ~degree n =
  hierarchical
    ~name:(Printf.sprintf "Switch-%d-d%d" n degree)
    [| { kind = Switch_dim degree; size = n; link } |]

let two_level_switch ?(alpha = 0.5e-6) ~bw:(bw0, bw1) (s0, s1) =
  hierarchical
    ~name:(Printf.sprintf "2D-Switch-%dx%d" s0 s1)
    [|
      { kind = Switch_dim 1; size = s0; link = Link.of_bandwidth ~alpha bw0 };
      { kind = Switch_dim 1; size = s1; link = Link.of_bandwidth ~alpha bw1 };
    |]

let rfs3d ?(alpha = 0.5e-6) ~bw:(bw0, bw1, bw2) (r, f, s) =
  hierarchical
    ~name:(Printf.sprintf "3D-RFS-%dx%dx%d" r f s)
    [|
      { kind = Ring_dim; size = r; link = Link.of_bandwidth ~alpha bw0 };
      { kind = Fully_connected_dim; size = f; link = Link.of_bandwidth ~alpha bw1 };
      { kind = Switch_dim 1; size = s; link = Link.of_bandwidth ~alpha bw2 };
    |]

let dragonfly ?(alpha = 0.5e-6) ?(groups = 4) ?(group_size = 5) ~bw:(bw_local, bw_global) () =
  if groups - 1 > group_size then
    invalid_arg "Builders.dragonfly: not enough members to host global links";
  let n = groups * group_size in
  let t = create ~name:(Printf.sprintf "DragonFly-%dx%d" groups group_size) n in
  let node g m = (g * group_size) + m in
  let local = Link.of_bandwidth ~alpha bw_local in
  let global = Link.of_bandwidth ~alpha bw_global in
  for g = 0 to groups - 1 do
    for a = 0 to group_size - 1 do
      for b = 0 to group_size - 1 do
        if a <> b then ignore (add_link t ~src:(node g a) ~dst:(node g b) local)
      done
    done
  done;
  (* One global link per group pair, hosted on distinct members: group [g]'s
     link towards group [h] sits on local member [h] (skipping g itself), so
     the last members of each group carry no global traffic — the topology is
     asymmetric as well as heterogeneous. *)
  let host g h = if h < g then h else h - 1 in
  for g = 0 to groups - 1 do
    for h = g + 1 to groups - 1 do
      add_bidir t (node g (host g h)) (node h (host h g)) global
    done
  done;
  (* The sparse global links make whole groups the bottleneck subsets. *)
  set_cut_hints t
    (List.init groups (fun g -> List.init group_size (fun m -> node g m)));
  t

let flattened_butterfly ?(link = Link.default) sizes =
  let dims = Array.map (fun size -> { kind = Fully_connected_dim; size; link }) sizes in
  let name =
    Printf.sprintf "FlattenedButterfly-%s"
      (String.concat "x" (Array.to_list (Array.map string_of_int sizes)))
  in
  hierarchical ~name dims

let slimfly ?(link = Link.default) () =
  (* McKay–Miller–Širáň graph for q = 5 (δ = 1): vertices (side, x, y) with
     side ∈ {0,1} and x, y ∈ F_5. Quadratic residues X = {1,4} connect rows
     within side 0, non-residues X' = {2,3} within side 1, and (0,x,y) ~
     (1,m,c) iff y = m·x + c. 50 NPUs, degree 7, diameter 2. *)
  let q = 5 in
  let residues = [ 1; 4 ] and non_residues = [ 2; 3 ] in
  let t = create ~name:"SlimFly-MMS-q5" (2 * q * q) in
  let node side x y = (side * q * q) + (x * q) + y in
  for x = 0 to q - 1 do
    for y = 0 to q - 1 do
      for y' = 0 to q - 1 do
        (* Add each undirected pair once: difference in the generator set
           and y < y' (the sets are symmetric: g in X iff -g in X). *)
        if y < y' then begin
          if List.mem ((y' - y + q) mod q) residues then
            add_bidir t (node 0 x y) (node 0 x y') link;
          if List.mem ((y' - y + q) mod q) non_residues then
            add_bidir t (node 1 x y) (node 1 x y') link
        end
      done
    done
  done;
  for x = 0 to q - 1 do
    for y = 0 to q - 1 do
      for m = 0 to q - 1 do
        let c = ((y - (m * x)) mod q + q) mod q in
        add_bidir t (node 0 x y) (node 1 m c) link
      done
    done
  done;
  t

let tofu ?(link = Link.default) (x, y, z) =
  let name = Printf.sprintf "Tofu-%dx%dx%dx2x3x2" x y z in
  hierarchical ~name
    (Array.map
       (fun size -> { kind = Ring_dim; size; link })
       [| x; y; z; 2; 3; 2 |])

let dgx1 ?(link = Link.of_bandwidth ~alpha:0.7e-6 25e9) () =
  let t = create ~name:"DGX-1" 8 in
  (* Hybrid cube-mesh NVLink multiset of the DGX-1V: 6 links per GPU,
     doubled links represented as parallel edges. *)
  let nvlinks =
    [
      (0, 1, 1); (0, 2, 1); (0, 3, 2); (0, 4, 2);
      (1, 2, 2); (1, 3, 1); (1, 5, 2);
      (2, 3, 2); (2, 6, 1);
      (3, 7, 1);
      (4, 5, 1); (4, 6, 1); (4, 7, 2);
      (5, 6, 2); (5, 7, 1);
      (6, 7, 2);
    ]
  in
  List.iter
    (fun (a, b, mult) ->
      for _ = 1 to mult do
        add_bidir t a b link
      done)
    nvlinks;
  (* Three edge-disjoint bidirectional Hamiltonian rings covering all 24
     NVLinks — the decomposition an NCCL-style multi-ring All-Reduce uses. *)
  set_rings t
    [
      [| 0; 1; 2; 3; 7; 6; 5; 4 |];
      [| 0; 3; 2; 1; 5; 6; 7; 4 |];
      [| 0; 2; 6; 4; 7; 5; 1; 3 |];
    ];
  t
