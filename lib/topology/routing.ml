type table = {
  n : int;
  next : int array array; (* next.(dst).(src) = neighbor towards dst *)
  dist : float array array; (* dist.(dst).(src) = min cost src->dst *)
}

module Pq = Set.Make (struct
  type t = float * int

  let compare = compare
end)

(* Dijkstra towards [dst] over reversed edges: settles the cost of every
   node's best path to [dst] and the first hop on that path. Unreachable
   sources keep [dist = infinity] / [next = -1]; whether that is an error
   is the caller's policy ([build] vs [build_partial]). *)
let dijkstra_to topo size dst =
  let n = Topology.num_npus topo in
  let dist = Array.make n infinity in
  let next = Array.make n (-1) in
  dist.(dst) <- 0.;
  let pq = ref (Pq.singleton (0., dst)) in
  while not (Pq.is_empty !pq) do
    let ((d, v) as elt) = Pq.min_elt !pq in
    pq := Pq.remove elt !pq;
    if d <= dist.(v) then
      List.iter
        (fun e ->
          let u = e.Topology.src in
          let nd = d +. Link.cost e.Topology.link size in
          if nd < dist.(u) then begin
            dist.(u) <- nd;
            next.(u) <- v;
            pq := Pq.add (nd, u) !pq
          end)
        (Topology.in_edges topo v)
  done;
  (dist, next)

let build_partial topo ~size =
  let n = Topology.num_npus topo in
  let dist = Array.make n [||] and next = Array.make n [||] in
  for d = 0 to n - 1 do
    let dd, nn = dijkstra_to topo size d in
    dist.(d) <- dd;
    next.(d) <- nn
  done;
  { n; next; dist }

let build topo ~size =
  let t = build_partial topo ~size in
  Array.iteri
    (fun dst per_src ->
      Array.iteri
        (fun src d ->
          if d = infinity then
            failwith
              (Printf.sprintf "Routing.build: NPU %d cannot reach NPU %d" src dst))
        per_src)
    t.dist;
  t

let check t src dst =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Routing: NPU out of range"

let next_hop t ~src ~dst =
  check t src dst;
  if src = dst then invalid_arg "Routing.next_hop: src = dst";
  if t.dist.(dst).(src) = infinity then
    failwith (Printf.sprintf "Routing.next_hop: NPU %d cannot reach NPU %d" src dst);
  t.next.(dst).(src)

let reachable t ~src ~dst =
  check t src dst;
  t.dist.(dst).(src) < infinity

let path_opt t ~src ~dst =
  check t src dst;
  if t.dist.(dst).(src) = infinity then None
  else
    let rec go v acc =
      if v = dst then List.rev (v :: acc) else go t.next.(dst).(v) (v :: acc)
    in
    Some (go src [])

let path t ~src ~dst =
  match path_opt t ~src ~dst with
  | Some p -> p
  | None ->
    failwith (Printf.sprintf "Routing.path: NPU %d cannot reach NPU %d" src dst)

let path_cost t ~src ~dst =
  check t src dst;
  t.dist.(dst).(src)

let hop_count t ~src ~dst = List.length (path t ~src ~dst) - 1
