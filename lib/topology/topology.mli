(** Directed multigraph of NPUs connected by α-β links.

    Nodes are integers [0 .. num_npus - 1]. Parallel links between the same
    pair of NPUs are allowed (DGX-1's hybrid cube-mesh has doubled NVLinks);
    every physical link has a unique integer id, and both the synthesizer and
    the network simulator treat each link as an independent resource with its
    own occupancy.

    A topology is assembled by [create] + [add_link] and is treated as
    immutable once built; all builders in {!Builders} return fully-built
    values. *)

type t

type edge = { id : int; src : int; dst : int; link : Link.t }

(** Description of one dimension of a hierarchical (multi-dimensional)
    topology, used by dimension-aware baselines (BlueConnect, Themis). *)
type dim_kind =
  | Ring_dim  (** bidirectional ring with wraparound (Torus dimension) *)
  | Mesh_dim  (** bidirectional chain without wraparound (asymmetric) *)
  | Fully_connected_dim
  | Switch_dim of int
      (** switch unwound into a degree-[d] point-to-point fabric (§IV-G) *)

type dim = { kind : dim_kind; size : int; link : Link.t }

val create : ?name:string -> int -> t
(** [create n] makes an edgeless topology over [n] NPUs.
    Raises [Invalid_argument] if [n <= 0]. *)

val add_link : t -> src:int -> dst:int -> Link.t -> int
(** Adds a unidirectional link and returns its id. Self-loops and
    out-of-range endpoints raise [Invalid_argument]. *)

val add_bidir : t -> int -> int -> Link.t -> unit
(** Adds a link in both directions. *)

val name : t -> string
val num_npus : t -> int
val num_links : t -> int

val edge : t -> int -> edge
(** Look up a link by id. Raises [Invalid_argument] if out of range. *)

val edges : t -> edge list
(** All links, in id order. *)

val out_edges : t -> int -> edge list
(** Links leaving an NPU. *)

val in_edges : t -> int -> edge list
(** Links entering an NPU. *)

val find_links : t -> src:int -> dst:int -> edge list
(** All parallel links from [src] to [dst] (possibly empty). *)

val is_strongly_connected : t -> bool
(** Synthesis of an all-to-all-style collective terminates iff the topology
    is strongly connected; callers check this up front. *)

val strongly_connected_components : t -> int list list
(** The strongly connected components, each sorted ascending, ordered
    largest-first (ties broken by smallest member). A healthy fabric has
    exactly one; after link/NPU failures the head is the surviving component
    a degraded collective could still run over. *)

val reverse : t -> t
(** Same NPUs, every link's direction flipped (link ids preserved). Used to
    synthesize reduction collectives by reversal (§IV-E, Fig. 11). *)

val without_links : t -> int list -> t
(** A copy of the topology with the given link ids removed — degraded-fabric
    scenarios (link failures). Link ids are renumbered densely. Hierarchy and
    cut hints are carried over (the NPU numbering is unchanged, so
    coordinates and slab subsets still make sense on the degraded fabric);
    ring embeddings are invalidated by design — they enumerate physical
    paths that the removed links may have broken — and are dropped. Raises
    [Invalid_argument] on an unknown id. *)

val map_links : ?name:string -> t -> (edge -> Link.t option) -> t
(** [map_links t f] rebuilds the topology, keeping each edge [e] with link
    parameters [l] where [f e = Some l] and dropping it where [f e = None] —
    the general fault-injection primitive ({!without_links} composed with
    per-link degradation). Link ids are renumbered densely in the surviving
    edges' id order. Metadata behaves as in {!without_links}: hierarchy and
    cut hints carry over, ring embeddings are dropped. [name] defaults to
    [t]'s name suffixed with ["-degraded"]. *)

(** {1 Hierarchy and ring-embedding metadata} *)

val set_hierarchy : t -> dim array -> unit
(** Record that this topology was built as a multi-dimensional hierarchy.
    Dimension 0 varies fastest in the node numbering. *)

val hierarchy : t -> dim array option

val coords : t -> int -> int array
(** Coordinates of a node under the recorded hierarchy. Raises
    [Invalid_argument] if the topology has none. *)

val of_coords : t -> int array -> int
(** Inverse of [coords]. *)

val dim_group : t -> dim:int -> int -> int list
(** [dim_group t ~dim node]: the nodes reachable by varying coordinate [dim]
    only (including [node] itself), in coordinate order. *)

val set_cut_hints : t -> int list list -> unit
(** Record NPU subsets whose ingress bandwidth is a plausible bottleneck
    (e.g. DragonFly groups, one coordinate-slab per dimension of a
    hierarchy). The ideal-bound computation checks the bisection-style bound
    over each hint in addition to the per-NPU ingress bound. *)

val cut_hints : t -> int list list
(** Recorded hints ([[]] when none). *)

val ingress_bandwidth_of : t -> int list -> float
(** Total bandwidth of links entering the subset from outside it. *)

val set_rings : t -> int array list -> unit
(** Record suggested logical-ring embeddings (each a permutation of a subset
    of NPUs laid head-to-tail over physical links). Builders that know a good
    decomposition — e.g. DGX-1's three rings — record it here; the Ring
    baseline uses it when present. *)

val rings : t -> int array list option

(** {1 Aggregate properties (used by the ideal bound, §V-A)} *)

val min_ingress_bandwidth : t -> float
(** Minimum over NPUs of the sum of incoming link bandwidths. *)

val min_egress_bandwidth : t -> float

val diameter_latency : t -> float
(** Maximum over ordered NPU pairs of the cheapest-path α cost — the minimum
    latency for the farthest two NPUs to communicate. Raises [Failure] if the
    topology is not strongly connected. *)

val total_bandwidth : t -> float
(** Sum of all link bandwidths. *)

val pp : Format.formatter -> t -> unit

val to_dot : t -> string
(** GraphViz rendering of the topology. Bidirectional link pairs collapse to
    one undirected edge; edges are annotated with bandwidth (and latency when
    links differ). *)
