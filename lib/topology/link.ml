type t = { alpha : float; beta : float }

let make ~alpha ~beta =
  if alpha < 0. || beta < 0. then invalid_arg "Link.make: negative cost";
  { alpha; beta }

let of_bandwidth ?(alpha = 0.5e-6) bw =
  if bw <= 0. then invalid_arg "Link.of_bandwidth: nonpositive bandwidth";
  make ~alpha ~beta:(1. /. bw)

let default = of_bandwidth 50e9
let cost t size = t.alpha +. (t.beta *. size)
let bandwidth t = if t.beta = 0. then infinity else 1. /. t.beta
let scale_beta t k = make ~alpha:t.alpha ~beta:(t.beta *. k)

let pp ppf t =
  Format.fprintf ppf "link(alpha=%s, bw=%s)"
    (Tacos_util.Units.time_pp t.alpha)
    (Tacos_util.Units.bandwidth_pp (bandwidth t))
