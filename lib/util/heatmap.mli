(** ASCII heat maps, used to regenerate the link-traffic maps of Fig. 1 and
    the link-utilization maps of Fig. 15(b).

    Values are normalized to the matrix maximum and rendered on a character
    ramp from cold to hot. Cells for absent links (no physical link between
    the pair) are rendered as ['#'] to match the paper's blacked-out cells. *)

val render :
  ?labels:string array -> (float option) array array -> string
(** [render m] renders a square (or rectangular) matrix. [m.(src).(dst)] is
    [None] when there is no link, [Some v] otherwise. [labels] annotates rows
    (defaults to indices). *)

val ramp_char : float -> char
(** [ramp_char v] maps a normalized value in \[0, 1\] to the ramp
    [" .:-=+*%@"] (0 maps to space, 1 to '@'). *)
