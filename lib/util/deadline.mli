(** Absolute wall-clock deadlines for cooperative cancellation.

    A deadline is an absolute instant; code that honors one polls
    {!expired} at its natural checkpoints (a synthesis round, a ladder
    rung, a pool task boundary) and bails out with a typed exception when
    the instant has passed. Deadlines are plain floats underneath, so they
    cross domain boundaries for free and comparing or min-combining them
    costs nothing. *)

type t
(** An absolute instant on the {!Clock.now} timeline. *)

val after_ms : float -> t
(** [after_ms ms] is the instant [ms] milliseconds from now. Negative
    values yield an already-expired deadline. *)

val expired : t -> bool
(** Has the instant passed? [after_ms 0.] is expired immediately. *)

val slack_ms : t -> float
(** Milliseconds remaining until the deadline — negative once it has
    passed. The number degraded responses and failure reports carry. *)

val min_opt : t option -> t option -> t option
(** Earliest of two optional deadlines ([None] = unbounded): the
    combinator for layering a request deadline over a configured budget. *)
