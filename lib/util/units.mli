(** Unit conventions and formatting shared across the whole reproduction.

    Time is measured in seconds (float), message sizes in bytes (float), and
    bandwidth in bytes per second. The paper quotes sizes in decimal units
    (1 KB = 1e3 B, 1 GB = 1e9 B) and bandwidths in GB/s; we follow that. *)

val kb : float
val mb : float
val gb : float

val us : float
(** One microsecond, in seconds. *)

val ns : float
(** One nanosecond, in seconds. *)

val gbps : float -> float
(** [gbps x] is [x] GB/s expressed in bytes per second. *)

val bytes_pp : float -> string
(** Human-readable size, e.g. ["64 MB"]. *)

val time_pp : float -> string
(** Human-readable duration, e.g. ["1.08 ms"]. *)

val bandwidth_pp : float -> string
(** Human-readable bandwidth, e.g. ["37.2 GB/s"]. *)
