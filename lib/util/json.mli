(** Minimal JSON reader — enough to round-trip the schedule files this
    library writes (and any well-formed JSON without exotic escapes). No
    external dependencies, by the sealed-container constraint. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

val parse : string -> (t, string) result
(** Parse a complete JSON document; trailing garbage is an error. Supports
    the standard single-character escapes; unicode escapes are preserved
    verbatim. *)

val encode : t -> string
(** Serialize compactly (single line). Integral numbers print without a
    fractional part; everything else uses round-trippable [%.17g]. Strings
    are escaped, so [parse (encode v) = Ok v] for documents built from this
    type. *)

val member : string -> t -> t option
(** Object field lookup. *)

val to_float : t -> float option
val to_int : t -> int option
val to_string : t -> string option
val to_list : t -> t list option
