type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 8) () = { data = Array.make (max 1 capacity) 0; len = 0 }
let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Ivec.get: index out of range";
  t.data.(i)

let push t x =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * t.len) 0 in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let swap_remove t i =
  if i < 0 || i >= t.len then invalid_arg "Ivec.swap_remove: index out of range";
  t.len <- t.len - 1;
  if i = t.len then -1
  else begin
    t.data.(i) <- t.data.(t.len);
    t.data.(i)
  end

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let exists_from t ~start p =
  if t.len = 0 then -1
  else begin
    let start = ((start mod t.len) + t.len) mod t.len in
    let rec go i remaining =
      if remaining = 0 then -1
      else if p t.data.(i) then i
      else go (if i + 1 = t.len then 0 else i + 1) (remaining - 1)
    in
    go start t.len
  end
