(** Growable int arrays with O(1) append and swap-remove — the working sets
    of the synthesizer's matching loop. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val get : t -> int -> int
val push : t -> int -> unit

val swap_remove : t -> int -> int
(** [swap_remove t i] removes index [i] by swapping the last element into it;
    returns the element that now lives at [i] (or [-1] if [i] became the
    end). O(1). *)

val iter : (int -> unit) -> t -> unit

val exists_from : t -> start:int -> (int -> bool) -> int
(** [exists_from t ~start p] scans circularly from index [start], returning
    the first index whose element satisfies [p], or [-1]. *)
