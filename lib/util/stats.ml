let check_nonempty name = function
  | [] -> invalid_arg (name ^ ": empty list")
  | _ -> ()

let mean xs =
  check_nonempty "Stats.mean" xs;
  List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geomean xs =
  check_nonempty "Stats.geomean" xs;
  List.iter (fun x -> if x <= 0. then invalid_arg "Stats.geomean: nonpositive") xs;
  exp (mean (List.map log xs))

let stddev xs =
  check_nonempty "Stats.stddev" xs;
  let m = mean xs in
  sqrt (mean (List.map (fun x -> (x -. m) ** 2.) xs))

let minimum xs =
  check_nonempty "Stats.minimum" xs;
  List.fold_left min infinity xs

let maximum xs =
  check_nonempty "Stats.maximum" xs;
  List.fold_left max neg_infinity xs

let percentile p xs =
  check_nonempty "Stats.percentile" xs;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (a.(lo) *. (1. -. frac)) +. (a.(hi) *. frac)
  end

let linear_fit points =
  check_nonempty "Stats.linear_fit" points;
  let n = float_of_int (List.length points) in
  let sx = List.fold_left (fun acc (x, _) -> acc +. x) 0. points in
  let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0. points in
  let sxx = List.fold_left (fun acc (x, _) -> acc +. (x *. x)) 0. points in
  let sxy = List.fold_left (fun acc (x, y) -> acc +. (x *. y)) 0. points in
  let denom = (n *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-12 then invalid_arg "Stats.linear_fit: degenerate x";
  let b = ((n *. sxy) -. (sx *. sy)) /. denom in
  let a = (sy -. (b *. sx)) /. n in
  (a, b)

let loglog_exponent points =
  let logged =
    List.map
      (fun (x, y) ->
        if x <= 0. || y <= 0. then invalid_arg "Stats.loglog_exponent: nonpositive";
        (log x, log y))
      points
  in
  snd (linear_fit logged)
