(** Small numerical helpers used by the benchmark harness. *)

val mean : float list -> float
(** Arithmetic mean. Raises [Invalid_argument] on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values. *)

val stddev : float list -> float
(** Population standard deviation. *)

val minimum : float list -> float
val maximum : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in \[0,100\], linear interpolation. *)

val linear_fit : (float * float) list -> float * float
(** Least-squares fit [y = a + b*x]; returns [(a, b)]. *)

val loglog_exponent : (float * float) list -> float
(** Fit the exponent [k] of [y = c * x^k] from (x, y) samples with positive
    coordinates — used to verify the paper's O(n^2) synthesis-time claim. *)
