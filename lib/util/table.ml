type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ?aligns ~header rows =
  let ncols = List.length header in
  let normalize row =
    let row = if List.length row > ncols then List.filteri (fun i _ -> i < ncols) row else row in
    row @ List.init (ncols - List.length row) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let aligns =
    match aligns with
    | Some a when List.length a = ncols -> a
    | _ -> List.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let widths =
    List.init ncols (fun i ->
        let col_width row = String.length (List.nth row i) in
        List.fold_left (fun acc row -> max acc (col_width row)) (col_width header) rows)
  in
  let render_row row =
    let cells = List.mapi (fun i cell -> pad (List.nth aligns i) (List.nth widths i) cell) row in
    String.concat "  " cells
  in
  let rule = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  let body = List.map render_row rows in
  String.concat "\n" ((render_row header :: rule :: body) @ [ "" ])

let print ?aligns ~header rows = print_string (render ?aligns ~header rows)
let cell_float ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v
let cell_ratio v = Printf.sprintf "%.2fx" v
let cell_percent v = Printf.sprintf "%.2f%%" (100. *. v)
