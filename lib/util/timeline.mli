(** Time-binned busy/utilization accounting shared by the simulator report
    and the schedule analyses.

    Busy intervals are supplied as an iterator: [iter f] must call
    [f start finish] once per interval, letting callers stream their own
    structures (per-link interval lists, send lists, ...) without building
    an intermediate list. Intervals reaching outside [0, span] are
    clamped. *)

val binned_busy :
  bins:int -> span:float -> ((float -> float -> unit) -> unit) -> float array
(** Total busy time falling into each of [bins] equal slices of
    [0, span]. Raises [Invalid_argument] if [bins <= 0]. *)

val utilization :
  bins:int ->
  span:float ->
  capacity:float ->
  ((float -> float -> unit) -> unit) ->
  (float * float) list
(** [(bin_end_time, fraction_of_capacity_busy)] per bin, normalizing each
    slice by [capacity] parallel servers; [[]] when [span <= 0]. Raises
    [Invalid_argument] if [bins <= 0] or [capacity <= 0]. *)
