(** Deterministic, splittable pseudo-random number generator.

    TACOS is a randomized matching algorithm (Alg. 1 shuffles the unsatisfied
    postconditions and picks random candidate sources), so every synthesis run
    threads an explicit generator through the search. The generator is
    splittable so that independent synthesis trials draw from independent
    streams while the whole experiment stays reproducible from a single seed.

    The implementation is SplitMix64 (Steele, Lea & Flood, OOPSLA'14). *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : t -> t
(** [split t] draws a new, statistically independent generator from [t],
    advancing [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state (the copy and the original then
    produce identical streams). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound) — exactly, via rejection
    sampling, so non-power-of-two bounds carry no modulo bias. Raises
    [Invalid_argument] if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val bool : t -> bool

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. Raises [Invalid_argument] on []. *)

val pick_array : t -> 'a array -> 'a

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val shuffle_list : t -> 'a list -> 'a list
