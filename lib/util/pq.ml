type 'a entry = { key : float; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }
let is_empty t = t.size = 0
let size t = t.size

let less a b = if a.key = b.key then a.seq < b.seq else a.key < b.key

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let push t key payload =
  let entry = { key; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if Array.length t.data = 0 then t.data <- Array.make 16 entry
  else if t.size = Array.length t.data then begin
    let bigger = Array.make (2 * t.size) entry in
    Array.blit t.data 0 bigger 0 t.size;
    t.data <- bigger
  end;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  let i = ref (t.size - 1) in
  while !i > 0 && less t.data.(!i) t.data.((!i - 1) / 2) do
    swap t !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let pop t =
  if t.size = 0 then None
  else begin
    let root = t.data.(0) in
    t.size <- t.size - 1;
    t.data.(0) <- t.data.(t.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.size && less t.data.(l) t.data.(!smallest) then smallest := l;
      if r < t.size && less t.data.(r) t.data.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        swap t !i !smallest;
        i := !smallest
      end
      else continue := false
    done;
    Some (root.key, root.payload)
  end

let peek_key t = if t.size = 0 then None else Some t.data.(0).key
