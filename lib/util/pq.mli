(** Binary min-heap keyed by float with an arbitrary payload — the event
    queue of the discrete-event network simulator. Ties are popped in
    insertion order, which gives the simulator deterministic FCFS behavior. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int
val push : 'a t -> float -> 'a -> unit
val pop : 'a t -> (float * 'a) option
val peek_key : 'a t -> float option
