(** Minimal logfmt encoding for structured access-log records.

    A record is an ordered list of [key=value] pairs joined by single
    spaces. Values containing spaces, quotes, equals signs, control
    characters — or empty values — are double-quoted with backslash
    escaping (["\\"], ["\""], newline as ["\n"]); everything else is
    emitted bare, so records stay grep-friendly. *)

val encode : (string * string) list -> string
(** Raises [Invalid_argument] on an invalid key (empty, or containing
    spaces, quotes or [=]). *)

val parse : string -> ((string * string) list, string) result
(** Inverse of {!encode}; also accepts runs of spaces between pairs. *)
