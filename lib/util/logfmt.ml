(* logfmt: space-separated key=value pairs, values quoted only when they
   must be. The access log favours this over JSON lines because operators
   grep it ("outcome=shed") and every serious log pipeline ingests it. *)

let valid_key k =
  k <> ""
  && String.for_all
       (fun c -> not (c = ' ' || c = '"' || c = '=' || Char.code c < 0x20))
       k

let needs_quoting v =
  v = ""
  || String.exists (fun c -> c = ' ' || c = '"' || c = '=' || Char.code c < 0x20) v

let quote b v =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.add_char b '"'

let encode pairs =
  let b = Buffer.create 128 in
  List.iteri
    (fun i (k, v) ->
      if not (valid_key k) then invalid_arg (Printf.sprintf "Logfmt.encode: bad key %S" k);
      if i > 0 then Buffer.add_char b ' ';
      Buffer.add_string b k;
      Buffer.add_char b '=';
      if needs_quoting v || String.contains v '\\' then quote b v
      else Buffer.add_string b v)
    pairs;
  Buffer.contents b

exception Bad of string

let parse line =
  let n = String.length line in
  let i = ref 0 in
  let pairs = ref [] in
  try
    while !i < n do
      while !i < n && line.[!i] = ' ' do incr i done;
      if !i < n then begin
        let s0 = !i in
        while !i < n && line.[!i] <> '=' && line.[!i] <> ' ' do incr i done;
        if !i >= n || line.[!i] <> '=' then raise (Bad "expected '=' after key");
        let key = String.sub line s0 (!i - s0) in
        if not (valid_key key) then raise (Bad (Printf.sprintf "bad key %S" key));
        incr i;
        let value =
          if !i < n && line.[!i] = '"' then begin
            incr i;
            let b = Buffer.create 16 in
            let closed = ref false in
            while not !closed do
              if !i >= n then raise (Bad "unterminated quoted value")
              else if line.[!i] = '\\' then begin
                if !i + 1 >= n then raise (Bad "dangling backslash");
                (match line.[!i + 1] with
                | '\\' -> Buffer.add_char b '\\'
                | '"' -> Buffer.add_char b '"'
                | 'n' -> Buffer.add_char b '\n'
                | c -> raise (Bad (Printf.sprintf "invalid escape \\%c" c)));
                i := !i + 2
              end
              else if line.[!i] = '"' then begin
                incr i;
                closed := true
              end
              else begin
                Buffer.add_char b line.[!i];
                incr i
              end
            done;
            if !i < n && line.[!i] <> ' ' then raise (Bad "garbage after quoted value");
            Buffer.contents b
          end
          else begin
            let s0 = !i in
            while !i < n && line.[!i] <> ' ' do incr i done;
            let v = String.sub line s0 (!i - s0) in
            if String.contains v '"' then raise (Bad "unexpected '\"' in bare value");
            v
          end
        in
        pairs := (key, value) :: !pairs
      end
    done;
    Ok (List.rev !pairs)
  with Bad msg -> Error msg
