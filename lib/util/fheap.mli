(** Minimal binary min-heap over floats, used as the event queue of the
    synthesizer and the network simulator. *)

type t

val create : unit -> t
val is_empty : t -> bool
val size : t -> int
val push : t -> float -> unit

val pop : t -> float
(** Remove and return the smallest element. Raises [Invalid_argument] when
    empty. *)

val peek : t -> float

val pop_above : t -> float -> float option
(** [pop_above t x] discards every element [<= x] and pops the first element
    strictly greater, if any — the "advance to the next distinct event time"
    step. *)
