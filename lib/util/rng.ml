type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = Int64.of_int seed }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }
let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound land (bound - 1) = 0 then
    (* Power of two: masking the mixed state is exact and unbiased. *)
    Int64.to_int (Int64.logand (bits64 t) (Int64.of_int (bound - 1)))
  else begin
    (* Rejection sampling: [v mod bound] over [0, max_int] over-represents
       the residues below [(max_int + 1) mod bound], which skews tie-break
       shuffles for non-power-of-two counts. Redraw whenever [v] falls in
       the final partial block [v - r + bound - 1 > max_int]. *)
    let mask = Int64.of_int max_int in
    let rec draw () =
      let v = Int64.to_int (Int64.logand (bits64 t) mask) in
      let r = v mod bound in
      if v - r > max_int - bound + 1 then draw () else r
    in
    draw ()
  end

let float t bound =
  (* 53 random bits scaled to [0,1). *)
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let pick_array t a =
  if Array.length a = 0 then invalid_arg "Rng.pick_array: empty";
  a.(int t (Array.length a))

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty"
  | [ x ] -> x
  | l -> List.nth l (int t (List.length l))

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle_list t l =
  let a = Array.of_list l in
  shuffle_in_place t a;
  Array.to_list a
