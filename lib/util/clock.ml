(* Monotonic-style span clock (the role Mtime plays in bigger codebases):
   a start/elapsed pair for timing code regions, used by the obs layer's
   span timers. Unix.gettimeofday is the best dependency-free source; the
   elapsed reading is clamped at zero so a stepped wall clock can never
   produce a negative span. *)

type span = { started : float }

let now () = Unix.gettimeofday ()
let start () = { started = now () }
let elapsed s = Float.max 0. (now () -. s.started)

(* Run [f] and return its result with the wall seconds it took. *)
let time f =
  let s = start () in
  let v = f () in
  (v, elapsed s)
