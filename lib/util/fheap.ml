type t = { mutable data : float array; mutable size : int }

let create () = { data = Array.make 16 0.; size = 0 }
let is_empty t = t.size = 0
let size t = t.size

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let push t x =
  if t.size = Array.length t.data then begin
    let bigger = Array.make (2 * t.size) 0. in
    Array.blit t.data 0 bigger 0 t.size;
    t.data <- bigger
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  let i = ref (t.size - 1) in
  while !i > 0 && t.data.((!i - 1) / 2) > t.data.(!i) do
    swap t ((!i - 1) / 2) !i;
    i := (!i - 1) / 2
  done

let peek t =
  if t.size = 0 then invalid_arg "Fheap.peek: empty";
  t.data.(0)

let pop t =
  if t.size = 0 then invalid_arg "Fheap.pop: empty";
  let root = t.data.(0) in
  t.size <- t.size - 1;
  t.data.(0) <- t.data.(t.size);
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && t.data.(l) < t.data.(!smallest) then smallest := l;
    if r < t.size && t.data.(r) < t.data.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      swap t !i !smallest;
      i := !smallest
    end
    else continue := false
  done;
  root

let rec pop_above t x =
  if is_empty t then None
  else begin
    let v = pop t in
    if v > x then Some v else pop_above t x
  end
