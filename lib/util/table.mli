(** ASCII table rendering for the benchmark harness.

    The benches print each paper table/figure as a plain-text table; this
    module keeps column alignment consistent everywhere. *)

type align = Left | Right

val render : ?aligns:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays out a table with a header rule. [aligns]
    defaults to left for the first column and right elsewhere. Rows shorter
    than the header are padded with empty cells. *)

val print : ?aligns:align list -> header:string list -> string list list -> unit
(** [render] followed by [print_string]. *)

val cell_float : ?decimals:int -> float -> string
(** Fixed-point cell, default 2 decimals. *)

val cell_ratio : float -> string
(** Ratio cell such as ["4.27x"]. *)

val cell_percent : float -> string
(** [cell_percent 0.9084] is ["90.84%"]. *)
