let ramp = " .:-=+*%@"

let ramp_char v =
  let v = Float.max 0. (Float.min 1. v) in
  let idx = int_of_float (v *. float_of_int (String.length ramp - 1) +. 0.5) in
  ramp.[idx]

let render ?labels m =
  let rows = Array.length m in
  let cols = if rows = 0 then 0 else Array.length m.(0) in
  let maxv =
    Array.fold_left
      (fun acc row ->
        Array.fold_left
          (fun acc -> function Some v -> Float.max acc v | None -> acc)
          acc row)
      0. m
  in
  let label i =
    match labels with
    | Some l when i < Array.length l -> l.(i)
    | _ -> string_of_int i
  in
  let width =
    let w = ref 0 in
    for i = 0 to rows - 1 do
      w := max !w (String.length (label i))
    done;
    !w
  in
  let buf = Buffer.create ((rows + 2) * (cols + width + 4)) in
  Buffer.add_string buf (String.make (width + 2) ' ');
  for j = 0 to cols - 1 do
    Buffer.add_char buf (if j mod 10 = 0 then Char.chr (Char.code '0' + j / 10 mod 10) else ' ')
  done;
  Buffer.add_char buf '\n';
  for i = 0 to rows - 1 do
    let l = label i in
    Buffer.add_string buf l;
    Buffer.add_string buf (String.make (width - String.length l + 1) ' ');
    Buffer.add_char buf '|';
    for j = 0 to cols - 1 do
      let c =
        match m.(i).(j) with
        | None -> '#'
        | Some v -> if maxv <= 0. then ' ' else ramp_char (v /. maxv)
      in
      Buffer.add_char buf c
    done;
    Buffer.add_string buf "|\n"
  done;
  Buffer.add_string buf
    (Printf.sprintf "scale: ' '(0) .. '@'(max=%s/link), '#'=no link\n"
       (Units.bytes_pp maxv));
  Buffer.contents buf
