type t = float (* absolute seconds on the Unix.gettimeofday timeline *)

let after_ms ms = Unix.gettimeofday () +. (ms /. 1e3)

(* [>=] so a zero-budget deadline reads expired even when two successive
   gettimeofday calls land on the same microsecond. *)
let expired d = Unix.gettimeofday () >= d

let slack_ms d = (d -. Unix.gettimeofday ()) *. 1e3

let min_opt a b =
  match (a, b) with
  | None, d | d, None -> d
  | Some a, Some b -> Some (Float.min a b)
