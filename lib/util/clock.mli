(** Wall-clock span timing for profiling: start a span, read its elapsed
    seconds. Spans are clamped to be non-negative, so a clock stepping
    backwards mid-span reads as zero rather than a negative duration. *)

type span

val now : unit -> float
(** Current wall-clock time in seconds since the epoch. *)

val start : unit -> span
(** Begin a span at [now ()]. *)

val elapsed : span -> float
(** Seconds since the span started; never negative. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the elapsed seconds. *)
