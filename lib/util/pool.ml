(* A fixed pool of worker domains with helping [await].

   One mutex/condition pair guards everything: the task queue, the stop
   flag, and every future's state cell. The condition is broadcast on
   every state change (submission, task completion, shutdown); each
   waiter re-checks its own predicate, so workers and awaiters can share
   it without lost wakeups. Tasks are heavyweight (whole syntheses), so
   the coarse locking is never contended in practice.

   Deadlock-freedom under nested submission: [await] runs queued tasks
   while its future is pending, so a task that submits to its own pool
   and awaits makes progress even when every worker is busy — the
   waiters themselves drain the queue. The task dependency graph is
   acyclic by construction (phases await sub-syntheses await trials), so
   helping always terminates. *)

type task = unit -> unit

type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  queue : task Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  mutable capacity : int; (* workers + the awaiting caller *)
}

type 'a state = Pending | Done of 'a | Failed of exn
type 'a future = { mutable state : 'a state }

(* The runtime supports at most 128 live domains; leave headroom for the
   main domain and anything the embedding application spawns. *)
let clamp n = max 1 (min n 126)

let rec worker_loop t =
  Mutex.lock t.mutex;
  let rec next () =
    if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
    else if t.stop then None
    else begin
      Condition.wait t.cond t.mutex;
      next ()
    end
  in
  match next () with
  | None -> Mutex.unlock t.mutex
  | Some task ->
    Mutex.unlock t.mutex;
    task ();
    worker_loop t

(* Grow to [target] capacity (monotonic; never shrinks). *)
let grow t target =
  let target = clamp target in
  Mutex.lock t.mutex;
  let missing = if t.stop then 0 else target - t.capacity in
  if missing > 0 then t.capacity <- target;
  Mutex.unlock t.mutex;
  for _ = 1 to missing do
    let d = Domain.spawn (fun () -> worker_loop t) in
    Mutex.lock t.mutex;
    t.workers <- d :: t.workers;
    Mutex.unlock t.mutex
  done

let create ?size () =
  let size =
    clamp (match size with Some n -> n | None -> Domain.recommended_domain_count ())
  in
  let t =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      stop = false;
      workers = [];
      capacity = 1;
    }
  in
  grow t size;
  t

let size t =
  Mutex.lock t.mutex;
  let c = t.capacity in
  Mutex.unlock t.mutex;
  c

let submit t f =
  let fut = { state = Pending } in
  let task () =
    let s = (match f () with v -> Done v | exception e -> Failed e) in
    Mutex.lock t.mutex;
    fut.state <- s;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex
  in
  Mutex.lock t.mutex;
  if t.stop then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push task t.queue;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  fut

let await t fut =
  let rec loop () =
    Mutex.lock t.mutex;
    match fut.state with
    | (Done _ | Failed _) as s ->
      Mutex.unlock t.mutex;
      s
    | Pending ->
      if not (Queue.is_empty t.queue) then begin
        let task = Queue.pop t.queue in
        Mutex.unlock t.mutex;
        task ();
        loop ()
      end
      else begin
        Condition.wait t.cond t.mutex;
        Mutex.unlock t.mutex;
        loop ()
      end
  in
  match loop () with
  | Done v -> v
  | Failed e -> raise e
  | Pending -> assert false

let map t f n =
  if n <= 0 then [||]
  else begin
    (* Submit in index order, await in index order: the result array is
       independent of execution interleaving. *)
    let rec submit_all i acc =
      if i = n then List.rev acc
      else submit_all (i + 1) (submit t (fun () -> f i) :: acc)
    in
    let futs = submit_all 0 [] in
    Array.of_list (List.map (fun fut -> await t fut) futs)
  end

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.cond;
  let workers = t.workers in
  t.workers <- [];
  Mutex.unlock t.mutex;
  List.iter Domain.join workers

(* The process-wide shared pool. Created lazily, grown on request,
   reaped at exit. *)
let global_mutex = Mutex.create ()
let global_pool = ref None

let global ?size () =
  Mutex.lock global_mutex;
  let p =
    match !global_pool with
    | Some p -> p
    | None ->
      let p = create () in
      global_pool := Some p;
      at_exit (fun () -> shutdown p);
      p
  in
  Mutex.unlock global_mutex;
  (match size with Some s -> grow p s | None -> ());
  p
