(* Time-binned busy/utilization accounting shared by the simulator report
   and the schedule analyses: spread a set of [start, finish) busy
   intervals over [bins] equal slices of [0, span] and normalize each
   slice by [capacity] parallel servers.

   [iter] is a fold over the intervals: it calls its argument once per
   (start, finish) pair, letting callers stream their own structures
   (interval lists per link, send lists, ...) without materializing an
   intermediate list. *)

let binned_busy ~bins ~span iter =
  if bins <= 0 then invalid_arg "Timeline.binned_busy: bins must be positive";
  let width = span /. float_of_int bins in
  let busy = Array.make bins 0. in
  iter (fun s f ->
      let lo = max 0 (int_of_float (s /. width)) in
      let hi = min (bins - 1) (int_of_float (f /. width)) in
      for b = lo to hi do
        let bin_start = float_of_int b *. width in
        let bin_end = bin_start +. width in
        let overlap = Float.min f bin_end -. Float.max s bin_start in
        if overlap > 0. then busy.(b) <- busy.(b) +. overlap
      done);
  busy

(* (bin_end_time, fraction-of-capacity-busy) per bin; [] when the span is
   empty, matching the historical behavior of both call sites. *)
let utilization ~bins ~span ~capacity iter =
  if bins <= 0 then invalid_arg "Timeline.utilization: bins must be positive";
  if capacity <= 0. then invalid_arg "Timeline.utilization: capacity must be positive";
  if span <= 0. then []
  else begin
    let width = span /. float_of_int bins in
    let busy = binned_busy ~bins ~span iter in
    List.init bins (fun b ->
        (float_of_int (b + 1) *. width, busy.(b) /. (capacity *. width)))
  end
