(** A small fixed pool of OCaml 5 domains with submit/await futures.

    The pool exists so every parallel axis in the synthesizer — trial
    fan-out in {!Tacos.Synthesizer.synthesize}, per-phase sub-synthesis
    fan-out in [Tacos_groups.Plan], and anything a caller adds on top —
    draws from {e one} worker budget instead of each spawning its own
    domains and oversubscribing the machine.

    Design points:

    - {b Spawn-once workers.} [create ~size] spawns [size - 1] worker
      domains up front (the submitting caller acts as the remaining
      worker, see below). Workers block on a condition variable when
      idle; an idle pool costs nothing but the parked domains.
    - {b Helping await.} [await] does not merely block: while its future
      is pending it pops and runs other queued tasks. This makes nested
      submission safe — a pool task may itself submit tasks to the same
      pool and await them (trial parallelism nested inside a group
      sub-synthesis) without deadlocking, even on a pool of size 1,
      because every waiter doubles as a worker.
    - {b Shared global pool.} {!global} returns a lazily created
      process-wide pool sized to [Domain.recommended_domain_count ()]
      and grows it (spawn-once, monotonic) when a caller asks for more
      width. It is shut down via [at_exit].

    Futures are single-assignment; exceptions raised by the task are
    re-raised by every [await] of its future. *)

type t
(** A pool of worker domains. Values of type [t] are safe to share
    across domains. *)

type 'a future
(** The pending result of a submitted task. *)

val create : ?size:int -> unit -> t
(** [create ~size ()] makes a pool that runs up to [size] tasks
    concurrently: [size - 1] spawned worker domains plus the awaiting
    caller. [size] defaults to [Domain.recommended_domain_count ()] and
    is clamped to [\[1; 126\]] (the OCaml runtime caps live domains at
    128). A pool of size 1 spawns no domains; tasks run in the caller
    during [await]. *)

val size : t -> int
(** Current concurrent-task capacity (workers + the awaiting caller). *)

val submit : t -> (unit -> 'a) -> 'a future
(** Queue a task. Tasks start in FIFO order as workers free up.
    @raise Invalid_argument if the pool has been shut down. *)

val await : t -> 'a future -> 'a
(** Wait for a future, running other queued tasks while it is pending
    (helping). Re-raises the task's exception if it failed. *)

val map : t -> (int -> 'a) -> int -> 'a array
(** [map pool f n] submits [f 0 .. f (n-1)] in index order and awaits
    them in index order — the deterministic fan-out primitive. The
    result array order never depends on execution interleaving.
    Concurrency is bounded by the pool's size. *)

val global : ?size:int -> unit -> t
(** The shared process-wide pool. First call creates it (sized
    [Domain.recommended_domain_count ()] by default); [?size] grows it
    to at least that capacity (never shrinks). Shut down automatically
    at process exit. *)

val shutdown : t -> unit
(** Drain queued tasks, stop and join the workers. Subsequent [submit]
    raises; [await] on already-completed futures still works. Calling
    [shutdown] twice is a no-op the second time. Do not call it on
    {!global} (it is managed by [at_exit]). *)
