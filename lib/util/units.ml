let kb = 1e3
let mb = 1e6
let gb = 1e9
let us = 1e-6
let ns = 1e-9
let gbps x = x *. 1e9

let with_unit value steps =
  (* steps: (threshold, divisor, suffix), largest first. *)
  let rec go = function
    | [] -> Printf.sprintf "%g" value
    | (threshold, divisor, suffix) :: rest ->
      if Float.abs value >= threshold then
        Printf.sprintf "%.4g %s" (value /. divisor) suffix
      else go rest
  in
  go steps

let bytes_pp v =
  with_unit v [ (1e9, 1e9, "GB"); (1e6, 1e6, "MB"); (1e3, 1e3, "KB"); (0., 1., "B") ]

let time_pp v =
  with_unit v
    [ (1., 1., "s"); (1e-3, 1e-3, "ms"); (1e-6, 1e-6, "us"); (0., 1e-9, "ns") ]

let bandwidth_pp v =
  with_unit v
    [ (1e9, 1e9, "GB/s"); (1e6, 1e6, "MB/s"); (0., 1e3, "KB/s") ]
