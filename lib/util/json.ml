type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

exception Bad of string

(* Recursive-descent parser over a cursor into the input string. *)
type cursor = { input : string; mutable pos : int }

let peek c = if c.pos < String.length c.input then Some c.input.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let fail c msg = raise (Bad (Printf.sprintf "%s at offset %d" msg c.pos))

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %c" ch)

let literal c word value =
  if
    c.pos + String.length word <= String.length c.input
    && String.sub c.input c.pos (String.length word) = word
  then begin
    c.pos <- c.pos + String.length word;
    value
  end
  else fail c ("expected " ^ word)

let parse_string_body c =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | Some 'n' -> Buffer.add_char buf '\n'; advance c; go ()
      | Some 't' -> Buffer.add_char buf '\t'; advance c; go ()
      | Some 'r' -> Buffer.add_char buf '\r'; advance c; go ()
      | Some 'b' -> Buffer.add_char buf '\b'; advance c; go ()
      | Some 'f' -> Buffer.add_char buf '\012'; advance c; go ()
      | Some ('"' | '\\' | '/' ) -> Buffer.add_char buf c.input.[c.pos]; advance c; go ()
      | Some 'u' ->
        (* Preserved verbatim; sufficient for our own files. *)
        Buffer.add_string buf "\\u";
        advance c;
        go ()
      | _ -> fail c "bad escape")
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  let s = String.sub c.input start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> Number f
  | None -> fail c ("bad number " ^ s)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Object []
    end
    else begin
      let rec fields acc =
        skip_ws c;
        expect c '"';
        let key = parse_string_body c in
        skip_ws c;
        expect c ':';
        let value = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields ((key, value) :: acc)
        | Some '}' ->
          advance c;
          Object (List.rev ((key, value) :: acc))
        | _ -> fail c "expected , or } in object"
      in
      fields []
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      Array []
    end
    else begin
      let rec elements acc =
        let value = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          elements (value :: acc)
        | Some ']' ->
          advance c;
          Array (List.rev (value :: acc))
        | _ -> fail c "expected , or ] in array"
      in
      elements []
    end
  | Some '"' ->
    advance c;
    String (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected character %c" ch)

let parse input =
  let c = { input; pos = 0 } in
  match parse_value c with
  | value ->
    skip_ws c;
    if c.pos = String.length input then Ok value
    else Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
  | exception Bad msg -> Error msg

(* --- emission ----------------------------------------------------------- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_number buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec add_value buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Number f -> add_number buf f
  | String s -> add_escaped buf s
  | Array elems ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_string buf ", ";
        add_value buf v)
      elems;
    Buffer.add_char buf ']'
  | Object fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        add_escaped buf k;
        Buffer.add_string buf ": ";
        add_value buf v)
      fields;
    Buffer.add_char buf '}'

let encode v =
  let buf = Buffer.create 256 in
  add_value buf v;
  Buffer.contents buf

(* --- accessors ---------------------------------------------------------- *)

let member key = function
  | Object fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Number f -> Some f | _ -> None

let to_int = function
  | Number f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_string = function String s -> Some s | _ -> None
let to_list = function Array l -> Some l | _ -> None
