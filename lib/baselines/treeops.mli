(* Namespaces of the substrate libraries. *)
open Tacos_sim

(** Broadcast / reduce passes over a spanning tree, shared by the tree-based
    baselines (MultiTree, TACCL-like, C-Cube). *)

val broadcast :
  Program.builder -> tag:string -> Trees.t -> size:float -> gate:int list -> int list
(** Send [size] bytes from the tree root down every edge; each hop waits for
    the parent's receive and for [gate]. Returns all transfer ids. *)

val reduce :
  Program.builder -> tag:string -> Trees.t -> size:float -> gate:int list -> int list * int list
(** Combine up the tree: a node sends to its parent once all its children
    delivered (and [gate] passed). Returns (all ids, the ids arriving at the
    root). *)
