(* Namespaces of the substrate libraries. *)
open Tacos_collective
open Tacos_sim

type t =
  | Ring of { bidirectional : bool }
  | Direct
  | Rhd
  | Dbt
  | Blueconnect of { chunks : int }
  | Themis of { chunks : int }
  | Multitree
  | Taccl_like
  | Ccube

let name = function
  | Ring { bidirectional = true } -> "Ring"
  | Ring { bidirectional = false } -> "Ring (uni)"
  | Direct -> "Direct"
  | Rhd -> "RHD"
  | Dbt -> "DBT"
  | Blueconnect { chunks } -> Printf.sprintf "BlueConnect(%d)" chunks
  | Themis { chunks } -> Printf.sprintf "Themis(%d)" chunks
  | Multitree -> "MultiTree"
  | Taccl_like -> "TACCL-like"
  | Ccube -> "C-Cube"

let ring = Ring { bidirectional = true }

let program t topo spec =
  match t with
  | Ring { bidirectional } -> Ring_algo.program ~bidirectional topo spec
  | Direct -> Direct.program topo spec
  | Rhd -> Rhd.program topo spec
  | Dbt -> Dbt.program topo spec
  | Blueconnect { chunks } -> Blueconnect.program ~chunks topo spec
  | Themis { chunks } -> Themis.program ~chunks topo spec
  | Multitree -> Multitree.program topo spec
  | Taccl_like -> Taccl_like.program topo spec
  | Ccube -> Ccube.program topo spec

let simulate ?routing_size t topo spec =
  Engine.run ?routing_size topo (program t topo spec)

let all = [ Ring { bidirectional = true }; Direct; Rhd; Dbt; Multitree; Taccl_like ]

let probe ?routing_size t topo spec =
  match simulate ?routing_size t topo spec with
  | report -> Ok report
  | exception Invalid_argument msg | (exception Failure msg) -> Error msg
  | exception (Engine.Simulation_error _ as e) -> Error (Printexc.to_string e)
  | exception Not_found -> Error "internal lookup failed"

let best_feasible ?routing_size ?(candidates = all) topo spec =
  List.fold_left
    (fun best algo ->
      match probe ?routing_size algo topo spec with
      | Error _ -> best
      | Ok report -> (
        match best with
        | Some (_, prev) when prev.Engine.finish_time <= report.Engine.finish_time ->
          best
        | _ -> Some (algo, report)))
    None candidates

let collective_time ?routing_size t topo spec =
  (simulate ?routing_size t topo spec).Engine.finish_time

let bandwidth ?routing_size t topo spec =
  spec.Spec.buffer_size /. collective_time ?routing_size t topo spec
