(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective
open Tacos_sim

(* A balanced binary tree over ranks lo..hi: the midpoint is the subtree
   root. Returns (root, children array filled in place). *)
let balanced_tree n =
  let children = Array.make n [] in
  let rec build lo hi =
    if lo > hi then -1
    else begin
      let mid = (lo + hi) / 2 in
      let l = build lo (mid - 1) in
      let r = build (mid + 1) hi in
      children.(mid) <- List.filter (fun v -> v >= 0) [ l; r ];
      mid
    end
  in
  let root = build 0 (n - 1) in
  (root, children)

let program topo (spec : Spec.t) =
  ignore (Topology.num_npus topo);
  if spec.pattern <> Pattern.All_reduce then
    invalid_arg "Dbt.program: All-Reduce only";
  let n = spec.npus in
  let b = Program.builder () in
  let half = spec.buffer_size /. 2. in
  let run_tree ~tag relabel =
    let root, children = balanced_tree n in
    let relabeled v = relabel v in
    (* Reduce: a node sends to its parent once both children delivered; the
       root's zero-size local "gate" transfer stands in for its reduction. *)
    let rec reduce_with_parent v parent =
      let child_sends = List.map (fun c -> reduce_with_parent c v) children.(v) in
      if parent < 0 then
        Program.add b ~tag:(tag ^ "-rootgate") ~deps:child_sends ~src:(relabeled v)
          ~dst:(relabeled v) ~size:0. ()
      else
        Program.add b ~tag:(tag ^ "-reduce") ~deps:child_sends ~src:(relabeled v)
          ~dst:(relabeled parent) ~size:half ()
    in
    let root_gate = reduce_with_parent root (-1) in
    let rec broadcast v incoming =
      List.iter
        (fun c ->
          let send =
            Program.add b ~tag:(tag ^ "-bcast") ~deps:[ incoming ]
              ~src:(relabeled v) ~dst:(relabeled c) ~size:half ()
          in
          broadcast c send)
        children.(v)
    in
    broadcast root root_gate
  in
  run_tree ~tag:"t1" Fun.id;
  (* The mirror tree swaps leaf/interior roles. *)
  run_tree ~tag:"t2" (fun v -> n - 1 - v);
  Program.build b
