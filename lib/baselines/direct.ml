(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective
open Tacos_sim

let program topo (spec : Spec.t) =
  ignore (Topology.num_npus topo);
  let n = spec.npus in
  let k = spec.chunks_per_npu in
  let size = Spec.chunk_size spec in
  let b = Program.builder () in
  (* Reduce-scatter: NPU i ships its partial of owner j's chunks straight to
     j. Returns, per owner, the transfers that must land before j holds the
     fully reduced value. *)
  let reduce_scatter () =
    Array.init n (fun j ->
        List.concat
          (List.init n (fun i ->
               if i = j then []
               else
                 List.init k (fun slot ->
                     Program.add b
                       ~tag:(Printf.sprintf "rs-o%d-s%d" j slot)
                       ~src:i ~dst:j ~size ()))))
  in
  let all_gather deps_of_owner =
    for j = 0 to n - 1 do
      for i = 0 to n - 1 do
        if i <> j then
          for slot = 0 to k - 1 do
            ignore
              (Program.add b
                 ~tag:(Printf.sprintf "ag-o%d-s%d" j slot)
                 ~deps:(deps_of_owner j) ~src:j ~dst:i ~size ())
          done
      done
    done
  in
  (match spec.pattern with
  | Pattern.All_gather -> all_gather (fun _ -> [])
  | Pattern.Reduce_scatter -> ignore (reduce_scatter ())
  | Pattern.All_reduce ->
    let reduced = reduce_scatter () in
    all_gather (fun j -> reduced.(j))
  | Pattern.All_to_all ->
    (* Direct is the native All-to-All: each pair exchanges its chunk. *)
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j then
          for slot = 0 to k - 1 do
            ignore
              (Program.add b
                 ~tag:(Printf.sprintf "a2a-%d-%d-s%d" i j slot)
                 ~src:i ~dst:j ~size ())
          done
      done
    done
  | Pattern.Broadcast _ | Pattern.Reduce _ | Pattern.Gather _ | Pattern.Scatter _ ->
    invalid_arg "Direct.program: unsupported pattern");
  Program.build b
