(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective
open Tacos_sim

(* Enumerate the groups of a dimension: lists of node ids differing only in
   that coordinate, in coordinate order. *)
let groups_of_dim topo dim =
  let n = Topology.num_npus topo in
  let seen = Array.make n false in
  let acc = ref [] in
  for v = 0 to n - 1 do
    if not seen.(v) then begin
      let group = Topology.dim_group topo ~dim v in
      List.iter (fun u -> seen.(u) <- true) group;
      acc := group :: !acc
    end
  done;
  List.rev !acc

(* One ring phase (RS and AG share the step structure) over [members],
   moving [step_size] bytes per step in total. On dimensions whose fabric is
   bidirectional the ring runs in both orientations at half the step size,
   like the paper's bidirectional Ring baseline (footnote 3); the unwound
   Switch fabric only has forward links, so it runs one orientation.
   [phase_deps] gates each NPU's first participation and is updated to the
   NPU's final receives of this phase. *)
let ring_phase b ~tag ~members ~step_size ~bidirectional ~(phase_deps : int list array) =
  let fwd = Array.of_list members in
  let s = Array.length fwd in
  if s > 1 then begin
    let orientations =
      if bidirectional && s > 2 then
        [ (fwd, step_size /. 2.); (Array.init s (fun i -> fwd.(s - 1 - i)), step_size /. 2.) ]
      else [ (fwd, step_size) ]
    in
    let gates =
      Array.map
        (fun npu ->
          match phase_deps.(npu) with
          | [] -> []
          | deps -> Program.barrier b deps npu)
        fwd
    in
    let gate_of = Hashtbl.create s in
    Array.iteri (fun i npu -> Hashtbl.replace gate_of npu gates.(i)) fwd;
    let final_recv = Hashtbl.create s in
    List.iteri
      (fun oi (m, size) ->
        let pred p = (p - 1 + s) mod s in
        let prev = Array.make s (-1) in
        let current = Array.make s (-1) in
        for step = 0 to s - 2 do
          for p = 0 to s - 1 do
            let deps =
              Hashtbl.find gate_of m.(p) @ (if step > 0 then [ prev.(pred p) ] else [])
            in
            current.(p) <-
              Program.add b
                ~tag:(Printf.sprintf "%s-o%d-step%d" tag oi step)
                ~deps ~src:m.(p)
                ~dst:m.((p + 1) mod s)
                ~size ()
          done;
          Array.blit current 0 prev 0 s
        done;
        Array.iteri
          (fun p npu ->
            let existing = Option.value ~default:[] (Hashtbl.find_opt final_recv npu) in
            Hashtbl.replace final_recv npu (prev.(pred p) :: existing))
          m)
      orientations;
    Array.iter (fun npu -> phase_deps.(npu) <- Hashtbl.find final_recv npu) fwd
  end

let pipeline b topo ~pattern ~share ~rs_order ~tag =
  let dims =
    match Topology.hierarchy topo with
    | Some dims -> dims
    | None -> invalid_arg "Hiercoll.pipeline: topology has no recorded hierarchy"
  in
  let rank = Array.length dims in
  let sorted = List.sort compare rs_order in
  if sorted <> List.init rank Fun.id then
    invalid_arg "Hiercoll.pipeline: rs_order must be a permutation of the dimensions";
  (* step_size for dimension i of the order: the share left when that
     dimension is reduced, divided by the group size. *)
  let plan =
    let current = ref share in
    List.map
      (fun dim ->
        let size = dims.(dim).Topology.size in
        let step_size = !current /. float_of_int size in
        current := step_size;
        (dim, step_size))
      rs_order
  in
  let phase_deps = Array.make (Topology.num_npus topo) [] in
  let run_phase phase_tag (dim, step_size) =
    let bidirectional =
      match dims.(dim).Topology.kind with
      | Topology.Ring_dim | Topology.Mesh_dim | Topology.Fully_connected_dim -> true
      | Topology.Switch_dim _ -> false
    in
    List.iter
      (fun members ->
        ring_phase b
          ~tag:(Printf.sprintf "%s-%s-d%d" tag phase_tag dim)
          ~members ~step_size ~bidirectional ~phase_deps)
      (groups_of_dim topo dim)
  in
  match pattern with
  | Pattern.All_gather -> List.iter (run_phase "ag") (List.rev plan)
  | Pattern.Reduce_scatter -> List.iter (run_phase "rs") plan
  | Pattern.All_reduce ->
    List.iter (run_phase "rs") plan;
    List.iter (run_phase "ag") (List.rev plan)
  | Pattern.Broadcast _ | Pattern.Reduce _ | Pattern.Gather _ | Pattern.Scatter _
  | Pattern.All_to_all ->
    invalid_arg "Hiercoll.pipeline: unsupported pattern"
