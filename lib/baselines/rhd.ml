(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective
open Tacos_sim

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let program topo (spec : Spec.t) =
  ignore (Topology.num_npus topo);
  let n = spec.npus in
  if not (is_power_of_two n) then
    invalid_arg "Rhd.program: NPU count must be a power of two";
  if spec.pattern <> Pattern.All_reduce then
    invalid_arg "Rhd.program: All-Reduce only";
  let log2n =
    let rec go k acc = if k = 1 then acc else go (k / 2) (acc + 1) in
    go n 0
  in
  let b = Program.builder () in
  (* prev.(i): NPU i's send in the previous step; a step's exchange waits on
     both partners' previous exchanges (blocking pairwise sendrecv). *)
  let prev = Array.make n (-1) in
  let exchange ~tag step mask size =
    let current = Array.make n (-1) in
    for i = 0 to n - 1 do
      let partner = i lxor mask in
      let deps =
        List.filter (fun d -> d >= 0) [ prev.(i); prev.(partner) ]
      in
      current.(i) <-
        Program.add b
          ~tag:(Printf.sprintf "%s-step%d" tag step)
          ~deps ~src:i ~dst:partner ~size ()
    done;
    Array.blit current 0 prev 0 n
  in
  for step = 0 to log2n - 1 do
    let mask = n lsr (step + 1) in
    let size = spec.buffer_size /. float_of_int (1 lsl (step + 1)) in
    exchange ~tag:"halving" step mask size
  done;
  for step = 0 to log2n - 1 do
    let mask = 1 lsl step in
    let size = spec.buffer_size *. float_of_int (1 lsl step) /. float_of_int n in
    exchange ~tag:"doubling" step mask size
  done;
  Program.build b
