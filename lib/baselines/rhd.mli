(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective
open Tacos_sim

(** Recursive Halving-Doubling All-Reduce [23] (MPICH): log2(n) halving
    exchanges at distances n/2, n/4, ..., 1 (message sizes B/2, B/4, ...)
    followed by log2(n) doubling exchanges in the mirror order. Requires a
    power-of-two NPU count; suited to switch fabrics where any pair is one
    hop apart. *)

val program : Topology.t -> Spec.t -> Program.t
(** All-Reduce only. Raises [Invalid_argument] on a non-power-of-two NPU
    count or another pattern. *)
