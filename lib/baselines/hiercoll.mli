(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective
open Tacos_sim

(** Shared machinery for hierarchical (multi-dimensional) collectives:
    BlueConnect [25] and Themis [18].

    Both algorithms run a ring Reduce-Scatter dimension by dimension and then
    the ring All-Gathers in reverse order, with each dimension's rings
    executing in parallel across the orthogonal groups. They differ only in
    which dimension order each piece of data takes: BlueConnect sends
    everything in the canonical order, Themis spreads chunks over rotated
    orders to balance load. *)

val pipeline :
  Program.builder ->
  Topology.t ->
  pattern:Pattern.t ->
  share:float ->
  rs_order:int list ->
  tag:string ->
  unit
(** Append one pipeline instance carrying [share] bytes per NPU through the
    recorded hierarchy of [topo], visiting dimensions in [rs_order] for the
    Reduce-Scatter phase (All-Gather reverses it). Supported patterns:
    All-Gather, Reduce-Scatter, All-Reduce. Raises [Invalid_argument] if the
    topology has no hierarchy or [rs_order] is not a permutation of its
    dimensions. *)
