(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective
open Tacos_sim

(** Double Binary Tree All-Reduce [24] (NCCL 2.4): two logical binary trees,
    each reducing half the buffer to its root and broadcasting it back. The
    second tree mirrors the first so that interior nodes of one are leaves of
    the other, balancing per-NPU send work. *)

val program : Topology.t -> Spec.t -> Program.t
(** All-Reduce only. *)
