(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective
open Tacos_sim

let reversed ring = Array.init (Array.length ring) (fun i -> ring.(Array.length ring - 1 - i))

(* One logical ring carrying [share] bytes: the standard n-position ring
   algorithm, n-1 reduce-scatter steps and/or n-1 all-gather steps, each
   step moving share/n bytes per position. Returns nothing; transfers are
   appended to [b]. *)
let one_ring b pattern order share =
  let n = Array.length order in
  if n > 1 then begin
    let step_size = share /. float_of_int n in
    let pred p = (p - 1 + n) mod n in
    let run_phase ~tag ~first_deps prev =
      (* prev.(p): the send made by position p in the previous step. *)
      let current = Array.make n (-1) in
      for step = 0 to n - 2 do
        for p = 0 to n - 1 do
          let deps =
            if step = 0 then first_deps p
            else [ prev.(pred p) ]
          in
          current.(p) <-
            Program.add b
              ~tag:(Printf.sprintf "%s-step%d" tag step)
              ~deps ~src:order.(p)
              ~dst:order.((p + 1) mod n)
              ~size:step_size ()
        done;
        Array.blit current 0 prev 0 n
      done;
      prev
    in
    let no_deps _ = [] in
    match pattern with
    | Pattern.All_gather -> ignore (run_phase ~tag:"ag" ~first_deps:no_deps (Array.make n (-1)))
    | Pattern.Reduce_scatter ->
      ignore (run_phase ~tag:"rs" ~first_deps:no_deps (Array.make n (-1)))
    | Pattern.All_reduce ->
      let rs_last = run_phase ~tag:"rs" ~first_deps:no_deps (Array.make n (-1)) in
      (* Position p starts the all-gather with the chunk it finished reducing,
         which arrived from its predecessor in the last reduce-scatter step. *)
      let first_deps p = [ rs_last.(pred p) ] in
      ignore (run_phase ~tag:"ag" ~first_deps (Array.make n (-1)))
    | Pattern.Broadcast _ | Pattern.Reduce _ | Pattern.Gather _ | Pattern.Scatter _
    | Pattern.All_to_all ->
      invalid_arg "Ring.program: unsupported pattern"
  end

let program ?(bidirectional = true) ?rings topo (spec : Spec.t) =
  let n = spec.npus in
  let logical_rings =
    match rings with
    | Some rs -> rs
    | None -> (
      match Topology.rings topo with
      | Some rs when bidirectional ->
        (* Recorded embeddings are single orientations; run each both ways. *)
        rs @ List.map reversed rs
      | Some rs -> rs
      | None ->
        let identity = Array.init n Fun.id in
        if bidirectional then [ identity; reversed identity ] else [ identity ])
  in
  let b = Program.builder () in
  let share = spec.buffer_size /. float_of_int (List.length logical_rings) in
  List.iter (fun order -> one_ring b spec.pattern order share) logical_rings;
  Program.build b
