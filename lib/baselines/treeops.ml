(* Namespaces of the substrate libraries. *)
open Tacos_sim

let broadcast b ~tag tree ~size ~gate =
  let received = Array.make (Array.length tree.Trees.parent) gate in
  List.map
    (fun (parent, child) ->
      let id =
        Program.add b ~tag ~deps:received.(parent) ~src:parent ~dst:child ~size ()
      in
      received.(child) <- [ id ];
      id)
    (Trees.edges_down tree)

let reduce b ~tag tree ~size ~gate =
  let n = Array.length tree.Trees.parent in
  let child_sends = Array.make n [] in
  let ids =
    List.map
      (fun (child, parent) ->
        let id =
          Program.add b ~tag ~deps:(gate @ child_sends.(child)) ~src:child
            ~dst:parent ~size ()
        in
        child_sends.(parent) <- id :: child_sends.(parent);
        id)
      (Trees.edges_up tree)
  in
  (ids, child_sends.(tree.Trees.root))
