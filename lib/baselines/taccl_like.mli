(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective
open Tacos_sim

(** TACCL-like baseline (§V-A, footnote 7).

    TACCL [19] is not runnable here (its MILP needs a commercial solver and
    its topology menu is narrow), so — exactly as the paper did — we stand in
    a TACCL-like synthesizer over our own network representation. Its
    defining property relative to TACOS (§VII-C) is kept: the ILP objective
    routes every chunk on good (earliest-arrival) paths but *cannot encode
    congestion*, so concurrent chunks freely pile onto the same link at
    synthesis time. Concretely, each chunk follows the min-α-β-cost
    shortest-path tree from its owner, all chunks simultaneously, and the
    congestion-aware simulator then charges the contention the formulation
    ignored. *)

val program : Topology.t -> Spec.t -> Program.t
(** Supported patterns: All-Gather, Reduce-Scatter, All-Reduce. *)
