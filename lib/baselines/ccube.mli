(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective
open Tacos_sim

(** C-Cube-like baseline [27] (§VI-B.5): two manually mapped, edge-disjoint
    binary trees over the DGX-1 hybrid cube-mesh, each reducing half the
    buffer to its root and broadcasting it back, chunks pipelined. Faithful
    to the limitation the paper measures: the two trees consume only 4 of
    each GPU's 6 NVLinks, leaving a third of the fabric idle. *)

val program : Topology.t -> Spec.t -> Program.t
(** All-Reduce on the 8-GPU DGX-1 topology only. *)

val tree_links_used : Topology.t -> int
(** Number of directed physical links the two trees touch (for the
    utilization argument of §VI-B.5). *)
