(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective
open Tacos_sim

(** The Ring collective algorithm [21] — the default of most CCLs.

    The collective runs over one or more *logical* rings laid head-to-tail
    over the NPUs; the collective data is split equally across the rings.
    When the physical topology is itself a ring the logical hops map to
    physical links; on any other topology the simulator routes each hop,
    which is precisely where the over/undersubscription of Fig. 1 comes
    from.

    If the topology records ring embeddings ({!Tacos_topology.Topology.rings}
    — e.g. DGX-1's three NCCL rings), those are used; each is run in both
    directions when [bidirectional] (the paper's default, footnote 3).
    Otherwise a single logical ring through NPUs [0..n-1] is used. *)

val program :
  ?bidirectional:bool -> ?rings:int array list -> Topology.t -> Spec.t -> Program.t
(** Supported patterns: All-Gather, Reduce-Scatter, All-Reduce. Raises
    [Invalid_argument] otherwise. *)
