(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective
open Tacos_sim

let program topo (spec : Spec.t) =
  let n = spec.npus in
  let size = Spec.chunk_size spec in
  let usage = Array.make (Topology.num_links topo) 0 in
  let trees = Array.init n (fun root -> Trees.bfs ~link_usage:usage topo ~root) in
  let b = Program.builder () in
  for root = 0 to n - 1 do
    let tree = trees.(root) in
    (* No chunk overlap: slot s+1 of this tree starts only when slot s is
       fully done (the limitation §VII-C describes). *)
    let gate = ref [] in
    for slot = 0 to spec.chunks_per_npu - 1 do
      let tag phase = Printf.sprintf "mt-%s-r%d-s%d" phase root slot in
      match spec.pattern with
      | Pattern.All_gather ->
        gate := Treeops.broadcast b ~tag:(tag "ag") tree ~size ~gate:!gate
      | Pattern.Reduce_scatter ->
        let ids, _ = Treeops.reduce b ~tag:(tag "rs") tree ~size ~gate:!gate in
        gate := ids
      | Pattern.All_reduce ->
        let rs_ids, at_root = Treeops.reduce b ~tag:(tag "rs") tree ~size ~gate:!gate in
        let ag_ids = Treeops.broadcast b ~tag:(tag "ag") tree ~size ~gate:at_root in
        gate := rs_ids @ ag_ids
      | Pattern.Broadcast _ | Pattern.Reduce _ | Pattern.Gather _ | Pattern.Scatter _
      | Pattern.All_to_all ->
        invalid_arg "Multitree.program: unsupported pattern"
    done
  done;
  Program.build b
