(* Namespaces of the substrate libraries. *)
open Tacos_topology

(** Spanning-tree construction shared by the tree-based baselines
    (MultiTree, C-Cube, TACCL-like shortest-path trees). *)

type t = {
  root : int;
  parent : int array;  (** [parent.(root) = -1] *)
  children : int list array;
  depth : int array;
}

val bfs :
  ?link_usage:int array -> Topology.t -> root:int -> t
(** Height-balanced (BFS) spanning tree following physical links away from
    [root]. When [link_usage] is given, ties between candidate parents are
    broken towards the parent whose connecting link has been used least, and
    the chosen links' counters are incremented — this is how MultiTree
    balances n simultaneous trees over the fabric (§VII-C). Raises [Failure]
    if some NPU is unreachable. *)

val shortest_path_tree : Topology.t -> root:int -> size:float -> t
(** Min-α-β-cost paths from [root] to everyone (a Dijkstra tree at message
    size [size]) — the congestion-unaware routing a TACCL-style synthesizer
    picks. *)

val edges_down : t -> (int * int) list
(** (parent, child) pairs in BFS order (parents before their children). *)

val edges_up : t -> (int * int) list
(** (child, parent) pairs, deepest first — the reduce order. *)
