(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective
open Tacos_sim

(** BlueConnect [25]: decompose All-Reduce over a symmetric hierarchical
    network into per-dimension ring Reduce-Scatters (canonical dimension
    order) followed by the mirrored All-Gathers. [chunks] splits the buffer
    into independently pipelined pieces (all taking the same dimension
    order). *)

val program : ?chunks:int -> Topology.t -> Spec.t -> Program.t
(** Supported patterns: All-Gather, Reduce-Scatter, All-Reduce. Requires a
    recorded hierarchy. *)
