(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective
open Tacos_sim

(** The Direct (one-shot) collective algorithm [22]: every NPU exchanges
    directly with every other NPU. Optimal on FullyConnected fabrics and for
    latency-bound tiny collectives; on sparse topologies each of the n(n-1)
    pairwise messages is routed over multiple hops and the fabric melts down
    under contention (Figs. 1, 2a — up to 36× worse than TACOS on the
    multi-node 3D-RFS of Table V). *)

val program : Topology.t -> Spec.t -> Program.t
(** Supported patterns: All-Gather, Reduce-Scatter, All-Reduce. *)
