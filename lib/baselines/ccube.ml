(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective
open Tacos_sim

(* Two binary trees over the DGX-1V hybrid cube-mesh, edge-disjoint when
   doubled NVLinks are counted with multiplicity; every GPU touches at most
   4 of its 6 links. Child lists follow physical NVLinks only. *)
let tree1_children = [| [ 1; 2 ]; [ 3; 5 ]; [ 6 ]; []; []; []; [ 4; 7 ]; [] |]
let tree1_root = 0
let tree2_children = [| []; []; [ 1 ]; [ 0; 2 ]; [ 5 ]; [ 6 ]; []; [ 3; 4 ] |]
let tree2_root = 7

let to_tree root children =
  let n = Array.length children in
  let parent = Array.make n (-1) in
  let depth = Array.make n 0 in
  let rec walk v =
    List.iter
      (fun c ->
        parent.(c) <- v;
        depth.(c) <- depth.(v) + 1;
        walk c)
      children.(v)
  in
  walk root;
  { Trees.root; parent; children; depth }

let trees () =
  [ to_tree tree1_root tree1_children; to_tree tree2_root tree2_children ]

let check_topo topo =
  if Topology.num_npus topo <> 8 then
    invalid_arg "Ccube.program: C-Cube is defined for the 8-GPU DGX-1";
  List.iter
    (fun tree ->
      List.iter
        (fun (p, c) ->
          if Topology.find_links topo ~src:p ~dst:c = [] then
            invalid_arg
              (Printf.sprintf "Ccube.program: tree edge %d->%d is not an NVLink" p c))
        (Trees.edges_down tree))
    (trees ())

let program topo (spec : Spec.t) =
  check_topo topo;
  if spec.pattern <> Pattern.All_reduce then
    invalid_arg "Ccube.program: All-Reduce only";
  let b = Program.builder () in
  (* Each tree owns half the buffer, pipelined in chunks_per_npu pieces. *)
  let slots = spec.chunks_per_npu in
  let size = spec.buffer_size /. 2. /. float_of_int slots in
  List.iteri
    (fun ti tree ->
      for slot = 0 to slots - 1 do
        let tag phase = Printf.sprintf "ccube-%s-t%d-s%d" phase ti slot in
        let _, at_root = Treeops.reduce b ~tag:(tag "red") tree ~size ~gate:[] in
        ignore (Treeops.broadcast b ~tag:(tag "bc") tree ~size ~gate:at_root)
      done)
    (trees ());
  Program.build b

let tree_links_used topo =
  check_topo topo;
  let used = Hashtbl.create 32 in
  List.iter
    (fun tree ->
      List.iter
        (fun (p, c) ->
          (* Both directions are used (reduce up, broadcast down). *)
          Hashtbl.replace used (p, c) ();
          Hashtbl.replace used (c, p) ())
        (Trees.edges_down tree))
    (trees ());
  Hashtbl.length used
