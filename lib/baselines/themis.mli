(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective
open Tacos_sim

(** Themis [18]: BlueConnect with load-balanced chunk scheduling — the
    buffer is split into [chunks] pieces and chunk [c] traverses the
    dimensions in the canonical order rotated by [c], spreading traffic over
    all dimensions concurrently. The paper evaluates Themis with 64 chunks
    (bandwidth-optimal, latency-heavy) and 4 chunks (§VI-B.3). *)

val program : ?chunks:int -> Topology.t -> Spec.t -> Program.t
(** Supported patterns: All-Gather, Reduce-Scatter, All-Reduce. Requires a
    recorded hierarchy. [chunks] defaults to 64. *)
