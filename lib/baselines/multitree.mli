(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective
open Tacos_sim

(** MultiTree-like synthesizer [29]: one height-balanced BFS spanning tree
    per NPU (link-usage tie-breaking spreads the n trees over the fabric),
    broadcasting each NPU's data down its tree (All-Gather) or reducing up
    it (Reduce-Scatter); All-Reduce chains both.

    Faithful limitation (§VII-C): MultiTree does not overlap concurrent
    chunks — with [chunks_per_npu > 1] the slots of a given tree run
    strictly one after another, which is why it saturates beyond ~1 MB in
    Fig. 17(a) while Themis/TACOS keep pipelining. *)

val program : Topology.t -> Spec.t -> Program.t
(** Supported patterns: All-Gather, Reduce-Scatter, All-Reduce. *)
