(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective
open Tacos_sim

let program ?(chunks = 1) topo (spec : Spec.t) =
  if chunks <= 0 then invalid_arg "Blueconnect.program: chunks must be positive";
  let rank =
    match Topology.hierarchy topo with
    | Some dims -> Array.length dims
    | None -> invalid_arg "Blueconnect.program: topology has no recorded hierarchy"
  in
  let b = Program.builder () in
  let share = spec.buffer_size /. float_of_int chunks in
  let order = List.init rank Fun.id in
  for c = 0 to chunks - 1 do
    Hiercoll.pipeline b topo ~pattern:spec.pattern ~share ~rs_order:order
      ~tag:(Printf.sprintf "bc-c%d" c)
  done;
  Program.build b
