(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective
open Tacos_sim

(** Uniform handle over every baseline collective algorithm of §V-A, plus
    the simulation driver the benches use. *)

type t =
  | Ring of { bidirectional : bool }
  | Direct
  | Rhd
  | Dbt
  | Blueconnect of { chunks : int }
  | Themis of { chunks : int }
  | Multitree
  | Taccl_like
  | Ccube

val name : t -> string

val ring : t
(** Bidirectional Ring, the paper's default baseline. *)

val program : t -> Topology.t -> Spec.t -> Program.t
(** Build the algorithm's logical program for this collective instance. *)

val simulate : ?routing_size:float -> t -> Topology.t -> Spec.t -> Engine.report
(** [program] then {!Engine.run}. *)

val all : t list
(** The topology-agnostic candidates a fallback ladder can always try: Ring,
    Direct, RHD, DBT, MultiTree, TACCL-like (the hierarchy-bound algorithms
    need extra parameters and are probed separately when applicable). *)

val probe : ?routing_size:float -> t -> Topology.t -> Spec.t -> (Engine.report, string) result
(** Feasibility probe: build and simulate, turning the structural
    [Invalid_argument]/[Failure] exceptions (unsupported pattern, non-power-
    of-two NPU count, missing hierarchy, unroutable fabric) into [Error] —
    the building block of the degraded-fabric fallback ladder in
    [Tacos_resilience]. *)

val best_feasible :
  ?routing_size:float -> ?candidates:t list -> Topology.t -> Spec.t ->
  (t * Engine.report) option
(** The feasible candidate (default {!all}) with the smallest simulated
    completion time, or [None] when every probe fails. *)

val collective_time : ?routing_size:float -> t -> Topology.t -> Spec.t -> float
(** The simulated completion time. *)

val bandwidth : ?routing_size:float -> t -> Topology.t -> Spec.t -> float
(** Collective bandwidth = buffer size / completion time (the paper's
    reporting metric). *)
