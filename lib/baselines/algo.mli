(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective
open Tacos_sim

(** Uniform handle over every baseline collective algorithm of §V-A, plus
    the simulation driver the benches use. *)

type t =
  | Ring of { bidirectional : bool }
  | Direct
  | Rhd
  | Dbt
  | Blueconnect of { chunks : int }
  | Themis of { chunks : int }
  | Multitree
  | Taccl_like
  | Ccube

val name : t -> string

val ring : t
(** Bidirectional Ring, the paper's default baseline. *)

val program : t -> Topology.t -> Spec.t -> Program.t
(** Build the algorithm's logical program for this collective instance. *)

val simulate : ?routing_size:float -> t -> Topology.t -> Spec.t -> Engine.report
(** [program] then {!Engine.run}. *)

val collective_time : ?routing_size:float -> t -> Topology.t -> Spec.t -> float
(** The simulated completion time. *)

val bandwidth : ?routing_size:float -> t -> Topology.t -> Spec.t -> float
(** Collective bandwidth = buffer size / completion time (the paper's
    reporting metric). *)
