(* Namespaces of the substrate libraries. *)
open Tacos_topology
open Tacos_collective
open Tacos_sim

let rotate order by =
  let n = List.length order in
  List.init n (fun i -> List.nth order ((i + by) mod n))

let program ?(chunks = 64) topo (spec : Spec.t) =
  if chunks <= 0 then invalid_arg "Themis.program: chunks must be positive";
  let rank =
    match Topology.hierarchy topo with
    | Some dims -> Array.length dims
    | None -> invalid_arg "Themis.program: topology has no recorded hierarchy"
  in
  let b = Program.builder () in
  let share = spec.buffer_size /. float_of_int chunks in
  let canonical = List.init rank Fun.id in
  for c = 0 to chunks - 1 do
    Hiercoll.pipeline b topo ~pattern:spec.pattern ~share
      ~rs_order:(rotate canonical (c mod rank))
      ~tag:(Printf.sprintf "themis-c%d" c)
  done;
  Program.build b
