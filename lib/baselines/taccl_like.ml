(* Namespaces of the substrate libraries. *)
open Tacos_collective
open Tacos_sim

let program topo (spec : Spec.t) =
  let n = spec.npus in
  let size = Spec.chunk_size spec in
  let trees = Array.init n (fun root -> Trees.shortest_path_tree topo ~root ~size) in
  let b = Program.builder () in
  for root = 0 to n - 1 do
    let tree = trees.(root) in
    for slot = 0 to spec.chunks_per_npu - 1 do
      let tag phase = Printf.sprintf "taccl-%s-r%d-s%d" phase root slot in
      (* Chunks are routed independently and overlap freely — congestion is
         invisible to the formulation. *)
      match spec.pattern with
      | Pattern.All_gather ->
        ignore (Treeops.broadcast b ~tag:(tag "ag") tree ~size ~gate:[])
      | Pattern.Reduce_scatter ->
        ignore (Treeops.reduce b ~tag:(tag "rs") tree ~size ~gate:[])
      | Pattern.All_reduce ->
        let _, at_root = Treeops.reduce b ~tag:(tag "rs") tree ~size ~gate:[] in
        ignore (Treeops.broadcast b ~tag:(tag "ag") tree ~size ~gate:at_root)
      | Pattern.Broadcast _ | Pattern.Reduce _ | Pattern.Gather _ | Pattern.Scatter _
      | Pattern.All_to_all ->
        invalid_arg "Taccl_like.program: unsupported pattern"
    done
  done;
  Program.build b
