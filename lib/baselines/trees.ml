(* Namespaces of the substrate libraries. *)
open Tacos_topology

type t = {
  root : int;
  parent : int array;
  children : int list array;
  depth : int array;
}

let finalize topo root parent depth =
  let n = Topology.num_npus topo in
  let children = Array.make n [] in
  for v = n - 1 downto 0 do
    if v <> root then begin
      if parent.(v) < 0 then
        failwith (Printf.sprintf "Trees: NPU %d unreachable from root %d" v root);
      children.(parent.(v)) <- v :: children.(parent.(v))
    end
  done;
  { root; parent; children; depth }

let bfs ?link_usage topo ~root =
  let n = Topology.num_npus topo in
  let parent = Array.make n (-1) in
  let depth = Array.make n max_int in
  depth.(root) <- 0;
  let frontier = Queue.create () in
  Queue.push root frontier;
  while not (Queue.is_empty frontier) do
    let v = Queue.pop frontier in
    (* Visit out-links least-used first so concurrent trees spread load. *)
    let outs =
      let outs = Topology.out_edges topo v in
      match link_usage with
      | None -> outs
      | Some usage ->
        List.stable_sort
          (fun (a : Topology.edge) (b : Topology.edge) ->
            compare usage.(a.id) usage.(b.id))
          outs
    in
    List.iter
      (fun (e : Topology.edge) ->
        if depth.(e.dst) = max_int then begin
          depth.(e.dst) <- depth.(v) + 1;
          parent.(e.dst) <- v;
          (match link_usage with
          | Some usage -> usage.(e.id) <- usage.(e.id) + 1
          | None -> ());
          Queue.push e.dst frontier
        end)
      outs
  done;
  finalize topo root parent depth

let shortest_path_tree topo ~root ~size =
  let n = Topology.num_npus topo in
  let parent = Array.make n (-1) in
  let dist = Array.make n infinity in
  dist.(root) <- 0.;
  let module P = Set.Make (struct
    type t = float * int

    let compare = compare
  end) in
  let pq = ref (P.singleton (0., root)) in
  while not (P.is_empty !pq) do
    let ((d, v) as elt) = P.min_elt !pq in
    pq := P.remove elt !pq;
    if d <= dist.(v) then
      List.iter
        (fun (e : Topology.edge) ->
          let nd = d +. Link.cost e.link size in
          if nd < dist.(e.dst) then begin
            dist.(e.dst) <- nd;
            parent.(e.dst) <- v;
            pq := P.add (nd, e.dst) !pq
          end)
        (Topology.out_edges topo v)
  done;
  let depth = Array.make n 0 in
  let rec compute_depth v =
    if v <> root && depth.(v) = 0 then begin
      if parent.(v) < 0 then
        failwith (Printf.sprintf "Trees: NPU %d unreachable from root %d" v root);
      compute_depth parent.(v);
      depth.(v) <- depth.(parent.(v)) + 1
    end
  in
  for v = 0 to n - 1 do
    compute_depth v
  done;
  finalize topo root parent depth

let edges_down t =
  let pairs = ref [] in
  Array.iteri
    (fun v p -> if p >= 0 then pairs := (p, v, t.depth.(v)) :: !pairs)
    t.parent;
  List.map
    (fun (p, v, _) -> (p, v))
    (List.sort (fun (_, _, d1) (_, _, d2) -> compare d1 d2) !pairs)

let edges_up t =
  List.rev_map (fun (p, v) -> (v, p)) (edges_down t)
