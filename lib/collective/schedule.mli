(* Namespaces of the substrate libraries. *)
open Tacos_topology

(** Collective-algorithm intermediate representation: a set of timed,
    link-assigned chunk transfers.

    This is the common output format of the TACOS synthesizer and the input
    the validator and analyses work on. A schedule is exactly the "static
    path of each chunk" the paper defines a collective algorithm to be
    (§II-B), with the TEN timing made explicit: each send occupies one
    physical link for one interval, and a link carries at most one chunk at a
    time (the congestion-freedom invariant of §IV-B). *)

type send = {
  chunk : int;
  edge : int;  (** physical link id in the topology *)
  src : int;
  dst : int;
  start : float;
  finish : float;
}

type t = private { sends : send list; makespan : float }
(** [sends] are sorted by start time; [makespan] is the largest finish time
    (0 for the empty schedule). *)

val make : send list -> t
val empty : t
val num_sends : t -> int

val eps_for : float -> float
(** Magnitude-scaled tolerance for floating-point time comparisons:
    [1e-9 + 1e-9 * |t|]. Shared by the validator and the router's
    reservation calendars so "free slot" and "congestion-free" agree. *)

val shift : t -> float -> t
(** Translate every send in time. *)

val reverse : t -> t
(** Time-mirror the schedule and swap each send's direction, keeping the
    link id — the §IV-E reversal that turns an All-Gather on the reversed
    topology into a Reduce-Scatter on the original one (Fig. 11). *)

val concat : t -> t -> t
(** [concat a b] runs [b] after [a] ([b] shifted by [a.makespan]) — how
    All-Reduce is assembled from Reduce-Scatter and All-Gather. *)

val union : t -> t -> t
(** [union a b] overlays two schedules as-is (no shifting): the sends of
    both, sorted, with the larger makespan. O(n) — it merges the two
    already-sorted send lists instead of re-sorting, so composing many
    parts stays linear. The caller is responsible for the parts being
    disjoint in link occupancy where they overlap in time. *)

val phase_of_send : reduce_scatter:t -> send -> string
(** Which phase of a {!concat}-assembled All-Reduce a send belongs to:
    ["all-gather"] when it starts at or after the Reduce-Scatter makespan
    (within {!eps_for}), ["reduce-scatter"] otherwise. Used to tag engine
    transfers so the critical-path analyzer can attribute the makespan per
    collective phase. *)

val validate_positioned :
  Topology.t ->
  ?forbidden:(int * float) list ->
  precondition:(int * int) list ->
  postcondition:(int * int) list ->
  num_chunks:int ->
  chunk_size:float ->
  t ->
  (unit, string) result
(** The validator of {!validate} against explicit [(npu, chunk)] position
    lists instead of a {!Spec.t}-derived pre/postcondition — the form used by
    mid-flight schedule repair, where the "precondition" is wherever the
    chunks actually were when the fault landed. Non-combining semantics.
    [forbidden] lists [(link, dead_from)] pairs: a send overlapping a link's
    dead interval fails validation, which lets composite repaired schedules
    (kept prefix + patches) validate on the {e healthy} topology. *)

val validate_reduction :
  Topology.t ->
  ?forbidden:(int * float) list ->
  contributions:(int * int) list ->
  postcondition:(int * int) list ->
  num_chunks:int ->
  chunk_size:float ->
  combining:t ->
  pull:t ->
  unit ->
  (unit, string) result
(** Reduction-aware positional validation — the validator mid-flight repair
    of combining collectives uses. [contributions] lists [(npu, chunk)]:
    which ranks contribute an input to each chunk (each NPU starts holding
    exactly its own contribution). The plan is structural: [combining] sends
    move partial sums — the source's accumulated contribution set is spent at
    the send's start and merged (checked disjoint, so no contribution is
    absorbed twice) into the destination at its finish; [pull] sends
    replicate fully-reduced values — the source must hold every contribution
    when the send starts. Both schedules share one clock, so kept prefixes
    and repair patches from several fault epochs validate as one composite.
    Physical legality (links exist, α-β durations, one chunk per link at a
    time, [forbidden] intervals) is checked over the union. The
    [postcondition] requires the named NPUs to hold the fully reduced chunk. *)

val validate : Topology.t -> Spec.t -> t -> (unit, string) result
(** Check physical legality and semantic correctness:
    - every send's link exists and matches its endpoints;
    - a send's duration covers the α-β cost of one chunk;
    - no two sends overlap on the same link;
    - the chunk is present at the source when a send starts (causality from
      the precondition plus earlier receives);
    - the postcondition holds at the end.
    Combining patterns are checked by validating the reversed schedule against
    the reversed spec on the reversed topology. For the composite
    [All_reduce] use {!validate_all_reduce}. *)

val validate_all_reduce :
  Topology.t -> Spec.t -> reduce_scatter:t -> all_gather:t -> (unit, string) result
(** Validate an All-Reduce assembled as a Reduce-Scatter phase followed by an
    All-Gather phase (the All-Gather is expected to start after the
    Reduce-Scatter's makespan, as produced by {!concat}). *)

(** {1 Analyses} *)

val link_bytes : Topology.t -> chunk_size:float -> t -> float array
(** Total bytes carried per link id (Fig. 1 heat maps). *)

val link_busy_seconds : Topology.t -> t -> float array

val utilization_timeline : Topology.t -> bins:int -> t -> (float * float) list
(** [(bin_end_time, fraction_of_links_busy)] averaged per bin over the
    schedule's makespan (Figs. 16b, 18). *)

val average_utilization : Topology.t -> t -> float
(** Mean fraction of links busy over the makespan. *)

val chunk_path : t -> int -> send list
(** The sends that move one chunk, in time order — its static route. *)

val pp_events : ?chunk_names:(int -> string) -> Format.formatter -> t -> unit
(** Human-readable event listing, one line per send. *)

val of_json : string -> (t, string) result
(** Load a schedule previously written by {!to_json} (or hand-authored in
    the same shape) — the import path a CCL-facing deployment would use.
    The collective metadata, if present, is ignored; only the send list is
    read. *)

val to_json : ?spec:Spec.t -> t -> string
(** Serialize the schedule for consumption by an external CCL runtime (in
    the spirit of MSCCL-style algorithm files): a JSON object with the
    collective metadata (when [spec] is given) and the flat send list
    [{chunk, src, dst, link, start, finish}]. Times are seconds. *)
