(* Namespaces of the substrate libraries. *)
open Tacos_topology

(** SVG rendering of a schedule as a link-time Gantt chart: one row per
    physical link, one rectangle per send, colored by chunk. The visual
    counterpart of the paper's TEN figures, for schedules too large for the
    ASCII grid. *)

val render : Topology.t -> Schedule.t -> string
(** A standalone SVG document. Empty schedules render an empty chart. *)
