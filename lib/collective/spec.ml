type t = {
  pattern : Pattern.t;
  npus : int;
  chunks_per_npu : int;
  buffer_size : float;
}

let check_root npus = function
  | Pattern.Broadcast r | Pattern.Reduce r | Pattern.Gather r | Pattern.Scatter r ->
    if r < 0 || r >= npus then invalid_arg "Spec.make: root out of range"
  | Pattern.All_gather | Pattern.Reduce_scatter | Pattern.All_reduce
  | Pattern.All_to_all ->
    ()

let make ?(chunks_per_npu = 1) ?(buffer_size = 1.0) ~pattern ~npus () =
  if npus <= 0 then invalid_arg "Spec.make: npus must be positive";
  if chunks_per_npu <= 0 then invalid_arg "Spec.make: chunks_per_npu must be positive";
  if buffer_size <= 0. then invalid_arg "Spec.make: buffer_size must be positive";
  check_root npus pattern;
  { pattern; npus; chunks_per_npu; buffer_size }

let rooted t =
  match t.pattern with
  | Pattern.Broadcast r | Pattern.Reduce r -> Some r
  | Pattern.Gather _ | Pattern.Scatter _ | Pattern.All_gather | Pattern.Reduce_scatter
  | Pattern.All_reduce | Pattern.All_to_all ->
    None

let num_chunks t =
  match t.pattern with
  | Pattern.Broadcast _ | Pattern.Reduce _ -> t.chunks_per_npu
  | Pattern.All_gather | Pattern.Reduce_scatter | Pattern.All_reduce | Pattern.Gather _
  | Pattern.Scatter _ ->
    t.npus * t.chunks_per_npu
  | Pattern.All_to_all ->
    (* One chunk group per ordered (src, dst) pair, diagonal included so the
       indexing stays rectangular (diagonal chunks are trivially satisfied). *)
    t.npus * t.npus * t.chunks_per_npu

let chunk_size t = t.buffer_size /. float_of_int (num_chunks t)

let owner t c =
  if c < 0 || c >= num_chunks t then invalid_arg "Spec.owner: chunk out of range";
  match rooted t with
  | Some r -> r
  | None -> (
    match t.pattern with
    | Pattern.All_to_all -> c / t.chunks_per_npu / t.npus
    | _ -> c / t.chunks_per_npu)

(* All-to-All chunk (src, dst, slot) <-> id helpers. *)
let a2a_chunk t ~src ~dst slot = (((src * t.npus) + dst) * t.chunks_per_npu) + slot
let a2a_dest t c = c / t.chunks_per_npu mod t.npus

let all_npus t = List.init t.npus Fun.id
let all_chunks t = List.init (num_chunks t) Fun.id

let anchored t = List.map (fun c -> (owner t c, c)) (all_chunks t)

let everywhere t =
  List.concat_map (fun d -> List.map (fun c -> (d, c)) (all_chunks t)) (all_npus t)

let at_root t r = List.map (fun c -> (r, c)) (all_chunks t)

let precondition t =
  match t.pattern with
  | Pattern.All_gather | Pattern.Gather _ -> anchored t
  | Pattern.Reduce_scatter | Pattern.Reduce _ | Pattern.All_reduce -> everywhere t
  | Pattern.Broadcast r -> at_root t r
  | Pattern.Scatter r -> at_root t r
  | Pattern.All_to_all -> anchored t

let postcondition t =
  match t.pattern with
  | Pattern.All_gather | Pattern.Broadcast _ | Pattern.All_reduce -> everywhere t
  | Pattern.Reduce_scatter | Pattern.Scatter _ -> anchored t
  | Pattern.Reduce r | Pattern.Gather r -> at_root t r
  | Pattern.All_to_all -> List.map (fun c -> (a2a_dest t c, c)) (all_chunks t)

let with_pattern t pattern =
  check_root t.npus pattern;
  { t with pattern }

let reverse t =
  match Pattern.counterpart t.pattern with
  | Some p -> { t with pattern = p }
  | None -> invalid_arg "Spec.reverse: All-Reduce is composite; reverse its phases"

let pp ppf t =
  Format.fprintf ppf "%s over %d NPUs, %d chunk(s)/NPU, %s"
    (Pattern.name t.pattern) t.npus t.chunks_per_npu
    (Tacos_util.Units.bytes_pp t.buffer_size)
