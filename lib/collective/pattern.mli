(** Collective communication patterns (§II-A, Fig. 4). *)

type t =
  | All_gather
  | Reduce_scatter
  | All_reduce
  | Broadcast of int  (** root NPU *)
  | Reduce of int  (** root NPU *)
  | Gather of int  (** root NPU *)
  | Scatter of int  (** root NPU *)
  | All_to_all
      (** every NPU sends a distinct chunk to every other NPU (MoE-style);
          an extension beyond the paper's Table III, synthesized by
          {!Tacos.Alltoall} rather than the matching loop *)

val name : t -> string

val is_combining : t -> bool
(** True for patterns that involve reduction of chunks (Reduce-Scatter,
    Reduce). TACOS synthesizes these by synthesizing the reversed
    non-combining counterpart and mirroring the schedule (§IV-E, Fig. 11).
    [All_reduce] is composite (Reduce-Scatter then All-Gather) and reports
    [false]; use {!counterpart} / composition instead. *)

val counterpart : t -> t option
(** The non-combining pattern whose reversal yields this one:
    [Reduce_scatter -> Some All_gather], [Reduce r -> Some (Broadcast r)],
    [Scatter r -> Some (Gather r)] (and vice versa for the reversible
    non-combining pairs). [None] for [All_reduce]. *)
