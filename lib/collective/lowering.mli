(** Lowering a schedule to per-NPU operation streams.

    A CCL runtime executes a collective algorithm as one program per NPU —
    an ordered list of sends and receives with their peers. This module
    derives those programs from a synthesized schedule, which is also a
    convenient form for eyeballing what any single NPU does. *)

type op =
  | Send of { chunk : int; peer : int; link : int; start : float; finish : float }
  | Recv of { chunk : int; peer : int; link : int; start : float; finish : float }

val time_of : op -> float
(** The op's start time (sort key). *)

val npu_programs : npus:int -> Schedule.t -> op list array
(** [npu_programs ~npus sched]: for each NPU, its sends and receives in
    start-time order (receives keyed by the matching send's interval). *)

val pp_program : Format.formatter -> op list -> unit
(** One line per op, e.g. ["[1.0us] send chunk 3 -> NPU 5 (link 12)"]. *)
