type t =
  | All_gather
  | Reduce_scatter
  | All_reduce
  | Broadcast of int
  | Reduce of int
  | Gather of int
  | Scatter of int
  | All_to_all

let name = function
  | All_gather -> "All-Gather"
  | Reduce_scatter -> "Reduce-Scatter"
  | All_reduce -> "All-Reduce"
  | Broadcast r -> Printf.sprintf "Broadcast(root=%d)" r
  | Reduce r -> Printf.sprintf "Reduce(root=%d)" r
  | Gather r -> Printf.sprintf "Gather(root=%d)" r
  | Scatter r -> Printf.sprintf "Scatter(root=%d)" r
  | All_to_all -> "All-to-All"

let is_combining = function
  | Reduce_scatter | Reduce _ -> true
  | All_gather | All_reduce | Broadcast _ | Gather _ | Scatter _ | All_to_all -> false

let counterpart = function
  | Reduce_scatter -> Some All_gather
  | All_gather -> Some Reduce_scatter
  | Reduce r -> Some (Broadcast r)
  | Broadcast r -> Some (Reduce r)
  | Scatter r -> Some (Gather r)
  | Gather r -> Some (Scatter r)
  | All_reduce -> None
  | All_to_all -> None
