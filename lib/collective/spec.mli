(** A concrete collective instance: pattern + NPU count + chunking + size.

    Size convention: [buffer_size] is the size in bytes of the full collective
    vector — the per-NPU buffer of an All-Reduce, the concatenated result of
    an All-Gather, or the root buffer of a Broadcast. This matches the
    paper's "collective size" (e.g. "1 GB All-Reduce"), and All-Reduce
    bandwidth is [buffer_size / collective_time].

    The vector is split into chunks, the atomic scheduling unit (§II-A). For
    the owner-based patterns (All-Gather, Reduce-Scatter, All-Reduce, Gather,
    Scatter) there are [npus * chunks_per_npu] chunks and chunk [c] initially
    belongs to NPU [c / chunks_per_npu]; for rooted Broadcast/Reduce there are
    [chunks_per_npu] chunks, all rooted; for All-to-All there is one chunk
    group per ordered (src, dst) pair ([npus^2 * chunks_per_npu] ids, see
    {!a2a_chunk}). *)

type t = private {
  pattern : Pattern.t;
  npus : int;
  chunks_per_npu : int;
  buffer_size : float;
}

val make :
  ?chunks_per_npu:int -> ?buffer_size:float -> pattern:Pattern.t -> npus:int -> unit -> t
(** [chunks_per_npu] defaults to 1, [buffer_size] to [1.0] (1 byte — handy
    for purely structural uses). Raises [Invalid_argument] on a nonpositive
    field or an out-of-range root. *)

val num_chunks : t -> int
val chunk_size : t -> float

val owner : t -> int -> int
(** [owner t c]: the NPU that chunk [c] is anchored to (its initial holder in
    All-Gather, its final holder in Reduce-Scatter, the root for rooted
    patterns). *)

val a2a_chunk : t -> src:int -> dst:int -> int -> int
(** All-to-All chunk id for (source, destination, slot). Meaningful only for
    the [All_to_all] pattern, whose chunks are indexed per ordered pair. *)

val a2a_dest : t -> int -> int
(** The destination NPU encoded in an All-to-All chunk id. *)

val precondition : t -> (int * int) list
(** [(npu, chunk)] pairs held at t = 0. For the composite [All_reduce] this
    is the Reduce-Scatter precondition. *)

val postcondition : t -> (int * int) list
(** [(npu, chunk)] pairs that must hold at the end. For [All_reduce] this is
    the All-Gather postcondition (everyone holds everything). *)

val reverse : t -> t
(** The spec whose synthesis, mirrored in time on the reversed topology,
    implements this one (§IV-E). Raises [Invalid_argument] for [All_reduce]. *)

val with_pattern : t -> Pattern.t -> t

val pp : Format.formatter -> t -> unit
