(* Namespaces of the substrate libraries. *)
open Tacos_topology

type send = {
  chunk : int;
  edge : int;
  src : int;
  dst : int;
  start : float;
  finish : float;
}

type t = { sends : send list; makespan : float }

(* Relative tolerance for floating-point time comparisons. *)
let eps_for makespan = 1e-9 +. (1e-9 *. Float.abs makespan)

let make sends =
  List.iter
    (fun s ->
      if s.start < 0. || s.finish < s.start then
        invalid_arg "Schedule.make: bad send interval")
    sends;
  let sends =
    List.stable_sort
      (fun a b ->
        let c = Float.compare a.start b.start in
        if c <> 0 then c else Float.compare a.finish b.finish)
      sends
  in
  let makespan = List.fold_left (fun acc s -> Float.max acc s.finish) 0. sends in
  { sends; makespan }

let empty = { sends = []; makespan = 0. }
let num_sends t = List.length t.sends

let shift t dt =
  make
    (List.map (fun s -> { s with start = s.start +. dt; finish = s.finish +. dt }) t.sends)

let reverse t =
  let m = t.makespan in
  make
    (List.map
       (fun s ->
         {
           s with
           src = s.dst;
           dst = s.src;
           start = m -. s.finish;
           finish = m -. s.start;
         })
       t.sends)

let concat a b =
  let b = shift b a.makespan in
  make (a.sends @ b.sends)

let union a b =
  let cmp x y =
    let c = Float.compare x.start y.start in
    if c <> 0 then c else Float.compare x.finish y.finish
  in
  {
    sends = List.merge cmp a.sends b.sends;
    makespan = Float.max a.makespan b.makespan;
  }

let phase_of_send ~reduce_scatter s =
  (* A send of the concatenated All-Reduce belongs to the All-Gather phase
     iff it starts at or after the Reduce-Scatter makespan (the phases butt
     up exactly, so compare with the shared tolerance). *)
  let eps = eps_for reduce_scatter.makespan in
  if s.start +. eps >= reduce_scatter.makespan then "all-gather" else "reduce-scatter"

(* --- validation ------------------------------------------------------- *)

(* [forbidden] lists (link id, dead-from time) pairs: any send that overlaps
   a link's dead interval is illegal. Mid-flight repair validates composite
   (kept prefix + patches) schedules on the *healthy* topology this way —
   kept sends legitimately rode the link before it died. *)
let check_forbidden ~eps forbidden s =
  List.find_map
    (fun (link, from) ->
      if s.edge = link && s.finish > from +. eps then
        Some
          (Printf.sprintf "send of chunk %d rides link %d after it died at %g"
             s.chunk link from)
      else None)
    forbidden

let validate_positioned topo ?(forbidden = []) ~precondition ~postcondition
    ~num_chunks ~chunk_size t =
  let eps = eps_for t.makespan in
  let npus = Topology.num_npus topo in
  let chunks = num_chunks in
  let exception Bad of string in
  try
    (* arrival.(d).(c): earliest time chunk c is known to be at NPU d. *)
    let arrival = Array.make_matrix npus chunks infinity in
    List.iter (fun (d, c) -> arrival.(d).(c) <- 0.) precondition;
    let last_free = Hashtbl.create 64 in
    List.iter
      (fun s ->
        if s.chunk < 0 || s.chunk >= chunks then
          raise (Bad (Printf.sprintf "send of unknown chunk %d" s.chunk));
        let e =
          try Topology.edge topo s.edge
          with Invalid_argument _ ->
            raise (Bad (Printf.sprintf "send over unknown link %d" s.edge))
        in
        if e.Topology.src <> s.src || e.Topology.dst <> s.dst then
          raise
            (Bad
               (Printf.sprintf "send %d->%d does not match link %d (%d->%d)" s.src
                  s.dst s.edge e.Topology.src e.Topology.dst));
        (match check_forbidden ~eps forbidden s with
        | Some msg -> raise (Bad msg)
        | None -> ());
        let cost = Link.cost e.Topology.link chunk_size in
        if s.finish -. s.start < cost -. eps then
          raise
            (Bad
               (Printf.sprintf "send of chunk %d on link %d shorter than its α-β cost"
                  s.chunk s.edge));
        (match Hashtbl.find_opt last_free s.edge with
        | Some free when s.start < free -. eps ->
          raise (Bad (Printf.sprintf "link %d carries two chunks at once" s.edge))
        | _ -> ());
        Hashtbl.replace last_free s.edge s.finish;
        if arrival.(s.src).(s.chunk) > s.start +. eps then
          raise
            (Bad
               (Printf.sprintf "NPU %d sends chunk %d at %g before holding it" s.src
                  s.chunk s.start));
        arrival.(s.dst).(s.chunk) <- Float.min arrival.(s.dst).(s.chunk) s.finish)
      t.sends;
    List.iter
      (fun (d, c) ->
        if arrival.(d).(c) = infinity then
          raise (Bad (Printf.sprintf "postcondition unmet: NPU %d never gets chunk %d" d c)))
      postcondition;
    Ok ()
  with Bad msg -> Error msg

let validate_noncombining topo spec t =
  validate_positioned topo
    ~precondition:(Spec.precondition spec)
    ~postcondition:(Spec.postcondition spec)
    ~num_chunks:(Spec.num_chunks spec) ~chunk_size:(Spec.chunk_size spec) t

let validate topo spec t =
  if Pattern.is_combining spec.Spec.pattern then
    validate_noncombining (Topology.reverse topo) (Spec.reverse spec) (reverse t)
  else
    match spec.Spec.pattern with
    | Pattern.All_reduce ->
      Error "Schedule.validate: use validate_all_reduce for All-Reduce"
    | _ -> validate_noncombining topo spec t

let validate_all_reduce topo spec ~reduce_scatter ~all_gather =
  match spec.Spec.pattern with
  | Pattern.All_reduce -> (
    let phase pattern = Spec.with_pattern spec pattern in
    match validate topo (phase Pattern.Reduce_scatter) reduce_scatter with
    | Error e -> Error ("reduce-scatter phase: " ^ e)
    | Ok () -> (
      let eps = eps_for reduce_scatter.makespan in
      let ag_start =
        List.fold_left (fun acc s -> Float.min acc s.start) infinity all_gather.sends
      in
      if all_gather.sends <> [] && ag_start < reduce_scatter.makespan -. eps then
        Error "all-gather phase starts before reduce-scatter completes"
      else
        match
          validate topo (phase Pattern.All_gather)
            (shift all_gather (-.reduce_scatter.makespan))
        with
        | Error e -> Error ("all-gather phase: " ^ e)
        | Ok () -> Ok ()))
  | _ -> Error "Schedule.validate_all_reduce: spec is not All-Reduce"

(* Reduction-aware validation in positional form. The plan is split
   structurally: [combining] sends move *partial sums* (the source's
   accumulated contributions are spent and merged into the destination —
   exact, disjoint set union), [pull] sends replicate *fully reduced* values.
   The replay applies events in chronological order (a merge finishing at t
   can feed a send starting at t), so multi-epoch composites — kept healthy
   prefix plus per-epoch repair patches, all in one schedule pair — validate
   in a single pass. *)
let validate_reduction topo ?(forbidden = []) ~contributions ~postcondition
    ~num_chunks ~chunk_size ~combining ~pull () =
  let module Iset = Set.Make (Int) in
  let eps = eps_for (Float.max combining.makespan pull.makespan) in
  let npus = Topology.num_npus topo in
  let exception Bad of string in
  try
    if num_chunks <= 0 then raise (Bad "num_chunks must be positive");
    let contributors = Array.make num_chunks Iset.empty in
    let absorbed = Array.make_matrix npus num_chunks Iset.empty in
    List.iter
      (fun (v, c) ->
        if v < 0 || v >= npus || c < 0 || c >= num_chunks then
          raise (Bad (Printf.sprintf "contribution (%d, %d) out of range" v c));
        contributors.(c) <- Iset.add v contributors.(c);
        absorbed.(v).(c) <- Iset.add v absorbed.(v).(c))
      contributions;
    (* Physical legality of the union: links exist and match endpoints,
       durations cover the α-β cost, one chunk per link at a time, no send
       overlaps a dead interval. *)
    let all_sends =
      List.merge
        (fun a b -> Float.compare a.start b.start)
        combining.sends pull.sends
    in
    let last_free = Hashtbl.create 64 in
    List.iter
      (fun s ->
        if s.chunk < 0 || s.chunk >= num_chunks then
          raise (Bad (Printf.sprintf "send of unknown chunk %d" s.chunk));
        let e =
          try Topology.edge topo s.edge
          with Invalid_argument _ ->
            raise (Bad (Printf.sprintf "send over unknown link %d" s.edge))
        in
        if e.Topology.src <> s.src || e.Topology.dst <> s.dst then
          raise
            (Bad
               (Printf.sprintf "send %d->%d does not match link %d (%d->%d)" s.src
                  s.dst s.edge e.Topology.src e.Topology.dst));
        (match check_forbidden ~eps forbidden s with
        | Some msg -> raise (Bad msg)
        | None -> ());
        if s.finish -. s.start < Link.cost e.Topology.link chunk_size -. eps then
          raise
            (Bad
               (Printf.sprintf "send of chunk %d on link %d shorter than its α-β cost"
                  s.chunk s.edge));
        (match Hashtbl.find_opt last_free s.edge with
        | Some free when s.start < free -. eps ->
          raise (Bad (Printf.sprintf "link %d carries two chunks at once" s.edge))
        | _ -> ());
        Hashtbl.replace last_free s.edge s.finish)
      all_sends;
    (* Semantic replay. A combining send snapshots (and spends) the source's
       partial at its start and merges it into the destination at its finish;
       a pull send requires the source to hold the fully reduced value at its
       start and replicates it at its finish. Finishes sort before starts at
       equal times. *)
    let events =
      List.concat_map
        (fun s -> [ (s.start, 1, `Combine_start, s); (s.finish, 0, `Combine_finish, s) ])
        combining.sends
      @ List.concat_map
          (fun s -> [ (s.start, 1, `Pull_start, s); (s.finish, 0, `Pull_finish, s) ])
          pull.sends
    in
    let events =
      List.sort
        (fun (ta, pa, _, _) (tb, pb, _, _) ->
          let c = Float.compare ta tb in
          if c <> 0 then c else compare pa pb)
        events
    in
    let in_flight : (int * float, Iset.t) Hashtbl.t = Hashtbl.create 64 in
    let key (s : send) = (s.edge, s.start) in
    List.iter
      (fun (_, _, kind, s) ->
        let c = s.chunk in
        match kind with
        | `Combine_start ->
          Hashtbl.replace in_flight (key s) absorbed.(s.src).(c);
          absorbed.(s.src).(c) <- Iset.empty
        | `Combine_finish ->
          let carried =
            match Hashtbl.find_opt in_flight (key s) with
            | Some set ->
              Hashtbl.remove in_flight (key s);
              set
            | None -> Iset.empty
          in
          let clash = Iset.inter carried absorbed.(s.dst).(c) in
          if not (Iset.is_empty clash) then
            raise
              (Bad
                 (Printf.sprintf
                    "NPU %d absorbs the contribution of rank %d to chunk %d twice"
                    s.dst (Iset.min_elt clash) c));
          absorbed.(s.dst).(c) <- Iset.union carried absorbed.(s.dst).(c)
        | `Pull_start ->
          if not (Iset.equal absorbed.(s.src).(c) contributors.(c)) then
            raise
              (Bad
                 (Printf.sprintf
                    "NPU %d forwards chunk %d at %g holding a partial copy (%d of \
                     %d contributions)"
                    s.src c s.start
                    (Iset.cardinal absorbed.(s.src).(c))
                    (Iset.cardinal contributors.(c))))
        | `Pull_finish -> absorbed.(s.dst).(c) <- contributors.(c))
      events;
    List.iter
      (fun (d, c) ->
        if d < 0 || d >= npus || c < 0 || c >= num_chunks then
          raise (Bad (Printf.sprintf "postcondition (%d, %d) out of range" d c));
        if not (Iset.equal absorbed.(d).(c) contributors.(c)) then
          raise
            (Bad
               (Printf.sprintf
                  "postcondition unmet: NPU %d holds %d of %d contributions to \
                   chunk %d"
                  d
                  (Iset.cardinal absorbed.(d).(c))
                  (Iset.cardinal contributors.(c))
                  c)))
      postcondition;
    Ok ()
  with Bad msg -> Error msg

(* --- analyses ---------------------------------------------------------- *)

let link_bytes topo ~chunk_size t =
  let bytes = Array.make (Topology.num_links topo) 0. in
  List.iter (fun s -> bytes.(s.edge) <- bytes.(s.edge) +. chunk_size) t.sends;
  bytes

let link_busy_seconds topo t =
  let busy = Array.make (Topology.num_links topo) 0. in
  List.iter (fun s -> busy.(s.edge) <- busy.(s.edge) +. (s.finish -. s.start)) t.sends;
  busy

let utilization_timeline topo ~bins t =
  Tacos_util.Timeline.utilization ~bins ~span:t.makespan
    ~capacity:(float_of_int (Topology.num_links topo))
    (fun f -> List.iter (fun s -> f s.start s.finish) t.sends)

let average_utilization topo t =
  if t.makespan <= 0. then 0.
  else begin
    let busy = link_busy_seconds topo t in
    let total = Array.fold_left ( +. ) 0. busy in
    total /. (float_of_int (Topology.num_links topo) *. t.makespan)
  end

let chunk_path t c = List.filter (fun s -> s.chunk = c) t.sends

let of_json text =
  let module Json = Tacos_util.Json in
  match Json.parse text with
  | Error e -> Error ("Schedule.of_json: " ^ e)
  | Ok doc -> (
    match Option.bind (Json.member "sends" doc) Json.to_list with
    | None -> Error "Schedule.of_json: missing \"sends\" array"
    | Some entries -> (
      let parse_send entry =
        let int key = Option.bind (Json.member key entry) Json.to_int in
        let num key = Option.bind (Json.member key entry) Json.to_float in
        match (int "chunk", int "src", int "dst", int "link", num "start", num "finish") with
        | Some chunk, Some src, Some dst, Some edge, Some start, Some finish ->
          Some { chunk; src; dst; edge; start; finish }
        | _ -> None
      in
      match
        List.fold_left
          (fun acc entry ->
            match (acc, parse_send entry) with
            | Some sends, Some send -> Some (send :: sends)
            | _ -> None)
          (Some []) entries
      with
      | Some sends -> (
        match make sends with
        | sched -> Ok sched
        | exception Invalid_argument e -> Error ("Schedule.of_json: " ^ e))
      | None -> Error "Schedule.of_json: malformed send entry"))

let to_json ?spec t =
  let buf = Buffer.create (256 + (96 * List.length t.sends)) in
  Buffer.add_string buf "{\n";
  (match spec with
  | Some s ->
    Buffer.add_string buf
      (Printf.sprintf
         "  \"collective\": \"%s\",\n  \"npus\": %d,\n  \"chunks\": %d,\n  \"chunk_size_bytes\": %.17g,\n"
         (Pattern.name s.Spec.pattern) s.Spec.npus (Spec.num_chunks s)
         (Spec.chunk_size s))
  | None -> ());
  Buffer.add_string buf (Printf.sprintf "  \"makespan_seconds\": %.17g,\n" t.makespan);
  Buffer.add_string buf "  \"sends\": [\n";
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"chunk\": %d, \"src\": %d, \"dst\": %d, \"link\": %d, \
            \"start\": %.17g, \"finish\": %.17g}%s\n"
           s.chunk s.src s.dst s.edge s.start s.finish
           (if i = List.length t.sends - 1 then "" else ",")))
    t.sends;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let pp_events ?(chunk_names = string_of_int) ppf t =
  List.iter
    (fun s ->
      Format.fprintf ppf "[%10s - %10s] chunk %-6s  NPU %d -> NPU %d (link %d)@."
        (Tacos_util.Units.time_pp s.start)
        (Tacos_util.Units.time_pp s.finish)
        (chunk_names s.chunk) s.src s.dst s.edge)
    t.sends
