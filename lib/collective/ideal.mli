(* Namespaces of the substrate libraries. *)
open Tacos_topology

(** Theoretically ideal collective performance (§V-A).

    The paper's bound combines the bottleneck serialization delay — every NPU
    must ingest [2(n-1)/n × size] bytes for All-Reduce ([(n-1)/n × size] for
    All-Gather / Reduce-Scatter) through its incoming links — with the
    topology diameter as the minimum latency for the farthest pair:

    {v ideal_time = size * 2(n-1)/n / min_NPU(BW_in) + diameter v} *)

val all_reduce_time : Topology.t -> size:float -> float
val all_gather_time : Topology.t -> size:float -> float
val reduce_scatter_time : Topology.t -> size:float -> float

val bandwidth : size:float -> time:float -> float
(** Collective bandwidth = collective size ÷ collective time (the paper's
    reporting metric). *)

val efficiency : ideal:float -> measured:float -> float
(** [ideal /. measured] for times (equivalently measured/ideal for
    bandwidths); 1.0 means the theoretical optimum. *)
