type op =
  | Send of { chunk : int; peer : int; link : int; start : float; finish : float }
  | Recv of { chunk : int; peer : int; link : int; start : float; finish : float }

let time_of = function Send { start; _ } | Recv { start; _ } -> start

let npu_programs ~npus (sched : Schedule.t) =
  if npus <= 0 then invalid_arg "Lowering.npu_programs: npus must be positive";
  let programs = Array.make npus [] in
  List.iter
    (fun (s : Schedule.send) ->
      if s.src >= npus || s.dst >= npus then
        invalid_arg "Lowering.npu_programs: send endpoint out of range";
      programs.(s.src) <-
        Send { chunk = s.chunk; peer = s.dst; link = s.edge; start = s.start; finish = s.finish }
        :: programs.(s.src);
      programs.(s.dst) <-
        Recv { chunk = s.chunk; peer = s.src; link = s.edge; start = s.start; finish = s.finish }
        :: programs.(s.dst))
    sched.Schedule.sends;
  Array.map
    (fun ops -> List.stable_sort (fun a b -> compare (time_of a) (time_of b)) ops)
    programs

let pp_program ppf ops =
  List.iter
    (fun op ->
      match op with
      | Send { chunk; peer; link; start; _ } ->
        Format.fprintf ppf "[%10s] send chunk %-4d -> NPU %d (link %d)@."
          (Tacos_util.Units.time_pp start) chunk peer link
      | Recv { chunk; peer; link; finish; _ } ->
        Format.fprintf ppf "[%10s] recv chunk %-4d <- NPU %d (link %d)@."
          (Tacos_util.Units.time_pp finish) chunk peer link)
    ops
