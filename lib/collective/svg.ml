(* Namespaces of the substrate libraries. *)
open Tacos_topology

let row_height = 14
let label_width = 90
let chart_width = 900
let top_margin = 24

(* Deterministic, well-spread chunk colors via the golden-angle hue walk. *)
let chunk_color chunk =
  let hue = float_of_int (chunk * 137) -. (360. *. Float.of_int (chunk * 137 / 360)) in
  Printf.sprintf "hsl(%.0f, 65%%, 55%%)" hue

let escape s =
  String.concat ""
    (List.map
       (function
         | '<' -> "&lt;" | '>' -> "&gt;" | '&' -> "&amp;" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let render topo (sched : Schedule.t) =
  let m = Topology.num_links topo in
  let makespan = Float.max sched.Schedule.makespan 1e-12 in
  let x_of time = label_width + int_of_float (time /. makespan *. float_of_int chart_width) in
  let height = top_margin + (m * row_height) + 10 in
  let width = label_width + chart_width + 10 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        font-family=\"monospace\" font-size=\"10\">\n"
       width height);
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%d\" y=\"14\">%s — makespan %s</text>\n" label_width
       (escape (Topology.name topo))
       (escape (Tacos_util.Units.time_pp sched.Schedule.makespan)));
  (* Row background and labels. *)
  for e = 0 to m - 1 do
    let y = top_margin + (e * row_height) in
    let edge = Topology.edge topo e in
    Buffer.add_string buf
      (Printf.sprintf
         "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\"/>\n"
         label_width y chart_width (row_height - 2)
         (if e mod 2 = 0 then "#f4f4f4" else "#ececec"));
    Buffer.add_string buf
      (Printf.sprintf "<text x=\"2\" y=\"%d\">%d&#8594;%d</text>\n"
         (y + row_height - 4) edge.Topology.src edge.Topology.dst)
  done;
  (* Sends. *)
  List.iter
    (fun (s : Schedule.send) ->
      let y = top_margin + (s.edge * row_height) in
      let x0 = x_of s.start and x1 = x_of s.finish in
      Buffer.add_string buf
        (Printf.sprintf
           "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\">\
            <title>chunk %d: %d&#8594;%d [%s, %s]</title></rect>\n"
           x0 y (max 1 (x1 - x0)) (row_height - 2) (chunk_color s.chunk) s.chunk
           s.src s.dst
           (Tacos_util.Units.time_pp s.start)
           (Tacos_util.Units.time_pp s.finish)))
    sched.Schedule.sends;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf
