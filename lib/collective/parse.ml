(* Namespaces of the substrate libraries. *)
open Tacos_topology

let lowercase = String.lowercase_ascii

(* "4x4x4" -> [|4;4;4|] *)
let parse_dims s =
  let parts = String.split_on_char 'x' s in
  match List.map int_of_string_opt parts with
  | dims when List.for_all Option.is_some dims && dims <> [] ->
    Ok (Array.of_list (List.map Option.get dims))
  | _ -> Error (Printf.sprintf "cannot parse dimensions %S (expected e.g. 4x4)" s)

(* Sizes like "1GB", "64MB", "512KB", "100B", "4194304". *)
let parse_size s =
  let s = String.trim (String.uppercase_ascii s) in
  let split suffix factor =
    if String.length s > String.length suffix
       && String.sub s (String.length s - String.length suffix) (String.length suffix)
          = suffix
    then
      let num = String.sub s 0 (String.length s - String.length suffix) in
      Option.map (fun v -> v *. factor) (float_of_string_opt num)
    else None
  in
  let candidates =
    [ ("GB", 1e9); ("MB", 1e6); ("KB", 1e3); ("B", 1.) ]
  in
  let rec try_all = function
    | [] -> Option.map Fun.id (float_of_string_opt s)
    | (suffix, factor) :: rest -> (
      match split suffix factor with Some v -> Some v | None -> try_all rest)
  in
  match try_all candidates with
  | Some v when v > 0. -> Ok v
  | _ -> Error (Printf.sprintf "cannot parse size %S (expected e.g. 64MB)" s)

(* Topology descriptions:
     ring:8  fc:16  mesh:4x4  torus:4x4x4  hypercube:3  switch:16
     dgx1  dragonfly:4x5  rfs:2x4x8
   Link parameters come from [alpha] (seconds) and [bw] (bytes/s); the
   heterogeneous builders (dragonfly, rfs) scale their per-dimension
   bandwidths relative to [bw]. *)
let parse_time s =
  let s = lowercase (String.trim s) in
  let with_suffix suffix factor =
    if
      String.length s > String.length suffix
      && String.sub s (String.length s - String.length suffix) (String.length suffix)
         = suffix
    then
      Option.map
        (fun v -> v *. factor)
        (float_of_string_opt (String.sub s 0 (String.length s - String.length suffix)))
    else None
  in
  let candidates = [ ("ns", 1e-9); ("us", 1e-6); ("ms", 1e-3); ("s", 1.) ] in
  let rec try_all = function
    | [] -> float_of_string_opt s
    | (suffix, factor) :: rest -> (
      match with_suffix suffix factor with Some v -> Some v | None -> try_all rest)
  in
  match try_all candidates with
  | Some v when v >= 0. -> Ok v
  | _ -> Error (Printf.sprintf "cannot parse duration %S (expected e.g. 0.5us)" s)

(* Bandwidths like "50GB/s" (or a plain bytes-per-second number). *)
let parse_bandwidth s =
  let s = String.trim s in
  let body =
    if String.length s > 2 && String.sub s (String.length s - 2) 2 = "/s" then
      String.sub s 0 (String.length s - 2)
    else s
  in
  match parse_size body with
  | Ok v -> Ok v
  | Error _ -> Error (Printf.sprintf "cannot parse bandwidth %S (expected e.g. 50GB/s)" s)

let parse_topology_lines ?(name = "custom") lines =
  let exception Bad of string in
  let fail line fmt =
    Printf.ksprintf (fun msg -> raise (Bad (Printf.sprintf "line %d: %s" line msg))) fmt
  in
  let strip_comment l =
    match String.index_opt l '#' with
    | Some i -> String.sub l 0 i
    | None -> l
  in
  let tokens_of l =
    List.filter (fun t -> t <> "") (String.split_on_char ' ' (String.trim (strip_comment l)))
  in
  let require_link lineno bw_str alpha_str =
    match (parse_bandwidth bw_str, parse_time alpha_str) with
    | Ok bw, Ok alpha -> Link.of_bandwidth ~alpha bw
    | Error e, _ | _, Error e -> fail lineno "%s" e
  in
  let require_npu lineno topo token =
    match int_of_string_opt token with
    | Some v when v >= 0 && v < Topology.num_npus topo -> v
    | _ -> fail lineno "bad NPU id %S" token
  in
  try
    let topo = ref None in
    List.iteri
      (fun idx line ->
        let lineno = idx + 1 in
        match (tokens_of line, !topo) with
        | [], _ -> ()
        | [ "npus"; count ], None -> (
          match int_of_string_opt count with
          | Some n when n > 0 -> topo := Some (Topology.create ~name n)
          | _ -> fail lineno "bad NPU count %S" count)
        | "npus" :: _, Some _ -> fail lineno "duplicate npus directive"
        | _, None -> fail lineno "the first directive must be: npus N"
        | [ "link"; a; b; bw; alpha ], Some t ->
          let link = require_link lineno bw alpha in
          ignore
            (Topology.add_link t ~src:(require_npu lineno t a)
               ~dst:(require_npu lineno t b) link)
        | [ "bilink"; a; b; bw; alpha ], Some t ->
          let link = require_link lineno bw alpha in
          Topology.add_bidir t (require_npu lineno t a) (require_npu lineno t b) link
        | "ring" :: rest, Some t when List.length rest >= 4 ->
          (* ring n0 n1 ... nk BW ALPHA *)
          let rec split_last2 = function
            | [ bw; alpha ] -> ([], bw, alpha)
            | x :: rest ->
              let members, bw, alpha = split_last2 rest in
              (x :: members, bw, alpha)
            | [] -> fail lineno "ring needs members and link parameters"
          in
          let members, bw, alpha = split_last2 rest in
          if List.length members < 2 then fail lineno "ring needs at least two NPUs";
          let link = require_link lineno bw alpha in
          let ids = List.map (require_npu lineno t) members in
          let arr = Array.of_list ids in
          let n = Array.length arr in
          for i = 0 to n - 1 do
            let a = arr.(i) and b = arr.((i + 1) mod n) in
            if n = 2 && i = 1 then () else Topology.add_bidir t a b link
          done
        | tok :: _, Some _ -> fail lineno "unknown directive %S" tok)
      lines;
    match !topo with
    | Some t when Topology.num_links t > 0 -> Ok t
    | Some _ -> Error "topology has no links"
    | None -> Error "empty description (expected: npus N)"
  with Bad msg -> Error msg

let parse_topology_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents ->
    parse_topology_lines ~name:(Filename.basename path)
      (String.split_on_char '\n' contents)
  | exception Sys_error e -> Error e

let parse_topology ?(alpha = 0.5e-6) ?(bw = 50e9) s =
  let link = Link.of_bandwidth ~alpha bw in
  let s = String.trim s in
  (* Only the kind is case-insensitive; the argument may be a file path. *)
  let kind, arg =
    match String.index_opt s ':' with
    | Some i ->
      (lowercase (String.sub s 0 i), String.sub s (i + 1) (String.length s - i - 1))
    | None -> (lowercase s, "")
  in
  let with_dims f = Result.map f (parse_dims arg) in
  let with_int f =
    match int_of_string_opt arg with
    | Some n when n > 1 -> Ok (f n)
    | _ -> Error (Printf.sprintf "%s needs an integer size, got %S" kind arg)
  in
  match kind with
  | "ring" -> with_int (fun n -> Builders.ring ~link n)
  | "uniring" -> with_int (fun n -> Builders.ring ~link ~bidirectional:false n)
  | "fc" | "fullyconnected" -> with_int (fun n -> Builders.fully_connected ~link n)
  | "mesh" -> with_dims (fun dims -> Builders.mesh ~link dims)
  | "torus" -> with_dims (fun dims -> Builders.torus ~link dims)
  | "hypercube" | "hc" -> with_int (fun k -> Builders.hypercube ~link k)
  | "switch" -> with_int (fun n -> Builders.switch ~link ~degree:1 n)
  | "dgx1" -> Ok (Builders.dgx1 ~link ())
  | "dragonfly" | "df" ->
    let build (groups, group_size) =
      Builders.dragonfly ~alpha ~groups ~group_size ~bw:(bw, bw /. 2.) ()
    in
    if arg = "" then Ok (build (4, 5))
    else
      Result.bind (parse_dims arg) (function
        | [| g; m |] -> Ok (build (g, m))
        | _ -> Error "dragonfly expects GROUPSxMEMBERS, e.g. 4x5")
  | "file" ->
    if arg = "" then Error "file: needs a path, e.g. file:cluster.topo"
    else parse_topology_file arg
  | "rfs" ->
    Result.bind (parse_dims arg) (function
      | [| r; f; s |] -> Ok (Builders.rfs3d ~alpha ~bw:(bw, bw /. 2., bw /. 4.) (r, f, s))
      | _ -> Error "rfs expects RxFxS, e.g. 2x4x8")
  | _ -> Error (Printf.sprintf "unknown topology %S" s)

let parse_pattern s npus =
  let open Pattern in
  let s = lowercase (String.trim s) in
  let rooted make arg =
    match int_of_string_opt arg with
    | Some r when r >= 0 && r < npus -> Ok (make r)
    | _ -> Error (Printf.sprintf "bad root in %S" s)
  in
  match String.split_on_char ':' s with
  | [ "all-gather" ] | [ "allgather" ] | [ "ag" ] -> Ok All_gather
  | [ "reduce-scatter" ] | [ "reducescatter" ] | [ "rs" ] -> Ok Reduce_scatter
  | [ "all-reduce" ] | [ "allreduce" ] | [ "ar" ] -> Ok All_reduce
  | [ "all-to-all" ] | [ "alltoall" ] | [ "a2a" ] -> Ok All_to_all
  | [ "broadcast"; r ] | [ "bc"; r ] -> rooted (fun r -> Broadcast r) r
  | [ "broadcast" ] | [ "bc" ] -> Ok (Broadcast 0)
  | [ "reduce"; r ] -> rooted (fun r -> Reduce r) r
  | [ "reduce" ] -> Ok (Reduce 0)
  | _ -> Error (Printf.sprintf "unknown pattern %S" s)
