(* Namespaces of the substrate libraries. *)
open Tacos_topology

let phase_time ~phases topo ~size =
  let n = float_of_int (Topology.num_npus topo) in
  (* Per-NPU bound: everyone ingests (n-1)/n of the vector per phase. *)
  let per_npu = size *. (n -. 1.) /. n /. Topology.min_ingress_bandwidth topo in
  (* Cut bounds: a subset S must ingest the (n-|S|)/n share of the vector
     that originates outside it through its boundary links at least once. *)
  let per_cut =
    List.fold_left
      (fun acc subset ->
        let s = float_of_int (List.length subset) in
        let bw = Topology.ingress_bandwidth_of topo subset in
        if bw <= 0. then acc
        else Float.max acc (size *. (n -. s) /. n /. bw))
      0.
      (Topology.cut_hints topo)
  in
  (phases *. Float.max per_npu per_cut) +. Topology.diameter_latency topo

let all_reduce_time topo ~size = phase_time ~phases:2. topo ~size
let all_gather_time topo ~size = phase_time ~phases:1. topo ~size
let reduce_scatter_time topo ~size = phase_time ~phases:1. topo ~size
let bandwidth ~size ~time = size /. time
let efficiency ~ideal ~measured = ideal /. measured
