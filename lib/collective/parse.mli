(* Namespaces of the substrate libraries. *)
open Tacos_topology

(** Textual descriptions of topologies, sizes and patterns — the input
    format of the [tacos] CLI (and handy in scripts and tests). *)

val parse_dims : string -> (int array, string) result
(** ["4x4x4"] → [[|4; 4; 4|]]. *)

val parse_size : string -> (float, string) result
(** Decimal byte sizes: ["1GB"], ["64MB"], ["512KB"], ["100B"], ["4096"]. *)

val parse_topology :
  ?alpha:float -> ?bw:float -> string -> (Topology.t, string) result
(** Topology descriptions: [ring:N], [uniring:N], [fc:N], [mesh:AxB[xC]],
    [torus:AxB[xC]], [hypercube:K], [switch:N], [dgx1], [dragonfly[:GxM]],
    [rfs:RxFxS]. [alpha] (seconds, default 0.5 µs) and [bw] (bytes/s, default
    50 GB/s) set the link parameters; the heterogeneous builders scale their
    per-dimension bandwidths down from [bw]. *)

val parse_time : string -> (float, string) result
(** Durations: ["0.5us"], ["30ns"], ["2ms"], ["1s"], or plain seconds. *)

val parse_topology_lines : ?name:string -> string list -> (Topology.t, string) result
(** Build a topology from an edge-list description, one directive per line:

    {v
    # comment
    npus 4
    link 0 1 50GB/s 0.5us     # unidirectional src dst bandwidth latency
    bilink 1 2 25GB/s 1us     # both directions
    ring 0 1 2 3 50GB/s 0.5us # bidirectional ring through the listed NPUs
    v}

    The [npus] directive must come first. Errors carry the line number. *)

val parse_topology_file : string -> (Topology.t, string) result
(** [parse_topology_lines] over a file's contents; the topology is named
    after the file. Used by the CLI's [file:PATH] topology syntax. *)

val parse_pattern : string -> int -> (Pattern.t, string) result
(** Pattern names: [all-gather]/[ag], [reduce-scatter]/[rs],
    [all-reduce]/[ar], [all-to-all]/[a2a], [broadcast[:ROOT]],
    [reduce[:ROOT]]. The NPU count bounds the root. *)
