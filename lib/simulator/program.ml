(* Namespaces of the substrate libraries. *)
open Tacos_collective

type transfer = {
  id : int;
  tag : string;
  src : int;
  dst : int;
  size : float;
  deps : int list;
}

type t = { transfers : transfer array }
type builder = { mutable rev : transfer list; mutable count : int }

let builder () = { rev = []; count = 0 }

let add b ?(tag = "") ?(deps = []) ~src ~dst ~size () =
  if size < 0. then invalid_arg "Program.add: negative size";
  List.iter
    (fun d ->
      if d < 0 || d >= b.count then invalid_arg "Program.add: dangling dependency")
    deps;
  let id = b.count in
  b.rev <- { id; tag; src; dst; size; deps } :: b.rev;
  b.count <- b.count + 1;
  id

let barrier b deps npu = [ add b ~tag:"barrier" ~deps ~src:npu ~dst:npu ~size:0. () ]
let build b = { transfers = Array.of_list (List.rev b.rev) }
let transfers t = t.transfers
let num_transfers t = Array.length t.transfers

let import rows =
  let n = Array.length rows in
  {
    transfers =
      Array.mapi
        (fun id (tag, src, dst, size, deps) ->
          if size < 0. then invalid_arg "Program.import: negative size";
          List.iter
            (fun d ->
              if d < 0 || d >= n then
                invalid_arg "Program.import: dependency names no transfer")
            deps;
          { id; tag; src; dst; size; deps })
        rows;
  }

let total_bytes t =
  Array.fold_left (fun acc tr -> acc +. tr.size) 0. t.transfers

let first_forward_dep t =
  let found = ref None in
  Array.iter
    (fun tr ->
      if !found = None then
        List.iter
          (fun d -> if d >= tr.id && !found = None then found := Some (tr.id, d))
          tr.deps)
    t.transfers;
  !found

let validate_acyclic t =
  (* deps always point backwards by construction of [add], so the graph is
     acyclic unless it was [import]ed; verify explicitly either way. *)
  match first_forward_dep t with
  | None -> Ok ()
  | Some (id, dep) ->
    Error
      (Printf.sprintf "transfer %d depends on transfer %d, which is not earlier"
         id dep)

let default_tag_of (s : Schedule.send) = Printf.sprintf "chunk%d" s.chunk

let of_schedule ?(tag_of = default_tag_of) ~chunk_size (sched : Schedule.t) =
  let b = builder () in
  (* Sends are already sorted by start time, so every delivery of a chunk to
     a node appears before any send that forwards it. A send depends on all
     earlier arrivals of its chunk at its source: one arrival for gather-side
     phases, several for the time-mirrored reduction phases (where partial
     contributions converge before the combined value moves on). *)
  let delivered = Hashtbl.create 64 in
  List.iter
    (fun (s : Schedule.send) ->
      let deps =
        Option.value ~default:[] (Hashtbl.find_opt delivered (s.src, s.chunk))
      in
      let id =
        add b ~tag:(tag_of s) ~deps ~src:s.src ~dst:s.dst ~size:chunk_size ()
      in
      let at_dst =
        Option.value ~default:[] (Hashtbl.find_opt delivered (s.dst, s.chunk))
      in
      Hashtbl.replace delivered (s.dst, s.chunk) (id :: at_dst))
    sched.Schedule.sends;
  build b
