(* Namespaces of the substrate libraries. *)
open Tacos_collective

(** Logical collective programs: what a CCL would hand to the network.

    A program is a dependency graph of point-to-point transfers. Unlike a
    {!Tacos_collective.Schedule.t} — which pins every send to a physical link
    and an exact time — a program only fixes *what* is sent between which NPU
    pair and *after* which other transfers; the congestion-aware simulator
    decides the actual timing (and, for non-neighbor pairs, the multi-hop
    route). This is the natural representation for the topology-unaware
    baseline algorithms of §V-A, whose over/undersubscription the paper
    measures. *)

type transfer = private {
  id : int;
  tag : string;  (** free-form label for diagnostics *)
  src : int;
  dst : int;
  size : float;  (** bytes *)
  deps : int list;  (** transfers that must complete before this one starts *)
}

type t

(** {1 Building} *)

type builder

val builder : unit -> builder

val add :
  builder -> ?tag:string -> ?deps:int list -> src:int -> dst:int -> size:float -> unit -> int
(** Append a transfer; returns its id (ids are dense, starting at 0). [deps]
    must reference already-added transfers. [src = dst] is allowed and
    completes instantly once its deps do (a local reduction step). Raises
    [Invalid_argument] on negative size or dangling deps. *)

val barrier : builder -> int list -> int -> int list
(** [barrier b deps npu] is a convenience no-op transfer on [npu] depending
    on [deps]; returns a single-element dep list for subsequent phases. *)

val build : builder -> t

val import : (string * int * int * float * int list) array -> t
(** [import rows] materializes transfers verbatim from
    [(tag, src, dst, size, deps)] rows, ids assigned in array order —
    the loader/test entry point for transfer graphs that did not come
    through {!add}. Unlike [add] it permits {e forward} (and thus cyclic)
    dependencies; pair with {!validate_acyclic}, and note
    {!Tacos_sim.Engine.run} rejects a cyclic import with a typed
    [Simulation_error] instead of executing it. Raises [Invalid_argument]
    on a negative size or a dep naming no transfer at all. *)

(** {1 Inspection} *)

val transfers : t -> transfer array
val num_transfers : t -> int
val total_bytes : t -> float

val first_forward_dep : t -> (int * int) option
(** The first [(transfer, dep)] pair whose dependency does not point to an
    earlier transfer — [None] for well-formed programs. Since [deps] point
    strictly backwards in any {!add}-built program, a forward dep is
    exactly how an {!import}ed graph can be cyclic. *)

val validate_acyclic : t -> (unit, string) result
(** Check the dependency graph has no cycles (a cyclic program would
    deadlock the simulator); names the offending transfer pair on
    [Error]. *)

val of_schedule : ?tag_of:(Schedule.send -> string) -> chunk_size:float -> Schedule.t -> t
(** Re-express a synthesized schedule as a program: each send becomes a
    single-hop transfer of [chunk_size] bytes depending on every earlier
    send that delivered its chunk to the source (all of them, so the
    converge-then-forward structure of time-mirrored reduction phases is
    preserved). This is how synthesized algorithms are evaluated under the
    same simulator backend as the baselines (§V-C). [tag_of] names each
    transfer (default ["chunk%d"]); `tacos trace` uses it to carry the
    collective phase so the critical-path analyzer can attribute the
    makespan per phase. *)
