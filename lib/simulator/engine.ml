(* Namespaces of the substrate libraries. *)
open Tacos_topology
module Pq = Tacos_util.Pq
module Obs = Tacos_obs.Obs
module Trace = Tacos_obs.Trace

let obs_events = Obs.counter "engine.events"
let obs_queue_depth = Obs.histogram "engine.queue_depth"
let obs_max_queue = Obs.gauge "engine.max_queue_depth"
let obs_max_backlog = Obs.gauge "engine.max_backlog_seconds"
let obs_faults = Obs.counter "engine.fault_events"
let obs_reroutes = Obs.counter "engine.reroutes"
let obs_aborts = Obs.counter "engine.aborted_services"
let obs_stranded = Obs.counter "engine.stranded"
let obs_routing_rebuilds = Obs.counter "engine.routing_rebuilds"

type fault_event =
  | Link_dies of { link : int; at : float }
  | Link_degrades of { link : int; factor : float; at : float }
  | Link_recovers of { link : int; at : float }

let fault_time = function
  | Link_dies { at; _ } | Link_degrades { at; _ } | Link_recovers { at; _ } -> at

type stranded = { tid : int; tag : string; at_npu : int; dst : int; time : float }

type report = {
  finish_time : float;
  transfer_finish : float array;
  link_bytes : float array;
  link_busy : float array;
  link_intervals : (float * float) list array;
  stranded : stranded list;
}

type error_kind =
  | No_route of { src : int; dst : int }
  | Never_completed of { remaining : int }
  | Cyclic_program of { dep : int }

exception Simulation_error of { tid : int; tag : string; kind : error_kind }

let () =
  Printexc.register_printer (function
    | Simulation_error { tid; tag; kind } ->
      let what =
        match kind with
        | No_route { src; dst } ->
          Printf.sprintf "no route %d->%d on the healthy fabric" src dst
        | Never_completed { remaining } ->
          Printf.sprintf
            "never completed (%d transfers remaining) — cyclic dependencies?"
            remaining
        | Cyclic_program { dep } ->
          Printf.sprintf
            "depends on transfer %d, which is not earlier — cyclic program" dep
      in
      Some (Printf.sprintf "Engine.Simulation_error: transfer %d (%s): %s" tid tag what)
    | _ -> None)

(* A message in flight: which transfer it belongs to, the node it currently
   sits at, and the nodes still to visit. [aborted] invalidates the
   already-queued [Hop_arrived] event of a service cut short by a link
   death — the replanned copy of the message carries on instead. *)
type msg = {
  tid : int;
  mutable at : int;
  mutable rest : int list;
  mutable aborted : bool;
  mutable via : int;  (** link ridden into the pending [Hop_arrived]; -1 before *)
}

type event =
  | Ready of int  (** transfer id became ready *)
  | Link_free of int * int
      (** (link, serial): link finished serializing; stale serials — the link
          died and was re-armed since — are ignored *)
  | Hop_arrived of msg  (** message landed at the next node on its path *)
  | Fault of fault_event  (** a timed fabric change lands *)

type link_model = Pipelined_alpha | Blocking_alpha

let validate_faults topo faults =
  let m = Topology.num_links topo in
  List.iter
    (fun f ->
      let link =
        match f with
        | Link_dies { link; _ } | Link_degrades { link; _ } | Link_recovers { link; _ }
          ->
          link
      in
      if link < 0 || link >= m then
        invalid_arg
          (Printf.sprintf "Engine.run: fault names unknown link id %d (topology has %d)"
             link m);
      if not (fault_time f >= 0.) then
        invalid_arg "Engine.run: fault time must be non-negative";
      match f with
      | Link_degrades { factor; _ } when not (factor >= 1.) ->
        invalid_arg "Engine.run: degradation factor < 1"
      | _ -> ())
    faults

let run ?(model = Pipelined_alpha) ?routing_size ?(faults = []) topo program =
  let transfers = Program.transfers program in
  let nt = Array.length transfers in
  (match Program.first_forward_dep program with
  | None -> ()
  | Some (tid, dep) ->
    raise
      (Simulation_error { tid; tag = transfers.(tid).Program.tag; kind = Cyclic_program { dep } }));
  validate_faults topo faults;
  let routing_size =
    match routing_size with
    | Some s -> s
    | None ->
      if nt = 0 then 1.
      else Float.max 1. (Program.total_bytes program /. float_of_int nt)
  in
  let m = Topology.num_links topo in
  (* The link model follows the paper's analytical backend: a message holds
     the link for its serialization delay β·size (one message at a time,
     FCFS), and lands at the far end a propagation latency α after
     serialization ends. α does not block the next message — this is what
     lets latency-bound Direct beat Ring on a physical ring (Fig. 2b) while
     bandwidth-bound traffic still queues. *)
  let base_serialize = Array.make m 0. (* healthy β, seconds per byte *) in
  let base_latency = Array.make m 0. (* healthy α, seconds *) in
  List.iter
    (fun (e : Topology.edge) ->
      base_serialize.(e.id) <- Link.cost e.link 1. -. Link.cost e.link 0.;
      base_latency.(e.id) <- Link.cost e.link 0.)
    (Topology.edges topo);
  (* Live link parameters: mutated by timed degrade/recover events. *)
  let serialize = Array.copy base_serialize in
  let latency = Array.copy base_latency in
  let alive = Array.make m true in
  let degrade_factor = Array.make m 1. in
  (* Per-link FCFS server state. [serial] re-arms a link after a death so
     that the stale [Link_free] of an aborted service is ignored. *)
  let queue = Array.init m (fun _ -> Queue.create ()) in
  let serving = Array.make m false in
  let in_service : msg option array = Array.make m None in
  let service_span = Array.make m (0., 0.) (* (start, scheduled end) *) in
  let serial = Array.make m 0 in
  let backlog = Array.make m 0. in
  (* Stats. *)
  let link_bytes = Array.make m 0. in
  let link_busy = Array.make m 0. in
  let link_intervals = Array.make m [] in
  let transfer_finish = Array.make nt infinity in
  let stranded = ref [] in
  (* Dependency bookkeeping. *)
  let indeg = Array.make nt 0 in
  let dependents = Array.make nt [] in
  (* For the lifecycle trace: the dependency whose completion made each
     transfer ready (-1 for roots) — the binding constraint the
     critical-path analyzer follows across transfers. *)
  let ready_cause = Array.make nt (-1) in
  Array.iter
    (fun (tr : Program.transfer) ->
      indeg.(tr.id) <- List.length tr.deps;
      List.iter (fun d -> dependents.(d) <- tr.id :: dependents.(d)) tr.deps)
    transfers;
  let events : event Pq.t = Pq.create () in
  let obs_on = Obs.enabled () in
  let trace_on = Trace.enabled () in
  (* Routing over the *surviving* fabric, rebuilt lazily once per fault
     epoch (the alive/degraded sets only change at fault events). The
     degraded view keeps the healthy NPU numbering, so node paths remain
     valid across epochs; only link liveness is re-read at enqueue time. *)
  let routing = ref None in
  let faulted = ref false in
  let current_routing () =
    match !routing with
    | Some t -> t
    | None ->
      Obs.incr obs_routing_rebuilds;
      let view =
        if not !faulted then topo
        else
          Topology.map_links topo (fun e ->
              if not alive.(e.id) then None
              else if degrade_factor.(e.id) = 1. then Some e.link
              else
                let l = e.link in
                Some
                  (Link.make
                     ~alpha:(l.Link.alpha *. degrade_factor.(e.id))
                     ~beta:(l.Link.beta *. degrade_factor.(e.id))))
      in
      let t = Routing.build_partial view ~size:routing_size in
      routing := Some t;
      t
  in
  (* Time the link is occupied by one message of [size] bytes — the unit of
     both FCFS service and backlog accounting, so the two can never drift. *)
  let hold_of link size =
    match model with
    | Pipelined_alpha -> serialize.(link) *. size
    | Blocking_alpha -> latency.(link) +. (serialize.(link) *. size)
  in
  let start_service link (msg : msg) t =
    serving.(link) <- true;
    in_service.(link) <- Some msg;
    msg.via <- link;
    if trace_on then Trace.emit ~t (Trace.Service_start { tid = msg.tid; link });
    let size = transfers.(msg.tid).Program.size in
    let hold = hold_of link size in
    let arrive =
      match model with
      | Pipelined_alpha -> t +. hold +. latency.(link)
      | Blocking_alpha -> t +. hold
    in
    service_span.(link) <- (t, t +. hold);
    link_bytes.(link) <- link_bytes.(link) +. size;
    link_busy.(link) <- link_busy.(link) +. hold;
    link_intervals.(link) <- (t, t +. hold) :: link_intervals.(link);
    Pq.push events (t +. hold) (Link_free (link, serial.(link)));
    Pq.push events arrive (Hop_arrived msg)
  in
  let strand (msg : msg) t =
    Obs.incr obs_stranded;
    if trace_on then
      Trace.emit ~t
        (Trace.Stranded
           { tid = msg.tid; node = msg.at; dst = transfers.(msg.tid).Program.dst });
    stranded :=
      {
        tid = msg.tid;
        tag = transfers.(msg.tid).Program.tag;
        at_npu = msg.at;
        dst = transfers.(msg.tid).Program.dst;
        time = t;
      }
      :: !stranded
  in
  (* Plan (or re-plan) [msg]'s remaining hops from the node it sits at, over
     the surviving fabric. Mutually recursive with [enqueue_hop]: a replan
     immediately enqueues the first hop of the fresh route. *)
  let rec replan (msg : msg) t ~complete =
    let dst = transfers.(msg.tid).Program.dst in
    if msg.at = dst then complete msg.tid t
    else
      match Routing.path_opt (current_routing ()) ~src:msg.at ~dst with
      | Some (_ :: (_ :: _ as rest)) ->
        msg.rest <- rest;
        enqueue_hop msg t ~complete
      | Some _ (* [] | [_] — cannot happen: msg.at <> dst *) | None ->
        if not !faulted then
          raise
            (Simulation_error
               {
                 tid = msg.tid;
                 tag = transfers.(msg.tid).Program.tag;
                 kind = No_route { src = msg.at; dst };
               })
        else strand msg t
  (* Hand a message to the least-backlogged *live* parallel link towards its
     next hop and start service if that link is idle. A hop whose links all
     died since the route was planned is re-planned from here. *)
  and enqueue_hop (msg : msg) t ~complete =
    let current = msg.at in
    let next = match msg.rest with [] -> assert false | n :: _ -> n in
    let candidates =
      List.filter
        (fun (e : Topology.edge) -> alive.(e.id))
        (Topology.find_links topo ~src:current ~dst:next)
    in
    match candidates with
    | [] ->
      if not !faulted then
        raise
          (Simulation_error
             {
               tid = msg.tid;
               tag = transfers.(msg.tid).Program.tag;
               kind = No_route { src = current; dst = next };
             })
      else begin
        (* The planned hop rides a dead link: the stale route is discarded
           and the message re-planned over the surviving fabric. *)
        Obs.incr obs_reroutes;
        if trace_on then
          Trace.emit ~t (Trace.Rerouted { tid = msg.tid; node = current });
        replan msg t ~complete
      end
    | first :: rest ->
      let link =
        List.fold_left
          (fun best (e : Topology.edge) ->
            if backlog.(e.id) < backlog.(best) then e.id else best)
          first.Topology.id rest
      in
      (* backlog.(link) predicts when the link finishes everything accepted so
         far: service is FCFS and back-to-back, so the new message starts at
         max(backlog, now) and occupies the link for its full model hold
         (including α under Blocking_alpha — accounting only the serialization
         term let latency-bound traffic look free and pile onto one of two
         identical parallel links). *)
      let hold = hold_of link transfers.(msg.tid).Program.size in
      backlog.(link) <- Float.max backlog.(link) t +. hold;
      if trace_on then
        Trace.emit ~t
          (Trace.Enqueued
             {
               tid = msg.tid;
               link;
               node = current;
               depth = Queue.length queue.(link);
             });
      if obs_on then begin
        let depth = Queue.length queue.(link) in
        Obs.observe obs_queue_depth (float_of_int depth);
        Obs.observe_max obs_max_queue (float_of_int depth);
        Obs.observe_max obs_max_backlog (backlog.(link) -. t);
        Obs.trace "engine.enqueue"
          [
            ("link", Tacos_util.Json.Number (float_of_int link));
            ("now", Tacos_util.Json.Number t);
            ("depth", Tacos_util.Json.Number (float_of_int depth));
            ("backlog_seconds", Tacos_util.Json.Number (backlog.(link) -. t));
          ]
      end;
      if serving.(link) then Queue.push msg queue.(link)
      else start_service link msg t
  in
  let complete tid t =
    transfer_finish.(tid) <- t;
    if trace_on then Trace.emit ~t (Trace.Completed { tid });
    List.iter
      (fun d ->
        indeg.(d) <- indeg.(d) - 1;
        if indeg.(d) = 0 then begin
          ready_cause.(d) <- tid;
          Pq.push events t (Ready d)
        end)
      dependents.(tid)
  in
  let launch tid t =
    let tr = transfers.(tid) in
    if tr.Program.src = tr.Program.dst then complete tid t
    else begin
      let msg = { tid; at = tr.Program.src; rest = []; aborted = false; via = -1 } in
      replan msg t ~complete
    end
  in
  (* A timed fabric change. Death of a link aborts the message it was
     serializing (the un-transferred remainder is un-credited from the
     stats, so the dead link shows no activity past the fault time),
     re-plans it and everything queued behind it from their current nodes,
     and re-arms the link's serial so the stale [Link_free] is ignored.
     Degradation changes the α/β of *future* services (the committed one
     finishes at its negotiated rate); recovery restores the healthy
     parameters. All three invalidate the routing table. *)
  let apply_fault t = function
    | Link_dies { link; at = _ } ->
      if alive.(link) then begin
        alive.(link) <- false;
        faulted := true;
        routing := None;
        serial.(link) <- serial.(link) + 1;
        if trace_on then Trace.emit ~t (Trace.Fault { link; kind = "dies" });
        (* Satellite fix: a dead link must never win the least-backlogged
           parallel-link choice on its stale (low) backlog, and its
           predicted queue is void — it is filtered out of [enqueue_hop]'s
           candidates and its backlog zeroed for a potential recovery. *)
        backlog.(link) <- 0.;
        let displaced = ref [] in
        (match in_service.(link) with
        | Some msg ->
          Obs.incr obs_aborts;
          msg.aborted <- true;
          if trace_on then
            Trace.emit ~t (Trace.Service_aborted { tid = msg.tid; link });
          let s, e = service_span.(link) in
          let hold = e -. s in
          let fraction =
            if hold <= 0. then 0. else Float.max 0. (Float.min 1. ((t -. s) /. hold))
          in
          let size = transfers.(msg.tid).Program.size in
          (* Un-credit the un-transferred remainder and truncate the
             service interval at the fault time. *)
          link_bytes.(link) <- link_bytes.(link) -. (size *. (1. -. fraction));
          link_busy.(link) <- link_busy.(link) -. (e -. t);
          (match link_intervals.(link) with
          | (s0, _) :: tail -> link_intervals.(link) <- (s0, t) :: tail
          | [] -> ());
          displaced :=
            [ { tid = msg.tid; at = msg.at; rest = msg.rest; aborted = false; via = -1 } ]
        | None -> ());
        serving.(link) <- false;
        in_service.(link) <- None;
        Queue.iter (fun msg -> displaced := msg :: !displaced) queue.(link);
        Queue.clear queue.(link);
        (* Oldest first, so drained traffic re-queues in FCFS order. *)
        List.iter (fun msg -> replan msg t ~complete) (List.rev !displaced)
      end
    | Link_degrades { link; factor; at = _ } ->
      if alive.(link) then begin
        if trace_on then Trace.emit ~t (Trace.Fault { link; kind = "degrades" });
        degrade_factor.(link) <- degrade_factor.(link) *. factor;
        serialize.(link) <- base_serialize.(link) *. degrade_factor.(link);
        latency.(link) <- base_latency.(link) *. degrade_factor.(link);
        faulted := true;
        routing := None
      end
    | Link_recovers { link; at = _ } ->
      if not alive.(link) || degrade_factor.(link) <> 1. then begin
        if trace_on then Trace.emit ~t (Trace.Fault { link; kind = "recovers" });
        alive.(link) <- true;
        degrade_factor.(link) <- 1.;
        serialize.(link) <- base_serialize.(link);
        latency.(link) <- base_latency.(link);
        backlog.(link) <- 0.;
        routing := None
      end
  in
  (* Fault events enter the queue first: at equal timestamps a fault lands
     before same-time arrivals/frees, i.e. the fault window is inclusive of
     its own timestamp. *)
  List.iter (fun f -> Pq.push events (fault_time f) (Fault f)) faults;
  Array.iter
    (fun (tr : Program.transfer) ->
      if indeg.(tr.id) = 0 then Pq.push events 0. (Ready tr.id))
    transfers;
  let finish_time = ref 0. in
  let rec loop () =
    match Pq.pop events with
    | None -> ()
    | Some (t, ev) ->
      Obs.incr obs_events;
      (match ev with
      | Fault f ->
        (* A fault beyond the last transfer event must not stretch the
           reported finish time of an already-completed collective. *)
        Obs.incr obs_faults;
        apply_fault t f
      | Ready tid ->
        finish_time := Float.max !finish_time t;
        if trace_on then
          Trace.emit ~t
            (Trace.Deps_ready
               {
                 tid;
                 cause = (if ready_cause.(tid) >= 0 then Some ready_cause.(tid) else None);
               });
        launch tid t
      | Link_free (link, s) ->
        (* A stale serial is the ghost of a service aborted by a link death;
           it carries no state and must not stretch the finish time. *)
        if s = serial.(link) then begin
          finish_time := Float.max !finish_time t;
          if trace_on then (
            match in_service.(link) with
            | Some m -> Trace.emit ~t (Trace.Service_end { tid = m.tid; link })
            | None -> ());
          serving.(link) <- false;
          in_service.(link) <- None;
          match Queue.take_opt queue.(link) with
          | Some next_msg -> start_service link next_msg t
          | None -> ()
        end
      | Hop_arrived msg ->
        if not msg.aborted then begin
          finish_time := Float.max !finish_time t;
          match msg.rest with
          | [] -> assert false
          | [ last ] ->
            msg.at <- last;
            if trace_on then
              Trace.emit ~t
                (Trace.Arrived { tid = msg.tid; node = last; link = msg.via });
            complete msg.tid t
          | arrived :: rest ->
            msg.at <- arrived;
            msg.rest <- rest;
            if trace_on then
              Trace.emit ~t
                (Trace.Arrived { tid = msg.tid; node = arrived; link = msg.via });
            enqueue_hop msg t ~complete
        end);
      loop ()
  in
  loop ();
  (* Completion audit: with stranded messages, every unfinished transfer
     must be explained by a stranding (directly, or through a dependency on
     a stranded transfer). Anything else is a structural bug surfaced as a
     typed error rather than a silent partial report. *)
  let unfinished = ref [] in
  Array.iteri (fun tid f -> if f = infinity then unfinished := tid :: !unfinished)
    transfer_finish;
  if !unfinished <> [] then begin
    let excused = Array.make nt false in
    List.iter (fun (s : stranded) -> excused.(s.tid) <- true) !stranded;
    Array.iter
      (fun (tr : Program.transfer) ->
        if (not excused.(tr.id)) && List.exists (fun d -> excused.(d)) tr.deps then
          excused.(tr.id) <- true)
      transfers;
    match List.find_opt (fun tid -> not excused.(tid)) (List.rev !unfinished) with
    | Some tid ->
      raise
        (Simulation_error
           {
             tid;
             tag = transfers.(tid).Program.tag;
             kind = Never_completed { remaining = List.length !unfinished };
           })
    | None -> ()
  end;
  {
    finish_time = !finish_time;
    transfer_finish;
    link_bytes;
    link_busy;
    link_intervals = Array.map List.rev link_intervals;
    stranded = List.rev !stranded;
  }

let utilization_timeline topo report ~bins =
  Tacos_util.Timeline.utilization ~bins ~span:report.finish_time
    ~capacity:(float_of_int (Topology.num_links topo))
    (fun f -> Array.iter (List.iter (fun (s, e) -> f s e)) report.link_intervals)

let average_utilization topo report =
  if report.finish_time <= 0. then 0.
  else begin
    let total = Array.fold_left ( +. ) 0. report.link_busy in
    total /. (float_of_int (Topology.num_links topo) *. report.finish_time)
  end
