(* Namespaces of the substrate libraries. *)
open Tacos_topology
module Pq = Tacos_util.Pq
module Obs = Tacos_obs.Obs

let obs_events = Obs.counter "engine.events"
let obs_queue_depth = Obs.histogram "engine.queue_depth"
let obs_max_queue = Obs.gauge "engine.max_queue_depth"
let obs_max_backlog = Obs.gauge "engine.max_backlog_seconds"

type report = {
  finish_time : float;
  transfer_finish : float array;
  link_bytes : float array;
  link_busy : float array;
  link_intervals : (float * float) list array;
}

(* A message in flight: which transfer it belongs to and the nodes still to
   visit (excluding the node it currently sits at). *)
type msg = { tid : int; mutable rest : int list }

type event =
  | Ready of int  (** transfer id became ready *)
  | Link_free of int  (** link finished serializing; next message may start *)
  | Hop_arrived of msg  (** message landed at the next node on its path *)

type link_model = Pipelined_alpha | Blocking_alpha

let run ?(model = Pipelined_alpha) ?routing_size topo program =
  let transfers = Program.transfers program in
  let nt = Array.length transfers in
  (match Program.validate_acyclic program with
  | Ok () -> ()
  | Error e -> failwith ("Engine.run: " ^ e));
  let routing_size =
    match routing_size with
    | Some s -> s
    | None ->
      if nt = 0 then 1.
      else Float.max 1. (Program.total_bytes program /. float_of_int nt)
  in
  let routing = lazy (Routing.build topo ~size:routing_size) in
  let m = Topology.num_links topo in
  (* The link model follows the paper's analytical backend: a message holds
     the link for its serialization delay β·size (one message at a time,
     FCFS), and lands at the far end a propagation latency α after
     serialization ends. α does not block the next message — this is what
     lets latency-bound Direct beat Ring on a physical ring (Fig. 2b) while
     bandwidth-bound traffic still queues. *)
  let serialize = Array.make m 0. (* β, seconds per byte *) in
  let latency = Array.make m 0. (* α, seconds *) in
  List.iter
    (fun (e : Topology.edge) ->
      serialize.(e.id) <- Link.cost e.link 1. -. Link.cost e.link 0.;
      latency.(e.id) <- Link.cost e.link 0.)
    (Topology.edges topo);
  (* Per-link FCFS server state. *)
  let queue = Array.init m (fun _ -> Queue.create ()) in
  let serving = Array.make m false in
  let backlog = Array.make m 0. in
  (* Stats. *)
  let link_bytes = Array.make m 0. in
  let link_busy = Array.make m 0. in
  let link_intervals = Array.make m [] in
  let transfer_finish = Array.make nt infinity in
  (* Dependency bookkeeping. *)
  let indeg = Array.make nt 0 in
  let dependents = Array.make nt [] in
  Array.iter
    (fun (tr : Program.transfer) ->
      indeg.(tr.id) <- List.length tr.deps;
      List.iter (fun d -> dependents.(d) <- tr.id :: dependents.(d)) tr.deps)
    transfers;
  let events : event Pq.t = Pq.create () in
  let obs_on = Obs.enabled () in
  (* Time the link is occupied by one message of [size] bytes — the unit of
     both FCFS service and backlog accounting, so the two can never drift. *)
  let hold_of link size =
    match model with
    | Pipelined_alpha -> serialize.(link) *. size
    | Blocking_alpha -> latency.(link) +. (serialize.(link) *. size)
  in
  let start_service link (msg : msg) t =
    serving.(link) <- true;
    let size = transfers.(msg.tid).Program.size in
    let hold = hold_of link size in
    let arrive =
      match model with
      | Pipelined_alpha -> t +. hold +. latency.(link)
      | Blocking_alpha -> t +. hold
    in
    link_bytes.(link) <- link_bytes.(link) +. size;
    link_busy.(link) <- link_busy.(link) +. hold;
    link_intervals.(link) <- (t, t +. hold) :: link_intervals.(link);
    Pq.push events (t +. hold) (Link_free link);
    Pq.push events arrive (Hop_arrived msg)
  in
  (* Hand a message to the least-backlogged parallel link towards its next
     hop and start service if that link is idle. *)
  let enqueue_hop (msg : msg) current t =
    let next = match msg.rest with [] -> assert false | n :: _ -> n in
    let candidates = Topology.find_links topo ~src:current ~dst:next in
    let link =
      match candidates with
      | [] ->
        failwith
          (Printf.sprintf "Engine.run: route uses missing link %d->%d" current next)
      | first :: rest ->
        List.fold_left
          (fun best (e : Topology.edge) ->
            if backlog.(e.id) < backlog.(best) then e.id else best)
          first.Topology.id rest
    in
    (* backlog.(link) predicts when the link finishes everything accepted so
       far: service is FCFS and back-to-back, so the new message starts at
       max(backlog, now) and occupies the link for its full model hold
       (including α under Blocking_alpha — accounting only the serialization
       term let latency-bound traffic look free and pile onto one of two
       identical parallel links). *)
    let hold = hold_of link transfers.(msg.tid).Program.size in
    backlog.(link) <- Float.max backlog.(link) t +. hold;
    if obs_on then begin
      let depth = Queue.length queue.(link) in
      Obs.observe obs_queue_depth (float_of_int depth);
      Obs.observe_max obs_max_queue (float_of_int depth);
      Obs.observe_max obs_max_backlog (backlog.(link) -. t);
      Obs.trace "engine.enqueue"
        [
          ("link", Tacos_util.Json.Number (float_of_int link));
          ("now", Tacos_util.Json.Number t);
          ("depth", Tacos_util.Json.Number (float_of_int depth));
          ("backlog_seconds", Tacos_util.Json.Number (backlog.(link) -. t));
        ]
    end;
    if serving.(link) then Queue.push msg queue.(link) else start_service link msg t
  in
  let complete tid t =
    transfer_finish.(tid) <- t;
    List.iter
      (fun d ->
        indeg.(d) <- indeg.(d) - 1;
        if indeg.(d) = 0 then Pq.push events t (Ready d))
      dependents.(tid)
  in
  let launch tid t =
    let tr = transfers.(tid) in
    if tr.Program.src = tr.Program.dst then complete tid t
    else begin
      let path = Routing.path (Lazy.force routing) ~src:tr.Program.src ~dst:tr.Program.dst in
      match path with
      | [] | [ _ ] -> complete tid t
      | _ :: rest ->
        let msg = { tid; rest } in
        enqueue_hop msg tr.Program.src t
    end
  in
  Array.iter
    (fun (tr : Program.transfer) ->
      if indeg.(tr.id) = 0 then Pq.push events 0. (Ready tr.id))
    transfers;
  let finish_time = ref 0. in
  let rec loop () =
    match Pq.pop events with
    | None -> ()
    | Some (t, ev) ->
      Obs.incr obs_events;
      finish_time := Float.max !finish_time t;
      (match ev with
      | Ready tid -> launch tid t
      | Link_free link -> (
        serving.(link) <- false;
        match Queue.take_opt queue.(link) with
        | Some next_msg -> start_service link next_msg t
        | None -> ())
      | Hop_arrived msg -> (
        match msg.rest with
        | [] -> assert false
        | [ _last ] -> complete msg.tid t
        | arrived :: rest ->
          msg.rest <- rest;
          enqueue_hop msg arrived t));
      loop ()
  in
  loop ();
  Array.iteri
    (fun tid f ->
      if f = infinity then
        failwith
          (Printf.sprintf
             "Engine.run: transfer %d (%s) never completed — cyclic dependencies?"
             tid transfers.(tid).Program.tag))
    transfer_finish;
  {
    finish_time = !finish_time;
    transfer_finish;
    link_bytes;
    link_busy;
    link_intervals = Array.map List.rev link_intervals;
  }

let utilization_timeline topo report ~bins =
  Tacos_util.Timeline.utilization ~bins ~span:report.finish_time
    ~capacity:(float_of_int (Topology.num_links topo))
    (fun f -> Array.iter (List.iter (fun (s, e) -> f s e)) report.link_intervals)

let average_utilization topo report =
  if report.finish_time <= 0. then 0.
  else begin
    let total = Array.fold_left ( +. ) 0. report.link_busy in
    total /. (float_of_int (Topology.num_links topo) *. report.finish_time)
  end
