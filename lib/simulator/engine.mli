(* Namespaces of the substrate libraries. *)
open Tacos_topology

(** Congestion-aware analytical network simulator (§V-C).

    The paper's evaluation backend models a message transfer "by simulating
    the send and receive operations at the link granularity. Each link is
    equipped with message queues and can process only one message at a time;
    if two messages contend for the same link, only one is sent out in a
    first-come, first-served order." This module is a from-scratch
    discrete-event implementation of exactly that model:

    - every physical link is a FCFS server with service time [α + β·size];
    - a transfer between non-adjacent NPUs follows its static min-cost route,
      store-and-forward at message granularity;
    - parallel links between the same NPU pair are independent servers and a
      hop picks the one with the least backlog;
    - a transfer starts once all its dependencies completed.

    Determinism: ties in the event queue resolve in insertion order, so runs
    are exactly reproducible.

    {2 Mid-flight faults}

    [run ~faults] injects timed fabric changes as first-class event-queue
    entries. When a link dies mid-service the message it was serializing is
    aborted (its unfinished remainder un-credited from the link statistics,
    so the dead link shows no activity past the fault time), re-planned from
    the node it currently sits at over the surviving fabric, and everything
    queued behind it is drained and re-enqueued the same way. Routing tables
    are rebuilt lazily, once per fault epoch. A message whose destination
    became unreachable is reported as {!type-stranded} rather than raised or
    hung; transfers depending on a stranded one inherit the outcome. *)

type fault_event =
  | Link_dies of { link : int; at : float }
      (** the link stops serving at time [at]; in-flight service is aborted
          and rerouted *)
  | Link_degrades of { link : int; factor : float; at : float }
      (** α and β are multiplied by [factor ≥ 1] for services *started*
          after [at] (the committed in-flight message finishes at its
          negotiated rate); factors compose multiplicatively *)
  | Link_recovers of { link : int; at : float }
      (** the link returns to its healthy α/β (and to life, if dead) *)

val fault_time : fault_event -> float

type stranded = {
  tid : int;  (** transfer id that could not complete *)
  tag : string;  (** the transfer's program tag *)
  at_npu : int;  (** node the message was stuck at when routing failed *)
  dst : int;  (** unreachable destination *)
  time : float;  (** when the disconnection was discovered *)
}

type report = {
  finish_time : float;
  transfer_finish : float array;
      (** completion time per transfer id; [infinity] for stranded transfers
          and their dependents *)
  link_bytes : float array;  (** bytes carried per link id (Fig. 1) *)
  link_busy : float array;  (** busy seconds per link id *)
  link_intervals : (float * float) list array;
      (** per link, the service intervals in time order (Figs. 16b / 18);
          an interval cut short by a link death ends at the fault time *)
  stranded : stranded list;
      (** messages whose destination became unreachable, in discovery order;
          empty on a healthy run *)
}

type error_kind =
  | No_route of { src : int; dst : int }
      (** the healthy fabric cannot route a required pair (only raised when
          [faults = []]; with faults the outcome is {!type-stranded}) *)
  | Never_completed of { remaining : int }
      (** the event queue drained with transfers unfinished and no stranding
          to explain them — an engine bug ({!Cyclic_program} is rejected up
          front) *)
  | Cyclic_program of { dep : int }
      (** the named transfer depends on transfer [dep], which is not earlier:
          the program (necessarily {!Program.import}ed — {!Program.add}
          cannot build one) would deadlock and is rejected before any event
          runs *)

exception Simulation_error of { tid : int; tag : string; kind : error_kind }
(** Typed replacement for the engine's former [failwith]s, so callers
    ({!Tacos_resilience}) can catch it structurally. *)

type link_model =
  | Pipelined_alpha
      (** β·size occupies the link, α is propagation latency overlapping the
          next message's serialization — the default, required for the
          latency-bound crossovers of Fig. 2(b) *)
  | Blocking_alpha
      (** the link is held for the full α + β·size — the naive reading of
          the α-β model, kept for sensitivity analysis *)

val run :
  ?model:link_model ->
  ?routing_size:float ->
  ?faults:fault_event list ->
  Topology.t ->
  Program.t ->
  report
(** Execute a program to completion. [routing_size] is the message size used
    to cost routes (default: the program's mean transfer size), capturing
    that latency- vs bandwidth-bound traffic may prefer different paths.
    [faults] is the timed fault timeline (default none); at equal timestamps
    a fault applies before same-time transfer events. Raises
    {!Simulation_error} if the program is cyclic ({!Cyclic_program}, checked
    up front), the healthy topology cannot route a required pair, or
    unfinished transfers cannot be explained by strandings;
    [Invalid_argument] on a malformed fault (unknown link id, negative time,
    degradation factor < 1). *)

val utilization_timeline : Topology.t -> report -> bins:int -> (float * float) list
(** Fraction of links busy per time bin, as in {!Tacos_collective.Schedule}. *)

val average_utilization : Topology.t -> report -> float
