(* Namespaces of the substrate libraries. *)
open Tacos_topology

(** Congestion-aware analytical network simulator (§V-C).

    The paper's evaluation backend models a message transfer "by simulating
    the send and receive operations at the link granularity. Each link is
    equipped with message queues and can process only one message at a time;
    if two messages contend for the same link, only one is sent out in a
    first-come, first-served order." This module is a from-scratch
    discrete-event implementation of exactly that model:

    - every physical link is a FCFS server with service time [α + β·size];
    - a transfer between non-adjacent NPUs follows its static min-cost route,
      store-and-forward at message granularity;
    - parallel links between the same NPU pair are independent servers and a
      hop picks the one with the least backlog;
    - a transfer starts once all its dependencies completed.

    Determinism: ties in the event queue resolve in insertion order, so runs
    are exactly reproducible. *)

type report = {
  finish_time : float;
  transfer_finish : float array;  (** completion time per transfer id *)
  link_bytes : float array;  (** bytes carried per link id (Fig. 1) *)
  link_busy : float array;  (** busy seconds per link id *)
  link_intervals : (float * float) list array;
      (** per link, the service intervals in time order (Figs. 16b / 18) *)
}

type link_model =
  | Pipelined_alpha
      (** β·size occupies the link, α is propagation latency overlapping the
          next message's serialization — the default, required for the
          latency-bound crossovers of Fig. 2(b) *)
  | Blocking_alpha
      (** the link is held for the full α + β·size — the naive reading of
          the α-β model, kept for sensitivity analysis *)

val run :
  ?model:link_model -> ?routing_size:float -> Topology.t -> Program.t -> report
(** Execute a program to completion. [routing_size] is the message size used
    to cost routes (default: the program's mean transfer size), capturing
    that latency- vs bandwidth-bound traffic may prefer different paths.
    Raises [Failure] if the topology cannot route a required pair or the
    program is cyclic. *)

val utilization_timeline : Topology.t -> report -> bins:int -> (float * float) list
(** Fraction of links busy per time bin, as in {!Tacos_collective.Schedule}. *)

val average_utilization : Topology.t -> report -> float
