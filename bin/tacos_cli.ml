(* The tacos command-line tool: synthesize topology-aware collective
   algorithms, inspect topologies, and compare against the baseline
   algorithms — the workflow of Fig. 3(b) as a CLI.

     tacos synthesize --topology mesh:3x3 --pattern all-gather --ten
     tacos compare --topology dgx1 --size 1GB
     tacos profile --topology mesh:4x4 --pattern all-reduce
     tacos faults --topology mesh:5x5 --fail-links 2 --seed 7
     tacos info --topology dragonfly:4x5 *)

open Cmdliner
open Tacos_topology
open Tacos_collective
module Synth = Tacos.Synthesizer
module Algo = Tacos_baselines.Algo
module Units = Tacos_util.Units
module Table = Tacos_util.Table
module Json = Tacos_util.Json
module Obs = Tacos_obs.Obs
module Trace = Tacos_obs.Trace
module Chrome = Tacos_obs.Chrome
module Critpath = Tacos_obs.Critpath
module Fault = Tacos_resilience.Fault
module Resilience = Tacos_resilience.Resilience
module Service = Tacos_serve.Service
module Sketch = Tacos_sketch.Sketch
module Strategy = Tacos_sketch.Strategy

(* --- common options ------------------------------------------------------ *)

let topology_arg =
  let doc =
    "Target topology: ring:N, uniring:N, fc:N, mesh:AxB[xC], torus:AxB[xC], \
     hypercube:K, switch:N, dgx1, dragonfly[:GxM], rfs:RxFxS."
  in
  Arg.(value & opt string "mesh:3x3" & info [ "t"; "topology" ] ~docv:"TOPO" ~doc)

let alpha_arg =
  let doc = "Link latency alpha in microseconds." in
  Arg.(value & opt float 0.5 & info [ "alpha" ] ~docv:"US" ~doc)

let bw_arg =
  let doc = "Link bandwidth in GB/s (heterogeneous builders scale from it)." in
  Arg.(value & opt float 50. & info [ "bandwidth"; "bw" ] ~docv:"GBPS" ~doc)

let size_arg =
  let doc = "Collective size, e.g. 1GB, 64MB, 4KB." in
  Arg.(value & opt string "64MB" & info [ "s"; "size" ] ~docv:"SIZE" ~doc)

let pattern_arg =
  let doc = "Collective pattern: all-gather, reduce-scatter, all-reduce, broadcast[:ROOT], reduce[:ROOT]." in
  Arg.(value & opt string "all-reduce" & info [ "p"; "pattern" ] ~docv:"PATTERN" ~doc)

let chunks_arg =
  let doc = "Chunks per NPU (collective decomposition granularity)." in
  Arg.(value & opt int 1 & info [ "c"; "chunks" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Random seed for the matching search." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let trials_arg =
  let doc = "Randomized synthesis restarts; the best schedule is kept." in
  Arg.(value & opt int 1 & info [ "trials" ] ~docv:"N" ~doc)

let domains_arg =
  let doc =
    "Parallel OCaml domains for synthesis: randomized trials and (with \
     --groups) per-phase sub-syntheses fan out on one shared worker pool. \
     Results are bit-identical to --domains 1."
  in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)

let groups_arg =
  let doc =
    "Hierarchical synthesis over process groups: partition the fabric by \
     hierarchy dimension $(docv) (or let 'auto' pick the bottleneck \
     dimension), synthesize intra-group and inter-group phases on the \
     sub-fabrics — isomorphic groups cost one synthesis — and compose one \
     full-fabric schedule."
  in
  Arg.(value & opt (some string) None & info [ "groups" ] ~docv:"DIM|auto" ~doc)

(* Derive the partition a [--groups] argument names, as a [result]. *)
let parse_groups topo gstr =
  match Tacos_groups.Plan.grouping_of_string gstr with
  | Error e -> Error e
  | Ok grouping -> Tacos_groups.Plan.decompose topo grouping

let fail fmt = Printf.ksprintf (fun msg -> `Error (false, msg)) fmt

let sketch_arg =
  let doc =
    "Communication sketch file (JSON rules: forbid/prefer/pin/buddy) \
     constraining the synthesis; see the README's sketch section."
  in
  Arg.(value & opt (some string) None & info [ "sketch" ] ~docv:"FILE" ~doc)

(* Load a [--sketch FILE] argument, if any, as a [Sketch.t option]. *)
let with_sketch sketch_path f =
  match sketch_path with
  | None -> f None
  | Some path -> (
    match Sketch.of_file path with
    | Error e -> fail "--sketch %s: %s" path e
    | Ok sk -> f (Some sk))

let with_setup topo_str alpha_us bw_gbps f =
  match Parse.parse_topology ~alpha:(alpha_us *. 1e-6) ~bw:(Units.gbps bw_gbps) topo_str with
  | Error e -> fail "%s" e
  | Ok topo -> f topo

(* --- synthesize ----------------------------------------------------------- *)

let synthesize_cmd =
  let render_ten =
    Arg.(value & flag & info [ "ten" ] ~doc:"Render the synthesized TEN grid (homogeneous topologies).")
  in
  let list_events =
    Arg.(value & flag & info [ "events" ] ~doc:"List every link-chunk match of the schedule.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the synthesized schedule as JSON to $(docv) ('-' for stdout).")
  in
  let svg_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "svg" ] ~docv:"FILE"
          ~doc:"Write a link-time Gantt chart of the schedule as SVG to $(docv).")
  in
  let program_of =
    Arg.(
      value
      & opt (some int) None
      & info [ "program" ] ~docv:"NPU"
          ~doc:"Print the lowered per-NPU send/recv program of $(docv).")
  in
  let run topo_str alpha bw size_str pattern_str chunks seed trials domains groups sketch_path ten events json svg program =
    with_setup topo_str alpha bw (fun topo ->
        match Parse.parse_size size_str with
        | Error e -> fail "%s" e
        | Ok size -> (
          match Parse.parse_pattern pattern_str (Topology.num_npus topo) with
          | Error e -> fail "%s" e
          | Ok pattern ->
            with_sketch sketch_path (fun sketch ->
            let spec =
              Spec.make ~chunks_per_npu:chunks ~buffer_size:size ~pattern
                ~npus:(Topology.num_npus topo) ()
            in
            let synthesize () =
              match groups with
              | Some _ when sketch <> None ->
                Error "--sketch does not compose with --groups"
              | Some gstr -> (
                match parse_groups topo gstr with
                | Error e -> Error ("--groups: " ^ e)
                | Ok gs ->
                  let plan =
                    Tacos_groups.Plan.synthesize ~seed ~trials ~domains topo spec
                      ~groups:gs
                  in
                  Ok (plan.Tacos_groups.Plan.result, Some plan))
              | None ->
                (* Compiling first surfaces a typed infeasibility (including
                   routed patterns) before any matching work. *)
                let constraints = Option.map (Sketch.compile topo spec) sketch in
                Ok
                  ( (if pattern = Pattern.All_to_all then
                       Tacos.Alltoall.synthesize ~seed topo spec
                     else
                       Synth.synthesize ~seed ~trials ~domains ?sketch:constraints
                         topo spec),
                    None )
            in
            match synthesize () with
            | exception Synth.Stuck msg -> fail "synthesis stuck: %s" msg
            | exception Synth.Unsupported msg -> fail "unsupported: %s" msg
            | exception Sketch.Infeasible off ->
              fail "sketch infeasible: %s" (Sketch.offender_to_string off)
            | Error e -> fail "%s" e
            | Ok (result, plan) ->
              Format.printf "topology:        %a@." Topology.pp topo;
              Format.printf "collective:      %a@." Spec.pp spec;
              (match plan with
              | Some p ->
                Format.printf "groups:          %d x %d NPUs, %d syntheses, %d dedup hits@."
                  p.Tacos_groups.Plan.groups p.Tacos_groups.Plan.group_size
                  p.Tacos_groups.Plan.syntheses p.Tacos_groups.Plan.dedup_hits;
                List.iter
                  (fun (i : Tacos_groups.Plan.phase_info) ->
                    Format.printf
                      "  %-21s %3d parts, %d synthesized, makespan %s, wall %s@."
                      i.Tacos_groups.Plan.phase i.Tacos_groups.Plan.parts
                      i.Tacos_groups.Plan.syntheses
                      (Units.time_pp i.Tacos_groups.Plan.makespan)
                      (Units.time_pp i.Tacos_groups.Plan.wall_seconds))
                  p.Tacos_groups.Plan.phase_infos
              | None -> ());
              Format.printf "collective time: %s@." (Units.time_pp result.Synth.collective_time);
              Format.printf "bandwidth:       %s@."
                (Units.bandwidth_pp (size /. result.Synth.collective_time));
              Format.printf "sends:           %d over %d rounds (synthesized in %s)@."
                (Schedule.num_sends result.Synth.schedule)
                result.Synth.stats.Synth.rounds
                (Units.time_pp result.Synth.stats.Synth.wall_seconds);
              (match
                 (if pattern = Pattern.All_to_all then
                    Schedule.validate topo spec result.Synth.schedule
                  else Synth.verify topo result)
               with
              | Ok () -> Format.printf "validation:      ok (congestion-free, postconditions met)@."
              | Error e -> Format.printf "validation:      FAILED: %s@." e);
              (match sketch with
              | Some sk -> (
                match Sketch.compliant topo spec sk result.Synth.schedule with
                | Ok () ->
                  Format.printf "sketch:          ok (%d rules, schedule compliant)@."
                    (List.length sk.Sketch.rules)
                | Error e -> Format.printf "sketch:          VIOLATED: %s@." e)
              | None -> ());
              (match Ideal.all_reduce_time topo ~size with
              | ideal when pattern = Pattern.All_reduce ->
                Format.printf "vs ideal:        %.2f%%@."
                  (100. *. ideal /. result.Synth.collective_time)
              | _ | (exception _) -> ());
              if events then Schedule.pp_events Format.std_formatter result.Synth.schedule;
              (match svg with
              | Some file ->
                let oc = open_out file in
                output_string oc (Svg.render topo result.Synth.schedule);
                close_out oc;
                Format.printf "SVG written to %s@." file
              | None -> ());
              (match program with
              | Some npu ->
                let programs =
                  Lowering.npu_programs ~npus:(Topology.num_npus topo)
                    result.Synth.schedule
                in
                if npu < 0 || npu >= Array.length programs then
                  Format.printf "NPU %d out of range@." npu
                else begin
                  Format.printf "program of NPU %d:@." npu;
                  Lowering.pp_program Format.std_formatter programs.(npu)
                end
              | None -> ());
              (match json with
              | Some "-" -> print_string (Schedule.to_json ~spec result.Synth.schedule)
              | Some file ->
                let oc = open_out file in
                output_string oc (Schedule.to_json ~spec result.Synth.schedule);
                close_out oc;
                Format.printf "schedule written to %s@." file
              | None -> ());
              if ten then begin
                let chunk_size = Spec.chunk_size spec in
                let cost =
                  match Topology.edges topo with
                  | e :: _ -> Link.cost e.Topology.link chunk_size
                  | [] -> 0.
                in
                match Tacos_ten.Ten.of_schedule topo ~span_cost:cost result.Synth.schedule with
                | ten -> print_string (Tacos_ten.Ten.render ten)
                | exception Invalid_argument _ ->
                  print_endline "(TEN grid unavailable: heterogeneous topology or composite schedule)"
              end;
              `Ok ())))
  in
  let term =
    Term.(
      ret
        (const run $ topology_arg $ alpha_arg $ bw_arg $ size_arg $ pattern_arg
       $ chunks_arg $ seed_arg $ trials_arg $ domains_arg $ groups_arg
       $ sketch_arg $ render_ten $ list_events $ json_out $ svg_out $ program_of))
  in
  Cmd.v (Cmd.info "synthesize" ~doc:"Synthesize a topology-aware collective algorithm") term

(* --- compare --------------------------------------------------------------- *)

let compare_cmd =
  let run topo_str alpha bw size_str chunks seed trials =
    with_setup topo_str alpha bw (fun topo ->
        match Parse.parse_size size_str with
        | Error e -> fail "%s" e
        | Ok size ->
          let n = Topology.num_npus topo in
          let spec k =
            Spec.make ~chunks_per_npu:k ~buffer_size:size ~pattern:Pattern.All_reduce
              ~npus:n ()
          in
          let power_of_two = n land (n - 1) = 0 in
          let baselines =
            [ ("Ring", Algo.ring); ("Direct", Algo.Direct) ]
            @ (if power_of_two then [ ("RHD", Algo.Rhd); ("DBT", Algo.Dbt) ] else [])
            @ [ ("TACCL-like", Algo.Taccl_like) ]
          in
          let rows = ref [] in
          List.iter
            (fun (name, algo) ->
              match Algo.collective_time algo topo (spec 1) with
              | t ->
                rows := [ name; Units.time_pp t; Units.bandwidth_pp (size /. t) ] :: !rows
              | exception _ -> rows := [ name; "n/a"; "n/a" ] :: !rows)
            baselines;
          let result = Synth.synthesize ~seed ~trials topo (spec chunks) in
          let program =
            Tacos_sim.Program.of_schedule ~chunk_size:(Spec.chunk_size (spec chunks))
              result.Synth.schedule
          in
          let t = (Tacos_sim.Engine.run topo program).Tacos_sim.Engine.finish_time in
          rows := [ "TACOS"; Units.time_pp t; Units.bandwidth_pp (size /. t) ] :: !rows;
          let ideal = Ideal.all_reduce_time topo ~size in
          rows := [ "Ideal"; Units.time_pp ideal; Units.bandwidth_pp (size /. ideal) ] :: !rows;
          Format.printf "All-Reduce of %s on %a@." (Units.bytes_pp size) Topology.pp topo;
          Table.print ~header:[ "Algorithm"; "Time"; "Bandwidth" ] (List.rev !rows);
          `Ok ())
  in
  let term =
    Term.(
      ret
        (const run $ topology_arg $ alpha_arg $ bw_arg $ size_arg $ chunks_arg
       $ seed_arg $ trials_arg))
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare TACOS against the baseline All-Reduce algorithms")
    term

(* --- tune ------------------------------------------------------------------ *)

let tune_cmd =
  let candidates_arg =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4; 8; 16 ]
      & info [ "candidates" ] ~docv:"K1,K2,..."
          ~doc:"Chunks-per-NPU granularities to try.")
  in
  let run topo_str alpha bw size_str pattern_str seed domains candidates groups
      sketch_path =
    with_setup topo_str alpha bw (fun topo ->
        match Parse.parse_size size_str with
        | Error e -> fail "%s" e
        | Ok size -> (
          match Parse.parse_pattern pattern_str (Topology.num_npus topo) with
          | Error e -> fail "%s" e
          | Ok pattern ->
            with_sketch sketch_path (fun sketch ->
            (* With --groups, every candidate granularity is synthesized
               hierarchically through the group planner. *)
            let backend =
              match (groups, sketch) with
              | Some _, Some _ -> Error "--sketch does not compose with --groups"
              | None, None -> Ok None
              | None, Some sk ->
                Ok
                  (Some
                     (fun ~seed topo spec ->
                       (* Per candidate: pin chunk ids are validated against
                          each candidate's own chunk space. *)
                       let c = Sketch.compile topo spec sk in
                       Synth.synthesize ~seed ~domains ~sketch:c topo spec))
              | Some gstr, None ->
                Result.map_error
                  (fun e -> "--groups: " ^ e)
                  (Result.map
                     (fun gs ->
                       Some
                         (fun ~seed topo spec ->
                           (Tacos_groups.Plan.synthesize ~seed ~domains topo spec
                              ~groups:gs)
                             .Tacos_groups.Plan.result))
                     (parse_groups topo gstr))
            in
            match backend with
            | Error e -> fail "%s" e
            | Ok synthesize -> (
              match
                let rows = ref [] in
                List.iter
                  (fun k ->
                    let choice =
                      Tacos.Tuner.tune ~seed ~domains ~candidates:[ k ] ?synthesize
                        topo ~pattern ~size
                    in
                    rows :=
                      [
                        string_of_int k;
                        Units.time_pp choice.Tacos.Tuner.simulated_time;
                        Units.bandwidth_pp (size /. choice.Tacos.Tuner.simulated_time);
                      ]
                      :: !rows)
                  candidates;
                let best =
                  Tacos.Tuner.tune ~seed ~domains ~candidates ?synthesize topo
                    ~pattern ~size
                in
                (List.rev !rows, best)
              with
              | exception Sketch.Infeasible off ->
                fail "sketch infeasible: %s" (Sketch.offender_to_string off)
              | exception Synth.Stuck msg -> fail "synthesis stuck: %s" msg
              | rows, best ->
                Format.printf "%s of %s on %a@." (Pattern.name pattern)
                  (Units.bytes_pp size) Topology.pp topo;
                Table.print ~header:[ "chunks/NPU"; "simulated time"; "bandwidth" ]
                  rows;
                Format.printf "best: %d chunks/NPU (%s)@."
                  best.Tacos.Tuner.chunks_per_npu
                  (Units.time_pp best.Tacos.Tuner.simulated_time);
                `Ok ()))))
  in
  let term =
    Term.(
      ret
        (const run $ topology_arg $ alpha_arg $ bw_arg $ size_arg $ pattern_arg
       $ seed_arg $ domains_arg $ candidates_arg $ groups_arg $ sketch_arg))
  in
  Cmd.v
    (Cmd.info "tune" ~doc:"Sweep chunk granularities and report the fastest")
    term

(* --- pareto ---------------------------------------------------------------- *)

let pareto_cmd =
  let candidates_arg =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4; 8; 16 ]
      & info [ "candidates" ] ~docv:"K1,K2,..."
          ~doc:"Chunks-per-NPU granularities to sweep.")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the full outcome (every point, the frontier, and the \
             dominated pairs) as one JSON document on stdout.")
  in
  let run topo_str alpha bw size_str pattern_str seed trials domains candidates
      sketch_path json =
    with_setup topo_str alpha bw (fun topo ->
        match Parse.parse_size size_str with
        | Error e -> fail "%s" e
        | Ok size -> (
          match Parse.parse_pattern pattern_str (Topology.num_npus topo) with
          | Error e -> fail "%s" e
          | Ok pattern ->
            with_sketch sketch_path (fun sketch ->
            match
              Strategy.sweep ~seed ~trials ~domains ~candidates ?sketch topo
                ~pattern ~size
            with
            | exception Sketch.Infeasible off ->
              fail "sketch infeasible: %s" (Sketch.offender_to_string off)
            | exception Synth.Stuck msg -> fail "synthesis stuck: %s" msg
            | exception Synth.Unsupported msg -> fail "unsupported: %s" msg
            | exception Invalid_argument msg -> fail "%s" msg
            | outcome ->
              if json then print_endline (Strategy.to_json outcome)
              else begin
                Format.printf "%s of %s on %a — latency/bandwidth tradeoffs@."
                  (Pattern.name pattern) (Units.bytes_pp size) Topology.pp topo;
                let on_frontier p = List.memq p outcome.Strategy.frontier in
                Table.print
                  ~header:
                    [
                      "chunks/NPU"; "steps"; "sends"; "collective"; "simulated";
                      "synth wall"; "frontier";
                    ]
                  (List.map
                     (fun (p : Strategy.point) ->
                       [
                         string_of_int p.Strategy.chunks_per_npu;
                         string_of_int p.Strategy.steps;
                         string_of_int p.Strategy.sends;
                         Units.time_pp p.Strategy.collective_time;
                         Units.time_pp p.Strategy.simulated_time;
                         Units.time_pp p.Strategy.synthesis_seconds;
                         (if on_frontier p then "*" else "dominated");
                       ])
                     outcome.Strategy.points);
                Format.printf
                  "frontier: %d of %d points non-dominated over (chunks, steps, \
                   simulated time)@."
                  (List.length outcome.Strategy.frontier)
                  (List.length outcome.Strategy.points)
              end;
              `Ok ())))
  in
  let term =
    Term.(
      ret
        (const run $ topology_arg $ alpha_arg $ bw_arg $ size_arg $ pattern_arg
       $ seed_arg $ trials_arg $ domains_arg $ candidates_arg $ sketch_arg
       $ json_flag))
  in
  Cmd.v
    (Cmd.info "pareto"
       ~doc:
         "Sweep chunk granularities (optionally under a communication sketch) \
          and report the latency/bandwidth Pareto frontier")
    term

(* --- profile ---------------------------------------------------------------- *)

let profile_cmd =
  let out_arg =
    Arg.(
      value & opt string "-"
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the JSON profile to $(docv) ('-' for stdout).")
  in
  let trace_arg =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Include the raw structured trace in the output: the Obs event \
             stream and the full per-transfer lifecycle (schema documented \
             in Tacos_obs.Trace).")
  in
  let run topo_str alpha bw size_str pattern_str chunks seed trials out trace =
    with_setup topo_str alpha bw (fun topo ->
        match Parse.parse_size size_str with
        | Error e -> fail "%s" e
        | Ok size -> (
          match Parse.parse_pattern pattern_str (Topology.num_npus topo) with
          | Error e -> fail "%s" e
          | Ok pattern -> (
            let spec =
              Spec.make ~chunks_per_npu:chunks ~buffer_size:size ~pattern
                ~npus:(Topology.num_npus topo) ()
            in
            (* Everything below runs with the obs registry on: synthesis
               populates the synth.*/router.* metrics, and replaying the
               schedule under the congestion-aware simulator populates the
               engine.* queueing metrics. *)
            Obs.enable ();
            Obs.reset ();
            if trace then begin
              Trace.enable ();
              Trace.reset ()
            end;
            let synthesize () =
              if pattern = Pattern.All_to_all then Tacos.Alltoall.synthesize ~seed topo spec
              else Synth.synthesize ~seed ~trials topo spec
            in
            match synthesize () with
            | exception Synth.Stuck msg -> fail "synthesis stuck: %s" msg
            | exception Synth.Unsupported msg -> fail "unsupported: %s" msg
            | result ->
              let program =
                Tacos_sim.Program.of_schedule ~chunk_size:(Spec.chunk_size spec)
                  result.Synth.schedule
              in
              let sim = Tacos_sim.Engine.run topo program in
              let snap = Obs.snapshot () in
              let memo_hits = Obs.value (Obs.counter "synth.memo_hits") in
              let scans = Obs.value (Obs.counter "synth.pick_scans") in
              let memo_hit_rate =
                if memo_hits + scans = 0 then 0.
                else float_of_int memo_hits /. float_of_int (memo_hits + scans)
              in
              let num f = Json.Number f in
              let doc =
                Json.Object
                  ([
                     ("topology", Json.String (Topology.name topo));
                     ("npus", num (float_of_int (Topology.num_npus topo)));
                     ("links", num (float_of_int (Topology.num_links topo)));
                     ("pattern", Json.String (Pattern.name pattern));
                     ("buffer_bytes", num size);
                     ("chunks_per_npu", num (float_of_int chunks));
                     ("seed", num (float_of_int seed));
                     ("trials", num (float_of_int trials));
                     ("collective_time_seconds", num result.Synth.collective_time);
                     ("simulated_time_seconds", num sim.Tacos_sim.Engine.finish_time);
                     ("synthesis_wall_seconds", num result.Synth.stats.Synth.wall_seconds);
                     ("rounds", num (float_of_int result.Synth.stats.Synth.rounds));
                     ("matches", num (float_of_int result.Synth.stats.Synth.matches));
                     ("derived", Json.Object [ ("memo_hit_rate", num memo_hit_rate) ]);
                     ("obs", snap);
                   ]
                  @
                  if trace then
                    [
                      ("trace", Obs.trace_events ());
                      ("lifecycle", Trace.to_json (Trace.dump ()));
                    ]
                  else [])
              in
              let text = Json.encode doc in
              (match out with
              | "-" -> print_endline text
              | file ->
                let oc = open_out file in
                output_string oc text;
                output_char oc '\n';
                close_out oc;
                Format.printf "profile written to %s@." file);
              `Ok ())))
  in
  let term =
    Term.(
      ret
        (const run $ topology_arg $ alpha_arg $ bw_arg $ size_arg $ pattern_arg
       $ chunks_arg $ seed_arg $ trials_arg $ out_arg $ trace_arg))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Synthesize with the observability registry enabled and emit a JSON \
          profile (counters, histograms, timers, queueing metrics)")
    term

(* --- faults ----------------------------------------------------------------- *)

module Engine = Tacos_sim.Engine
module Sim_program = Tacos_sim.Program

(* "--at 40%" resolves against the healthy schedule's simulated completion
   time; "--at 0.0012" is absolute seconds. *)
let parse_at s =
  let s = String.trim s in
  let pct = String.length s > 1 && s.[String.length s - 1] = '%' in
  let body = if pct then String.sub s 0 (String.length s - 1) else s in
  match float_of_string_opt body with
  | None -> Error (Printf.sprintf "bad fault time %S (seconds or N%%)" s)
  | Some v when v < 0. -> Error "fault time must be non-negative"
  | Some v -> Ok (if pct then `Fraction (v /. 100.) else `Seconds v)

(* An explicit per-epoch fault list: comma-separated kill-link=N, kill-npu=N,
   degrade=NxF tokens, as in "--at 40%:kill-link=3,degrade=7x2". *)
let parse_fault_spec s =
  let parse_token tok =
    let sub_after i = String.sub tok (i + 1) (String.length tok - i - 1) in
    match String.index_opt tok '=' with
    | Some i when String.sub tok 0 i = "kill-link" -> (
      match int_of_string_opt (sub_after i) with
      | Some n -> Ok (Fault.Kill_link n)
      | None -> Error (Printf.sprintf "bad link id in %S" tok))
    | Some i when String.sub tok 0 i = "kill-npu" -> (
      match int_of_string_opt (sub_after i) with
      | Some n -> Ok (Fault.Kill_npu n)
      | None -> Error (Printf.sprintf "bad NPU id in %S" tok))
    | Some i when String.sub tok 0 i = "degrade" -> (
      let v = sub_after i in
      match String.index_opt v 'x' with
      | Some j -> (
        match
          ( int_of_string_opt (String.sub v 0 j),
            float_of_string_opt (String.sub v (j + 1) (String.length v - j - 1)) )
        with
        | Some link, Some factor -> Ok (Fault.Degrade_link { link; factor })
        | _ -> Error (Printf.sprintf "bad degrade spec %S (want degrade=NxF)" tok))
      | None -> Error (Printf.sprintf "bad degrade spec %S (want degrade=NxF)" tok))
    | _ ->
      Error
        (Printf.sprintf
           "bad fault spec %S (kill-link=N, kill-npu=N or degrade=NxF)" tok)
  in
  List.fold_left
    (fun acc tok ->
      match (acc, parse_token (String.trim tok)) with
      | Error _, _ -> acc
      | _, Error e -> Error e
      | Ok fs, Ok f -> Ok (fs @ [ f ]))
    (Ok [])
    (String.split_on_char ',' s)

(* One "--at T[:SPEC]" event: the time, plus its own fault list when the
   colon form is used (required when giving a multi-epoch timeline). *)
let parse_event s =
  match String.index_opt s ':' with
  | None -> Result.map (fun at -> (at, None)) (parse_at s)
  | Some i -> (
    match parse_at (String.sub s 0 i) with
    | Error e -> Error e
    | Ok at ->
      Result.map
        (fun faults -> (at, Some faults))
        (parse_fault_spec (String.sub s (i + 1) (String.length s - i - 1))))

(* The mid-flight three-way comparison: replay-through-the-fault vs suffix
   repair vs full re-synthesis, all timed from the same fault instant. *)
let midflight_run ~seed ~trials ~domains ~budget ~json topo spec size faults at_spec =
  match Synth.synthesize ~seed ~trials topo spec with
  | exception Synth.Stuck msg -> fail "healthy synthesis stuck: %s" msg
  | exception Synth.Unsupported msg ->
    fail "--at needs a synthesizer-supported pattern: %s" msg
  | healthy ->
    let chunk_size = Spec.chunk_size spec in
    let program () = Sim_program.of_schedule ~chunk_size healthy.Synth.schedule in
    let healthy_time = (Engine.run topo (program ())).Engine.finish_time in
    let at =
      match at_spec with
      | `Seconds v -> v
      | `Fraction f -> f *. healthy_time
    in
    Format.printf "healthy:      %s simulated; fault lands at %s@."
      (Units.time_pp healthy_time) (Units.time_pp at);
    let timeline = Fault.timeline ~at topo faults in
    let replay =
      match Engine.run ~faults:timeline topo (program ()) with
      | report ->
        if report.Engine.stranded = [] then Ok report.Engine.finish_time
        else Error (Printf.sprintf "%d transfers stranded" (List.length report.Engine.stranded))
      | exception (Engine.Simulation_error _ as e) -> Error (Printexc.to_string e)
    in
    (match replay with
    | Ok t ->
      Format.printf "replay:       %s (reroute in the engine, no re-planning)@."
        (Units.time_pp t)
    | Error why -> Format.printf "replay:       FAILS — %s@." why);
    let repair =
      Resilience.repair ~seed ~trials ~domains ?budget_ms:budget ~at topo faults
        healthy
    in
    (match repair with
    | Ok r ->
      Format.printf "repair:       %s via %s (synthesized in %s)%s@."
        (Units.time_pp r.Resilience.completion_time)
        (Resilience.strategy_name r.Resilience.strategy)
        (Units.time_pp r.Resilience.synth_wall_seconds)
        (match r.Resilience.verified with
        | Ok () -> ""
        | Error e -> Printf.sprintf " [INVALID: %s]" e)
    | Error f -> Format.printf "repair:       NONE — %a@." Resilience.pp_failure f);
    let full =
      Resilience.synthesize ~seed ~trials ~domains ?budget_ms:budget ~faults topo
        spec
    in
    (match full with
    | Ok o ->
      Format.printf "resynthesis:  %s (full, synthesized in %s)@."
        (Units.time_pp (at +. o.Resilience.simulated_time))
        (Units.time_pp o.Resilience.wall_seconds)
    | Error f -> Format.printf "resynthesis:  NONE — %a@." Resilience.pp_failure f);
    (match (repair, full) with
    | Ok r, Ok o when r.Resilience.synth_wall_seconds > 0. ->
      Format.printf "speedup:      %.1fx less synthesis wall-clock from repairing@."
        (o.Resilience.wall_seconds /. r.Resilience.synth_wall_seconds)
    | _ -> ());
    (match json with
    | None -> ()
    | Some dest ->
      let outcome_json = function
        | Ok (o : Resilience.outcome) ->
          Json.Object
            [
              ("completion_seconds", Json.Number (at +. o.Resilience.simulated_time));
              ("synth_wall_seconds", Json.Number o.Resilience.wall_seconds);
            ]
        | Error f -> Resilience.failure_to_json f
      in
      let doc =
        Json.Object
          [
            ("topology", Json.String (Topology.name topo));
            ("pattern", Json.String (Pattern.name spec.Spec.pattern));
            ("buffer_bytes", Json.Number size);
            ("seed", Json.Number (float_of_int seed));
            ("at_seconds", Json.Number at);
            ("healthy_seconds", Json.Number healthy_time);
            ("faults", Json.Array (List.map Fault.to_json faults));
            ( "replay",
              match replay with
              | Ok t -> Json.Object [ ("completion_seconds", Json.Number t) ]
              | Error why -> Json.Object [ ("stranded", Json.String why) ] );
            ( "repair",
              match repair with
              | Ok r ->
                Json.Object
                  [
                    ("strategy", Json.String (Resilience.strategy_name r.Resilience.strategy));
                    ("completion_seconds", Json.Number r.Resilience.completion_time);
                    ("synth_wall_seconds", Json.Number r.Resilience.synth_wall_seconds);
                    ( "verified",
                      Json.Bool (match r.Resilience.verified with Ok () -> true | Error _ -> false) );
                  ]
              | Error f -> Resilience.failure_to_json f );
            ("full_resynthesis", outcome_json full);
          ]
      in
      let text = Json.encode doc in
      (match dest with
      | "-" -> print_endline text
      | file ->
        let oc = open_out file in
        output_string oc text;
        output_char oc '\n';
        close_out oc;
        Format.printf "report written to %s@." file));
    `Ok ()

(* A multi-epoch fault timeline: each "--at T:SPEC" lands its own fault list
   mid-flight and the composite is incrementally re-repaired at every epoch
   (Resilience.repair_timeline). *)
let multiflight_run ~seed ~trials ~domains ~budget ~json topo spec size
    events_spec =
  match Synth.synthesize ~seed ~trials topo spec with
  | exception Synth.Stuck msg -> fail "healthy synthesis stuck: %s" msg
  | exception Synth.Unsupported msg ->
    fail "--at needs a synthesizer-supported pattern: %s" msg
  | healthy ->
    let chunk_size = Spec.chunk_size spec in
    let healthy_time =
      (Engine.run topo (Sim_program.of_schedule ~chunk_size healthy.Synth.schedule))
        .Engine.finish_time
    in
    let events =
      List.map
        (fun (at_spec, faults) ->
          ( (match at_spec with
            | `Seconds v -> v
            | `Fraction f -> f *. healthy_time),
            faults ))
        events_spec
    in
    Format.printf "healthy:      %s simulated; %d fault epochs@."
      (Units.time_pp healthy_time) (List.length events);
    List.iter
      (fun (at, faults) ->
        Format.printf "epoch:        %s — %s@." (Units.time_pp at)
          (String.concat ", " (List.map Fault.to_string faults)))
      events;
    (match
       Resilience.repair_timeline ~seed ~trials ~domains ?budget_ms:budget
         ~events topo healthy
     with
    | exception Invalid_argument msg -> fail "%s" msg
    | Error f ->
      fail "timeline repair failed: %s"
        (Format.asprintf "%a" Resilience.pp_failure f)
    | Ok tr ->
      List.iter
        (fun (e : Resilience.epoch) ->
          let r = e.Resilience.repaired in
          Format.printf "repair @@ %s: %s → completes %s (synthesized in %s)%s@."
            (Units.time_pp e.Resilience.at)
            (Resilience.strategy_name r.Resilience.strategy)
            (Units.time_pp r.Resilience.completion_time)
            (Units.time_pp r.Resilience.synth_wall_seconds)
            (match r.Resilience.verified with
            | Ok () -> ""
            | Error e -> Printf.sprintf " [INVALID: %s]" e))
        tr.Resilience.epochs;
      Format.printf "final:        %s, %d sends, %s@."
        (Units.time_pp tr.Resilience.completion_time)
        (Schedule.num_sends tr.Resilience.schedule)
        (match tr.Resilience.verified with
        | Ok () -> "composite verified end to end"
        | Error e -> "INVALID: " ^ e);
      (match json with
      | None -> ()
      | Some dest ->
        let doc =
          Json.Object
            [
              ("topology", Json.String (Topology.name topo));
              ("pattern", Json.String (Pattern.name spec.Spec.pattern));
              ("buffer_bytes", Json.Number size);
              ("seed", Json.Number (float_of_int seed));
              ("healthy_seconds", Json.Number healthy_time);
              ( "epochs",
                Json.Array
                  (List.map
                     (fun (e : Resilience.epoch) ->
                       let r = e.Resilience.repaired in
                       Json.Object
                         [
                           ("at_seconds", Json.Number e.Resilience.at);
                           ( "faults",
                             Json.Array (List.map Fault.to_json e.Resilience.faults) );
                           ( "strategy",
                             Json.String
                               (Resilience.strategy_name r.Resilience.strategy) );
                           ( "completion_seconds",
                             Json.Number r.Resilience.completion_time );
                           ( "synth_wall_seconds",
                             Json.Number r.Resilience.synth_wall_seconds );
                           ( "verified",
                             Json.Bool
                               (match r.Resilience.verified with
                               | Ok () -> true
                               | Error _ -> false) );
                         ])
                     tr.Resilience.epochs) );
              ("completion_seconds", Json.Number tr.Resilience.completion_time);
              ("sends", Json.Number (float_of_int (Schedule.num_sends tr.Resilience.schedule)));
              ( "verified",
                Json.Bool
                  (match tr.Resilience.verified with Ok () -> true | Error _ -> false)
              );
            ]
        in
        let text = Json.encode doc in
        match dest with
        | "-" -> print_endline text
        | file ->
          let oc = open_out file in
          output_string oc text;
          output_char oc '\n';
          close_out oc;
          Format.printf "report written to %s@." file);
      `Ok ())

let faults_cmd =
  let fail_links_arg =
    Arg.(
      value & opt int 0
      & info [ "fail-links" ] ~docv:"K" ~doc:"Kill $(docv) random links.")
  in
  let fail_npus_arg =
    Arg.(
      value & opt int 0
      & info [ "fail-npus" ] ~docv:"K"
          ~doc:"Kill $(docv) random NPUs (all their incident links fail).")
  in
  let degrade_arg =
    Arg.(
      value & opt int 0
      & info [ "degrade" ] ~docv:"K"
          ~doc:"Degrade $(docv) random links (bandwidth divided, latency \
                multiplied by the factor).")
  in
  let degrade_factor_arg =
    Arg.(
      value & opt float 4.
      & info [ "degrade-factor" ] ~docv:"F"
          ~doc:"Degradation severity for $(b,--degrade) (default 4x).")
  in
  let budget_arg =
    Arg.(
      value & opt (some float) None
      & info [ "budget-ms" ] ~docv:"MS"
          ~doc:"Wall-clock budget for the reseeded-retry rung of the \
                fallback ladder.")
  in
  let json_out =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the structured fault report as JSON to $(docv) ('-' \
                for stdout).")
  in
  let at_arg =
    Arg.(
      value & opt_all string []
      & info [ "at" ] ~docv:"T[:SPEC]"
          ~doc:"Land faults mid-flight at $(docv) (seconds, or N% of the \
                healthy schedule's simulated time). Given once without a \
                spec, the randomly sampled faults land there and \
                replay-through-the-fault, incremental repair and full \
                re-synthesis are compared. Repeat with explicit per-epoch \
                fault specs — e.g. --at 30%:kill-link=3 --at \
                60%:kill-npu=2,degrade=7x4 — to repair a whole fault \
                timeline incrementally, epoch by epoch.")
  in
  let run topo_str alpha bw size_str pattern_str chunks seed trials domains
      fail_links fail_npus degrade degrade_factor budget at_strs json =
    with_setup topo_str alpha bw (fun topo ->
        match Parse.parse_size size_str with
        | Error e -> fail "%s" e
        | Ok size -> (
          match Parse.parse_pattern pattern_str (Topology.num_npus topo) with
          | Error e -> fail "%s" e
          | Ok pattern -> (
            let spec =
              Spec.make ~chunks_per_npu:chunks ~buffer_size:size ~pattern
                ~npus:(Topology.num_npus topo) ()
            in
            (* Deterministic fault set from one seed: kills, NPU kills, then
               degradations, all drawn from the same stream. *)
            let rng = Tacos_util.Rng.create seed in
            match
              let kills = Fault.random_link_kills rng topo fail_links in
              let npus = Fault.random_npu_kills rng topo fail_npus in
              let slow =
                Fault.random_degradations rng ~factor:degrade_factor topo degrade
              in
              kills @ npus @ slow
            with
            | exception Invalid_argument msg -> fail "%s" msg
            | faults when at_strs <> [] -> (
              let parsed =
                List.fold_left
                  (fun acc s ->
                    match (acc, parse_event s) with
                    | Error _, _ -> acc
                    | _, Error e -> Error e
                    | Ok evs, Ok ev -> Ok (evs @ [ ev ]))
                  (Ok []) at_strs
              in
              match parsed with
              | Error e -> fail "%s" e
              | Ok [ (at_spec, None) ] ->
                (* Legacy single-event form: the sampled faults land at T. *)
                Format.printf "topology:     %a@." Topology.pp topo;
                Format.printf "collective:   %a@." Spec.pp spec;
                if faults = [] then Format.printf "faults:       none@."
                else
                  List.iter
                    (fun f -> Format.printf "fault:        %a@." Fault.pp f)
                    faults;
                midflight_run ~seed ~trials ~domains ~budget ~json topo spec size
                  faults at_spec
              | Ok events when List.exists (fun (_, fs) -> fs = None) events ->
                fail
                  "a fault timeline needs each --at to carry its faults: --at \
                   T:kill-link=N,..."
              | Ok _ when faults <> [] ->
                fail
                  "--fail-links/--fail-npus/--degrade cannot combine with an \
                   explicit --at T:SPEC timeline"
              | Ok events ->
                let events =
                  List.map (fun (at, fs) -> (at, Option.get fs)) events
                in
                Format.printf "topology:     %a@." Topology.pp topo;
                Format.printf "collective:   %a@." Spec.pp spec;
                multiflight_run ~seed ~trials ~domains ~budget ~json topo spec
                  size events)
            | faults ->
              Obs.enable ();
              Obs.reset ();
              Format.printf "topology:     %a@." Topology.pp topo;
              Format.printf "collective:   %a@." Spec.pp spec;
              if faults = [] then Format.printf "faults:       none@."
              else
                List.iter
                  (fun f -> Format.printf "fault:        %a@." Fault.pp f)
                  faults;
              let degraded = Fault.apply topo faults in
              Format.printf "degraded:     %a@." Topology.pp degraded;
              let connectivity = Fault.connectivity degraded in
              Format.printf "connectivity: %a@." Fault.pp_connectivity connectivity;
              (* The whole pipeline: fallback-ladder synthesis on the
                 degraded fabric, then — when faults were injected — the
                 degradation analysis of the healthy schedule. *)
              let outcome =
                Resilience.synthesize ~seed ~trials ?budget_ms:budget ~faults topo
                  spec
              in
              (match outcome with
              | Ok o ->
                (match o.Resilience.plan with
                | Resilience.Synthesized result ->
                  Format.printf "plan:         synthesized (%d sends, makespan %s)@."
                    (Schedule.num_sends result.Synth.schedule)
                    (Units.time_pp result.Synth.collective_time);
                  (match Synth.verify degraded result with
                  | Ok () ->
                    Format.printf
                      "validation:   ok (congestion-free, postconditions met)@."
                  | Error e -> Format.printf "validation:   FAILED: %s@." e)
                | Resilience.Baseline { algo; _ } ->
                  Format.printf "plan:         fallback baseline %s@." (Algo.name algo));
                Format.printf "simulated:    %s (%s)@."
                  (Units.time_pp o.Resilience.simulated_time)
                  (Units.bandwidth_pp (size /. o.Resilience.simulated_time));
                if o.Resilience.retries > 0 then
                  Format.printf "retries:      %d@." o.Resilience.retries;
                Format.printf "ladder:       %s@."
                  (String.concat " -> " o.Resilience.rungs)
              | Error f -> Format.printf "plan:         NONE — %a@." Resilience.pp_failure f);
              (* Healthy-vs-degraded: what re-synthesis buys over replaying
                 the healthy schedule (only meaningful with faults and a
                 synthesizer-supported pattern). *)
              let analysis =
                if faults = [] then None
                else
                  match Synth.synthesize ~seed ~trials topo spec with
                  | healthy ->
                    Some (Resilience.analyze ~seed ~trials topo faults healthy)
                  | exception (Synth.Stuck _ | Synth.Unsupported _) -> None
              in
              (match analysis with
              | None -> ()
              | Some a ->
                Format.printf "healthy plan: %s on the degraded fabric@."
                  (Resilience.health_to_string a.Resilience.health);
                (match (a.Resilience.replay_time, a.Resilience.resynth_time) with
                | Some replay, Some resynth ->
                  Format.printf "replay:       %s; re-synthesis: %s@."
                    (Units.time_pp replay) (Units.time_pp resynth)
                | _ -> ());
                match a.Resilience.advantage with
                | Some adv -> Format.printf "advantage:    %.2fx from re-synthesis@." adv
                | None -> ());
              Format.printf "fallback counters:@.";
              List.iter
                (fun name ->
                  Format.printf "  %-32s %d@." name (Obs.value (Obs.counter name)))
                [
                  "resilience.synth_ok";
                  "resilience.synth_retries";
                  "resilience.fallback_baseline";
                  "resilience.failures";
                  "resilience.disconnected_inputs";
                ];
              (match json with
              | None -> ()
              | Some dest ->
                let doc =
                  Json.Object
                    [
                      ("topology", Json.String (Topology.name topo));
                      ("pattern", Json.String (Pattern.name pattern));
                      ("buffer_bytes", Json.Number size);
                      ("seed", Json.Number (float_of_int seed));
                      ("faults", Json.Array (List.map Fault.to_json faults));
                      ( "connectivity",
                        Json.String
                          (Format.asprintf "%a" Fault.pp_connectivity connectivity) );
                      ( "outcome",
                        match outcome with
                        | Ok o ->
                          Json.Object
                            [
                              ( "plan",
                                Json.String
                                  (match o.Resilience.plan with
                                  | Resilience.Synthesized _ -> "synthesized"
                                  | Resilience.Baseline { algo; _ } ->
                                    "baseline " ^ Algo.name algo) );
                              ("simulated_seconds", Json.Number o.Resilience.simulated_time);
                              ("retries", Json.Number (float_of_int o.Resilience.retries));
                              ( "ladder",
                                Json.Array
                                  (List.map (fun r -> Json.String r) o.Resilience.rungs) );
                            ]
                        | Error f -> Resilience.failure_to_json f );
                      ("obs", Obs.snapshot ());
                    ]
                in
                let text = Json.encode doc in
                (match dest with
                | "-" -> print_endline text
                | file ->
                  let oc = open_out file in
                  output_string oc text;
                  output_char oc '\n';
                  close_out oc;
                  Format.printf "report written to %s@." file));
              `Ok ())))
  in
  let term =
    Term.(
      ret
        (const run $ topology_arg $ alpha_arg $ bw_arg $ size_arg $ pattern_arg
       $ chunks_arg $ seed_arg $ trials_arg $ domains_arg $ fail_links_arg
       $ fail_npus_arg $ degrade_arg $ degrade_factor_arg $ budget_arg $ at_arg
       $ json_out))
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Inject deterministic link/NPU faults and synthesize on the broken \
          fabric via the graceful-degradation fallback ladder (never an \
          uncaught exception)")
    term

(* --- trace ------------------------------------------------------------------- *)

let trace_cmd =
  let out_arg =
    Arg.(
      value & opt string "trace.json"
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the Chrome trace-event JSON to $(docv) ('-' for stdout).")
  in
  let top_arg =
    Arg.(
      value & opt int 5
      & info [ "top" ] ~docv:"K"
          ~doc:"Show the $(docv) links carrying the most critical-path time.")
  in
  let validate_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "validate" ] ~docv:"FILE"
          ~doc:
            "Validate an existing Chrome trace-event JSON file (structure, \
             monotone timestamps, balanced async pairs) and exit; all other \
             options are ignored.")
  in
  (* 40-bin ASCII Gantt of one link's busy intervals over [0, span]. *)
  let gantt span intervals =
    let bins = 40 in
    if span <= 0. then String.make bins ' '
    else begin
      let busy =
        Tacos_util.Timeline.binned_busy ~bins ~span (fun f ->
            List.iter (fun (s, e) -> f s e) intervals)
      in
      let w = span /. float_of_int bins in
      String.init bins (fun i ->
          let frac = busy.(i) /. w in
          if frac >= 0.75 then '#'
          else if frac >= 0.25 then '+'
          else if frac > 0. then '.'
          else ' ')
    end
  in
  let run topo_str alpha bw size_str pattern_str chunks seed trials out top
      validate_file =
    match validate_file with
    | Some file -> (
      let text = In_channel.with_open_bin file In_channel.input_all in
      match Json.parse text with
      | Error e -> fail "%s: not JSON: %s" file e
      | Ok doc -> (
        match Chrome.validate doc with
        | Ok () ->
          Format.printf "%s: valid Chrome trace-event JSON@." file;
          `Ok ()
        | Error e -> fail "%s: INVALID: %s" file e))
    | None ->
      with_setup topo_str alpha bw (fun topo ->
          match Parse.parse_size size_str with
          | Error e -> fail "%s" e
          | Ok size -> (
            match Parse.parse_pattern pattern_str (Topology.num_npus topo) with
            | Error e -> fail "%s" e
            | Ok pattern -> (
              let spec =
                Spec.make ~chunks_per_npu:chunks ~buffer_size:size ~pattern
                  ~npus:(Topology.num_npus topo) ()
              in
              Trace.enable ();
              Trace.reset ();
              let synthesize () =
                if pattern = Pattern.All_to_all then
                  Tacos.Alltoall.synthesize ~seed topo spec
                else Synth.synthesize ~seed ~trials topo spec
              in
              match synthesize () with
              | exception Synth.Stuck msg -> fail "synthesis stuck: %s" msg
              | exception Synth.Unsupported msg -> fail "unsupported: %s" msg
              | result ->
                (* Transfer tags carry the collective phase ("phase:chunkN")
                   so the analyzer can attribute the makespan per phase. *)
                let tag_of =
                  match result.Synth.phases with
                  | Some (rs, _) ->
                    fun (s : Schedule.send) ->
                      Printf.sprintf "%s:chunk%d"
                        (Schedule.phase_of_send ~reduce_scatter:rs s)
                        s.chunk
                  | None ->
                    let name = Pattern.name pattern in
                    fun (s : Schedule.send) ->
                      Printf.sprintf "%s:chunk%d" name s.chunk
                in
                let program =
                  Sim_program.of_schedule ~tag_of ~chunk_size:(Spec.chunk_size spec)
                    result.Synth.schedule
                in
                let sim = Engine.run topo program in
                let d = Trace.dump () in
                let transfers = Sim_program.transfers program in
                let phase_of tid =
                  let tag = transfers.(tid).Sim_program.tag in
                  match String.index_opt tag ':' with
                  | Some i -> String.sub tag 0 i
                  | None -> tag
                in
                let edge_ends = Array.make (Topology.num_links topo) (0, 0) in
                List.iter
                  (fun (e : Topology.edge) -> edge_ends.(e.id) <- (e.src, e.dst))
                  (Topology.edges topo);
                let link_label l =
                  let src, dst = edge_ends.(l) in
                  Printf.sprintf "link %d (%d->%d)" l src dst
                in
                let transfer_label tid =
                  Printf.sprintf "t%d %s" tid transfers.(tid).Sim_program.tag
                in
                let doc =
                  Chrome.export ~link_label ~transfer_label
                    ~num_links:(Topology.num_links topo) d
                in
                match Chrome.validate doc with
                | Error e -> fail "internal: emitted trace fails validation: %s" e
                | Ok () ->
                  let text = Json.encode doc in
                  (match out with
                  | "-" -> print_endline text
                  | file ->
                    let oc = open_out file in
                    output_string oc text;
                    output_char oc '\n';
                    close_out oc);
                  Format.printf "topology:        %a@." Topology.pp topo;
                  Format.printf "collective:      %a@." Spec.pp spec;
                  Format.printf "simulated time:  %s@."
                    (Units.time_pp sim.Engine.finish_time);
                  Format.printf "trace:           %d events, %d spans%s@."
                    (List.length d.Trace.events)
                    (List.length d.Trace.spans)
                    (if d.Trace.dropped > 0 then
                       Printf.sprintf " (%d dropped at the buffer cap)" d.Trace.dropped
                     else "");
                  (match Critpath.analyze ~phase_of d.Trace.events with
                  | None ->
                    Format.printf "critical path:   (no completed transfers)@."
                  | Some cp ->
                    let attributed = Critpath.attributed_total cp in
                    Format.printf
                      "critical path:   ends at t%d; %s attributed of %s makespan@."
                      cp.Critpath.critical_transfer (Units.time_pp attributed)
                      (Units.time_pp cp.Critpath.makespan);
                    Table.print
                      ~header:[ "where the time went"; "seconds"; "share" ]
                      (List.map
                         (fun (c, v) ->
                           [
                             Critpath.category_name c;
                             Units.time_pp v;
                             Table.cell_percent
                               (if cp.Critpath.makespan > 0. then
                                  v /. cp.Critpath.makespan
                                else 0.);
                           ])
                         cp.Critpath.totals);
                    if cp.Critpath.per_phase <> [] then begin
                      Format.printf "per collective phase:@.";
                      Table.print
                        ~header:[ "phase"; "seconds"; "share" ]
                        (List.map
                           (fun (phase, cats) ->
                             let v =
                               List.fold_left (fun acc (_, w) -> acc +. w) 0. cats
                             in
                             [
                               phase;
                               Units.time_pp v;
                               Table.cell_percent
                                 (if cp.Critpath.makespan > 0. then
                                    v /. cp.Critpath.makespan
                                  else 0.);
                             ])
                           cp.Critpath.per_phase)
                    end;
                    let top_links =
                      List.filteri (fun i _ -> i < top) cp.Critpath.per_link
                    in
                    if top_links <> [] then begin
                      Format.printf
                        "top critical links (busy over [0, %s], # >=75%% busy):@."
                        (Units.time_pp sim.Engine.finish_time);
                      List.iter
                        (fun (l, cats) ->
                          let v =
                            List.fold_left (fun acc (_, w) -> acc +. w) 0. cats
                          in
                          Format.printf "  %-18s |%s| %s on path@." (link_label l)
                            (gantt sim.Engine.finish_time
                               sim.Engine.link_intervals.(l))
                            (Units.time_pp v))
                        top_links
                    end);
                  (match out with
                  | "-" -> ()
                  | file ->
                    Format.printf
                      "trace written to %s (load in Perfetto / chrome://tracing)@."
                        file);
                  `Ok ())))
  in
  let term =
    Term.(
      ret
        (const run $ topology_arg $ alpha_arg $ bw_arg $ size_arg $ pattern_arg
       $ chunks_arg $ seed_arg $ trials_arg $ out_arg $ top_arg $ validate_arg))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Record the full per-transfer execution trace of a synthesized \
          schedule, write it as Chrome trace-event JSON (Perfetto), and print \
          the critical-path attribution of the makespan")
    term

(* --- serve ------------------------------------------------------------------ *)

let serve_cmd =
  let stdio_arg =
    Arg.(
      value & flag
      & info [ "stdio" ]
          ~doc:
            "Serve line-framed JSON requests on stdin/stdout until EOF — the \
             transport tests and scripted transcripts use.")
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix domain socket at $(docv), one thread per \
             connection, all sharing one schedule cache.")
  in
  let registry_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "registry" ] ~docv:"DIR"
          ~doc:
            "Persist the schedule cache under $(docv) (crash-safe writes; \
             corrupt entries are quarantined to *.corrupt on load).")
  in
  let max_disk_mb_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-disk-mb" ] ~docv:"MB"
          ~doc:
            "Cap the --registry disk store at $(docv) mebibytes: past it, \
             the oldest-mtime cache files are evicted after every write \
             (counted in stats and as tacos_registry_evicted_total).")
  in
  let queue_limit_arg =
    Arg.(
      value & opt int 16
      & info [ "queue-limit" ] ~docv:"N"
          ~doc:
            "Max in-flight requests before load is shed with structured \
             'overloaded' responses.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Default per-request deadline for requests that carry none; past \
             it the server degrades to the best feasible baseline \
             (degraded:true) instead of overrunning.")
  in
  let metrics_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-file" ] ~docv:"PATH"
          ~doc:
            "Flush the Prometheus text exposition (the same document the \
             'metrics' verb serves) to $(docv) periodically and on exit; \
             written atomically (temp file + rename) so scrapers never see \
             a torn file. Each flush carries the monotonic \
             tacos_serve_uptime_seconds stamp.")
  in
  let metrics_interval_arg =
    Arg.(
      value & opt float 1.0
      & info [ "metrics-interval" ] ~docv:"SECS"
          ~doc:"Seconds between --metrics-file flushes.")
  in
  let access_log_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "access-log" ] ~docv:"PATH"
          ~doc:
            "Append one logfmt record per request (id, verb, outcome, \
             latency, deadline slack, bytes out, monotonic t= stamp) to \
             $(docv); '-' logs to stderr.")
  in
  let serve_loop svc ic oc =
    try
      while true do
        let line = input_line ic in
        if String.trim line <> "" then begin
          output_string oc (Service.handle_line svc line);
          output_char oc '\n';
          flush oc
        end
      done
    with End_of_file | Sys_error _ -> ()
  in
  let run stdio socket registry_dir max_disk_mb queue_limit deadline_ms
      metrics_file metrics_interval access_log seed trials domains =
    if (not stdio) && socket = None then
      fail "pass --stdio or --socket PATH (nothing to serve on)"
    else if trials <= 0 || domains <= 0 || queue_limit <= 0 then
      fail "--trials, --domains and --queue-limit must be positive"
    else if metrics_interval <= 0. then fail "--metrics-interval must be positive"
    else if (match max_disk_mb with Some mb -> mb <= 0 | None -> false) then
      fail "--max-disk-mb must be positive"
    else if max_disk_mb <> None && registry_dir = None then
      fail "--max-disk-mb needs --registry DIR (nothing on disk to cap)"
    else begin
      (* The daemon keeps observability on: serve.* counters feed the
         stats op, the metrics exposition, and any profile taken against a
         long-running server. *)
      Obs.enable ();
      let access_sink, close_access =
        match access_log with
        | None -> (None, fun () -> ())
        | Some "-" -> (Some (fun line -> Printf.eprintf "%s\n%!" line), fun () -> ())
        | Some path ->
          let oc =
            open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path
          in
          ( Some
              (fun line ->
                output_string oc line;
                output_char oc '\n';
                flush oc),
            fun () -> close_out_noerr oc )
      in
      let config =
        {
          Service.queue_limit;
          domains;
          trials;
          default_deadline_ms = deadline_ms;
          registry_dir;
          max_disk_bytes = Option.map (fun mb -> mb * 1024 * 1024) max_disk_mb;
          seed;
          access_log = access_sink;
        }
      in
      let svc = Service.create ~config () in
      let flush_metrics () =
        match metrics_file with
        | None -> ()
        | Some path -> (
          let tmp = path ^ ".tmp" in
          try
            let oc = open_out tmp in
            output_string oc (Service.metrics svc);
            close_out oc;
            Sys.rename tmp path
          with Sys_error _ -> ())
      in
      if metrics_file <> None then
        ignore
          (Thread.create
             (fun () ->
               while true do
                 Thread.delay metrics_interval;
                 flush_metrics ()
               done)
             ());
      match socket with
      | None ->
        serve_loop svc stdin stdout;
        (* Short scripted transcripts end before the first periodic tick:
           flush once more so --metrics-file always has the final state. *)
        flush_metrics ();
        close_access ();
        `Ok ()
      | Some path -> (
        (* A socket file left behind by a previous run would make bind fail
           with EADDRINUSE. Unlink it — but only if it actually is a
           socket: silently clobbering a regular file at that path would
           destroy user data. *)
        let stale =
          match Unix.lstat path with
          | { Unix.st_kind = Unix.S_SOCK; _ } -> Ok true
          | _ -> Error (Printf.sprintf "refusing to replace non-socket file %s" path)
          | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Ok false
        in
        match stale with
        | Error msg -> fail "--socket: %s" msg
        | Ok was_stale ->
          if was_stale then begin
            Printf.eprintf "tacos serve: removing stale socket %s\n%!" path;
            try Unix.unlink path with Unix.Unix_error _ -> ()
          end;
          let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.bind sock (Unix.ADDR_UNIX path);
          Unix.listen sock 64;
          (* Clean shutdown (SIGINT/SIGTERM): remove the socket so the next
             start binds without finding our corpse, flush the final
             metrics snapshot, and close the access log. *)
          let cleanup () =
            (try Unix.unlink path with Unix.Unix_error _ -> ());
            flush_metrics ();
            close_access ()
          in
          let on_signal _ =
            cleanup ();
            exit 0
          in
          Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
          Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
          Printf.eprintf "tacos serve: listening on %s\n%!" path;
          let rec accept_loop () =
            let conn, _ = Unix.accept sock in
            ignore
              (Thread.create
                 (fun conn ->
                   let ic = Unix.in_channel_of_descr conn in
                   let oc = Unix.out_channel_of_descr conn in
                   serve_loop svc ic oc;
                   try Unix.close conn with Unix.Unix_error _ -> ())
                 conn);
            accept_loop ()
          in
          (* If accept ever fails hard, still leave a clean filesystem. *)
          Fun.protect ~finally:cleanup accept_loop)
    end
  in
  let term =
    Term.(
      ret
        (const run $ stdio_arg $ socket_arg $ registry_arg $ max_disk_mb_arg
       $ queue_limit_arg $ deadline_arg $ metrics_file_arg $ metrics_interval_arg
       $ access_log_arg $ seed_arg $ trials_arg $ domains_arg))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the synthesis service: a persistent daemon answering \
          synthesize/tune/export requests over line-framed JSON, with a \
          shared crash-safe schedule cache, per-request deadlines with \
          graceful degradation, bounded admission, Prometheus metrics \
          exposition and a structured access log")
    term

(* --- top --------------------------------------------------------------------- *)

(* A live terminal dashboard over a running server: poll the stats verb on
   its Unix socket, difference the counters for rates, and render the
   latency-quantile table. Doubles as the CLI front end of the exposition
   validator (--validate), the way `tacos trace --validate` fronts
   Chrome.validate. *)
let top_cmd =
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix socket of the running 'tacos serve --socket' instance.")
  in
  let interval_arg =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~docv:"SECS" ~doc:"Seconds between polls.")
  in
  let iterations_arg =
    Arg.(
      value & opt int 0
      & info [ "iterations" ] ~docv:"N"
          ~doc:
            "Render $(docv) frames and exit (scripted use); 0 polls until \
             interrupted.")
  in
  let validate_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "validate" ] ~docv:"FILE"
          ~doc:
            "Validate $(docv) as a Prometheus text exposition (e.g. a \
             --metrics-file flush or a saved 'metrics' scrape) and exit.")
  in
  let poll_stats path =
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect sock (Unix.ADDR_UNIX path);
        let oc = Unix.out_channel_of_descr sock in
        let ic = Unix.in_channel_of_descr sock in
        output_string oc "{\"op\":\"stats\"}\n";
        flush oc;
        Json.parse (input_line ic))
  in
  let bytes_pp b =
    if b >= 1048576. then Printf.sprintf "%.1f MB" (b /. 1048576.)
    else if b >= 1024. then Printf.sprintf "%.1f KB" (b /. 1024.)
    else Printf.sprintf "%.0f B" b
  in
  let render path doc ~rps =
    let num k = match Json.member k doc with Some (Json.Number v) -> v | _ -> 0. in
    let obj k = match Json.member k doc with Some (Json.Object l) -> l | _ -> [] in
    let hits = num "hits" and misses = num "misses" in
    let accepted = num "accepted" and shed = num "shed" in
    let answered = hits +. misses in
    let offered = accepted +. shed in
    Printf.printf "tacos top — %s — uptime %.1fs — inflight %.0f\n" path
      (num "uptime_seconds") (num "inflight");
    Printf.printf
      "requests  accepted=%.0f  rps=%.1f  hit=%s  shed=%s  degraded=%.0f  \
       deadline_missed=%.0f  errors=%.0f\n"
      accepted rps
      (if answered > 0. then Table.cell_percent (hits /. answered) else "-")
      (if offered > 0. then Table.cell_percent (shed /. offered) else "-")
      (num "degraded") (num "deadline_missed") (num "errors");
    let reg = Json.Object (obj "registry") in
    let rnum k = match Json.member k reg with Some (Json.Number v) -> v | _ -> 0. in
    Printf.printf
      "registry  %.0f in memory, %.0f on disk (%s, %.0f corrupt, %.0f \
       quarantined)\n\n"
      (rnum "entries") (rnum "disk_entries")
      (bytes_pp (rnum "disk_bytes"))
      (rnum "disk_corrupt") (num "quarantined");
    let rows =
      List.filter_map
        (fun (verb, q) ->
          match q with
          | Json.Object _ ->
            let qn k =
              match Json.member k q with Some (Json.Number v) -> v | _ -> 0.
            in
            Some
              [
                verb;
                Printf.sprintf "%.0f" (qn "count");
                Table.cell_float ~decimals:3 (qn "p50");
                Table.cell_float ~decimals:3 (qn "p90");
                Table.cell_float ~decimals:3 (qn "p95");
                Table.cell_float ~decimals:3 (qn "p99");
              ]
          | _ -> None)
        (obj "latency_ms")
    in
    if rows <> [] then
      Table.print
        ~header:[ "verb"; "count"; "p50 ms"; "p90 ms"; "p95 ms"; "p99 ms" ]
        rows
  in
  let run socket interval iterations validate =
    match validate with
    | Some file -> (
      let text = In_channel.with_open_bin file In_channel.input_all in
      match Tacos_obs.Expo.validate text with
      | Ok () ->
        let samples =
          match Tacos_obs.Expo.parse text with Ok l -> List.length l | Error _ -> 0
        in
        Printf.printf "%s: valid Prometheus text exposition (%d samples)\n" file
          samples;
        `Ok ()
      | Error e -> fail "%s: invalid exposition: %s" file e)
    | None -> (
      match socket with
      | None -> fail "pass --socket PATH to watch a server (or --validate FILE)"
      | Some path ->
        if interval <= 0. then fail "--interval must be positive"
        else begin
          let prev_accepted = ref nan in
          let prev_t = ref nan in
          let frame i =
            match poll_stats path with
            | Error e -> fail "%s: bad stats response: %s" path e
            | Ok doc ->
              let accepted =
                match Json.member "accepted" doc with
                | Some (Json.Number v) -> v
                | _ -> 0.
              in
              let now = Unix.gettimeofday () in
              let rps =
                if Float.is_nan !prev_accepted || now <= !prev_t then 0.
                else (accepted -. !prev_accepted) /. (now -. !prev_t)
              in
              prev_accepted := accepted;
              prev_t := now;
              (* ANSI clear + home, like every terminal dashboard; frames
                 scroll plainly when the output is not a tty. *)
              if Unix.isatty Unix.stdout then print_string "\027[2J\027[H"
              else if i > 0 then print_newline ();
              render path doc ~rps;
              flush stdout;
              `Ok ()
          in
          let rec loop i =
            match frame i with
            | `Ok () ->
              if iterations > 0 && i + 1 >= iterations then `Ok ()
              else begin
                Thread.delay interval;
                loop (i + 1)
              end
            | err -> err
          in
          try loop 0 with
          | Unix.Unix_error (e, _, _) ->
            fail "%s: %s (is 'tacos serve --socket' running?)" path
              (Unix.error_message e)
          | End_of_file -> fail "%s: connection closed mid-response" path
        end)
  in
  let term =
    Term.(
      ret (const run $ socket_arg $ interval_arg $ iterations_arg $ validate_arg))
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live terminal dashboard over a running synthesis server: RPS, hit \
          ratio, shed rate, per-verb latency quantiles and registry size, \
          polled from its Unix socket; --validate checks a Prometheus \
          exposition file instead")
    term

(* --- info -------------------------------------------------------------------- *)

let info_cmd =
  let run topo_str alpha bw =
    with_setup topo_str alpha bw (fun topo ->
        Format.printf "%a@." Topology.pp topo;
        Format.printf "strongly connected: %b@." (Topology.is_strongly_connected topo);
        Format.printf "diameter (latency): %s@."
          (Units.time_pp (Topology.diameter_latency topo));
        Format.printf "min ingress bw:     %s@."
          (Units.bandwidth_pp (Topology.min_ingress_bandwidth topo));
        Format.printf "total bw:           %s@."
          (Units.bandwidth_pp (Topology.total_bandwidth topo));
        (match Topology.hierarchy topo with
        | Some dims ->
          Format.printf "hierarchy:          %s@."
            (String.concat " x "
               (Array.to_list
                  (Array.map
                     (fun (d : Topology.dim) ->
                       let kind =
                         match d.kind with
                         | Topology.Ring_dim -> "Ring"
                         | Topology.Mesh_dim -> "Mesh"
                         | Topology.Fully_connected_dim -> "FC"
                         | Topology.Switch_dim k -> Printf.sprintf "Switch(d=%d)" k
                       in
                       Printf.sprintf "%s[%d]" kind d.size)
                     dims)))
        | None -> ());
        (match Topology.rings topo with
        | Some rings -> Format.printf "ring embeddings:    %d recorded@." (List.length rings)
        | None -> ());
        `Ok ())
  in
  let term = Term.(ret (const run $ topology_arg $ alpha_arg $ bw_arg)) in
  Cmd.v (Cmd.info "info" ~doc:"Show topology properties") term

let () =
  let doc = "TACOS: topology-aware collective algorithm synthesizer" in
  let info = Cmd.info "tacos" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            synthesize_cmd; compare_cmd; tune_cmd; pareto_cmd; profile_cmd;
            trace_cmd; faults_cmd; serve_cmd; top_cmd; info_cmd;
          ]))
