(* The deployment workflow (Fig. 3(b), right-hand side): describe *your*
   cluster, synthesize a topology-aware algorithm for it, and hand the
   result to a CCL runtime — as per-NPU send/recv programs, a JSON algorithm
   file, and an SVG link-time chart.

     dune exec examples/export_to_ccl.exe *)

open Tacos_topology
open Tacos_collective
module Synth = Tacos.Synthesizer
module Units = Tacos_util.Units

(* An asymmetric 8-NPU cluster nobody wrote a collective for: two fat-ring
   quads bridged by two thin links. *)
let description =
  [
    "npus 8";
    "ring 0 1 2 3 100GB/s 0.5us";
    "ring 4 5 6 7 100GB/s 0.5us";
    "bilink 3 4 25GB/s 1us";
    "bilink 0 7 25GB/s 1us";
  ]

let () =
  let topo =
    match Parse.parse_topology_lines ~name:"bridged-quads" description with
    | Ok t -> t
    | Error e -> failwith e
  in
  Format.printf "cluster: %a@." Topology.pp topo;

  let spec =
    Spec.make ~chunks_per_npu:8 ~buffer_size:64e6 ~pattern:Pattern.All_reduce
      ~npus:8 ()
  in
  let result = Synth.synthesize ~seed:13 ~trials:4 topo spec in
  (match Synth.verify topo result with
  | Ok () -> ()
  | Error e -> failwith e);
  Format.printf "synthesized: %s All-Reduce in %s@."
    (Units.bytes_pp spec.Spec.buffer_size)
    (Units.time_pp result.Synth.collective_time);

  (* 1. The runtime-facing JSON algorithm file. *)
  let json_path = Filename.temp_file "tacos-allreduce" ".json" in
  Out_channel.with_open_text json_path (fun oc ->
      output_string oc (Schedule.to_json ~spec result.Synth.schedule));
  Format.printf "algorithm file: %s@." json_path;

  (* ... which round-trips: a consumer can load and re-validate it. *)
  let reloaded =
    match Schedule.of_json (In_channel.with_open_text json_path In_channel.input_all) with
    | Ok s -> s
    | Error e -> failwith e
  in
  (match Schedule.validate_all_reduce topo spec
           ~reduce_scatter:(fst (Option.get result.Synth.phases))
           ~all_gather:(snd (Option.get result.Synth.phases))
   with
  | Ok () -> Format.printf "reloaded schedule re-validated (%d sends)@."
               (Schedule.num_sends reloaded)
  | Error e -> failwith e);

  (* 2. The per-NPU programs a CCL would execute. *)
  let programs = Lowering.npu_programs ~npus:8 result.Synth.schedule in
  Format.printf "@.NPU 3 executes %d ops; the first five:@."
    (List.length programs.(3));
  Lowering.pp_program Format.std_formatter
    (List.filteri (fun i _ -> i < 5) programs.(3));

  (* 3. The visual: a link-time Gantt chart. *)
  let svg_path = Filename.temp_file "tacos-allreduce" ".svg" in
  Out_channel.with_open_text svg_path (fun oc ->
      output_string oc (Svg.render topo result.Synth.schedule));
  Format.printf "@.Gantt chart: %s@." svg_path
