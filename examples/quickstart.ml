(* Quickstart: synthesize an All-Gather for a 3x3 2D mesh and look at the
   result — the 60-second tour of the library.

     dune exec examples/quickstart.exe *)

open Tacos_topology
open Tacos_collective
module Synth = Tacos.Synthesizer
module Units = Tacos_util.Units

let () =
  (* 1. Describe the network: a 3x3 mesh of NPUs, every link 50 GB/s with
        0.5 us latency (the paper's default α-β parameters). *)
  let topo = Builders.mesh ~link:(Link.of_bandwidth ~alpha:0.5e-6 50e9) [| 3; 3 |] in
  Format.printf "topology: %a@." Topology.pp topo;

  (* 2. Describe the collective: a 64 MB All-Gather across all 9 NPUs. *)
  let spec =
    Spec.make ~buffer_size:64e6 ~pattern:Pattern.All_gather
      ~npus:(Topology.num_npus topo) ()
  in
  Format.printf "collective: %a@." Spec.pp spec;

  (* 3. Synthesize a topology-aware algorithm. *)
  let result = Synth.synthesize ~seed:7 ~trials:4 topo spec in
  Format.printf "synthesized %d sends, collective time %s (%s of bandwidth)@."
    (Schedule.num_sends result.Synth.schedule)
    (Units.time_pp result.Synth.collective_time)
    (Units.bandwidth_pp (64e6 /. result.Synth.collective_time));

  (* 4. Check it: physically legal, congestion-free, postconditions met. *)
  (match Synth.verify topo result with
  | Ok () -> print_endline "schedule validated"
  | Error e -> failwith e);

  (* 5. Inspect it as a time-expanded network (homogeneous topologies). *)
  let span_cost =
    Link.cost (List.hd (Topology.edges topo)).Topology.link (Spec.chunk_size spec)
  in
  let ten = Tacos_ten.Ten.of_schedule topo ~span_cost result.Synth.schedule in
  print_string (Tacos_ten.Ten.render ten);

  (* 6. Where does each chunk travel? Chunk 4 starts at the mesh center. *)
  print_endline "chunk 4's static route:";
  List.iter
    (fun (s : Schedule.send) ->
      Printf.printf "  NPU %d -> NPU %d, starting at %s\n" s.src s.dst
        (Units.time_pp s.start))
    (Schedule.chunk_path result.Synth.schedule 4)
