(* A heterogeneous, asymmetric cluster — the scenario that motivates TACOS.

   DragonFly glues fully-connected groups (400 GB/s local links) together
   with sparse 200 GB/s global links hosted on a few members per group. No
   predefined collective algorithm is native to this shape: Ring ignores the
   rich local connectivity, Direct tramples the sparse global links. TACOS
   synthesizes a schedule for exactly this network.

     dune exec examples/dragonfly_synthesis.exe *)

open Tacos_topology
open Tacos_collective
module Synth = Tacos.Synthesizer
module Algo = Tacos_baselines.Algo
module Units = Tacos_util.Units
module Table = Tacos_util.Table

let size = 256e6

let () =
  let topo = Builders.dragonfly ~bw:(Units.gbps 400., Units.gbps 200.) () in
  Format.printf "topology: %a@." Topology.pp topo;
  Printf.printf "min ingress bandwidth: %s; diameter %s\n"
    (Units.bandwidth_pp (Topology.min_ingress_bandwidth topo))
    (Units.time_pp (Topology.diameter_latency topo));

  let spec k =
    Spec.make ~chunks_per_npu:k ~buffer_size:size ~pattern:Pattern.All_reduce
      ~npus:(Topology.num_npus topo) ()
  in

  (* Baselines run through the congestion-aware simulator. *)
  let baseline name algo =
    (name, Algo.collective_time algo topo (spec 1))
  in
  let ring = baseline "Ring" Algo.ring in
  let direct = baseline "Direct" Algo.Direct in
  let taccl = baseline "TACCL-like" Algo.Taccl_like in

  (* TACOS: synthesize, validate, then evaluate under the same simulator. *)
  let result = Synth.synthesize ~seed:3 ~trials:4 topo (spec 4) in
  (match Synth.verify topo result with
  | Ok () -> ()
  | Error e -> failwith ("invalid schedule: " ^ e));
  let program =
    Tacos_sim.Program.of_schedule
      ~chunk_size:(Spec.chunk_size (spec 4))
      result.Synth.schedule
  in
  let tacos = ("TACOS", (Tacos_sim.Engine.run topo program).Tacos_sim.Engine.finish_time) in
  let ideal = ("Ideal bound", Ideal.all_reduce_time topo ~size) in

  Printf.printf "\n256 MB All-Reduce on DragonFly 4x5:\n";
  Table.print
    ~header:[ "Algorithm"; "Time"; "Bandwidth"; "vs ideal" ]
    (List.map
       (fun (name, t) ->
         [
           name;
           Units.time_pp t;
           Units.bandwidth_pp (size /. t);
           Table.cell_percent (snd ideal /. t);
         ])
       [ ring; direct; taccl; tacos; ideal ]);
  Printf.printf "TACOS speedup over the best basic algorithm: %.2fx\n"
    (Float.min (snd ring) (snd direct) /. snd tacos)
