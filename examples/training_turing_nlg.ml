(* End-to-end view (§VI-D): how much does the collective algorithm matter
   for training a real model? We estimate a Turing-NLG training iteration on
   a 64-NPU 3D-RFS cluster under Ring, Themis, TACOS and the ideal bound.
   Compute time is backend-independent; the exposed gradient All-Reduces are
   where the collective algorithm shows up.

     dune exec examples/training_turing_nlg.exe *)

open Tacos_topology
open Tacos_workload
module Units = Tacos_util.Units
module Table = Tacos_util.Table

let () =
  let topo =
    Builders.rfs3d
      ~bw:(Units.gbps 200., Units.gbps 100., Units.gbps 50.)
      (2, 4, 8)
  in
  let model = Models.turing_nlg in
  Format.printf "workload: %s (%s of gradients per iteration)@." model.Models.name
    (Units.bytes_pp (Models.total_weight_grad_bytes model));
  Format.printf "cluster:  %a@.@." Topology.pp topo;
  let backends =
    [
      Training.ring_backend topo;
      Training.themis_backend ~chunks:16 topo;
      Training.tacos_backend ~chunks_per_npu:2 topo;
      Training.ideal_backend topo;
    ]
  in
  let breakdowns = List.map (fun b -> (b, Training.iteration model b)) backends in
  let _, tacos = List.nth breakdowns 2 in
  let rows =
    List.map
      (fun (backend, b) ->
        [
          backend.Training.backend_name;
          Units.time_pp b.Training.fwd_compute;
          Units.time_pp b.Training.bwd_compute;
          Units.time_pp (Training.comm b);
          Units.time_pp (Training.total b);
          Printf.sprintf "%.2f" (Training.total b /. Training.total tacos);
        ])
      breakdowns
  in
  Table.print
    ~header:[ "Backend"; "fwd"; "bwd"; "exposed comm"; "iteration"; "vs TACOS" ]
    rows;
  let ring = snd (List.hd breakdowns) in
  Printf.printf
    "\nTACOS shrinks exposed communication %.2fx vs Ring, %.2fx end-to-end.\n"
    (Training.comm ring /. Training.comm tacos)
    (Training.total ring /. Training.total tacos)
