(* Switch unwinding (§IV-G, Fig. 13): a switch fabric gives all-to-all
   reachability but shared bandwidth. TACOS unwinds an N-NPU switch into a
   degree-d point-to-point network — d outgoing links per NPU, each with β
   scaled by d. Small d preserves per-link bandwidth (good for large
   collectives), large d shortens paths (good for latency-bound ones). This
   example sweeps d for an 8-NPU switch at two collective sizes and shows
   the tradeoff flip.

     dune exec examples/switch_unwinding.exe *)

open Tacos_topology
open Tacos_collective
module Synth = Tacos.Synthesizer
module Units = Tacos_util.Units
module Table = Tacos_util.Table

let npus = 8

let collective_time topo size =
  let spec =
    Spec.make ~buffer_size:size ~pattern:Pattern.All_gather ~npus ()
  in
  let result = Synth.synthesize ~seed:11 ~trials:4 topo spec in
  (match Synth.verify topo result with
  | Ok () -> ()
  | Error e -> failwith e);
  (* Evaluate under the simulator, like the benches. *)
  let program =
    Tacos_sim.Program.of_schedule ~chunk_size:(Spec.chunk_size spec)
      result.Synth.schedule
  in
  (Tacos_sim.Engine.run topo program).Tacos_sim.Engine.finish_time

let () =
  Printf.printf "8-NPU switch (NIC 50 GB/s, alpha 2 us) unwound at degree d:\n\n";
  let link = Link.of_bandwidth ~alpha:2e-6 50e9 in
  let sizes = [ ("1 KB (latency-bound)", 1e3); ("256 MB (bandwidth-bound)", 256e6) ] in
  List.iter
    (fun (label, size) ->
      Printf.printf "--- All-Gather of %s ---\n" label;
      let rows =
        List.map
          (fun degree ->
            let topo = Builders.switch ~link ~degree npus in
            let t = collective_time topo size in
            [
              Printf.sprintf "d=%d" degree;
              string_of_int (Topology.num_links topo);
              Units.bandwidth_pp
                (Link.bandwidth (List.hd (Topology.edges topo)).Topology.link);
              Units.time_pp t;
            ])
          [ 1; 2; 4; 7 ]
      in
      Table.print ~header:[ "Unwinding"; "Links"; "Per-link BW"; "AG time" ] rows;
      print_newline ())
    sizes;
  print_endline
    "d=1 keeps full per-link bandwidth (best for large collectives); d=N-1";
  print_endline
    "reaches everyone in one hop (best when latency dominates) — footnote 6."
