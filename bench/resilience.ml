(* Resilience experiment: synthesize collectives on broken fabrics.

   The paper's §III/§VII argument for synthesis over fixed-template
   algorithms is that a synthesizer adapts to *arbitrary* fabrics —
   including ones with failed links. This sweep makes that quantitative:
   for k random (still-connected) link failures on Mesh/Torus/DGX-1, it
   compares

     - the healthy schedule replayed on the degraded fabric (the engine
       reroutes sends whose link died — the "keep running the old
       algorithm" option a template-based CCL is stuck with), against
     - re-synthesis on the degraded fabric via the fallback ladder
       (Tacos_resilience.Resilience), and
     - the best feasible baseline on the degraded fabric.

   Rows land in BENCH_resilience.json. *)

open Tacos_topology
open Tacos_collective
open Exp_common
module Table = Tacos_util.Table
module Units = Tacos_util.Units
module Rng = Tacos_util.Rng
module Fault = Tacos_resilience.Fault
module Resilience = Tacos_resilience.Resilience

let fail_counts =
  match scale with Small -> [ 1; 2 ] | Default -> [ 1; 2; 4 ] | Large -> [ 1; 2; 4; 8 ]

let size = match scale with Small -> 16e6 | _ -> 64e6

let topologies () =
  [
    ("2D Mesh 5x5", Builders.mesh [| 5; 5 |]);
    ("2D Torus 4x4", Builders.torus [| 4; 4 |]);
    ("DGX-1", Builders.dgx1 ());
  ]

let plan_label = function
  | Resilience.Synthesized _ -> "re-synthesized"
  | Resilience.Baseline { algo; _ } ->
    Printf.sprintf "baseline %s" (Tacos_baselines.Algo.name algo)

let measure name topo healthy healthy_time k =
  (* One deterministic fault set per (topology, k): the seed folds both in. *)
  let rng = Rng.create (Hashtbl.hash (name, k)) in
  match Fault.random_connected_link_kills rng topo k with
  | None ->
    note "%s: no %d-link failure keeps the fabric strongly connected; skipped" name k;
    None
  | Some faults ->
    let (analysis, row_obs) =
      with_obs (fun () -> Resilience.analyze topo faults healthy)
    in
    let replay = Option.value ~default:Float.nan analysis.Resilience.replay_time in
    let resynth = Option.value ~default:Float.nan analysis.Resilience.resynth_time in
    let advantage = Option.value ~default:Float.nan analysis.Resilience.advantage in
    let plan =
      match analysis.Resilience.resynth with
      | Ok o -> plan_label o.Resilience.plan
      | Error f -> Printf.sprintf "FAILED(%s)" f.Resilience.stage
    in
    record ~exp:"resilience"
      [
        ("topology", Json.String name);
        ("npus", Json.Number (float_of_int (Topology.num_npus topo)));
        ("links", Json.Number (float_of_int (Topology.num_links topo)));
        ("failed_links", Json.Number (float_of_int k));
        ("faults", Json.Array (List.map Fault.to_json faults));
        ("health", Json.String (Resilience.health_to_string analysis.Resilience.health));
        ("plan", Json.String plan);
        ("healthy_time_seconds", Json.Number healthy_time);
        ("replay_on_degraded_seconds", Json.Number replay);
        ("resynthesized_seconds", Json.Number resynth);
        ("resynthesis_advantage", Json.Number advantage);
        ("obs", row_obs);
      ];
    Some
      [
        name;
        string_of_int k;
        Resilience.health_to_string analysis.Resilience.health;
        Units.time_pp replay;
        Units.time_pp resynth;
        (if Float.is_nan advantage then "n/a" else Printf.sprintf "%.2fx" advantage);
        plan;
      ]

let run () =
  section "Resilience — k failed links: replayed healthy schedule vs re-synthesis";
  let rows = ref [] in
  List.iter
    (fun (name, topo) ->
      let n = Topology.num_npus topo in
      let sp =
        Spec.make ~chunks_per_npu:2 ~buffer_size:size ~pattern:Pattern.All_reduce
          ~npus:n ()
      in
      let healthy = Synth.synthesize topo sp in
      let healthy_time = simulate_schedule topo healthy in
      rows :=
        !rows
        @ [
            [
              name; "0"; "intact"; Units.time_pp healthy_time; Units.time_pp healthy_time;
              "1.00x"; "healthy";
            ];
          ];
      List.iter
        (fun k ->
          match measure name topo healthy healthy_time k with
          | Some row -> rows := !rows @ [ row ]
          | None -> ())
        fail_counts)
    (topologies ());
  Table.print
    ~header:
      [ "Topology"; "k"; "health"; "replay"; "re-synth"; "advantage"; "plan" ]
    !rows;
  note "replay = healthy schedule on the degraded fabric (engine reroutes)";
  note "advantage > 1.0: re-synthesizing on the degraded fabric wins (§VII)";
  flush_bench ~exp:"resilience"
