(* Bechamel micro-benchmarks: one Test.make per experiment family, timing
   the computational kernel that regenerates it (synthesis for the
   TACOS-side figures, simulation for the baseline-side ones). Run via
   `dune exec bench/main.exe -- bechamel`. *)

open Bechamel
open Toolkit
open Tacos_topology
open Tacos_collective
module Algo = Tacos_baselines.Algo

let spec ?(k = 1) topo size =
  Spec.make ~chunks_per_npu:k ~buffer_size:size ~pattern:Pattern.All_reduce
    ~npus:(Topology.num_npus topo) ()

let synth_test name topo =
  Test.make ~name (Staged.stage (fun () ->
      ignore (Tacos.Synthesizer.synthesize topo (spec topo 1e9))))

let simulate_test name algo topo =
  Test.make ~name (Staged.stage (fun () ->
      ignore (Algo.collective_time algo topo (spec topo 1e9))))

let tests () =
  let link = Link.of_bandwidth 50e9 in
  Test.make_grouped ~name:"tacos" ~fmt:"%s %s"
    [
      (* fig1/fig2a kernels *)
      synth_test "fig02a: synth mesh 8x8" (Builders.mesh ~link [| 8; 8 |]);
      simulate_test "fig02b: ring 128 sim" Algo.ring (Builders.ring ~link 128);
      (* fig15/tab5 kernels *)
      synth_test "tab5: synth 3D-RFS 64"
        (Builders.rfs3d ~bw:(200e9, 100e9, 50e9) (2, 4, 8));
      simulate_test "fig15: taccl-like DF" Algo.Taccl_like
        (Builders.dragonfly ~bw:(400e9, 200e9) ());
      (* fig16-18 kernels *)
      synth_test "fig16: synth torus 4x4x4" (Builders.torus ~link [| 4; 4; 4 |]);
      simulate_test "fig16: themis-64 torus" (Algo.Themis { chunks = 64 })
        (Builders.torus ~link [| 4; 4; 4 |]);
      simulate_test "fig17: multitree mesh 5x5" Algo.Multitree
        (Builders.mesh ~link [| 5; 5 |]);
      simulate_test "fig17b: ccube dgx1" Algo.Ccube (Builders.dgx1 ());
      (* fig19 kernel *)
      synth_test "fig19: synth mesh 16x16" (Builders.mesh ~link [| 16; 16 |]);
      (* extension kernels *)
      Test.make ~name:"a2a: route mesh 4x4"
        (Staged.stage (fun () ->
             ignore
               (Tacos.Router.synthesize
                  (Builders.mesh ~link [| 4; 4 |])
                  (Spec.make ~buffer_size:64e6 ~pattern:Pattern.All_to_all ~npus:16 ()))));
    ]

let run () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  let raw = Benchmark.all cfg instances (tests ()) in
  let results =
    List.map (fun instance -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) instance raw) instances
  in
  let results = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) instances results in
  Hashtbl.iter
    (fun _ tbl ->
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-32s %12.0f ns/run\n" name est
          | _ -> Printf.printf "%-32s (no estimate)\n" name)
        tbl)
    results
