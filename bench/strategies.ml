(* Extension experiment (Table III made runnable): the collective patterns
   each parallelization strategy exposes, and how much the collective
   algorithm matters per strategy. FSDP/ZeRO lean on the many-to-many
   Reduce-Scatter / All-Gather patterns where one-to-many tree synthesizers
   are weakest (§VII-C) — TACOS handles them natively. *)

open Tacos_topology
open Tacos_collective
open Exp_common
open Tacos_workload
module Table = Tacos_util.Table
module Strategy = Tacos_sketch.Strategy

(* SCCL-style latency/bandwidth sweep (Tacos_sketch.Strategy): every chunk
   granularity is one point; the non-dominated frontier over the
   deterministic (chunks, steps, simulated time) triple is what a
   deployment would pick from. All recorded fields are machine-stable, so
   the frontier is pinned by `bench regress`. *)
let pareto () =
  section "Pareto — latency/bandwidth tradeoffs per chunk granularity";
  let size = 64e6 in
  let configs =
    [ ("dgx1", Builders.dgx1 ()); ("torus:4x4", Builders.torus [| 4; 4 |]) ]
  in
  List.iter
    (fun (name, topo) ->
      let outcome =
        Strategy.sweep ~seed:42 topo ~pattern:Pattern.All_reduce ~size
      in
      let on_frontier p = List.memq p outcome.Strategy.frontier in
      Printf.printf "\n%s, All-Reduce %s:\n" name (Units.bytes_pp size);
      Table.print
        ~header:
          [ "chunks/NPU"; "steps"; "sends"; "simulated"; "frontier" ]
        (List.map
           (fun (p : Strategy.point) ->
             [
               string_of_int p.Strategy.chunks_per_npu;
               string_of_int p.Strategy.steps;
               string_of_int p.Strategy.sends;
               Units.time_pp p.Strategy.simulated_time;
               (if on_frontier p then "*" else "dominated");
             ])
           outcome.Strategy.points);
      List.iter
        (fun (p : Strategy.point) ->
          record ~exp:"pareto"
            (("topology", Json.String name)
            :: ("pattern", Json.String "all-reduce")
            :: ("buffer_bytes", Json.Number size)
            :: Strategy.point_fields p
            @ [
                ("on_frontier", Json.Bool (on_frontier p));
                ( "frontier_size",
                  Json.Number
                    (float_of_int (List.length outcome.Strategy.frontier)) );
              ]))
        outcome.Strategy.points)
    configs;
  note "frontier/dominated split is over deterministic fields only";
  note "(chunks, steps, simulated time) — synthesis wall clock is reported";
  note "per point but never part of dominance";
  flush_bench ~exp:"pareto"

let run () =
  section "Strategies — Table III parallelizations on a 64-NPU 3D-RFS (Turing-NLG)";
  let topo =
    Builders.rfs3d
      ~bw:(Tacos_util.Units.gbps 200., Tacos_util.Units.gbps 100., Tacos_util.Units.gbps 50.)
      (2, 4, 8)
  in
  let model = Models.turing_nlg in
  (* Which patterns each strategy needs (the literal Table III). *)
  Table.print
    ~header:[ "Strategy"; "Reduce-Scatter"; "All-Gather"; "All-Reduce" ]
    (List.map
       (fun s ->
         let has p = if List.mem p (Parallelism.patterns s) then "x" else "" in
         [
           Parallelism.name s;
           has Pattern.Reduce_scatter;
           has Pattern.All_gather;
           has Pattern.All_reduce;
         ])
       Parallelism.all);
  (* Iteration time per strategy under each backend, normalized to TACOS. *)
  let backends =
    [
      Training.ring_backend topo;
      Training.themis_backend ~chunks:16 topo;
      Training.tacos_backend ~chunks_per_npu:8 topo;
      Training.ideal_backend topo;
    ]
  in
  Printf.printf "\nIteration time by strategy (normalized to TACOS per row):\n";
  let rows =
    List.map
      (fun strategy ->
        let costs =
          List.map (fun b -> Parallelism.iteration model strategy b) backends
        in
        let tacos_total = Parallelism.total (List.nth costs 2) in
        Parallelism.name strategy
        :: List.map
             (fun c -> Printf.sprintf "%.2f" (Parallelism.total c /. tacos_total))
             costs)
      Parallelism.all
  in
  Table.print ~header:[ "Strategy"; "Ring"; "Themis"; "TACOS"; "Ideal" ] rows;
  note "sharded strategies (FSDP/ZeRO/Hybrid) move 2-3x the bytes of plain";
  note "DP here, all of it through many-to-many collectives";
  pareto ()
