(* Extension experiment: gradient-bucketed comm/compute overlap. Figs. 20-21
   charge the gradient All-Reduce fully exposed; frameworks bucket it behind
   the backward pass. This sweeps the bucket size for ResNet-50 on a 3D
   Torus under Ring and TACOS backends: better collective algorithms shrink
   the exposed remainder further, and the two effects compose. *)

open Tacos_topology
open Exp_common
open Tacos_workload
module Table = Tacos_util.Table
module Units = Tacos_util.Units

let run () =
  section "Overlap — bucketed gradient All-Reduce, ResNet-50 @ 64-NPU 3D Torus";
  let topo = Builders.torus ~link:(Link.of_bandwidth 25e9) [| 4; 4; 4 |] in
  let model = Models.resnet50 in
  let backends =
    [ Training.ring_backend topo; Training.tacos_backend ~chunks_per_npu:4 topo ]
  in
  let bucket_sizes =
    [ (infinity, "unbucketed"); (20e6, "20 MB"); (5e6, "5 MB"); (1e6, "1 MB") ]
  in
  List.iter
    (fun backend ->
      Printf.printf "\n--- backend: %s ---\n" backend.Training.backend_name;
      let rows =
        List.map
          (fun (bucket_bytes, label) ->
            let o = Overlap.iteration ~bucket_bytes model backend in
            [
              label;
              string_of_int o.Overlap.buckets;
              Units.time_pp o.Overlap.exposed_comm;
              Units.time_pp o.Overlap.iteration_time;
            ])
          bucket_sizes
      in
      Table.print
        ~header:[ "Bucket"; "collectives"; "exposed comm"; "iteration" ]
        rows)
    backends;
  note "bucketing hides communication behind backward compute; a faster";
  note "collective algorithm shrinks what remains exposed — the effects stack"
