(* Bench regression guard: compare freshly generated BENCH_<exp>.json rows
   against the committed baselines under bench/baselines/ and exit non-zero
   when a tracked metric regresses beyond tolerance.

     dune exec bench/main.exe -- fig18 fig19 midflight hierarchy regress

   Only *deterministic* fields are compared — simulated makespans, synthesis
   round counts, utilizations, repair strategies — never wall-clock timings
   or obs snapshots, so the guard is stable across machines. Rows are
   matched by their configuration fields (topology, pattern, sizes, ...),
   which makes the comparison independent of TACOS_BENCH_SCALE: a scale that
   sweeps more configurations just adds unmatched rows, which are reported
   as notes, not failures. Improvements beyond tolerance are also notes —
   with a hint to refresh the baseline. *)

open Exp_common

(* Which way a metric is allowed to drift. [Exact] fields (strategy strings,
   verification bits, …) must match the baseline bit-for-bit. *)
type direction = Lower_better | Higher_better | Exact

type exp_spec = {
  exp : string;
  keys : string list;  (** configuration fields identifying a row *)
  metrics : (string * direction) list;
}

let specs =
  [
    {
      exp = "fig18";
      keys = [ "topology"; "npus" ];
      metrics =
        [
          ("tacos_makespan_seconds", Lower_better);
          ("ring_makespan_seconds", Lower_better);
          ("tacos_avg_utilization", Higher_better);
          ("ring_avg_utilization", Higher_better);
        ];
    };
    {
      exp = "fig19";
      keys = [ "topology"; "npus" ];
      metrics = [ ("makespan_seconds", Lower_better); ("rounds", Lower_better) ];
    };
    {
      exp = "midflight";
      keys = [ "topology"; "pattern"; "buffer_bytes"; "fault_fraction"; "victim_link" ];
      metrics =
        [
          ("healthy_seconds", Lower_better);
          ("replay_seconds", Lower_better);
          ("repair_completion_seconds", Lower_better);
          ("full_completion_seconds", Lower_better);
          ("repair_strategy", Exact);
          ("repair_verified", Exact);
        ];
    };
    {
      exp = "midflight_multi";
      keys = [ "topology"; "pattern"; "buffer_bytes"; "epochs" ];
      metrics =
        [
          ("healthy_seconds", Lower_better);
          ("completion_seconds", Lower_better);
          ("strategies", Exact);
          ("verified", Exact);
          ("repair_fewer_matches", Exact);
          ("ten_reused", Exact);
        ];
    };
    {
      exp = "serve";
      keys = [ "trace" ];
      metrics =
        (* The service trace is fully deterministic by construction — every
           count is pinned Exact. Latency percentiles are reported in the
           row but deliberately untracked (machine noise). *)
        [
          ("requests", Exact);
          ("hits", Exact);
          ("misses", Exact);
          ("degraded", Exact);
          ("deadline_missed", Exact);
          ("errors", Exact);
          ("quarantined", Exact);
          ("dup_syntheses", Exact);
          ("shed", Exact);
          (* Counts re-read through the Prometheus exposition (the metrics
             verb) and the logfmt access log — guarding the telemetry wire,
             not just the in-process counters. *)
          ("metrics_accepted", Exact);
          ("metrics_hits", Exact);
          ("metrics_misses", Exact);
          ("metrics_degraded", Exact);
          ("metrics_deadline_missed", Exact);
          ("metrics_errors", Exact);
          ("metrics_shed", Exact);
          ("metrics_disk_entries", Exact);
          ("access_log_records", Exact);
        ];
    };
    {
      exp = "pareto";
      keys = [ "topology"; "pattern"; "buffer_bytes"; "chunks_per_npu" ];
      metrics =
        (* The frontier must reproduce deterministically: dominance is
           computed over (chunks, steps, simulated time) only, so both the
           per-point fields and the membership bit are pinned.
           synthesis_seconds is in the row but untracked (wall clock). *)
        [
          ("steps", Exact);
          ("sends", Exact);
          ("collective_time", Lower_better);
          ("simulated_time", Lower_better);
          ("on_frontier", Exact);
          ("frontier_size", Exact);
        ];
    };
    {
      exp = "hierarchy";
      keys = [ "topology"; "npus" ];
      metrics =
        [
          ("flat_simulated_seconds", Lower_better);
          ("hier_simulated_seconds", Lower_better);
          ("groups", Exact);
          ("group_size", Exact);
          ("syntheses", Exact);
          ("dedup_hits", Exact);
          (* Parallel column: determinism flag and trial count are exact
             everywhere; the wall-clock columns themselves are machine
             dependent and deliberately untracked. *)
          ("par_trials", Exact);
          ("par_identical", Exact);
        ];
    };
  ]

let tolerance =
  match Sys.getenv_opt "TACOS_BENCH_TOLERANCE" with
  | Some s -> (
    match float_of_string_opt s with
    | Some t when t >= 0. -> t
    | _ -> failwith "TACOS_BENCH_TOLERANCE must be a non-negative float")
  | None -> 0.05

let baselines_dir =
  Option.value ~default:"bench/baselines" (Sys.getenv_opt "TACOS_BENCH_BASELINES")

let load_rows file =
  if not (Sys.file_exists file) then None
  else
    let text = In_channel.with_open_bin file In_channel.input_all in
    match Json.parse text with
    | Error e -> failwith (Printf.sprintf "%s: not JSON: %s" file e)
    | Ok doc -> (
      match Json.member "rows" doc with
      | Some (Json.Array rows) -> Some rows
      | _ -> failwith (Printf.sprintf "%s: no rows array" file))

let cell = function
  | Some (Json.Number v) -> Printf.sprintf "%.6g" v
  | Some (Json.String s) -> s
  | Some (Json.Bool b) -> string_of_bool b
  | Some Json.Null -> "null"
  | Some _ -> "<composite>"
  | None -> "<missing>"

let key_of keys row = String.concat ", " (List.map (fun k -> cell (Json.member k row)) keys)

let run () =
  section "Bench regression guard — fresh BENCH rows vs committed baselines";
  note "tolerance ±%.0f%% (TACOS_BENCH_TOLERANCE), baselines in %s"
    (100. *. tolerance) baselines_dir;
  let regressions = ref [] in
  let regress exp key field msg = regressions := (exp, key, field, msg) :: !regressions in
  List.iter
    (fun spec ->
      let fresh_file = Printf.sprintf "BENCH_%s.json" spec.exp in
      let base_file = Filename.concat baselines_dir fresh_file in
      match (load_rows base_file, load_rows fresh_file) with
      | None, _ -> note "%s: no committed baseline — skipped" spec.exp
      | _, None ->
        note "%s: %s not generated this run (run the %s experiment first) — skipped"
          spec.exp fresh_file spec.exp
      | Some base_rows, Some fresh_rows ->
        let fresh_by_key = Hashtbl.create 16 in
        List.iter
          (fun row -> Hashtbl.replace fresh_by_key (key_of spec.keys row) row)
          fresh_rows;
        let checked = ref 0 in
        List.iter
          (fun base ->
            let key = key_of spec.keys base in
            match Hashtbl.find_opt fresh_by_key key with
            | None -> note "%s [%s]: not in the fresh run — skipped" spec.exp key
            | Some fresh ->
              incr checked;
              List.iter
                (fun (field, dir) ->
                  let b = Json.member field base and f = Json.member field fresh in
                  match (dir, b, f) with
                  | Exact, _, _ ->
                    if cell b <> cell f then
                      regress spec.exp key field
                        (Printf.sprintf "%s -> %s (must match baseline)" (cell b)
                           (cell f))
                  | _, Some (Json.Number bv), Some (Json.Number fv) ->
                    (* NaN encodes a failed leg (e.g. replay stranded): only
                       a fresh failure where the baseline succeeded is a
                       regression. *)
                    if Float.is_nan bv || Float.is_nan fv then begin
                      if Float.is_nan fv && not (Float.is_nan bv) then
                        regress spec.exp key field
                          (Printf.sprintf "%.6g -> nan (leg now fails)" bv)
                    end
                    else begin
                      let slack = (tolerance *. Float.abs bv) +. 1e-12 in
                      let worse, better =
                        match dir with
                        | Lower_better -> (fv > bv +. slack, fv < bv -. slack)
                        | Higher_better -> (fv < bv -. slack, fv > bv +. slack)
                        | Exact -> (false, false)
                      in
                      if worse then
                        regress spec.exp key field
                          (Printf.sprintf "%.6g -> %.6g (%+.2f%%)" bv fv
                             (100. *. (fv -. bv) /. Float.abs bv))
                      else if better then
                        note
                          "%s [%s] %s improved %.6g -> %.6g — consider refreshing \
                           the baseline"
                          spec.exp key field bv fv
                    end
                  | _, _, _ ->
                    regress spec.exp key field
                      (Printf.sprintf "%s -> %s (not comparable)" (cell b) (cell f)))
                spec.metrics)
          base_rows;
        Printf.printf "  %-10s %d row(s) checked against %s\n" spec.exp !checked
          base_file)
    specs;
  match List.rev !regressions with
  | [] -> Printf.printf "  no regressions\n"
  | bad ->
    Printf.printf "\n  %d REGRESSION(S):\n" (List.length bad);
    Table.print
      ~header:[ "experiment"; "row"; "metric"; "baseline -> fresh" ]
      (List.map (fun (e, k, f, m) -> [ e; k; f; m ]) bad);
    exit 1
