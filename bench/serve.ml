(* Serve-trace replay: exercise the synthesis service end to end the way a
   training fleet would — repeat hits, cold misses, duplicate bursts,
   impossible fabrics, deadlines too tight to synthesize under — and
   measure what the paper's serving story promises: a high hit rate, one
   synthesis per duplicate burst, graceful degradation instead of
   overruns, and a cache that survives corrupted disk entries.

   The replay is deliberately deterministic: every count below is asserted
   hard (a miscount is a bug, not a slow run) and recorded in
   BENCH_serve.json where `regress` pins it Exact. Latency percentiles are
   reported for the row but never tracked — they are machine noise. *)

open Exp_common
module Deadline = Tacos_util.Deadline
module Logfmt = Tacos_util.Logfmt
module Pool = Tacos_util.Pool
module Expo = Tacos_obs.Expo
module Service = Tacos_serve.Service
module Synthesizer = Tacos.Synthesizer

let check cond fmt =
  Printf.ksprintf (fun msg -> if not cond then failwith ("serve bench: " ^ msg)) fmt

(* --- request construction / response inspection ------------------------- *)

let request ?(op = "synthesize") ?deadline_ms ?(fail_links = []) ~id ~topology
    ~pattern ~size () =
  let fields =
    [
      ("id", Json.Number (float_of_int id));
      ("op", Json.String op);
      ("topology", Json.String topology);
      ("pattern", Json.String pattern);
      ("size", Json.Number size);
    ]
    @ (match deadline_ms with
      | Some d -> [ ("deadline_ms", Json.Number d) ]
      | None -> [])
    @
    match fail_links with
    | [] -> []
    | ls ->
      [ ("fail_links", Json.Array (List.map (fun l -> Json.Number (float_of_int l)) ls)) ]
  in
  Json.encode (Json.Object fields)

let field response name =
  match Json.parse response with
  | Ok doc -> Json.member name doc
  | Error e -> failwith ("serve bench: response not JSON: " ^ e)

let status response =
  match field response "status" with
  | Some (Json.String s) -> s
  | _ -> failwith "serve bench: response has no status"

let degraded response = field response "degraded" = Some (Json.Bool true)

(* --- the trace ----------------------------------------------------------- *)

(* Twelve configurations a fleet would keep asking for, warmed to disk by a
   first service instance; three of their cache files are then corrupted
   in three different ways before a second instance replays the trace. *)
let warm_configs =
  List.concat_map
    (fun topology ->
      List.map
        (fun pattern -> (topology, pattern, 1e6))
        [ "all-gather"; "reduce-scatter"; "all-reduce" ])
    [ "ring:4"; "ring:8"; "mesh:2x2"; "mesh:3x3" ]

let tight_configs =
  [
    ("ring:4", "all-gather", 3e6); ("ring:8", "reduce-scatter", 3e6);
    ("mesh:2x2", "all-reduce", 3e6); ("mesh:3x3", "all-gather", 3e6);
    ("ring:4", "all-reduce", 5e6); ("ring:8", "all-gather", 5e6);
  ]

let corrupt_entries dir =
  let entries =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort String.compare
    |> List.map (Filename.concat dir)
  in
  check (List.length entries = 12) "expected 12 warmed cache files, found %d"
    (List.length entries);
  match entries with
  | a :: b :: c :: _ ->
    (* Three distinct failure shapes: a half-truncated write, a
       zero-length file, and plain garbage. *)
    let text = In_channel.with_open_text a In_channel.input_all in
    Out_channel.with_open_text a (fun oc ->
        Out_channel.output_string oc
          (String.sub text 0 (String.length text / 2)));
    Out_channel.with_open_text b (fun _ -> ());
    Out_channel.with_open_text c (fun oc ->
        Out_channel.output_string oc "not json {{{");
    [ a; b; c ]
  | _ -> assert false

let percentile sorted p =
  match sorted with
  | [||] -> nan
  | a ->
    let n = Array.length a in
    a.(min (n - 1) (int_of_float (p *. float_of_int n)))

let run () =
  section "serve — deadline-aware service trace replay";
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tacos_serve_bench_%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  Sys.readdir dir |> Array.iter (fun f -> Sys.remove (Filename.concat dir f));
  let latencies = ref [] in
  let timed svc line =
    let t0 = Unix.gettimeofday () in
    let response = Service.handle_line svc line in
    latencies := (Unix.gettimeofday () -. t0) *. 1e3 :: !latencies;
    response
  in

  (* Phase 1 — warm the persistent cache with one service instance. *)
  let config = { Service.default_config with registry_dir = Some dir; queue_limit = 64 } in
  let warm = Service.create ~config () in
  List.iteri
    (fun i (topology, pattern, size) ->
      let r = Service.handle_line warm (request ~id:i ~topology ~pattern ~size ()) in
      check (status r = "ok") "warm %s/%s failed: %s" topology pattern r)
    warm_configs;
  let ws = Service.stats warm in
  check (ws.Service.misses = 12 && ws.Service.hits = 0)
    "warm run should be 12 misses (got %d misses, %d hits)" ws.Service.misses
    ws.Service.hits;
  note "warmed %d configurations into %s" (List.length warm_configs) dir;

  (* Phase 2 — corrupt three entries on disk, in three different ways. *)
  let corrupted = corrupt_entries dir in
  note "corrupted %d cache files (truncated / emptied / garbage)"
    (List.length corrupted);

  (* Phase 3 — a fresh instance replays the trace against the damaged
     cache. The backend counts real syntheses so the duplicate burst can
     assert single-flight coalescing. *)
  let synth_calls = Atomic.make 0 in
  let counting ~deadline ~sketch:_ ~seed ~domains topo spec =
    Atomic.incr synth_calls;
    Synthesizer.synthesize ~seed ~domains ?deadline topo spec
  in
  (* The access log collects in memory so every record can be asserted:
     the service serializes sink calls, so a plain ref is safe. *)
  let access_records = ref [] in
  let config =
    { config with Service.access_log = Some (fun l -> access_records := l :: !access_records) }
  in
  let svc = Service.create ~config ~synthesize:counting () in
  let next_id = ref 1000 in
  let id () = incr next_id; !next_id in

  (* 96 repeat requests: 8 rounds over the 12 warm configurations. The
     nine intact entries load from disk (hits); the three corrupted ones
     are quarantined and re-synthesized exactly once. *)
  for _round = 1 to 8 do
    List.iter
      (fun (topology, pattern, size) ->
        let r = timed svc (request ~id:(id ()) ~topology ~pattern ~size ()) in
        check (status r = "ok" && not (degraded r)) "replay %s/%s: %s" topology
          pattern r)
      warm_configs
  done;

  (* 6 requests with deadlines far too tight to synthesize under: each
     must come back degraded (a feasible baseline), never overrun. *)
  let slack_ms = 250. in
  List.iter
    (fun (topology, pattern, size) ->
      let t0 = Unix.gettimeofday () in
      let r =
        timed svc (request ~id:(id ()) ~topology ~pattern ~size ~deadline_ms:0. ())
      in
      let took = (Unix.gettimeofday () -. t0) *. 1e3 in
      check (status r = "ok") "tight-deadline %s/%s: %s" topology pattern r;
      check (degraded r || took <= slack_ms)
        "tight-deadline %s/%s neither degraded nor fast (%.1f ms): %s" topology
        pattern took r)
    tight_configs;

  (* 4 impossible requests: killing the only link of a unidirectional
     ring disconnects it — each must be a structured error, not a hang
     or a crash. *)
  for _ = 1 to 4 do
    let r =
      timed svc
        (request ~id:(id ()) ~topology:"uniring:4" ~pattern:"all-gather"
           ~size:1e6 ~fail_links:[ 0 ] ())
    in
    check (status r = "error") "impossible spec should error: %s" r;
    check (field r "failure" <> None) "impossible spec should carry a failure: %s" r
  done;

  (* 16-request duplicate burst on a cold configuration, issued
     concurrently: the registry's single-flight path must run exactly one
     synthesis; everyone else coalesces into a hit. *)
  let before = Atomic.get synth_calls in
  let burst = request ~id:(id ()) ~topology:"ring:6" ~pattern:"all-gather" ~size:2e6 () in
  let pool = Pool.create ~size:8 () in
  let responses =
    Pool.map pool
      (fun _ ->
        let t0 = Unix.gettimeofday () in
        let r = Service.handle_line svc burst in
        ((Unix.gettimeofday () -. t0) *. 1e3, r))
      16
  in
  Pool.shutdown pool;
  Array.iter
    (fun (ms, r) ->
      latencies := ms :: !latencies;
      check (status r = "ok" && not (degraded r)) "burst response: %s" r)
    responses;
  let dup_syntheses = Atomic.get synth_calls - before in
  check (dup_syntheses = 1) "duplicate burst ran %d syntheses, wanted exactly 1"
    dup_syntheses;

  let s = Service.stats svc in
  let requests = s.Service.accepted in
  check (requests = 122) "trace should admit 122 requests, admitted %d" requests;
  check (s.Service.hits = 108) "expected 108 hits, got %d" s.Service.hits;
  check (s.Service.misses = 4) "expected 4 misses (3 re-synthesized + 1 burst), got %d"
    s.Service.misses;
  check (s.Service.degraded = 6) "expected 6 degraded, got %d" s.Service.degraded;
  check (s.Service.deadline_missed = 6) "expected 6 deadline misses, got %d"
    s.Service.deadline_missed;
  check (s.Service.errors = 4) "expected 4 errors, got %d" s.Service.errors;
  check (s.Service.quarantined = 3) "expected 3 quarantined files, got %d"
    s.Service.quarantined;
  List.iter
    (fun path ->
      check (Sys.file_exists (path ^ ".corrupt")) "missing quarantine file %s.corrupt" path)
    corrupted;
  let has_substring sub s =
    let n = String.length sub and m = String.length s in
    let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
    at 0
  in
  check
    (Sys.readdir dir |> Array.for_all (fun f -> not (has_substring ".tmp." f)))
    "leftover .tmp files in %s" dir;

  (* Phase 3b — scrape the service's own telemetry through the wire. The
     [metrics] verb must answer valid Prometheus text whose exposed
     request-outcome counters agree exactly with the trace (the acceptance
     bar: counts asserted via the exposition, not just internal stats),
     and the access log must hold one well-formed logfmt record per
     request with matching outcomes. *)
  let scrape ?prefix svc =
    let fields =
      [ ("id", Json.String "scrape"); ("op", Json.String "metrics") ]
      @ match prefix with Some p -> [ ("prefix", Json.String p) ] | None -> []
    in
    let r = Service.handle_line svc (Json.encode (Json.Object fields)) in
    check (status r = "ok") "metrics scrape failed: %s" r;
    match field r "metrics" with
    | Some (Json.String text) -> text
    | _ -> failwith "serve bench: metrics response carries no text"
  in
  let exposition svc =
    let text = scrape svc in
    (match Expo.validate text with
    | Ok () -> ()
    | Error e -> failwith ("serve bench: exposition invalid: " ^ e));
    match Expo.parse text with
    | Ok samples -> samples
    | Error e -> failwith ("serve bench: exposition unparseable: " ^ e)
  in
  let sample_value samples metric labels =
    match
      List.find_opt
        (fun (e : Expo.exposed) ->
          e.Expo.metric = metric
          && List.for_all (fun kv -> List.mem kv e.Expo.label_set) labels)
        samples
    with
    | Some e -> e.Expo.v
    | None -> nan
  in
  (* Snapshot the access log before the scrape itself appends to it. *)
  let logged = List.rev !access_records in
  let samples = exposition svc in
  let outcome o = sample_value samples "tacos_serve_requests_total" [ ("outcome", o) ] in
  let expect_outcome o n =
    check (outcome o = float_of_int n) "exposed outcome %s: wanted %d, got %g" o n
      (outcome o)
  in
  expect_outcome "accepted" 122;
  expect_outcome "hit" 108;
  expect_outcome "miss" 4;
  expect_outcome "degraded" 6;
  expect_outcome "deadline_missed" 6;
  expect_outcome "error" 4;
  let disk_entries = sample_value samples "tacos_registry_disk_entries" [] in
  check (disk_entries = 13.) "exposed disk entries: wanted 13, got %g" disk_entries;
  check (sample_value samples "tacos_registry_disk_corrupt" [] = 3.)
    "exposed disk corrupt count should be 3";
  check (sample_value samples "tacos_registry_disk_bytes" [] > 0.)
    "exposed disk bytes should be positive";
  List.iter
    (fun q ->
      let v =
        sample_value samples "tacos_serve_latency_ms"
          [ ("verb", "synthesize"); ("quantile", q) ]
      in
      check (Float.is_finite v && v >= 0.)
        "missing synthesize latency quantile %s in exposition" q)
    [ "0.5"; "0.95"; "0.99" ];
  let filtered = scrape ~prefix:"tacos_registry_" svc in
  (match Expo.parse filtered with
  | Ok [] -> failwith "serve bench: prefixed scrape came back empty"
  | Ok l ->
    List.iter
      (fun (e : Expo.exposed) ->
        check
          (String.starts_with ~prefix:"tacos_registry_" e.Expo.metric)
          "prefixed scrape leaked %s" e.Expo.metric)
      l
  | Error e -> failwith ("serve bench: prefixed exposition unparseable: " ^ e));
  note "metrics exposition valid: %d samples agree with the trace counters"
    (List.length samples);

  let parsed_log =
    List.map
      (fun line ->
        match Logfmt.parse line with
        | Ok kvs -> kvs
        | Error e ->
          failwith ("serve bench: access record unparseable (" ^ e ^ "): " ^ line))
      logged
  in
  let access_log_records = List.length parsed_log in
  check (access_log_records = 122) "expected 122 access records, got %d"
    access_log_records;
  let log_outcome o =
    List.length
      (List.filter (fun kvs -> List.assoc_opt "outcome" kvs = Some o) parsed_log)
  in
  check (log_outcome "hit" = 108) "access log hits: %d" (log_outcome "hit");
  check (log_outcome "miss" = 4) "access log misses: %d" (log_outcome "miss");
  check (log_outcome "degraded" = 6) "access log degraded: %d" (log_outcome "degraded");
  check (log_outcome "error" = 4) "access log errors: %d" (log_outcome "error");
  let uptime = Service.uptime_seconds svc in
  List.iter
    (fun kvs ->
      List.iter
        (fun k -> check (List.mem_assoc k kvs) "access record missing field %s" k)
        [ "t"; "id"; "verb"; "outcome"; "elapsed_ms"; "bytes_out" ];
      check (List.assoc "verb" kvs = "synthesize") "unexpected access verb %s"
        (List.assoc "verb" kvs);
      let stamp = try float_of_string (List.assoc "t" kvs) with _ -> nan in
      check (stamp >= 0. && stamp <= uptime) "access stamp %g outside [0, %g]" stamp
        uptime)
    parsed_log;
  note "access log: %d logfmt records, outcomes match the trace" access_log_records;

  (* Per-verb latency quantiles, as a stats client (tacos top) sees them. *)
  let stats_resp =
    Service.handle_line svc
      (Json.encode (Json.Object [ ("id", Json.String "q"); ("op", Json.String "stats") ]))
  in
  (match field stats_resp "latency_ms" with
  | Some (Json.Object verbs) ->
    check (List.mem_assoc "synthesize" verbs) "stats latency_ms lacks synthesize";
    let row (verb, summary) =
      let get k =
        match Json.member k summary with Some (Json.Number n) -> n | _ -> nan
      in
      [
        verb; Printf.sprintf "%.0f" (get "count");
        Printf.sprintf "%.3f" (get "p50"); Printf.sprintf "%.3f" (get "p90");
        Printf.sprintf "%.3f" (get "p95"); Printf.sprintf "%.3f" (get "p99");
      ]
    in
    Table.print
      ~header:[ "verb"; "count"; "p50 ms"; "p90 ms"; "p95 ms"; "p99 ms" ]
      (List.map row verbs)
  | _ -> failwith "serve bench: stats response carries no latency_ms");

  (* Phase 4 — load shedding under a saturated queue: two syntheses block
     on a latch while three more requests arrive; all three must be shed
     with structured overloaded responses, then the blocked pair completes
     once the latch opens. *)
  let latch = Mutex.create () in
  let opened = Condition.create () in
  let released = ref false in
  let started = Atomic.make 0 in
  let blocking ~deadline ~sketch:_ ~seed ~domains topo spec =
    Atomic.incr started;
    Mutex.lock latch;
    while not !released do
      Condition.wait opened latch
    done;
    Mutex.unlock latch;
    Synthesizer.synthesize ~seed ~domains ?deadline topo spec
  in
  let tiny = { Service.default_config with queue_limit = 2 } in
  let shed_svc = Service.create ~config:tiny ~synthesize:blocking () in
  let pool = Pool.create ~size:4 () in
  let blocked =
    List.map
      (fun topology ->
        Pool.submit pool (fun () ->
            Service.handle_line shed_svc
              (request ~id:(id ()) ~topology ~pattern:"all-gather" ~size:1e6 ())))
      [ "ring:4"; "ring:8" ]
  in
  let t0 = Unix.gettimeofday () in
  while Atomic.get started < 2 && Unix.gettimeofday () -. t0 < 10. do
    Unix.sleepf 0.001
  done;
  check (Atomic.get started = 2) "latch backends never started (%d)"
    (Atomic.get started);
  for _ = 1 to 3 do
    let r =
      Service.handle_line shed_svc
        (request ~id:(id ()) ~topology:"mesh:2x2" ~pattern:"all-reduce" ~size:1e6 ())
    in
    check (status r = "overloaded") "saturated queue should shed: %s" r;
    check (field r "retry_after_ms" <> None) "overloaded reply needs retry hint: %s" r
  done;
  Mutex.lock latch;
  released := true;
  Condition.broadcast opened;
  Mutex.unlock latch;
  List.iter
    (fun fut -> check (status (Pool.await pool fut) = "ok") "latched request failed")
    blocked;
  Pool.shutdown pool;
  let shed_stats = Service.stats shed_svc in
  check (shed_stats.Service.shed = 3) "expected 3 shed, got %d" shed_stats.Service.shed;
  check (shed_stats.Service.accepted = 2) "expected 2 admitted, got %d"
    shed_stats.Service.accepted;
  (* The shed counter must also be visible through the exposition — a
     saturated server stays scrapable because [metrics] bypasses admission. *)
  let shed_samples = exposition shed_svc in
  let shed_outcome o =
    sample_value shed_samples "tacos_serve_requests_total" [ ("outcome", o) ]
  in
  check (shed_outcome "shed" = 3.) "exposed shed count: wanted 3, got %g"
    (shed_outcome "shed");
  check (shed_outcome "accepted" = 2.) "exposed shed-service accepted: wanted 2, got %g"
    (shed_outcome "accepted");

  (* --- report ------------------------------------------------------------ *)
  let sorted = Array.of_list !latencies in
  Array.sort compare sorted;
  let p50 = percentile sorted 0.50 and p99 = percentile sorted 0.99 in
  let hit_rate = float_of_int s.Service.hits /. float_of_int requests in
  let degraded_fraction = float_of_int s.Service.degraded /. float_of_int requests in
  Table.print
    ~header:
      [ "requests"; "hits"; "misses"; "degraded"; "errors"; "quarantined";
        "dup synth"; "shed"; "hit rate"; "p50"; "p99" ]
    [
      [
        string_of_int requests; string_of_int s.Service.hits;
        string_of_int s.Service.misses; string_of_int s.Service.degraded;
        string_of_int s.Service.errors; string_of_int s.Service.quarantined;
        string_of_int dup_syntheses; string_of_int shed_stats.Service.shed;
        Printf.sprintf "%.1f%%" (100. *. hit_rate);
        Printf.sprintf "%.2f ms" p50; Printf.sprintf "%.2f ms" p99;
      ];
    ];
  record ~exp:"serve"
    [
      ("trace", Json.String "default");
      ("requests", Json.Number (float_of_int requests));
      ("hits", Json.Number (float_of_int s.Service.hits));
      ("misses", Json.Number (float_of_int s.Service.misses));
      ("degraded", Json.Number (float_of_int s.Service.degraded));
      ("deadline_missed", Json.Number (float_of_int s.Service.deadline_missed));
      ("errors", Json.Number (float_of_int s.Service.errors));
      ("quarantined", Json.Number (float_of_int s.Service.quarantined));
      ("dup_syntheses", Json.Number (float_of_int dup_syntheses));
      ("shed", Json.Number (float_of_int shed_stats.Service.shed));
      ("hit_rate", Json.Number hit_rate);
      ("degraded_fraction", Json.Number degraded_fraction);
      ("metrics_accepted", Json.Number (outcome "accepted"));
      ("metrics_hits", Json.Number (outcome "hit"));
      ("metrics_misses", Json.Number (outcome "miss"));
      ("metrics_degraded", Json.Number (outcome "degraded"));
      ("metrics_deadline_missed", Json.Number (outcome "deadline_missed"));
      ("metrics_errors", Json.Number (outcome "error"));
      ("metrics_shed", Json.Number (shed_outcome "shed"));
      ("metrics_disk_entries", Json.Number disk_entries);
      ("access_log_records", Json.Number (float_of_int access_log_records));
      ("p50_ms", Json.Number p50);
      ("p99_ms", Json.Number p99);
    ];
  flush_bench ~exp:"serve";
  note "all serve-trace assertions passed"
