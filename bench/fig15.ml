(* Fig. 15(a): All-Reduce bandwidth of Ring/Direct basic algorithms and the
   TACCL-like and TACOS synthesizers on DragonFly (asymmetric +
   heterogeneous), 2D Switch and 3D-RFS, against the theoretical ideal.
   Fig. 15(b): link-utilization balance on DragonFly and 3D-RFS. *)

open Tacos_topology
open Tacos_collective
open Exp_common
module Table = Tacos_util.Table
module Stats = Tacos_util.Stats
module Schedule = Tacos_collective.Schedule
module Engine = Tacos_sim.Engine

let size = 256e6

let topologies () =
  [
    ("DragonFly 4x5", Builders.dragonfly ~bw:(Tacos_util.Units.gbps 400., Tacos_util.Units.gbps 200.) ());
    ("2D Switch 8x4", Builders.two_level_switch ~bw:(Tacos_util.Units.gbps 300., Tacos_util.Units.gbps 25.) (8, 4));
    ("3D-RFS 2x4x8", Builders.rfs3d ~bw:(Tacos_util.Units.gbps 200., Tacos_util.Units.gbps 100., Tacos_util.Units.gbps 50.) (2, 4, 8));
  ]

let run_a () =
  section "Fig. 15(a) — All-Reduce bandwidth on DF / 2D Switch / 3D-RFS (256 MB)";
  let rows =
    List.map
      (fun (name, topo) ->
        let ring = baseline_time Algo.ring topo ~size Pattern.All_reduce in
        let direct = baseline_time Algo.Direct topo ~size Pattern.All_reduce in
        let taccl = baseline_time Algo.Taccl_like topo ~size Pattern.All_reduce in
        let tacos = tacos_time ~chunks_per_npu:16 topo ~size Pattern.All_reduce in
        let ideal = Ideal.all_reduce_time topo ~size in
        let bws = List.map (fun t -> bandwidth ~size t) [ ring; direct; taccl; tacos ] in
        let smallest = List.fold_left Float.min infinity bws in
        (name :: List.map (fun b -> Printf.sprintf "%.2f" (b /. smallest)) bws)
        @ [ pct (ideal /. tacos) ])
      (topologies ())
  in
  Table.print
    ~header:[ "Topology"; "Ring"; "Direct"; "TACCL-like"; "TACOS"; "TACOS eff" ]
    rows;
  note "values: bandwidth normalized to the worst algorithm per topology;";
  note "paper: TACOS avg 2.56x over baselines, >90%% of the theoretical ideal"

let run_b () =
  section "Fig. 15(b) — per-link utilization balance (TACOS vs Ring)";
  List.iter
    (fun (name, topo) ->
      let tacos = tacos_result ~chunks_per_npu:16 topo ~size Pattern.All_reduce in
      let tacos_busy = Schedule.link_busy_seconds topo tacos.Synth.schedule in
      let tacos_util =
        Array.to_list (Array.map (fun b -> b /. tacos.Synth.collective_time) tacos_busy)
      in
      let ring = Algo.simulate Algo.ring topo (spec ~size topo Pattern.All_reduce) in
      let ring_util =
        Array.to_list
          (Array.map (fun b -> b /. ring.Engine.finish_time) ring.Engine.link_busy)
      in
      let describe label utils =
        note "%-10s %-6s mean %s  min %s  max %s  stddev %.3f" name label
          (pct (Stats.mean utils)) (pct (Stats.minimum utils))
          (pct (Stats.maximum utils)) (Stats.stddev utils)
      in
      describe "TACOS" tacos_util;
      describe "Ring" ring_util)
    (List.filteri (fun i _ -> i <> 1) (topologies ()));
  note "paper: basic algorithms oversubscribe some links and idle others;";
  note "TACOS spreads traffic evenly (90.84%% efficiency vs ideal)"

let run () =
  run_a ();
  run_b ()
