(* Hierarchical (process-group) synthesis vs flat TACOS: synthesis
   wall-clock and end-to-end simulated collective time on Torus 3D,
   2D-Switch and 3D-RFS fabrics from 64 to 1024 NPUs. The hierarchical
   rows decompose with `Plan.Auto` (inter phase on the bottleneck
   dimension) and dedupe isomorphic groups through the registry
   fingerprint, so a fabric of G identical groups costs one intra
   synthesis regardless of G. *)

open Tacos_topology
open Tacos_collective
open Exp_common
module Units = Tacos_util.Units
module Group = Tacos_groups.Group
module Plan = Tacos_groups.Plan

let torus dims = ("torus", Builders.torus dims)

let switch2d (s0, s1) =
  ( "2d-switch",
    Builders.two_level_switch ~bw:(Units.gbps 300., Units.gbps 25.) (s0, s1) )

let rfs dims =
  ( "3d-rfs",
    Builders.rfs3d ~bw:(Units.gbps 200., Units.gbps 100., Units.gbps 50.) dims )

let fabrics =
  let base = [ torus [| 4; 4; 4 |]; switch2d (16, 4); rfs (2, 4, 8) ] in
  let default =
    [ torus [| 8; 8; 4 |]; torus [| 8; 8; 8 |]; switch2d (32, 8); rfs (4, 8, 8) ]
  in
  let large = [ torus [| 16; 8; 8 |]; switch2d (32, 32); rfs (4, 8, 32) ] in
  match scale with
  | Small -> base
  | Default -> base @ default
  | Large -> base @ default @ large

let size = 64e6

(* Parallel column: the same hierarchical synthesis repeated at 1/2/4/8
   domains with a few randomized trials per sub-synthesis, so both axes of
   the shared pool (per-phase sub-synthesis fan-out and trial fan-out) are
   actually exercised. d=1 is the sequential reference; the others must
   compose bit-identical schedules. *)
let par_trials = 4
let par_domains = [ 1; 2; 4; 8 ]

let schedules_identical (a : Plan.t) (b : Plan.t) =
  let ra = a.Plan.result and rb = b.Plan.result in
  ra.Synth.schedule.Schedule.sends = rb.Synth.schedule.Schedule.sends
  && (match (ra.Synth.phases, rb.Synth.phases) with
     | Some (rs1, ag1), Some (rs2, ag2) ->
       rs1.Schedule.sends = rs2.Schedule.sends
       && ag1.Schedule.sends = ag2.Schedule.sends
     | None, None -> true
     | _ -> false)

let measure (family, topo) =
  let n = Topology.num_npus topo in
  let spec = Spec.make ~buffer_size:size ~pattern:Pattern.All_reduce ~npus:n () in
  let t0 = Unix.gettimeofday () in
  let flat = Synth.synthesize topo spec in
  let flat_wall = Unix.gettimeofday () -. t0 in
  let flat_time = simulate_schedule topo flat in
  let groups =
    match Plan.decompose topo Plan.Auto with
    | Ok gs -> gs
    | Error e -> failwith (Printf.sprintf "hierarchy: %s: %s" family e)
  in
  let t1 = Unix.gettimeofday () in
  let (plan : Plan.t), obs = with_obs (fun () -> Plan.synthesize topo spec ~groups) in
  let hier_wall = Unix.gettimeofday () -. t1 in
  let hier_time = simulate_schedule topo plan.Plan.result in
  let speedup = flat_wall /. hier_wall in
  let ratio = hier_time /. flat_time in
  (* 1/2/4/8-domain sweep of the same hierarchical synthesis. *)
  let par =
    List.map
      (fun d ->
        let t = Unix.gettimeofday () in
        let p = Plan.synthesize ~trials:par_trials ~domains:d topo spec ~groups in
        (d, Unix.gettimeofday () -. t, p))
      par_domains
  in
  let _, par_w1, par_p1 = List.hd par in
  let par_wall d =
    match List.find_opt (fun (d', _, _) -> d' = d) par with
    | Some (_, w, _) -> w
    | None -> nan
  in
  let par_speedup d = par_w1 /. par_wall d in
  let par_identical =
    List.for_all (fun (_, _, p) -> schedules_identical par_p1 p) par
  in
  record ~exp:"hierarchy"
    ([
       ("topology", Json.String family);
       ("npus", Json.Number (float_of_int n));
       ("flat_synthesis_seconds", Json.Number flat_wall);
       ("hier_synthesis_seconds", Json.Number hier_wall);
       ("synthesis_speedup", Json.Number speedup);
       ("flat_simulated_seconds", Json.Number flat_time);
       ("hier_simulated_seconds", Json.Number hier_time);
       ("time_ratio", Json.Number ratio);
       ("groups", Json.Number (float_of_int plan.Plan.groups));
       ("group_size", Json.Number (float_of_int plan.Plan.group_size));
       ("syntheses", Json.Number (float_of_int plan.Plan.syntheses));
       ("dedup_hits", Json.Number (float_of_int plan.Plan.dedup_hits));
       ("par_trials", Json.Number (float_of_int par_trials));
       ("par_identical", Json.Bool par_identical);
       ( "recommended_domains",
         Json.Number (float_of_int (Domain.recommended_domain_count ())) );
     ]
    @ List.map
        (fun (d, w, _) ->
          (Printf.sprintf "par_synthesis_seconds_d%d" d, Json.Number w))
        par
    @ List.filter_map
        (fun (d, _, _) ->
          if d = 1 then None
          else
            Some
              (Printf.sprintf "par_speedup_d%d" d, Json.Number (par_speedup d)))
        par
    @ [ ("obs", obs) ]);
  let main_row =
    [
      Printf.sprintf "%s %s" family (Topology.name topo);
      string_of_int n;
      Units.time_pp flat_wall;
      Units.time_pp hier_wall;
      Printf.sprintf "%.1fx" speedup;
      Units.time_pp flat_time;
      Units.time_pp hier_time;
      Printf.sprintf "%.2f" ratio;
      Printf.sprintf "%d/%d" plan.Plan.syntheses (plan.Plan.syntheses + plan.Plan.dedup_hits);
    ]
  in
  let par_row =
    [ Printf.sprintf "%s %s" family (Topology.name topo); string_of_int n ]
    @ List.map (fun (_, w, _) -> Units.time_pp w) par
    @ [
        Printf.sprintf "%.1fx" (par_speedup 4);
        Printf.sprintf "%.1fx" (par_speedup 8);
        (if par_identical then "yes" else "NO");
      ]
  in
  (main_row, par_row)

let run () =
  section "bench hierarchy: flat vs process-group synthesis (64 MB All-Reduce)";
  let rows = List.map measure fabrics in
  Tacos_util.Table.print
    ~header:
      [
        "fabric"; "NPUs"; "flat synth"; "hier synth"; "speedup"; "flat time";
        "hier time"; "ratio"; "synth/parts";
      ]
    (List.map fst rows);
  note "ratio = hierarchical / flat simulated collective time (lower is better)";
  section
    (Printf.sprintf
       "bench hierarchy: parallel synthesis sweep (trials=%d, shared domain pool)"
       par_trials);
  Tacos_util.Table.print
    ~header:
      [
        "fabric"; "NPUs"; "d=1"; "d=2"; "d=4"; "d=8"; "spd d4"; "spd d8";
        "identical";
      ]
    (List.map snd rows);
  note "identical = d>1 schedules bit-identical to d=1; host recommends %d domains"
    (Domain.recommended_domain_count ());
  flush_bench ~exp:"hierarchy"
