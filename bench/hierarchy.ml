(* Hierarchical (process-group) synthesis vs flat TACOS: synthesis
   wall-clock and end-to-end simulated collective time on Torus 3D,
   2D-Switch and 3D-RFS fabrics from 64 to 1024 NPUs. The hierarchical
   rows decompose with `Plan.Auto` (inter phase on the bottleneck
   dimension) and dedupe isomorphic groups through the registry
   fingerprint, so a fabric of G identical groups costs one intra
   synthesis regardless of G. *)

open Tacos_topology
open Tacos_collective
open Exp_common
module Units = Tacos_util.Units
module Group = Tacos_groups.Group
module Plan = Tacos_groups.Plan

let torus dims = ("torus", Builders.torus dims)

let switch2d (s0, s1) =
  ( "2d-switch",
    Builders.two_level_switch ~bw:(Units.gbps 300., Units.gbps 25.) (s0, s1) )

let rfs dims =
  ( "3d-rfs",
    Builders.rfs3d ~bw:(Units.gbps 200., Units.gbps 100., Units.gbps 50.) dims )

let fabrics =
  let base = [ torus [| 4; 4; 4 |]; switch2d (16, 4); rfs (2, 4, 8) ] in
  let default =
    [ torus [| 8; 8; 4 |]; torus [| 8; 8; 8 |]; switch2d (32, 8); rfs (4, 8, 8) ]
  in
  let large = [ torus [| 16; 8; 8 |]; switch2d (32, 32); rfs (4, 8, 32) ] in
  match scale with
  | Small -> base
  | Default -> base @ default
  | Large -> base @ default @ large

let size = 64e6

let measure (family, topo) =
  let n = Topology.num_npus topo in
  let spec = Spec.make ~buffer_size:size ~pattern:Pattern.All_reduce ~npus:n () in
  let t0 = Unix.gettimeofday () in
  let flat = Synth.synthesize topo spec in
  let flat_wall = Unix.gettimeofday () -. t0 in
  let flat_time = simulate_schedule topo flat in
  let groups =
    match Plan.decompose topo Plan.Auto with
    | Ok gs -> gs
    | Error e -> failwith (Printf.sprintf "hierarchy: %s: %s" family e)
  in
  let t1 = Unix.gettimeofday () in
  let (plan : Plan.t), obs = with_obs (fun () -> Plan.synthesize topo spec ~groups) in
  let hier_wall = Unix.gettimeofday () -. t1 in
  let hier_time = simulate_schedule topo plan.Plan.result in
  let speedup = flat_wall /. hier_wall in
  let ratio = hier_time /. flat_time in
  record ~exp:"hierarchy"
    [
      ("topology", Json.String family);
      ("npus", Json.Number (float_of_int n));
      ("flat_synthesis_seconds", Json.Number flat_wall);
      ("hier_synthesis_seconds", Json.Number hier_wall);
      ("synthesis_speedup", Json.Number speedup);
      ("flat_simulated_seconds", Json.Number flat_time);
      ("hier_simulated_seconds", Json.Number hier_time);
      ("time_ratio", Json.Number ratio);
      ("groups", Json.Number (float_of_int plan.Plan.groups));
      ("group_size", Json.Number (float_of_int plan.Plan.group_size));
      ("syntheses", Json.Number (float_of_int plan.Plan.syntheses));
      ("dedup_hits", Json.Number (float_of_int plan.Plan.dedup_hits));
      ("obs", obs);
    ];
  [
    Printf.sprintf "%s %s" family (Topology.name topo);
    string_of_int n;
    Units.time_pp flat_wall;
    Units.time_pp hier_wall;
    Printf.sprintf "%.1fx" speedup;
    Units.time_pp flat_time;
    Units.time_pp hier_time;
    Printf.sprintf "%.2f" ratio;
    Printf.sprintf "%d/%d" plan.Plan.syntheses (plan.Plan.syntheses + plan.Plan.dedup_hits);
  ]

let run () =
  section "bench hierarchy: flat vs process-group synthesis (64 MB All-Reduce)";
  let rows = List.map measure fabrics in
  Tacos_util.Table.print
    ~header:
      [
        "fabric"; "NPUs"; "flat synth"; "hier synth"; "speedup"; "flat time";
        "hier time"; "ratio"; "synth/parts";
      ]
    rows;
  note "ratio = hierarchical / flat simulated collective time (lower is better)";
  flush_bench ~exp:"hierarchy"
