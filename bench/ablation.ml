(* Ablations of TACOS' design choices (DESIGN.md §1.1):
   (a) §IV-F lowest-cost-link priority — matters exactly on heterogeneous
       fabrics;
   (b) chunk granularity — the latency/bandwidth knob of §II-A;
   (c) randomized restarts — how much trial diversity buys;
   (d) parallel domains — the multicore scaling the paper got from 64
       threads. *)

open Tacos_topology
open Tacos_collective
open Exp_common
module Table = Tacos_util.Table
module Units = Tacos_util.Units

let heterogeneous_topologies () =
  [
    ("3D-RFS 2x4x8", Builders.rfs3d ~bw:(200e9, 100e9, 50e9) (2, 4, 8));
    ("DragonFly 4x5", Builders.dragonfly ~bw:(400e9, 200e9) ());
    ("3D Torus 4x4x4 (homog.)", Builders.torus ~link:(Link.of_bandwidth 25e9) [| 4; 4; 4 |]);
  ]

let run_priority () =
  section "Ablation (a) — lowest-cost-link priority (§IV-F)";
  let size = 256e6 in
  let rows =
    List.map
      (fun (name, topo) ->
        let time prefer =
          let spec = spec ~chunks_per_npu:16 ~size topo Pattern.All_reduce in
          simulate_schedule topo (Synth.synthesize ~prefer_cheap_links:prefer topo spec)
        in
        let with_priority = time true and without = time false in
        [
          name;
          Units.time_pp with_priority;
          Units.time_pp without;
          Printf.sprintf "%.2fx" (without /. with_priority);
        ])
      (heterogeneous_topologies ())
  in
  Table.print ~header:[ "Topology"; "cheap-first"; "random order"; "penalty" ] rows;
  note "finding: the event-driven matcher is robust to the matching order —";
  note "expensive links simply stay busy longer, so the clock ordering already";
  note "encodes most of the §IV-F priority; what remains load-bearing is the";
  note "parallel-link case (a chunk must ride the faster of two direct links),";
  note "which the unit tests pin down"

let run_chunks () =
  section "Ablation (b) — chunk granularity, 256 MB All-Reduce on 3D-RFS";
  let topo = Builders.rfs3d ~bw:(200e9, 100e9, 50e9) (2, 4, 8) in
  let size = 256e6 in
  let ideal = Ideal.all_reduce_time topo ~size in
  let rows =
    List.map
      (fun k ->
        let t = tacos_time ~chunks_per_npu:k topo ~size Pattern.All_reduce in
        [ string_of_int k; Units.time_pp t; pct (ideal /. t) ])
      [ 1; 2; 4; 8; 16; 32 ]
  in
  Table.print ~header:[ "chunks/NPU"; "time"; "efficiency" ] rows;
  note "finer chunks let the scarce links pipeline; returns diminish once";
  note "per-chunk latency overheads bite"

let run_trials () =
  section "Ablation (c) — randomized restarts, All-Gather on 2D Mesh 5x5";
  let topo = Builders.mesh ~link:(Link.of_bandwidth 50e9) [| 5; 5 |] in
  let size = 64e6 in
  let rows =
    List.map
      (fun trials ->
        let r = tacos_result ~chunks_per_npu:1 ~trials topo ~size Pattern.All_gather in
        [
          string_of_int trials;
          Units.time_pp r.Synth.collective_time;
          Units.time_pp r.Synth.stats.Synth.wall_seconds;
        ])
      [ 1; 2; 4; 8; 16 ]
  in
  Table.print ~header:[ "trials"; "best makespan"; "synthesis time" ] rows

let run_domains () =
  section "Ablation (d) — parallel synthesis domains (8 trials each)";
  let topo = Builders.mesh ~link:(Link.of_bandwidth 50e9) [| 12; 12 |] in
  let spec' = spec ~size:1e9 topo Pattern.All_reduce in
  let rows =
    List.map
      (fun domains ->
        let t0 = Unix.gettimeofday () in
        let r = Synth.synthesize ~trials:8 ~domains topo spec' in
        let wall = Unix.gettimeofday () -. t0 in
        [
          string_of_int domains;
          Units.time_pp wall;
          Units.time_pp r.Synth.collective_time;
        ])
      [ 1; 2 ]
  in
  Table.print ~header:[ "domains"; "wall clock"; "best makespan" ] rows;
  note "same seed => same best schedule regardless of domain count";
  note "this machine reports %d core(s): spawning more domains than cores"
    (Domain.recommended_domain_count ());
  note "only adds overhead — the speedup needs the paper's many-core host"

let run_link_model () =
  section "Ablation (e) — simulator link model (pipelined vs blocking alpha)";
  let link = Link.of_bandwidth ~alpha:30e-9 150e9 in
  let topo = Builders.ring ~link 64 in
  let sizes = [ (1e3, "1 KB"); (1e9, "1 GB") ] in
  let rows =
    List.concat_map
      (fun (size, label) ->
        let time model algo =
          let spec = spec ~size topo Pattern.All_reduce in
          let program = Algo.program algo topo spec in
          (Tacos_sim.Engine.run ~model topo program).Tacos_sim.Engine.finish_time
        in
        List.map
          (fun (mname, model) ->
            let ring = time model Algo.ring in
            let direct = time model Algo.Direct in
            [
              label;
              mname;
              Units.time_pp ring;
              Units.time_pp direct;
              (if direct < ring then "Direct" else "Ring");
            ])
          [
            ("pipelined", Tacos_sim.Engine.Pipelined_alpha);
            ("blocking", Tacos_sim.Engine.Blocking_alpha);
          ])
      sizes
  in
  Table.print ~header:[ "Size"; "alpha model"; "Ring"; "Direct"; "winner" ] rows;
  note "Fig. 2(b)'s latency-bound Direct-beats-Ring crossover exists only";
  note "under the pipelined-alpha model (DESIGN.md §1.4); bandwidth-bound";
  note "results are model-independent"

let run () =
  run_priority ();
  run_chunks ();
  run_trials ();
  run_domains ();
  run_link_model ()
