(* Mid-flight fault experiment: a link dies while the collective is running.

   PCCL/TACCL-style deployments treat a schedule as a static artifact: on a
   fabric change they either keep replaying it (the engine reroutes dead
   hops store-and-forward) or throw it away and re-synthesize from scratch.
   This sweep measures the third option this reproduction adds — incremental
   suffix repair (Resilience.repair): keep every send that completed before
   the fault and re-synthesize only the unmet postconditions from the
   actual chunk positions. Three completion times per row, timed from the
   same fault instant:

     - replay:  healthy schedule driven through the timed fault by the
                engine (in-flight abort + reroute, no re-planning);
     - repair:  suffix re-synthesis seeded with the positions at the fault;
     - full:    fault time + full re-synthesis on the degraded fabric.

   Rows land in BENCH_midflight.json; synthesis wall-clocks are recorded so
   the repair-is-cheaper claim is measured, not asserted. *)

open Tacos_topology
open Tacos_collective
open Exp_common
module Table = Tacos_util.Table
module Units = Tacos_util.Units
module Engine = Tacos_sim.Engine
module Program = Tacos_sim.Program
module Fault = Tacos_resilience.Fault
module Resilience = Tacos_resilience.Resilience

let size = match scale with Small -> 16e6 | _ -> 64e6

let fractions =
  match scale with
  | Small -> [ 0.4 ]
  | Default -> [ 0.2; 0.4; 0.7 ]
  | Large -> [ 0.1; 0.25; 0.5; 0.75; 0.9 ]

let cases () =
  let mesh = ("2D Mesh 5x5", Builders.mesh [| 5; 5 |]) in
  let torus = ("2D Torus 4x4", Builders.torus [| 4; 4 |]) in
  match scale with
  | Small -> [ (mesh, Pattern.All_gather) ]
  | _ ->
    [ (mesh, Pattern.All_gather); (torus, Pattern.All_gather); (mesh, Pattern.All_reduce) ]

(* The victim: the first link still scheduled to carry traffic after the
   fault whose death keeps the fabric strongly connected — deterministic,
   and guaranteed to actually perturb the suffix. *)
let pick_victim topo (healthy : Synth.result) ~at =
  let future (s : Schedule.send) = s.Schedule.start > at in
  let connected_kill (s : Schedule.send) =
    Topology.is_strongly_connected (Fault.apply topo [ Fault.Kill_link s.Schedule.edge ])
  in
  List.find_opt
    (fun s -> future s && connected_kill s)
    healthy.Synth.schedule.Schedule.sends

let measure name topo pattern frac =
  let sp =
    Spec.make ~chunks_per_npu:2 ~buffer_size:size ~pattern
      ~npus:(Topology.num_npus topo) ()
  in
  let healthy = Synth.synthesize topo sp in
  let chunk_size = Spec.chunk_size sp in
  let program () = Program.of_schedule ~chunk_size healthy.Synth.schedule in
  let healthy_time = (Engine.run topo (program ())).Engine.finish_time in
  let at = frac *. healthy_time in
  match pick_victim topo healthy ~at with
  | None ->
    note "%s %s @%.0f%%: no connected-surviving victim after the fault time; skipped"
      name (Pattern.name pattern) (100. *. frac);
    None
  | Some victim_send ->
    let victim = victim_send.Schedule.edge in
    let faults = [ Fault.Kill_link victim ] in
    let replay =
      match Engine.run ~faults:(Fault.timeline ~at topo faults) topo (program ()) with
      | r when r.Engine.stranded = [] -> Some r.Engine.finish_time
      | _ -> None
      | exception Engine.Simulation_error _ -> None
    in
    let repair, repair_obs =
      with_obs (fun () -> Resilience.repair ~at topo faults healthy)
    in
    let full = Resilience.synthesize ~faults topo sp in
    let repair_completion, repair_wall, strategy, verified =
      match repair with
      | Ok r ->
        ( Some r.Resilience.completion_time,
          Some r.Resilience.synth_wall_seconds,
          Resilience.strategy_name r.Resilience.strategy,
          (match r.Resilience.verified with Ok () -> true | Error _ -> false) )
      | Error f -> (None, None, "FAILED(" ^ f.Resilience.stage ^ ")", false)
    in
    let full_completion, full_wall =
      match full with
      | Ok o -> (Some (at +. o.Resilience.simulated_time), Some o.Resilience.wall_seconds)
      | Error _ -> (None, None)
    in
    let num = Option.value ~default:Float.nan in
    let wall_speedup =
      match (repair_wall, full_wall) with
      | Some r, Some f when r > 0. -> Some (f /. r)
      | _ -> None
    in
    record ~exp:"midflight"
      [
        ("topology", Json.String name);
        ("pattern", Json.String (Pattern.name pattern));
        ("buffer_bytes", Json.Number size);
        ("fault_fraction", Json.Number frac);
        ("at_seconds", Json.Number at);
        ("victim_link", Json.Number (float_of_int victim));
        ("healthy_seconds", Json.Number healthy_time);
        ("replay_seconds", Json.Number (num replay));
        ("repair_strategy", Json.String strategy);
        ("repair_verified", Json.Bool verified);
        ("repair_completion_seconds", Json.Number (num repair_completion));
        ("repair_synth_wall_seconds", Json.Number (num repair_wall));
        ("full_completion_seconds", Json.Number (num full_completion));
        ("full_synth_wall_seconds", Json.Number (num full_wall));
        ("repair_wall_speedup", Json.Number (num wall_speedup));
        ("obs", repair_obs);
      ];
    Some
      [
        name;
        Pattern.name pattern;
        Printf.sprintf "%.0f%%" (100. *. frac);
        Units.time_pp (num replay);
        Units.time_pp (num repair_completion) ^ (if verified then "" else " !");
        Units.time_pp (num full_completion);
        (match wall_speedup with
        | Some s -> Printf.sprintf "%.1fx" s
        | None -> "n/a");
        strategy;
      ]

let run () =
  section "Mid-flight faults — replay vs incremental repair vs full re-synthesis";
  let rows = ref [] in
  List.iter
    (fun ((name, topo), pattern) ->
      List.iter
        (fun frac ->
          match measure name topo pattern frac with
          | Some row -> rows := !rows @ [ row ]
          | None -> ())
        fractions)
    (cases ());
  Table.print
    ~header:
      [ "Topology"; "pattern"; "fault@"; "replay"; "repair"; "full"; "wall speedup"; "strategy" ]
    !rows;
  note "completion times are absolute (fault lands mid-collective)";
  note "wall speedup: full re-synthesis wall-clock / suffix-repair wall-clock";
  flush_bench ~exp:"midflight"
