(* Mid-flight fault experiment: a link dies while the collective is running.

   PCCL/TACCL-style deployments treat a schedule as a static artifact: on a
   fabric change they either keep replaying it (the engine reroutes dead
   hops store-and-forward) or throw it away and re-synthesize from scratch.
   This sweep measures the third option this reproduction adds — incremental
   suffix repair (Resilience.repair): keep every send that completed before
   the fault and re-synthesize only the unmet postconditions from the
   actual chunk positions. Three completion times per row, timed from the
   same fault instant:

     - replay:  healthy schedule driven through the timed fault by the
                engine (in-flight abort + reroute, no re-planning);
     - repair:  suffix re-synthesis seeded with the positions at the fault;
     - full:    fault time + full re-synthesis on the degraded fabric.

   Rows land in BENCH_midflight.json; synthesis wall-clocks are recorded so
   the repair-is-cheaper claim is measured, not asserted. *)

open Tacos_topology
open Tacos_collective
open Exp_common
module Table = Tacos_util.Table
module Units = Tacos_util.Units
module Engine = Tacos_sim.Engine
module Program = Tacos_sim.Program
module Fault = Tacos_resilience.Fault
module Resilience = Tacos_resilience.Resilience

let size = match scale with Small -> 16e6 | _ -> 64e6

let fractions =
  match scale with
  | Small -> [ 0.4 ]
  | Default -> [ 0.2; 0.4; 0.7 ]
  | Large -> [ 0.1; 0.25; 0.5; 0.75; 0.9 ]

let cases () =
  let mesh = ("2D Mesh 5x5", Builders.mesh [| 5; 5 |]) in
  let torus = ("2D Torus 4x4", Builders.torus [| 4; 4 |]) in
  match scale with
  | Small -> [ (mesh, Pattern.All_gather) ]
  | _ ->
    [ (mesh, Pattern.All_gather); (torus, Pattern.All_gather); (mesh, Pattern.All_reduce) ]

(* The victim: the first link still scheduled to carry traffic after the
   fault whose death keeps the fabric strongly connected — deterministic,
   and guaranteed to actually perturb the suffix. *)
let pick_victim topo (healthy : Synth.result) ~at =
  let future (s : Schedule.send) = s.Schedule.start > at in
  let connected_kill (s : Schedule.send) =
    Topology.is_strongly_connected (Fault.apply topo [ Fault.Kill_link s.Schedule.edge ])
  in
  List.find_opt
    (fun s -> future s && connected_kill s)
    healthy.Synth.schedule.Schedule.sends

let measure name topo pattern frac =
  let sp =
    Spec.make ~chunks_per_npu:2 ~buffer_size:size ~pattern
      ~npus:(Topology.num_npus topo) ()
  in
  let healthy = Synth.synthesize topo sp in
  let chunk_size = Spec.chunk_size sp in
  let program () = Program.of_schedule ~chunk_size healthy.Synth.schedule in
  let healthy_time = (Engine.run topo (program ())).Engine.finish_time in
  let at = frac *. healthy_time in
  match pick_victim topo healthy ~at with
  | None ->
    note "%s %s @%.0f%%: no connected-surviving victim after the fault time; skipped"
      name (Pattern.name pattern) (100. *. frac);
    None
  | Some victim_send ->
    let victim = victim_send.Schedule.edge in
    let faults = [ Fault.Kill_link victim ] in
    let replay =
      match Engine.run ~faults:(Fault.timeline ~at topo faults) topo (program ()) with
      | r when r.Engine.stranded = [] -> Some r.Engine.finish_time
      | _ -> None
      | exception Engine.Simulation_error _ -> None
    in
    let repair, repair_obs =
      with_obs (fun () -> Resilience.repair ~at topo faults healthy)
    in
    let full = Resilience.synthesize ~faults topo sp in
    let repair_completion, repair_wall, strategy, verified =
      match repair with
      | Ok r ->
        ( Some r.Resilience.completion_time,
          Some r.Resilience.synth_wall_seconds,
          Resilience.strategy_name r.Resilience.strategy,
          (match r.Resilience.verified with Ok () -> true | Error _ -> false) )
      | Error f -> (None, None, "FAILED(" ^ f.Resilience.stage ^ ")", false)
    in
    let full_completion, full_wall =
      match full with
      | Ok o -> (Some (at +. o.Resilience.simulated_time), Some o.Resilience.wall_seconds)
      | Error _ -> (None, None)
    in
    let num = Option.value ~default:Float.nan in
    let wall_speedup =
      match (repair_wall, full_wall) with
      | Some r, Some f when r > 0. -> Some (f /. r)
      | _ -> None
    in
    record ~exp:"midflight"
      [
        ("topology", Json.String name);
        ("pattern", Json.String (Pattern.name pattern));
        ("buffer_bytes", Json.Number size);
        ("fault_fraction", Json.Number frac);
        ("at_seconds", Json.Number at);
        ("victim_link", Json.Number (float_of_int victim));
        ("healthy_seconds", Json.Number healthy_time);
        ("replay_seconds", Json.Number (num replay));
        ("repair_strategy", Json.String strategy);
        ("repair_verified", Json.Bool verified);
        ("repair_completion_seconds", Json.Number (num repair_completion));
        ("repair_synth_wall_seconds", Json.Number (num repair_wall));
        ("full_completion_seconds", Json.Number (num full_completion));
        ("full_synth_wall_seconds", Json.Number (num full_wall));
        ("repair_wall_speedup", Json.Number (num wall_speedup));
        ("obs", repair_obs);
      ];
    Some
      [
        name;
        Pattern.name pattern;
        Printf.sprintf "%.0f%%" (100. *. frac);
        Units.time_pp (num replay);
        Units.time_pp (num repair_completion) ^ (if verified then "" else " !");
        Units.time_pp (num full_completion);
        (match wall_speedup with
        | Some s -> Printf.sprintf "%.1fx" s
        | None -> "n/a");
        strategy;
      ]

(* --- multi-epoch timelines ------------------------------------------------ *)

(* Fault sequences: 1, 2 or 3 link kills landing at successive instants of
   one collective, each repaired incrementally on top of the previous repair
   (Resilience.repair_timeline). Victims are picked like [pick_victim] —
   still-scheduled-after-the-fault, cumulative kill set keeps the fabric
   strongly connected — so every timeline is deterministic and survivable. *)
let epoch_fractions = function 1 -> [ 0.4 ] | 2 -> [ 0.3; 0.55 ] | _ -> [ 0.3; 0.55; 0.75 ]

let pick_victims topo (healthy : Synth.result) ~ats =
  let sends = healthy.Synth.schedule.Schedule.sends in
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | at :: rest -> (
      let already = List.map snd acc in
      let ok (s : Schedule.send) =
        s.Schedule.start > at
        && (not (List.mem s.Schedule.edge already))
        && Topology.is_strongly_connected
             (Fault.apply topo
                (List.map (fun e -> Fault.Kill_link e) (s.Schedule.edge :: already)))
      in
      match List.find_opt ok sends with
      | Some s -> go ((at, s.Schedule.edge) :: acc) rest
      | None -> None)
  in
  go [] ats

let measure_multi name topo pattern epochs =
  let sp =
    Spec.make ~chunks_per_npu:2 ~buffer_size:size ~pattern
      ~npus:(Topology.num_npus topo) ()
  in
  let healthy = Synth.synthesize topo sp in
  let chunk_size = Spec.chunk_size sp in
  let healthy_time =
    (Engine.run topo (Program.of_schedule ~chunk_size healthy.Synth.schedule))
      .Engine.finish_time
  in
  let ats = List.map (fun f -> f *. healthy_time) (epoch_fractions epochs) in
  match pick_victims topo healthy ~ats with
  | None ->
    note "%s %s x%d: no connected-surviving victim sequence; skipped" name
      (Pattern.name pattern) epochs;
    None
  | Some victims -> (
    let events =
      List.map (fun (at, edge) -> (at, [ Fault.Kill_link edge ])) victims
    in
    let outcome, obs =
      with_obs (fun () ->
          let tr = Resilience.repair_timeline ~events topo healthy in
          (* Read while the registry is still enabled: how much matching work
             the whole timeline cost, and whether it reused the cached TEN. *)
          ( tr,
            Obs.value (Obs.counter "synth.matches"),
            Obs.value (Obs.counter "synth.repair_ten_reuse") ))
    in
    let tr, repair_matches, ten_reuse = outcome in
    match tr with
    | Error f ->
      note "%s %s x%d: timeline repair failed at stage %s; skipped" name
        (Pattern.name pattern) epochs f.Resilience.stage;
      None
    | Ok tr ->
      let strategies =
        String.concat "+"
          (List.map
             (fun (e : Resilience.epoch) ->
               Resilience.strategy_name e.Resilience.repaired.Resilience.strategy)
             tr.Resilience.epochs)
      in
      let verified =
        match tr.Resilience.verified with Ok () -> true | Error _ -> false
      in
      let healthy_matches = healthy.Synth.stats.Synth.matches in
      let fewer_matches = repair_matches < healthy_matches * epochs in
      record ~exp:"midflight_multi"
        [
          ("topology", Json.String name);
          ("pattern", Json.String (Pattern.name pattern));
          ("buffer_bytes", Json.Number size);
          ("epochs", Json.Number (float_of_int epochs));
          ( "at_seconds",
            Json.Array (List.map (fun (at, _) -> Json.Number at) victims) );
          ( "victim_links",
            Json.Array
              (List.map (fun (_, e) -> Json.Number (float_of_int e)) victims) );
          ("healthy_seconds", Json.Number healthy_time);
          ("completion_seconds", Json.Number tr.Resilience.completion_time);
          ("strategies", Json.String strategies);
          ("verified", Json.Bool verified);
          ("healthy_matches", Json.Number (float_of_int healthy_matches));
          ("repair_matches", Json.Number (float_of_int repair_matches));
          ("repair_fewer_matches", Json.Bool fewer_matches);
          ("ten_reused", Json.Bool (ten_reuse > 0));
          ("obs", obs);
        ];
      Some
        [
          name;
          Pattern.name pattern;
          string_of_int epochs;
          Units.time_pp healthy_time;
          Units.time_pp tr.Resilience.completion_time ^ (if verified then "" else " !");
          strategies;
          Printf.sprintf "%d/%d%s" repair_matches (healthy_matches * epochs)
            (if fewer_matches then "" else " !");
        ])

let run () =
  section "Mid-flight faults — replay vs incremental repair vs full re-synthesis";
  let rows = ref [] in
  List.iter
    (fun ((name, topo), pattern) ->
      List.iter
        (fun frac ->
          match measure name topo pattern frac with
          | Some row -> rows := !rows @ [ row ]
          | None -> ())
        fractions)
    (cases ());
  Table.print
    ~header:
      [ "Topology"; "pattern"; "fault@"; "replay"; "repair"; "full"; "wall speedup"; "strategy" ]
    !rows;
  note "completion times are absolute (fault lands mid-collective)";
  note "wall speedup: full re-synthesis wall-clock / suffix-repair wall-clock";
  flush_bench ~exp:"midflight";
  section "Multi-epoch fault timelines — incremental repair across fault sequences";
  let rows = ref [] in
  List.iter
    (fun ((name, topo), pattern) ->
      List.iter
        (fun epochs ->
          match measure_multi name topo pattern epochs with
          | Some row -> rows := !rows @ [ row ]
          | None -> ())
        [ 1; 2; 3 ])
    (cases ());
  Table.print
    ~header:
      [ "Topology"; "pattern"; "epochs"; "healthy"; "completion"; "strategies"; "matches" ]
    !rows;
  note "matches: timeline-repair link matches / healthy matches x epochs (repair searches less)";
  flush_bench ~exp:"midflight_multi"
