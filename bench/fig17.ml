(* Fig. 17(a): TACOS vs the MultiTree-like synthesizer (and Themis) on 2D
   Torus and 2D Mesh (alpha = 0.15us, 1/beta = 16 GB/s): comparable for
   small collectives, but MultiTree saturates once collectives span several
   chunks because it cannot overlap them.
   Fig. 17(b): TACOS vs the C-Cube-like double-tree algorithm and the
   multi-ring Ring baseline on DGX-1 (alpha = 0.7us, 1/beta = 25 GB/s). *)

open Tacos_topology
open Tacos_collective
open Exp_common
module Table = Tacos_util.Table
module Units = Tacos_util.Units

let run_a () =
  section "Fig. 17(a) — vs MultiTree on 2D Torus / 2D Mesh 5x5";
  let link = Link.of_bandwidth ~alpha:0.15e-6 16e9 in
  let sizes = [ 64e3; 1e6; 4e6; 16e6; 64e6 ] in
  List.iter
    (fun (name, topo) ->
      Printf.printf "\n--- %s ---\n" name;
      let rows =
        List.map
          (fun size ->
            (* Chunk granularity grows with the collective, which is what
               separates overlapping schedulers from MultiTree. *)
            let k = max 1 (min 16 (int_of_float (size /. 1e6))) in
            let sp = Spec.make ~chunks_per_npu:k ~buffer_size:size ~pattern:Pattern.All_reduce ~npus:25 () in
            let mt = Algo.collective_time Algo.Multitree topo sp in
            let themis = baseline_time (Algo.Themis { chunks = 64 }) topo ~size Pattern.All_reduce in
            let tacos = tacos_time ~chunks_per_npu:k topo ~size Pattern.All_reduce in
            let ideal = Ideal.all_reduce_time topo ~size in
            let bws = List.map (fun t -> bandwidth ~size t) [ mt; themis; tacos ] in
            (Units.bytes_pp size :: normalized_row bws) @ [ pct (ideal /. tacos) ])
          sizes
      in
      Table.print
        ~header:[ "Size"; "MultiTree"; "Themis-64"; "TACOS"; "TACOS eff" ]
        rows)
    [
      ("2D Torus 5x5", Builders.torus ~link [| 5; 5 |]);
      ("2D Mesh 5x5", Builders.mesh ~link [| 5; 5 |]);
    ];
  note "paper: TACOS 1.32x over MultiTree on average; MultiTree saturates";
  note "past 1 MB (no chunk overlap); TACOS 92.15%%/82.60%% of ideal";
  note "(>100%% efficiency is possible on asymmetric topologies: the closed-";
  note "form bound assumes the reduce phase ingests as much as the gather";
  note "phase, which corner NPUs do not need)"

let run_b () =
  section "Fig. 17(b) — vs C-Cube on DGX-1";
  let topo = Builders.dgx1 () in
  let sizes = [ 1e6; 16e6; 256e6; 1e9 ] in
  let rows =
    List.map
      (fun size ->
        let sp k = Spec.make ~chunks_per_npu:k ~buffer_size:size ~pattern:Pattern.All_reduce ~npus:8 () in
        let ccube = Algo.collective_time Algo.Ccube topo (sp 4) in
        let ring = baseline_time Algo.ring topo ~size Pattern.All_reduce in
        let tacos = tacos_time ~chunks_per_npu:16 topo ~size Pattern.All_reduce in
        let ideal = Ideal.all_reduce_time topo ~size in
        let bws = List.map (fun t -> bandwidth ~size t) [ ccube; ring; tacos ] in
        (Units.bytes_pp size :: normalized_row bws)
        @ [ pct (ideal /. ccube); pct (ideal /. tacos) ])
      sizes
  in
  Table.print
    ~header:[ "Size"; "C-Cube"; "Ring"; "TACOS"; "C-Cube eff"; "TACOS eff" ]
    rows;
  note "paper: TACOS 2.86x over C-Cube (which idles 2 of 6 NVLinks/GPU);";
  note "C-Cube 32.63%% vs TACOS 93.26%% vs multi-ring Ring 99.61%% of ideal"

let run () =
  run_a ();
  run_b ()
