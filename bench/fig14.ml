(* Fig. 14: the All-Gather algorithm TACOS synthesizes for a homogeneous
   3x3 2D Mesh, shown as its TEN grid plus each chunk's static route —
   contention-free by construction. *)

open Tacos_topology
open Tacos_collective
open Exp_common
module Ten = Tacos_ten.Ten
module Schedule = Tacos_collective.Schedule

let run () =
  section "Fig. 14 — TACOS All-Gather on a 3x3 2D Mesh";
  let topo = Builders.mesh ~link:(Link.make ~alpha:1. ~beta:0.) [| 3; 3 |] in
  let result = tacos_result ~chunks_per_npu:1 ~trials:8 topo ~size:9. Pattern.All_gather in
  (match Synth.verify topo result with
  | Ok () -> note "schedule validated: congestion-free, postconditions met"
  | Error e -> note "VALIDATION FAILED: %s" e);
  let ten = Ten.of_schedule topo ~span_cost:1. result.Synth.schedule in
  Printf.printf "%s" (Ten.render ten);
  Printf.printf "\nChunk routes (chunk c starts at NPU c):\n";
  for c = 0 to 8 do
    let hops =
      List.map
        (fun (s : Schedule.send) -> Printf.sprintf "%d->%d@t%d" s.src s.dst (int_of_float s.start))
        (Schedule.chunk_path result.Synth.schedule c)
    in
    Printf.printf "  chunk %d: %s\n" c (String.concat " " hops)
  done;
  let utils = List.init (Ten.spans ten) (fun s -> Ten.utilization ten ~span:s) in
  note "spans: %d; per-span utilization: %s" (Ten.spans ten)
    (String.concat " " (List.map pct utils));
  note "paper: links idle only while chunks ramp up/drain at the asymmetric edges"
