(* Fig. 10: All-Gather synthesis over four 4-NPU topologies with shrinking
   connectivity (12, 8, 6 and 4 links). Sparser networks force TACOS to
   expand the TEN for more time spans, but every span stays maximally
   matched. Rendered as the TEN grids of the paper. *)

open Tacos_topology
open Tacos_collective
open Exp_common
module Ten = Tacos_ten.Ten
module Schedule = Tacos_collective.Schedule

let unit_link = Link.make ~alpha:1. ~beta:0.

let topologies () =
  let six_links () =
    (* Unidirectional ring plus the two diagonals. *)
    let t = Topology.create ~name:"Ring+diagonals" 4 in
    List.iter
      (fun (s, d) -> ignore (Topology.add_link t ~src:s ~dst:d unit_link))
      [ (0, 1); (1, 2); (2, 3); (3, 0); (0, 2); (1, 3) ];
    t
  in
  [
    ("(a) FullyConnected, 12 links", Builders.fully_connected ~link:unit_link 4);
    ("(b) Bidirectional Ring, 8 links", Builders.ring ~link:unit_link 4);
    ("(c) Ring + diagonals, 6 links", six_links ());
    ("(d) Unidirectional Ring, 4 links", Builders.ring ~link:unit_link ~bidirectional:false 4);
  ]

let run () =
  section "Fig. 10 — All-Gather synthesis vs connectivity (4 NPUs)";
  List.iter
    (fun (name, topo) ->
      let result = tacos_result ~chunks_per_npu:1 ~trials:8 topo ~size:4. Pattern.All_gather in
      let spans = int_of_float (Float.round result.Synth.collective_time) in
      Printf.printf "\n--- %s: %d link(s), %d time span(s) ---\n" name
        (Topology.num_links topo) spans;
      let ten = Ten.of_schedule topo ~span_cost:1. result.Synth.schedule in
      print_string (Ten.render ten);
      let utils =
        List.init (Ten.spans ten) (fun s -> Ten.utilization ten ~span:s)
      in
      note "per-span link utilization: %s"
        (String.concat " " (List.map pct utils)))
    (topologies ());
  note "paper: FC finishes in one shot (Direct); sparser nets need more spans"
