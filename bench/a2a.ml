(* Extension experiment: All-to-All (the MoE dispatch pattern) synthesized
   by time-space routing (Tacos.Alltoall) versus the Direct baseline, on
   topologies where blind pairwise exchange congests. Direct *is* the
   optimal All-to-All on FullyConnected — the reservation router must match
   it there and win where routing collides. *)

open Tacos_topology
open Tacos_collective
open Exp_common
module Table = Tacos_util.Table
module Units = Tacos_util.Units
module Alltoall = Tacos.Alltoall

let size = 64e6

let topologies () =
  let link = Link.of_bandwidth 50e9 in
  [
    ("FullyConnected-8", Builders.fully_connected ~link 8);
    ("2D Mesh 4x4", Builders.mesh ~link [| 4; 4 |]);
    ("2D Torus 4x4", Builders.torus ~link [| 4; 4 |]);
    ("DragonFly 4x5", Builders.dragonfly ~bw:(Units.gbps 400., Units.gbps 200.) ());
  ]

let run () =
  section "All-to-All — time-space routed synthesis vs Direct (64 MB)";
  let rows =
    List.map
      (fun (name, topo) ->
        let n = Topology.num_npus topo in
        let s =
          Spec.make ~chunks_per_npu:2 ~buffer_size:size ~pattern:Pattern.All_to_all
            ~npus:n ()
        in
        let result = Alltoall.synthesize topo s in
        (match Schedule.validate topo s result.Synth.schedule with
        | Ok () -> ()
        | Error e -> failwith ("invalid All-to-All schedule: " ^ e));
        let program =
          Tacos_sim.Program.of_schedule ~chunk_size:(Spec.chunk_size s)
            result.Synth.schedule
        in
        let tacos = (Tacos_sim.Engine.run topo program).Tacos_sim.Engine.finish_time in
        let direct = Algo.collective_time Algo.Direct topo s in
        [
          name;
          string_of_int n;
          Units.time_pp direct;
          Units.time_pp tacos;
          Printf.sprintf "%.2fx" (direct /. tacos);
        ])
      (topologies ())
  in
  Table.print
    ~header:[ "Topology"; "NPUs"; "Direct"; "TACOS-A2A"; "speedup" ]
    rows;
  note "this pattern is outside the paper's Table III; see Alltoall's";
  note "interface docs for why the matching loop cannot express it"
