(* Table V: All-Reduce collective time on multi-node 3D-RFS systems (2x4xN,
   16 to 128 NPUs), normalized over TACOS, with synthesis times for the
   synthesizers. The paper's TACCL could not synthesize 128 NPUs at all
   (NP-hard blow-up); our stand-in TACCL-like router runs but keeps losing
   on quality. *)

open Tacos_topology
open Tacos_collective
open Exp_common
module Table = Tacos_util.Table
module Units = Tacos_util.Units

let size = 64e6
let gbps = Units.gbps

let run () =
  section "Table V — multi-node 3D-RFS (2x4xN), All-Reduce, normalized to TACOS";
  let nodes = match scale with Small -> [ 2; 4 ] | Default | Large -> [ 2; 4; 8; 16 ] in
  let rows =
    List.map
      (fun last_dim ->
        let topo =
          Builders.rfs3d ~bw:(gbps 200., gbps 100., gbps 50.) (2, 4, last_dim)
        in
        let npus = Topology.num_npus topo in
        let t0 = Unix.gettimeofday () in
        let tacos = tacos_result ~chunks_per_npu:16 topo ~size Pattern.All_reduce in
        let tacos_synth = Unix.gettimeofday () -. t0 in
        let tacos_time = simulate_schedule topo tacos in
        let t1 = Unix.gettimeofday () in
        let taccl = baseline_time Algo.Taccl_like topo ~size Pattern.All_reduce in
        let taccl_synth = Unix.gettimeofday () -. t1 in
        let ring = baseline_time Algo.ring topo ~size Pattern.All_reduce in
        let rhd = baseline_time Algo.Rhd topo ~size Pattern.All_reduce in
        let direct = baseline_time Algo.Direct topo ~size Pattern.All_reduce in
        let ideal = Ideal.all_reduce_time topo ~size in
        let ratio t = Printf.sprintf "%.2f" (t /. tacos_time) in
        [
          Printf.sprintf "%d (%d)" npus last_dim;
          Printf.sprintf "%s (%s)" (Units.time_pp tacos_time) (Units.time_pp tacos_synth);
          Printf.sprintf "%s (%s)" (ratio taccl) (Units.time_pp taccl_synth);
          ratio ring;
          ratio rhd;
          ratio direct;
          ratio ideal;
        ])
      nodes
  in
  Table.print
    ~header:
      [ "#NPUs (#Nodes)"; "TACOS (synth)"; "TACCL-like"; "Ring"; "RHD"; "Direct"; "Ideal" ]
    rows;
  note "paper: TACOS 5.39x over Ring on average, 75.88%% of ideal;";
  note "TACCL's MILP became intractable at 128 NPUs (ours is a greedy stand-in)"
