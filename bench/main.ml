(* Benchmark harness entry point: regenerates every table and figure of the
   paper's evaluation section (see DESIGN.md §3 for the index).

     dune exec bench/main.exe              # run everything
     dune exec bench/main.exe -- fig16     # one experiment
     dune exec bench/main.exe -- bechamel  # bechamel micro-benchmarks
     TACOS_BENCH_SCALE=small|large         # trim / extend the sweeps *)

let experiments =
  [
    ("fig1", "Fig. 1  link-traffic heat maps", Fig01.run);
    ("fig2", "Fig. 2  basic-algorithm bandwidth", Fig02.run);
    ("fig10", "Fig. 10 synthesis vs connectivity", Fig10.run);
    ("fig14", "Fig. 14 All-Gather on 3x3 mesh", Fig14.run);
    ("fig15", "Fig. 15 DF / Switch / 3D-RFS", Fig15.run);
    ("tab5", "Table V multi-node 3D-RFS", Tab05.run);
    ("fig16", "Fig. 16 vs BlueConnect/Themis", Fig16.run);
    ("fig17", "Fig. 17 vs MultiTree / C-Cube", Fig17.run);
    ("fig18", "Fig. 18 utilization timelines", Fig18.run);
    ("fig19", "Fig. 19 synthesis-time scaling", Fig19.run);
    ("fig20", "Fig. 20 end-to-end training", Fig20.run);
    ("fig21", "Fig. 21 training breakdown", Fig21.run);
    ("ablation", "Ablations of TACOS' design choices", Ablation.run);
    ("strategies", "Table III parallelization strategies", Strategies.run);
    ("exotic", "Synthesis for fabrics without hand-made collectives", Exotic.run);
    ("a2a", "All-to-All / Gather / Scatter routing extension", A2a.run);
    ("resilience", "Synthesis on broken fabrics (fault injection)", Resilience.run);
    ("midflight", "Mid-flight faults: replay vs repair vs re-synthesis", Midflight.run);
    ("overlap", "Bucketed comm/compute overlap", Overlap.run);
    ("hierarchy", "Flat vs hierarchical (process-group) synthesis", Hierarchy.run);
    ("serve", "Synthesis service trace replay (deadlines, cache, shedding)", Serve.run);
    (* Last, so a full run compares everything it just regenerated. *)
    ("regress", "Regression guard: fresh BENCH rows vs committed baselines", Regress.run);
  ]

let usage () =
  print_endline "usage: main.exe [experiment|bechamel|list] ...";
  print_endline "experiments:";
  List.iter (fun (id, desc, _) -> Printf.printf "  %-6s %s\n" id desc) experiments

let run_one id =
  match List.find_opt (fun (name, _, _) -> name = id) experiments with
  | Some (_, _, run) -> run ()
  | None ->
    if id = "bechamel" then Micro.run ()
    else if id = "list" || id = "--help" || id = "-h" then usage ()
    else begin
      Printf.eprintf "unknown experiment %S\n" id;
      usage ();
      exit 1
    end

let () =
  match Array.to_list Sys.argv with
  | _ :: (_ :: _ as ids) -> List.iter run_one ids
  | _ ->
    let t0 = Unix.gettimeofday () in
    List.iter (fun (_, _, run) -> run ()) experiments;
    Printf.printf "\nall experiments done in %s\n"
      (Tacos_util.Units.time_pp (Unix.gettimeofday () -. t0))
