(* Fig. 21: training-time breakdown (forward / backward compute, exposed
   input- and weight-gradient communication) for ResNet-50 and MSFT-1T on a
   1,024-NPU 3D Torus, normalized over Ring. *)

open Tacos_topology
open Exp_common
open Tacos_workload
module Table = Tacos_util.Table

let run () =
  section "Fig. 21 — training breakdown on a 1,024-NPU 3D Torus (normalized to Ring)";
  let dims = match scale with Small -> [| 4; 4; 8 |] | Default | Large -> [| 8; 8; 16 |] in
  let topo = Builders.torus ~link:(Link.of_bandwidth 50e9) dims in
  note "topology: 3D Torus %s = %d NPUs"
    (String.concat "x" (Array.to_list (Array.map string_of_int dims)))
    (Topology.num_npus topo);
  List.iter
    (fun model ->
      Printf.printf "\n--- %s ---\n" model.Models.name;
      let backends =
        [
          Training.ring_backend topo;
          Training.themis_backend ~chunks:16 topo;
          Training.tacos_backend ~chunks_per_npu:1 topo;
          Training.ideal_backend topo;
        ]
      in
      let ring_total =
        Training.total (Training.iteration model (List.hd backends))
      in
      let rows =
        List.map
          (fun backend ->
            let b = Training.iteration model backend in
            let part v = Printf.sprintf "%.3f" (v /. ring_total) in
            [
              backend.Training.backend_name;
              part b.Training.fwd_compute;
              part b.Training.bwd_compute;
              part b.Training.input_grad_comm;
              part b.Training.weight_grad_comm;
              part (Training.total b);
            ])
          backends
      in
      Table.print
        ~header:[ "Backend"; "fwd"; "bwd"; "input-grad"; "weight-grad"; "total" ]
        rows)
    [ Models.resnet50; Models.msft_1t ];
  note "paper: TACOS reaches 97.32%% of the ideal end-to-end time; compute";
  note "terms are backend-independent, communication shrinks under TACOS"
