(* Fig. 16(a): All-Reduce bandwidth of BlueConnect, Themis (64 and 4
   chunks) and TACOS on a 4x4x4 3D Torus (alpha = 0.7us, 1/beta = 25 GB/s)
   across collective sizes. Themis-64 matches TACOS for huge collectives but
   pays latency on small ones; TACOS tracks the ideal throughout.
   Fig. 16(b): link-utilization timelines on the symmetric Torus vs the
   asymmetric Hypercube, where Themis' fixed per-dimension paths thrash. *)

open Tacos_topology
open Tacos_collective
open Exp_common
module Table = Tacos_util.Table
module Units = Tacos_util.Units
module Schedule = Tacos_collective.Schedule
module Engine = Tacos_sim.Engine

let link () = Link.of_bandwidth ~alpha:0.7e-6 25e9
let torus () = Builders.torus ~link:(link ()) [| 4; 4; 4 |]
let hypercube () = Builders.mesh ~link:(link ()) [| 4; 4; 4 |]

let run_a () =
  section "Fig. 16(a) — All-Reduce bandwidth vs size, 3D Torus 4x4x4";
  let topo = torus () in
  let sizes =
    match scale with
    | Small -> [ 64e3; 16e6; 1e9 ]
    | Default | Large -> [ 4e3; 64e3; 1e6; 16e6; 256e6; 1e9 ]
  in
  let rows =
    List.map
      (fun size ->
        let bc = baseline_time (Algo.Blueconnect { chunks = 1 }) topo ~size Pattern.All_reduce in
        let th64 = baseline_time (Algo.Themis { chunks = 64 }) topo ~size Pattern.All_reduce in
        let th4 = baseline_time (Algo.Themis { chunks = 4 }) topo ~size Pattern.All_reduce in
        (* Chunk granularity scales with the collective, as a deployment
           would configure: one chunk when latency-bound, finer decomposition
           for bandwidth-bound sizes. *)
        let k = max 1 (min 16 (int_of_float (size /. 1e6))) in
        let tacos = tacos_time ~chunks_per_npu:k topo ~size Pattern.All_reduce in
        let ideal = Ideal.all_reduce_time topo ~size in
        let bws = List.map (fun t -> bandwidth ~size t) [ bc; th64; th4; tacos ] in
        (Units.bytes_pp size :: normalized_row bws) @ [ pct (ideal /. tacos) ])
      sizes
  in
  Table.print
    ~header:[ "Size"; "BlueConnect"; "Themis-64"; "Themis-4"; "TACOS"; "TACOS eff" ]
    rows;
  note "paper: TACOS 95.90%% efficiency; Themis-64 drops to 64.37%% when";
  note "latency-bound; TACOS 2.01x over Themis on asymmetric topologies"

let timeline_of_schedule topo (result : Synth.result) =
  List.map snd (Schedule.utilization_timeline topo ~bins:30 result.Synth.schedule)

let timeline_of_report topo report =
  List.map snd (Engine.utilization_timeline topo report ~bins:30)

let run_b () =
  section "Fig. 16(b) — link-utilization timeline (30 bins over each run)";
  let size = 256e6 in
  List.iter
    (fun (name, topo) ->
      let tacos = tacos_result topo ~size Pattern.All_reduce in
      let themis =
        Algo.simulate (Algo.Themis { chunks = 64 }) topo (spec ~size topo Pattern.All_reduce)
      in
      Printf.printf "%-16s TACOS  |%s| avg %s\n" name
        (sparkline (timeline_of_schedule topo tacos))
        (pct (Schedule.average_utilization topo tacos.Synth.schedule));
      Printf.printf "%-16s Themis |%s| avg %s\n" name
        (sparkline (timeline_of_report topo themis))
        (pct (Engine.average_utilization topo themis)))
    [ ("3D Torus", torus ()); ("3D Hypercube", hypercube ()) ];
  note "paper: ~100%% on the Torus for both; on the Hypercube Themis";
  note "fluctuates under contention while TACOS stays saturated"

let run () =
  run_a ();
  run_b ()
