(* Fig. 20: end-to-end training time of GNMT (64-NPU 3D-RFS), ResNet-50 and
   Turing-NLG (256-NPU 3D-RFS) under Ring, Themis, TACOS and the ideal
   bound, normalized to TACOS. *)

open Tacos_topology
open Exp_common
open Tacos_workload
module Table = Tacos_util.Table
module Units = Tacos_util.Units

let gbps = Units.gbps

let run () =
  section "Fig. 20 — end-to-end training time, normalized to TACOS";
  let rfs last = Builders.rfs3d ~bw:(gbps 200., gbps 100., gbps 50.) (2, 4, last) in
  let small = rfs 8 in
  let big = match scale with Small -> rfs 8 | Default | Large -> rfs 32 in
  let cases =
    [
      (Models.gnmt, small);
      (Models.resnet50, big);
      (Models.turing_nlg, big);
    ]
  in
  let rows =
    List.map
      (fun (model, topo) ->
        let backends =
          [
            Training.ring_backend topo;
            Training.themis_backend ~chunks:16 topo;
            Training.tacos_backend ~chunks_per_npu:8 topo;
            Training.ideal_backend topo;
          ]
        in
        let breakdowns = List.map (fun b -> Training.iteration model b) backends in
        let totals = List.map Training.total breakdowns in
        let tacos_total = List.nth totals 2 in
        let ideal_comm = Training.comm (List.nth breakdowns 3) in
        let tacos_comm = Training.comm (List.nth breakdowns 2) in
        Printf.sprintf "%s @ %d NPUs" model.Models.name (Topology.num_npus topo)
        :: (List.map (fun t -> Printf.sprintf "%.2f" (t /. tacos_total)) totals
           @ [ pct (ideal_comm /. tacos_comm) ]))
      cases
  in
  Table.print
    ~header:[ "Workload"; "Ring"; "Themis"; "TACOS"; "Ideal"; "comm eff" ]
    rows;
  note "paper: TACOS 1.58x over Ring and 1.21x over Themis end-to-end,";
  note "93.17%% communication efficiency vs the theoretical bound"
