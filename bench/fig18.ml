(* Fig. 18: network utilization over the course of an All-Reduce on the
   symmetric 3D Torus (5x5x5) and the asymmetric 2D Mesh (10x10) and 3D
   Hypercube (5x5x5), TACOS vs Ring. Asymmetric edges force some ramp-up /
   drain idling, but TACOS saturates the fabric in between. *)

open Tacos_topology
open Tacos_collective
open Exp_common
module Schedule = Tacos_collective.Schedule
module Engine = Tacos_sim.Engine

let size = 256e6

let run () =
  section "Fig. 18 — utilization during All-Reduce, TACOS vs Ring";
  let link = Link.of_bandwidth 50e9 in
  let topologies =
    [
      ("3D Torus 5x5x5", Builders.torus ~link [| 5; 5; 5 |]);
      ("2D Mesh 10x10", Builders.mesh ~link [| 10; 10 |]);
      ("3D HC 5x5x5", Builders.mesh ~link [| 5; 5; 5 |]);
    ]
  in
  List.iter
    (fun (name, topo) ->
      let tacos, synth_obs =
        with_obs (fun () -> tacos_result ~chunks_per_npu:2 topo ~size Pattern.All_reduce)
      in
      let tacos_tl =
        List.map snd (Schedule.utilization_timeline topo ~bins:30 tacos.Synth.schedule)
      in
      let ring, engine_obs =
        with_obs (fun () ->
            Algo.simulate Algo.ring topo (spec ~size topo Pattern.All_reduce))
      in
      let ring_tl = List.map snd (Engine.utilization_timeline topo ring ~bins:30) in
      let ideal = Ideal.all_reduce_time topo ~size in
      record ~exp:"fig18"
        [
          ("topology", Json.String name);
          ("npus", Json.Number (float_of_int (Topology.num_npus topo)));
          ("tacos_makespan_seconds", Json.Number tacos.Synth.collective_time);
          ("ring_makespan_seconds", Json.Number ring.Engine.finish_time);
          ( "tacos_avg_utilization",
            Json.Number (Schedule.average_utilization topo tacos.Synth.schedule) );
          ("ring_avg_utilization", Json.Number (Engine.average_utilization topo ring));
          ("tacos_obs", synth_obs);
          ("ring_engine_obs", engine_obs);
        ];
      Printf.printf "%-16s TACOS |%s| avg %s  eff %s\n" name (sparkline tacos_tl)
        (pct (Schedule.average_utilization topo tacos.Synth.schedule))
        (pct (ideal /. tacos.Synth.collective_time));
      Printf.printf "%-16s Ring  |%s| avg %s  eff %s\n" name (sparkline ring_tl)
        (pct (Engine.average_utilization topo ring))
        (pct (ideal /. ring.Engine.finish_time)))
    topologies;
  note "paper: TACOS 100%% utilization on the Torus, 98.40%% efficiency avg;";
  note "asymmetric topologies only idle during ramp-up and drain";
  flush_bench ~exp:"fig18"
