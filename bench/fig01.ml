(* Fig. 1: heat maps of total bytes per link when running a 1 GB All-Reduce
   with Direct, RHD, Ring and TACOS over FullyConnected, Ring, 2D Mesh and a
   3D Hypercube. Topology-aware algorithms produce the balanced ("cooler")
   maps; foreign algorithms over/undersubscribe links. We use 16 NPUs per
   topology so the 16x16 maps stay printable. *)

open Tacos_topology
open Tacos_collective
open Exp_common
module Heatmap = Tacos_util.Heatmap
module Schedule = Tacos_collective.Schedule
module Engine = Tacos_sim.Engine

let size = 1e9

let topologies () =
  [
    ("FullyConnected", Builders.fully_connected 16);
    ("Ring", Builders.ring 16);
    ("2D Mesh 4x4", Builders.mesh [| 4; 4 |]);
    ("3D HC 4x2x2", Builders.mesh [| 4; 2; 2 |]);
  ]

let baseline_bytes algo topo =
  (Algo.simulate algo topo (spec ~size topo Pattern.All_reduce)).Engine.link_bytes

let tacos_bytes topo =
  let result = tacos_result ~chunks_per_npu:4 topo ~size Pattern.All_reduce in
  let chunk_size = Spec.chunk_size result.Synth.spec in
  Schedule.link_bytes topo ~chunk_size result.Synth.schedule

let run () =
  section "Fig. 1 — link-traffic heat maps, 1 GB All-Reduce, 16 NPUs";
  note "cells: bytes over link (src row, dst column); '#': no physical link";
  List.iter
    (fun (topo_name, topo) ->
      List.iter
        (fun (algo_name, bytes) ->
          Printf.printf "\n--- %s / %s ---\n" topo_name algo_name;
          print_string (Heatmap.render (traffic_matrix topo bytes));
          let loaded = Array.to_list (Array.map (fun b -> b) bytes) in
          let maxv = List.fold_left Float.max 0. loaded in
          let mean =
            List.fold_left ( +. ) 0. loaded /. float_of_int (List.length loaded)
          in
          note "max/mean link load = %.2f (lower = better balanced)"
            (if mean > 0. then maxv /. mean else 0.))
        [
          ("Direct", baseline_bytes Algo.Direct topo);
          ("RHD", baseline_bytes Algo.Rhd topo);
          ("Ring", baseline_bytes Algo.ring topo);
          ("TACOS", tacos_bytes topo);
        ])
    (topologies ())
