(* Fig. 2(a): All-Reduce bandwidth of the basic algorithms over different
   64-NPU topologies (1 GB, alpha = 0.5us, 1/beta = 50 GB/s), plus TACOS on
   the asymmetric Mesh/Hypercube where no basic algorithm is native.
   Fig. 2(b): the same on a fixed 128-NPU Ring (alpha = 30ns, 1/beta =
   150 GB/s) across collective sizes — the best algorithm flips between
   Direct (latency-bound) and Ring (bandwidth-bound). *)

open Tacos_topology
open Tacos_collective
open Exp_common
module Table = Tacos_util.Table
module Units = Tacos_util.Units

let algos = [ ("Ring", Algo.ring); ("Direct", Algo.Direct); ("RHD", Algo.Rhd); ("DBT", Algo.Dbt) ]

let run_a () =
  section "Fig. 2(a) — All-Reduce bandwidth by topology, 64 NPUs, 1 GB";
  let link = Link.of_bandwidth ~alpha:0.5e-6 50e9 in
  let size = 1e9 in
  let topologies =
    [
      ("Ring", Builders.ring ~link 64, false);
      ("FullyConnected", Builders.fully_connected ~link 64, false);
      ("2D Mesh 8x8", Builders.mesh ~link [| 8; 8 |], true);
      ("3D HC 4x4x4", Builders.mesh ~link [| 4; 4; 4 |], true);
    ]
  in
  let rows =
    List.map
      (fun (name, topo, with_tacos) ->
        let times =
          List.map (fun (_, a) -> baseline_time a topo ~size Pattern.All_reduce) algos
        in
        let tacos =
          if with_tacos then Some (tacos_time topo ~size Pattern.All_reduce) else None
        in
        let bws = List.map (fun t -> bandwidth ~size t) times in
        let tacos_bw = Option.map (fun t -> bandwidth ~size t) tacos in
        let all = bws @ Option.to_list tacos_bw in
        let smallest = List.fold_left Float.min infinity all in
        name
        :: (List.map (fun b -> Printf.sprintf "%.2f" (b /. smallest)) bws
           @ [
               (match tacos_bw with
               | Some b -> Printf.sprintf "%.2f" (b /. smallest)
               | None -> "-");
             ]))
      topologies
  in
  Table.print
    ~header:[ "Topology"; "Ring"; "Direct"; "RHD"; "DBT"; "TACOS" ]
    rows;
  note "values: All-Reduce bandwidth normalized to the smallest per topology";
  note "paper: Ring 16.71x over Direct on Ring; Direct 62.63x over Ring on FC"

let run_b () =
  section "Fig. 2(b) — All-Reduce bandwidth vs collective size, 128-NPU Ring";
  let link = Link.of_bandwidth ~alpha:30e-9 150e9 in
  let topo = Builders.ring ~link 128 in
  let sizes = [ 1e3; 16e3; 256e3; 4e6; 64e6; 1e9 ] in
  let rows =
    List.map
      (fun size ->
        let bws =
          List.map
            (fun (_, a) -> bandwidth ~size (baseline_time a topo ~size Pattern.All_reduce))
            algos
        in
        Units.bytes_pp size :: normalized_row bws)
      sizes
  in
  Table.print ~header:[ "Size"; "Ring"; "Direct"; "RHD"; "DBT" ] rows;
  note "paper: Direct wins at 1 KB (latency-bound), Ring wins at 1 GB"

let run () =
  run_a ();
  run_b ()
