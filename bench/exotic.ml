(* Extension experiment (§III-C made concrete): the paper names Flattened
   Butterfly, SlimFly and Tofu as topologies with no specialized collective
   algorithms, left to default to Ring. This experiment runs that default
   against a TACOS-synthesized algorithm on each of them — the "autonomous
   synthesizer closes the gap" claim, demonstrated beyond the evaluated
   zoo. *)

open Tacos_topology
open Tacos_collective
open Exp_common
module Table = Tacos_util.Table
module Units = Tacos_util.Units

let size = 128e6

let topologies () =
  let link = Link.of_bandwidth 50e9 in
  [
    ("FlattenedButterfly 8x8", Builders.flattened_butterfly ~link [| 8; 8 |]);
    ("SlimFly MMS q=5", Builders.slimfly ~link ());
    ("Tofu 2x2x2 x 2x3x2", Builders.tofu ~link (2, 2, 2));
  ]

let run () =
  section "Exotic — §III-C topologies without hand-designed collectives (128 MB AR)";
  let rows =
    List.map
      (fun (name, topo) ->
        let ring = baseline_time Algo.ring topo ~size Pattern.All_reduce in
        let taccl = baseline_time Algo.Taccl_like topo ~size Pattern.All_reduce in
        let tacos = tacos_time ~chunks_per_npu:8 topo ~size Pattern.All_reduce in
        let ideal = Ideal.all_reduce_time topo ~size in
        [
          name;
          string_of_int (Topology.num_npus topo);
          Units.time_pp ring;
          Units.time_pp taccl;
          Units.time_pp tacos;
          Printf.sprintf "%.2fx" (ring /. tacos);
          pct (ideal /. tacos);
        ])
      (topologies ())
  in
  Table.print
    ~header:
      [ "Topology"; "NPUs"; "Ring"; "TACCL-like"; "TACOS"; "vs Ring"; "vs ideal" ]
    rows;
  note "the CCL default (Ring) leaves most of these fabrics idle; TACOS";
  note "synthesizes for them without any manual design effort (§III-D)"
