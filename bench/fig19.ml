(* Fig. 19: synthesis-time scaling on homogeneous 2D Mesh and 3D Hypercube
   topologies. The paper (64 threads, Xeon E5-2699v3) reaches 40K NPUs in
   2.52 h with O(n^2) scaling; we sweep single-threaded to O(1K) NPUs by
   default (TACOS_BENCH_SCALE=large extends) and fit the same exponent. *)

open Tacos_topology
open Tacos_collective
open Exp_common
module Table = Tacos_util.Table
module Units = Tacos_util.Units
module Stats = Tacos_util.Stats

let mesh_sides =
  match scale with
  | Small -> [ 4; 8; 12 ]
  | Default -> [ 4; 8; 16; 24; 32 ]
  | Large -> [ 4; 8; 16; 24; 32; 48; 64 ]

let cube_sides =
  match scale with
  | Small -> [ 2; 3; 4 ]
  | Default -> [ 2; 4; 6; 8; 10 ]
  | Large -> [ 2; 4; 6; 8; 10; 13; 16 ]

let measure name topo =
  let n = Topology.num_npus topo in
  let sp = Spec.make ~buffer_size:1e9 ~pattern:Pattern.All_reduce ~npus:n () in
  let t0 = Unix.gettimeofday () in
  let r, obs = with_obs (fun () -> Synth.synthesize topo sp) in
  let dt = Unix.gettimeofday () -. t0 in
  record ~exp:"fig19"
    [
      ("topology", Json.String name);
      ("npus", Json.Number (float_of_int n));
      ("synthesis_seconds", Json.Number dt);
      ("makespan_seconds", Json.Number r.Synth.collective_time);
      ("rounds", Json.Number (float_of_int r.Synth.stats.Synth.rounds));
      ("matches", Json.Number (float_of_int r.Synth.stats.Synth.matches));
      ("obs", obs);
    ];
  (n, dt)

let sweep name build sides =
  let samples = List.map (fun s -> measure name (build s)) sides in
  let rows =
    List.map
      (fun (n, t) -> [ name; string_of_int n; Units.time_pp t ])
      samples
  in
  (* Fit the complexity exponent over the larger half of the sweep, where
     constant factors stop dominating. *)
  let tail = List.filteri (fun i _ -> i * 2 >= List.length samples) samples in
  let exponent =
    if List.length tail >= 2 then
      Stats.loglog_exponent (List.map (fun (n, t) -> (float_of_int n, Float.max t 1e-6)) tail)
    else Float.nan
  in
  (rows, exponent)

let run () =
  section "Fig. 19 — synthesis time vs NPU count (single-threaded)";
  let link = Link.of_bandwidth 50e9 in
  let mesh_rows, mesh_exp =
    sweep "2D Mesh" (fun s -> Builders.mesh ~link [| s; s |]) mesh_sides
  in
  let cube_rows, cube_exp =
    sweep "3D HC" (fun s -> Builders.mesh ~link [| s; s; s |]) cube_sides
  in
  Table.print ~header:[ "Topology"; "NPUs"; "Synthesis time" ] (mesh_rows @ cube_rows);
  note "fitted complexity exponent: 2D Mesh n^%.2f, 3D HC n^%.2f" mesh_exp cube_exp;
  note "paper: O(n^2) scaling; 40K-NPU 2D Mesh in 2.52 h on 64 threads";
  note "(we are single-threaded; the shape, not the constant, is the claim)";
  flush_bench ~exp:"fig19"
