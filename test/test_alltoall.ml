(* Tests for the time-space router extension: All-to-All, Gather and
   Scatter synthesis with the one-chunk-per-link TEN discipline. *)

open Tacos_topology
open Tacos_collective
module Synth = Tacos.Synthesizer
module Alltoall = Tacos.Alltoall

let time = Alcotest.float 1e-9
let unit_link = Link.make ~alpha:1. ~beta:0.

let spec ?(chunks_per_npu = 1) ?(buffer_size = 1.) npus =
  Spec.make ~chunks_per_npu ~buffer_size ~pattern:Pattern.All_to_all ~npus ()

let check_valid topo (r : Synth.result) =
  match Schedule.validate topo r.Synth.spec r.Synth.schedule with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid All-to-All schedule: %s" e

let test_spec_conditions () =
  let s = spec 3 in
  Alcotest.(check int) "chunks" 9 (Spec.num_chunks s);
  Alcotest.(check int) "chunk id" 5 (Spec.a2a_chunk s ~src:1 ~dst:2 0);
  Alcotest.(check int) "dest decoding" 2 (Spec.a2a_dest s 5);
  Alcotest.(check int) "owner is the source" 1 (Spec.owner s 5);
  (* Every chunk starts at its source and must end at its destination. *)
  List.iter
    (fun (d, c) -> Alcotest.(check int) "post at dest" (Spec.a2a_dest s c) d)
    (Spec.postcondition s)

let test_fc_one_shot () =
  (* On FullyConnected, All-to-All is a single direct exchange. *)
  let topo = Builders.fully_connected ~link:unit_link 5 in
  let r = Alltoall.synthesize topo (spec 5) in
  check_valid topo r;
  Alcotest.check time "one span" 1.0 r.Synth.collective_time

let test_ring_serializes () =
  (* Unidirectional unit ring of 4: total relayed hops = sum of distances
     = 4 * (1+2+3) = 24 over 4 links => at least 6 time units. *)
  let topo = Builders.ring ~link:unit_link ~bidirectional:false 4 in
  let r = Alltoall.synthesize topo (spec 4) in
  check_valid topo r;
  Alcotest.(check bool) "bisection lower bound" true (r.Synth.collective_time >= 6.0 -. 1e-9)

let test_mesh_validates_with_chunks () =
  let topo = Builders.mesh ~link:unit_link [| 3; 3 |] in
  let r = Alltoall.synthesize topo (spec ~chunks_per_npu:2 9) in
  check_valid topo r

let test_deterministic () =
  let topo = Builders.mesh ~link:unit_link [| 3; 2 |] in
  let a = Alltoall.synthesize ~seed:4 topo (spec 6) in
  let b = Alltoall.synthesize ~seed:4 topo (spec 6) in
  Alcotest.check time "same seed, same makespan" a.Synth.collective_time
    b.Synth.collective_time

let test_matching_loop_rejects_a2a () =
  let topo = Builders.ring 4 in
  match Synth.synthesize topo (spec 4) with
  | exception Synth.Unsupported _ -> ()
  | _ -> Alcotest.fail "the matching loop should defer All-to-All to Alltoall"

let test_wrong_pattern_rejected () =
  let topo = Builders.ring 4 in
  Alcotest.check_raises "not an A2A spec"
    (Invalid_argument "Alltoall.synthesize: spec pattern must be All_to_all")
    (fun () ->
      ignore
        (Alltoall.synthesize topo
           (Spec.make ~pattern:Pattern.All_gather ~npus:4 ())))

let test_beats_or_matches_direct_on_mesh () =
  (* Congestion-aware reservations should not lose to blindly routed Direct
     under the simulator. *)
  let link = Link.of_bandwidth 50e9 in
  let topo = Builders.mesh ~link [| 4; 4 |] in
  let s = spec ~buffer_size:64e6 16 in
  let r = Alltoall.synthesize topo s in
  check_valid topo r;
  let program = Tacos_sim.Program.of_schedule ~chunk_size:(Spec.chunk_size s) r.Synth.schedule in
  let tacos = (Tacos_sim.Engine.run topo program).Tacos_sim.Engine.finish_time in
  let direct = Tacos_baselines.Algo.collective_time Tacos_baselines.Algo.Direct topo s in
  Alcotest.(check bool) "within 10%% of Direct or better" true (tacos <= direct *. 1.10)

(* --- Gather / Scatter through the router -------------------------------- *)

let test_gather_to_root () =
  let topo = Builders.mesh ~link:unit_link [| 3; 3 |] in
  let s = Spec.make ~buffer_size:9. ~pattern:(Pattern.Gather 4) ~npus:9 () in
  let r = Tacos.Router.synthesize topo s in
  (match Schedule.validate topo s r.Synth.schedule with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid gather: %s" e);
  (* The mesh center has 4 in-links and must ingest 8 unit chunks: >= 2 spans. *)
  Alcotest.(check bool) "ingress bound" true (r.Synth.collective_time >= 2.0 -. 1e-9)

let test_scatter_from_root () =
  let topo = Builders.ring ~link:unit_link 6 in
  let s = Spec.make ~buffer_size:6. ~pattern:(Pattern.Scatter 0) ~npus:6 () in
  let r = Tacos.Router.synthesize topo s in
  match Schedule.validate topo s r.Synth.schedule with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid scatter: %s" e

let test_gather_scatter_same_cost_regime () =
  (* On a symmetric topology, scatter is gather run backwards; the greedy
     router is not exactly symmetric (different job orders break ties
     differently), but both must sit between the root-degree bound (8 unit
     chunks over 4 links = 2 spans) and a small constant above it. *)
  let topo = Builders.torus ~link:unit_link [| 3; 3 |] in
  let gather = Spec.make ~buffer_size:9. ~pattern:(Pattern.Gather 0) ~npus:9 () in
  let scatter = Spec.make ~buffer_size:9. ~pattern:(Pattern.Scatter 0) ~npus:9 () in
  let g = (Tacos.Router.synthesize ~seed:2 topo gather).Synth.collective_time in
  let sc = (Tacos.Router.synthesize ~seed:2 topo scatter).Synth.collective_time in
  List.iter
    (fun t -> Alcotest.(check bool) "within the cost regime" true (t >= 2.0 && t <= 6.0))
    [ g; sc ];
  Alcotest.(check bool) "comparable" true (Float.abs (g -. sc) <= 2.0)

let test_router_rejects_matching_patterns () =
  let topo = Builders.ring 4 in
  match
    Tacos.Router.synthesize topo (Spec.make ~pattern:Pattern.All_gather ~npus:4 ())
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "All-Gather belongs to the matching loop"

(* --- Calendar ------------------------------------------------------------ *)

module Calendar = Tacos.Router.Calendar

let test_calendar_empty () =
  let c = Calendar.create () in
  Alcotest.check time "free from ready" 3. (Calendar.earliest_free c ~ready:3. ~dur:5.)

let test_calendar_gap_fit () =
  let c = Calendar.create () in
  Calendar.reserve c ~start:0. ~dur:2.;
  Calendar.reserve c ~start:5. ~dur:2.;
  Alcotest.check time "fits the gap" 2. (Calendar.earliest_free c ~ready:0. ~dur:3.);
  Alcotest.check time "too long for the gap, goes after" 7.
    (Calendar.earliest_free c ~ready:0. ~dur:4.);
  Alcotest.check time "ready inside a busy interval" 2.
    (Calendar.earliest_free c ~ready:1. ~dur:1.)

let test_calendar_scaled_eps () =
  (* Regression: with a fixed 1e-15 slack, a O(1e9)-magnitude fit check
     failed on representation error alone (1 ulp of 1e9 is ~1.2e-7), so
     jobs that exactly abutted a reservation were pushed behind it. The
     tolerance must scale with the magnitudes compared. *)
  let c = Calendar.create () in
  Calendar.reserve c ~start:1e9 ~dur:10.;
  (* Filling the [0, 1e9) gap exactly: a few ulps of slop must not spill
     the job past the reservation. *)
  let dur = 1e9 *. (1. +. 2. *. epsilon_float) in
  Alcotest.check time "abutting fit at large magnitude" 0.
    (Calendar.earliest_free c ~ready:0. ~dur)

let test_calendar_reserve_overlap () =
  let c = Calendar.create () in
  Calendar.reserve c ~start:0. ~dur:10.;
  Alcotest.(check bool) "overlap raises" true
    (match Calendar.reserve c ~start:5. ~dur:10. with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_calendar_adjacent_ok () =
  let c = Calendar.create () in
  Calendar.reserve c ~start:0. ~dur:10.;
  Calendar.reserve c ~start:10. ~dur:5.;
  Calendar.reserve c ~start:20. ~dur:1.;
  Alcotest.check time "free after the packed prefix" 15.
    (Calendar.earliest_free c ~ready:0. ~dur:5.)

let prop_always_valid =
  QCheck.Test.make ~name:"All-to-All schedules always validate" ~count:25
    QCheck.(make Gen.(pair (int_range 2 3) (int_range 2 3)))
    (fun (a, b) ->
      let topo = Builders.torus ~link:unit_link [| a; b |] in
      let s = spec (a * b) in
      let r = Alltoall.synthesize ~seed:(a + (10 * b)) topo s in
      Schedule.validate topo s r.Synth.schedule = Ok ())

let () =
  Alcotest.run "alltoall"
    [
      ( "calendar",
        [
          Alcotest.test_case "empty calendar is free" `Quick test_calendar_empty;
          Alcotest.test_case "fits into gaps" `Quick test_calendar_gap_fit;
          Alcotest.test_case "large-magnitude tolerance" `Quick
            test_calendar_scaled_eps;
          Alcotest.test_case "reserve rejects overlap" `Quick
            test_calendar_reserve_overlap;
          Alcotest.test_case "adjacent reservations ok" `Quick
            test_calendar_adjacent_ok;
        ] );
      ( "alltoall",
        [
          Alcotest.test_case "spec conditions" `Quick test_spec_conditions;
          Alcotest.test_case "FC is one-shot" `Quick test_fc_one_shot;
          Alcotest.test_case "ring bisection bound" `Quick test_ring_serializes;
          Alcotest.test_case "mesh with chunks" `Quick test_mesh_validates_with_chunks;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "matching loop defers" `Quick test_matching_loop_rejects_a2a;
          Alcotest.test_case "wrong pattern rejected" `Quick test_wrong_pattern_rejected;
          Alcotest.test_case "competitive with Direct" `Quick
            test_beats_or_matches_direct_on_mesh;
        ] );
      ( "gather-scatter",
        [
          Alcotest.test_case "gather to root" `Quick test_gather_to_root;
          Alcotest.test_case "scatter from root" `Quick test_scatter_from_root;
          Alcotest.test_case "gather/scatter cost regime" `Quick
            test_gather_scatter_same_cost_regime;
          Alcotest.test_case "rejects matching patterns" `Quick
            test_router_rejects_matching_patterns;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_always_valid ]);
    ]
