(* Tests for hierarchical (process-group) synthesis: composed schedules
   validate and replay on the acceptance fabrics (Torus 3D, 2D-Switch,
   3D-RFS) for every decomposable pattern, isomorphic-group dedup costs one
   synthesis per distinct fingerprint, invalid partitions are rejected, and
   a randomized property over valid partition rewrites (dimension choice,
   uniform rank rotation, group reordering). *)

open Tacos_topology
open Tacos_collective
module Group = Tacos_groups.Group
module Plan = Tacos_groups.Plan
module Units = Tacos_util.Units
module Obs = Tacos_obs.Obs

let torus3d () = Builders.torus [| 4; 4; 4 |]

let switch2d () =
  Builders.two_level_switch ~bw:(Units.gbps 300., Units.gbps 25.) (8, 4)

let rfs3d () =
  Builders.rfs3d ~bw:(Units.gbps 200., Units.gbps 100., Units.gbps 50.) (2, 4, 8)

let fabrics = [ ("torus-4x4x4", torus3d); ("switch-8x4", switch2d); ("rfs-2x4x8", rfs3d) ]

let spec ?(chunks_per_npu = 1) ?(buffer_size = 64e6) pattern topo =
  Spec.make ~chunks_per_npu ~buffer_size ~pattern ~npus:(Topology.num_npus topo) ()

let groups_exn topo grouping =
  match Plan.decompose topo grouping with
  | Ok groups -> groups
  | Error e -> Alcotest.failf "decompose failed: %s" e

(* Validate a composed result with the pattern-appropriate validator. *)
let check_valid topo (plan : Plan.t) =
  let result = plan.Plan.result in
  let outcome =
    match result.Tacos.Synthesizer.spec.Spec.pattern with
    | Pattern.All_reduce -> (
      match result.Tacos.Synthesizer.phases with
      | None -> Error "All-Reduce result carries no phase split"
      | Some (rs, ag) ->
        Schedule.validate_all_reduce topo result.Tacos.Synthesizer.spec
          ~reduce_scatter:rs ~all_gather:ag)
    | _ -> Schedule.validate topo result.Tacos.Synthesizer.spec result.Tacos.Synthesizer.schedule
  in
  match outcome with
  | Ok () -> ()
  | Error e -> Alcotest.failf "composed schedule invalid: %s" e

(* Replay the composed schedule end-to-end under the congestion-aware
   engine: it must complete (every transfer lands, nothing stranded). *)
let check_replays topo (plan : Plan.t) =
  let result = plan.Plan.result in
  let chunk_size = Spec.chunk_size result.Tacos.Synthesizer.spec in
  let program = Tacos_sim.Program.of_schedule ~chunk_size result.Tacos.Synthesizer.schedule in
  let report = Tacos_sim.Engine.run topo program in
  Alcotest.(check int) "nothing stranded" 0 (List.length report.Tacos_sim.Engine.stranded);
  Alcotest.(check bool) "finishes" true
    (Float.is_finite report.Tacos_sim.Engine.finish_time
    && report.Tacos_sim.Engine.finish_time > 0.)

let patterns = [ Pattern.All_reduce; Pattern.All_gather; Pattern.Reduce_scatter; Pattern.Broadcast 5 ]

let test_fabric_matrix (name, build) () =
  let topo = build () in
  let groups = groups_exn topo Plan.Auto in
  List.iter
    (fun pattern ->
      let plan = Plan.synthesize topo (spec pattern topo) ~groups in
      check_valid topo plan;
      check_replays topo plan;
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s composed time positive" name (Pattern.name pattern))
        true
        (plan.Plan.result.Tacos.Synthesizer.collective_time > 0.))
    patterns

let test_reduce_decomposes () =
  let topo = torus3d () in
  let groups = groups_exn topo (Plan.Dim 1) in
  let plan = Plan.synthesize topo (spec (Pattern.Reduce 9) topo) ~groups in
  check_valid topo plan;
  check_replays topo plan

let test_every_dim_decomposes () =
  let topo = torus3d () in
  List.iter
    (fun d ->
      let groups = groups_exn topo (Plan.Dim d) in
      let plan = Plan.synthesize topo (spec Pattern.All_gather topo) ~groups in
      check_valid topo plan)
    [ 0; 1; 2 ]

(* Exactly one synthesis per distinct (sub-fingerprint, sub-spec) pair: on a
   homogeneous torus all 4 slabs share a fingerprint and all 16 slices share
   a fingerprint, so All-Gather costs 2 syntheses and All-Reduce 3. *)
let test_dedup_counts () =
  let topo = torus3d () in
  let groups = groups_exn topo (Plan.Dim 0) in
  let distinct gs = List.sort_uniq compare (List.map Group.fingerprint gs) in
  Alcotest.(check int) "slabs share one fingerprint" 1 (List.length (distinct groups));
  Alcotest.(check int) "slices share one fingerprint" 1
    (List.length (distinct (Group.slices topo groups)));
  let ag = Plan.synthesize topo (spec Pattern.All_gather topo) ~groups in
  Alcotest.(check int) "AG: one synthesis per phase" 2 ag.Plan.syntheses;
  Alcotest.(check int) "AG: everything else deduped"
    (List.length groups + List.length (Group.slices topo groups) - 2)
    ag.Plan.dedup_hits;
  let ar = Plan.synthesize topo (spec Pattern.All_reduce topo) ~groups in
  Alcotest.(check int) "AR: one synthesis per phase" 3 ar.Plan.syntheses;
  Alcotest.(check bool) "dedup hits observed" true (ar.Plan.dedup_hits > 0);
  List.iter
    (fun (i : Plan.phase_info) ->
      Alcotest.(check int) (i.Plan.phase ^ ": parts accounted") i.Plan.parts
        (i.Plan.syntheses + i.Plan.dedup_hits))
    ar.Plan.phase_infos

let test_obs_metrics () =
  let topo = torus3d () in
  let groups = groups_exn topo (Plan.Dim 0) in
  Obs.reset ();
  Obs.enable ();
  Fun.protect ~finally:Obs.disable (fun () ->
      ignore (Plan.synthesize topo (spec Pattern.All_reduce topo) ~groups);
      Alcotest.(check bool) "groups.dedup_hits > 0" true
        (Obs.value (Obs.counter "groups.dedup_hits") > 0);
      Alcotest.(check int) "groups.groups" 4 (Obs.value (Obs.counter "groups.groups"));
      Alcotest.(check int) "groups.phases" 3 (Obs.value (Obs.counter "groups.phases"));
      Alcotest.(check int) "groups.syntheses" 3 (Obs.value (Obs.counter "groups.syntheses")))

(* Parallel hierarchical synthesis must be a pure wall-clock optimization:
   at every domain count the composed schedule, the phase split, and the
   per-phase accounting (ownership of syntheses vs dedup hits included)
   match the sequential run bit for bit. Exercised with trials > 1 so both
   fan-out axes (sub-syntheses and randomized trials) share the pool. *)
let test_parallel_plan_bit_identical () =
  let topo = torus3d () in
  let groups = groups_exn topo (Plan.Dim 0) in
  List.iter
    (fun pattern ->
      let s = spec pattern topo in
      let seq = Plan.synthesize ~seed:13 ~trials:3 ~domains:1 topo s ~groups in
      List.iter
        (fun d ->
          let par = Plan.synthesize ~seed:13 ~trials:3 ~domains:d topo s ~groups in
          let label fmt =
            Printf.ksprintf
              (fun m -> Printf.sprintf "%s d=%d: %s" (Pattern.name pattern) d m)
              fmt
          in
          Alcotest.(check bool) (label "composed sends identical") true
            (seq.Plan.result.Tacos.Synthesizer.schedule.Schedule.sends
            = par.Plan.result.Tacos.Synthesizer.schedule.Schedule.sends);
          Alcotest.(check bool) (label "phase split identical") true
            (match
               ( seq.Plan.result.Tacos.Synthesizer.phases,
                 par.Plan.result.Tacos.Synthesizer.phases )
             with
            | Some (rs1, ag1), Some (rs2, ag2) ->
              rs1.Schedule.sends = rs2.Schedule.sends
              && ag1.Schedule.sends = ag2.Schedule.sends
            | None, None -> true
            | _ -> false);
          Alcotest.(check int) (label "syntheses") seq.Plan.syntheses
            par.Plan.syntheses;
          Alcotest.(check int) (label "dedup hits") seq.Plan.dedup_hits
            par.Plan.dedup_hits;
          (* phase_infos minus the machine-dependent wall_seconds column *)
          let fingerprint (i : Plan.phase_info) =
            (i.Plan.phase, i.Plan.parts, i.Plan.syntheses, i.Plan.dedup_hits,
             i.Plan.makespan)
          in
          Alcotest.(check bool) (label "phase accounting identical") true
            (List.map fingerprint seq.Plan.phase_infos
            = List.map fingerprint par.Plan.phase_infos);
          check_valid topo par)
        [ 2; 4 ])
    [ Pattern.All_gather; Pattern.All_reduce ]

(* The single-flight table is what keeps parallel dedup exact: concurrent
   identical sub-syntheses join the owner's in-flight future instead of
   re-running, surfaced by the groups.inflight_joins counter staying within
   the sequential dedup accounting. *)
let test_parallel_obs_metrics () =
  let topo = torus3d () in
  let groups = groups_exn topo (Plan.Dim 0) in
  Obs.reset ();
  Obs.enable ();
  Fun.protect ~finally:Obs.disable (fun () ->
      ignore
        (Plan.synthesize ~domains:4 topo (spec Pattern.All_reduce topo) ~groups);
      Alcotest.(check int) "groups.syntheses unchanged at d=4" 3
        (Obs.value (Obs.counter "groups.syntheses"));
      let joins = Obs.value (Obs.counter "groups.inflight_joins") in
      let hits = Obs.value (Obs.counter "groups.dedup_hits") in
      Alcotest.(check bool) "inflight joins are dedup hits" true
        (joins >= 0 && joins <= hits))

let test_auto_dim_prefers_bottleneck () =
  (* The 25 GB/s scale-out dimension of the 2D switch and the 50 GB/s
     switch dimension of 3D-RFS must host the inter phase. *)
  Alcotest.(check (option int)) "switch-8x4" (Some 1) (Group.auto_dim (switch2d ()));
  Alcotest.(check (option int)) "rfs" (Some 2) (Group.auto_dim (rfs3d ()));
  (* Homogeneous torus: ties break toward more groups (largest dim). *)
  let t = Builders.torus [| 4; 8; 4 |] in
  Alcotest.(check (option int)) "torus ties to largest dim" (Some 1) (Group.auto_dim t);
  (* A size-2 ring has a single lane per node, half the bandwidth of its
     size-4 neighbours: it is the cut. *)
  let t2 = Builders.torus [| 2; 4; 2 |] in
  Alcotest.(check (option int)) "single-lane dim is the cut" (Some 0) (Group.auto_dim t2);
  Alcotest.(check (option int)) "no hierarchy" None (Group.auto_dim (Builders.dgx1 ()))

let test_invalid_partitions_rejected () =
  let topo = torus3d () in
  let expect_error what grouping =
    match Plan.decompose topo grouping with
    | Ok _ -> Alcotest.failf "%s: accepted an invalid partition" what
    | Error _ -> ()
  in
  let range a b = Array.init (b - a) (fun i -> a + i) in
  expect_error "unequal sizes" (Plan.Partition [ range 0 31; range 31 64 ]);
  expect_error "missing NPU" (Plan.Partition [ range 0 32; range 32 63 ]);
  expect_error "overlap"
    (Plan.Partition [ range 0 32; Array.append [| 0 |] (range 33 64) ]);
  (* {i, i+32} pairs: two z-planes apart, no direct link — disconnected. *)
  expect_error "disconnected group"
    (Plan.Partition (List.init 32 (fun i -> [| i; i + 32 |])));
  (* Aligned slabs, but one group's rank order rotated: every slice then
     mixes coordinates of different (y, z) lines and falls apart. *)
  let slab x = Array.init 16 (fun i -> (i * 4) + x) in
  let rot a = Array.init (Array.length a) (fun i -> a.((i + 1) mod Array.length a)) in
  expect_error "disconnected slice"
    (Plan.Partition [ slab 0; rot (slab 1); slab 2; slab 3 ]);
  Alcotest.(check bool) "the unrotated slabs are fine" true
    (Result.is_ok (Plan.decompose topo (Plan.Partition [ slab 0; slab 1; slab 2; slab 3 ])))

let test_flat_spec_mismatch_rejected () =
  let topo = torus3d () in
  let groups = groups_exn topo Plan.Auto in
  Alcotest.check_raises "npus mismatch"
    (Invalid_argument "Plan.synthesize: spec is for 8 NPUs, topology has 64")
    (fun () ->
      ignore
        (Plan.synthesize topo
           (Spec.make ~pattern:Pattern.All_gather ~npus:8 ())
           ~groups))

(* Property: any valid rewrite of a dimension partition — rotating every
   group's rank order in lockstep (relabels the slices) and permuting the
   group order (renumbers them) — still composes schedules that validate
   and replay, for every decomposable pattern. *)
let prop_random_partitions =
  let gen =
    QCheck.Gen.(
      let* fabric = int_range 0 (List.length fabrics - 1) in
      let* dim = int_range 0 2 in
      let* rot = int_range 0 15 in
      let* perm_seed = int_range 0 1000 in
      let* pat = int_range 0 (List.length patterns - 1) in
      return (fabric, dim, rot, perm_seed, pat))
  in
  QCheck.Test.make ~count:20 ~name:"random valid partitions compose correctly"
    (QCheck.make gen) (fun (fabric, dim, rot, perm_seed, pat) ->
      let _, build = List.nth fabrics fabric in
      let topo = build () in
      let dims = Option.get (Topology.hierarchy topo) in
      (* Pick a non-degenerate dimension near the random draw. *)
      let usable d =
        dims.(d).Topology.size >= 2
        && Topology.num_npus topo / dims.(d).Topology.size >= 2
      in
      let dim =
        let nd = Array.length dims in
        let rec find k = if usable ((dim + k) mod nd) then (dim + k) mod nd else find (k + 1) in
        find 0
      in
      let base = List.map (fun (g : Group.t) -> g.Group.members) (Group.of_dim topo ~dim) in
      let m = Array.length (List.hd base) in
      let rotate a = Array.init m (fun i -> a.((i + rot) mod m)) in
      let parts = List.map rotate base in
      let parts =
        (* Deterministic pseudo-random group reorder. *)
        let keyed = List.mapi (fun i p -> ((i * perm_seed) mod 97, i, p)) parts in
        List.map (fun (_, _, p) -> p) (List.sort compare keyed)
      in
      let groups =
        match Plan.decompose topo (Plan.Partition parts) with
        | Ok g -> g
        | Error e -> QCheck.Test.fail_reportf "rewritten partition invalid: %s" e
      in
      let pattern = List.nth patterns pat in
      let plan = Plan.synthesize topo (spec ~buffer_size:1e6 pattern topo) ~groups in
      check_valid topo plan;
      check_replays topo plan;
      true)

let () =
  Alcotest.run "groups"
    [
      ( "compose",
        List.map
          (fun fabric ->
            Alcotest.test_case (fst fabric) `Slow (test_fabric_matrix fabric))
          fabrics
        @ [
            Alcotest.test_case "reduce decomposes" `Quick test_reduce_decomposes;
            Alcotest.test_case "every torus dim decomposes" `Slow test_every_dim_decomposes;
          ] );
      ( "dedup",
        [
          Alcotest.test_case "one synthesis per fingerprint" `Quick test_dedup_counts;
          Alcotest.test_case "obs counters" `Quick test_obs_metrics;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "parallel plan bit-identical" `Quick
            test_parallel_plan_bit_identical;
          Alcotest.test_case "single-flight obs counters" `Quick
            test_parallel_obs_metrics;
        ] );
      ( "partitions",
        [
          Alcotest.test_case "auto dim" `Quick test_auto_dim_prefers_bottleneck;
          Alcotest.test_case "invalid partitions rejected" `Quick test_invalid_partitions_rejected;
          Alcotest.test_case "spec mismatch rejected" `Quick test_flat_spec_mismatch_rejected;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_random_partitions ] );
    ]
