(* Tests for the registry's crash-safe persistence and single-flight
   failure handling: atomic writes never leave temp droppings, every
   flavor of broken disk entry (truncated, empty, garbage, checksum
   mismatch) is quarantined to *.corrupt and re-synthesized instead of
   raising, foreign checksum-less files still load, and a synthesis that
   raises releases its single-flight key for a clean retry. *)

open Tacos_topology
open Tacos_collective
module Json = Tacos_util.Json
module Synth = Tacos.Synthesizer
module Registry = Tacos.Registry

let spec ?(chunks_per_npu = 1) ?(buffer_size = 1e6) pattern npus =
  Spec.make ~chunks_per_npu ~buffer_size ~pattern ~npus ()

let link = Link.make ~alpha:1e-6 ~beta:(1. /. 50e9)
let ring n = Builders.ring ~link n

let fresh_dir () =
  let dir = Filename.temp_file "tacos-reg" "" in
  Sys.remove dir;
  dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let files dir = Sys.readdir dir |> Array.to_list |> List.sort String.compare

let entry_file dir =
  match List.filter (fun f -> Filename.check_suffix f ".json") (files dir) with
  | [ f ] -> Filename.concat dir f
  | fs -> Alcotest.failf "expected exactly one cache entry, found %d" (List.length fs)

let has_substring sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  at 0

(* Warm one entry into [dir] and return its path. *)
let warm_entry dir topo s =
  let reg = Registry.create ~dir () in
  let result, m = Registry.find_or_synthesize reg topo s in
  Alcotest.(check bool) "warm synthesis is a miss" true (m = `Miss);
  (result, entry_file dir)

let test_atomic_write_no_droppings () =
  let dir = fresh_dir () in
  let topo = ring 6 in
  let _, _ = warm_entry dir topo (spec Pattern.All_gather 6) in
  Alcotest.(check bool) "no .tmp droppings" true
    (List.for_all (fun f -> not (has_substring ".tmp." f)) (files dir));
  rm_rf dir

(* Shared harness for the broken-entry flavors: corrupt the single cache
   file with [break], then prove a fresh registry over the same directory
   still answers — quarantining the broken file and re-synthesizing. *)
let check_quarantine_and_recover name break =
  let dir = fresh_dir () in
  let topo = ring 6 in
  let s = spec Pattern.All_gather 6 in
  let original, path = warm_entry dir topo s in
  break path;
  let reg = Registry.create ~dir () in
  let result, m = Registry.find_or_synthesize reg topo s in
  Alcotest.(check bool) (name ^ ": re-synthesized, not served broken") true
    (m = `Miss);
  Alcotest.(check int) (name ^ ": counted") 1 (Registry.quarantined reg);
  Alcotest.(check bool) (name ^ ": set aside as .corrupt") true
    (Sys.file_exists (path ^ ".corrupt"));
  (match Synth.verify topo result with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: recovered schedule invalid: %s" name e);
  Alcotest.(check (float 1e-9)) (name ^ ": same deterministic makespan")
    original.Synth.collective_time result.Synth.collective_time;
  (* The re-synthesis wrote a fresh entry; a third registry hits it. *)
  let reg3 = Registry.create ~dir () in
  let _, m3 = Registry.find_or_synthesize reg3 topo s in
  Alcotest.(check bool) (name ^ ": fresh entry readable again") true (m3 = `Hit);
  rm_rf dir

let test_truncated_entry () =
  check_quarantine_and_recover "truncated" (fun path ->
      let text = In_channel.with_open_text path In_channel.input_all in
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc
            (String.sub text 0 (String.length text / 2))))

let test_zero_length_entry () =
  check_quarantine_and_recover "zero-length" (fun path ->
      Out_channel.with_open_text path (fun _ -> ()))

let test_garbage_entry () =
  check_quarantine_and_recover "garbage" (fun path ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc "definitely not json {{{"))

let test_checksum_mismatch_entry () =
  (* Valid JSON whose embedded checksum no longer matches the payload —
     the shape a torn-then-patched or bit-rotted file takes. *)
  check_quarantine_and_recover "checksum mismatch" (fun path ->
      let text = In_channel.with_open_text path In_channel.input_all in
      match Json.parse text with
      | Error e -> Alcotest.failf "entry not JSON before corruption: %s" e
      | Ok (Json.Object fields) ->
        let flipped =
          List.map
            (function
              | "checksum", Json.String d ->
                let b = Bytes.of_string d in
                Bytes.set b 0 (if Bytes.get b 0 = '0' then '1' else '0');
                ("checksum", Json.String (Bytes.to_string b))
              | kv -> kv)
            fields
        in
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc (Json.encode (Json.Object flipped)))
      | Ok _ -> Alcotest.fail "entry is not a JSON object")

let test_foreign_entry_without_checksum_loads () =
  (* Files written by other tools carry no checksum field: they must keep
     loading as plain algorithm files, not be quarantined. *)
  let dir = fresh_dir () in
  let topo = ring 6 in
  let s = spec Pattern.All_gather 6 in
  let _, path = warm_entry dir topo s in
  let text = In_channel.with_open_text path In_channel.input_all in
  (match Json.parse text with
  | Ok (Json.Object fields) ->
    let stripped = List.filter (fun (k, _) -> k <> "checksum") fields in
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (Json.encode (Json.Object stripped)))
  | _ -> Alcotest.fail "entry is not a JSON object");
  let reg = Registry.create ~dir () in
  let _, m = Registry.find_or_synthesize reg topo s in
  Alcotest.(check bool) "checksum-less entry still hits" true (m = `Hit);
  Alcotest.(check int) "nothing quarantined" 0 (Registry.quarantined reg);
  rm_rf dir

let test_find_cached_peek () =
  let dir = fresh_dir () in
  let topo = ring 6 in
  let s = spec Pattern.All_gather 6 in
  let reg = Registry.create ~dir () in
  Alcotest.(check bool) "cold peek is None" true (Registry.find_cached reg topo s = None);
  let result, _ = Registry.find_or_synthesize reg topo s in
  (match Registry.find_cached reg topo s with
  | Some peeked ->
    Alcotest.(check (float 1e-9)) "peek returns the cached schedule"
      result.Synth.collective_time peeked.Synth.collective_time
  | None -> Alcotest.fail "warm peek must hit");
  (* A fresh registry peeks the disk store too. *)
  let reg2 = Registry.create ~dir () in
  Alcotest.(check bool) "peek loads from disk" true
    (Registry.find_cached reg2 topo s <> None);
  rm_rf dir

let test_disk_usage_accounting () =
  let dir = fresh_dir () in
  let topo = ring 6 in
  let s = spec Pattern.All_gather 6 in
  (* Memory-only registry: the disk store reports all zeros, not an error. *)
  let mem = Registry.create () in
  let u0 = Registry.disk_usage mem in
  Alcotest.(check int) "no dir: entries" 0 u0.Registry.disk_entries;
  Alcotest.(check int) "no dir: bytes" 0 u0.Registry.disk_bytes;
  (* One warmed entry: counted with a positive byte size. *)
  let _, path = warm_entry dir topo s in
  let reg = Registry.create ~dir () in
  let u1 = Registry.disk_usage reg in
  Alcotest.(check int) "one entry" 1 u1.Registry.disk_entries;
  Alcotest.(check int) "no corrupt files" 0 u1.Registry.disk_corrupt;
  Alcotest.(check bool) "entry bytes positive" true (u1.Registry.disk_bytes > 0);
  (* Quarantined files stay on disk and stay accounted — the operator can
     see how much space the *.corrupt residue costs. *)
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc "definitely not json {{{");
  let reg2 = Registry.create ~dir () in
  let _, m = Registry.find_or_synthesize reg2 topo s in
  Alcotest.(check bool) "re-synthesized" true (m = `Miss);
  let u2 = Registry.disk_usage reg2 in
  Alcotest.(check int) "rewritten entry counted" 1 u2.Registry.disk_entries;
  Alcotest.(check int) "quarantined file counted" 1 u2.Registry.disk_corrupt;
  Alcotest.(check bool) "corrupt bytes included" true
    (u2.Registry.disk_bytes > 0);
  rm_rf dir

let test_failed_synthesis_releases_key () =
  (* A miss whose synthesis raises must release the single-flight key so
     the next request for the same key retries cleanly instead of
     deadlocking or serving the failure forever. *)
  let reg = Registry.create () in
  let topo = ring 6 in
  let s = spec Pattern.All_gather 6 in
  let calls = ref 0 in
  let flaky ~seed:_ ~domains:_ topo spec =
    incr calls;
    if !calls = 1 then raise (Synth.Stuck "injected transient failure")
    else Synth.synthesize topo spec
  in
  (match Registry.find_or_synthesize ~synthesize:flaky reg topo s with
  | _ -> Alcotest.fail "first attempt must re-raise the backend failure"
  | exception Synth.Stuck _ -> ());
  let result, m = Registry.find_or_synthesize ~synthesize:flaky reg topo s in
  Alcotest.(check int) "backend retried" 2 !calls;
  Alcotest.(check bool) "retry is a clean miss" true (m = `Miss);
  (match Synth.verify topo result with
  | Ok () -> ()
  | Error e -> Alcotest.failf "retried schedule invalid: %s" e);
  (* And the published result is now a plain hit. *)
  let _, m3 = Registry.find_or_synthesize ~synthesize:flaky reg topo s in
  Alcotest.(check bool) "then a hit" true (m3 = `Hit);
  Alcotest.(check int) "hit runs no synthesis" 2 !calls

let json_files dir =
  List.filter (fun f -> Filename.check_suffix f ".json") (files dir)

(* Set every entry's mtime except [skip] to [age] seconds in the past, so
   the eviction order is unambiguous age, never the filename tie-break. *)
let backdate dir ~skip ~age =
  let t = Unix.gettimeofday () -. age in
  List.iter
    (fun f ->
      if not (List.mem f skip) then Unix.utimes (Filename.concat dir f) t t)
    (json_files dir)

let test_disk_cap_evicts_oldest () =
  let dir = fresh_dir () in
  let topo = ring 6 in
  (* Same structure, different buffer sizes: three near-identical entry
     files, so a cap of ~2.5 entries holds exactly two. *)
  let s size = spec ~buffer_size:size Pattern.All_gather 6 in
  let reg0 = Registry.create ~dir () in
  ignore (Registry.find_or_synthesize reg0 topo (s 1e6));
  let entry_bytes = (Registry.disk_usage reg0).Registry.disk_bytes in
  Alcotest.(check bool) "probe entry has a size" true (entry_bytes > 0);
  rm_rf dir;
  let cap = (2 * entry_bytes) + (entry_bytes / 2) in
  let reg = Registry.create ~dir ~max_disk_bytes:cap () in
  ignore (Registry.find_or_synthesize reg topo (s 1e6));
  backdate dir ~skip:[] ~age:200.;
  let oldest = json_files dir in
  ignore (Registry.find_or_synthesize reg topo (s 2e6));
  backdate dir ~skip:oldest ~age:100.;
  Alcotest.(check int) "two entries fit the cap" 0 (Registry.evicted reg);
  ignore (Registry.find_or_synthesize reg topo (s 3e6));
  Alcotest.(check int) "third write evicts the oldest" 1 (Registry.evicted reg);
  let u = Registry.disk_usage reg in
  Alcotest.(check int) "two entries remain" 2 u.Registry.disk_entries;
  Alcotest.(check bool) "store fits the cap" true (u.Registry.disk_bytes <= cap);
  (* A fresh registry over the directory proves which entries survived:
     the oldest is gone, the two younger ones still load. *)
  let reg2 = Registry.create ~dir () in
  Alcotest.(check bool) "oldest entry evicted" true
    (Registry.find_cached reg2 topo (s 1e6) = None);
  Alcotest.(check bool) "middle entry kept" true
    (Registry.find_cached reg2 topo (s 2e6) <> None);
  Alcotest.(check bool) "newest entry kept" true
    (Registry.find_cached reg2 topo (s 3e6) <> None);
  rm_rf dir

let test_cap_never_evicts_just_written () =
  (* A cap smaller than a single entry still keeps the entry just written —
     the cache stays useful, the counter records the pressure. *)
  let dir = fresh_dir () in
  let topo = ring 6 in
  let reg = Registry.create ~dir ~max_disk_bytes:1 () in
  ignore (Registry.find_or_synthesize reg topo (spec Pattern.All_gather 6));
  Alcotest.(check int) "the only entry survives" 1
    (Registry.disk_usage reg).Registry.disk_entries;
  backdate dir ~skip:[] ~age:200.;
  ignore (Registry.find_or_synthesize reg topo (spec Pattern.All_reduce 6));
  Alcotest.(check int) "previous entry evicted" 1 (Registry.evicted reg);
  Alcotest.(check int) "newest entry survives" 1
    (Registry.disk_usage reg).Registry.disk_entries;
  rm_rf dir

let test_variant_cache_lines () =
  (* A sketched request (keyed by the sketch digest as [variant]) must get
     its own cache line and disk file, never aliasing the unconstrained
     schedule for the same (topology, spec). *)
  let dir = fresh_dir () in
  let topo = ring 6 in
  let s = spec Pattern.All_gather 6 in
  let reg = Registry.create ~dir () in
  let _, m1 = Registry.find_or_synthesize reg topo s in
  Alcotest.(check bool) "plain miss" true (m1 = `Miss);
  Alcotest.(check bool) "variant peek misses despite the plain entry" true
    (Registry.find_cached ~variant:"sketch-digest" reg topo s = None);
  let _, m2 = Registry.find_or_synthesize ~variant:"sketch-digest" reg topo s in
  Alcotest.(check bool) "variant synthesizes its own entry" true (m2 = `Miss);
  let _, m3 = Registry.find_or_synthesize ~variant:"sketch-digest" reg topo s in
  Alcotest.(check bool) "variant then hits" true (m3 = `Hit);
  let _, m4 = Registry.find_or_synthesize reg topo s in
  Alcotest.(check bool) "plain line undisturbed" true (m4 = `Hit);
  Alcotest.(check int) "two disk files" 2
    (Registry.disk_usage reg).Registry.disk_entries;
  (* Both lines survive a restart. *)
  let reg2 = Registry.create ~dir () in
  Alcotest.(check bool) "plain line reloads" true
    (Registry.find_cached reg2 topo s <> None);
  Alcotest.(check bool) "variant line reloads" true
    (Registry.find_cached ~variant:"sketch-digest" reg2 topo s <> None);
  rm_rf dir

let () =
  Alcotest.run "registry"
    [
      ( "crash-safety",
        [
          Alcotest.test_case "atomic writes leave no droppings" `Quick
            test_atomic_write_no_droppings;
          Alcotest.test_case "truncated entry quarantined" `Quick test_truncated_entry;
          Alcotest.test_case "zero-length entry quarantined" `Quick
            test_zero_length_entry;
          Alcotest.test_case "garbage entry quarantined" `Quick test_garbage_entry;
          Alcotest.test_case "checksum mismatch quarantined" `Quick
            test_checksum_mismatch_entry;
          Alcotest.test_case "foreign checksum-less entry loads" `Quick
            test_foreign_entry_without_checksum_loads;
        ] );
      ( "serving-paths",
        [
          Alcotest.test_case "find_cached peeks memory and disk" `Quick
            test_find_cached_peek;
          Alcotest.test_case "disk usage accounting" `Quick
            test_disk_usage_accounting;
          Alcotest.test_case "failed synthesis releases the key" `Quick
            test_failed_synthesis_releases_key;
        ] );
      ( "disk-cap",
        [
          Alcotest.test_case "cap evicts oldest-mtime entries" `Quick
            test_disk_cap_evicts_oldest;
          Alcotest.test_case "cap never evicts the entry just written" `Quick
            test_cap_never_evicts_just_written;
          Alcotest.test_case "variants get their own cache lines" `Quick
            test_variant_cache_lines;
        ] );
    ]
