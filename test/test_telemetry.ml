(* Tests for the telemetry layer: the DDSketch-style quantile sketch
   (rank-error bound, lossless associative merge), the Prometheus text
   exposition renderer and its parser-backed validator (escaping round
   trips, structural rejections), and the logfmt access-log codec. *)

module Obs = Tacos_obs.Obs
module Quantile = Tacos_obs.Quantile
module Expo = Tacos_obs.Expo
module Logfmt = Tacos_util.Logfmt

let feq a b = (Float.is_nan a && Float.is_nan b) || a = b

(* --- quantile sketch ----------------------------------------------------- *)

let test_quantile_empty () =
  let q = Quantile.create () in
  Alcotest.(check int) "count" 0 (Quantile.count q);
  Alcotest.(check bool) "median is nan" true (Float.is_nan (Quantile.quantile q 0.5));
  Alcotest.(check bool) "min is nan" true (Float.is_nan (Quantile.min_value q));
  Alcotest.(check bool) "empty summary" true (Quantile.summary q = [])

let test_quantile_single_value () =
  let q = Quantile.create () in
  Quantile.add q 5.;
  List.iter
    (fun p ->
      let v = Quantile.quantile q p in
      Alcotest.(check bool)
        (Printf.sprintf "q%g within 1%% of 5 (got %g)" p v)
        true
        (Float.abs (v -. 5.) <= 0.05))
    [ 0.; 0.5; 1. ]

let test_quantile_rank_error_uniform () =
  (* 1..1000: nearest-rank q-quantile is exactly [ceil (q * 1000)], and the
     sketch's estimate must land within its relative-error bound of it. *)
  let q = Quantile.create ~accuracy:0.01 () in
  for v = 1 to 1000 do
    Quantile.add q (float_of_int v)
  done;
  Alcotest.(check int) "count" 1000 (Quantile.count q);
  List.iter
    (fun p ->
      let truth = float_of_int (int_of_float (Float.ceil (p *. 1000.))) in
      let est = Quantile.quantile q p in
      Alcotest.(check bool)
        (Printf.sprintf "q%g: |%g - %g| within 1%%" p est truth)
        true
        (Float.abs (est -. truth) <= (0.01 *. truth) +. 1e-9))
    [ 0.5; 0.9; 0.95; 0.99 ]

let test_quantile_zero_bucket () =
  let q = Quantile.create () in
  List.iter (Quantile.add q) [ -3.; 0.; 1e-15 ];
  Alcotest.(check int) "count" 3 (Quantile.count q);
  Alcotest.(check (float 0.)) "all collapse to the zero bucket" 0.
    (Quantile.quantile q 0.99)

let test_quantile_raises () =
  let q = Quantile.create () in
  Quantile.add q 1.;
  Alcotest.check_raises "q outside [0,1]"
    (Invalid_argument "Quantile.quantile: q outside [0, 1]") (fun () ->
      ignore (Quantile.quantile q 1.5));
  (match Quantile.create ~accuracy:0. () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accuracy 0 must be rejected");
  let a = Quantile.create ~accuracy:0.01 ()
  and b = Quantile.create ~accuracy:0.02 () in
  match Quantile.merge a b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mismatched accuracies must not merge"

let lists3 =
  QCheck.(
    make
      Gen.(
        triple
          (list_size (int_range 0 80) (int_range 1 1_000_000))
          (list_size (int_range 0 80) (int_range 1 1_000_000))
          (list_size (int_range 0 80) (int_range 1 1_000_000))))

let sketch_of ints =
  let q = Quantile.create () in
  List.iter (fun v -> Quantile.add q (float_of_int v)) ints;
  q

let prop_merge_associative =
  QCheck.Test.make ~name:"merge is associative" ~count:50 lists3
    (fun (xs, ys, zs) ->
      let a = sketch_of xs and b = sketch_of ys and c = sketch_of zs in
      let l = Quantile.merge (Quantile.merge a b) c in
      let r = Quantile.merge a (Quantile.merge b c) in
      Quantile.count l = Quantile.count r
      && feq (Quantile.min_value l) (Quantile.min_value r)
      && feq (Quantile.max_value l) (Quantile.max_value r)
      && List.for_all
           (fun p -> feq (Quantile.quantile l p) (Quantile.quantile r p))
           [ 0.; 0.5; 0.9; 0.99; 1. ])

let prop_rank_error =
  QCheck.Test.make ~name:"estimates respect the rank-error bound" ~count:50
    QCheck.(make Gen.(list_size (int_range 1 300) (int_range 1 1_000_000)))
    (fun ints ->
      let q = sketch_of ints in
      let sorted = Array.of_list (List.map float_of_int ints) in
      Array.sort compare sorted;
      let n = Array.length sorted in
      List.for_all
        (fun p ->
          let rank = max 1 (int_of_float (Float.ceil (p *. float_of_int n))) in
          let truth = sorted.(rank - 1) in
          let est = Quantile.quantile q p in
          Float.abs (est -. truth) <= (Quantile.accuracy q *. truth) +. 1e-9)
        [ 0.5; 0.9; 0.95; 0.99 ])

(* --- exposition rendering ------------------------------------------------ *)

let parse_ok text =
  match Expo.parse text with
  | Ok samples -> samples
  | Error e -> Alcotest.failf "exposition unparseable: %s\n%s" e text

let validate_ok text =
  match Expo.validate text with
  | Ok () -> ()
  | Error e -> Alcotest.failf "exposition invalid: %s\n%s" e text

let test_expo_escaping_roundtrip () =
  (* Label values carrying every escapable character must survive a
     render -> parse round trip unchanged. *)
  let nasty = "quote \" backslash \\ newline \n done" in
  let fam =
    Expo.family ~name:"tacos_test_escapes" ~help:"help with \\ and \n inside"
      ~kind:Expo.Gauge
      [ Expo.sample ~labels:[ ("path", nasty); ("plain", "ok") ] 1. ]
  in
  let text = Expo.render [ fam ] in
  validate_ok text;
  match parse_ok text with
  | [ e ] ->
    Alcotest.(check string) "metric" "tacos_test_escapes" e.Expo.metric;
    Alcotest.(check string) "escaped label round-trips" nasty
      (List.assoc "path" e.Expo.label_set);
    Alcotest.(check string) "plain label" "ok" (List.assoc "plain" e.Expo.label_set)
  | l -> Alcotest.failf "expected one sample, parsed %d" (List.length l)

let test_expo_sanitize () =
  Alcotest.(check string) "dots" "serve_hits" (Expo.sanitize_name "serve.hits");
  Alcotest.(check string) "leading digit" "_9lives" (Expo.sanitize_name "9lives");
  Alcotest.(check string) "spaces and dashes" "a_b_c" (Expo.sanitize_name "a b-c")

let test_expo_values () =
  let fam =
    Expo.family ~name:"tacos_test_vals" ~help:"values" ~kind:Expo.Untyped
      [
        Expo.sample ~labels:[ ("k", "inf") ] Float.infinity;
        Expo.sample ~labels:[ ("k", "ninf") ] Float.neg_infinity;
        Expo.sample ~labels:[ ("k", "int") ] 42.;
      ]
  in
  let text = Expo.render [ fam ] in
  validate_ok text;
  let v key =
    List.find (fun e -> List.assoc "k" e.Expo.label_set = key) (parse_ok text)
  in
  Alcotest.(check bool) "+Inf" true ((v "inf").Expo.v = Float.infinity);
  Alcotest.(check bool) "-Inf" true ((v "ninf").Expo.v = Float.neg_infinity);
  Alcotest.(check bool) "integral" true ((v "int").Expo.v = 42.)

let test_expo_of_quantile () =
  let q = Quantile.create () in
  for v = 1 to 100 do
    Quantile.add q (float_of_int v)
  done;
  let text =
    Expo.render
      [
        Expo.of_quantile ~name:"tacos_test_lat" ~help:"latency"
          ~labels:[ ("verb", "synthesize") ] q;
      ]
  in
  validate_ok text;
  let samples = parse_ok text in
  Alcotest.(check bool) "has the p99 quantile sample" true
    (List.exists
       (fun e ->
         e.Expo.metric = "tacos_test_lat"
         && List.assoc_opt "quantile" e.Expo.label_set = Some "0.99")
       samples);
  let count =
    List.find (fun e -> e.Expo.metric = "tacos_test_lat_count") samples
  in
  Alcotest.(check bool) "count sample" true (count.Expo.v = 100.);
  (* An empty sketch still renders a valid summary (sum/count at zero). *)
  let empty =
    Expo.render
      [ Expo.of_quantile ~name:"tacos_test_empty" ~help:"none" (Quantile.create ()) ]
  in
  validate_ok empty

let test_expo_of_obs () =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () -> Obs.disable ())
    (fun () ->
      Obs.incr (Obs.counter "tele.test.count");
      Obs.observe_max (Obs.gauge "tele.test.peak") 7.5;
      Obs.observe (Obs.histogram "tele.test.sizes") 3.;
      Obs.observe (Obs.histogram "tele.test.sizes") 900.;
      let text = Expo.render (Expo.of_obs ()) in
      validate_ok text;
      let samples = parse_ok text in
      let value name =
        match List.find_opt (fun e -> e.Expo.metric = name) samples with
        | Some e -> e.Expo.v
        | None -> Alcotest.failf "no sample %s in of_obs output" name
      in
      Alcotest.(check bool) "counter renders as _total" true
        (value "tele_test_count_total" = 1.);
      Alcotest.(check bool) "gauge value" true (value "tele_test_peak" = 7.5);
      Alcotest.(check bool) "histogram count" true
        (value "tele_test_sizes_count" = 2.);
      (* The cumulative convention: the +Inf bucket equals the count. *)
      Alcotest.(check bool) "+Inf bucket closes the histogram" true
        (List.exists
           (fun e ->
             e.Expo.metric = "tele_test_sizes_bucket"
             && List.assoc_opt "le" e.Expo.label_set = Some "+Inf"
             && e.Expo.v = 2.)
           samples))

let test_expo_validate_rejects () =
  let bad text why =
    match Expo.validate text with
    | Ok () -> Alcotest.failf "validator accepted %s: %s" why text
    | Error _ -> ()
  in
  bad "# TYPE m counter\n# TYPE m counter\nm_total 1\n" "a duplicate TYPE";
  bad "m_total 1\n# TYPE m_total counter\n" "TYPE after samples";
  bad "# TYPE m gauge\nm{a=\"1\"} 1\nm{a=\"1\"} 2\n" "a duplicate series";
  bad "# TYPE m counter\nm -1\n" "a negative counter";
  bad "# TYPE m summary\nm{quantile=\"1.5\"} 3\nm_sum 3\nm_count 1\n"
    "a quantile outside [0,1]";
  bad "# TYPE m histogram\nm_bucket{le=\"1\"} 1\nm_sum 1\nm_count 1\n"
    "a histogram without +Inf";
  bad
    "# TYPE m histogram\nm_bucket{le=\"1\"} 5\nm_bucket{le=\"+Inf\"} 3\nm_sum 1\nm_count 3\n"
    "non-cumulative buckets";
  bad "# TYPE m gauge\nm{__reserved=\"x\"} 1\n" "a reserved label name";
  bad "bad-name 1\n" "an invalid metric name";
  bad "m 1 2 3\n" "trailing junk after the timestamp";
  bad "m {a=\"unterminated} 1\n" "an unterminated label value"

(* --- logfmt -------------------------------------------------------------- *)

let test_logfmt_roundtrip () =
  let record =
    [
      ("t", "12.500000"); ("id", "r-1"); ("msg", "hello world");
      ("q", "say \"hi\""); ("path", "a\\b"); ("nl", "a\nb"); ("empty", "");
      ("eq", "a=b");
    ]
  in
  let line = Logfmt.encode record in
  (match Logfmt.parse line with
  | Ok kvs -> Alcotest.(check bool) "round trip" true (kvs = record)
  | Error e -> Alcotest.failf "logfmt unparseable: %s (%s)" e line);
  (* Simple values stay bare — the records must remain grep-friendly. *)
  let simple = Logfmt.encode [ ("verb", "synthesize"); ("elapsed_ms", "0.113") ] in
  Alcotest.(check string) "bare encoding" "verb=synthesize elapsed_ms=0.113" simple

let test_logfmt_bad_keys () =
  List.iter
    (fun k ->
      match Logfmt.encode [ (k, "v") ] with
      | exception Invalid_argument _ -> ()
      | s -> Alcotest.failf "key %S should be rejected, encoded %S" k s)
    [ ""; "a b"; "a=b"; "a\"b" ]

let test_logfmt_parse_errors () =
  (match Logfmt.parse "=x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty key should not parse");
  (match Logfmt.parse "k=\"unterminated" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unterminated quote should not parse");
  match Logfmt.parse "a=1    b=2" with
  | Ok [ ("a", "1"); ("b", "2") ] -> ()
  | _ -> Alcotest.fail "runs of spaces between pairs must be accepted"

let () =
  Alcotest.run "telemetry"
    [
      ( "quantile",
        [
          Alcotest.test_case "empty sketch" `Quick test_quantile_empty;
          Alcotest.test_case "single value" `Quick test_quantile_single_value;
          Alcotest.test_case "rank error on 1..1000" `Quick
            test_quantile_rank_error_uniform;
          Alcotest.test_case "zero bucket" `Quick test_quantile_zero_bucket;
          Alcotest.test_case "argument validation" `Quick test_quantile_raises;
        ] );
      ( "quantile-properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_merge_associative; prop_rank_error ] );
      ( "exposition",
        [
          Alcotest.test_case "escaping round trip" `Quick test_expo_escaping_roundtrip;
          Alcotest.test_case "name sanitization" `Quick test_expo_sanitize;
          Alcotest.test_case "non-finite and integral values" `Quick test_expo_values;
          Alcotest.test_case "quantile summary family" `Quick test_expo_of_quantile;
          Alcotest.test_case "of_obs renders the registry" `Quick test_expo_of_obs;
          Alcotest.test_case "validator rejections" `Quick test_expo_validate_rejects;
        ] );
      ( "logfmt",
        [
          Alcotest.test_case "round trip" `Quick test_logfmt_roundtrip;
          Alcotest.test_case "bad keys rejected" `Quick test_logfmt_bad_keys;
          Alcotest.test_case "parse errors" `Quick test_logfmt_parse_errors;
        ] );
    ]
