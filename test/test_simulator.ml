(* Tests for the congestion-aware analytical network simulator: FCFS link
   serialization, store-and-forward routing, dependency handling, parallel
   links, and the statistics the figures are built from. *)

open Tacos_topology
open Tacos_collective
open Tacos_sim

let feq = Alcotest.float 1e-9

let two_npu_line alpha beta =
  let t = Topology.create 2 in
  Topology.add_bidir t 0 1 (Link.make ~alpha ~beta);
  t

let add = Program.add

let test_single_transfer () =
  let topo = two_npu_line 2. 0.5 in
  let b = Program.builder () in
  ignore (add b ~src:0 ~dst:1 ~size:10. ());
  let r = Engine.run topo (Program.build b) in
  Alcotest.check feq "alpha + beta*size" 7. r.Engine.finish_time

let test_fcfs_serialization () =
  (* Two messages racing for one link serialize back to back; the
     propagation latency of the second overlaps the first's. *)
  let topo = two_npu_line 1. 1. in
  let b = Program.builder () in
  ignore (add b ~src:0 ~dst:1 ~size:1. ());
  ignore (add b ~src:0 ~dst:1 ~size:1. ());
  let r = Engine.run topo (Program.build b) in
  Alcotest.check feq "serialized" 3. r.Engine.finish_time

let test_parallel_links_run_concurrently () =
  let topo = Topology.create 2 in
  Topology.add_bidir topo 0 1 (Link.make ~alpha:1. ~beta:1.);
  Topology.add_bidir topo 0 1 (Link.make ~alpha:1. ~beta:1.);
  let b = Program.builder () in
  ignore (add b ~src:0 ~dst:1 ~size:1. ());
  ignore (add b ~src:0 ~dst:1 ~size:1. ());
  let r = Engine.run topo (Program.build b) in
  Alcotest.check feq "spread over both links" 2. r.Engine.finish_time

let test_store_and_forward () =
  (* 0 -> 1 -> 2: a routed transfer pays each hop in sequence. *)
  let topo = Topology.create 3 in
  Topology.add_bidir topo 0 1 (Link.make ~alpha:1. ~beta:1.);
  Topology.add_bidir topo 1 2 (Link.make ~alpha:1. ~beta:1.);
  let b = Program.builder () in
  ignore (add b ~src:0 ~dst:2 ~size:1. ());
  let r = Engine.run topo (Program.build b) in
  Alcotest.check feq "two hops" 4. r.Engine.finish_time

let test_dependencies_chain () =
  let topo = two_npu_line 1. 0. in
  let b = Program.builder () in
  let first = add b ~src:0 ~dst:1 ~size:0. () in
  let second = add b ~deps:[ first ] ~src:1 ~dst:0 ~size:0. () in
  ignore (add b ~deps:[ second ] ~src:0 ~dst:1 ~size:0. ());
  let r = Engine.run topo (Program.build b) in
  Alcotest.check feq "three chained alphas" 3. r.Engine.finish_time

let test_local_transfer_is_instant () =
  let topo = two_npu_line 1. 0. in
  let b = Program.builder () in
  let gate = add b ~src:0 ~dst:0 ~size:0. () in
  ignore (add b ~deps:[ gate ] ~src:0 ~dst:1 ~size:0. ());
  let r = Engine.run topo (Program.build b) in
  Alcotest.check feq "only the link hop costs" 1. r.Engine.finish_time

let test_contention_vs_free_path () =
  (* Congestion effect: three transfers into the same link take 3x as long
     as three transfers on disjoint links (the Fig. 1/2a mechanism). *)
  let ring = Builders.ring ~link:(Link.make ~alpha:0. ~beta:1.) 6 in
  let contended = Program.builder () in
  for _ = 1 to 3 do
    ignore (add contended ~src:0 ~dst:1 ~size:1. ())
  done;
  let spread = Program.builder () in
  ignore (add spread ~src:0 ~dst:1 ~size:1. ());
  ignore (add spread ~src:2 ~dst:3 ~size:1. ());
  ignore (add spread ~src:4 ~dst:5 ~size:1. ());
  let rc = Engine.run ring (Program.build contended) in
  let rs = Engine.run ring (Program.build spread) in
  Alcotest.check feq "serialized" 3. rc.Engine.finish_time;
  Alcotest.check feq "parallel" 1. rs.Engine.finish_time

let test_link_stats () =
  let topo = two_npu_line 1. 1. in
  let b = Program.builder () in
  ignore (add b ~src:0 ~dst:1 ~size:3. ());
  ignore (add b ~src:0 ~dst:1 ~size:2. ());
  let r = Engine.run topo (Program.build b) in
  let forward = (List.hd (Topology.find_links topo ~src:0 ~dst:1)).Topology.id in
  Alcotest.check feq "bytes" 5. r.Engine.link_bytes.(forward);
  (* busy counts serialization only; alpha is propagation, not occupancy. *)
  Alcotest.check feq "busy" 5. r.Engine.link_busy.(forward);
  Alcotest.(check int) "two service intervals" 2
    (List.length r.Engine.link_intervals.(forward))

let test_utilization_accounting () =
  let topo = two_npu_line 0. 1. in
  let b = Program.builder () in
  ignore (add b ~src:0 ~dst:1 ~size:2. ());
  let r = Engine.run topo (Program.build b) in
  (* One of two links busy the whole run. *)
  Alcotest.check feq "average" 0.5 (Engine.average_utilization topo r);
  match Engine.utilization_timeline topo r ~bins:4 with
  | bins ->
    Alcotest.(check int) "bins" 4 (List.length bins);
    List.iter (fun (_, u) -> Alcotest.check feq "uniform" 0.5 u) bins

let test_cyclic_program_rejected () =
  (* validate_acyclic is checked before running. Builders cannot produce a
     cycle, so hit the engine-level completeness guard via a dangling dep
     instead. *)
  let b = Program.builder () in
  (match add b ~deps:[ 5 ] ~src:0 ~dst:1 ~size:1. () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "dangling dep accepted")

let test_cyclic_import_is_typed_error () =
  (* A forged cyclic program (only Program.import can make one) must come
     back as a typed Simulation_error naming the offending transfer — not
     the old bare Failure. *)
  let topo = Builders.ring 2 in
  let program =
    Program.import
      [|
        ("a", 0, 1, 1., [ 1 ]);  (* depends on a later transfer: cycle *)
        ("b", 1, 0, 1., [ 0 ]);
      |]
  in
  (match Program.validate_acyclic program with
  | Ok () -> Alcotest.fail "cycle must not validate"
  | Error _ -> ());
  match Engine.run topo program with
  | exception Engine.Simulation_error { tid; tag; kind = Engine.Cyclic_program { dep } } ->
    Alcotest.(check int) "offending transfer" 0 tid;
    Alcotest.(check string) "its tag" "a" tag;
    Alcotest.(check int) "forward dep" 1 dep
  | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "cyclic program must not run"

let test_simulates_synthesized_schedule () =
  (* Program.of_schedule: the simulator replays a TACOS schedule in (at
     most) its synthesized makespan — the schedule is congestion-free, and
     work-conserving FCFS can only start transfers earlier. *)
  let topo = Builders.mesh ~link:(Link.make ~alpha:1. ~beta:0.) [| 3; 3 |] in
  let spec = Spec.make ~pattern:Pattern.All_gather ~npus:9 () in
  let result = Tacos.Synthesizer.synthesize topo spec in
  let program = Program.of_schedule ~chunk_size:(Spec.chunk_size spec) result.schedule in
  let r = Engine.run topo program in
  (* of_schedule keeps only the dependency structure; the greedy FCFS
     replay may reshuffle link assignments either way (work-conserving can
     start earlier, scheduling anomalies can finish later), so only the
     ballpark is guaranteed. *)
  Alcotest.(check bool) "within 60% above the schedule" true
    (r.Engine.finish_time <= result.collective_time *. 1.6);
  Alcotest.(check bool) "within 2x below the schedule" true
    (r.Engine.finish_time >= result.collective_time /. 2.)

let test_routing_size_override () =
  (* With a fat-but-slow-start link vs a thin-but-instant link, the chosen
     route depends on the size used to cost paths. *)
  let topo = Topology.create 3 in
  (* Path A: direct, alpha=10, fast. Path B: two hops, alpha=0, slow. *)
  ignore (Topology.add_link topo ~src:0 ~dst:2 (Link.make ~alpha:10. ~beta:0.001));
  ignore (Topology.add_link topo ~src:0 ~dst:1 (Link.make ~alpha:0. ~beta:1.));
  ignore (Topology.add_link topo ~src:1 ~dst:2 (Link.make ~alpha:0. ~beta:1.));
  ignore (Topology.add_link topo ~src:2 ~dst:0 (Link.make ~alpha:0. ~beta:1.));
  let b = Program.builder () in
  ignore (add b ~src:0 ~dst:2 ~size:1. ());
  let small = Engine.run ~routing_size:1. topo (Program.build b) in
  let b2 = Program.builder () in
  ignore (add b2 ~src:0 ~dst:2 ~size:1. ());
  let large = Engine.run ~routing_size:1000. topo (Program.build b2) in
  Alcotest.check feq "small goes the cheap-alpha way" 2. small.Engine.finish_time;
  Alcotest.check feq "large takes the fat link" 10.001 large.Engine.finish_time

let test_blocking_alpha_model () =
  (* Under Blocking_alpha the link is held for alpha too: two queued
     messages finish at 2(alpha + beta*size). *)
  let topo = two_npu_line 1. 1. in
  let b = Program.builder () in
  ignore (add b ~src:0 ~dst:1 ~size:1. ());
  ignore (add b ~src:0 ~dst:1 ~size:1. ());
  let blocking = Engine.run ~model:Engine.Blocking_alpha topo (Program.build b) in
  Alcotest.check feq "alpha blocks" 4. blocking.Engine.finish_time;
  let b2 = Program.builder () in
  ignore (add b2 ~src:0 ~dst:1 ~size:1. ());
  ignore (add b2 ~src:0 ~dst:1 ~size:1. ());
  let pipelined = Engine.run topo (Program.build b2) in
  Alcotest.check feq "alpha pipelines" 3. pipelined.Engine.finish_time

let test_blocking_alpha_spreads_parallel_links () =
  (* Regression: enqueue-time backlog accounting used the pipelined hold
     (serialization only), so under Blocking_alpha with beta=0 every queued
     message predicted an instantly-free link and all of them piled onto the
     first of two identical parallel links (8 alphas serialized instead of
     4). Backlog must advance by the same hold the service model charges. *)
  let topo = Topology.create 2 in
  Topology.add_bidir topo 0 1 (Link.make ~alpha:1. ~beta:0.);
  Topology.add_bidir topo 0 1 (Link.make ~alpha:1. ~beta:0.);
  let b = Program.builder () in
  for _ = 1 to 8 do
    ignore (add b ~src:0 ~dst:1 ~size:1. ())
  done;
  let r = Engine.run ~model:Engine.Blocking_alpha topo (Program.build b) in
  Alcotest.check feq "4 rounds of blocked alpha" 4. r.Engine.finish_time;
  List.iter
    (fun (l : Topology.edge) ->
      Alcotest.check feq "even bytes split" 4. r.Engine.link_bytes.(l.Topology.id))
    (Topology.find_links topo ~src:0 ~dst:1)

let test_pipelined_spreads_parallel_links () =
  (* The same even-split property for the default model, where the hold is
     the serialization time. *)
  let topo = Topology.create 2 in
  Topology.add_bidir topo 0 1 (Link.make ~alpha:0. ~beta:1.);
  Topology.add_bidir topo 0 1 (Link.make ~alpha:0. ~beta:1.);
  let b = Program.builder () in
  for _ = 1 to 8 do
    ignore (add b ~src:0 ~dst:1 ~size:1. ())
  done;
  let r = Engine.run topo (Program.build b) in
  Alcotest.check feq "4 serialized per link" 4. r.Engine.finish_time;
  List.iter
    (fun (l : Topology.edge) ->
      Alcotest.check feq "even bytes split" 4. r.Engine.link_bytes.(l.Topology.id))
    (Topology.find_links topo ~src:0 ~dst:1)

let test_deterministic () =
  let topo = Builders.torus [| 3; 3 |] in
  let spec = Spec.make ~buffer_size:1e6 ~pattern:Pattern.All_reduce ~npus:9 () in
  let p () = Tacos_baselines.Algo.(program ring) topo spec in
  let a = Engine.run topo (p ()) in
  let b = Engine.run topo (p ()) in
  Alcotest.check feq "identical runs" a.Engine.finish_time b.Engine.finish_time

(* --- mid-flight faults -------------------------------------------------- *)

let link_id topo ~src ~dst =
  match Topology.find_links topo ~src ~dst with
  | e :: _ -> e.Topology.id
  | [] -> Alcotest.failf "no link %d->%d" src dst

let test_fault_reroutes_on_ring () =
  (* 4-node ring, one transfer 0->1 over the direct link. Killing that link
     halfway through service must abort the message, un-credit the unsent
     half, and reroute it the long way (0->3->2->1). *)
  let topo = Builders.ring ~link:(Link.make ~alpha:0. ~beta:1.) 4 in
  let victim = link_id topo ~src:0 ~dst:1 in
  let b = Program.builder () in
  ignore (add b ~src:0 ~dst:1 ~size:10. ());
  let r =
    Engine.run ~faults:[ Engine.Link_dies { link = victim; at = 5. } ] topo
      (Program.build b)
  in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "dead link's service interval truncated at the fault" [ (0., 5.) ]
    r.Engine.link_intervals.(victim);
  List.iter
    (fun (s, e) ->
      Alcotest.(check bool) "no activity on the dead link after the fault" true
        (s <= 5. && e <= 5.))
    r.Engine.link_intervals.(victim);
  Alcotest.check feq "unsent half un-credited" 5. r.Engine.link_bytes.(victim);
  Alcotest.check feq "busy truncated" 5. r.Engine.link_busy.(victim);
  (* Rerouted from node 0 at t=5 over three 10-second hops. *)
  Alcotest.check feq "rerouted the long way" 35. r.Engine.finish_time;
  Alcotest.(check int) "nothing stranded" 0 (List.length r.Engine.stranded);
  Alcotest.check feq "hop 0->3 carried it" 10. r.Engine.link_bytes.(link_id topo ~src:0 ~dst:3)

let test_fault_strands_when_disconnected () =
  (* Two NPUs, one link each way: killing 0->1 mid-service leaves the
     destination unreachable — a structured stranding, not an exception. *)
  let topo = Topology.create 2 in
  Topology.add_bidir topo 0 1 (Link.make ~alpha:0. ~beta:1.);
  let victim = link_id topo ~src:0 ~dst:1 in
  let b = Program.builder () in
  let first = add b ~src:0 ~dst:1 ~size:10. () in
  ignore (add b ~deps:[ first ] ~src:1 ~dst:0 ~size:1. ());
  let r =
    Engine.run ~faults:[ Engine.Link_dies { link = victim; at = 5. } ] topo
      (Program.build b)
  in
  (match r.Engine.stranded with
  | [ s ] ->
    Alcotest.(check int) "stranded transfer" first s.Engine.tid;
    Alcotest.(check int) "stuck at the source" 0 s.Engine.at_npu;
    Alcotest.(check int) "towards NPU 1" 1 s.Engine.dst;
    Alcotest.check feq "discovered at the fault time" 5. s.Engine.time
  | l -> Alcotest.failf "expected one stranding, got %d" (List.length l));
  Alcotest.(check bool) "stranded transfer never finishes" true
    (r.Engine.transfer_finish.(first) = infinity);
  Alcotest.(check bool) "dependent of a stranded transfer never finishes" true
    (r.Engine.transfer_finish.(first + 1) = infinity)

let test_fault_degrade_applies_to_later_services () =
  (* Two queued messages: the first is mid-service when the link degrades
     and finishes at its negotiated rate; the second serializes at the
     degraded beta. *)
  let topo = two_npu_line 0. 1. in
  let victim = link_id topo ~src:0 ~dst:1 in
  let b = Program.builder () in
  ignore (add b ~src:0 ~dst:1 ~size:10. ());
  ignore (add b ~src:0 ~dst:1 ~size:10. ());
  let r =
    Engine.run
      ~faults:[ Engine.Link_degrades { link = victim; factor = 2.; at = 5. } ]
      topo (Program.build b)
  in
  Alcotest.check feq "committed service unchanged, next one at 2x beta" 30.
    r.Engine.finish_time

let test_fault_recovery_restores_link () =
  (* Two parallel 0->1 links. Kill one mid-service (its message drains onto
     the survivor), then recover it; a transfer launched after the recovery
     must prefer the recovered idle link over the backlogged survivor. *)
  let topo = Topology.create 2 in
  let a = Topology.add_link topo ~src:0 ~dst:1 (Link.make ~alpha:0. ~beta:1.) in
  ignore (Topology.add_link topo ~src:0 ~dst:1 (Link.make ~alpha:0. ~beta:1.));
  ignore (Topology.add_link topo ~src:1 ~dst:0 (Link.make ~alpha:0. ~beta:1.));
  let b = Program.builder () in
  let m1 = add b ~src:0 ~dst:1 ~size:10. () in
  ignore (add b ~src:0 ~dst:1 ~size:10. ());
  ignore (add b ~deps:[ m1 ] ~src:0 ~dst:1 ~size:10. ());
  let r =
    Engine.run
      ~faults:
        [
          Engine.Link_dies { link = a; at = 5. };
          Engine.Link_recovers { link = a; at = 12. };
        ]
      topo (Program.build b)
  in
  (* m1 on link a aborted at 5, drains behind m2 on link b (busy 0-10),
     re-served 10-20; m3 launches at m1's completion (20) and must take the
     recovered link a, not queue behind b. *)
  Alcotest.check feq "drained message completes on the survivor" 30. r.Engine.finish_time;
  (match r.Engine.link_intervals.(a) with
  | [ (0., 5.); (s, e) ] ->
    Alcotest.check feq "recovered link serves the late transfer" 20. s;
    Alcotest.check feq "at the healthy rate" 30. e
  | l -> Alcotest.failf "unexpected intervals on recovered link (%d)" (List.length l));
  Alcotest.(check int) "nothing stranded" 0 (List.length r.Engine.stranded)

let test_fault_dead_link_ineligible_at_enqueue () =
  (* A link dead from t=0 must not win the least-backlogged parallel-link
     choice on its stale zero backlog. *)
  let topo = Topology.create 2 in
  let a = Topology.add_link topo ~src:0 ~dst:1 (Link.make ~alpha:0. ~beta:1.) in
  let b' = Topology.add_link topo ~src:0 ~dst:1 (Link.make ~alpha:0. ~beta:1.) in
  ignore (Topology.add_link topo ~src:1 ~dst:0 (Link.make ~alpha:0. ~beta:1.));
  let b = Program.builder () in
  ignore (add b ~src:0 ~dst:1 ~size:1. ());
  ignore (add b ~src:0 ~dst:1 ~size:1. ());
  let r =
    Engine.run ~faults:[ Engine.Link_dies { link = a; at = 0. } ] topo
      (Program.build b)
  in
  Alcotest.check feq "dead link carries nothing" 0. r.Engine.link_bytes.(a);
  Alcotest.check feq "survivor carries both" 2. r.Engine.link_bytes.(b');
  Alcotest.check feq "serialized on the survivor" 2. r.Engine.finish_time

let test_fault_replay_deterministic () =
  (* Equal-time events are common at fault timestamps; two identical runs
     must produce byte-identical reports. *)
  let topo = Builders.torus [| 3; 3 |] in
  let spec = Spec.make ~buffer_size:1e6 ~pattern:Pattern.All_reduce ~npus:9 () in
  let faults =
    [
      Engine.Link_dies { link = 0; at = 1e-6 };
      Engine.Link_degrades { link = 1; factor = 2.; at = 1e-6 };
      Engine.Link_dies { link = 2; at = 1e-6 };
    ]
  in
  let run () =
    Engine.run ~faults topo (Tacos_baselines.Algo.(program ring) topo spec)
  in
  let a = run () and b = run () in
  Alcotest.check feq "same finish" a.Engine.finish_time b.Engine.finish_time;
  Alcotest.(check bool) "same per-link bytes" true (a.Engine.link_bytes = b.Engine.link_bytes);
  Alcotest.(check bool) "same per-transfer finishes" true
    (a.Engine.transfer_finish = b.Engine.transfer_finish)

let test_fault_no_route_without_faults_is_typed () =
  (* A healthy-fabric routing hole raises the typed error, not Failure. *)
  let topo = Topology.create 2 in
  ignore (Topology.add_link topo ~src:1 ~dst:0 (Link.make ~alpha:0. ~beta:1.));
  let b = Program.builder () in
  ignore (add b ~tag:"t0" ~src:0 ~dst:1 ~size:1. ());
  match Engine.run topo (Program.build b) with
  | _ -> Alcotest.fail "expected Simulation_error"
  | exception Engine.Simulation_error { tid = 0; kind = Engine.No_route _; _ } -> ()
  | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)

let () =
  Alcotest.run "simulator"
    [
      ( "engine",
        [
          Alcotest.test_case "single transfer" `Quick test_single_transfer;
          Alcotest.test_case "FCFS serialization" `Quick test_fcfs_serialization;
          Alcotest.test_case "parallel links" `Quick test_parallel_links_run_concurrently;
          Alcotest.test_case "store and forward" `Quick test_store_and_forward;
          Alcotest.test_case "dependency chain" `Quick test_dependencies_chain;
          Alcotest.test_case "local transfers instant" `Quick
            test_local_transfer_is_instant;
          Alcotest.test_case "contention vs free path" `Quick test_contention_vs_free_path;
        ] );
      ( "stats",
        [
          Alcotest.test_case "link stats" `Quick test_link_stats;
          Alcotest.test_case "utilization" `Quick test_utilization_accounting;
        ] );
      ( "program",
        [
          Alcotest.test_case "dangling dep rejected" `Quick test_cyclic_program_rejected;
          Alcotest.test_case "cyclic import is a typed error" `Quick
            test_cyclic_import_is_typed_error;
          Alcotest.test_case "replays TACOS schedules" `Quick
            test_simulates_synthesized_schedule;
          Alcotest.test_case "routing size matters" `Quick test_routing_size_override;
          Alcotest.test_case "blocking-alpha model" `Quick test_blocking_alpha_model;
          Alcotest.test_case "blocking-alpha spreads parallel links" `Quick
            test_blocking_alpha_spreads_parallel_links;
          Alcotest.test_case "pipelined spreads parallel links" `Quick
            test_pipelined_spreads_parallel_links;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
        ] );
      ( "faults",
        [
          Alcotest.test_case "ring reroutes around a dead link" `Quick
            test_fault_reroutes_on_ring;
          Alcotest.test_case "disconnection strands, not raises" `Quick
            test_fault_strands_when_disconnected;
          Alcotest.test_case "degrade hits later services" `Quick
            test_fault_degrade_applies_to_later_services;
          Alcotest.test_case "recovery restores the link" `Quick
            test_fault_recovery_restores_link;
          Alcotest.test_case "dead link ineligible at enqueue" `Quick
            test_fault_dead_link_ineligible_at_enqueue;
          Alcotest.test_case "faulty replay is deterministic" `Quick
            test_fault_replay_deterministic;
          Alcotest.test_case "healthy no-route is typed" `Quick
            test_fault_no_route_without_faults_is_typed;
        ] );
    ]
