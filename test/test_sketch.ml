(* Tests for communication sketches (Tacos_sketch): the JSON codec, every
   typed rejection of [Sketch.compile] — crucially that a sketch which
   disconnects the collective surfaces as the *typed* [Infeasible] before
   synthesis, not as the synthesizer's late [Stuck] — the schedule-level
   guarantees (a forbidden link never appears in the synthesized schedule,
   a pinned chunk never leaves its route), the buddy expansion, the Pareto
   strategy sweep, and a QCheck property that any satisfiable random sketch
   yields a schedule that verifies and is sketch-compliant. *)

open Tacos_topology
open Tacos_collective
module Synth = Tacos.Synthesizer
module Sketch = Tacos_sketch.Sketch
module Strategy = Tacos_sketch.Strategy

let link = Link.make ~alpha:1e-6 ~beta:(1. /. 50e9)

let spec ?(chunks = 1) ?(size = 1e6) pattern npus =
  Spec.make ~chunks_per_npu:chunks ~buffer_size:size ~pattern ~npus ()

let has_substring sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  at 0

(* The offender a sketch is rejected with, as a checkable string. *)
let check_fails topo sp sk expect =
  match Sketch.check topo sp sk with
  | Ok _ -> Alcotest.failf "sketch accepted, expected %s" expect
  | Error off ->
    let msg = Sketch.offender_to_string off in
    Alcotest.(check bool)
      (Printf.sprintf "offender mentions %S (got %S)" expect msg)
      true (has_substring expect msg);
    off

(* --- codec --------------------------------------------------------------- *)

let test_codec_roundtrip () =
  let sk =
    Sketch.make ~name:"all-rules"
      [
        Sketch.Forbid_link 3;
        Sketch.Prefer_link { link = 5; weight = 4. };
        Sketch.Pin_path { chunk = 0; route = [ 1; 2 ] };
        Sketch.Buddy { dim = 1 };
      ]
  in
  (match Sketch.of_json (Sketch.to_json sk) with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok sk' -> Alcotest.(check bool) "round-trips structurally" true (sk = sk'));
  (* Digest: stable under round-trip, sensitive to any rule change. *)
  (match Sketch.of_json (Sketch.to_json sk) with
  | Ok sk' ->
    Alcotest.(check string) "digest stable" (Sketch.digest sk) (Sketch.digest sk')
  | Error _ -> assert false);
  let sk2 = Sketch.make ~name:"all-rules" [ Sketch.Forbid_link 4 ] in
  Alcotest.(check bool)
    "digest distinguishes rules" true
    (Sketch.digest sk <> Sketch.digest sk2)

let test_codec_rejects () =
  let bad text expect =
    match Sketch.of_json text with
    | Ok _ -> Alcotest.failf "%s should not parse" text
    | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "%s mentions %S (got %S)" text expect e)
        true (has_substring expect e)
  in
  bad "[]" "expected a JSON object";
  bad {|{"name":"x"}|} {|missing "rules"|};
  bad {|{"rules":7}|} {|"rules" must be a list|};
  bad {|{"rules":[7]}|} "each rule must be a JSON object";
  bad {|{"rules":[{"prefer":5}]}|} {|missing "weight"|};
  bad {|{"rules":[{"pin":{"chunk":0}}]}|} {|"chunk" and "route"|};
  bad {|{"rules":[{"buddy":{}}]}|} {|"dim"|};
  bad {|{"rules":[{}]}|} "exactly one";
  bad {|{"rules":[{"forbid":1,"prefer":2,"weight":1}]}|} "mixes several"

(* --- typed rejections ---------------------------------------------------- *)

let test_rejects_unknown_link () =
  let topo = Builders.ring ~link 4 in
  let sp = spec Pattern.All_gather 4 in
  (match
     check_fails topo sp (Sketch.make [ Sketch.Forbid_link 99 ]) "link 99"
   with
  | Sketch.Unknown_link { link = 99; _ } -> ()
  | off -> Alcotest.failf "wrong offender: %s" (Sketch.offender_to_string off));
  ignore
    (check_fails topo sp
       (Sketch.make [ Sketch.Prefer_link { link = -1; weight = 2. } ])
       "link -1");
  ignore
    (check_fails topo sp
       (Sketch.make [ Sketch.Pin_path { chunk = 0; route = [ 0; 99 ] } ])
       "link 99")

let test_rejects_bad_weight () =
  let topo = Builders.ring ~link 4 in
  let sp = spec Pattern.All_gather 4 in
  List.iter
    (fun w ->
      match
        Sketch.check topo sp
          (Sketch.make [ Sketch.Prefer_link { link = 0; weight = w } ])
      with
      | Error (Sketch.Bad_weight { link = 0; _ }) -> ()
      | Error off ->
        Alcotest.failf "weight %g: wrong offender %s" w
          (Sketch.offender_to_string off)
      | Ok _ -> Alcotest.failf "weight %g accepted" w)
    [ 0.; -2.; Float.nan; Float.infinity ]

let test_rejects_bad_pins () =
  let topo = Builders.ring ~link 4 in
  let sp = spec Pattern.All_gather 4 in
  (match
     check_fails topo sp
       (Sketch.make [ Sketch.Pin_path { chunk = 9; route = [ 0 ] } ])
       "chunk 9"
   with
  | Sketch.Unknown_chunk { chunk = 9; num_chunks = 4 } -> ()
  | off -> Alcotest.failf "wrong offender: %s" (Sketch.offender_to_string off));
  (match
     check_fails topo sp
       (Sketch.make [ Sketch.Pin_path { chunk = 1; route = [] } ])
       "chunk 1"
   with
  | Sketch.Empty_route { chunk = 1 } -> ()
  | off -> Alcotest.failf "wrong offender: %s" (Sketch.offender_to_string off));
  (* Two pins on one chunk intersect; disjoint routes leave it nothing. *)
  match
    check_fails topo sp
      (Sketch.make
         [
           Sketch.Pin_path { chunk = 1; route = [ 0; 1 ] };
           Sketch.Pin_path { chunk = 1; route = [ 2; 3 ] };
         ])
      "chunk 1"
  with
  | Sketch.Empty_route { chunk = 1 } -> ()
  | off -> Alcotest.failf "wrong offender: %s" (Sketch.offender_to_string off)

let test_rejects_forbid_pin_conflict () =
  let topo = Builders.ring ~link 4 in
  let sp = spec Pattern.All_gather 4 in
  match
    check_fails topo sp
      (Sketch.make
         [
           Sketch.Forbid_link 2;
           Sketch.Pin_path { chunk = 0; route = [ 1; 2 ] };
         ])
      "forbidden but also part"
  with
  | Sketch.Forbid_pin_conflict { chunk = 0; link = 2 } -> ()
  | off -> Alcotest.failf "wrong offender: %s" (Sketch.offender_to_string off)

let test_rejects_buddy_without_hierarchy () =
  (* A hand-built topology carries no hierarchy metadata at all. *)
  let topo = Topology.create 4 in
  for i = 0 to 3 do
    Topology.add_bidir topo i ((i + 1) mod 4) link
  done;
  let sp = spec Pattern.All_gather 4 in
  (match
     check_fails topo sp (Sketch.make [ Sketch.Buddy { dim = 0 } ]) "buddy"
   with
  | Sketch.No_hierarchy { dim = 0 } -> ()
  | off -> Alcotest.failf "wrong offender: %s" (Sketch.offender_to_string off));
  (* A hierarchy exists but has no dimension 5. *)
  let torus = Builders.torus ~link [| 2; 2 |] in
  match
    check_fails torus (spec Pattern.All_gather 4)
      (Sketch.make [ Sketch.Buddy { dim = 5 } ])
      "buddy"
  with
  | Sketch.No_hierarchy { dim = 5 } -> ()
  | off -> Alcotest.failf "wrong offender: %s" (Sketch.offender_to_string off)

let test_rejects_routed_pattern () =
  let topo = Builders.ring ~link 4 in
  let sp = spec Pattern.All_to_all 4 in
  match
    check_fails topo sp (Sketch.make [ Sketch.Forbid_link 0 ]) "router"
  with
  | Sketch.Unsupported_pattern _ -> ()
  | off -> Alcotest.failf "wrong offender: %s" (Sketch.offender_to_string off)

(* The headline acceptance test: a forbid that disconnects a postcondition
   raises the *typed* [Infeasible], before synthesis — never [Stuck]. *)
let test_disconnection_is_typed_infeasible () =
  let topo = Builders.ring ~link ~bidirectional:false 4 in
  let sp = spec Pattern.All_gather 4 in
  let sk = Sketch.make [ Sketch.Forbid_link 0 ] in
  (match Sketch.check topo sp sk with
  | Error (Sketch.Disconnected _) -> ()
  | Error off ->
    Alcotest.failf "wrong offender: %s" (Sketch.offender_to_string off)
  | Ok _ -> Alcotest.fail "disconnecting sketch accepted");
  (match Sketch.compile topo sp sk with
  | exception Sketch.Infeasible (Sketch.Disconnected _) -> ()
  | exception Synth.Stuck _ ->
    Alcotest.fail "disconnection surfaced as Stuck, not Infeasible"
  | _ -> Alcotest.fail "compile succeeded on a disconnecting sketch");
  (* Reduction patterns check reachability on the reversed adjacency;
     All-Reduce must hold in both phases. On the unidirectional ring
     0->1->2->3->0 forbidding link 0 (edge 0->1) disconnects every
     all-to-all-style postcondition and — on the reversed adjacency — the
     Reduce to root 1; Broadcast from root 1 instead loses NPU 2 when its
     only incoming hop (edge 1->2, link 1) is forbidden. *)
  List.iter
    (fun (pattern, forbid) ->
      match
        Sketch.check topo (spec pattern 4) (Sketch.make [ Sketch.Forbid_link forbid ])
      with
      | Error (Sketch.Disconnected _) -> ()
      | Error off ->
        Alcotest.failf "%s: wrong offender %s" (Pattern.name pattern)
          (Sketch.offender_to_string off)
      | Ok _ -> Alcotest.failf "%s: disconnecting sketch accepted" (Pattern.name pattern))
    [
      (Pattern.Reduce_scatter, 0);
      (Pattern.All_reduce, 0);
      (Pattern.Broadcast 1, 1);
      (Pattern.Reduce 1, 0);
    ]

(* --- schedule-level guarantees ------------------------------------------- *)

let forbidden_sends forbidden (sched : Schedule.t) =
  List.filter (fun (s : Schedule.send) -> List.mem s.Schedule.edge forbidden)
    sched.Schedule.sends

let test_forbid_excluded_from_schedule () =
  (* Bidirectional ring: forbidding one direction of one hop keeps the
     collective feasible, and the synthesized schedule must provably never
     touch the forbidden link. *)
  let topo = Builders.ring ~link 8 in
  let forbid = [ 3 ] in
  let sk = Sketch.make [ Sketch.Forbid_link 3 ] in
  List.iter
    (fun pattern ->
      let sp = spec ~chunks:2 pattern 8 in
      let c = Sketch.compile topo sp sk in
      let r = Synth.synthesize ~sketch:c topo sp in
      (match Synth.verify topo r with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: invalid schedule: %s" (Pattern.name pattern) e);
      Alcotest.(check int)
        (Pattern.name pattern ^ ": sends on the forbidden link")
        0
        (List.length (forbidden_sends forbid r.Synth.schedule));
      match Sketch.compliant topo sp sk r.Synth.schedule with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: not compliant: %s" (Pattern.name pattern) e)
    (* All-Reduce exercises both mirrored phases under the same link ids. *)
    [ Pattern.All_gather; Pattern.Reduce_scatter; Pattern.All_reduce ]

let test_empty_sketch_is_identity () =
  let topo = Builders.ring ~link 6 in
  let sp = spec ~chunks:2 Pattern.All_gather 6 in
  let plain = Synth.synthesize topo sp in
  let c = Sketch.compile topo sp Sketch.empty in
  Alcotest.(check bool) "compiles to no_constraints" true (c = Synth.no_constraints);
  let sketched = Synth.synthesize ~sketch:c topo sp in
  Alcotest.(check bool)
    "bit-identical schedule" true
    (plain.Synth.schedule = sketched.Synth.schedule)

let test_pin_restricts_route () =
  let topo = Builders.ring ~link 4 in
  let sp = spec Pattern.All_gather 4 in
  (* Chunk 0 starts at NPU 0; pin it to the clockwise hops 0->1->2->3. *)
  let hop src dst =
    match Topology.find_links topo ~src ~dst with
    | e :: _ -> e.Topology.id
    | [] -> Alcotest.failf "no link %d->%d" src dst
  in
  let route = [ hop 0 1; hop 1 2; hop 2 3 ] in
  let sk = Sketch.make [ Sketch.Pin_path { chunk = 0; route } ] in
  let c = Sketch.compile topo sp sk in
  let r = Synth.synthesize ~sketch:c topo sp in
  (match Synth.verify topo r with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid schedule: %s" e);
  List.iter
    (fun (s : Schedule.send) ->
      if s.Schedule.chunk = 0 then
        Alcotest.(check bool)
          (Printf.sprintf "chunk 0 send on link %d is on the route" s.Schedule.edge)
          true
          (List.mem s.Schedule.edge route))
    r.Synth.schedule.Schedule.sends;
  match Sketch.compliant topo sp sk r.Synth.schedule with
  | Ok () -> ()
  | Error e -> Alcotest.failf "not compliant: %s" e

let test_buddy_forbids_diagonals () =
  (* A 2x2 hierarchy with explicit diagonal links: buddies along dim 1 are
     the same-rank pairs (0,2) and (1,3); the diagonals 0<->3 and 1<->2
     cross both coordinates and must be forbidden by [Buddy {dim = 1}]. *)
  let topo = Topology.create ~name:"buddy-2x2" 4 in
  Topology.add_bidir topo 0 1 link;
  Topology.add_bidir topo 2 3 link;
  Topology.add_bidir topo 0 2 link;
  Topology.add_bidir topo 1 3 link;
  Topology.add_bidir topo 0 3 link;
  Topology.add_bidir topo 1 2 link;
  Topology.set_hierarchy topo
    [|
      { Topology.kind = Topology.Fully_connected_dim; size = 2; link };
      { Topology.kind = Topology.Fully_connected_dim; size = 2; link };
    |];
  let diagonal (e : Topology.edge) =
    let a = Topology.coords topo e.Topology.src
    and b = Topology.coords topo e.Topology.dst in
    a.(0) <> b.(0) && a.(1) <> b.(1)
  in
  let diagonals =
    List.filter_map
      (fun e -> if diagonal e then Some e.Topology.id else None)
      (Topology.edges topo)
  in
  Alcotest.(check int) "four diagonal links" 4 (List.length diagonals);
  let sp = spec Pattern.All_gather 4 in
  let sk = Sketch.make [ Sketch.Buddy { dim = 1 } ] in
  let c = Sketch.compile topo sp sk in
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Printf.sprintf "diagonal %d forbidden" id)
        true
        (List.mem id c.Synth.forbid))
    diagonals;
  let r = Synth.synthesize ~sketch:c topo sp in
  Alcotest.(check int) "no diagonal sends" 0
    (List.length (forbidden_sends diagonals r.Synth.schedule));
  match Sketch.compliant topo sp sk r.Synth.schedule with
  | Ok () -> ()
  | Error e -> Alcotest.failf "not compliant: %s" e

(* --- strategy sweeps ----------------------------------------------------- *)

let test_pareto_dgx1_frontier () =
  (* The acceptance bar: DGX-1 All-Reduce at 64 MB yields a non-dominated
     frontier of at least 3 points, deterministically. *)
  let topo = Builders.dgx1 () in
  let outcome =
    Strategy.sweep ~seed:42 topo ~pattern:Pattern.All_reduce ~size:64e6
  in
  Alcotest.(check bool)
    (Printf.sprintf "frontier has >= 3 points (got %d)"
       (List.length outcome.Strategy.frontier))
    true
    (List.length outcome.Strategy.frontier >= 3);
  (* Every point is on the frontier xor dominated, and the dominator
     relation is sound. *)
  List.iter
    (fun (p : Strategy.point) ->
      let on_frontier = List.memq p outcome.Strategy.frontier in
      let dominated =
        List.exists (fun (q, _) -> q == p) outcome.Strategy.dominated
      in
      Alcotest.(check bool)
        (Printf.sprintf "chunks=%d frontier xor dominated" p.Strategy.chunks_per_npu)
        true
        (on_frontier <> dominated))
    outcome.Strategy.points;
  List.iter
    (fun ((p : Strategy.point), (by : Strategy.point)) ->
      Alcotest.(check bool)
        (Printf.sprintf "chunks=%d is dominated by chunks=%d"
           p.Strategy.chunks_per_npu by.Strategy.chunks_per_npu)
        true
        (Strategy.dominates by p))
    outcome.Strategy.dominated;
  (* Determinism over the fields dominance is computed from. *)
  let again =
    Strategy.sweep ~seed:42 topo ~pattern:Pattern.All_reduce ~size:64e6
  in
  let det (p : Strategy.point) =
    (p.Strategy.chunks_per_npu, p.Strategy.steps, p.Strategy.sends,
     p.Strategy.simulated_time)
  in
  Alcotest.(check bool)
    "deterministic points" true
    (List.map det outcome.Strategy.points = List.map det again.Strategy.points);
  Alcotest.(check int)
    "deterministic frontier size"
    (List.length outcome.Strategy.frontier)
    (List.length again.Strategy.frontier)

let test_pareto_under_sketch () =
  let topo = Builders.ring ~link 8 in
  let sk = Sketch.make [ Sketch.Forbid_link 3 ] in
  let outcome =
    Strategy.sweep ~candidates:[ 1; 2 ] ~sketch:sk topo
      ~pattern:Pattern.All_gather ~size:1e6
  in
  Alcotest.(check int) "both candidates evaluated" 2
    (List.length outcome.Strategy.points);
  (* An infeasible sketch propagates as the typed exception. *)
  let uni = Builders.ring ~link ~bidirectional:false 4 in
  match
    Strategy.sweep ~candidates:[ 1 ] ~sketch:sk uni
      ~pattern:Pattern.All_gather ~size:1e6
  with
  | _ -> Alcotest.fail "infeasible sketch did not raise"
  | exception Sketch.Infeasible (Sketch.Disconnected _) -> ()

(* --- property: satisfiable sketches synthesize compliant schedules ------- *)

let sketch_gen num_links num_chunks =
  let open QCheck.Gen in
  let rule =
    frequency
      [
        (3, map (fun l -> Sketch.Forbid_link l) (int_bound (num_links - 1)));
        ( 3,
          map2
            (fun l w -> Sketch.Prefer_link { link = l; weight = 0.5 +. w })
            (int_bound (num_links - 1))
            (float_bound_inclusive 4.) );
        ( 1,
          map2
            (fun chunk route -> Sketch.Pin_path { chunk; route })
            (int_bound (num_chunks - 1))
            (list_size (int_range 1 num_links) (int_bound (num_links - 1))) );
      ]
  in
  map Sketch.make (list_size (int_range 0 4) rule)

let print_sketch sk = Sketch.to_json sk

let prop_satisfiable_sketch_compliant pattern =
  let topo = Builders.ring ~link 6 in
  let sp = spec pattern 6 in
  let arb =
    QCheck.make ~print:print_sketch
      (sketch_gen (Topology.num_links topo) (Spec.num_chunks sp))
  in
  QCheck.Test.make
    ~name:
      (Printf.sprintf "satisfiable sketch -> compliant %s" (Pattern.name pattern))
    ~count:30 arb
    (fun sk ->
      match Sketch.check topo sp sk with
      | Error _ -> true (* unsatisfiable sketches are rejected up front *)
      | Ok c -> (
        match Synth.synthesize ~sketch:c topo sp with
        | exception Synth.Stuck msg ->
          QCheck.Test.fail_reportf
            "accepted sketch got the synthesizer stuck: %s" msg
        | r ->
          (match Synth.verify topo r with
          | Ok () -> ()
          | Error e -> QCheck.Test.fail_reportf "schedule invalid: %s" e);
          (match Sketch.compliant topo sp sk r.Synth.schedule with
          | Ok () -> ()
          | Error e -> QCheck.Test.fail_reportf "schedule not compliant: %s" e);
          true))

let () =
  Alcotest.run "sketch"
    [
      ( "codec",
        [
          Alcotest.test_case "round-trip" `Quick test_codec_roundtrip;
          Alcotest.test_case "rejects malformed JSON" `Quick test_codec_rejects;
        ] );
      ( "validation",
        [
          Alcotest.test_case "unknown link" `Quick test_rejects_unknown_link;
          Alcotest.test_case "bad weight" `Quick test_rejects_bad_weight;
          Alcotest.test_case "bad pins" `Quick test_rejects_bad_pins;
          Alcotest.test_case "forbid+pin conflict" `Quick
            test_rejects_forbid_pin_conflict;
          Alcotest.test_case "buddy needs hierarchy" `Quick
            test_rejects_buddy_without_hierarchy;
          Alcotest.test_case "routed patterns" `Quick test_rejects_routed_pattern;
          Alcotest.test_case "disconnection is typed Infeasible" `Quick
            test_disconnection_is_typed_infeasible;
        ] );
      ( "schedules",
        [
          Alcotest.test_case "forbidden link excluded" `Quick
            test_forbid_excluded_from_schedule;
          Alcotest.test_case "empty sketch is identity" `Quick
            test_empty_sketch_is_identity;
          Alcotest.test_case "pin restricts route" `Quick test_pin_restricts_route;
          Alcotest.test_case "buddy forbids diagonals" `Quick
            test_buddy_forbids_diagonals;
        ] );
      ( "strategy",
        [
          Alcotest.test_case "dgx1 frontier" `Quick test_pareto_dgx1_frontier;
          Alcotest.test_case "sweep under a sketch" `Quick test_pareto_under_sketch;
        ] );
      ( "properties",
        List.map
          (QCheck_alcotest.to_alcotest ~long:false)
          [
            prop_satisfiable_sketch_compliant Pattern.All_gather;
            prop_satisfiable_sketch_compliant Pattern.All_reduce;
          ] );
    ]
