(* Tests for the synthesis service: protocol parsing, the full request
   lifecycle (hit/miss/degraded/overloaded/error), deadline propagation
   into the synthesizer, single-flight retry through the server path, and
   both export flavors. *)

module Json = Tacos_util.Json
module Deadline = Tacos_util.Deadline
module Synth = Tacos.Synthesizer
module Protocol = Tacos_serve.Protocol
module Service = Tacos_serve.Service

let req fields = Json.encode (Json.Object fields)

let parse_response r =
  match Json.parse r with
  | Ok doc -> doc
  | Error e -> Alcotest.failf "response not JSON: %s (%s)" e r

let status r =
  match Json.member "status" (parse_response r) with
  | Some (Json.String s) -> s
  | _ -> Alcotest.failf "no status in %s" r

let bool_field name r =
  match Json.member name (parse_response r) with
  | Some (Json.Bool b) -> b
  | _ -> Alcotest.failf "no boolean %s in %s" name r

let service ?config ?synthesize () = Service.create ?config ?synthesize ()

let synth_req ?(id = 1.) ?deadline_ms ?(extra = []) topology =
  req
    ([
       ("id", Json.Number id);
       ("op", Json.String "synthesize");
       ("topology", Json.String topology);
       ("pattern", Json.String "all-gather");
       ("size", Json.Number 1e6);
     ]
    @ (match deadline_ms with
      | Some d -> [ ("deadline_ms", Json.Number d) ]
      | None -> [])
    @ extra)

(* --- protocol ------------------------------------------------------------ *)

let test_protocol_roundtrip () =
  let line =
    req
      [
        ("id", Json.String "r-1");
        ("op", Json.String "synthesize");
        ("topology", Json.String "ring:4");
        ("pattern", Json.String "all-reduce");
        ("size", Json.String "64MB");
        ("chunks", Json.Number 2.);
        ("seed", Json.Number 7.);
        ("deadline_ms", Json.Number 250.);
        ("fail_links", Json.Array [ Json.Number 0.; Json.Number 3. ]);
      ]
  in
  match Protocol.parse_request line with
  | Error (_, msg) -> Alcotest.failf "parse failed: %s" msg
  | Ok r ->
    Alcotest.(check bool) "id" true (r.Protocol.id = Json.String "r-1");
    Alcotest.(check bool) "op" true (r.Protocol.op = Protocol.Synthesize);
    Alcotest.(check (option string)) "topology" (Some "ring:4") r.Protocol.topology;
    Alcotest.(check string) "pattern" "all-reduce" r.Protocol.pattern;
    Alcotest.(check (float 1.)) "size parsed" 64e6 r.Protocol.size;
    Alcotest.(check int) "chunks" 2 r.Protocol.chunks;
    Alcotest.(check (option int)) "seed" (Some 7) r.Protocol.seed;
    Alcotest.(check bool) "deadline" true (r.Protocol.deadline_ms = Some 250.);
    Alcotest.(check (list int)) "fail_links" [ 0; 3 ] r.Protocol.fail_links

let has_substring sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  at 0

let test_protocol_rejects () =
  let bad line expect =
    match Protocol.parse_request line with
    | Ok _ -> Alcotest.failf "%s should not parse" line
    | Error (_, msg) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s mentions %s (got %s)" line expect msg)
        true (has_substring expect msg)
  in
  bad "not json" "not JSON";
  bad "[1,2]" "object";
  bad {|{"op":"frobnicate"}|} "unknown op";
  bad {|{"op":"synthesize","size":-3}|} "size";
  bad {|{"op":"synthesize","chunks":0}|} "chunks";
  bad {|{"op":"synthesize","fail_links":[1,"x"]}|} "fail_links";
  bad {|{"op":"metrics","prefix":7}|} "prefix must be a string"

(* --- lifecycle ----------------------------------------------------------- *)

let test_malformed_line_is_structured_error () =
  let svc = service () in
  let r = Service.handle_line svc "nonsense" in
  Alcotest.(check string) "status" "error" (status r);
  Alcotest.(check int) "counted" 1 (Service.stats svc).Service.errors

let test_miss_then_cached () =
  let svc = service () in
  let a = Service.handle_line svc (synth_req "ring:4") in
  Alcotest.(check string) "first ok" "ok" (status a);
  Alcotest.(check bool) "first is a miss" false (bool_field "cached" a);
  let b = Service.handle_line svc (synth_req ~id:2. "ring:4") in
  Alcotest.(check bool) "second is cached" true (bool_field "cached" b);
  let s = Service.stats svc in
  Alcotest.(check int) "one miss" 1 s.Service.misses;
  Alcotest.(check int) "one hit" 1 s.Service.hits

let test_expired_deadline_degrades () =
  let svc = service () in
  let r = Service.handle_line svc (synth_req ~deadline_ms:0. "mesh:3x3") in
  Alcotest.(check string) "still ok" "ok" (status r);
  Alcotest.(check bool) "degraded" true (bool_field "degraded" r);
  let s = Service.stats svc in
  Alcotest.(check int) "deadline miss counted" 1 s.Service.deadline_missed;
  Alcotest.(check int) "degraded counted" 1 s.Service.degraded;
  (* The baseline answer carries the (negative) remaining slack. *)
  match Json.member "deadline_slack_ms" (parse_response r) with
  | Some (Json.Number slack) ->
    Alcotest.(check bool) "slack is negative" true (slack <= 0.)
  | _ -> Alcotest.failf "no deadline_slack_ms in %s" r

let test_backend_deadline_exceeded_degrades () =
  (* A backend that gives up mid-synthesis must never propagate the
     exception: the service hands the request to the resilience ladder.
     With 10 s of slack left the ladder synthesizes a real schedule (so
     [degraded] stays false); the deadline miss is still counted. *)
  let svc =
    service
      ~synthesize:(fun ~deadline:_ ~sketch:_ ~seed:_ ~domains:_ _ _ ->
        raise Synth.Deadline_exceeded)
      ()
  in
  let r = Service.handle_line svc (synth_req ~deadline_ms:10_000. "ring:4") in
  Alcotest.(check string) "still ok" "ok" (status r);
  Alcotest.(check bool) "fallback answer, not a cache hit" false
    (bool_field "cached" r);
  Alcotest.(check int) "deadline miss counted" 1
    (Service.stats svc).Service.deadline_missed

let test_cache_hit_served_past_deadline () =
  (* Hits are effectively free: even a request whose deadline has passed
     gets the cached schedule rather than a degraded baseline. *)
  let svc = service () in
  ignore (Service.handle_line svc (synth_req "ring:4"));
  let r = Service.handle_line svc (synth_req ~id:2. ~deadline_ms:0. "ring:4") in
  Alcotest.(check string) "ok" "ok" (status r);
  Alcotest.(check bool) "cached" true (bool_field "cached" r);
  Alcotest.(check bool) "not degraded" false (bool_field "degraded" r)

let test_flaky_backend_retries_through_server () =
  (* Single-flight release through the server path: a synthesis that
     raises must leave the key clean, so the next identical request runs
     the backend again and succeeds. *)
  let calls = ref 0 in
  let flaky ~deadline:_ ~sketch:_ ~seed ~domains:_ topo spec =
    incr calls;
    if !calls = 1 then raise (Synth.Stuck "injected transient failure")
    else Synth.synthesize ~seed topo spec
  in
  let svc = service ~synthesize:flaky () in
  let a = Service.handle_line svc (synth_req "ring:4") in
  (* First request: the miss backend failed; the service falls back
     structurally (the resilience ladder synthesizes on the healthy
     fabric), but the cache key must be released. *)
  Alcotest.(check string) "first still answers" "ok" (status a);
  let b = Service.handle_line svc (synth_req ~id:2. "ring:4") in
  Alcotest.(check string) "second ok" "ok" (status b);
  Alcotest.(check bool) "second is a real miss" false (bool_field "cached" b);
  Alcotest.(check bool) "second not degraded" false (bool_field "degraded" b);
  Alcotest.(check int) "backend ran again" 2 !calls;
  let c = Service.handle_line svc (synth_req ~id:3. "ring:4") in
  Alcotest.(check bool) "third is cached" true (bool_field "cached" c);
  Alcotest.(check int) "hit runs no synthesis" 2 !calls

let test_disconnected_fault_is_structured_error () =
  let svc = service () in
  let r =
    Service.handle_line svc
      (synth_req ~extra:[ ("fail_links", Json.Array [ Json.Number 0. ]) ]
         "uniring:4")
  in
  Alcotest.(check string) "error" "error" (status r);
  Alcotest.(check bool) "carries the failure report" true
    (Json.member "failure" (parse_response r) <> None);
  Alcotest.(check int) "counted" 1 (Service.stats svc).Service.errors

let test_overload_sheds () =
  (* Saturate a queue_limit=1 service with a latch-blocked synthesis on a
     second thread, then prove the next request is shed with a retry
     hint. *)
  let latch = Mutex.create () in
  let opened = Condition.create () in
  let released = ref false in
  let started = Atomic.make 0 in
  let blocking ~deadline:_ ~sketch:_ ~seed ~domains:_ topo spec =
    Atomic.incr started;
    Mutex.lock latch;
    while not !released do
      Condition.wait opened latch
    done;
    Mutex.unlock latch;
    Synth.synthesize ~seed topo spec
  in
  let config = { Service.default_config with queue_limit = 1 } in
  let svc = service ~config ~synthesize:blocking () in
  let blocked =
    Domain.spawn (fun () -> Service.handle_line svc (synth_req "ring:4"))
  in
  let t0 = Unix.gettimeofday () in
  while Atomic.get started < 1 && Unix.gettimeofday () -. t0 < 10. do
    Unix.sleepf 0.001
  done;
  Alcotest.(check int) "blocked synthesis started" 1 (Atomic.get started);
  let r = Service.handle_line svc (synth_req ~id:2. "ring:8") in
  Alcotest.(check string) "shed" "overloaded" (status r);
  (match Json.member "retry_after_ms" (parse_response r) with
  | Some (Json.Number ms) -> Alcotest.(check bool) "positive hint" true (ms >= 1.)
  | _ -> Alcotest.failf "no retry_after_ms in %s" r);
  Mutex.lock latch;
  released := true;
  Condition.broadcast opened;
  Mutex.unlock latch;
  Alcotest.(check string) "latched request completes" "ok" (status (Domain.join blocked));
  let s = Service.stats svc in
  Alcotest.(check int) "one shed" 1 s.Service.shed;
  Alcotest.(check int) "one accepted" 1 s.Service.accepted

let test_ping_and_stats () =
  let svc = service () in
  let p = Service.handle_line svc (req [ ("id", Json.Number 1.); ("op", Json.String "ping") ]) in
  Alcotest.(check bool) "pong" true (bool_field "pong" p);
  ignore (Service.handle_line svc (synth_req ~id:2. "ring:4"));
  let s = Service.handle_line svc (req [ ("id", Json.Number 3.); ("op", Json.String "stats") ]) in
  match Json.member "misses" (parse_response s) with
  | Some (Json.Number 1.) -> ()
  | _ -> Alcotest.failf "stats should report the miss: %s" s

(* --- telemetry ----------------------------------------------------------- *)

module Expo = Tacos_obs.Expo
module Logfmt = Tacos_util.Logfmt

let metrics_text ?prefix svc =
  let fields =
    [ ("id", Json.Number 1.); ("op", Json.String "metrics") ]
    @ match prefix with Some p -> [ ("prefix", Json.String p) ] | None -> []
  in
  let r = Service.handle_line svc (req fields) in
  Alcotest.(check string) "metrics ok" "ok" (status r);
  match Json.member "metrics" (parse_response r) with
  | Some (Json.String text) -> text
  | _ -> Alcotest.failf "no metrics text in %s" r

let test_metrics_verb () =
  let svc = service () in
  ignore (Service.handle_line svc (synth_req "ring:4"));
  ignore (Service.handle_line svc (synth_req ~id:2. "ring:4"));
  let text = metrics_text svc in
  (match Expo.validate text with
  | Ok () -> ()
  | Error e -> Alcotest.failf "exposition invalid: %s" e);
  let samples =
    match Expo.parse text with
    | Ok l -> l
    | Error e -> Alcotest.failf "exposition unparseable: %s" e
  in
  let value metric labels =
    match
      List.find_opt
        (fun (e : Expo.exposed) ->
          e.Expo.metric = metric
          && List.for_all (fun kv -> List.mem kv e.Expo.label_set) labels)
        samples
    with
    | Some e -> e.Expo.v
    | None -> Alcotest.failf "no sample %s in exposition" metric
  in
  Alcotest.(check bool) "accepted counter" true
    (value "tacos_serve_requests_total" [ ("outcome", "accepted") ] = 2.);
  Alcotest.(check bool) "hit counter" true
    (value "tacos_serve_requests_total" [ ("outcome", "hit") ] = 1.);
  (* Per-verb latency quantiles: the acceptance bar for the metrics verb. *)
  List.iter
    (fun q ->
      let v =
        value "tacos_serve_latency_ms" [ ("verb", "synthesize"); ("quantile", q) ]
      in
      Alcotest.(check bool)
        (Printf.sprintf "synthesize p%s present" q)
        true
        (Float.is_finite v && v >= 0.))
    [ "0.5"; "0.95"; "0.99" ];
  Alcotest.(check bool) "registry entries gauge" true
    (value "tacos_registry_entries" [] = 1.)

let test_metrics_prefix_filter () =
  let svc = service () in
  ignore (Service.handle_line svc (synth_req "ring:4"));
  let text = metrics_text ~prefix:"tacos_registry_" svc in
  match Expo.parse text with
  | Ok [] -> Alcotest.fail "prefixed exposition is empty"
  | Ok samples ->
    List.iter
      (fun (e : Expo.exposed) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s matches the prefix" e.Expo.metric)
          true
          (String.starts_with ~prefix:"tacos_registry_" e.Expo.metric))
      samples
  | Error e -> Alcotest.failf "prefixed exposition unparseable: %s" e

let test_extended_stats () =
  let svc = service () in
  ignore (Service.handle_line svc (synth_req "ring:4"));
  let r = Service.handle_line svc (req [ ("id", Json.Number 2.); ("op", Json.String "stats") ]) in
  let doc = parse_response r in
  (match Json.member "inflight" doc with
  | Some (Json.Number 0.) -> ()
  | _ -> Alcotest.failf "stats should report 0 inflight at rest: %s" r);
  (match Json.member "uptime_seconds" doc with
  | Some (Json.Number up) ->
    Alcotest.(check bool) "uptime non-negative" true (up >= 0.)
  | _ -> Alcotest.failf "no uptime_seconds in %s" r);
  (match Json.member "registry" doc with
  | Some (Json.Object fields) ->
    Alcotest.(check bool) "one entry in memory" true
      (List.assoc_opt "entries" fields = Some (Json.Number 1.));
    (* No registry_dir configured: the disk store is empty, not an error. *)
    Alcotest.(check bool) "no disk entries" true
      (List.assoc_opt "disk_entries" fields = Some (Json.Number 0.))
  | _ -> Alcotest.failf "no registry object in %s" r);
  match Json.member "latency_ms" doc with
  | Some (Json.Object verbs) ->
    (match List.assoc_opt "synthesize" verbs with
    | Some summary ->
      (match Json.member "p99" summary with
      | Some (Json.Number p99) ->
        Alcotest.(check bool) "p99 non-negative" true (p99 >= 0.)
      | _ -> Alcotest.failf "no p99 for synthesize in %s" r)
    | None -> Alcotest.failf "no synthesize latency summary in %s" r)
  | _ -> Alcotest.failf "no latency_ms in %s" r

let test_access_log () =
  let records = ref [] in
  let config =
    {
      Service.default_config with
      access_log = Some (fun line -> records := line :: !records);
    }
  in
  let svc = service ~config () in
  ignore (Service.handle_line svc (synth_req "ring:4"));
  ignore (Service.handle_line svc (synth_req ~id:2. ~deadline_ms:500. "ring:4"));
  ignore (Service.handle_line svc "not json at all");
  let parsed =
    List.rev_map
      (fun line ->
        match Logfmt.parse line with
        | Ok kvs -> kvs
        | Error e -> Alcotest.failf "access record unparseable: %s (%s)" e line)
      !records
  in
  (match parsed with
  | [ miss; hit; bad ] ->
    Alcotest.(check (option string)) "miss outcome" (Some "miss")
      (List.assoc_opt "outcome" miss);
    Alcotest.(check (option string)) "hit outcome" (Some "hit")
      (List.assoc_opt "outcome" hit);
    (* The deadline applied to the hit shows up with its remaining slack. *)
    Alcotest.(check (option string)) "deadline recorded" (Some "500")
      (List.assoc_opt "deadline_ms" hit);
    Alcotest.(check bool) "slack recorded" true (List.mem_assoc "slack_ms" hit);
    Alcotest.(check (option string)) "malformed line logged as invalid"
      (Some "invalid") (List.assoc_opt "verb" bad);
    Alcotest.(check (option string)) "malformed line is an error" (Some "error")
      (List.assoc_opt "outcome" bad);
    List.iter
      (fun kvs ->
        List.iter
          (fun k ->
            Alcotest.(check bool) (k ^ " present") true (List.mem_assoc k kvs))
          [ "t"; "id"; "verb"; "outcome"; "elapsed_ms"; "bytes_out" ])
      parsed
  | l -> Alcotest.failf "expected 3 access records, got %d" (List.length l));
  Alcotest.(check bool) "stamps stay within uptime" true
    (List.for_all
       (fun kvs ->
         match float_of_string_opt (List.assoc "t" kvs) with
         | Some t -> t >= 0. && t <= Service.uptime_seconds svc
         | None -> false)
       parsed)

(* --- export flavors ------------------------------------------------------ *)

let test_export_json () =
  let svc = service () in
  let r =
    Service.handle_line svc
      (req
         [
           ("id", Json.Number 1.);
           ("op", Json.String "export");
           ("topology", Json.String "ring:4");
           ("pattern", Json.String "all-gather");
           ("size", Json.Number 1e6);
         ])
  in
  Alcotest.(check string) "ok" "ok" (status r);
  match Json.member "schedule" (parse_response r) with
  | Some (Json.Object _) -> ()
  | _ -> Alcotest.failf "no embedded schedule in %s" r

let test_export_csv () =
  let svc = service () in
  let r =
    Service.handle_line svc
      (req
         [
           ("id", Json.Number 1.);
           ("op", Json.String "export");
           ("topology", Json.String "ring:4");
           ("pattern", Json.String "all-gather");
           ("size", Json.Number 1e6);
           ("format", Json.String "csv");
         ])
  in
  Alcotest.(check string) "ok" "ok" (status r);
  match Json.member "csv" (parse_response r) with
  | Some (Json.String csv) ->
    let lines = String.split_on_char '\n' (String.trim csv) in
    Alcotest.(check bool) "starts with the sizing header" true
      (match lines with l :: _ -> l = "NPUs Count,4" | [] -> false);
    Alcotest.(check bool) "has the per-link header" true
      (List.exists
         (fun l -> l = "SrcID,DestID,Latency (ns),Bandwidth (GB/s),Chunks (ID:ns:ns)")
         lines);
    (* 4-NPU bidirectional ring: 8 links, one row each after 7 header rows. *)
    Alcotest.(check int) "one row per link" (7 + 8) (List.length lines)
  | _ -> Alcotest.failf "no csv in %s" r

let test_tune_op () =
  let svc = service () in
  let r =
    Service.handle_line svc
      (req
         [
           ("id", Json.Number 1.);
           ("op", Json.String "tune");
           ("topology", Json.String "mesh:2x2");
           ("pattern", Json.String "all-gather");
           ("size", Json.Number 4e6);
           ("candidates", Json.Array [ Json.Number 1.; Json.Number 2. ]);
         ])
  in
  Alcotest.(check string) "ok" "ok" (status r);
  match Json.member "chunks_per_npu" (parse_response r) with
  | Some (Json.Number c) ->
    Alcotest.(check bool) "winner among candidates" true (c = 1. || c = 2.)
  | _ -> Alcotest.failf "no chunks_per_npu in %s" r

(* --- sketches ------------------------------------------------------------ *)

let sketch_field rules = ("sketch", Json.Object [ ("rules", Json.Array rules) ])
let forbid l = Json.Object [ ("forbid", Json.Number (float_of_int l)) ]

let test_sketch_request_separate_cache_line () =
  let svc = service () in
  (* Unconstrained first, then the same (topology, spec) under a sketch:
     the sketched request must be its own miss, not a cache hit aliasing
     the unconstrained schedule. *)
  let plain = Service.handle_line svc (synth_req "ring:4") in
  Alcotest.(check string) "plain ok" "ok" (status plain);
  let sketched =
    Service.handle_line svc
      (synth_req ~id:2. ~extra:[ sketch_field [ forbid 0 ] ] "ring:4")
  in
  Alcotest.(check string) "sketched ok" "ok" (status sketched);
  Alcotest.(check bool) "sketched is a fresh miss" false
    (bool_field "cached" sketched);
  (* Replaying the sketched request hits its own line. *)
  let again =
    Service.handle_line svc
      (synth_req ~id:3. ~extra:[ sketch_field [ forbid 0 ] ] "ring:4")
  in
  Alcotest.(check bool) "sketched replay hits" true (bool_field "cached" again);
  let s = Service.stats svc in
  Alcotest.(check int) "two misses" 2 s.Service.misses;
  Alcotest.(check int) "one hit" 1 s.Service.hits

let test_sketch_infeasible_is_structured_error () =
  let svc = service () in
  (* Forbidding both directions of two opposite hops cuts the 4-ring into
     {1,2} and {3,0}: typed infeasibility, reported as a structured error
     before any synthesis. *)
  let r =
    Service.handle_line svc
      (synth_req ~extra:[ sketch_field (List.map forbid [ 0; 1; 4; 5 ]) ] "ring:4")
  in
  Alcotest.(check string) "error" "error" (status r);
  Alcotest.(check bool)
    (Printf.sprintf "names the disconnection (got %s)" r)
    true
    (has_substring "sketch" r && has_substring "disconnects" r)

let test_sketch_malformed_is_structured_error () =
  let svc = service () in
  let r =
    Service.handle_line svc
      (synth_req
         ~extra:
           [
             ( "sketch",
               Json.Object
                 [ ("rules", Json.Array [ Json.Object [ ("prefer", Json.Number 0.) ] ]) ]
             );
           ]
         "ring:4")
  in
  Alcotest.(check string) "error" "error" (status r);
  Alcotest.(check bool)
    (Printf.sprintf "names the missing weight (got %s)" r)
    true
    (has_substring "weight" r)

let test_tune_under_sketch () =
  let svc = service () in
  let r =
    Service.handle_line svc
      (req
         [
           ("id", Json.Number 1.);
           ("op", Json.String "tune");
           ("topology", Json.String "ring:4");
           ("pattern", Json.String "all-gather");
           ("size", Json.Number 4e6);
           ("candidates", Json.Array [ Json.Number 1.; Json.Number 2. ]);
           sketch_field [ forbid 0 ];
         ])
  in
  Alcotest.(check string) "ok" "ok" (status r);
  match Json.member "chunks_per_npu" (parse_response r) with
  | Some (Json.Number c) ->
    Alcotest.(check bool) "winner among candidates" true (c = 1. || c = 2.)
  | _ -> Alcotest.failf "no chunks_per_npu in %s" r

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "request round trip" `Quick test_protocol_roundtrip;
          Alcotest.test_case "malformed requests rejected" `Quick test_protocol_rejects;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "malformed line -> structured error" `Quick
            test_malformed_line_is_structured_error;
          Alcotest.test_case "miss then cached" `Quick test_miss_then_cached;
          Alcotest.test_case "expired deadline degrades" `Quick
            test_expired_deadline_degrades;
          Alcotest.test_case "backend deadline raise degrades" `Quick
            test_backend_deadline_exceeded_degrades;
          Alcotest.test_case "cache hit served past deadline" `Quick
            test_cache_hit_served_past_deadline;
          Alcotest.test_case "flaky backend retries (key released)" `Quick
            test_flaky_backend_retries_through_server;
          Alcotest.test_case "disconnected fault -> structured error" `Quick
            test_disconnected_fault_is_structured_error;
          Alcotest.test_case "saturated queue sheds" `Quick test_overload_sheds;
          Alcotest.test_case "ping and stats" `Quick test_ping_and_stats;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "metrics verb exposes the counters" `Quick
            test_metrics_verb;
          Alcotest.test_case "metrics prefix filter" `Quick
            test_metrics_prefix_filter;
          Alcotest.test_case "extended stats" `Quick test_extended_stats;
          Alcotest.test_case "access log records" `Quick test_access_log;
        ] );
      ( "export-and-tune",
        [
          Alcotest.test_case "export json" `Quick test_export_json;
          Alcotest.test_case "export csv" `Quick test_export_csv;
          Alcotest.test_case "tune" `Quick test_tune_op;
        ] );
      ( "sketches",
        [
          Alcotest.test_case "sketched requests get their own cache line" `Quick
            test_sketch_request_separate_cache_line;
          Alcotest.test_case "infeasible sketch -> structured error" `Quick
            test_sketch_infeasible_is_structured_error;
          Alcotest.test_case "malformed sketch -> structured error" `Quick
            test_sketch_malformed_is_structured_error;
          Alcotest.test_case "tune under a sketch" `Quick test_tune_under_sketch;
        ] );
    ]
