(* Tests for the baseline collective algorithms of §V-A: analytic timing on
   their preferred topologies, correct degradation off them, and the
   paper-documented limitations (MultiTree's missing chunk overlap, C-Cube's
   idle links, TACCL-like congestion blindness). *)

open Tacos_topology
open Tacos_collective
open Tacos_baselines

let feq = Alcotest.float 1e-9

let spec ?(chunks_per_npu = 1) ~size ~npus pattern =
  Spec.make ~chunks_per_npu ~buffer_size:size ~pattern ~npus ()

let time algo topo s = Algo.collective_time algo topo s

(* --- Ring ------------------------------------------------------------------ *)

let test_ring_matches_closed_form () =
  (* Bidirectional ring AR on a physical ring: 2(n-1) steps of
     (alpha + beta * B/(2n)) per direction. *)
  let n = 8 and b = 64. in
  let topo = Builders.ring ~link:(Link.make ~alpha:1. ~beta:1.) n in
  let t = time Algo.ring topo (spec ~size:b ~npus:n Pattern.All_reduce) in
  let expected = float_of_int (2 * (n - 1)) *. (1. +. (b /. 2. /. float_of_int n)) in
  Alcotest.check feq "closed form" expected t

let test_ring_is_ideal_on_ring () =
  (* Large collectives on the ring: Ring tracks the ideal bound closely. *)
  let n = 16 in
  let topo = Builders.ring ~link:(Link.of_bandwidth 50e9) n in
  let s = spec ~size:1e9 ~npus:n Pattern.All_reduce in
  let t = time Algo.ring topo s in
  let ideal = Ideal.all_reduce_time topo ~size:1e9 in
  Alcotest.(check bool) "within 10% of ideal" true (ideal /. t > 0.9)

let test_ring_unidirectional_slower () =
  let n = 8 in
  let topo = Builders.ring ~link:(Link.of_bandwidth 50e9) n in
  let s = spec ~size:1e8 ~npus:n Pattern.All_reduce in
  let bidi = time Algo.ring topo s in
  let uni = time (Algo.Ring { bidirectional = false }) topo s in
  (* One direction idle: roughly half the bandwidth. *)
  Alcotest.(check bool) "about 2x slower" true (uni > 1.8 *. bidi)

let test_ring_uses_dgx1_embeddings () =
  (* On DGX-1 the three recorded rings cover all 48 links, so Ring stays
     near the ideal bound (99.61% in §VI-B.5). *)
  let topo = Builders.dgx1 () in
  let s = spec ~size:1e9 ~npus:8 Pattern.All_reduce in
  let t = time Algo.ring topo s in
  let ideal = Ideal.all_reduce_time topo ~size:1e9 in
  Alcotest.(check bool) "over 95% efficiency" true (ideal /. t > 0.95)

let test_ring_all_gather_half_of_all_reduce () =
  let n = 8 in
  let topo = Builders.ring ~link:(Link.make ~alpha:0. ~beta:1.) n in
  let ar = time Algo.ring topo (spec ~size:64. ~npus:n Pattern.All_reduce) in
  let ag = time Algo.ring topo (spec ~size:64. ~npus:n Pattern.All_gather) in
  let rs = time Algo.ring topo (spec ~size:64. ~npus:n Pattern.Reduce_scatter) in
  Alcotest.check feq "AG is half" (ar /. 2.) ag;
  Alcotest.check feq "RS is half" (ar /. 2.) rs

(* --- Direct ----------------------------------------------------------------- *)

let test_direct_on_fully_connected () =
  (* On FC every pairwise message has its own link: AR = 2(alpha + beta*B/n). *)
  let n = 8 and b = 64. in
  let topo = Builders.fully_connected ~link:(Link.make ~alpha:1. ~beta:1.) n in
  let t = time Algo.Direct topo (spec ~size:b ~npus:n Pattern.All_reduce) in
  Alcotest.check feq "two one-shot phases" (2. *. (1. +. (b /. float_of_int n))) t

let test_direct_vs_ring_crossover () =
  (* Fig. 2(a): Ring >> Direct on a ring; Direct >> Ring on FC. *)
  let n = 16 in
  let ring_topo = Builders.ring ~link:(Link.of_bandwidth 50e9) n in
  let fc_topo = Builders.fully_connected ~link:(Link.of_bandwidth 50e9) n in
  let s = spec ~size:1e9 ~npus:n Pattern.All_reduce in
  Alcotest.(check bool) "ring wins at home" true
    (time Algo.ring ring_topo s < time Algo.Direct ring_topo s);
  Alcotest.(check bool) "direct wins at home" true
    (time Algo.Direct fc_topo s < time Algo.ring fc_topo s)

let test_direct_wins_for_tiny_collectives () =
  (* Fig. 2(b): latency-bound collectives prefer the short-hop Direct even
     on a ring... once the size is small enough that alpha dominates. *)
  let n = 16 in
  let topo = Builders.ring ~link:(Link.of_bandwidth ~alpha:0.5e-6 50e9) n in
  let tiny = spec ~size:1e3 ~npus:n Pattern.All_reduce in
  let big = spec ~size:1e9 ~npus:n Pattern.All_reduce in
  Alcotest.(check bool) "tiny: direct at least competitive" true
    (time Algo.Direct topo tiny < time Algo.ring topo big);
  Alcotest.(check bool) "big: ring wins" true
    (time Algo.ring topo big < time Algo.Direct topo big)

(* --- RHD and DBT -------------------------------------------------------------- *)

let test_rhd_on_fully_connected () =
  (* RS: sum_k beta*B/2^k for k=1..log(n); AG mirrors it. alpha = 1 per step. *)
  let n = 4 and b = 16. in
  let topo = Builders.fully_connected ~link:(Link.make ~alpha:1. ~beta:1.) n in
  let t = time Algo.Rhd topo (spec ~size:b ~npus:n Pattern.All_reduce) in
  let expected = 2. *. ((1. +. (b /. 2.)) +. (1. +. (b /. 4.))) in
  Alcotest.check feq "closed form" expected t

let test_rhd_requires_power_of_two () =
  let topo = Builders.ring 6 in
  Alcotest.check_raises "rejects n=6"
    (Invalid_argument "Rhd.program: NPU count must be a power of two") (fun () ->
      ignore (Algo.program Algo.Rhd topo (spec ~size:1. ~npus:6 Pattern.All_reduce)))

let test_rhd_beats_ring_on_hypercube_small () =
  (* Latency-dominated regime: log2(n) steps beat 2(n-1) steps. *)
  let n = 16 in
  let topo = Builders.hypercube ~link:(Link.of_bandwidth ~alpha:0.5e-6 50e9) 4 in
  let s = spec ~size:1e3 ~npus:n Pattern.All_reduce in
  Alcotest.(check bool) "RHD wins small" true (time Algo.Rhd topo s < time Algo.ring topo s)

let test_dbt_completes_and_scales_log () =
  let n = 16 in
  let topo = Builders.fully_connected ~link:(Link.make ~alpha:1. ~beta:0.) n in
  let t = time Algo.Dbt topo (spec ~size:1. ~npus:n Pattern.All_reduce) in
  (* Depth of a balanced 16-node tree is 4: reduce + broadcast ~ 2*2*depth
     alphas worst case; just bound it well below a ring's 30 alphas. *)
  Alcotest.(check bool) "logarithmic depth" true (t <= 20.);
  Alcotest.(check bool) "positive" true (t > 0.)

let test_dbt_rejects_non_allreduce () =
  let topo = Builders.ring 4 in
  Alcotest.check_raises "AG unsupported" (Invalid_argument "Dbt.program: All-Reduce only")
    (fun () -> ignore (Algo.program Algo.Dbt topo (spec ~size:1. ~npus:4 Pattern.All_gather)))

(* --- BlueConnect and Themis ----------------------------------------------------- *)

let torus3 () = Builders.torus ~link:(Link.of_bandwidth ~alpha:0.7e-6 25e9) [| 4; 4; 4 |]

let test_blueconnect_efficiency_band () =
  (* BlueConnect reduces dimensions one after another, so on a 3D torus it
     is pinned around a third of the ideal ingress bandwidth; Themis exists
     to fix exactly this. *)
  let topo = torus3 () in
  let s = spec ~size:1e9 ~npus:64 Pattern.All_reduce in
  let t = time (Algo.Blueconnect { chunks = 1 }) topo s in
  let ideal = Ideal.all_reduce_time topo ~size:1e9 in
  Alcotest.(check bool) "at least a quarter of ideal" true (ideal /. t > 0.25);
  Alcotest.(check bool) "not better than ideal" true (t >= ideal *. 0.999)

let test_themis_near_ideal_on_torus () =
  (* §VI-B.3: Themis with 64 chunks reaches ~95% efficiency on its home
     symmetric 3D Torus for large collectives. *)
  let topo = torus3 () in
  let s = spec ~size:1e9 ~npus:64 Pattern.All_reduce in
  let t = time (Algo.Themis { chunks = 64 }) topo s in
  let ideal = Ideal.all_reduce_time topo ~size:1e9 in
  Alcotest.(check bool) "over 90% efficiency" true (ideal /. t > 0.9)

let test_themis_chunking_helps_on_torus () =
  (* Chunk rotation keeps all dimensions busy simultaneously. *)
  let topo = torus3 () in
  let s = spec ~size:1e9 ~npus:64 Pattern.All_reduce in
  let bc = time (Algo.Blueconnect { chunks = 1 }) topo s in
  let themis = time (Algo.Themis { chunks = 64 }) topo s in
  Alcotest.(check bool) "themis faster" true (themis < bc)

let test_themis_chunk_count_regimes () =
  (* Chunk count only matters when bandwidth does: for a 1 GB collective 64
     chunks beat 4 (better dimension overlap), while for a latency-bound
     4 KB collective the chunk count is immaterial under the pipelined-α
     link model (the paper's backend additionally charges per-message
     overhead there, its Themis-64 latency penalty — see EXPERIMENTS.md). *)
  let topo = torus3 () in
  let big = spec ~size:1e9 ~npus:64 Pattern.All_reduce in
  Alcotest.(check bool) "more chunks win when bandwidth-bound" true
    (time (Algo.Themis { chunks = 64 }) topo big
    < time (Algo.Themis { chunks = 4 }) topo big);
  let tiny = spec ~size:4e3 ~npus:64 Pattern.All_reduce in
  let heavy = time (Algo.Themis { chunks = 64 }) topo tiny in
  let light = time (Algo.Themis { chunks = 4 }) topo tiny in
  Alcotest.(check bool) "chunk count immaterial when latency-bound" true
    (Float.abs (heavy -. light) /. light < 0.05)

let test_blueconnect_requires_hierarchy () =
  let topo = Builders.dgx1 () in
  Alcotest.check_raises "no hierarchy"
    (Invalid_argument "Blueconnect.program: topology has no recorded hierarchy")
    (fun () ->
      ignore
        (Algo.program (Algo.Blueconnect { chunks = 1 }) topo
           (spec ~size:1. ~npus:8 Pattern.All_reduce)))

(* --- MultiTree, TACCL-like, C-Cube ------------------------------------------------ *)

let test_multitree_no_chunk_overlap () =
  (* Fig. 17(a)'s mechanism: splitting the buffer into more chunks makes
     MultiTree *slower* (slots of a tree run strictly one after another, so
     deep trees drain between slots), while the overlapping TACCL-like
     router's time is flat in the chunk count. *)
  let topo = Builders.mesh ~link:(Link.make ~alpha:0. ~beta:1.) [| 6 |] in
  let sp k = spec ~size:12. ~npus:6 ~chunks_per_npu:k Pattern.All_gather in
  let mt1 = time Algo.Multitree topo (sp 1) in
  let taccl1 = time Algo.Taccl_like topo (sp 1) in
  List.iter
    (fun k ->
      let mt = time Algo.Multitree topo (sp k) in
      let taccl = time Algo.Taccl_like topo (sp k) in
      Alcotest.(check bool) "multitree pays for chunking" true (mt > mt1 +. 1e-9);
      Alcotest.check feq "taccl flat in chunk count" taccl1 taccl;
      Alcotest.(check bool) "taccl beats multitree when chunked" true (taccl < mt))
    [ 2; 4; 8 ]

let test_multitree_gates_are_structural () =
  (* The no-overlap sequencing is visible in the dependency graph: some
     slot-1 transfer depends on a slot-0 transfer of the same tree. *)
  let topo = Builders.ring 4 in
  let s = spec ~size:8. ~npus:4 ~chunks_per_npu:2 Pattern.All_gather in
  let program = Algo.program Algo.Multitree topo s in
  let transfers = Tacos_sim.Program.transfers program in
  let tag_of id = transfers.(id).Tacos_sim.Program.tag in
  let crosses =
    Array.exists
      (fun (tr : Tacos_sim.Program.transfer) ->
        String.length tr.tag >= 2
        && String.sub tr.tag (String.length tr.tag - 2) 2 = "s1"
        && List.exists
             (fun d ->
               let t = tag_of d in
               String.length t >= 2 && String.sub t (String.length t - 2) 2 = "s0")
             tr.deps)
      transfers
  in
  Alcotest.(check bool) "slot-1 gated on slot-0" true crosses

let test_multitree_all_reduce_validates_structure () =
  let topo = Builders.mesh ~link:(Link.of_bandwidth 16e9) [| 3; 3 |] in
  let s = spec ~size:1e6 ~npus:9 Pattern.All_reduce in
  let t = time Algo.Multitree topo s in
  Alcotest.(check bool) "completes" true (t > 0. && t < infinity)

let test_taccl_like_ignores_congestion () =
  (* On a ring, every shortest-path tree hammers the same few links; TACOS'
     congestion-free matching must beat the TACCL-like result. *)
  let n = 16 in
  let topo = Builders.ring ~link:(Link.of_bandwidth 50e9) n in
  let s = spec ~size:1e8 ~npus:n Pattern.All_gather in
  let taccl = time Algo.Taccl_like topo s in
  let tacos =
    (Tacos.Synthesizer.synthesize topo s).Tacos.Synthesizer.collective_time
  in
  Alcotest.(check bool) "TACOS no worse" true (tacos <= taccl +. 1e-9)

let test_ccube_uses_only_tree_links () =
  let topo = Builders.dgx1 () in
  Alcotest.(check int) "28 of 48 directed links" 28 (Ccube.tree_links_used topo)

let test_ccube_slower_than_ring_on_dgx1 () =
  (* §VI-B.5: C-Cube leaves a third of the NVLinks idle; the 3-ring Ring
     baseline uses them all. *)
  let topo = Builders.dgx1 () in
  let s = spec ~size:1e9 ~npus:8 Pattern.All_reduce in
  let ccube = time Algo.Ccube topo s in
  let ring = time Algo.ring topo s in
  Alcotest.(check bool) "ring wins" true (ring < ccube)

let test_ccube_rejects_other_topologies () =
  let topo = Builders.ring 8 in
  (match Algo.program Algo.Ccube topo (spec ~size:1. ~npus:8 Pattern.All_reduce) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "C-Cube accepted a non-DGX topology")

(* --- Cross-algorithm property ------------------------------------------------------ *)

let prop_baselines_never_beat_ideal =
  let algos =
    [ Algo.ring; Algo.Direct; Algo.Blueconnect { chunks = 1 }; Algo.Multitree ]
  in
  QCheck.Test.make ~name:"no baseline beats the ideal bound" ~count:20
    QCheck.(make Gen.(pair (int_range 2 4) (int_range 2 4)))
    (fun (a, b) ->
      let topo = Builders.torus ~link:(Link.of_bandwidth 50e9) [| a; b |] in
      let n = a * b in
      let s = spec ~size:1e7 ~npus:n Pattern.All_reduce in
      let ideal = Ideal.all_reduce_time topo ~size:1e7 in
      List.for_all (fun algo -> time algo topo s >= ideal *. 0.999) algos)

let () =
  Alcotest.run "baselines"
    [
      ( "ring",
        [
          Alcotest.test_case "closed form on ring" `Quick test_ring_matches_closed_form;
          Alcotest.test_case "near-ideal on ring" `Quick test_ring_is_ideal_on_ring;
          Alcotest.test_case "unidirectional slower" `Quick test_ring_unidirectional_slower;
          Alcotest.test_case "DGX-1 multi-ring" `Quick test_ring_uses_dgx1_embeddings;
          Alcotest.test_case "AG/RS are half of AR" `Quick
            test_ring_all_gather_half_of_all_reduce;
        ] );
      ( "direct",
        [
          Alcotest.test_case "closed form on FC" `Quick test_direct_on_fully_connected;
          Alcotest.test_case "home-field crossover" `Quick test_direct_vs_ring_crossover;
          Alcotest.test_case "latency-bound crossover" `Quick
            test_direct_wins_for_tiny_collectives;
        ] );
      ( "rhd-dbt",
        [
          Alcotest.test_case "RHD closed form" `Quick test_rhd_on_fully_connected;
          Alcotest.test_case "RHD needs power of two" `Quick test_rhd_requires_power_of_two;
          Alcotest.test_case "RHD wins latency-bound" `Quick
            test_rhd_beats_ring_on_hypercube_small;
          Alcotest.test_case "DBT logarithmic" `Quick test_dbt_completes_and_scales_log;
          Alcotest.test_case "DBT All-Reduce only" `Quick test_dbt_rejects_non_allreduce;
        ] );
      ( "hierarchical",
        [
          Alcotest.test_case "BlueConnect efficiency band" `Quick
            test_blueconnect_efficiency_band;
          Alcotest.test_case "Themis near ideal on torus" `Quick
            test_themis_near_ideal_on_torus;
          Alcotest.test_case "Themis chunking helps" `Quick test_themis_chunking_helps_on_torus;
          Alcotest.test_case "Themis chunk-count regimes" `Quick
            test_themis_chunk_count_regimes;
          Alcotest.test_case "hierarchy required" `Quick test_blueconnect_requires_hierarchy;
        ] );
      ( "synth-baselines",
        [
          Alcotest.test_case "MultiTree lacks chunk overlap" `Quick
            test_multitree_no_chunk_overlap;
          Alcotest.test_case "MultiTree slot gating structural" `Quick
            test_multitree_gates_are_structural;
          Alcotest.test_case "MultiTree All-Reduce" `Quick
            test_multitree_all_reduce_validates_structure;
          Alcotest.test_case "TACCL-like congestion blindness" `Quick
            test_taccl_like_ignores_congestion;
          Alcotest.test_case "C-Cube idle links" `Quick test_ccube_uses_only_tree_links;
          Alcotest.test_case "C-Cube loses to multi-ring" `Quick
            test_ccube_slower_than_ring_on_dgx1;
          Alcotest.test_case "C-Cube DGX-1 only" `Quick test_ccube_rejects_other_topologies;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_baselines_never_beat_ideal ] );
    ]
